// Figures 7 and 8: robustness to shifting query distributions in miniLSM.
//
// Figure 7: the workload transitions gradually (transition ratio rising
// linearly from 0 to 1 across batches) between large-range Uniform and
// small-range Correlated queries while Puts trigger compactions that
// rebuild filters from the live sample query queue. Proteus re-designs
// itself; SuRF and Rosetta cannot.
//
// Figure 8 (via --instant): the distribution switches abruptly halfway.
//
// Per batch we report cumulative wall latency, SST probes per seek, and
// the file-level FPR.

#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "lsm/db.h"
#include "surf/surf.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace proteus {
namespace {

using bench::Args;

struct Direction {
  const char* name;
  Dataset dataset;
  QuerySpec start, end;
};

void RunDirection(const Args& args, const Direction& dir, bool instant,
                  bool proteus_only) {
  const size_t n_initial = args.KeysOr(60000, 20000000);
  const size_t n_puts = n_initial / 2;
  const size_t n_seeks = args.QueriesOr(40000, 60000000);
  const int n_batches = 10;
  const size_t value_size = 128;

  std::vector<uint64_t> all_keys =
      GenerateKeys(dir.dataset, n_initial + n_puts, args.seed);
  // Split into initial load and later Puts (interleaved sampling keeps both
  // covering the full key range).
  std::vector<uint64_t> initial, later;
  for (size_t i = 0; i < all_keys.size(); ++i) {
    (i % 3 == 2 && later.size() < n_puts ? later : initial)
        .push_back(all_keys[i]);
  }
  // Query pools, empty against the full final key set.
  auto start_pool = GenerateQueries(all_keys, dir.start, n_seeks, args.seed + 1);
  auto end_pool = GenerateQueries(all_keys, dir.end, n_seeks, args.seed + 2);

  struct Entry {
    std::string name;
    std::string spec;  // FilterRegistry policy spec string
  };
  std::vector<Entry> entries = {
      {"proteus", "proteus:bpk=14"},
  };
  if (!proteus_only) {
    entries.push_back({"surf-real4", "surf:mode=real,suffix=4"});
    entries.push_back({"rosetta", "rosetta:bpk=14"});
  }
  if (!args.filter.empty()) entries.push_back({args.filter, args.filter});

  bench::PrintHeader(dir.name);
  for (const Entry& entry : entries) {
    DbOptions options;
    options.dir = "/tmp/proteus_bench_fig7";
    // Small memtable so flushes and compactions — and therefore filter
    // rebuilds from the live query queue — happen throughout the run, as
    // the paper's ongoing compactions do (~15-20 per batch at their scale).
    options.memtable_bytes = 256u << 10;
    options.sst_target_bytes = 2u << 20;
    options.block_cache_bytes = 32u << 20;
    options.l1_size_bytes = 4u << 20;
    options.queue_options.sample_rate = 10;  // responsive queue at this scale
    options.filter_policy =
        bench::MakePolicyOrDie(entry.spec);
    auto [db_ptr, db_status] = Db::Create(options);
    if (!db_status.ok()) {
      std::fprintf(stderr, "db create failed: %s\n",
                   db_status.ToString().c_str());
      std::exit(1);
    }
    Db& db = *db_ptr;
    std::vector<std::pair<std::string, std::string>> seed;
    for (size_t i = 0; i < 2000 && i < start_pool.size(); ++i) {
      seed.push_back(
          {EncodeKeyBE(start_pool[i].lo), EncodeKeyBE(start_pool[i].hi)});
    }
    db.query_queue().Seed(seed);
    for (uint64_t k : initial) {
      db.Put(EncodeKeyBE(k), MakeValuePayload(k, value_size));
    }
    db.CompactAll();

    std::printf("-- %s --\n", entry.name.c_str());
    std::printf("%-7s %-8s %-12s %-10s %-9s %-12s\n", "batch", "ratio",
                "cum-sec", "ns/seek", "sst/seek", "fileFPR");
    Rng rng(args.seed + 7);
    double cumulative_ns = 0;
    size_t put_index = 0;
    size_t batch_seeks = n_seeks / n_batches;
    // Pace the Puts so they cover the whole run (paper: 40M Puts uniformly
    // interleaved with 60M Seeks).
    size_t puts_per_batch = later.size() / n_batches;
    size_t put_stride = std::max<size_t>(1, batch_seeks / puts_per_batch);
    for (int batch = 0; batch < n_batches; ++batch) {
      double ratio = instant ? (batch * 2 < n_batches ? 0.0 : 1.0)
                             : static_cast<double>(batch) / (n_batches - 1);
      uint64_t fpf_before = db.stats().false_positive_files;
      uint64_t checks_before = db.stats().filter_checks;
      uint64_t sst_before = db.stats().sst_seeks;
      size_t batch_put_target = puts_per_batch * (batch + 1);
      Stopwatch timer;
      for (size_t i = 0; i < batch_seeks; ++i) {
        if (i % put_stride == 0 && put_index < batch_put_target &&
            put_index < later.size()) {
          uint64_t k = later[put_index++];
          db.Put(EncodeKeyBE(k), MakeValuePayload(k, value_size));
        }
        const auto& pool =
            rng.NextDouble() < ratio ? end_pool : start_pool;
        const auto& q = pool[rng.NextBelow(pool.size())];
        db.Seek(EncodeKeyBE(q.lo), EncodeKeyBE(q.hi));
      }
      cumulative_ns += static_cast<double>(timer.ElapsedNanos());
      uint64_t checks = db.stats().filter_checks - checks_before;
      uint64_t fpf = db.stats().false_positive_files - fpf_before;
      uint64_t ssts = db.stats().sst_seeks - sst_before;
      std::printf("%-7d %-8.2f %-12.2f %-10.0f %-9.3f %-12.4f\n", batch,
                  ratio, cumulative_ns / 1e9,
                  cumulative_ns / ((batch + 1.0) * batch_seeks),
                  static_cast<double>(ssts) / batch_seeks,
                  checks == 0 ? 0.0
                              : static_cast<double>(fpf) /
                                    static_cast<double>(checks));
    }
  }
}

void Run(const Args& args, bool instant) {
  QuerySpec uniform_large;
  uniform_large.dist = QueryDist::kUniform;
  uniform_large.range_max = uint64_t{1} << 16;
  QuerySpec corr_small;
  corr_small.dist = QueryDist::kCorrelated;
  corr_small.range_max = uint64_t{1} << 4;
  corr_small.corr_degree = uint64_t{1} << 10;

  // Paper pairing: Normal keys for Uniform->Correlated, Uniform keys for
  // Correlated->Uniform (Section 6.4).
  Direction d1{"Uniform -> Correlated (Normal keys)", Dataset::kNormal,
               uniform_large, corr_small};
  Direction d2{"Correlated -> Uniform (Uniform keys)", Dataset::kUniform,
               corr_small, uniform_large};
  RunDirection(args, d1, instant, /*proteus_only=*/instant);
  RunDirection(args, d2, instant, /*proteus_only=*/instant);
}

}  // namespace
}  // namespace proteus

int main(int argc, char** argv) {
  auto args = proteus::bench::ParseArgs(argc, argv);
  bool instant = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--instant") == 0) instant = true;
  }
  std::printf("Figure %s: robustness to %s workload shifts\n",
              instant ? "8" : "7", instant ? "immediate" : "gradual");
  proteus::Run(args, instant);
  return 0;
}
