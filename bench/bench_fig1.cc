// Figure 1: FPR heatmap over the workload space (query correlation degree
// x maximum range size) for SuRF, Rosetta, and Proteus at a fixed memory
// budget. The paper's qualitative claim: SuRF and Rosetta are each good in
// confined, mostly disjoint regions; Proteus is good almost everywhere.
//
// Output: one FPR grid per filter; rows = log2(CORRDEGREE), columns =
// log2(RMAX). Darker (lower) is better in the paper's rendering.

#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/proteus.h"
#include "rosetta/rosetta.h"
#include "surf/surf.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace proteus {
namespace {

using bench::Args;

void Run(const Args& args) {
  const size_t n_keys = args.KeysOr(50000, 10000000);
  const size_t n_samples = args.SamplesOr(2000, 20000);
  const size_t n_eval = args.QueriesOr(8000, 1000000);
  const double bpk = 12.0;
  // Range sizes span the paper's 2^1..2^19; correlation degrees must reach
  // far enough (2^44 ~ "essentially uncorrelated" at this key density) to
  // cover SuRF's favorable regime.
  const std::vector<uint32_t> exps = {1, 4, 7, 10, 13, 16, 19};
  const std::vector<uint32_t> corr_exps = {4, 12, 20, 28, 36, 44};

  auto keys = GenerateKeys(Dataset::kUniform, n_keys, args.seed);

  // SuRF is workload-oblivious: build each suffix configuration once and
  // pick the best that fits the budget per cell.
  std::vector<std::unique_ptr<SurfIntFilter>> surfs;
  surfs.push_back(SurfIntFilter::Build(keys, Surf::Options{}));
  for (uint32_t bits : {2u, 4u, 8u}) {
    Surf::Options real;
    real.suffix_mode = SurfSuffixMode::kReal;
    real.suffix_bits = bits;
    surfs.push_back(SurfIntFilter::Build(keys, real));
    Surf::Options hash;
    hash.suffix_mode = SurfSuffixMode::kHash;
    hash.suffix_bits = bits;
    surfs.push_back(SurfIntFilter::Build(keys, hash));
  }
  uint64_t budget = static_cast<uint64_t>(bpk * static_cast<double>(n_keys));

  enum { kProteus, kSurf, kRosetta, kNumFilters };
  std::vector<std::string> names = {"Proteus", "SuRF (best config <= budget)",
                                    "Rosetta"};
  // Any registered family rides along as an extra heatmap with zero bench
  // plumbing.
  if (!args.filter.empty()) names.push_back("--filter=" + args.filter);
  std::vector<std::vector<std::vector<double>>> grid(
      names.size(), std::vector<std::vector<double>>(
                        corr_exps.size(), std::vector<double>(exps.size(), 1.0)));

  for (size_t row = 0; row < corr_exps.size(); ++row) {  // correlation degree
    for (size_t col = 0; col < exps.size(); ++col) {     // range size
      QuerySpec spec;
      spec.dist = QueryDist::kCorrelated;
      spec.corr_degree = uint64_t{1} << corr_exps[row];
      spec.range_max = uint64_t{1} << exps[col];
      auto samples = GenerateQueries(keys, spec, n_samples, args.seed + 1);
      auto eval = GenerateQueries(keys, spec, n_eval, args.seed + 2);

      auto proteus = bench::BuildFilter(
          "proteus:bpk=" + FormatSpecDouble(bpk), keys, samples);
      grid[kProteus][row][col] = bench::MeasureFpr(*proteus, eval);

      double best_surf = 1.0;
      for (const auto& s : surfs) {
        if (s->SizeBits() > budget) continue;
        best_surf = std::min(best_surf, bench::MeasureFpr(*s, eval));
      }
      grid[kSurf][row][col] = best_surf;

      auto rosetta = RosettaFilter::BuildSelfConfigured(keys, samples, bpk);
      grid[kRosetta][row][col] = bench::MeasureFpr(*rosetta, eval);

      if (!args.filter.empty()) {
        auto extra = bench::BuildFilter(args.filter, keys, samples);
        grid[kNumFilters][row][col] = bench::MeasureFpr(*extra, eval);
      }
    }
  }

  for (size_t f = 0; f < names.size(); ++f) {
    bench::PrintHeader(names[f].c_str());
    std::printf("corr\\range");
    for (uint32_t e : exps) std::printf("  2^%-5u", e);
    std::printf("\n");
    for (size_t row = 0; row < corr_exps.size(); ++row) {
      std::printf("2^%-8u", corr_exps[row]);
      for (size_t col = 0; col < exps.size(); ++col) {
        std::printf("  %7.4f", grid[f][row][col]);
      }
      std::printf("\n");
    }
  }
}

}  // namespace
}  // namespace proteus

int main(int argc, char** argv) {
  auto args = proteus::bench::ParseArgs(argc, argv);
  std::printf("Figure 1: self-designing filters across the workload space\n");
  std::printf("(uniform keys, correlated queries; 12 BPK; lower is better)\n");
  proteus::Run(args);
  return 0;
}
