// Multi-threaded read/write benchmark for the concurrent MVCC core:
// N writer threads group-commit continuously while M reader threads
// Seek at full speed against an atomically-swapped Version — readers
// never take the writer mutex, so read throughput should scale with M.
//
// For each (writers, readers) pair in the --writers x --readers comma
// lists, the harness runs one timed window and reports aggregate read
// qps, read latency percentiles, and sustained write throughput; the
// final lines print the read-scaling factor (largest over smallest
// reader count) and, when several writer counts ran, the write-scaling
// factor across them — the headline number for the sharded memtable.
//
// Flags beyond bench_common's: --writers=LIST (default 1),
// --readers=LIST (default 1,2,4,8), --shards=N (memtable shards,
// default DbOptions'), --duration-ms=N per window (default 1500),
// --snapshot-reads (pin one snapshot per window and read through it).
// --json=PATH dumps one record per (writers, readers) window.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "lsm/db.h"
#include "util/timer.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace proteus {
namespace {

struct MtArgs {
  std::vector<uint64_t> writers = {1};
  std::vector<uint64_t> readers = {1, 2, 4, 8};
  uint64_t shards = 0;  // 0 = keep DbOptions' default
  uint64_t duration_ms = 1500;
  bool snapshot_reads = false;
};

std::vector<uint64_t> ParseList(const char* p) {
  std::vector<uint64_t> out;
  while (*p != '\0') {
    out.push_back(std::strtoull(p, const_cast<char**>(&p), 10));
    if (*p == ',') ++p;
  }
  return out;
}

MtArgs ParseMtArgs(int argc, char** argv) {
  MtArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--writers=", 10) == 0) {
      args.writers = ParseList(a + 10);
    } else if (std::strncmp(a, "--readers=", 10) == 0) {
      args.readers = ParseList(a + 10);
    } else if (std::strncmp(a, "--shards=", 9) == 0) {
      args.shards = std::strtoull(a + 9, nullptr, 10);
    } else if (std::strncmp(a, "--duration-ms=", 14) == 0) {
      args.duration_ms = std::strtoull(a + 14, nullptr, 10);
    } else if (std::strcmp(a, "--snapshot-reads") == 0) {
      args.snapshot_reads = true;
    }
  }
  if (args.writers.empty()) args.writers.push_back(1);
  if (args.readers.empty()) args.readers.push_back(1);
  return args;
}

double PercentileUs(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted_us.size() - 1);
  return sorted_us[static_cast<size_t>(rank + 0.5)];
}

struct WindowResult {
  double read_qps = 0.0;
  double write_qps = 0.0;
  double p50_us = 0.0, p99_us = 0.0;
  uint64_t reads = 0, writes = 0, found = 0;
};

WindowResult RunWindow(Db& db, const std::vector<StrRangeQuery>& queries,
                       uint64_t n_writers, uint64_t n_readers,
                       uint64_t duration_ms, bool snapshot_reads,
                       uint64_t key_space) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writes{0};

  std::shared_ptr<const Snapshot> snap;
  ReadOptions read_options;
  if (snapshot_reads) {
    snap = db.GetSnapshot();
    read_options.snapshot = snap.get();
  }

  std::vector<std::thread> writers;
  for (uint64_t w = 0; w < n_writers; ++w) {
    writers.emplace_back([&, w] {
      Rng rng(1000 + w);
      uint64_t round = 0;
      std::string value = MakeValuePayload(w, 128);
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t k = rng.NextBelow(key_space);
        if (!db.Put(EncodeKeyBE(k), value).ok()) break;
        writes.fetch_add(1, std::memory_order_relaxed);
        ++round;
      }
      (void)round;
    });
  }

  struct ReaderSlot {
    uint64_t reads = 0;
    uint64_t found = 0;
    std::vector<double> latencies_us;
  };
  std::vector<ReaderSlot> slots(n_readers);
  std::vector<std::thread> readers;
  for (uint64_t r = 0; r < n_readers; ++r) {
    readers.emplace_back([&, r] {
      ReaderSlot& slot = slots[r];
      slot.latencies_us.reserve(1 << 16);
      size_t i = r * 7919 % queries.size();
      while (!stop.load(std::memory_order_relaxed)) {
        const auto& q = queries[i];
        if (++i == queries.size()) i = 0;
        // Sample every 16th read's latency to bound the timer overhead.
        if ((slot.reads & 15) == 0) {
          Stopwatch timer;
          slot.found += db.Seek(q.lo, q.hi, read_options).found;
          slot.latencies_us.push_back(
              static_cast<double>(timer.ElapsedNanos()) / 1e3);
        } else {
          slot.found += db.Seek(q.lo, q.hi, read_options).found;
        }
        ++slot.reads;
      }
    });
  }

  Stopwatch wall;
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true);
  const double seconds = wall.ElapsedSeconds();
  for (auto& t : readers) t.join();
  for (auto& t : writers) t.join();

  WindowResult out;
  std::vector<double> latencies;
  for (const ReaderSlot& slot : slots) {
    out.reads += slot.reads;
    out.found += slot.found;
    latencies.insert(latencies.end(), slot.latencies_us.begin(),
                     slot.latencies_us.end());
  }
  out.writes = writes.load();
  out.read_qps = seconds == 0 ? 0 : static_cast<double>(out.reads) / seconds;
  out.write_qps = seconds == 0 ? 0 : static_cast<double>(out.writes) / seconds;
  std::sort(latencies.begin(), latencies.end());
  out.p50_us = PercentileUs(latencies, 0.50);
  out.p99_us = PercentileUs(latencies, 0.99);
  return out;
}

}  // namespace
}  // namespace proteus

int main(int argc, char** argv) {
  using namespace proteus;
  using bench::JsonSink;

  bench::Args common = bench::ParseArgs(argc, argv);
  MtArgs mt = ParseMtArgs(argc, argv);
  const uint64_t n_keys = common.KeysOr(100000, 2000000);
  const uint64_t n_queries = common.QueriesOr(20000, 200000);
  const std::string filter_spec =
      common.filter.empty() ? "proteus:bpk=14" : common.filter;
  const uint64_t key_space = n_keys * 8;

  DbOptions options;
  options.dir = "/tmp/proteus_bench_mt";
  std::error_code ec;
  std::filesystem::remove_all(options.dir, ec);
  options.memtable_bytes = 1u << 20;
  options.sst_target_bytes = 1u << 20;
  options.l1_size_bytes = 8u << 20;
  options.block_cache_bytes = 64u << 20;
  options.wal_sync = false;  // group commit batches; measure CPU not fsync
  if (mt.shards != 0) options.memtable_shards = mt.shards;
  options.filter_policy = bench::MakePolicyOrDie(filter_spec);
  auto [db_ptr, db_status] = Db::Create(options);
  if (!db_status.ok()) {
    std::fprintf(stderr, "db create failed: %s\n",
                 db_status.ToString().c_str());
    return 1;
  }
  Db& db = *db_ptr;

  Rng fill(common.seed);
  for (uint64_t i = 0; i < n_keys; ++i) {
    const uint64_t k = fill.NextBelow(key_space);
    if (!db.Put(EncodeKeyBE(k), MakeValuePayload(k, 128)).ok()) {
      std::fprintf(stderr, "fill put failed\n");
      return 1;
    }
  }
  if (Status s = db.CompactAll(); !s.ok()) {
    std::fprintf(stderr, "compact failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Mixed read workload: short ranges over the same key space the
  // writers churn, with a slice of guaranteed-present point lookups.
  Rng qrng(common.seed + 1);
  std::vector<StrRangeQuery> queries;
  queries.reserve(n_queries);
  for (uint64_t i = 0; i < n_queries; ++i) {
    const uint64_t lo = qrng.NextBelow(key_space);
    queries.push_back({EncodeKeyBE(lo), EncodeKeyBE(lo + 64)});
  }

  const uint64_t shards_used =
      mt.shards != 0 ? mt.shards : options.memtable_shards;
  bench::PrintHeader("mt: concurrent readers vs writers");
  std::printf("keys=%llu shards=%llu duration=%llums snapshot_reads=%d\n",
              static_cast<unsigned long long>(n_keys),
              static_cast<unsigned long long>(shards_used),
              static_cast<unsigned long long>(mt.duration_ms),
              mt.snapshot_reads ? 1 : 0);

  JsonSink sink;
  double first_read_qps = 0.0, last_read_qps = 0.0;
  uint64_t first_readers = 0, last_readers = 0;
  double first_write_qps = 0.0, last_write_qps = 0.0;
  uint64_t first_writers = 0, last_writers = 0;
  for (uint64_t w : mt.writers) {
    for (uint64_t m : mt.readers) {
      if (m == 0) continue;
      WindowResult r = RunWindow(db, queries, w, m, mt.duration_ms,
                                 mt.snapshot_reads, key_space);
      std::printf("writers=%-3llu readers=%-3llu read_qps=%10.0f  "
                  "p50=%7.1fus  p99=%7.1fus  write_qps=%9.0f  found=%llu\n",
                  static_cast<unsigned long long>(w),
                  static_cast<unsigned long long>(m), r.read_qps, r.p50_us,
                  r.p99_us, r.write_qps,
                  static_cast<unsigned long long>(r.found));
      sink.Add()
          .Str("bench", "mt")
          .Num("writers", static_cast<double>(w))
          .Num("readers", static_cast<double>(m))
          .Num("memtable_shards", static_cast<double>(shards_used))
          .Num("duration_ms", static_cast<double>(mt.duration_ms))
          .Num("snapshot_reads", mt.snapshot_reads ? 1 : 0)
          .Num("read_qps", r.read_qps)
          .Num("write_qps", r.write_qps)
          .Num("p50_us", r.p50_us)
          .Num("p99_us", r.p99_us)
          .Num("reads", static_cast<double>(r.reads))
          .Num("writes", static_cast<double>(r.writes))
          .Num("found", static_cast<double>(r.found));
      if (first_readers == 0) {
        first_readers = m;
        first_read_qps = r.read_qps;
      }
      last_readers = m;
      last_read_qps = r.read_qps;
      // Write scaling compares windows at the FIRST reader count so the
      // read-side load is held constant across writer counts.
      if (m == mt.readers.front()) {
        if (first_writers == 0) {
          first_writers = w;
          first_write_qps = r.write_qps;
        }
        last_writers = w;
        last_write_qps = r.write_qps;
      }
    }
  }
  db.WaitForBackground();
  if (first_readers != 0 && last_readers > first_readers &&
      first_read_qps > 0) {
    std::printf("scaling: %llu -> %llu readers = %.2fx read throughput\n",
                static_cast<unsigned long long>(first_readers),
                static_cast<unsigned long long>(last_readers),
                last_read_qps / first_read_qps);
  }
  if (first_writers != 0 && last_writers > first_writers &&
      first_write_qps > 0) {
    std::printf("scaling: %llu -> %llu writers = %.2fx write throughput\n",
                static_cast<unsigned long long>(first_writers),
                static_cast<unsigned long long>(last_writers),
                last_write_qps / first_write_qps);
  }

  if (!common.json_path.empty()) sink.WriteArrayOrDie(common.json_path);
  return 0;
}
