// Figure 4: the CPFPR model predicts the FPR of every design.
//  (a) 1PBF: expected vs observed FPR across prefix lengths, varying RMAX
//      on Uniform-Uniform (top) and CORRDEGREE on Uniform-Correlated
//      (bottom, RMAX fixed at 2^7).
//  (b) 2PBF: expected/observed matrix over (l1, l2), Normal-Split.
//  (c) Proteus: expected/observed matrix over (trie depth, Bloom prefix
//      length), Normal-Split. "inf" marks infeasible (grey) cells.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/one_pbf.h"
#include "core/proteus.h"
#include "core/two_pbf.h"
#include "model/cpfpr.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace proteus {
namespace {

using bench::Args;

void RunOnePbf(const Args& args) {
  const size_t n_keys = args.KeysOr(100000, 10000000);
  const size_t n_samples = args.SamplesOr(5000, 10000);
  const size_t n_eval = args.QueriesOr(20000, 1000000);
  const double bpk = 10.0;
  uint64_t budget = static_cast<uint64_t>(bpk * static_cast<double>(n_keys));

  auto keys = GenerateKeys(Dataset::kUniform, n_keys, args.seed);
  const std::vector<uint32_t> lens = {20, 25, 30, 35, 40, 45, 50, 55, 60, 64};

  bench::PrintHeader("Figure 4a.1 — 1PBF, Uniform-Uniform, varying RMAX");
  std::printf("%-10s", "len");
  for (uint32_t e : {3u, 7u, 11u, 15u, 19u}) {
    std::printf("  exp2^%-3u  obs2^%-3u", e, e);
  }
  std::printf("\n");
  for (uint32_t l : lens) {
    std::printf("%-10u", l);
    for (uint32_t e : {3u, 7u, 11u, 15u, 19u}) {
      QuerySpec spec;
      spec.dist = QueryDist::kUniform;
      spec.range_max = uint64_t{1} << e;
      auto samples = GenerateQueries(keys, spec, n_samples, args.seed + e);
      auto eval = GenerateQueries(keys, spec, n_eval, args.seed + 100 + e);
      CpfprModel model(keys, samples);
      double expected = model.OnePbfFpr(l, budget);
      auto filter = OnePbfFilter::BuildWithConfig(keys, l, bpk);
      double observed = bench::MeasureFpr(*filter, eval);
      std::printf("  %8.4f  %8.4f", expected, observed);
    }
    std::printf("\n");
  }

  bench::PrintHeader(
      "Figure 4a.2 — 1PBF, Uniform-Correlated, varying CORRDEGREE (RMAX 2^7)");
  std::printf("%-10s", "len");
  for (uint32_t e : {3u, 7u, 11u, 15u, 19u}) {
    std::printf("  exp2^%-3u  obs2^%-3u", e, e);
  }
  std::printf("\n");
  for (uint32_t l : lens) {
    std::printf("%-10u", l);
    for (uint32_t e : {3u, 7u, 11u, 15u, 19u}) {
      QuerySpec spec;
      spec.dist = QueryDist::kCorrelated;
      spec.range_max = uint64_t{1} << 7;
      spec.corr_degree = uint64_t{1} << e;
      auto samples = GenerateQueries(keys, spec, n_samples, args.seed + e);
      auto eval = GenerateQueries(keys, spec, n_eval, args.seed + 200 + e);
      CpfprModel model(keys, samples);
      double expected = model.OnePbfFpr(l, budget);
      auto filter = OnePbfFilter::BuildWithConfig(keys, l, bpk);
      double observed = bench::MeasureFpr(*filter, eval);
      std::printf("  %8.4f  %8.4f", expected, observed);
    }
    std::printf("\n");
  }
}

void RunMatrices(const Args& args) {
  const size_t n_keys = args.KeysOr(100000, 10000000);
  const size_t n_samples = args.SamplesOr(5000, 10000);
  const size_t n_eval = args.QueriesOr(20000, 1000000);
  const double bpk = 10.0;
  uint64_t budget = static_cast<uint64_t>(bpk * static_cast<double>(n_keys));

  auto keys = GenerateKeys(Dataset::kNormal, n_keys, args.seed);
  QuerySpec spec;  // Normal-Split: short correlated + long uniform
  spec.dist = QueryDist::kSplit;
  spec.range_max = uint64_t{1} << 19;
  spec.split_corr_range_max = uint64_t{1} << 3;
  spec.corr_degree = uint64_t{1} << 3;
  auto samples = GenerateQueries(keys, spec, n_samples, args.seed + 7);
  auto eval = GenerateQueries(keys, spec, n_eval, args.seed + 8);
  CpfprModel model(keys, samples);

  const std::vector<uint32_t> l1s = {8, 16, 24, 32, 40, 48};
  const std::vector<uint32_t> l2s = {40, 46, 52, 58, 64};

  bench::PrintHeader("Figure 4b — 2PBF expected / observed over (l1, l2)");
  std::printf("%-8s", "l1\\l2");
  for (uint32_t l2 : l2s) std::printf("   exp@%-4u    obs@%-4u", l2, l2);
  std::printf("\n");
  for (uint32_t l1 : l1s) {
    std::printf("%-8u", l1);
    for (uint32_t l2 : l2s) {
      if (l2 <= l1) {
        std::printf("   %8s    %8s", "-", "-");
        continue;
      }
      double expected = model.TwoPbfFpr(l1, l2, 0.5, budget);
      auto filter = TwoPbfFilter::BuildWithConfig(
          keys, TwoPbfFilter::Config{l1, l2, 0.5}, bpk);
      double observed = bench::MeasureFpr(*filter, eval);
      std::printf("   %8.4f    %8.4f", expected, observed);
    }
    std::printf("\n");
  }
  TwoPbfDesign best2 = model.SelectTwoPbf(budget);
  std::printf("selected 2PBF design: l1=%u l2=%u frac=%.1f expected=%.4f\n",
              best2.l1, best2.l2, best2.frac1, best2.expected_fpr);

  bench::PrintHeader(
      "Figure 4c — Proteus expected / observed over (trie depth, Bloom len)");
  std::printf("%-8s", "t\\b");
  for (uint32_t l2 : l2s) std::printf("   exp@%-4u    obs@%-4u", l2, l2);
  std::printf("\n");
  for (uint32_t l1 : l1s) {
    std::printf("%-8u", l1);
    for (uint32_t l2 : l2s) {
      if (l2 <= l1) {
        std::printf("   %8s    %8s", "-", "-");
        continue;
      }
      double expected = model.ProteusFpr(l1, l2, budget);
      if (expected > 1.0) {
        std::printf("   %8s    %8s", "inf", "inf");
        continue;
      }
      auto filter = ProteusFilter::BuildWithConfig(
          keys, ProteusFilter::Config{l1, l2}, bpk);
      double observed = bench::MeasureFpr(*filter, eval);
      std::printf("   %8.4f    %8.4f", expected, observed);
    }
    std::printf("\n");
  }
  ProteusDesign best = model.SelectProteus(budget);
  std::printf(
      "selected Proteus design: trie=%u bloom=%u expected=%.4f\n",
      best.trie_depth, best.bf_prefix_len, best.expected_fpr);

  if (!args.filter.empty()) {
    // Any registered family rides along on the same Normal-Split workload
    // with zero bench plumbing.
    bench::PrintHeader(("--filter=" + args.filter + " — Normal-Split").c_str());
    auto extra = bench::BuildFilter(args.filter, keys, samples);
    std::printf("%s: observed fpr=%.4f bpk=%.2f\n", extra->Name().c_str(),
                bench::MeasureFpr(*extra, eval), extra->Bpk(keys.size()));
  }
}

}  // namespace
}  // namespace proteus

int main(int argc, char** argv) {
  auto args = proteus::bench::ParseArgs(argc, argv);
  std::printf("Figure 4: CPFPR model accuracy across the design space\n");
  proteus::RunOnePbf(args);
  proteus::RunMatrices(args);
  return 0;
}
