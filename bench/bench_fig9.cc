// Figure 9: variable-length (string) keys.
//  (a-d) In-memory FPR vs BPK for Proteus vs SuRF on synthetic fixed-length
//        string keys (the paper's 1440-bit keys by default at paper scale;
//        the small scale uses 200-bit keys for the same shapes plus one
//        1440-bit panel). Proteus' chosen trie depth / Bloom prefix length
//        is printed like the paper's annotations.
//  (e)   Synthetic `.org` domains in miniLSM: latency and FPR vs BPK.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/proteus_str.h"
#include "lsm/db.h"
#include "surf/surf.h"
#include "workload/datasets.h"
#include "workload/string_gen.h"

namespace proteus {
namespace {

using bench::Args;

struct Panel {
  const char* name;
  StrDataset dataset;
  StrQueryDist dist;
};

void RunInMemory(const Args& args, size_t key_bytes) {
  const size_t n_keys = args.KeysOr(20000, 10000000);
  const size_t n_samples = args.SamplesOr(1000, 20000);
  const size_t n_eval = args.QueriesOr(4000, 1000000);
  const uint32_t max_bits = static_cast<uint32_t>(key_bytes * 8);

  const Panel panels[] = {
      {"Uniform-Uniform", StrDataset::kUniform, StrQueryDist::kUniform},
      {"Uniform-Correlated", StrDataset::kUniform, StrQueryDist::kCorrelated},
      {"Normal-Split", StrDataset::kNormal, StrQueryDist::kSplit},
      {"Normal-Correlated", StrDataset::kNormal, StrQueryDist::kCorrelated},
  };
  for (const Panel& panel : panels) {
    auto keys = GenerateStrKeys(panel.dataset, n_keys, key_bytes, args.seed);
    StrQuerySpec spec;
    spec.dist = panel.dist;
    spec.range_max = uint64_t{1} << 30;
    spec.corr_degree = uint64_t{1} << 29;
    spec.split_corr_range_max = uint64_t{1} << 10;
    spec.max_bytes = key_bytes;
    auto samples = GenerateStrQueries(keys, spec, n_samples, args.seed + 1);
    auto eval = GenerateStrQueries(keys, spec, n_eval, args.seed + 2);

    Surf::Options sopt;
    sopt.suffix_mode = SurfSuffixMode::kReal;
    sopt.suffix_bits = 8;
    auto surf = SurfStrFilter::Build(keys, sopt);
    double surf_fpr = bench::MeasureFprStr(*surf, eval);
    double surf_bpk = surf->Bpk(keys.size());

    bench::PrintHeader(
        (std::string(panel.name) + " (" + std::to_string(max_bits) +
         "-bit keys)").c_str());
    std::printf("%-6s %-10s %-10s %-10s %-22s\n", "bpk", "proteus", "surf",
                "surf-bpk", "proteus-design");
    for (double bpk : {8.0, 10.0, 12.0, 14.0, 16.0, 18.0}) {
      StrCpfprOptions grid;
      grid.bloom_grid = 64;
      grid.trie_grid = 32;
      auto proteus = ProteusStrFilter::BuildSelfDesigned(keys, samples, bpk,
                                                         max_bits, grid);
      double fpr = bench::MeasureFprStr(*proteus, eval);
      char design[40];
      std::snprintf(design, sizeof(design), "(trie=%u, prefix=%u)",
                    proteus->config().trie_depth,
                    proteus->config().bf_prefix_len);
      std::printf("%-6.0f %-10.4f %-10.4f %-10.2f %-22s\n", bpk, fpr,
                  surf_fpr, surf_bpk, design);
    }
  }
}

void RunDomainsLsm(const Args& args) {
  const size_t n_keys = args.KeysOr(30000, 20000000);
  const size_t n_query_domains = n_keys / 3;
  const size_t n_seeks = args.QueriesOr(10000, 1000000);
  const size_t max_bytes = 64;  // padded query width (covers most domains)

  auto all = GenerateStrKeys(StrDataset::kDomains, n_keys + n_query_domains,
                             0, args.seed);
  std::vector<std::string> keys, query_points;
  for (size_t i = 0; i < all.size(); ++i) {
    if (i % 4 == 3 && query_points.size() < n_query_domains) {
      query_points.push_back(all[i]);
    } else {
      keys.push_back(all[i]);
    }
  }
  StrQuerySpec spec;
  spec.dist = StrQueryDist::kReal;
  spec.range_max = uint64_t{1} << 30;
  spec.max_bytes = max_bytes;
  auto seed_queries =
      GenerateStrQueries(keys, spec, 1000, args.seed + 1, query_points);
  auto eval =
      GenerateStrQueries(keys, spec, n_seeks, args.seed + 2, query_points);

  bench::PrintHeader("Figure 9e — .org domains in miniLSM");
  std::printf("%-6s %-13s %-11s %-10s %-9s %-10s\n", "bpk", "filter",
              "ns/seek", "sst/seek", "fileFPR", "filterBPK");
  for (double bpk : {10.0, 14.0, 18.0, 22.0}) {
    struct Entry {
      std::string name;
      std::string spec;  // FilterRegistry policy spec string
    };
    const uint32_t max_bits = max_bytes * 8;
    std::vector<Entry> entries = {
        {"proteus-str", "proteus-str:bpk=" + FormatSpecDouble(bpk) +
                            ",max_key_bits=" + std::to_string(max_bits) +
                            ",stride=4"},
        {"surf-real8", "surf-str:mode=real,suffix=8"},
    };
    if (!args.filter.empty()) entries.push_back({args.filter, args.filter});
    for (const Entry& entry : entries) {
      DbOptions options;
      options.dir = "/tmp/proteus_bench_fig9";
      options.memtable_bytes = 2u << 20;
      options.sst_target_bytes = 8u << 20;
      options.l1_size_bytes = 8u << 20;
      options.filter_policy =
          bench::MakePolicyOrDie(entry.spec);
      auto [db_ptr, db_status] = Db::Create(options);
      if (!db_status.ok()) {
        std::fprintf(stderr, "db create failed: %s\n",
                     db_status.ToString().c_str());
        std::exit(1);
      }
      Db& db = *db_ptr;
      std::vector<std::pair<std::string, std::string>> seed;
      for (const auto& q : seed_queries) seed.push_back({q.lo, q.hi});
      db.query_queue().Seed(seed);
      for (const auto& k : keys) {
        db.Put(k, MakeValuePayload(static_cast<uint64_t>(k.size()) * 131 +
                                       static_cast<uint8_t>(k[0]),
                                   256));
      }
      db.CompactAll();
      db.ResetStats();
      Stopwatch timer;
      for (const auto& q : eval) db.Seek(q.lo, q.hi);
      double wall_ns = static_cast<double>(timer.ElapsedNanos());
      const DbStats& stats = db.stats();
      double file_fpr =
          stats.filter_checks == 0
              ? 0.0
              : static_cast<double>(stats.false_positive_files) /
                    static_cast<double>(stats.filter_checks);
      std::printf("%-6.0f %-13s %-11.0f %-10.3f %-9.4f %-10.2f\n", bpk,
                  entry.name.c_str(),
                  wall_ns / static_cast<double>(eval.size()),
                  static_cast<double>(stats.sst_seeks) /
                      static_cast<double>(eval.size()),
                  file_fpr,
                  static_cast<double>(db.TotalFilterBits()) /
                      static_cast<double>(keys.size()));
    }
  }
}

}  // namespace
}  // namespace proteus

int main(int argc, char** argv) {
  auto args = proteus::bench::ParseArgs(argc, argv);
  std::printf("Figure 9: variable-length string keys\n");
  // Small scale: 200-bit keys for the four FPR panels plus a reduced
  // 1440-bit panel sweep; paper scale uses 1440-bit keys throughout.
  proteus::RunInMemory(args, args.paper_scale ? 180 : 25);
  if (!args.paper_scale) {
    std::printf("\n--- reduced 1440-bit sweep ---\n");
    proteus::bench::Args deep = args;
    deep.keys = args.KeysOr(4000, 0);
    deep.queries = 1500;
    deep.samples = 500;
    proteus::RunInMemory(deep, 180);
  }
  proteus::RunDomainsLsm(args);
  return 0;
}
