// Micro-benchmarks (google-benchmark): per-operation costs of every
// substrate — hashing, Bloom probes, rank/select, trie and FST navigation,
// filter queries, skiplist, and the RLE codec. These are the constants
// behind the end-to-end numbers in Figures 6-9.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bloom/bloom_filter.h"
#include "bloom/prefix_bloom.h"
#include "core/filter_builder.h"
#include "core/proteus.h"
#include "core/two_pbf.h"
#include "hash/clhash.h"
#include "hash/murmur3.h"
#include "lsm/rle.h"
#include "lsm/skiplist.h"
#include "rosetta/rosetta.h"
#include "surf/surf.h"
#include "trie/bit_trie.h"
#include "util/random.h"
#include "util/rank_select.h"
#include "util/simd.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace proteus {
namespace {

void BM_Murmur3Int(benchmark::State& state) {
  Rng rng(1);
  uint64_t x = rng.Next();
  for (auto _ : state) {
    x = Murmur3Int64(x, 7);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Murmur3Int);

void BM_ClHashString(benchmark::State& state) {
  std::string s(static_cast<size_t>(state.range(0)), 'k');
  uint64_t h = 0;
  for (auto _ : state) {
    h = ClHash64(s, h);
    benchmark::DoNotOptimize(h);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ClHashString)->Arg(8)->Arg(32)->Arg(256);

void BM_BloomProbe(benchmark::State& state) {
  auto keys = GenerateKeys(Dataset::kUniform, 100000, 3);
  const bool blocked = state.range(0) != 0;
  BloomFilter bf(keys.size() * 12,
                 BloomFilter::OptimalHashes(keys.size() * 12, keys.size()),
                 blocked);
  for (uint64_t k : keys) bf.InsertInt(k);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.MayContainInt(rng.Next()));
  }
}
BENCHMARK(BM_BloomProbe)->Arg(0)->Arg(1)
    ->ArgName("blocked");

void BM_BloomMultiProbe(benchmark::State& state) {
  // The batched probe kernel behind every MultiMayContain path, in the
  // regime it actually runs in: one per-SST blocked filter (100k keys at
  // 14 bpk ≈ 170 KB) that stays L2-resident across a query batch. avx2=0
  // forces the scalar fallback, so the {0,64} vs {1,64} pair is the
  // dispatch win; batch=1 shows the kernel's fixed overhead.
  auto keys = GenerateKeys(Dataset::kUniform, 100000, 3);
  BloomFilter bf(keys.size() * 14,
                 BloomFilter::OptimalHashes(keys.size() * 14, keys.size()),
                 /*blocked=*/true);
  for (uint64_t k : keys) bf.InsertInt(k);
  const size_t batch = static_cast<size_t>(state.range(1));
  const bool prev = SetForceScalar(state.range(0) == 0);
  Rng rng(4);
  std::vector<uint64_t> h1(batch), h2(batch);
  std::vector<uint8_t> out(batch);
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) {
      BloomFilter::HashInt(rng.Next(), &h1[i], &h2[i]);
    }
    bf.MultiContainHash(h1.data(), h2.data(), batch, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  SetForceScalar(prev);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_BloomMultiProbe)
    ->ArgNames({"avx2", "batch"})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Args({0, 64})
    ->Args({1, 64});

void BM_MultiRank1(benchmark::State& state) {
  // Batched rank9 lookups (the trie's MultiSeekGeq inner step) over a
  // 1 Mbit vector; positions stride past L1 so the gather's parallel
  // misses are what the AVX2 path buys.
  Rng rng(5);
  BitVector bv;
  for (int i = 0; i < 1 << 20; ++i) bv.PushBack(rng.NextBelow(2));
  RankSelect rs(&bv);
  const size_t batch = static_cast<size_t>(state.range(1));
  const bool prev = SetForceScalar(state.range(0) == 0);
  std::vector<uint64_t> pos(batch), out(batch);
  uint64_t x = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) {
      pos[i] = x;
      x = (x + 977) & ((1 << 20) - 1);
    }
    rs.MultiRank1(pos.data(), batch, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  SetForceScalar(prev);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_MultiRank1)
    ->ArgNames({"avx2", "batch"})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Args({0, 64})
    ->Args({1, 64});

void BM_PrefixBloomWalk(benchmark::State& state) {
  // The Proteus inner loop: a multi-prefix walk over consecutive l2
  // prefixes (hash + probe per prefix, pipelined with prefetch).
  auto keys = GenerateKeys(Dataset::kUniform, 100000, 3);
  const bool blocked = state.range(0) != 0;
  const uint64_t span = static_cast<uint64_t>(state.range(1));
  PrefixBloom pb(keys, keys.size() * 12, 54, blocked);
  Rng rng(41);
  for (auto _ : state) {
    uint64_t lo = rng.Next();
    uint64_t hi = lo + (span << 10);  // span prefixes at l=54
    if (hi < lo) hi = ~uint64_t{0};
    benchmark::DoNotOptimize(pb.MayContain(lo, hi));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(span));
}
BENCHMARK(BM_PrefixBloomWalk)
    ->ArgNames({"blocked", "prefixes"})
    ->Args({0, 16})
    ->Args({1, 16})
    ->Args({0, 64})
    ->Args({1, 64});

void BM_TwoPbfCoarseWalk(benchmark::State& state) {
  // The 2PBF coarse walk: one bf1 probe per l1 prefix overlapping the
  // range, each positive doubted at the fine filter. Ranges are drawn
  // uniformly, so with 100k keys in a 64-bit domain nearly every coarse
  // probe is negative and the walk itself dominates.
  auto keys = GenerateKeys(Dataset::kUniform, 100000, 19);
  const bool blocked = state.range(0) != 0;
  const uint64_t span = static_cast<uint64_t>(state.range(1));
  auto filter = TwoPbfFilter::BuildWithConfig(
      keys, TwoPbfFilter::Config{48, 60, 0.5}, 12.0, blocked);
  Rng rng(20);
  for (auto _ : state) {
    uint64_t lo = rng.Next();
    uint64_t hi = lo + (span << 16);  // span coarse prefixes at l1=48
    if (hi < lo) hi = ~uint64_t{0};
    benchmark::DoNotOptimize(filter->MayContain(lo, hi));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(span));
}
BENCHMARK(BM_TwoPbfCoarseWalk)
    ->ArgNames({"blocked", "prefixes"})
    ->Args({0, 16})
    ->Args({1, 16})
    ->Args({0, 64})
    ->Args({1, 64});

void BM_RankSelect(benchmark::State& state) {
  Rng rng(5);
  BitVector bv;
  for (int i = 0; i < 1 << 20; ++i) bv.PushBack(rng.NextBelow(2));
  RankSelect rs(&bv);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Rank1(i));
    i = (i + 977) & ((1 << 20) - 1);
  }
}
BENCHMARK(BM_RankSelect);

void BM_RankSelectSelect1(benchmark::State& state) {
  Rng rng(51);
  BitVector bv;
  for (int i = 0; i < 1 << 20; ++i) bv.PushBack(rng.NextBelow(2));
  RankSelect rs(&bv);
  const uint64_t ones = rs.ones();
  uint64_t r = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.Select1(r));
    r = r % ones + 1;
  }
}
BENCHMARK(BM_RankSelectSelect1);

void BM_BitTrieSeek(benchmark::State& state) {
  auto keys = GenerateKeys(Dataset::kUniform, 100000, 6);
  uint32_t depth = static_cast<uint32_t>(state.range(0));
  BitTrie trie;
  trie.Build(UniquePrefixes(keys, depth), depth);
  Rng rng(7);
  uint64_t mask = depth == 64 ? ~uint64_t{0} : ((uint64_t{1} << depth) - 1);
  for (auto _ : state) {
    uint64_t out;
    benchmark::DoNotOptimize(trie.SeekGeq(rng.Next() & mask, &out));
  }
}
BENCHMARK(BM_BitTrieSeek)->Arg(16)->Arg(32)->Arg(64);

void BM_BitTrieCursorNext(benchmark::State& state) {
  // The leaf-advance step of Proteus's MayContain: cursor Next() resumes
  // from the current leaf, versus the pre-cursor SeekGeq(v + 1) pattern
  // that re-descends from the root (measured below for comparison).
  auto keys = GenerateKeys(Dataset::kUniform, 100000, 6);
  uint32_t depth = static_cast<uint32_t>(state.range(0));
  BitTrie trie;
  trie.Build(UniquePrefixes(keys, depth), depth);
  BitTrie::Cursor cur(&trie);
  cur.SeekGeq(0);
  for (auto _ : state) {
    if (!cur.Next()) cur.SeekGeq(0);
    benchmark::DoNotOptimize(cur);
  }
}
BENCHMARK(BM_BitTrieCursorNext)->Arg(16)->Arg(32)->Arg(64);

void BM_BitTrieSeekSuccessor(benchmark::State& state) {
  // Baseline for BM_BitTrieCursorNext: advance by a fresh root descent.
  auto keys = GenerateKeys(Dataset::kUniform, 100000, 6);
  uint32_t depth = static_cast<uint32_t>(state.range(0));
  BitTrie trie;
  trie.Build(UniquePrefixes(keys, depth), depth);
  uint64_t max_prefix =
      depth == 64 ? ~uint64_t{0} : ((uint64_t{1} << depth) - 1);
  uint64_t v = 0;
  trie.SeekGeq(0, &v);
  for (auto _ : state) {
    if (v == max_prefix || !trie.SeekGeq(v + 1, &v)) trie.SeekGeq(0, &v);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_BitTrieSeekSuccessor)->Arg(16)->Arg(32)->Arg(64);

void BM_SurfRangeQuery(benchmark::State& state) {
  auto keys = GenerateKeys(Dataset::kUniform, 100000, 8);
  auto surf = SurfIntFilter::Build(keys, Surf::Options{});
  Rng rng(9);
  for (auto _ : state) {
    uint64_t lo = rng.Next();
    benchmark::DoNotOptimize(surf->MayContain(lo, lo + 1024));
  }
}
BENCHMARK(BM_SurfRangeQuery);

void BM_ProteusQuery(benchmark::State& state) {
  auto keys = GenerateKeys(Dataset::kUniform, 100000, 10);
  QuerySpec spec;
  spec.range_max = uint64_t{1} << 10;
  auto samples = GenerateQueries(keys, spec, 2000, 11);
  auto filter = FilterBuilder(keys).Sample(samples).Build("proteus:bpk=12");
  auto eval = GenerateQueries(keys, spec, 10000, 12);
  size_t i = 0;
  for (auto _ : state) {
    const auto& q = eval[i++ % eval.size()];
    benchmark::DoNotOptimize(filter->MayContain(q.lo, q.hi));
  }
}
BENCHMARK(BM_ProteusQuery);

void BM_RosettaQuery(benchmark::State& state) {
  auto keys = GenerateKeys(Dataset::kUniform, 100000, 13);
  QuerySpec spec;
  spec.range_max = uint64_t{1} << static_cast<uint32_t>(state.range(0));
  auto samples = GenerateQueries(keys, spec, 2000, 14);
  auto filter = RosettaFilter::BuildSelfConfigured(keys, samples, 12.0);
  auto eval = GenerateQueries(keys, spec, 10000, 15);
  size_t i = 0;
  for (auto _ : state) {
    const auto& q = eval[i++ % eval.size()];
    benchmark::DoNotOptimize(filter->MayContain(q.lo, q.hi));
  }
}
BENCHMARK(BM_RosettaQuery)->Arg(4)->Arg(12);

void BM_ProteusBuild(benchmark::State& state) {
  auto keys =
      GenerateKeys(Dataset::kNormal, static_cast<size_t>(state.range(0)), 16);
  QuerySpec spec;
  spec.dist = QueryDist::kCorrelated;
  spec.range_max = uint64_t{1} << 10;
  auto samples = GenerateQueries(keys, spec, 2000, 17);
  for (auto _ : state) {
    auto filter = FilterBuilder(keys).Sample(samples).Build("proteus:bpk=12");
    benchmark::DoNotOptimize(filter->SizeBits());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ProteusBuild)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_SkipListAdd(benchmark::State& state) {
  SkipList list;
  Rng rng(18);
  uint64_t seqno = 0;
  for (auto _ : state) {
    uint64_t k = rng.Next();
    list.Add(EncodeKeyBE(k), ++seqno, "value");
  }
}
BENCHMARK(BM_SkipListAdd);

void BM_RleCompressHalfZero(benchmark::State& state) {
  std::string value = MakeValuePayload(123, 512);
  for (auto _ : state) {
    auto out = RleCompress(value);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_RleCompressHalfZero);

}  // namespace
}  // namespace proteus

BENCHMARK_MAIN();
