// Figure 6: end-to-end range-query performance in miniLSM (the RocksDB
// stand-in) across four dataset-workload panels and memory budgets.
//
// For each (panel, BPK, filter) we populate a fresh DB, compact fully,
// warm the cache, then execute empty closed Seeks and report:
//   ns/seek      — measured wall latency per Seek
//   sst/seek     — SST files probed per Seek (the I/O the filter failed to
//                  avoid; disk-bound latency is proportional to this)
//   modeled ms   — wall time + cache-miss block reads x 100us, a simple
//                  SSD model (EXPERIMENTS.md discusses this substitution)
//   fileFPR      — false-positive file probes / filter checks
//   filter BPK   — measured filter memory per key

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "lsm/db.h"
#include "surf/surf.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace proteus {
namespace {

using bench::Args;

struct Panel {
  const char* name;
  Dataset dataset;
  QuerySpec spec;
};

void RunPanel(const Args& args, const Panel& panel) {
  const size_t n_keys = args.KeysOr(100000, 50000000);
  const size_t n_seeks = args.QueriesOr(20000, 1000000);
  const size_t value_size = 256;

  std::vector<uint64_t> keys, real_points;
  GenerateKeysAndQueryPoints(panel.dataset, n_keys, n_keys / 10, args.seed,
                             &keys, &real_points);
  auto seed_queries =
      GenerateQueries(keys, panel.spec, 2000, args.seed + 1, real_points);
  auto eval =
      GenerateQueries(keys, panel.spec, n_seeks, args.seed + 2, real_points);

  bench::PrintHeader(panel.name);
  std::printf("%-6s %-12s %-11s %-10s %-12s %-9s %-10s\n", "bpk", "filter",
              "ns/seek", "sst/seek", "modeled-ms", "fileFPR", "filterBPK");

  for (double bpk : {8.0, 12.0, 16.0}) {
    struct Entry {
      std::string name;
      std::string spec;  // FilterRegistry policy spec string
    };
    std::vector<Entry> entries = {
        {"none", "none"},
        {"proteus", "proteus:bpk=" + FormatSpecDouble(bpk)},
        {"surf-real4", "surf:mode=real,suffix=4"},
        {"rosetta", "rosetta:bpk=" + FormatSpecDouble(bpk)},
    };
    if (!args.filter.empty()) entries.push_back({args.filter, args.filter});
    for (const Entry& entry : entries) {
      DbOptions options;
      options.dir = "/tmp/proteus_bench_fig6";
      options.memtable_bytes = 4u << 20;
      options.sst_target_bytes = 8u << 20;
      options.block_cache_bytes = 32u << 20;
      options.l1_size_bytes = 16u << 20;
      options.filter_policy =
          bench::MakePolicyOrDie(entry.spec);
      auto [db_ptr, db_status] = Db::Create(options);
      if (!db_status.ok()) {
        std::fprintf(stderr, "db create failed: %s\n",
                     db_status.ToString().c_str());
        std::exit(1);
      }
      Db& db = *db_ptr;
      std::vector<std::pair<std::string, std::string>> seed;
      for (const auto& q : seed_queries) {
        seed.push_back({EncodeKeyBE(q.lo), EncodeKeyBE(q.hi)});
      }
      db.query_queue().Seed(seed);
      for (uint64_t k : keys) {
        db.Put(EncodeKeyBE(k), MakeValuePayload(k, value_size));
      }
      db.CompactAll();
      // Warm: point seeks on existing keys (paper warms cache with 1M
      // point queries).
      for (size_t i = 0; i < std::min<size_t>(n_keys, 20000); i += 7) {
        db.Seek(EncodeKeyBE(keys[i]), EncodeKeyBE(keys[i]));
      }
      db.ResetStats();
      db.cache().ResetStats();
      Stopwatch timer;
      for (const auto& q : eval) {
        db.Seek(EncodeKeyBE(q.lo), EncodeKeyBE(q.hi));
      }
      double wall_ns = static_cast<double>(timer.ElapsedNanos());
      const DbStats& stats = db.stats();
      double ns_per_seek = wall_ns / static_cast<double>(eval.size());
      double sst_per_seek = static_cast<double>(stats.sst_seeks) /
                            static_cast<double>(eval.size());
      double modeled_ms =
          wall_ns / 1e6 +
          static_cast<double>(db.cache().stats().misses) * 0.1;
      double file_fpr =
          stats.filter_checks == 0
              ? 0.0
              : static_cast<double>(stats.false_positive_files) /
                    static_cast<double>(stats.filter_checks);
      double filter_bpk = static_cast<double>(db.TotalFilterBits()) /
                          static_cast<double>(n_keys);
      std::printf("%-6.0f %-12s %-11.0f %-10.3f %-12.1f %-9.4f %-10.2f\n",
                  bpk, entry.name.c_str(), ns_per_seek, sst_per_seek,
                  modeled_ms,
                  file_fpr, filter_bpk);
    }
  }
}

void Run(const Args& args) {
  QuerySpec uu;
  uu.dist = QueryDist::kUniform;
  uu.range_max = uint64_t{1} << 14;
  QuerySpec uc;
  uc.dist = QueryDist::kCorrelated;
  uc.range_max = uint64_t{1} << 6;
  uc.corr_degree = uint64_t{1} << 10;
  QuerySpec ns;
  ns.dist = QueryDist::kSplit;
  ns.range_max = uint64_t{1} << 19;
  ns.split_corr_range_max = uint64_t{1} << 3;
  ns.corr_degree = uint64_t{1} << 3;
  QuerySpec fr;
  fr.dist = QueryDist::kReal;
  fr.range_max = uint64_t{1} << 10;

  const Panel panels[] = {
      {"Uniform-Uniform (large ranges)", Dataset::kUniform, uu},
      {"Uniform-Correlated (small ranges)", Dataset::kUniform, uc},
      {"Normal-Split", Dataset::kNormal, ns},
      {"Facebook-Real", Dataset::kFacebook, fr},
  };
  for (const Panel& p : panels) RunPanel(args, p);
}

}  // namespace
}  // namespace proteus

int main(int argc, char** argv) {
  auto args = proteus::bench::ParseArgs(argc, argv);
  std::printf("Figure 6: end-to-end miniLSM performance vs memory budget\n");
  proteus::Run(args);
  return 0;
}
