// Table 1: Chernoff-bound confidence for the sample size (Section 4.3,
// "Sample Size"). Reports the bound e^{-N d^2/(2p)} + e^{-N d^2/(3p)}
// maximized over p <= 0.1 for N d^2 in {1..5}, plus the paper's printed
// values for comparison. (The analytic maximum at p = 0.1 is ~10x the
// paper's table entries; we report both — see EXPERIMENTS.md.)

#include <cmath>
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  proteus::bench::ParseArgs(argc, argv);
  std::printf("Table 1: sample-size confidence bounds (p <= 0.1)\n\n");
  std::printf("%-8s %-14s %-14s %-12s\n", "N*d^2", "computed", "paper",
              "2e^{-2Nd^2}");
  const double paper[] = {0.00425, 0.00132, 0.00005, 0.000002, 0.0000001};
  for (int nd2 = 1; nd2 <= 5; ++nd2) {
    double p = 0.1;  // the bound is maximized at the largest admissible p
    double computed = std::exp(-nd2 / (2 * p)) + std::exp(-nd2 / (3 * p));
    double simple = 2 * std::exp(-2.0 * nd2);
    std::printf("%-8d %-14.7f %-14.7f %-12.7f\n", nd2, computed,
                paper[nd2 - 1], simple);
  }
  std::printf(
      "\nExample: N=10000 samples, d=0.01  => N*d^2 = 1;"
      " N=50000 => N*d^2 = 5.\n");
  return 0;
}
