// Ablations of the design choices DESIGN.md calls out:
//  1. Exponential binning vs exact per-query accumulation in the CPFPR
//     model (accuracy and selection-time; Section 4.3's binning argument).
//  2. Sample size vs out-of-sample FPR of the selected design (the
//     Table 1 confidence claim, empirically).
//  3. SuRF dense/sparse ratio (the knob Proteus tunes via its memory
//     model; Section 4.3).
//  4. 2PBF memory allocation profiles (the paper's 40/60, 50/50, 60/40).
//  5. Coarse Bloom-grid stride for long string keys (Section 7.2's
//     128-point search).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/proteus.h"
#include "core/proteus_str.h"
#include "model/cpfpr.h"
#include "model/cpfpr_str.h"
#include "surf/surf.h"
#include "workload/datasets.h"
#include "workload/queries.h"
#include "workload/string_gen.h"

namespace proteus {
namespace {

using bench::Args;

void BinningAblation(const Args& args) {
  const size_t n_keys = args.KeysOr(200000, 10000000);
  auto keys = GenerateKeys(Dataset::kUniform, n_keys, args.seed);
  QuerySpec spec;
  spec.range_max = uint64_t{1} << 18;  // wide spread of |Q_l|
  auto samples = GenerateQueries(keys, spec, args.SamplesOr(10000, 20000),
                                 args.seed + 1);
  CpfprModel model(keys, samples);
  uint64_t mem = static_cast<uint64_t>(12.0 * n_keys);

  bench::PrintHeader("Ablation 1 — binned vs exact model evaluation");
  Stopwatch t;
  double acc = 0;
  for (uint32_t l1 = 0; l1 <= 32; l1 += 4) {
    for (uint32_t l2 = l1 + 8; l2 <= 64; l2 += 4) {
      acc += model.ProteusFpr(l1, l2, mem);
    }
  }
  double binned_ms = t.ElapsedMillis();
  t.Reset();
  double acc_exact = 0;
  for (uint32_t l1 = 0; l1 <= 32; l1 += 4) {
    for (uint32_t l2 = l1 + 8; l2 <= 64; l2 += 4) {
      acc_exact += model.ProteusFprExact(l1, l2, mem);
    }
  }
  double exact_ms = t.ElapsedMillis();
  double max_diff = 0;
  for (uint32_t l1 = 0; l1 <= 32; l1 += 4) {
    for (uint32_t l2 = l1 + 8; l2 <= 64; l2 += 4) {
      double a = model.ProteusFpr(l1, l2, mem);
      double b = model.ProteusFprExact(l1, l2, mem);
      if (a <= 1.0 && b <= 1.0) max_diff = std::max(max_diff, std::abs(a - b));
    }
  }
  std::printf("binned eval: %.2f ms  exact eval: %.2f ms  speedup: %.1fx\n",
              binned_ms, exact_ms, exact_ms / std::max(binned_ms, 1e-9));
  std::printf("max |binned - exact| FPR over the grid: %.5f\n", max_diff);
}

void SampleSizeAblation(const Args& args) {
  const size_t n_keys = args.KeysOr(200000, 10000000);
  auto keys = GenerateKeys(Dataset::kNormal, n_keys, args.seed);
  QuerySpec spec;
  spec.dist = QueryDist::kSplit;
  spec.range_max = uint64_t{1} << 19;
  spec.split_corr_range_max = uint64_t{1} << 3;
  spec.corr_degree = uint64_t{1} << 3;
  auto eval = GenerateQueries(keys, spec, args.QueriesOr(20000, 1000000),
                              args.seed + 9);

  bench::PrintHeader("Ablation 2 — sample size vs achieved FPR");
  std::printf("%-10s %-12s %-12s %-20s\n", "samples", "expected", "observed",
              "design");
  for (size_t n : {250ul, 1000ul, 4000ul, 16000ul}) {
    auto samples = GenerateQueries(keys, spec, n, args.seed + 2);
    FilterBuilder builder(keys);
    builder.Sample(samples);
    auto filter =
        ProteusFilter::BuildFromSpec(FilterSpec("proteus"), builder, nullptr);
    double fpr = bench::MeasureFpr(*filter, eval);
    std::printf("%-10zu %-12.4f %-12.4f (t=%u,b=%u)\n", n,
                filter->modeled_fpr().value_or(-1.0), fpr,
                filter->config().trie_depth, filter->config().bf_prefix_len);
  }
}

void DenseRatioAblation(const Args& args) {
  const size_t n_keys = args.KeysOr(200000, 10000000);
  auto keys = GenerateKeys(Dataset::kUniform, n_keys, args.seed);
  QuerySpec spec;
  spec.range_max = uint64_t{1} << 8;
  auto eval = GenerateQueries(keys, spec, args.QueriesOr(20000, 1000000),
                              args.seed + 3);

  bench::PrintHeader("Ablation 3 — SuRF dense/sparse ratio");
  std::printf("%-8s %-10s %-10s %-14s %-12s\n", "ratio", "bpk", "fpr",
              "dense-nodes", "ns/query");
  for (uint32_t ratio : {0u, 4u, 16u, 64u}) {
    Surf::Options options;
    options.dense_ratio = ratio;
    auto surf = SurfIntFilter::Build(keys, options);
    double fpr = bench::MeasureFpr(*surf, eval);
    double ns = bench::MeanLatencyNanos(eval.size(), [&](size_t i) {
      volatile bool hit = surf->MayContain(eval[i].lo, eval[i].hi);
      (void)hit;
    });
    std::printf("%-8u %-10.2f %-10.4f %-14llu %-12.0f\n", ratio,
                surf->Bpk(keys.size()), fpr,
                static_cast<unsigned long long>(surf->surf().n_dense_nodes()),
                ns);
  }
}

void TwoPbfAllocationAblation(const Args& args) {
  const size_t n_keys = args.KeysOr(200000, 10000000);
  auto keys = GenerateKeys(Dataset::kNormal, n_keys, args.seed);
  QuerySpec spec;
  spec.dist = QueryDist::kSplit;
  spec.range_max = uint64_t{1} << 15;
  spec.split_corr_range_max = uint64_t{1} << 3;
  spec.corr_degree = uint64_t{1} << 3;
  auto samples = GenerateQueries(keys, spec, args.SamplesOr(5000, 20000),
                                 args.seed + 4);
  CpfprModel model(keys, samples);
  uint64_t mem = static_cast<uint64_t>(12.0 * n_keys);

  bench::PrintHeader("Ablation 4 — 2PBF memory allocation profiles");
  std::printf("%-8s %-20s %-12s\n", "frac1", "best (l1,l2)", "expected-fpr");
  for (double frac : {0.4, 0.5, 0.6}) {
    double best = 2.0;
    uint32_t bl1 = 0, bl2 = 0;
    for (uint32_t l1 = 1; l1 <= 63; ++l1) {
      for (uint32_t l2 = l1 + 1; l2 <= 64; ++l2) {
        double f = model.TwoPbfFpr(l1, l2, frac, mem);
        if (f < best) {
          best = f;
          bl1 = l1;
          bl2 = l2;
        }
      }
    }
    std::printf("%-8.1f (%u,%u)%-12s %-12.4f\n", frac, bl1, bl2, "", best);
  }
}

void StringGridAblation(const Args& args) {
  const size_t key_bytes = 64;
  const size_t n_keys = args.KeysOr(10000, 10000000);
  auto keys = GenerateStrKeys(StrDataset::kUniform, n_keys, key_bytes,
                              args.seed);
  StrQuerySpec spec;
  spec.dist = StrQueryDist::kSplit;
  spec.range_max = uint64_t{1} << 30;
  spec.corr_degree = uint64_t{1} << 29;
  spec.split_corr_range_max = uint64_t{1} << 10;
  spec.max_bytes = key_bytes;
  auto samples = GenerateStrQueries(keys, spec, args.SamplesOr(1000, 20000),
                                    args.seed + 5);
  auto eval = GenerateStrQueries(keys, spec, args.QueriesOr(3000, 1000000),
                                 args.seed + 6);

  bench::PrintHeader(
      "Ablation 5 — coarse Bloom-grid stride for 512-bit string keys");
  std::printf("%-10s %-14s %-10s %-22s\n", "grid", "model-ms", "fpr",
              "design");
  for (uint32_t grid_points : {16u, 64u, 128u, 512u}) {
    StrCpfprOptions grid;
    grid.bloom_grid = grid_points;
    grid.trie_grid = 32;
    Stopwatch t;
    auto filter = ProteusStrFilter::BuildSelfDesigned(
        keys, samples, 12.0, static_cast<uint32_t>(key_bytes * 8), grid);
    double ms = t.ElapsedMillis();
    double fpr = bench::MeasureFprStr(*filter, eval);
    std::printf("%-10u %-14.1f %-10.4f (t=%u,b=%u)\n", grid_points, ms, fpr,
                filter->config().trie_depth, filter->config().bf_prefix_len);
  }
}

}  // namespace
}  // namespace proteus

int main(int argc, char** argv) {
  auto args = proteus::bench::ParseArgs(argc, argv);
  std::printf("Ablations of Proteus' design choices\n");
  proteus::BinningAblation(args);
  proteus::SampleSizeAblation(args);
  proteus::DenseRatioAblation(args);
  proteus::TwoPbfAllocationAblation(args);
  proteus::StringGridAblation(args);
  return 0;
}
