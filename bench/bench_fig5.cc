// Figure 5: Proteus configures optimal designs on diverse workloads, vs
// SuRF (best over all real/hash suffix configurations that fit the budget)
// and Rosetta, across memory budgets.
//
// Rows: dataset-workload pairs from the paper; columns: query shapes
// (point / small range / large range / mixed); series: FPR at BPK in
// {8..18}. Proteus' chosen (trie, bloom) design is printed per cell.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/proteus.h"
#include "rosetta/rosetta.h"
#include "surf/surf.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace proteus {
namespace {

using bench::Args;

struct Row {
  const char* name;
  Dataset dataset;
  QueryDist dist;
};

struct Col {
  const char* name;
  uint64_t range_max;      // 0 = point queries
  double point_fraction;   // mixed column uses 0.5
};

void Run(const Args& args) {
  const size_t n_keys = args.KeysOr(100000, 10000000);
  const size_t n_samples = args.SamplesOr(2000, 20000);
  const size_t n_eval = args.QueriesOr(10000, 1000000);
  const std::vector<double> bpks = {8, 10, 12, 14, 16, 18};
  bench::JsonSink json;
  auto record = [&json](const Row& row, const Col& col, const char* series,
                        double bpk, double fpr) {
    json.Add()
        .Str("workload", row.name)
        .Str("queries", col.name)
        .Str("filter", series)
        .Num("bpk", bpk)
        .Num("fpr", fpr);
  };

  const Row rows[] = {
      {"Uniform-Uniform", Dataset::kUniform, QueryDist::kUniform},
      {"Uniform-Correlated", Dataset::kUniform, QueryDist::kCorrelated},
      {"Normal-Uniform", Dataset::kNormal, QueryDist::kUniform},
      {"Normal-Split", Dataset::kNormal, QueryDist::kSplit},
      {"Books-Real", Dataset::kBooks, QueryDist::kReal},
      {"Facebook-Real", Dataset::kFacebook, QueryDist::kReal},
  };
  const Col cols[] = {
      {"point", 0, 0.0},
      {"small-range(2^6)", uint64_t{1} << 6, 0.0},
      {"large-range(2^14)", uint64_t{1} << 14, 0.0},
      {"mixed(point+2^10)", uint64_t{1} << 10, 0.5},
  };

  for (const Row& row : rows) {
    std::vector<uint64_t> keys, real_points;
    if (row.dist == QueryDist::kReal) {
      GenerateKeysAndQueryPoints(row.dataset, n_keys, n_keys / 10, args.seed,
                                 &keys, &real_points);
    } else {
      keys = GenerateKeys(row.dataset, n_keys, args.seed);
    }

    // SuRF configurations are workload-independent: build once per dataset.
    std::vector<std::unique_ptr<SurfIntFilter>> surfs;
    surfs.push_back(SurfIntFilter::Build(keys, Surf::Options{}));
    for (uint32_t bits : {2u, 4u, 8u}) {
      Surf::Options real;
      real.suffix_mode = SurfSuffixMode::kReal;
      real.suffix_bits = bits;
      surfs.push_back(SurfIntFilter::Build(keys, real));
      Surf::Options hash;
      hash.suffix_mode = SurfSuffixMode::kHash;
      hash.suffix_bits = bits;
      surfs.push_back(SurfIntFilter::Build(keys, hash));
    }

    for (const Col& col : cols) {
      QuerySpec spec;
      spec.dist = row.dist;
      spec.range_max = col.range_max;
      spec.point_fraction = col.point_fraction;
      spec.corr_degree = uint64_t{1} << 10;
      auto samples =
          GenerateQueries(keys, spec, n_samples, args.seed + 3, real_points);
      auto eval =
          GenerateQueries(keys, spec, n_eval, args.seed + 4, real_points);

      bench::PrintHeader(
          (std::string(row.name) + " / " + col.name).c_str());
      std::printf("%-6s %-9s %-22s %-9s %-9s %-14s\n", "bpk", "proteus",
                  "proteus-design", "rosetta", "surf", "surf-config");
      // One FilterBuilder per workload cell: the CPFPR model is gathered
      // once and reused across the whole bpk sweep.
      FilterBuilder builder(keys);
      builder.Sample(samples);
      for (double bpk : bpks) {
        uint64_t budget =
            static_cast<uint64_t>(bpk * static_cast<double>(n_keys));
        FilterSpec proteus_spec("proteus");
        proteus_spec.Set("bpk", FormatSpecDouble(bpk));
        auto proteus = ProteusFilter::BuildFromSpec(proteus_spec, builder,
                                                    nullptr);
        double fpr_p = bench::MeasureFpr(*proteus, eval);
        auto rosetta =
            RosettaFilter::BuildSelfConfigured(keys, samples, bpk);
        double fpr_r = bench::MeasureFpr(*rosetta, eval);
        double fpr_s = 2.0;
        std::string best_name = "none-fits";
        for (const auto& s : surfs) {
          if (s->SizeBits() > budget) continue;
          double f = bench::MeasureFpr(*s, eval);
          if (f < fpr_s) {
            fpr_s = f;
            best_name = s->Name();
          }
        }
        char design[32];
        std::snprintf(design, sizeof(design), "(t=%u,b=%u)",
                      proteus->config().trie_depth,
                      proteus->config().bf_prefix_len);
        if (fpr_s > 1.0) {
          std::printf("%-6.0f %-9.4f %-22s %-9.4f %-9s %-14s\n", bpk, fpr_p,
                      design, fpr_r, "-", best_name.c_str());
        } else {
          std::printf("%-6.0f %-9.4f %-22s %-9.4f %-9.4f %-14s\n", bpk, fpr_p,
                      design, fpr_r, fpr_s, best_name.c_str());
        }
        record(row, col, "proteus", bpk, fpr_p);
        record(row, col, "rosetta", bpk, fpr_r);
        if (fpr_s <= 1.0) record(row, col, best_name.c_str(), bpk, fpr_s);
      }
      if (!args.filter.empty()) {
        // Any registered family rides along with zero bench plumbing;
        // string families see the keys through their order-preserving
        // big-endian encoding.
        double fpr, extra_bpk;
        std::string name;
        if (bench::SpecIsStringFamily(args.filter)) {
          auto str_keys = bench::EncodeKeysBE(keys);
          auto extra = bench::BuildStrFilter(args.filter, str_keys,
                                             bench::EncodeQueriesBE(samples));
          fpr = bench::MeasureFprStr(*extra, bench::EncodeQueriesBE(eval));
          extra_bpk = extra->Bpk(keys.size());
          name = extra->Name();
        } else {
          std::string error;
          auto extra = builder.Build(args.filter, &error);
          if (extra == nullptr) {
            std::fprintf(stderr, "--filter=%s: %s\n", args.filter.c_str(),
                         error.c_str());
            std::exit(1);
          }
          fpr = bench::MeasureFpr(*extra, eval);
          extra_bpk = extra->Bpk(keys.size());
          name = extra->Name();
        }
        std::printf("--filter=%s: %s fpr=%.4f bpk=%.2f\n",
                    args.filter.c_str(), name.c_str(), fpr, extra_bpk);
        record(row, col, args.filter.c_str(), extra_bpk, fpr);
      }
    }
  }
  if (!args.json_path.empty()) {
    json.WriteArrayOrDie(args.json_path);
    std::printf("\nwrote %s\n", args.json_path.c_str());
  }
}

}  // namespace
}  // namespace proteus

int main(int argc, char** argv) {
  auto args = proteus::bench::ParseArgs(argc, argv);
  std::printf(
      "Figure 5: FPR vs memory budget across datasets and workloads\n");
  proteus::Run(args);
  return 0;
}
