// Table 2: breakdown of filter construction time, including modeling
// (Section 4.3, "Modeling Cost Breakdown").
//
// Workload (the paper's modeling worst case): Normal keys, correlated
// empty sample queries with range sizes U[2, 2^20], 10 BPK. Columns:
//   key stats   = Count Key Prefixes (|K_l| via successive LCPs)
//   trie mem    = Calculate Trie Memory
//   query stats = Count Query Prefixes (gather + binning)
//   config fprs = Calculate Configuration FPRs (Algorithm 1 selection)
//   build       = filter construction proper
// 1PBF / 2PBF / Proteus share one gathering pass (CpfprModel); its cost is
// attributed to "query stats".

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/one_pbf.h"
#include "core/proteus.h"
#include "core/two_pbf.h"
#include "model/cpfpr.h"
#include "rosetta/rosetta.h"
#include "surf/surf.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace proteus {
namespace {

void Run(const bench::Args& args) {
  const size_t n_keys = args.KeysOr(1000000, 10000000);
  const size_t n_samples = args.SamplesOr(20000, 20000);
  const double bpk = 10.0;

  std::printf("keys=%zu samples=%zu bpk=%.0f (times in ms)\n\n", n_keys,
              n_samples, bpk);

  auto keys = GenerateKeys(Dataset::kNormal, n_keys, args.seed);
  QuerySpec spec;
  spec.dist = QueryDist::kCorrelated;
  spec.range_max = uint64_t{1} << 20;
  spec.corr_degree = uint64_t{1} << 10;
  auto samples = GenerateQueries(keys, spec, n_samples, args.seed + 1);
  uint64_t budget = static_cast<uint64_t>(bpk * static_cast<double>(n_keys));

  // Shared gathering phases, timed separately.
  Stopwatch t;
  KeyStats stats = KeyStats::FromSortedInts(keys);
  double key_stats_ms = t.ElapsedMillis();
  t.Reset();
  TrieMemoryModel trie_model(stats);
  double trie_mem_ms = t.ElapsedMillis();
  t.Reset();
  CpfprModel model(keys, samples);
  double gather_total_ms = t.ElapsedMillis();
  double query_stats_ms = gather_total_ms - key_stats_ms - trie_mem_ms;
  if (query_stats_ms < 0) query_stats_ms = gather_total_ms;

  std::printf("%-10s %-10s %-9s %-12s %-12s %-10s %-10s\n", "filter",
              "key-stats", "trie-mem", "query-stats", "config-fprs", "build",
              "total");

  auto row = [&](const char* name, double ks, double tm, double qs,
                 double cf, double build) {
    std::printf("%-10s %-10.1f %-9.1f %-12.1f %-12.1f %-10.1f %-10.1f\n",
                name, ks, tm, qs, cf, build, ks + tm + qs + cf + build);
  };

  {
    t.Reset();
    OnePbfDesign design = model.SelectOnePbf(budget);
    double config_ms = t.ElapsedMillis();
    t.Reset();
    auto filter = OnePbfFilter::BuildWithConfig(keys, design.prefix_len, bpk);
    double build_ms = t.ElapsedMillis();
    row("1PBF", key_stats_ms, 0, query_stats_ms, config_ms, build_ms);
  }
  {
    t.Reset();
    TwoPbfDesign design = model.SelectTwoPbf(budget);
    double config_ms = t.ElapsedMillis();
    t.Reset();
    auto filter = TwoPbfFilter::BuildWithConfig(
        keys, TwoPbfFilter::Config{design.l1, design.l2, design.frac1}, bpk);
    double build_ms = t.ElapsedMillis();
    row("2PBF", key_stats_ms, 0, query_stats_ms, config_ms, build_ms);
  }
  {
    t.Reset();
    ProteusDesign design = model.SelectProteus(budget);
    double config_ms = t.ElapsedMillis();
    t.Reset();
    auto filter = ProteusFilter::BuildWithConfig(
        keys, ProteusFilter::Config{design.trie_depth, design.bf_prefix_len},
        bpk);
    double build_ms = t.ElapsedMillis();
    row("Proteus", key_stats_ms, trie_mem_ms, query_stats_ms, config_ms,
        build_ms);
    std::printf("  (selected design: trie=%u bloom=%u, expected fpr %.4f)\n",
                design.trie_depth, design.bf_prefix_len, design.expected_fpr);
  }
  {
    t.Reset();
    auto surf = SurfIntFilter::Build(keys, Surf::Options{});
    double build_ms = t.ElapsedMillis();
    row("SuRF", 0, 0, 0, 0, build_ms);
  }
  {
    t.Reset();
    auto rosetta = RosettaFilter::BuildSelfConfigured(keys, samples, bpk);
    double build_ms = t.ElapsedMillis();
    row("Rosetta", 0, 0, 0, 0, build_ms);
  }
}

}  // namespace
}  // namespace proteus

int main(int argc, char** argv) {
  auto args = proteus::bench::ParseArgs(argc, argv);
  std::printf("Table 2: filter construction time breakdown\n");
  proteus::Run(args);
  return 0;
}
