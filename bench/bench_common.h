// Shared utilities for the per-figure/table benchmark harnesses.
//
// Every harness accepts:
//   --scale=small|paper   (default small: minutes on a laptop; paper: the
//                          publication's sizes — hours)
//   --keys=N --queries=N --samples=N --seed=N   (explicit overrides)
//   --filter=SPEC         (registry spec string, e.g. "proteus:bpk=12";
//                          harnesses that accept it add the filter as an
//                          extra series, so new families need no bench
//                          plumbing)
//   --json=PATH           (harnesses that support it also dump their
//                          series as a JSON array — machine-readable for
//                          the CI bench-smoke artifact)
//
// Output is whitespace-aligned tables on stdout, one series per paper
// line/panel, so EXPERIMENTS.md can quote them directly.

#ifndef PROTEUS_BENCH_BENCH_COMMON_H_
#define PROTEUS_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/filter_builder.h"
#include "core/filter_registry.h"
#include "lsm/filter_policy.h"
#include "core/range_filter.h"
#include "core/query.h"
#include "surf/surf.h"  // EncodeKeyBE
#include "util/timer.h"

namespace proteus {
namespace bench {

struct Args {
  bool paper_scale = false;
  uint64_t keys = 0;     // 0 = harness default
  uint64_t queries = 0;
  uint64_t samples = 0;
  uint64_t seed = 42;
  std::string filter;    // optional extra series: registry spec string
  std::string json_path; // optional machine-readable dump (--json=PATH)

  uint64_t KeysOr(uint64_t small, uint64_t paper) const {
    if (keys != 0) return keys;
    return paper_scale ? paper : small;
  }
  uint64_t QueriesOr(uint64_t small, uint64_t paper) const {
    if (queries != 0) return queries;
    return paper_scale ? paper : small;
  }
  uint64_t SamplesOr(uint64_t small, uint64_t paper) const {
    if (samples != 0) return samples;
    return paper_scale ? paper : small;
  }
};

inline Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--scale=", 8) == 0) {
      args.paper_scale = std::strcmp(a + 8, "paper") == 0;
    } else if (std::strncmp(a, "--keys=", 7) == 0) {
      args.keys = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strncmp(a, "--queries=", 10) == 0) {
      args.queries = std::strtoull(a + 10, nullptr, 10);
    } else if (std::strncmp(a, "--samples=", 10) == 0) {
      args.samples = std::strtoull(a + 10, nullptr, 10);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      args.seed = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strncmp(a, "--filter=", 9) == 0) {
      args.filter = a + 9;
    } else if (std::strncmp(a, "--json=", 7) == 0) {
      args.json_path = a + 7;
    } else if (std::strcmp(a, "--help") == 0) {
      std::printf(
          "flags: --scale=small|paper --keys=N --queries=N --samples=N "
          "--seed=N --filter=SPEC --json=PATH\n");
      std::exit(0);
    }
  }
  return args;
}

/// True when `spec` names a string-key family (surf-str, proteus-str,
/// bloom-str): the harness then feeds keys/queries through their
/// order-preserving 8-byte big-endian encoding.
inline bool SpecIsStringFamily(const std::string& spec) {
  FilterSpec parsed;
  if (!FilterSpec::Parse(spec, &parsed)) return false;
  const FilterFamily* family = FilterRegistry::Global().Find(parsed.family());
  return family != nullptr && family->build_str != nullptr &&
         family->build_int == nullptr;
}

inline std::vector<std::string> EncodeKeysBE(
    const std::vector<uint64_t>& keys) {
  std::vector<std::string> out;
  out.reserve(keys.size());
  for (uint64_t k : keys) out.push_back(EncodeKeyBE(k));
  return out;
}

inline std::vector<StrRangeQuery> EncodeQueriesBE(
    const std::vector<RangeQuery>& queries) {
  std::vector<StrRangeQuery> out;
  out.reserve(queries.size());
  for (const auto& q : queries) {
    out.push_back({EncodeKeyBE(q.lo), EncodeKeyBE(q.hi)});
  }
  return out;
}

/// Flat JSON records collected into a single array file — enough
/// structure for the CI bench-smoke artifact without a JSON dependency.
class JsonSink {
 public:
  class Record {
   public:
    Record& Str(const char* key, std::string_view v) {
      Key(key);
      body_.push_back('"');
      Escape(v);
      body_.push_back('"');
      return *this;
    }
    Record& Num(const char* key, double v) {
      Key(key);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", v);
      body_ += buf;
      return *this;
    }

   private:
    friend class JsonSink;
    void Key(const char* key) {
      body_ += body_.empty() ? "{\"" : ",\"";
      body_ += key;
      body_ += "\":";
    }
    void Escape(std::string_view v) {
      for (char c : v) {
        if (c == '"' || c == '\\') {
          body_.push_back('\\');
          body_.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          body_ += buf;
        } else {
          body_.push_back(c);
        }
      }
    }
    std::string body_;
  };

  Record& Add() {
    records_.emplace_back();
    return records_.back();
  }

  /// Writes "[{...},\n {...}]\n"; exits with a message on I/O failure so
  /// CI never uploads a half-written artifact.
  void WriteArrayOrDie(const std::string& path) const {
    FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      std::exit(1);
    }
    std::fputc('[', f);
    for (size_t i = 0; i < records_.size(); ++i) {
      if (i > 0) std::fputs(",\n ", f);
      std::fputs(records_[i].body_.empty() ? "{" : records_[i].body_.c_str(),
                 f);
      std::fputc('}', f);
    }
    bool ok = std::fputs("]\n", f) >= 0 && std::fflush(f) == 0;
    std::fclose(f);
    if (!ok) {
      std::fprintf(stderr, "error writing %s\n", path.c_str());
      std::exit(1);
    }
  }

 private:
  std::vector<Record> records_;
};

/// Creates a policy from a spec string, exiting with a message on a bad
/// spec ("none" yields the no-filter policy).
inline std::shared_ptr<FilterPolicy> MakePolicyOrDie(const std::string& spec) {
  Status status;
  auto policy = MakeFilterPolicy(spec, &status);
  if (policy == nullptr) {
    std::fprintf(stderr, "filter policy spec \"%s\": %s\n", spec.c_str(),
                 status.ToString().c_str());
    std::exit(1);
  }
  return policy;
}

/// Builds a filter from a registry spec string, exiting with a message on
/// a bad spec (benches have no error recovery path worth taking).
inline std::unique_ptr<RangeFilter> BuildFilter(
    const std::string& spec, const std::vector<uint64_t>& keys,
    const std::vector<RangeQuery>& samples) {
  std::string error;
  FilterBuilder builder(keys);
  builder.Sample(samples);
  auto filter = builder.Build(spec, &error);
  if (filter == nullptr) {
    std::fprintf(stderr, "filter spec \"%s\": %s\n", spec.c_str(),
                 error.c_str());
    std::exit(1);
  }
  return filter;
}

inline std::unique_ptr<StrRangeFilter> BuildStrFilter(
    const std::string& spec, const std::vector<std::string>& keys,
    const std::vector<StrRangeQuery>& samples) {
  std::string error;
  StrFilterBuilder builder(keys);
  builder.Sample(samples);
  auto filter = builder.Build(spec, &error);
  if (filter == nullptr) {
    std::fprintf(stderr, "filter spec \"%s\": %s\n", spec.c_str(),
                 error.c_str());
    std::exit(1);
  }
  return filter;
}

/// Observed FPR of an integer range filter on (empty) queries.
inline double MeasureFpr(const RangeFilter& filter,
                         const std::vector<RangeQuery>& queries) {
  size_t fp = 0;
  for (const auto& q : queries) fp += filter.MayContain(q.lo, q.hi);
  return queries.empty() ? 0.0
                         : static_cast<double>(fp) /
                               static_cast<double>(queries.size());
}

inline double MeasureFprStr(const StrRangeFilter& filter,
                            const std::vector<StrRangeQuery>& queries) {
  size_t fp = 0;
  for (const auto& q : queries) fp += filter.MayContain(q.lo, q.hi);
  return queries.empty() ? 0.0
                         : static_cast<double>(fp) /
                               static_cast<double>(queries.size());
}

/// Throughput helper: mean query latency in nanoseconds.
template <typename Fn>
double MeanLatencyNanos(size_t n, Fn&& fn) {
  Stopwatch timer;
  for (size_t i = 0; i < n; ++i) fn(i);
  return static_cast<double>(timer.ElapsedNanos()) / static_cast<double>(n);
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace bench
}  // namespace proteus

#endif  // PROTEUS_BENCH_BENCH_COMMON_H_
