// Shared utilities for the per-figure/table benchmark harnesses.
//
// Every harness accepts:
//   --scale=small|paper   (default small: minutes on a laptop; paper: the
//                          publication's sizes — hours)
//   --keys=N --queries=N --samples=N --seed=N   (explicit overrides)
//
// Output is whitespace-aligned tables on stdout, one series per paper
// line/panel, so EXPERIMENTS.md can quote them directly.

#ifndef PROTEUS_BENCH_BENCH_COMMON_H_
#define PROTEUS_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/range_filter.h"
#include "core/query.h"
#include "util/timer.h"

namespace proteus {
namespace bench {

struct Args {
  bool paper_scale = false;
  uint64_t keys = 0;     // 0 = harness default
  uint64_t queries = 0;
  uint64_t samples = 0;
  uint64_t seed = 42;

  uint64_t KeysOr(uint64_t small, uint64_t paper) const {
    if (keys != 0) return keys;
    return paper_scale ? paper : small;
  }
  uint64_t QueriesOr(uint64_t small, uint64_t paper) const {
    if (queries != 0) return queries;
    return paper_scale ? paper : small;
  }
  uint64_t SamplesOr(uint64_t small, uint64_t paper) const {
    if (samples != 0) return samples;
    return paper_scale ? paper : small;
  }
};

inline Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--scale=", 8) == 0) {
      args.paper_scale = std::strcmp(a + 8, "paper") == 0;
    } else if (std::strncmp(a, "--keys=", 7) == 0) {
      args.keys = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strncmp(a, "--queries=", 10) == 0) {
      args.queries = std::strtoull(a + 10, nullptr, 10);
    } else if (std::strncmp(a, "--samples=", 10) == 0) {
      args.samples = std::strtoull(a + 10, nullptr, 10);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      args.seed = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strcmp(a, "--help") == 0) {
      std::printf(
          "flags: --scale=small|paper --keys=N --queries=N --samples=N "
          "--seed=N\n");
      std::exit(0);
    }
  }
  return args;
}

/// Observed FPR of an integer range filter on (empty) queries.
inline double MeasureFpr(const RangeFilter& filter,
                         const std::vector<RangeQuery>& queries) {
  size_t fp = 0;
  for (const auto& q : queries) fp += filter.MayContain(q.lo, q.hi);
  return queries.empty() ? 0.0
                         : static_cast<double>(fp) /
                               static_cast<double>(queries.size());
}

inline double MeasureFprStr(const StrRangeFilter& filter,
                            const std::vector<StrRangeQuery>& queries) {
  size_t fp = 0;
  for (const auto& q : queries) fp += filter.MayContain(q.lo, q.hi);
  return queries.empty() ? 0.0
                         : static_cast<double>(fp) /
                               static_cast<double>(queries.size());
}

/// Throughput helper: mean query latency in nanoseconds.
template <typename Fn>
double MeanLatencyNanos(size_t n, Fn&& fn) {
  Stopwatch timer;
  for (size_t i = 0; i < n; ++i) fn(i);
  return static_cast<double>(timer.ElapsedNanos()) / static_cast<double>(n);
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace bench
}  // namespace proteus

#endif  // PROTEUS_BENCH_BENCH_COMMON_H_
