// Figure 8: Proteus under an immediate, extreme workload shift (the
// distribution flips at the halfway point with no mixing). This is the
// --instant variant of the Figure 7 harness, Proteus only, matching the
// paper's presentation. See bench_fig7.cc for the mechanics.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  // Delegate to the fig7 binary logic by exec-ing it with --instant when
  // available; otherwise instruct the user. Keeping one implementation
  // avoids the two harnesses drifting apart.
  std::string self(argv[0]);
  auto slash = self.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : self.substr(0, slash);
  std::string cmd = dir + "/bench_fig7 --instant";
  for (int i = 1; i < argc; ++i) {
    cmd += " ";
    cmd += argv[i];
  }
  std::printf("(delegating to: %s)\n", cmd.c_str());
  return std::system(cmd.c_str());
}
