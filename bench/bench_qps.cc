// Load generator for the batched query engine: sequential Seek versus
// MultiSeek at several batch sizes over a multi-SST tree, reporting
// throughput and p50/p99/p999 request latency.
//
// Modes:
//   closed loop (default): the next request is issued the moment the
//     previous one completes; latency is pure service time.
//   open loop (--rate=QPS): requests arrive on a fixed schedule whether
//     or not the engine has caught up, so latency includes queue delay —
//     the tail a real server would show at that offered load.
//   --server=HOST:PORT: drive a running example_server over the wire
//     protocol instead of the in-process engine (the DB flags are then
//     ignored; make the server's --keys match for a meaningful found%).
//
// Extra flags beyond bench_common's: --batch=1,16,64,256 (comma list;
// batch 1 runs the one-at-a-time Seek baseline), --scheduler=SPEC,
// --rate=QPS, --cache-mb=N. --json=PATH dumps one record per (mode,
// batch) pair.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench_common.h"
#include "engine/query_engine.h"
#include "engine/wire.h"
#include "lsm/db.h"
#include "workload/datasets.h"
#include "workload/queries.h"

namespace proteus {
namespace {

double PercentileUs(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted_us.size() - 1);
  return sorted_us[static_cast<size_t>(rank + 0.5)];
}

// --- wire-protocol client (for --server mode) ---

int ConnectTo(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    ssize_t w = ::write(fd, data.data(), data.size());
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(w));
  }
  return true;
}

bool RecvExact(int fd, char* buf, size_t n) {
  while (n > 0) {
    ssize_t r = ::read(fd, buf, n);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      return false;
    }
    buf += r;
    n -= static_cast<size_t>(r);
  }
  return true;
}

bool RecvFrame(int fd, std::string* payload) {
  char header[4];
  if (!RecvExact(fd, header, 4)) return false;
  const uint32_t length = LoadFixed32(header);
  if (length > kWireMaxFrameBytes) return false;
  payload->resize(length);
  return length == 0 || RecvExact(fd, payload->data(), length);
}

bool ServerRoundTrip(int fd, const QueryBatch& batch,
                     std::vector<MultiSeekResult>* results) {
  std::string request, payload;
  WireEncodeMultiSeekRequest(batch, &request);
  return SendAll(fd, request) && RecvFrame(fd, &payload) &&
         WireDecodeResultsResponse(payload, results);
}

struct QpsArgs {
  std::vector<uint64_t> batches = {1, 16, 64, 256};
  std::string scheduler = "sorted";
  double rate = 0.0;  // open-loop offered load in queries/sec; 0 = closed
  uint64_t cache_mb = 2;
  std::string server_host;
  uint16_t server_port = 0;
};

QpsArgs ParseQpsArgs(int argc, char** argv) {
  QpsArgs args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--batch=", 8) == 0) {
      args.batches.clear();
      for (const char* p = a + 8; *p != '\0';) {
        args.batches.push_back(std::strtoull(p, const_cast<char**>(&p), 10));
        if (*p == ',') ++p;
      }
    } else if (std::strncmp(a, "--scheduler=", 12) == 0) {
      args.scheduler = a + 12;
    } else if (std::strncmp(a, "--rate=", 7) == 0) {
      args.rate = std::strtod(a + 7, nullptr);
    } else if (std::strncmp(a, "--cache-mb=", 11) == 0) {
      args.cache_mb = std::strtoull(a + 11, nullptr, 10);
    } else if (std::strncmp(a, "--server=", 9) == 0) {
      std::string hostport = a + 9;
      size_t colon = hostport.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--server needs HOST:PORT\n");
        std::exit(1);
      }
      args.server_host = hostport.substr(0, colon);
      args.server_port = static_cast<uint16_t>(
          std::strtoul(hostport.c_str() + colon + 1, nullptr, 10));
    }
  }
  if (args.batches.empty()) args.batches.push_back(1);
  return args;
}

struct RunResult {
  double qps = 0.0;
  double p50_us = 0.0, p99_us = 0.0, p999_us = 0.0;
  uint64_t found = 0;
  BatchStats stats;  // in-process modes only
};

/// One timed pass over `queries` in batches of `batch`. `issue` runs one
/// batch and returns how many queries it found. Open loop (rate > 0)
/// schedules batch i's arrival at i*batch/rate seconds and counts queue
/// delay into its latency.
template <typename IssueFn>
RunResult RunLoop(const std::vector<StrRangeQuery>& queries, uint64_t batch,
                  double rate, IssueFn&& issue) {
  RunResult out;
  std::vector<double> latencies_us;
  latencies_us.reserve(queries.size() / batch + 1);
  Stopwatch wall;
  size_t batch_index = 0;
  for (size_t off = 0; off < queries.size(); off += batch, ++batch_index) {
    const size_t n = std::min<size_t>(batch, queries.size() - off);
    QueryBatch b(queries.begin() + off, queries.begin() + off + n);
    double arrival_ns = static_cast<double>(wall.ElapsedNanos());
    if (rate > 0) {
      arrival_ns =
          static_cast<double>(batch_index) * static_cast<double>(batch) /
          rate * 1e9;
      while (static_cast<double>(wall.ElapsedNanos()) < arrival_ns) {
        // Offered load is fixed: spin until this batch's scheduled
        // arrival (sleeping overshoots at microsecond gaps).
      }
      arrival_ns = std::min(arrival_ns,
                            static_cast<double>(wall.ElapsedNanos()));
    }
    out.found += issue(b);
    latencies_us.push_back(
        (static_cast<double>(wall.ElapsedNanos()) - arrival_ns) / 1e3);
  }
  const double seconds = wall.ElapsedSeconds();
  out.qps = seconds == 0 ? 0.0 : static_cast<double>(queries.size()) / seconds;
  std::sort(latencies_us.begin(), latencies_us.end());
  out.p50_us = PercentileUs(latencies_us, 0.50);
  out.p99_us = PercentileUs(latencies_us, 0.99);
  out.p999_us = PercentileUs(latencies_us, 0.999);
  return out;
}

}  // namespace
}  // namespace proteus

int main(int argc, char** argv) {
  using namespace proteus;
  using bench::JsonSink;

  bench::Args common = bench::ParseArgs(argc, argv);
  QpsArgs qps = ParseQpsArgs(argc, argv);
  const uint64_t n_keys = common.KeysOr(200000, 10000000);
  const uint64_t n_queries = common.QueriesOr(40000, 1000000);
  const uint64_t n_samples = common.SamplesOr(20000, 20000);
  const std::string filter_spec =
      common.filter.empty() ? "proteus:bpk=14" : common.filter;

  auto keys = GenerateKeys(Dataset::kUniform, n_keys, common.seed);
  QuerySpec query_spec;
  query_spec.dist = QueryDist::kCorrelated;
  query_spec.range_max = uint64_t{1} << 8;
  query_spec.corr_degree = uint64_t{1} << 10;
  auto samples = GenerateQueries(keys, query_spec, n_samples, common.seed + 1);
  auto int_queries =
      GenerateQueries(keys, query_spec, n_queries, common.seed + 2);
  auto queries = bench::EncodeQueriesBE(int_queries);
  // A slice of present keys so found% is nonzero and the result path
  // (key/value copies, data-block reads) is exercised too.
  for (size_t i = 0; i < queries.size(); i += 16) {
    const uint64_t k = keys[(i * 7919) % keys.size()];
    queries[i] = {EncodeKeyBE(k), EncodeKeyBE(k)};
  }

  JsonSink sink;
  auto record = [&](const char* mode, uint64_t batch, const RunResult& r) {
    std::printf("%-10s batch=%-5llu qps=%10.0f  p50=%8.1fus  p99=%8.1fus  "
                "p999=%8.1fus  found=%llu\n",
                mode, static_cast<unsigned long long>(batch), r.qps, r.p50_us,
                r.p99_us, r.p999_us, static_cast<unsigned long long>(r.found));
    sink.Add()
        .Str("bench", "qps")
        .Str("mode", mode)
        .Str("scheduler", qps.scheduler)
        .Num("batch", static_cast<double>(batch))
        .Num("queries", static_cast<double>(queries.size()))
        .Num("rate", qps.rate)
        .Num("qps", r.qps)
        .Num("p50_us", r.p50_us)
        .Num("p99_us", r.p99_us)
        .Num("p999_us", r.p999_us)
        .Num("found", static_cast<double>(r.found))
        .Num("filter_negatives", static_cast<double>(r.stats.filter_negatives))
        .Num("sst_seeks", static_cast<double>(r.stats.sst_seeks))
        .Num("blocks_touched", static_cast<double>(r.stats.blocks_touched));
  };

  if (!qps.server_host.empty()) {
    // Remote mode: the server owns the DB; every batch size round-trips
    // the wire protocol on one connection.
    int fd = ConnectTo(qps.server_host, qps.server_port);
    if (fd < 0) {
      std::fprintf(stderr, "cannot connect to %s:%u\n",
                   qps.server_host.c_str(), qps.server_port);
      return 1;
    }
    bench::PrintHeader("qps over the wire");
    for (uint64_t batch : qps.batches) {
      std::vector<MultiSeekResult> results;
      RunResult r = RunLoop(queries, batch, qps.rate, [&](const QueryBatch& b) {
        if (!ServerRoundTrip(fd, b, &results)) {
          std::fprintf(stderr, "server round trip failed\n");
          std::exit(1);
        }
        uint64_t found = 0;
        for (const auto& res : results) found += res.found;
        return found;
      });
      record("wire", batch, r);
    }
    ::close(fd);
  } else {
    DbOptions options;
    options.dir = "/tmp/proteus_bench_qps";
    // A leftover tree from a previous run would be recovered and buried
    // under this run's puts, silently skewing every number below.
    std::error_code ec;
    std::filesystem::remove_all(options.dir, ec);
    options.memtable_bytes = 256u << 10;
    options.sst_target_bytes = 256u << 10;
    options.l1_size_bytes = 1u << 20;
    options.block_cache_bytes = qps.cache_mb << 20;
    options.filter_policy = bench::MakePolicyOrDie(filter_spec);
    auto [db_ptr, db_status] = Db::Create(options);
    if (!db_status.ok()) {
      std::fprintf(stderr, "db create failed: %s\n",
                   db_status.ToString().c_str());
      return 1;
    }
    Db& db = *db_ptr;
    std::vector<std::pair<std::string, std::string>> seed_queue;
    for (size_t i = 0; i < samples.size(); ++i) {
      seed_queue.push_back(
          {EncodeKeyBE(samples[i].lo), EncodeKeyBE(samples[i].hi)});
    }
    db.query_queue().Seed(seed_queue);
    for (uint64_t k : keys) db.Put(EncodeKeyBE(k), MakeValuePayload(k, 128));
    db.CompactAll();
    // A fresh memtable + two L0 files on top of the sorted levels, so
    // batches cross every age class the read path has.
    for (int slice = 0; slice < 3; ++slice) {
      for (size_t i = static_cast<size_t>(slice); i < 2000; i += 3) {
        const uint64_t k = keys[(i * 104729) % keys.size()];
        db.Put(EncodeKeyBE(k), MakeValuePayload(k, 128));
      }
      if (slice < 2) db.Flush();
    }

    Status status;
    auto engine = QueryEngine::Create(db_ptr.get(), qps.scheduler, &status);
    if (engine == nullptr) {
      std::fprintf(stderr, "scheduler \"%s\": %s\n", qps.scheduler.c_str(),
                   status.ToString().c_str());
      return 1;
    }

    bench::PrintHeader("qps: sequential Seek vs batched MultiSeek");
    std::vector<MultiSeekResult> results;
    auto run_mode = [&](const char* mode, uint64_t batch, auto&& issue) {
      // Same cache-warming pass before every mode, so batch sizes are
      // compared on steady cache state, not on run order.
      for (size_t i = 0; i < std::min<size_t>(queries.size(), 4000); ++i) {
        db.Seek(queries[i].lo, queries[i].hi);
      }
      db.ResetStats();
      const BlockCache::Stats cache_before = db.cache().stats();
      RunResult r = RunLoop(queries, batch, qps.rate, issue);
      const DbStats& s = db.stats();
      const BlockCache::Stats& cache_after = db.cache().stats();
      r.stats.filter_negatives = s.filter_negatives;
      r.stats.sst_seeks = s.sst_seeks;
      r.stats.blocks_touched = (cache_after.hits - cache_before.hits) +
                               (cache_after.misses - cache_before.misses);
      record(mode, batch, r);
    };
    for (uint64_t batch : qps.batches) {
      if (batch == 0) continue;
      if (batch == 1) {
        run_mode("seek", 1, [&](const QueryBatch& b) {
          return static_cast<uint64_t>(db.Seek(b[0].lo, b[0].hi).found);
        });
      } else {
        run_mode("multiseek", batch, [&](const QueryBatch& b) {
          engine->Run(b, &results);
          uint64_t found = 0;
          for (const auto& res : results) found += res.found;
          return found;
        });
      }
    }
  }

  if (!common.json_path.empty()) sink.WriteArrayOrDie(common.json_path);
  return 0;
}
