#!/usr/bin/env python3
"""Guard that docs/FORMAT.md matches the on-disk format constants in the code.

Extracts the named format constants from the C++ sources and verifies
each one is quoted correctly in docs/FORMAT.md:

  * hex-valued constants (magics, footer sentinels, checksum seeds) must
    appear in the doc as the exact hex literal;
  * decimal-valued constants (sizes, opcodes, record kinds, versions)
    must appear on a doc line that also names the constant.

Run from the repository root:  python3 scripts/check_format_doc.py
Exits non-zero (and prints every mismatch) when the doc and code drift.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOC = ROOT / "docs" / "FORMAT.md"

# (source file, constant name) -> constants the doc must quote.
SOURCES = {
    "src/lsm/sst.cc": [
        "kSstMagic",
        "kFooterVersion2",
        "kFooterVersion3",
        "kFooterVersion4",
        "kFooterV1Size",
        "kFooterV2Size",
        "kFooterV3Size",
        "kFooterV4Size",
        "kHandleV2Size",
        "kHandleV3Size",
        "kFilterChecksumSeed",
    ],
    "src/lsm/db.cc": [
        "kManifestMagic",
        "kManifestVersion",
        "kManifestRecordSnapshot",
        "kManifestRecordDelta",
    ],
    "src/lsm/wal.h": [
        "kWalOpPut",
        "kWalOpDelete",
        "kWalOpPutSeq",
        "kWalOpDeleteSeq",
    ],
    "src/core/filter.h": [
        "kMagic",
        "kVersion",
    ],
}

CONST_RE = re.compile(
    r"constexpr\s+(?:static\s+)?[\w:<>]+\s+(k\w+)\s*=\s*"
    r"(0[xX][0-9a-fA-F']+|\d+)"
)
# "static constexpr" member declarations (core/filter.h).
MEMBER_RE = re.compile(
    r"static\s+constexpr\s+[\w:<>]+\s+(k\w+)\s*=\s*"
    r"(0[xX][0-9a-fA-F']+|\d+)"
)


def extract_constants(text):
    found = {}
    for regex in (CONST_RE, MEMBER_RE):
        for name, literal in regex.findall(text):
            found[name] = literal.replace("'", "")
    return found


def main():
    doc = DOC.read_text(encoding="utf-8")
    doc_lower = doc.lower()
    doc_lines = doc.splitlines()
    errors = []

    for rel_path, names in SOURCES.items():
        source = (ROOT / rel_path).read_text(encoding="utf-8")
        constants = extract_constants(source)
        for name in names:
            if name not in constants:
                errors.append(f"{rel_path}: constant {name} not found in source")
                continue
            literal = constants[name]
            if literal.lower().startswith("0x"):
                # Hex constants: the doc must quote the exact literal.
                if literal.lower() not in doc_lower:
                    errors.append(
                        f"docs/FORMAT.md does not quote {name} = {literal} "
                        f"(from {rel_path})"
                    )
            else:
                # Decimal constants: a doc line naming the constant must
                # also carry the value.
                value_re = re.compile(r"\b" + re.escape(literal) + r"\b")
                naming_lines = [l for l in doc_lines if name in l]
                if not naming_lines:
                    errors.append(
                        f"docs/FORMAT.md never names {name} (from {rel_path})"
                    )
                elif not any(value_re.search(l) for l in naming_lines):
                    errors.append(
                        f"docs/FORMAT.md names {name} but no such line "
                        f"carries its value {literal} (from {rel_path})"
                    )

    if errors:
        print("FORMAT.md / source drift detected:")
        for e in errors:
            print(f"  - {e}")
        return 1
    total = sum(len(v) for v in SOURCES.values())
    print(f"docs/FORMAT.md matches all {total} format constants in the code")
    return 0


if __name__ == "__main__":
    sys.exit(main())
