#!/usr/bin/env python3
"""Markdown link check for README.md and docs/.

Verifies every relative link target (file or file#anchor) resolves to an
existing file, and that in-document anchors point at a real heading.
External http(s) links are not fetched (CI must not depend on the
network); they are only sanity-checked for empty targets.

Run from the repository root:  python3 scripts/check_links.py
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def slugify(heading):
    """GitHub-style anchor slug: lowercase, drop punctuation, dash spaces."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path):
    content = path.read_text(encoding="utf-8")
    return {slugify(h) for h in HEADING_RE.findall(content)}


def check_file(md_path, errors):
    content = md_path.read_text(encoding="utf-8")
    for target in LINK_RE.findall(content):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if slugify(target[1:]) not in anchors_of(md_path):
                errors.append(f"{md_path}: broken anchor {target}")
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (md_path.parent / file_part).resolve()
        if not resolved.exists():
            errors.append(f"{md_path}: broken link {target}")
            continue
        if anchor and resolved.suffix == ".md":
            if anchor not in anchors_of(resolved):
                errors.append(f"{md_path}: broken anchor {target}")


def main():
    files = [ROOT / "README.md"] + sorted((ROOT / "docs").glob("*.md"))
    errors = []
    for f in files:
        check_file(f, errors)
    if errors:
        print("broken markdown links:")
        for e in errors:
            print(f"  - {e}")
        return 1
    print(f"all relative links resolve across {len(files)} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
