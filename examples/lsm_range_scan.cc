// Scenario: an LSM key-value store serving closed range scans (YCSB
// workload E shape) — the paper's Section 6 setting. Shows how per-SST
// Proteus filters, fed by the live sample query queue, eliminate the I/O
// of empty scans.

#include <cstdio>
#include <vector>

#include "lsm/db.h"
#include "surf/surf.h"
#include "workload/datasets.h"
#include "workload/queries.h"

int main() {
  using namespace proteus;

  auto keys = GenerateKeys(Dataset::kNormal, 50000, 7);
  QuerySpec spec;
  spec.dist = QueryDist::kSplit;  // mixed: short correlated + long uniform
  spec.range_max = uint64_t{1} << 16;
  spec.split_corr_range_max = uint64_t{1} << 4;
  spec.corr_degree = uint64_t{1} << 8;
  auto queries = GenerateQueries(keys, spec, 20000, 8);

  for (bool use_filter : {false, true}) {
    DbOptions options;
    options.dir = "/tmp/proteus_example_lsm";
    options.memtable_bytes = 1 << 20;
    if (use_filter) options.filter_policy = MakeProteusIntPolicy(14.0);
    auto [db_ptr, create_status] = Db::Create(options);
    if (db_ptr == nullptr) {
      std::fprintf(stderr, "create failed: %s\n",
                   create_status.ToString().c_str());
      return 1;
    }
    Db& db = *db_ptr;

    // Seed the queue with a few hundred observed queries so the first
    // flush already knows the workload.
    std::vector<std::pair<std::string, std::string>> seed;
    for (size_t i = 0; i < 500; ++i) {
      seed.push_back({EncodeKeyBE(queries[i].lo), EncodeKeyBE(queries[i].hi)});
    }
    db.query_queue().Seed(seed);

    for (uint64_t k : keys) {
      db.Put(EncodeKeyBE(k), MakeValuePayload(k, 256));
    }
    db.CompactAll();
    db.ResetStats();

    size_t found = 0;
    for (const auto& q : queries) {
      found += db.Seek(EncodeKeyBE(q.lo), EncodeKeyBE(q.hi)).found;
    }
    const DbStats& s = db.stats();
    std::printf("%s filters:\n", use_filter ? "with Proteus" : "without");
    std::printf("  seeks=%llu found=%zu sst-probes=%llu (%.3f/seek) "
                "false-positive files=%llu\n",
                static_cast<unsigned long long>(s.seeks), found,
                static_cast<unsigned long long>(s.sst_seeks),
                static_cast<double>(s.sst_seeks) / s.seeks,
                static_cast<unsigned long long>(s.false_positive_files));
  }
  return 0;
}
