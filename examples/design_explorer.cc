// Scenario: exploring the CPFPR design space interactively — what design
// does the model choose as the workload moves across (range size x
// correlation) space, and what FPR does it expect? A command-line
// micro-version of the paper's Figure 1 analysis.
//
// Usage: design_explorer [bits_per_key]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "model/cpfpr.h"
#include "workload/datasets.h"
#include "workload/queries.h"

int main(int argc, char** argv) {
  using namespace proteus;
  double bpk = argc > 1 ? std::atof(argv[1]) : 12.0;

  auto keys = GenerateKeys(Dataset::kUniform, 100000, 31);
  uint64_t budget = static_cast<uint64_t>(bpk * keys.size());

  std::printf("design chosen by the CPFPR model at %.1f bits/key\n", bpk);
  std::printf("%-12s %-12s %-18s %-12s %-12s\n", "log2(range)", "log2(corr)",
              "design (t, b)", "exp. FPR", "1PBF FPR");
  for (uint32_t range_exp : {2u, 8u, 14u, 19u}) {
    for (uint32_t corr_exp : {2u, 10u, 18u}) {
      QuerySpec spec;
      spec.dist = QueryDist::kCorrelated;
      spec.range_max = uint64_t{1} << range_exp;
      spec.corr_degree = uint64_t{1} << corr_exp;
      auto samples = GenerateQueries(keys, spec, 4000, 32 + range_exp);
      CpfprModel model(keys, samples);
      ProteusDesign design = model.SelectProteus(budget);
      OnePbfDesign one = model.SelectOnePbf(budget);
      std::printf("%-12u %-12u trie=%-3u bloom=%-6u %-12.4f %-12.4f\n",
                  range_exp, corr_exp, design.trie_depth,
                  design.bf_prefix_len, design.expected_fpr,
                  one.expected_fpr);
    }
  }
  std::printf(
      "\nReading: small correlated queries want long prefixes; large\n"
      "uniform ranges want short ones; mixed regimes get hybrid designs.\n");
  return 0;
}
