// Closed-loop adaptive self-design (Section 6.4's temporal-skew
// motivation, run against the real LSM instead of a standalone builder):
//
//  1. Phase A (large uniform scans) runs first — on an LSM the query
//     stream exists before most SSTs do — so every flush and compaction
//     during the load designs its filter from the A window.
//  2. The workload shifts to phase B (small correlated lookups). The
//     A-designed filters pay false positives; the drift detector
//     (src/lsm/drift.h) flags the files, and background maintenance
//     rewrites them with filters designed from the live B window.
//  3. The loop measures observed FPR before and after the redesigns —
//     the closed loop is FPR feedback -> drift flag -> redesign ->
//     recovered FPR.
//
// The whole scenario runs twice, under bpk_policy fixed and monkey, so
// the output also compares total filter bytes and false-positive probes
// at the same global bits-per-key budget.
//
// `--json` prints one machine-readable object (CI's adaptive-smoke job
// asserts on it).

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "lsm/db.h"
#include "surf/surf.h"
#include "workload/datasets.h"
#include "workload/queries.h"

using namespace proteus;

namespace {

struct Window {
  double observed = -1.0;  // false positives / empty-range filter checks
  double modeled = -1.0;   // check-weighted mean of the designs' promises
};

struct Outcome {
  Window phase_a;
  Window stale;      // first B window, before any redesign
  Window recovered;  // B window after the redesigns settled
  uint64_t drift_detected = 0;
  uint64_t redesigns = 0;
  uint64_t filter_bits = 0;
  uint64_t shift_fp_probes = 0;  // false positives paid across the shift
  uint64_t shift_sst_probes = 0;
};

void Drive(Db& db, const std::vector<uint64_t>& keys, const QuerySpec& spec,
           size_t n, uint64_t seed) {
  for (const auto& q : GenerateQueries(keys, spec, n, seed)) {
    db.Seek(EncodeKeyBE(q.lo), EncodeKeyBE(q.hi));
  }
}

struct Counts {
  uint64_t checks = 0, probes = 0, fps = 0;
};

/// Runs `n` empty-range queries and reports the window's observed FPR
/// (false positives over the checks whose range was empty, summed from
/// per-file counter deltas) next to the modeled FPR of the designs the
/// window actually consulted, weighted the same way. Files redesigned
/// mid-window start from zero counters, so their deltas fold in too.
Window Measure(Db& db, const std::vector<uint64_t>& keys,
               const QuerySpec& spec, size_t n, uint64_t seed) {
  std::map<uint64_t, Counts> before;
  for (const auto& f : db.DesignInfo()) {
    before[f.file_id] = {f.checks, f.probes, f.false_positives};
  }
  Drive(db, keys, spec, n, seed);

  Window w;
  double fp_sum = 0.0, empty_sum = 0.0, weighted = 0.0, weight = 0.0;
  for (const auto& f : db.DesignInfo()) {
    auto it = before.find(f.file_id);
    const Counts b = it == before.end() ? Counts{} : it->second;
    const uint64_t checks_d = f.checks - b.checks;
    const uint64_t probes_d = f.probes - b.probes;
    const uint64_t fp_d = f.false_positives - b.fps;
    const uint64_t tp_d = probes_d - fp_d;
    if (checks_d <= tp_d) continue;  // window never saw this file empty
    const double empty = static_cast<double>(checks_d - tp_d);
    fp_sum += static_cast<double>(fp_d);
    empty_sum += empty;
    if (f.modeled_fpr >= 0.0) {
      weighted += empty * f.modeled_fpr;
      weight += empty;
    }
  }
  if (empty_sum > 0.0) w.observed = fp_sum / empty_sum;
  if (weight > 0.0) w.modeled = weighted / weight;
  return w;
}

bool AnyFlagged(Db& db) {
  for (const auto& f : db.DesignInfo()) {
    if (f.drift_flagged) return true;
  }
  return false;
}

Outcome RunClosedLoop(BpkPolicy policy, const std::string& dir, bool quiet) {
  Outcome out;
  auto keys = GenerateKeys(Dataset::kNormal, 30000, 11);

  DbOptions options;
  options.dir = dir;
  options.memtable_bytes = 64 << 10;
  options.sst_target_bytes = 128 << 10;
  options.l0_compaction_trigger = 4;
  options.l1_size_bytes = 256 << 10;
  options.level_size_multiplier = 4.0;
  options.filter_policy = MakeFilterPolicy("proteus:bpk=14");
  options.queue_options = {.capacity = 4000, .sample_rate = 1};
  options.bpk_policy = policy;
  // Demo-sized drift thresholds: a few hundred probes of evidence.
  options.drift.min_probes = 200;
  options.drift.min_window_samples = 200;

  auto [db_ptr, status] = Db::Create(options);
  if (db_ptr == nullptr) {
    std::fprintf(stderr, "create failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
  Db& db = *db_ptr;

  // Phase A: large uniform scans. Phase B: small correlated lookups.
  QuerySpec phase_a;
  phase_a.dist = QueryDist::kUniform;
  phase_a.range_max = uint64_t{1} << 16;
  QuerySpec phase_b;
  phase_b.dist = QueryDist::kCorrelated;
  phase_b.range_max = uint64_t{1} << 4;
  phase_b.corr_degree = uint64_t{1} << 10;

  // Let the A workload populate the sample window before the data
  // arrives, the way a live system's query stream predates any given
  // SST. Every flush/compaction during the load then designs from A.
  Drive(db, keys, phase_a, 3000, 21);
  for (uint64_t k : keys) {
    if (Status s = db.Put(EncodeKeyBE(k), "v"); !s.ok()) {
      std::fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
  if (Status s = db.CompactAll(); !s.ok()) {
    std::fprintf(stderr, "compact failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  db.WaitForBackground();

  out.phase_a = Measure(db, keys, phase_a, 4000, 22);
  if (!quiet) {
    std::printf("  phase A served by A-designs: observed %.4f, modeled %.4f\n",
                out.phase_a.observed, out.phase_a.modeled);
  }

  // The workload shifts. Keep serving B until the drift detector has
  // flagged the stale designs and maintenance rewrote them — two quiet
  // rounds (no new flags, no new redesigns) means the loop settled.
  // Bounded rounds so a mis-tuned threshold cannot hang the demo.
  const DbStats shift_base = db.stats();
  uint64_t last_redesigns = 0;
  int quiet_rounds = 0;
  for (int round = 0; round < 24; ++round) {
    Window w = Measure(db, keys, phase_b, 2000, 100 + round);
    db.WaitForBackground();
    if (round == 0) {
      out.stale = w;
      if (!quiet) {
        std::printf("  after shift, stale designs:    observed %.4f\n",
                    w.observed);
      }
    }
    const DbStats s = db.stats();
    if (s.redesigns == last_redesigns && !AnyFlagged(db)) {
      ++quiet_rounds;
    } else {
      quiet_rounds = 0;
    }
    last_redesigns = s.redesigns;
    if (s.redesigns > 0 && quiet_rounds >= 2) break;
  }
  {
    const DbStats s = db.stats();
    out.shift_fp_probes = s.false_positive_files - shift_base.false_positive_files;
    out.shift_sst_probes = s.sst_seeks - shift_base.sst_seeks;
  }

  out.recovered = Measure(db, keys, phase_b, 4000, 23);
  const DbStats final_stats = db.stats();
  out.drift_detected = final_stats.drift_detected;
  out.redesigns = final_stats.redesigns;
  out.filter_bits = db.TotalFilterBits();
  if (!quiet) {
    std::printf(
        "  after %llu redesigns (%llu files flagged): observed %.4f, "
        "modeled %.4f\n",
        static_cast<unsigned long long>(out.redesigns),
        static_cast<unsigned long long>(out.drift_detected),
        out.recovered.observed, out.recovered.modeled);
    std::printf("  filter bytes: %llu\n",
                static_cast<unsigned long long>(out.filter_bits / 8));
  }
  return out;
}

void PrintJson(const char* name, const Outcome& o, bool last) {
  std::printf(
      "  \"%s\": {\n"
      "    \"phase_a_observed\": %.6f,\n"
      "    \"phase_a_modeled\": %.6f,\n"
      "    \"stale_observed\": %.6f,\n"
      "    \"recovered_observed\": %.6f,\n"
      "    \"recovered_modeled\": %.6f,\n"
      "    \"drift_detected\": %llu,\n"
      "    \"redesigns\": %llu,\n"
      "    \"filter_bits\": %llu,\n"
      "    \"shift_fp_probes\": %llu,\n"
      "    \"shift_sst_probes\": %llu\n"
      "  }%s\n",
      name, o.phase_a.observed, o.phase_a.modeled, o.stale.observed,
      o.recovered.observed, o.recovered.modeled,
      static_cast<unsigned long long>(o.drift_detected),
      static_cast<unsigned long long>(o.redesigns),
      static_cast<unsigned long long>(o.filter_bits),
      static_cast<unsigned long long>(o.shift_fp_probes),
      static_cast<unsigned long long>(o.shift_sst_probes), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = argc > 1 && std::strcmp(argv[1], "--json") == 0;

  if (!json) std::printf("== bpk_policy = fixed ==\n");
  Outcome fixed =
      RunClosedLoop(BpkPolicy::kFixed, "/tmp/proteus_shift_fixed", json);
  if (!json) std::printf("== bpk_policy = monkey ==\n");
  Outcome monkey =
      RunClosedLoop(BpkPolicy::kMonkey, "/tmp/proteus_shift_monkey", json);

  if (json) {
    std::printf("{\n");
    PrintJson("fixed", fixed, /*last=*/false);
    PrintJson("monkey", monkey, /*last=*/true);
    std::printf("}\n");
  } else {
    std::printf(
        "== monkey vs fixed at the same 14 bpk budget ==\n"
        "  filter bytes:  %llu vs %llu\n"
        "  false-positive probes across the shift: %llu vs %llu\n",
        static_cast<unsigned long long>(monkey.filter_bits / 8),
        static_cast<unsigned long long>(fixed.filter_bits / 8),
        static_cast<unsigned long long>(monkey.shift_fp_probes),
        static_cast<unsigned long long>(fixed.shift_fp_probes));
  }
  return 0;
}
