// Scenario: the query workload drifts over time (Section 6.4's Wikipedia
// temporal-skew motivation). A filter is rebuilt periodically from a FIFO
// sample queue; Proteus re-designs itself and stays accurate while the
// first design goes stale.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/filter_builder.h"
#include "core/proteus.h"
#include "lsm/query_queue.h"
#include "surf/surf.h"
#include "workload/datasets.h"
#include "workload/queries.h"

int main() {
  using namespace proteus;

  auto keys = GenerateKeys(Dataset::kNormal, 80000, 11);

  // Phase A: large uniform scans. Phase B: small correlated lookups.
  QuerySpec phase_a;
  phase_a.dist = QueryDist::kUniform;
  phase_a.range_max = uint64_t{1} << 16;
  QuerySpec phase_b;
  phase_b.dist = QueryDist::kCorrelated;
  phase_b.range_max = uint64_t{1} << 4;
  phase_b.corr_degree = uint64_t{1} << 10;

  SampleQueryQueue queue({.capacity = 4000, .sample_rate = 1});
  auto rebuild = [&](const char* when) {
    std::vector<RangeQuery> sample;
    for (const auto& [lo, hi] : queue.Snapshot()) {
      sample.push_back({DecodeKeyBE(lo), DecodeKeyBE(hi)});
    }
    FilterBuilder builder(keys);
    builder.Sample(sample);
    auto filter =
        ProteusFilter::BuildFromSpec(FilterSpec("proteus"), builder, nullptr);
    std::printf("%s: redesigned to trie=%u bloom=%u (modeled FPR %.4f)\n",
                when, filter->config().trie_depth,
                filter->config().bf_prefix_len,
                filter->modeled_fpr().value_or(-1.0));
    return filter;
  };

  auto measure = [&](const ProteusFilter& filter, const QuerySpec& spec,
                     const char* what) {
    auto eval = GenerateQueries(keys, spec, 10000, 12);
    size_t fp = 0;
    for (const auto& q : eval) fp += filter.MayContain(q.lo, q.hi);
    std::printf("   FPR on %-18s %.4f\n", what,
                static_cast<double>(fp) / eval.size());
  };

  // Observe phase A, design, and serve.
  for (const auto& q : GenerateQueries(keys, phase_a, 3000, 13)) {
    queue.OnEmptyQuery(EncodeKeyBE(q.lo), EncodeKeyBE(q.hi));
  }
  auto filter = rebuild("after phase A");
  measure(*filter, phase_a, "phase-A queries:");
  measure(*filter, phase_b, "phase-B queries:");

  // The workload shifts to phase B; the queue drains A and fills with B.
  for (const auto& q : GenerateQueries(keys, phase_b, 6000, 14)) {
    queue.OnEmptyQuery(EncodeKeyBE(q.lo), EncodeKeyBE(q.hi));
  }
  auto stale = std::move(filter);
  auto fresh = rebuild("after shift to B");
  std::printf("stale design on the new workload:\n");
  measure(*stale, phase_b, "phase-B queries:");
  std::printf("fresh design on the new workload:\n");
  measure(*fresh, phase_b, "phase-B queries:");
  return 0;
}
