// A standalone batch-query server: populates an LSM tree with uniform
// keys, then serves MultiSeek batches over the engine/wire.h framed
// protocol (see docs/ARCHITECTURE.md "Query engine") on a TCP port.
//
//   ./example_server --port=7707 --keys=200000 --scheduler=grouped
//
// Talk to it with bench_qps --server=127.0.0.1:7707, or any client that
// frames op-1 MultiSeek requests. Ctrl-C shuts it down cleanly and
// prints the serving stats.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "engine/server.h"
#include "lsm/db.h"
#include "surf/surf.h"
#include "workload/datasets.h"

namespace {

proteus::BatchServer* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->Stop();
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace proteus;

  std::string host = "127.0.0.1";
  uint64_t port = 0, keys = 200000, value_bytes = 128;
  double bpk = 14.0;
  std::string scheduler = "sorted";
  std::string dir = "/tmp/proteus_example_server";
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--host", &v)) {
      host = v;
    } else if (ParseFlag(argv[i], "--port", &v)) {
      port = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--keys", &v)) {
      keys = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--value-bytes", &v)) {
      value_bytes = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--bpk", &v)) {
      bpk = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "--scheduler", &v)) {
      scheduler = v;
    } else if (ParseFlag(argv[i], "--dir", &v)) {
      dir = v;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--host=H] [--port=N] [--keys=N]\n"
                   "          [--value-bytes=N] [--bpk=F] [--scheduler=SPEC]\n"
                   "          [--dir=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  DbOptions options;
  options.dir = dir;
  options.memtable_bytes = 1 << 20;
  options.sst_target_bytes = 1 << 20;
  options.l1_size_bytes = 4u << 20;
  if (bpk > 0) options.filter_policy = MakeProteusIntPolicy(bpk);
  auto [db_ptr, create_status] = Db::Create(options);
  if (db_ptr == nullptr) {
    std::fprintf(stderr, "db create failed: %s\n",
                 create_status.ToString().c_str());
    return 1;
  }
  Db& db = *db_ptr;

  std::printf("populating %s with %llu uniform keys...\n", dir.c_str(),
              static_cast<unsigned long long>(keys));
  auto key_values = GenerateKeys(Dataset::kUniform, keys, /*seed=*/42);
  for (uint64_t k : key_values) {
    Status s = db.Put(EncodeKeyBE(k), MakeValuePayload(k, value_bytes));
    if (!s.ok()) {
      std::fprintf(stderr, "Put failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  db.CompactAll();

  ServerOptions server_options;
  server_options.host = host;
  server_options.port = static_cast<uint16_t>(port);
  server_options.scheduler = scheduler;
  BatchServer server(db_ptr.get(), server_options);
  Status s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "Start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::printf("serving on %s:%u (scheduler=%s); Ctrl-C to stop\n",
              host.c_str(), server.port(), scheduler.c_str());
  s = server.Serve();
  if (!s.ok()) {
    std::fprintf(stderr, "Serve failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const BatchServer::Stats& st = server.stats();
  std::printf(
      "served %llu batches (%llu queries) over %llu connections, "
      "%llu protocol errors\n",
      static_cast<unsigned long long>(st.batches_served),
      static_cast<unsigned long long>(st.queries_served),
      static_cast<unsigned long long>(st.connections_accepted),
      static_cast<unsigned long long>(st.protocol_errors));
  return 0;
}
