// Scenario: filtering lexicographic range scans over domain names
// (Section 7's real-world string workload). Compares self-designed
// string Proteus against SuRF-Real on synthetic `.org` domains.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/proteus_str.h"
#include "surf/surf.h"
#include "workload/string_gen.h"

int main() {
  using namespace proteus;

  // 40K stored domains plus a disjoint pool that drives lookups.
  auto all = GenerateStrKeys(StrDataset::kDomains, 50000, 0, 21);
  std::vector<std::string> keys, lookups;
  for (size_t i = 0; i < all.size(); ++i) {
    (i % 5 == 4 ? lookups : keys).push_back(all[i]);
  }

  const size_t max_bytes = 64;
  const uint32_t max_bits = max_bytes * 8;
  StrQuerySpec spec;
  spec.dist = StrQueryDist::kReal;
  spec.range_max = uint64_t{1} << 30;
  spec.max_bytes = max_bytes;
  auto samples = GenerateStrQueries(keys, spec, 2000, 22, lookups);
  auto eval = GenerateStrQueries(keys, spec, 10000, 23, lookups);

  for (double bpk : {10.0, 14.0, 18.0}) {
    StrCpfprOptions grid;
    grid.bloom_grid = 64;  // Section 7.2's coarse design search
    grid.trie_grid = 32;
    auto proteus =
        ProteusStrFilter::BuildSelfDesigned(keys, samples, bpk, max_bits, grid);
    size_t fp = 0;
    for (const auto& q : eval) fp += proteus->MayContain(q.lo, q.hi);
    std::printf("bpk=%4.1f  %-24s FPR %.4f (%.2f bits/key)\n", bpk,
                proteus->Name().c_str(),
                static_cast<double>(fp) / eval.size(),
                proteus->Bpk(keys.size()));
  }

  Surf::Options sopt;
  sopt.suffix_mode = SurfSuffixMode::kReal;
  sopt.suffix_bits = 8;
  auto surf = SurfStrFilter::Build(keys, sopt);
  size_t fp = 0;
  for (const auto& q : eval) fp += surf->MayContain(q.lo, q.hi);
  std::printf("fixed     %-24s FPR %.4f (%.2f bits/key)\n",
              surf->Name().c_str(), static_cast<double>(fp) / eval.size(),
              surf->Bpk(keys.size()));
  return 0;
}
