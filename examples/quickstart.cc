// Quickstart: build a self-designing Proteus range filter over integer
// keys through the unified spec-string API, query it, and round-trip it
// through serialization.
//
//   cmake -B build -S . && cmake --build build -j
//   ./build/quickstart

#include <cstdio>
#include <string>
#include <vector>

#include "core/filter_builder.h"
#include "core/filter_registry.h"
#include "core/proteus.h"
#include "lsm/db.h"
#include "surf/surf.h"
#include "workload/datasets.h"
#include "workload/queries.h"

int main() {
  using namespace proteus;

  // 1. Your sorted key set (here: 100K uniform 64-bit keys).
  std::vector<uint64_t> keys = GenerateKeys(Dataset::kUniform, 100000, 1);

  // 2. A sample of the range queries you expect (empty ranges). In a real
  //    system these come from a query log; here we synthesize correlated
  //    queries close to the keys — the hardest case for static filters.
  QuerySpec spec;
  spec.dist = QueryDist::kCorrelated;
  spec.range_max = 1 << 8;       // ranges up to 256
  spec.corr_degree = 1 << 10;    // starting within 1024 of a key
  std::vector<RangeQuery> sample = GenerateQueries(keys, spec, 5000, 2);

  // 3. Build through the FilterBuilder flow: Sample() observes the
  //    workload, Design() (run implicitly) models the design space once,
  //    Build() materializes any registered family from a spec string.
  FilterBuilder builder(keys);
  builder.Sample(sample);
  auto filter = builder.Build("proteus:bpk=12");
  std::printf("built %s: %.2f bits/key\n", filter->Name().c_str(),
              filter->Bpk(keys.size()));

  // The same builder (and its cached model) serves every family:
  for (const char* alt : {"onepbf:bpk=12", "twopbf:bpk=12", "rosetta:bpk=12",
                          "surf:mode=real,suffix=8"}) {
    auto f = builder.Build(alt);
    std::printf("  alternative %-28s -> %-16s %.2f bits/key\n", alt,
                f->Name().c_str(), f->Bpk(keys.size()));
  }

  // 4. Query: MayContain never false-negatives.
  std::printf("range around a key     -> %s\n",
              filter->MayContain(keys[500] - 5, keys[500] + 5) ? "maybe"
                                                               : "no");
  std::printf("range far from any key -> %s\n",
              filter->MayContain(123, 456) ? "maybe" : "no");

  // 5. Persist and reload: Serialize writes a versioned blob (this is what
  //    an SST filter block stores); Deserialize restores it without the
  //    keys.
  std::string blob;
  filter->Serialize(&blob);
  auto restored = Filter::Deserialize(blob);
  std::printf("serialized %zu bytes, restored %s (%llu bits)\n", blob.size(),
              restored->Name().c_str(),
              static_cast<unsigned long long>(restored->SizeBits()));

  // 6. Measure the FPR on fresh queries from the same workload.
  auto eval = GenerateQueries(keys, spec, 20000, 3);
  size_t fp = 0;
  for (const auto& q : eval) fp += filter->MayContain(q.lo, q.hi);
  std::printf("observed FPR on %zu empty queries: %.4f\n", eval.size(),
              static_cast<double>(fp) / eval.size());

  // 7. The same filters guard the miniLSM engine's durable write path.
  //    Every mutation returns a proteus::Status: a non-OK Put was
  //    rejected (its WAL record never committed) and is NOT stored, so
  //    checking the status is checking durability. See
  //    examples/lsm_reopen.cc for the full crash-recovery contract.
  DbOptions db_options;
  db_options.dir = "/tmp/proteus_quickstart_db";
  db_options.filter_policy = MakeFilterPolicy("proteus:bpk=12");
  {
    auto [db, create_status] = Db::Create(db_options);
    if (db == nullptr) {
      std::fprintf(stderr, "create failed: %s\n",
                   create_status.ToString().c_str());
      return 1;
    }
    for (uint64_t i = 0; i < 1000; ++i) {
      Status s = db->Put(EncodeKeyBE(keys[i * 97]), "v" + std::to_string(i));
      if (!s.ok()) {
        std::fprintf(stderr, "durable put failed: %s\n",
                     s.ToString().c_str());
        return 1;
      }
    }
    std::printf("stored 1000 keys durably (WAL group commit + Status)\n");
  }
  auto [db, open_status] = Db::Open(db_options);
  if (db == nullptr) {
    std::fprintf(stderr, "reopen failed: %s\n",
                 open_status.ToString().c_str());
    return 1;
  }
  std::printf("reopened from disk: %llu keys\n",
              static_cast<unsigned long long>(db->TotalKeys()));
  return 0;
}
