// Quickstart: build a self-designing Proteus range filter over integer
// keys and query it.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "core/proteus.h"
#include "workload/datasets.h"
#include "workload/queries.h"

int main() {
  using namespace proteus;

  // 1. Your sorted key set (here: 100K uniform 64-bit keys).
  std::vector<uint64_t> keys = GenerateKeys(Dataset::kUniform, 100000, 1);

  // 2. A sample of the range queries you expect (empty ranges). In a real
  //    system these come from a query log; here we synthesize correlated
  //    queries close to the keys — the hardest case for static filters.
  QuerySpec spec;
  spec.dist = QueryDist::kCorrelated;
  spec.range_max = 1 << 8;       // ranges up to 256
  spec.corr_degree = 1 << 10;    // starting within 1024 of a key
  std::vector<RangeQuery> sample = GenerateQueries(keys, spec, 5000, 2);

  // 3. Build: Proteus models the design space on the sample and picks the
  //    best (trie depth, Bloom prefix length) for the memory budget.
  double bits_per_key = 12.0;
  auto filter = ProteusFilter::BuildSelfDesigned(keys, sample, bits_per_key);
  std::printf("built %s: %.2f bits/key, modeled FPR %.4f\n",
              filter->Name().c_str(), filter->Bpk(keys.size()),
              filter->modeled_fpr());

  // 4. Query: MayContain never false-negatives.
  std::printf("range around a key     -> %s\n",
              filter->MayContain(keys[500] - 5, keys[500] + 5) ? "maybe"
                                                               : "no");
  std::printf("range far from any key -> %s\n",
              filter->MayContain(123, 456) ? "maybe" : "no");

  // 5. Measure the FPR on fresh queries from the same workload.
  auto eval = GenerateQueries(keys, spec, 20000, 3);
  size_t fp = 0;
  for (const auto& q : eval) fp += filter->MayContain(q.lo, q.hi);
  std::printf("observed FPR on %zu empty queries: %.4f\n", eval.size(),
              static_cast<double>(fp) / eval.size());
  return 0;
}
