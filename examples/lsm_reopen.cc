// Demonstrates the Db::Open recovery contract: fill a database, close
// it, and reopen it from disk alone — the LSM tree comes back from the
// MANIFEST and every SST's filter is deserialized from its on-disk
// filter block (stats().filter_loads) instead of being rebuilt from keys
// (stats().filter_rebuilds stays 0).

#include <cstdio>
#include <string>

#include "lsm/db.h"
#include "surf/surf.h"

using namespace proteus;

int main() {
  DbOptions options;
  options.dir = "/tmp/proteus_example_reopen";
  options.memtable_bytes = 64 << 10;
  options.sst_target_bytes = 128 << 10;
  options.l0_compaction_trigger = 3;
  options.filter_policy = MakeFilterPolicy("proteus:bpk=14");

  std::printf("== first life: fill and close ==\n");
  {
    Db db(options);
    for (uint64_t i = 0; i < 20000; ++i) {
      db.Put(EncodeKeyBE(i * 50), "value-" + std::to_string(i));
    }
    // Sample some empty ranges so Proteus sees a workload at flush time.
    for (uint64_t i = 0; i < 2000; ++i) {
      db.Seek(EncodeKeyBE(i * 501 + 1), EncodeKeyBE(i * 501 + 20));
    }
    db.CompactAll();
    std::printf("  keys=%llu filter-bits=%llu filters-built-in %.1f ms\n",
                static_cast<unsigned long long>(db.TotalKeys()),
                static_cast<unsigned long long>(db.TotalFilterBits()),
                static_cast<double>(db.stats().filter_build_ns) / 1e6);
  }  // destructor flushes the memtable and persists the manifest

  std::printf("== second life: Db::Open from disk ==\n");
  std::string error;
  auto db = Db::Open(options, &error);
  if (db == nullptr) {
    std::fprintf(stderr, "open failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("  keys=%llu filter-bits=%llu\n",
              static_cast<unsigned long long>(db->TotalKeys()),
              static_cast<unsigned long long>(db->TotalFilterBits()));
  std::printf("  filters loaded=%llu rebuilt=%llu rebuild-time=%.1f ms\n",
              static_cast<unsigned long long>(db->stats().filter_loads),
              static_cast<unsigned long long>(db->stats().filter_rebuilds),
              static_cast<double>(db->stats().filter_build_ns) / 1e6);

  std::string key, value;
  if (db->Seek(EncodeKeyBE(500), EncodeKeyBE(500), &key, &value)) {
    std::printf("  seek 500 -> %s\n", value.c_str());
  }
  db->ResetStats();
  for (uint64_t i = 0; i < 2000; ++i) {
    db->Seek(EncodeKeyBE(i * 501 + 1), EncodeKeyBE(i * 501 + 20));
  }
  const DbStats& s = db->stats();
  std::printf(
      "  2000 empty seeks: filter-negatives=%llu sst-probes=%llu\n",
      static_cast<unsigned long long>(s.filter_negatives),
      static_cast<unsigned long long>(s.sst_seeks));
  return 0;
}
