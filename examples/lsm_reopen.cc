// Demonstrates the Db::Open recovery contract: fill a database, close
// it, and reopen it from disk alone — the LSM tree comes back from the
// MANIFEST delta log and every SST's filter is deserialized from its
// on-disk filter block (stats().filter_loads) instead of being rebuilt
// from keys (stats().filter_rebuilds stays 0).
//
// Also shows the durable-write contract: every Put/Delete returns a
// proteus::Status and is group-committed to the WAL before it is
// acknowledged, so writes that were never flushed still come back after
// a crash (here simulated with TEST_CrashClose, the example's stand-in
// for kill -9) via WAL replay (stats().wal_replayed).

#include <cstdio>
#include <string>

#include "lsm/db.h"
#include "surf/surf.h"

using namespace proteus;

int main() {
  DbOptions options;
  options.dir = "/tmp/proteus_example_reopen";
  options.memtable_bytes = 64 << 10;
  options.sst_target_bytes = 128 << 10;
  options.l0_compaction_trigger = 3;
  options.filter_policy = MakeFilterPolicy("proteus:bpk=14");

  std::printf("== first life: fill and close ==\n");
  {
    auto [db_ptr, create_status] = Db::Create(options);
    if (db_ptr == nullptr) {
      std::fprintf(stderr, "create failed: %s\n",
                   create_status.ToString().c_str());
      return 1;
    }
    Db& db = *db_ptr;
    for (uint64_t i = 0; i < 20000; ++i) {
      Status s = db.Put(EncodeKeyBE(i * 50), "value-" + std::to_string(i));
      if (!s.ok()) {  // a non-OK Put was rejected: the key is NOT stored
        std::fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    // Sample some empty ranges so Proteus sees a workload at flush time.
    for (uint64_t i = 0; i < 2000; ++i) {
      db.Seek(EncodeKeyBE(i * 501 + 1), EncodeKeyBE(i * 501 + 20));
    }
    if (Status s = db.CompactAll(); !s.ok()) {
      std::fprintf(stderr, "compact failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("  keys=%llu filter-bits=%llu filters-built-in %.1f ms\n",
                static_cast<unsigned long long>(db.TotalKeys()),
                static_cast<unsigned long long>(db.TotalFilterBits()),
                static_cast<double>(db.stats().filter_build_ns) / 1e6);
  }  // destructor flushes the memtable and persists the manifest

  std::printf("== second life: Db::Open from disk ==\n");
  auto [db, status] = Db::Open(options);
  if (db == nullptr) {
    std::fprintf(stderr, "open failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("  keys=%llu filter-bits=%llu\n",
              static_cast<unsigned long long>(db->TotalKeys()),
              static_cast<unsigned long long>(db->TotalFilterBits()));
  std::printf("  filters loaded=%llu rebuilt=%llu rebuild-time=%.1f ms\n",
              static_cast<unsigned long long>(db->stats().filter_loads),
              static_cast<unsigned long long>(db->stats().filter_rebuilds),
              static_cast<double>(db->stats().filter_build_ns) / 1e6);

  if (SeekResult r = db->Seek(EncodeKeyBE(500), EncodeKeyBE(500)); r.found) {
    std::printf("  seek 500 -> %s\n", r.value.c_str());
  }
  db->ResetStats();
  for (uint64_t i = 0; i < 2000; ++i) {
    db->Seek(EncodeKeyBE(i * 501 + 1), EncodeKeyBE(i * 501 + 20));
  }
  const DbStats s = db->stats();
  std::printf(
      "  2000 empty seeks: filter-negatives=%llu sst-probes=%llu\n",
      static_cast<unsigned long long>(s.filter_negatives),
      static_cast<unsigned long long>(s.sst_seeks));

  std::printf("== third life: crash with unflushed writes ==\n");
  // These writes stay in the memtable — no flush happens before the
  // simulated kill -9 — yet each Put was acknowledged only after its WAL
  // record was committed, so replay must bring every one of them back.
  for (uint64_t i = 0; i < 500; ++i) {
    if (Status st = db->Put(EncodeKeyBE(5'000'000 + i), "wal-" + std::to_string(i));
        !st.ok()) {
      std::fprintf(stderr, "put failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  db->Delete(EncodeKeyBE(500));  // tombstones ride the WAL too
  db->TEST_CrashClose();
  db.reset();

  auto [revived, revive_status] = Db::Open(options);
  if (revived == nullptr) {
    std::fprintf(stderr, "open after crash failed: %s\n",
                 revive_status.ToString().c_str());
    return 1;
  }
  std::printf("  wal records replayed=%llu\n",
              static_cast<unsigned long long>(revived->stats().wal_replayed));
  bool has_new =
      revived->Seek(EncodeKeyBE(5'000'000), EncodeKeyBE(5'000'000)).found;
  bool has_deleted = revived->Seek(EncodeKeyBE(500), EncodeKeyBE(500)).found;
  std::printf("  unflushed put recovered: %s, deleted key gone: %s\n",
              has_new ? "yes" : "NO (bug!)",
              has_deleted ? "NO (bug!)" : "yes");

  if (Status vs = revived->VerifyChecksums(); vs.ok()) {
    std::printf("  all data-block checksums verify: OK\n");
  } else {
    std::printf("  checksum verification: %s\n", vs.ToString().c_str());
  }
  return 0;
}
