// QueryEngine: the batched front door to a Db. It owns the scheduler
// (resolved from a spec string through SchedulerRegistry), drives
// Db::MultiSeek, and measures what each batch cost — filter negatives,
// data blocks touched, wall time — as the per-batch stats the server and
// the load generator report.

#ifndef PROTEUS_ENGINE_QUERY_ENGINE_H_
#define PROTEUS_ENGINE_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/scheduler.h"
#include "lsm/db.h"
#include "util/status.h"

namespace proteus {

/// What one batch (or an accumulated run) cost. Counter fields are
/// deltas of the DB's and block cache's counters across the batch.
struct BatchStats {
  uint64_t queries = 0;
  uint64_t found = 0;
  uint64_t empty = 0;
  uint64_t filter_checks = 0;
  uint64_t filter_negatives = 0;
  uint64_t sst_seeks = 0;
  uint64_t false_positive_files = 0;
  uint64_t blocks_touched = 0;  // cache hits + misses (data-block reads)
  uint64_t cache_misses = 0;    // of those, fetched from disk
  uint64_t wall_ns = 0;

  double Qps() const {
    return wall_ns == 0 ? 0.0
                        : static_cast<double>(queries) * 1e9 /
                              static_cast<double>(wall_ns);
  }

  void Accumulate(const BatchStats& other);
};

class QueryEngine {
 public:
  /// Builds an engine over `db` with the scheduler named by `spec`
  /// (e.g. "fifo", "sorted", "grouped"). Returns null and fills
  /// `status` (InvalidArgument) on an unknown or malformed spec. The
  /// caller keeps `db` alive for the engine's lifetime.
  static std::unique_ptr<QueryEngine> Create(Db* db, const std::string& spec,
                                             Status* status = nullptr);

  QueryEngine(Db* db, std::unique_ptr<Scheduler> scheduler);

  /// Runs one batch through Db::MultiSeek under the engine's scheduler.
  /// Fills `stats` (when non-null) with the batch's cost and folds it
  /// into totals(). `options` (snapshot, checksum/cache knobs) applies
  /// to the whole batch — one pinned view, one sequence horizon.
  void Run(const QueryBatch& batch, std::vector<MultiSeekResult>* results,
           BatchStats* stats = nullptr, const ReadOptions& options = {});

  const Scheduler& scheduler() const { return *scheduler_; }
  Db& db() { return *db_; }

  /// Accumulated stats across every Run since construction.
  const BatchStats& totals() const { return totals_; }

 private:
  Db* db_;
  std::unique_ptr<Scheduler> scheduler_;
  BatchStats totals_;
};

}  // namespace proteus

#endif  // PROTEUS_ENGINE_QUERY_ENGINE_H_
