#include "engine/query_engine.h"

#include "util/timer.h"

namespace proteus {

void BatchStats::Accumulate(const BatchStats& other) {
  queries += other.queries;
  found += other.found;
  empty += other.empty;
  filter_checks += other.filter_checks;
  filter_negatives += other.filter_negatives;
  sst_seeks += other.sst_seeks;
  false_positive_files += other.false_positive_files;
  blocks_touched += other.blocks_touched;
  cache_misses += other.cache_misses;
  wall_ns += other.wall_ns;
}

std::unique_ptr<QueryEngine> QueryEngine::Create(Db* db,
                                                const std::string& spec,
                                                Status* status) {
  std::string error;
  auto scheduler = SchedulerRegistry::Global().Create(spec, &error);
  if (scheduler == nullptr) {
    if (status != nullptr) *status = Status::InvalidArgument(error);
    return nullptr;
  }
  if (status != nullptr) *status = Status::OK();
  return std::make_unique<QueryEngine>(db, std::move(scheduler));
}

QueryEngine::QueryEngine(Db* db, std::unique_ptr<Scheduler> scheduler)
    : db_(db), scheduler_(std::move(scheduler)) {}

void QueryEngine::Run(const QueryBatch& batch,
                      std::vector<MultiSeekResult>* results,
                      BatchStats* stats, const ReadOptions& options) {
  const DbStats before = db_->stats();
  const BlockCache::Stats cache_before = db_->cache().stats();
  Stopwatch timer;
  db_->MultiSeek(batch, *scheduler_, results, options);
  BatchStats delta;
  delta.wall_ns = timer.ElapsedNanos();
  delta.queries = batch.size();
  for (const MultiSeekResult& r : *results) {
    if (r.found) ++delta.found;
  }
  delta.empty = delta.queries - delta.found;
  const DbStats& after = db_->stats();
  delta.filter_checks = after.filter_checks - before.filter_checks;
  delta.filter_negatives = after.filter_negatives - before.filter_negatives;
  delta.sst_seeks = after.sst_seeks - before.sst_seeks;
  delta.false_positive_files =
      after.false_positive_files - before.false_positive_files;
  const BlockCache::Stats& cache_after = db_->cache().stats();
  delta.blocks_touched = (cache_after.hits - cache_before.hits) +
                         (cache_after.misses - cache_before.misses);
  delta.cache_misses = cache_after.misses - cache_before.misses;
  totals_.Accumulate(delta);
  if (stats != nullptr) *stats = delta;
}

}  // namespace proteus
