// The query engine's binary wire protocol, shared by the epoll server
// (engine/server.h), the load generator (bench/bench_qps.cc), and the
// loopback smoke test.
//
// A connection carries a stream of length-prefixed frames; requests and
// responses alternate per frame (one response per request, in order):
//
//   frame   := length u32 LE | payload[length]
//   payload := op u8 | body
//
//   op 1  MultiSeek request : n u32 | n x (lo lp, hi lp)
//   op 2  Results response  : n u32 | n x (found u8, key lp, value lp)
//   op 3  Ping request      : (empty)
//   op 4  Pong response     : (empty)
//   op 255 Error response   : message lp          (connection closes after)
//
//   lp := length u32 | raw bytes
//
// Frames above kWireMaxFrameBytes are a protocol violation: the server
// answers with an Error frame and closes. Decoders never trust lengths —
// truncated or oversized bodies fail cleanly.

#ifndef PROTEUS_ENGINE_WIRE_H_
#define PROTEUS_ENGINE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lsm/db.h"

namespace proteus {

constexpr uint8_t kWireOpMultiSeek = 1;
constexpr uint8_t kWireOpResults = 2;
constexpr uint8_t kWireOpPing = 3;
constexpr uint8_t kWireOpPong = 4;
constexpr uint8_t kWireOpError = 255;

/// Upper bound on one frame's payload (16 MiB): large enough for any
/// sane batch, small enough that a corrupt length cannot balloon a
/// connection's buffer.
constexpr uint32_t kWireMaxFrameBytes = 16u << 20;

/// Appends `payload` as one framed message.
void WireAppendFrame(std::string* out, std::string_view payload);

enum class WireFrameStatus {
  kNeedMore,  // buffer holds a partial frame; read more bytes
  kFrame,     // one payload extracted and consumed from the buffer
  kTooLarge,  // declared length exceeds kWireMaxFrameBytes: protocol error
};

/// Splits the first complete frame off the front of `buffer` into
/// `payload`. Call in a loop until kNeedMore.
WireFrameStatus WireExtractFrame(std::string* buffer, std::string* payload);

// --- Requests ---

/// Appends a framed MultiSeek request for `batch`.
void WireEncodeMultiSeekRequest(const QueryBatch& batch, std::string* out);
/// Parses a MultiSeek request payload (op byte included). False on any
/// malformed byte.
bool WireDecodeMultiSeekRequest(std::string_view payload, QueryBatch* batch);

void WireEncodePingRequest(std::string* out);

// --- Responses ---

/// Appends a framed Results response. Only found/key/value travel;
/// per-query read errors (SeekResult::status) stay server-side — the
/// server logs them in its stats rather than shipping them to clients.
void WireEncodeResultsResponse(const std::vector<MultiSeekResult>& results,
                               std::string* out);
bool WireDecodeResultsResponse(std::string_view payload,
                               std::vector<MultiSeekResult>* results);

void WireEncodePongResponse(std::string* out);

void WireEncodeErrorResponse(std::string_view message, std::string* out);
/// Returns the op byte of a payload (0 when empty).
uint8_t WirePeekOp(std::string_view payload);

}  // namespace proteus

#endif  // PROTEUS_ENGINE_WIRE_H_
