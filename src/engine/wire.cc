#include "engine/wire.h"

#include <cstring>

#include "util/serial.h"

namespace proteus {
namespace {

// u32-length-prefixed byte string (the wire's `lp`; serial.h's
// PutLengthPrefixed is u64 and stays internal-format only).
void PutLp32(std::string* out, std::string_view s) {
  PutFixed32(out, static_cast<uint32_t>(s.size()));
  if (!s.empty()) out->append(s.data(), s.size());
}

bool GetLp32(std::string_view* in, std::string* out) {
  uint32_t n;
  if (!GetFixed32(in, &n)) return false;
  if (in->size() < n || n > kWireMaxFrameBytes) return false;
  out->assign(in->data(), n);
  in->remove_prefix(n);
  return true;
}

bool ConsumeOp(std::string_view* in, uint8_t op) {
  if (in->empty() || static_cast<uint8_t>(in->front()) != op) return false;
  in->remove_prefix(1);
  return true;
}

}  // namespace

void WireAppendFrame(std::string* out, std::string_view payload) {
  PutFixed32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload.data(), payload.size());
}

WireFrameStatus WireExtractFrame(std::string* buffer, std::string* payload) {
  if (buffer->size() < 4) return WireFrameStatus::kNeedMore;
  const uint32_t length = LoadFixed32(buffer->data());
  if (length > kWireMaxFrameBytes) return WireFrameStatus::kTooLarge;
  if (buffer->size() < 4 + static_cast<size_t>(length)) {
    return WireFrameStatus::kNeedMore;
  }
  payload->assign(buffer->data() + 4, length);
  buffer->erase(0, 4 + static_cast<size_t>(length));
  return WireFrameStatus::kFrame;
}

void WireEncodeMultiSeekRequest(const QueryBatch& batch, std::string* out) {
  std::string payload;
  payload.push_back(static_cast<char>(kWireOpMultiSeek));
  PutFixed32(&payload, static_cast<uint32_t>(batch.size()));
  for (const StrRangeQuery& q : batch) {
    PutLp32(&payload, q.lo);
    PutLp32(&payload, q.hi);
  }
  WireAppendFrame(out, payload);
}

bool WireDecodeMultiSeekRequest(std::string_view payload, QueryBatch* batch) {
  if (!ConsumeOp(&payload, kWireOpMultiSeek)) return false;
  uint32_t n;
  if (!GetFixed32(&payload, &n)) return false;
  // 8 bytes of length prefixes per query at minimum: caps n against the
  // actual payload size before the reserve.
  if (static_cast<uint64_t>(n) * 8 > payload.size()) return false;
  batch->clear();
  batch->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    StrRangeQuery q;
    if (!GetLp32(&payload, &q.lo) || !GetLp32(&payload, &q.hi)) return false;
    batch->push_back(std::move(q));
  }
  return payload.empty();
}

void WireEncodePingRequest(std::string* out) {
  std::string payload(1, static_cast<char>(kWireOpPing));
  WireAppendFrame(out, payload);
}

void WireEncodeResultsResponse(const std::vector<MultiSeekResult>& results,
                               std::string* out) {
  std::string payload;
  payload.push_back(static_cast<char>(kWireOpResults));
  PutFixed32(&payload, static_cast<uint32_t>(results.size()));
  for (const MultiSeekResult& r : results) {
    payload.push_back(r.found ? 1 : 0);
    PutLp32(&payload, r.found ? r.key : std::string_view());
    PutLp32(&payload, r.found ? r.value : std::string_view());
  }
  WireAppendFrame(out, payload);
}

bool WireDecodeResultsResponse(std::string_view payload,
                               std::vector<MultiSeekResult>* results) {
  if (!ConsumeOp(&payload, kWireOpResults)) return false;
  uint32_t n;
  if (!GetFixed32(&payload, &n)) return false;
  if (static_cast<uint64_t>(n) * 9 > payload.size()) return false;
  results->clear();
  results->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (payload.empty()) return false;
    (*results)[i].found = payload.front() != 0;
    payload.remove_prefix(1);
    if (!GetLp32(&payload, &(*results)[i].key) ||
        !GetLp32(&payload, &(*results)[i].value)) {
      return false;
    }
  }
  return payload.empty();
}

void WireEncodePongResponse(std::string* out) {
  std::string payload(1, static_cast<char>(kWireOpPong));
  WireAppendFrame(out, payload);
}

void WireEncodeErrorResponse(std::string_view message, std::string* out) {
  std::string payload;
  payload.push_back(static_cast<char>(kWireOpError));
  PutLp32(&payload, message);
  WireAppendFrame(out, payload);
}

uint8_t WirePeekOp(std::string_view payload) {
  return payload.empty() ? 0 : static_cast<uint8_t>(payload.front());
}

}  // namespace proteus
