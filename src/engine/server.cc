#include "engine/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "engine/wire.h"

namespace proteus {
namespace {

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

BatchServer::BatchServer(Db* db, ServerOptions options)
    : db_(db), options_(std::move(options)) {}

BatchServer::~BatchServer() {
  CloseAll();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

Status BatchServer::Start() {
  Status status;
  engine_ = QueryEngine::Create(db_, options_.scheduler, &status);
  if (engine_ == nullptr) return status;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host \"" + options_.host + "\"");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, options_.backlog) < 0) return Errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (!SetNonBlocking(listen_fd_)) return Errno("fcntl");

  if (::pipe(wake_fds_) < 0) return Errno("pipe");
  SetNonBlocking(wake_fds_[0]);
  SetNonBlocking(wake_fds_[1]);

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    return Errno("epoll_ctl(listen)");
  }
  ev.events = EPOLLIN;
  ev.data.fd = wake_fds_[0];
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fds_[0], &ev) < 0) {
    return Errno("epoll_ctl(wake)");
  }
  return Status::OK();
}

Status BatchServer::Serve() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  for (;;) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fds_[0]) {
        CloseAll();
        return Status::OK();
      }
      if (fd == listen_fd_) {
        AcceptPending();
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this wake
      Connection* conn = &it->second;
      bool alive = true;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) alive = false;
      if (alive && (events[i].events & EPOLLIN) != 0) {
        alive = HandleReadable(conn);
      }
      if (alive && (events[i].events & EPOLLOUT) != 0) {
        alive = HandleWritable(conn);
      }
      if (alive) {
        UpdateEpoll(conn);
      } else {
        CloseConnection(fd);
      }
    }
  }
}

void BatchServer::Stop() {
  if (wake_fds_[1] >= 0) {
    char byte = 0;
    // A full pipe already wakes the loop; the result is irrelevant.
    [[maybe_unused]] ssize_t rc = ::write(wake_fds_[1], &byte, 1);
  }
}

void BatchServer::AcceptPending() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: nothing to accept
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    connections_[fd].fd = fd;
    ++stats_.connections_accepted;
  }
}

bool BatchServer::HandleReadable(Connection* conn) {
  char buf[64 << 10];
  for (;;) {
    ssize_t r = ::read(conn->fd, buf, sizeof(buf));
    if (r > 0) {
      conn->in.append(buf, static_cast<size_t>(r));
      continue;
    }
    if (r == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  std::string payload;
  for (;;) {
    switch (WireExtractFrame(&conn->in, &payload)) {
      case WireFrameStatus::kNeedMore:
        return true;
      case WireFrameStatus::kTooLarge:
        ++stats_.protocol_errors;
        WireEncodeErrorResponse("frame too large", &conn->out);
        conn->close_after_write = true;
        return true;
      case WireFrameStatus::kFrame:
        if (!HandleFrame(conn, payload)) {
          ++stats_.protocol_errors;
          WireEncodeErrorResponse("malformed request", &conn->out);
          conn->close_after_write = true;
          return true;
        }
        break;
    }
  }
}

bool BatchServer::HandleFrame(Connection* conn, const std::string& payload) {
  switch (WirePeekOp(payload)) {
    case kWireOpMultiSeek: {
      QueryBatch batch;
      if (!WireDecodeMultiSeekRequest(payload, &batch)) return false;
      std::vector<MultiSeekResult> results;
      engine_->Run(batch, &results);
      ++stats_.batches_served;
      stats_.queries_served += batch.size();
      WireEncodeResultsResponse(results, &conn->out);
      return true;
    }
    case kWireOpPing:
      WireEncodePongResponse(&conn->out);
      return true;
    default:
      return false;
  }
}

bool BatchServer::HandleWritable(Connection* conn) {
  while (!conn->out.empty()) {
    ssize_t w = ::write(conn->fd, conn->out.data(), conn->out.size());
    if (w > 0) {
      conn->out.erase(0, static_cast<size_t>(w));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
  return !conn->close_after_write;
}

void BatchServer::UpdateEpoll(Connection* conn) {
  // Flush inline first: most responses fit the socket buffer, so the
  // common case never registers EPOLLOUT.
  if (!conn->out.empty()) {
    if (!HandleWritable(conn)) {
      CloseConnection(conn->fd);
      return;
    }
  } else if (conn->close_after_write) {
    CloseConnection(conn->fd);
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  if (!conn->out.empty()) ev.events |= EPOLLOUT;
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void BatchServer::CloseConnection(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(fd);
}

void BatchServer::CloseAll() {
  while (!connections_.empty()) CloseConnection(connections_.begin()->first);
}

}  // namespace proteus
