// Batch-query schedulers: the pluggable execution-order policy of the
// query engine (docs/ARCHITECTURE.md, "Query engine").
//
// A scheduler receives a QueryBatch and emits a permutation of its
// indices; the executor (Db::MultiSeek) then admits queries in that
// order. Order matters because the engine's per-SST grouping preserves
// it: queries sorted by key probe a filter's prefix regions and an SST's
// data blocks in ascending order, turning random cache traffic into
// sequential traffic.
//
// Schedulers are selected by spec string through SchedulerRegistry,
// mirroring FilterRegistry ("fifo", "sorted", "grouped:boundaries=32");
// custom schedulers register the same way filter families do. This
// header is deliberately LSM-agnostic: the optional ScheduleContext
// carries file boundaries as opaque keys, so schedulers can be unit
// tested (and reused) without a database.

#ifndef PROTEUS_ENGINE_SCHEDULER_H_
#define PROTEUS_ENGINE_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/filter_spec.h"
#include "core/query.h"

namespace proteus {

/// A batch of inclusive range queries over encoded (byte-string) keys —
/// the unit of admission of the query engine.
using QueryBatch = std::vector<StrRangeQuery>;

/// Optional layout hints for layout-aware schedulers. `file_boundaries`
/// holds the ascending smallest-keys of the non-overlapping files the
/// executor will consult (one sorted level); empty when the executor has
/// no layout to offer, in which case layout-aware schedulers degrade
/// gracefully (grouped becomes key-sorted).
struct ScheduleContext {
  std::vector<std::string> file_boundaries;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string Name() const = 0;

  /// Fills `order` with a permutation of [0, batch.size()): the positions
  /// of `batch` in execution order. Must emit every index exactly once.
  virtual void Plan(const QueryBatch& batch, const ScheduleContext& context,
                    std::vector<uint32_t>* order) const = 0;
};

/// One registered scheduler family: a spec name plus a factory taking the
/// parsed spec parameters.
struct SchedulerFamily {
  using CreateFn = std::unique_ptr<Scheduler> (*)(const FilterSpec& spec,
                                                  std::string* error);

  std::string name;                  // canonical spec name
  std::vector<std::string> aliases;  // extra spec names
  std::string help;                  // one-line parameter summary
  CreateFn create = nullptr;
};

/// The catalogue of scheduler families, mirroring FilterRegistry: spec
/// strings ("family:key=value,...") resolve to Scheduler instances, and
/// registering a family makes it available to every consumer (bench_qps
/// --scheduler=, the server, QueryEngine) with no extra plumbing.
class SchedulerRegistry {
 public:
  /// The process-wide registry, with the built-in families registered:
  ///   fifo     — arrival order (the no-scheduling baseline)
  ///   sorted   — ascending by query lo key (alias: key-sorted)
  ///   grouped  — bucket by overlapping file, sorted within each bucket
  ///              (alias: per-sst)
  static SchedulerRegistry& Global();

  /// Registers a family. Returns false (family not added) if its name or
  /// an alias is already taken. Not thread-safe; register during startup.
  bool Register(SchedulerFamily family);

  const SchedulerFamily* Find(std::string_view name) const;

  /// Canonical names of all registered families.
  std::vector<std::string> FamilyNames() const;

  /// Builds a scheduler from a spec string. Returns null and fills
  /// `error` on an unknown family or bad parameters.
  std::unique_ptr<Scheduler> Create(std::string_view spec,
                                    std::string* error = nullptr) const;

 private:
  SchedulerRegistry();  // registers the built-in families

  std::vector<SchedulerFamily> families_;
};

}  // namespace proteus

#endif  // PROTEUS_ENGINE_SCHEDULER_H_
