#include "engine/scheduler.h"

#include <algorithm>

namespace proteus {
namespace {

void IdentityOrder(size_t n, std::vector<uint32_t>* order) {
  order->resize(n);
  for (size_t i = 0; i < n; ++i) (*order)[i] = static_cast<uint32_t>(i);
}

class FifoScheduler : public Scheduler {
 public:
  std::string Name() const override { return "fifo"; }
  void Plan(const QueryBatch& batch, const ScheduleContext&,
            std::vector<uint32_t>* order) const override {
    IdentityOrder(batch.size(), order);
  }
};

class SortedScheduler : public Scheduler {
 public:
  std::string Name() const override { return "sorted"; }
  void Plan(const QueryBatch& batch, const ScheduleContext&,
            std::vector<uint32_t>* order) const override {
    IdentityOrder(batch.size(), order);
    std::stable_sort(order->begin(), order->end(),
                     [&batch](uint32_t a, uint32_t b) {
                       return batch[a].lo < batch[b].lo;
                     });
  }
};

/// Buckets queries by the file whose key range their lo falls into, then
/// sorts within each bucket, so all of one SST's probes run back to back
/// even when the arrival order interleaves files. Without layout hints
/// every query lands in one bucket and this degrades to key-sorted.
class GroupedScheduler : public Scheduler {
 public:
  std::string Name() const override { return "grouped"; }
  void Plan(const QueryBatch& batch, const ScheduleContext& context,
            std::vector<uint32_t>* order) const override {
    IdentityOrder(batch.size(), order);
    const auto& bounds = context.file_boundaries;
    auto bucket = [&bounds](const std::string& lo) -> size_t {
      // First boundary > lo, minus one: the file lo belongs to. Keys
      // before the first boundary share bucket 0 with it.
      auto it = std::upper_bound(bounds.begin(), bounds.end(), lo);
      return it == bounds.begin()
                 ? 0
                 : static_cast<size_t>(it - bounds.begin()) - 1;
    };
    std::stable_sort(order->begin(), order->end(),
                     [&](uint32_t a, uint32_t b) {
                       size_t ba = bucket(batch[a].lo);
                       size_t bb = bucket(batch[b].lo);
                       if (ba != bb) return ba < bb;
                       return batch[a].lo < batch[b].lo;
                     });
  }
};

std::unique_ptr<Scheduler> CreateParamless(
    const FilterSpec& spec, std::string* error,
    std::unique_ptr<Scheduler> scheduler) {
  if (!spec.ExpectKeys({}, error)) return nullptr;
  return scheduler;
}

std::unique_ptr<Scheduler> CreateFifo(const FilterSpec& spec,
                                      std::string* error) {
  return CreateParamless(spec, error, std::make_unique<FifoScheduler>());
}

std::unique_ptr<Scheduler> CreateSorted(const FilterSpec& spec,
                                        std::string* error) {
  return CreateParamless(spec, error, std::make_unique<SortedScheduler>());
}

std::unique_ptr<Scheduler> CreateGrouped(const FilterSpec& spec,
                                         std::string* error) {
  return CreateParamless(spec, error, std::make_unique<GroupedScheduler>());
}

}  // namespace

SchedulerRegistry& SchedulerRegistry::Global() {
  static SchedulerRegistry* registry = new SchedulerRegistry();
  return *registry;
}

SchedulerRegistry::SchedulerRegistry() {
  Register({"fifo", {}, "arrival order (no scheduling)", &CreateFifo});
  Register({"sorted",
            {"key-sorted"},
            "ascending by query lo key",
            &CreateSorted});
  Register({"grouped",
            {"per-sst"},
            "bucket by overlapping file, key-sorted within each bucket",
            &CreateGrouped});
}

bool SchedulerRegistry::Register(SchedulerFamily family) {
  if (family.create == nullptr) return false;
  auto taken = [this](const std::string& name) {
    return Find(name) != nullptr;
  };
  if (taken(family.name)) return false;
  for (const std::string& alias : family.aliases) {
    if (taken(alias)) return false;
  }
  families_.push_back(std::move(family));
  return true;
}

const SchedulerFamily* SchedulerRegistry::Find(std::string_view name) const {
  for (const SchedulerFamily& family : families_) {
    if (family.name == name) return &family;
    for (const std::string& alias : family.aliases) {
      if (alias == name) return &family;
    }
  }
  return nullptr;
}

std::vector<std::string> SchedulerRegistry::FamilyNames() const {
  std::vector<std::string> names;
  names.reserve(families_.size());
  for (const SchedulerFamily& family : families_) names.push_back(family.name);
  return names;
}

std::unique_ptr<Scheduler> SchedulerRegistry::Create(std::string_view spec,
                                                     std::string* error) const {
  FilterSpec parsed;
  if (!FilterSpec::Parse(spec, &parsed, error)) return nullptr;
  const SchedulerFamily* family = Find(parsed.family());
  if (family == nullptr) {
    if (error != nullptr) {
      *error = "unknown scheduler \"" + parsed.family() + "\"";
    }
    return nullptr;
  }
  return family->create(parsed, error);
}

}  // namespace proteus
