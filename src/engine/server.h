// BatchServer: a single-threaded nonblocking epoll server speaking the
// engine/wire.h protocol. Each connection streams framed MultiSeek
// requests; the server runs every batch through a QueryEngine over the
// shared Db and streams framed Results responses back, in order.
//
// The event loop lives in a library class (not just the example binary)
// so the smoke test can run it in-process: Start() binds an ephemeral
// port, a background thread calls Serve(), clients connect over
// loopback, Stop() shuts the loop down from any thread.
//
// One event-loop thread issues every MultiSeek; concurrency across
// connections comes from interleaving batches, not from parallel query
// execution. (The Db itself is fully concurrent — writers and background
// maintenance may run alongside the serving thread; each batch resolves
// against one pinned MVCC view.)

#ifndef PROTEUS_ENGINE_SERVER_H_
#define PROTEUS_ENGINE_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "engine/query_engine.h"
#include "lsm/db.h"
#include "util/status.h"

namespace proteus {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = pick an ephemeral port (see port())
  int backlog = 128;
  std::string scheduler = "sorted";
};

class BatchServer {
 public:
  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t batches_served = 0;
    uint64_t queries_served = 0;
    uint64_t protocol_errors = 0;  // bad frames / unknown ops (conn closed)
  };

  /// The caller keeps `db` alive until after Serve() returns.
  BatchServer(Db* db, ServerOptions options);
  ~BatchServer();
  BatchServer(const BatchServer&) = delete;
  BatchServer& operator=(const BatchServer&) = delete;

  /// Binds, listens, and sets up epoll. After OK, port() is the bound
  /// port and Serve() may be called (typically from another thread).
  Status Start();

  /// The bound port (valid after Start; resolves port 0).
  uint16_t port() const { return port_; }

  /// Runs the event loop until Stop(). Returns the first fatal error
  /// (epoll failure), or OK on a clean Stop.
  Status Serve();

  /// Signals Serve() to drain and return. Safe from any thread, and
  /// before/without Serve().
  void Stop();

  /// Event-loop counters; read after Serve() returns (or from the loop
  /// thread).
  const Stats& stats() const { return stats_; }

 private:
  struct Connection {
    int fd = -1;
    std::string in;   // bytes read, not yet framed
    std::string out;  // encoded responses awaiting write
    bool close_after_write = false;  // protocol error: flush error frame, close
  };

  void AcceptPending();
  /// Reads until EAGAIN, handles complete frames. False = close the conn.
  bool HandleReadable(Connection* conn);
  /// Runs one request frame through the engine, appends the response.
  bool HandleFrame(Connection* conn, const std::string& payload);
  /// Writes until EAGAIN or drained. False = close the conn.
  bool HandleWritable(Connection* conn);
  void UpdateEpoll(Connection* conn);
  void CloseConnection(int fd);
  void CloseAll();

  Db* db_;
  ServerOptions options_;
  std::unique_ptr<QueryEngine> engine_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: Stop() -> event loop wakeup
  uint16_t port_ = 0;
  std::map<int, Connection> connections_;
  Stats stats_;
};

}  // namespace proteus

#endif  // PROTEUS_ENGINE_SERVER_H_
