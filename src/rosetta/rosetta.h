// Rosetta — the Robust Space-Time Optimized range filter baseline (Luo et
// al., SIGMOD 2020), reimplemented for the paper's comparisons.
//
// Rosetta encodes the nodes of an implicit binary segment tree over the
// key space: each used level l holds a Bloom filter of the unique l-bit
// key prefixes. A range query decomposes into dyadic nodes at the top
// used level; every positive probe is "doubted" by descending into the
// node's children until the leaf level (l = 64) confirms, so a query
// returns positive iff some leaf-level probe is positive.
//
// Configuration follows the paper's usage (Sections 2.1, 5.2): the filter
// is given the same empty sample queries as Proteus; the deepest used
// level is derived from the largest sampled range, and the memory split
// across levels is chosen from a set of allocation profiles (uniform
// through strongly bottom-heavy) by a closed-form FPR estimate on the
// samples. In line with the original's findings, the bottom-heavy
// profiles win almost always.

#ifndef PROTEUS_ROSETTA_ROSETTA_H_
#define PROTEUS_ROSETTA_ROSETTA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bloom/prefix_bloom.h"
#include "core/filter_spec.h"
#include "core/query.h"
#include "core/range_filter.h"

namespace proteus {

class FilterBuilder;

class RosettaFilter : public RangeFilter {
 public:
  static constexpr uint32_t kFamilyId = 4;

  struct Config {
    uint32_t min_level = 64;                // top used level
    std::vector<double> level_weights;      // index 0 = min_level ... 64
    bool blocked_bloom = false;             // cache-line-blocked probe layout
  };

  /// Registry/FilterBuilder hook. Spec parameters: bpk (default 12);
  /// blocked=0|1 selects cache-line-blocked Bloom probes (default 1).
  static std::unique_ptr<RosettaFilter> BuildFromSpec(const FilterSpec& spec,
                                                      FilterBuilder& builder,
                                                      std::string* error);

  /// Self-configuring build from sample queries (the paper's setup). The
  /// profile estimator uses the FPR formula matching the probe layout.
  static std::unique_ptr<RosettaFilter> BuildSelfConfigured(
      const std::vector<uint64_t>& sorted_keys,
      const std::vector<RangeQuery>& sample_queries, double bits_per_key,
      bool blocked_bloom = false);

  /// Forced configuration (tests / ablations).
  static std::unique_ptr<RosettaFilter> BuildWithConfig(
      const std::vector<uint64_t>& sorted_keys, const Config& config,
      double bits_per_key);

  bool MayContain(uint64_t lo, uint64_t hi) const override;
  uint64_t SizeBits() const override;
  std::string Name() const override {
    return "Rosetta(L" + std::to_string(min_level_) + ")";
  }

  uint32_t FamilyId() const override { return kFamilyId; }
  void SerializePayload(std::string* out) const override;
  static std::unique_ptr<RosettaFilter> DeserializePayload(
      std::string_view* in);

  uint32_t min_level() const { return min_level_; }

  /// Bloom probes issued by the last MayContain call (CPU-cost
  /// diagnostics; Section 6.3 discusses Rosetta's probe amplification).
  uint64_t last_probe_count() const { return probes_; }

  static constexpr uint64_t kProbeLimit = uint64_t{1} << 22;

 private:
  RosettaFilter() = default;

  /// Doubting descent: true if the subtree of `prefix` (an l-bit value)
  /// may contain a key within [lo, hi].
  bool CheckNode(uint32_t level, uint64_t prefix, uint64_t lo,
                 uint64_t hi) const;

  /// Level-by-level doubting walk over a dense top-level span: the whole
  /// frontier of live nodes at each level is resolved with one batched
  /// probe call (PrefixBloom::MultiProbePrefix → the AVX2 multi-query
  /// kernel), survivors expand their in-range children into the next
  /// frontier. Falls back to the recursive descent if a frontier ever
  /// outgrows kMaxFrontier. Same answer as the descent; only the probe
  /// count near kProbeLimit can differ (both stay conservative-true).
  bool MayContainBfs(uint64_t first, uint64_t last, uint64_t lo,
                     uint64_t hi) const;

  /// Top-level spans at least this dense take the batched BFS walk.
  static constexpr uint64_t kBatchSpanMin = 16;
  /// BFS frontier cap (bounds the materialized node list to 512 KiB).
  static constexpr size_t kMaxFrontier = size_t{1} << 16;

  /// Probes level l for an l-bit prefix; levels without a filter cannot
  /// rule anything out and answer true.
  bool ProbeLevel(uint32_t level, uint64_t prefix) const;

  uint32_t min_level_ = 64;
  // filters_[l - min_level_] for l in [min_level_, 64]; empty filter =
  // unfiltered level.
  std::vector<PrefixBloom> filters_;
  mutable uint64_t probes_ = 0;
};

}  // namespace proteus

#endif  // PROTEUS_ROSETTA_ROSETTA_H_
