#include "rosetta/rosetta.h"

#include <algorithm>
#include <cmath>

#include "core/filter_builder.h"
#include "model/cpfpr.h"
#include "util/bits.h"
#include "util/serial.h"

namespace proteus {
namespace {

// Allocation profiles: weight of level (64 - d) is proportional to
// decay^d. decay = 1 is uniform; small decay concentrates memory at the
// leaf level, the regime the original paper found optimal.
constexpr double kDecays[] = {1.0, 0.5, 0.25, 0.1, 0.02};

std::vector<double> ProfileWeights(uint32_t min_level, double decay) {
  std::vector<double> w(64 - min_level + 1);
  for (uint32_t l = min_level; l <= 64; ++l) {
    w[l - min_level] = std::pow(decay, static_cast<double>(64 - l));
  }
  return w;
}

// f[l] = probability that an *empty* node at level l leads the doubting
// descent to a leaf-level positive.
std::vector<double> EmptyNodeFp(uint32_t min_level,
                                const std::vector<double>& level_fpr) {
  std::vector<double> f(65, 0.0);
  f[64] = level_fpr[64 - min_level];
  for (int l = 63; l >= static_cast<int>(min_level); --l) {
    double child = f[l + 1];
    double reach = 1.0 - (1.0 - child) * (1.0 - child);
    f[l] = level_fpr[l - min_level] * reach;
  }
  return f;
}

}  // namespace

std::unique_ptr<RosettaFilter> RosettaFilter::BuildFromSpec(
    const FilterSpec& spec, FilterBuilder& builder, std::string* error) {
  if (!spec.ExpectKeys({"bpk", "blocked"}, error)) return nullptr;
  double bpk;
  uint32_t blocked;
  if (!spec.GetDouble("bpk", 12.0, &bpk, error) ||
      !spec.GetUint32("blocked", 1, &blocked, error)) {
    return nullptr;
  }
  if (bpk <= 0.0) {
    if (error != nullptr) *error = "rosetta bpk must be positive";
    return nullptr;
  }
  if (blocked > 1) {
    if (error != nullptr) *error = "rosetta blocked must be 0 or 1";
    return nullptr;
  }
  if (builder.samples().empty()) {
    // No workload signal: configure for point queries on the key set.
    std::vector<RangeQuery> point = {
        {builder.keys().empty() ? 0 : builder.keys().front(),
         builder.keys().empty() ? 0 : builder.keys().front()}};
    return BuildSelfConfigured(builder.keys(), point, bpk, blocked != 0);
  }
  return BuildSelfConfigured(builder.keys(), builder.samples(), bpk,
                             blocked != 0);
}

std::unique_ptr<RosettaFilter> RosettaFilter::BuildSelfConfigured(
    const std::vector<uint64_t>& sorted_keys,
    const std::vector<RangeQuery>& sample_queries, double bits_per_key,
    bool blocked_bloom) {
  // Deepest level needed: ranges up to R require levels from
  // 64 - ceil(log2(R)).
  uint64_t max_range = 1;
  for (const RangeQuery& q : sample_queries) {
    max_range = std::max(max_range, q.hi - q.lo + 1);
  }
  uint32_t range_bits = 0;
  while ((uint64_t{1} << range_bits) < max_range && range_bits < 63) {
    ++range_bits;
  }
  uint32_t min_level = 64 - range_bits;

  // Per-query stats for the profile estimator.
  struct Rec {
    uint64_t lo, hi;
    uint32_t lcp_left, lcp_right;
  };
  std::vector<Rec> recs;
  recs.reserve(sample_queries.size());
  for (const RangeQuery& q : sample_queries) {
    auto succ = std::lower_bound(sorted_keys.begin(), sorted_keys.end(), q.lo);
    Rec r{q.lo, q.hi, 0, 0};
    if (succ != sorted_keys.begin()) r.lcp_left = LcpBits64(*(succ - 1), q.lo);
    if (succ != sorted_keys.end()) r.lcp_right = LcpBits64(*succ, q.hi);
    recs.push_back(r);
  }
  std::vector<uint64_t> k_counts = CountUniquePrefixesAll(sorted_keys);
  const uint64_t budget = static_cast<uint64_t>(
      bits_per_key * static_cast<double>(sorted_keys.size()));

  double best_fpr = 2.0;
  std::vector<double> best_weights;
  for (double decay : kDecays) {
    std::vector<double> weights = ProfileWeights(min_level, decay);
    double total_w = 0;
    for (double w : weights) total_w += w;
    std::vector<double> level_fpr(weights.size());
    for (uint32_t l = min_level; l <= 64; ++l) {
      uint64_t m = static_cast<uint64_t>(static_cast<double>(budget) *
                                         weights[l - min_level] / total_w);
      level_fpr[l - min_level] = CpfprModel::BloomFpr(
          m, k_counts[l],
          blocked_bloom ? BloomProbeMode::kBlocked
                        : BloomProbeMode::kStandard);
    }
    std::vector<double> f = EmptyNodeFp(min_level, level_fpr);

    double fp_sum = 0;
    for (const Rec& r : recs) {
      uint32_t lcp = std::max(r.lcp_left, r.lcp_right);
      if (lcp >= 64) {
        fp_sum += 1.0;
        continue;
      }
      double p_neg = 1.0;
      uint64_t n_top = PrefixCountInRange64(r.lo, r.hi, min_level);
      // Interior top-level nodes are empty.
      double interior = static_cast<double>(n_top >= 2 ? n_top - 2 : 0);
      p_neg *= std::exp(interior * std::log1p(-f[min_level]));
      // End chains: anchored while the end shares a prefix with the key
      // set; each anchored level spills at most one empty sibling child.
      auto chain = [&](uint32_t end_lcp) {
        if (end_lcp < min_level) {
          p_neg *= 1.0 - f[min_level];
          return;
        }
        for (uint32_t l = min_level; l <= std::min(end_lcp, 63u); ++l) {
          p_neg *= 1.0 - f[l + 1];
        }
      };
      chain(r.lcp_left);
      if (n_top >= 2) chain(r.lcp_right);
      fp_sum += 1.0 - p_neg;
    }
    double fpr = recs.empty() ? 0.0 : fp_sum / static_cast<double>(recs.size());
    if (fpr < best_fpr) {
      best_fpr = fpr;
      best_weights = std::move(weights);
    }
  }

  Config config;
  config.min_level = min_level;
  config.level_weights = std::move(best_weights);
  config.blocked_bloom = blocked_bloom;
  return BuildWithConfig(sorted_keys, config, bits_per_key);
}

std::unique_ptr<RosettaFilter> RosettaFilter::BuildWithConfig(
    const std::vector<uint64_t>& sorted_keys, const Config& config,
    double bits_per_key) {
  auto filter = std::unique_ptr<RosettaFilter>(new RosettaFilter());
  filter->min_level_ = config.min_level;
  const uint64_t budget = static_cast<uint64_t>(
      bits_per_key * static_cast<double>(sorted_keys.size()));
  double total_w = 0;
  for (double w : config.level_weights) total_w += w;
  filter->filters_.resize(65 - config.min_level);
  for (uint32_t l = config.min_level; l <= 64; ++l) {
    double w = config.level_weights[l - config.min_level];
    uint64_t m =
        static_cast<uint64_t>(static_cast<double>(budget) * w / total_w);
    if (m < 64) continue;  // level left unfiltered
    filter->filters_[l - config.min_level] =
        PrefixBloom(sorted_keys, m, l, config.blocked_bloom);
  }
  return filter;
}

bool RosettaFilter::ProbeLevel(uint32_t level, uint64_t prefix) const {
  const PrefixBloom& pb = filters_[level - min_level_];
  if (pb.SizeBits() == 0) return true;  // unfiltered level: keep doubting
  ++probes_;
  return pb.ProbePrefix(prefix);
}

bool RosettaFilter::CheckNode(uint32_t level, uint64_t prefix, uint64_t lo,
                              uint64_t hi) const {
  if (probes_ > kProbeLimit) return true;  // conservative budget stop
  if (!ProbeLevel(level, prefix)) return false;
  if (level == 64) return true;  // leaf-level positive confirms
  // Descend into the children intersecting [lo, hi].
  uint64_t child0 = prefix << 1;
  for (uint64_t child : {child0, child0 | 1}) {
    uint64_t clo = PrefixRangeLo64(child, level + 1);
    uint64_t chi = PrefixRangeHi64(child, level + 1);
    if (chi < lo || clo > hi) continue;
    if (CheckNode(level + 1, child, lo, hi)) return true;
  }
  return false;
}

bool RosettaFilter::MayContainBfs(uint64_t first, uint64_t last, uint64_t lo,
                                  uint64_t hi) const {
  std::vector<uint64_t> frontier;
  frontier.reserve(static_cast<size_t>(last - first) + 1);
  for (uint64_t p = first;; ++p) {
    frontier.push_back(p);
    if (p == last) break;
  }
  std::vector<uint64_t> next;
  std::vector<uint8_t> res;
  for (uint32_t level = min_level_;; ++level) {
    const PrefixBloom& pb = filters_[level - min_level_];
    if (pb.SizeBits() != 0) {
      probes_ += frontier.size();
      if (probes_ > kProbeLimit) return true;  // conservative budget stop
      res.resize(frontier.size());
      pb.MultiProbePrefix(frontier.data(), frontier.size(), res.data());
      size_t kept = 0;
      for (size_t i = 0; i < frontier.size(); ++i) {
        if (res[i] != 0) frontier[kept++] = frontier[i];
      }
      frontier.resize(kept);
    }  // unfiltered level: every node survives, no probes
    if (level == 64) return !frontier.empty();  // leaf positives confirm
    next.clear();
    for (uint64_t prefix : frontier) {
      const uint64_t child0 = prefix << 1;
      for (uint64_t child : {child0, child0 | 1}) {
        const uint64_t clo = PrefixRangeLo64(child, level + 1);
        const uint64_t chi = PrefixRangeHi64(child, level + 1);
        if (chi < lo || clo > hi) continue;
        next.push_back(child);
      }
    }
    if (next.empty()) return false;
    if (next.size() > kMaxFrontier) {
      // Pathological survivor growth: finish the live subtrees with the
      // recursive descent instead of materializing an ever-wider level.
      for (uint64_t child : next) {
        if (CheckNode(level + 1, child, lo, hi)) return true;
      }
      return false;
    }
    frontier.swap(next);
  }
}

bool RosettaFilter::MayContain(uint64_t lo, uint64_t hi) const {
  probes_ = 0;
  uint64_t first = PrefixBits64(lo, min_level_);
  uint64_t last = PrefixBits64(hi, min_level_);
  if (last - first + 1 > kProbeLimit) return true;
  // Dense top spans (the expensive queries) batch each level's probes
  // through the multi-query kernel; sparse spans keep the depth-first
  // doubting descent, which short-circuits on the first confirmed leaf.
  if (last - first >= kBatchSpanMin - 1 &&
      last - first < static_cast<uint64_t>(kMaxFrontier)) {
    return MayContainBfs(first, last, lo, hi);
  }
  for (uint64_t p = first;; ++p) {
    if (CheckNode(min_level_, p, lo, hi)) return true;
    if (p == last) break;
  }
  return false;
}

uint64_t RosettaFilter::SizeBits() const {
  uint64_t total = 0;
  for (const PrefixBloom& pb : filters_) total += pb.SizeBits();
  return total;
}

void RosettaFilter::SerializePayload(std::string* out) const {
  PutFixed32(out, min_level_);
  PutFixed32(out, static_cast<uint32_t>(filters_.size()));
  for (const PrefixBloom& pb : filters_) pb.AppendTo(out);
}

std::unique_ptr<RosettaFilter> RosettaFilter::DeserializePayload(
    std::string_view* in) {
  auto filter = std::unique_ptr<RosettaFilter>(new RosettaFilter());
  uint32_t n_filters;
  if (!GetFixed32(in, &filter->min_level_) || !GetFixed32(in, &n_filters)) {
    return nullptr;
  }
  if (filter->min_level_ > 64 || n_filters != 65 - filter->min_level_) {
    return nullptr;
  }
  filter->filters_.resize(n_filters);
  for (PrefixBloom& pb : filter->filters_) {
    if (!PrefixBloom::ParseFrom(in, &pb)) return nullptr;
  }
  return filter;
}

}  // namespace proteus
