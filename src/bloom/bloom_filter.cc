#include "bloom/bloom_filter.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace proteus {

BloomFilter::BloomFilter(uint64_t n_bits, uint32_t n_hashes, bool blocked)
    : n_bits_(std::max<uint64_t>(n_bits, blocked ? kBlockBits : 64)),
      n_hashes_(std::clamp<uint32_t>(n_hashes, 1, kMaxHashes)),
      blocked_(blocked) {
  if (blocked_) {
    n_bits_ = (n_bits_ + kBlockBits - 1) / kBlockBits * kBlockBits;
  }
  words_.assign((n_bits_ + 63) / 64, 0);
}

uint32_t BloomFilter::OptimalHashes(uint64_t m_bits, uint64_t n_items) {
  if (n_items == 0) return 1;
  double ratio = static_cast<double>(m_bits) / static_cast<double>(n_items);
  uint32_t k = static_cast<uint32_t>(std::ceil(ratio * std::log(2.0)));
  return std::clamp<uint32_t>(k, 1, kMaxHashes);
}

double BloomFilter::TheoreticalFpr(uint64_t m_bits, uint64_t n_items) {
  if (n_items == 0) return 0.0;
  if (m_bits == 0) return 1.0;
  uint32_t k = OptimalHashes(m_bits, n_items);
  // Eq. 6 of the paper: p = (1 - e^{-ln 2})^k == 0.5^k when k is the
  // unclamped optimum; with the clamp we evaluate the general formula.
  double m = static_cast<double>(m_bits);
  double n = static_cast<double>(n_items);
  return std::pow(1.0 - std::exp(-static_cast<double>(k) * n / m),
                  static_cast<double>(k));
}

double BloomFilter::TheoreticalFprBlocked(uint64_t m_bits, uint64_t n_items) {
  if (n_items == 0) return 0.0;
  if (m_bits == 0) return 1.0;
  // The CPFPR design sweeps evaluate thousands of configs but only ~65
  // distinct (m, n) pairs per side; a small direct-mapped memo keeps the
  // O(lambda) Poisson sum below off the selection hot loop.
  struct Memo {
    uint64_t m = 0, n = 0;
    double fpr = 0.0;
  };
  thread_local Memo memo[64];
  Memo& slot = memo[(m_bits * 0x9E3779B97F4A7C15ull ^ n_items) & 63];
  if (slot.m == m_bits && slot.n == n_items) return slot.fpr;
  const uint32_t k = OptimalHashes(m_bits, n_items);
  const double b = static_cast<double>(kBlockBits);
  // A block receives Poisson(lambda)-many items, lambda = B * n / m; a
  // block holding j items false-positives like a j-item, B-bit filter.
  const double lambda =
      b * static_cast<double>(n_items) / static_cast<double>(m_bits);
  double fpr = 1.0;
  // Past ~8 items per block bit the blocks are saturated and the FPR is 1
  // to beyond double precision; cut off before the O(lambda) sum so even
  // starvation-level budgets evaluate in O(1).
  if (lambda <= 8.0 * b) {
    // Truncate the Poisson tail well past the mean; terms decay
    // factorially.
    const uint64_t j_max =
        static_cast<uint64_t>(lambda + 12.0 * std::sqrt(lambda) + 48.0);
    double log_p = -lambda;  // log Poisson(0)
    fpr = 0.0;
    for (uint64_t j = 0;; ++j) {
      const double weight = std::exp(log_p);
      if (j > 0) {
        const double fill = 1.0 - std::exp(-static_cast<double>(k) *
                                           static_cast<double>(j) / b);
        fpr += weight * std::pow(fill, static_cast<double>(k));
      }
      if (j >= j_max) break;
      log_p += std::log(lambda) - std::log(static_cast<double>(j + 1));
    }
    fpr = std::min(fpr, 1.0);
  }
  slot = {m_bits, n_items, fpr};
  return fpr;
}

void BloomFilter::InsertHash(uint64_t h1, uint64_t h2) {
  if (words_.empty()) return;  // default-constructed: nothing to set
  if (blocked_) {
    uint64_t* block = words_.data() + BlockIndex(h1) * 8;
    const uint64_t step = h1 | 1;
    uint64_t pos = h2;
    for (uint32_t i = 0; i < n_hashes_; ++i) {
      const uint64_t bit = pos & (kBlockBits - 1);
      block[bit >> 6] |= uint64_t{1} << (bit & 63);
      pos += step;
    }
    return;
  }
  for (uint32_t i = 0; i < n_hashes_; ++i) {
    uint64_t bit = BitIndex(h1, h2, i);
    words_[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
}

bool BloomFilter::MayContainHash(uint64_t h1, uint64_t h2) const {
  // Conservative answer for a default-constructed (empty) filter; also
  // keeps a corrupt blob that smuggled an empty filter into a probed slot
  // from dividing by zero below.
  if (words_.empty()) return true;
  if (blocked_) {
    const uint64_t* block = words_.data() + BlockIndex(h1) * 8;
    const uint64_t step = h1 | 1;
    uint64_t pos = h2;
    for (uint32_t i = 0; i < n_hashes_; ++i) {
      const uint64_t bit = pos & (kBlockBits - 1);
      if (((block[bit >> 6] >> (bit & 63)) & 1) == 0) return false;
      pos += step;
    }
    return true;
  }
  for (uint32_t i = 0; i < n_hashes_; ++i) {
    uint64_t bit = BitIndex(h1, h2, i);
    if (((words_[bit >> 6] >> (bit & 63)) & 1) == 0) return false;
  }
  return true;
}

void BloomFilter::AppendTo(std::string* out) const {
  // Unblocked filters write the original format: blobs from before the
  // blocked layout existed remain bit-identical and keep parsing.
  const uint64_t format = blocked_ ? uint64_t{kBlockedFormat} << 32 : 0;
  uint64_t header[2] = {n_bits_, format | n_hashes_};
  out->append(reinterpret_cast<const char*>(header), sizeof(header));
  out->append(reinterpret_cast<const char*>(words_.data()),
              words_.size() * sizeof(uint64_t));
}

bool BloomFilter::ParseFrom(std::string_view* in, BloomFilter* out) {
  if (in->size() < 16) return false;
  uint64_t header[2];
  std::memcpy(header, in->data(), sizeof(header));
  const uint64_t n_bits = header[0];
  const uint32_t format = static_cast<uint32_t>(header[1] >> 32);
  const uint32_t n_hashes = static_cast<uint32_t>(header[1]);
  if (format > kBlockedFormat) return false;  // from a future version
  const bool blocked = format == kBlockedFormat;
  // The constructor only produces n_bits == 0 (default-constructed, never
  // probed), >= 64 unblocked, or a whole number of blocks; anything else
  // is corruption.
  if (blocked && (n_bits < kBlockBits || n_bits % kBlockBits != 0)) {
    return false;
  }
  if (!blocked && n_bits != 0 && n_bits < 64) return false;
  uint64_t n_words = (n_bits + 63) / 64;
  if (in->size() < 16 + n_words * 8) return false;
  out->n_bits_ = n_bits;
  out->n_hashes_ = n_hashes;
  out->blocked_ = blocked;
  out->words_.resize(n_words);
  if (n_words > 0) {
    std::memcpy(out->words_.data(), in->data() + 16, n_words * 8);
  }
  in->remove_prefix(16 + n_words * 8);
  return true;
}

}  // namespace proteus
