#include "bloom/bloom_filter.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/simd.h"

#if PROTEUS_HAVE_AVX2_KERNELS
#include <immintrin.h>
#endif

namespace proteus {

BloomFilter::BloomFilter(uint64_t n_bits, uint32_t n_hashes, bool blocked)
    : n_bits_(std::max<uint64_t>(n_bits, blocked ? kBlockBits : 64)),
      n_hashes_(std::clamp<uint32_t>(n_hashes, 1, kMaxHashes)),
      blocked_(blocked) {
  if (blocked_) {
    n_bits_ = (n_bits_ + kBlockBits - 1) / kBlockBits * kBlockBits;
  }
  words_.assign((n_bits_ + 63) / 64, 0);
}

uint32_t BloomFilter::OptimalHashes(uint64_t m_bits, uint64_t n_items) {
  if (n_items == 0) return 1;
  double ratio = static_cast<double>(m_bits) / static_cast<double>(n_items);
  uint32_t k = static_cast<uint32_t>(std::ceil(ratio * std::log(2.0)));
  return std::clamp<uint32_t>(k, 1, kMaxHashes);
}

double BloomFilter::TheoreticalFpr(uint64_t m_bits, uint64_t n_items) {
  if (n_items == 0) return 0.0;
  if (m_bits == 0) return 1.0;
  uint32_t k = OptimalHashes(m_bits, n_items);
  // Eq. 6 of the paper: p = (1 - e^{-ln 2})^k == 0.5^k when k is the
  // unclamped optimum; with the clamp we evaluate the general formula.
  double m = static_cast<double>(m_bits);
  double n = static_cast<double>(n_items);
  return std::pow(1.0 - std::exp(-static_cast<double>(k) * n / m),
                  static_cast<double>(k));
}

double BloomFilter::TheoreticalFprBlocked(uint64_t m_bits, uint64_t n_items) {
  if (n_items == 0) return 0.0;
  if (m_bits == 0) return 1.0;
  // The CPFPR design sweeps evaluate thousands of configs but only ~65
  // distinct (m, n) pairs per side; a small direct-mapped memo keeps the
  // O(lambda) Poisson sum below off the selection hot loop.
  struct Memo {
    uint64_t m = 0, n = 0;
    double fpr = 0.0;
  };
  thread_local Memo memo[64];
  Memo& slot = memo[(m_bits * 0x9E3779B97F4A7C15ull ^ n_items) & 63];
  if (slot.m == m_bits && slot.n == n_items) return slot.fpr;
  const uint32_t k = OptimalHashes(m_bits, n_items);
  const double b = static_cast<double>(kBlockBits);
  // A block receives Poisson(lambda)-many items, lambda = B * n / m; a
  // block holding j items false-positives like a j-item, B-bit filter.
  const double lambda =
      b * static_cast<double>(n_items) / static_cast<double>(m_bits);
  double fpr = 1.0;
  // Past ~8 items per block bit the blocks are saturated and the FPR is 1
  // to beyond double precision; cut off before the O(lambda) sum so even
  // starvation-level budgets evaluate in O(1).
  if (lambda <= 8.0 * b) {
    // Truncate the Poisson tail well past the mean; terms decay
    // factorially.
    const uint64_t j_max =
        static_cast<uint64_t>(lambda + 12.0 * std::sqrt(lambda) + 48.0);
    double log_p = -lambda;  // log Poisson(0)
    fpr = 0.0;
    for (uint64_t j = 0;; ++j) {
      const double weight = std::exp(log_p);
      if (j > 0) {
        const double fill = 1.0 - std::exp(-static_cast<double>(k) *
                                           static_cast<double>(j) / b);
        fpr += weight * std::pow(fill, static_cast<double>(k));
      }
      if (j >= j_max) break;
      log_p += std::log(lambda) - std::log(static_cast<double>(j + 1));
    }
    fpr = std::min(fpr, 1.0);
  }
  slot = {m_bits, n_items, fpr};
  return fpr;
}

void BloomFilter::InsertHash(uint64_t h1, uint64_t h2) {
  if (words_.empty()) return;  // default-constructed: nothing to set
  if (blocked_) {
    uint64_t* block = words_.data() + BlockIndex(h1) * 8;
    const uint64_t step = h1 | 1;
    uint64_t pos = h2;
    for (uint32_t i = 0; i < n_hashes_; ++i) {
      const uint64_t bit = pos & (kBlockBits - 1);
      block[bit >> 6] |= uint64_t{1} << (bit & 63);
      pos += step;
    }
    return;
  }
  for (uint32_t i = 0; i < n_hashes_; ++i) {
    uint64_t bit = BitIndex(h1, h2, i);
    words_[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
}

bool BloomFilter::MayContainHash(uint64_t h1, uint64_t h2) const {
  // Conservative answer for a default-constructed (empty) filter; also
  // keeps a corrupt blob that smuggled an empty filter into a probed slot
  // from dividing by zero below.
  if (words_.empty()) return true;
  if (blocked_) {
    const uint64_t* block = words_.data() + BlockIndex(h1) * 8;
    const uint64_t step = h1 | 1;
    uint64_t pos = h2;
    for (uint32_t i = 0; i < n_hashes_; ++i) {
      const uint64_t bit = pos & (kBlockBits - 1);
      if (((block[bit >> 6] >> (bit & 63)) & 1) == 0) return false;
      pos += step;
    }
    return true;
  }
  for (uint32_t i = 0; i < n_hashes_; ++i) {
    uint64_t bit = BitIndex(h1, h2, i);
    if (((words_[bit >> 6] >> (bit & 63)) & 1) == 0) return false;
  }
  return true;
}

#if PROTEUS_HAVE_AVX2_KERNELS
namespace {

/// AVX2 batch probe of the blocked layout: 8 queries per iteration as two
/// interleaved 4-lane streams, so eight independent gathers are in flight
/// while each probe's shift/test resolves. Per probe round each lane
/// computes bit = pos & 511 inside its own 512-bit block, gathers the
/// containing word, and ANDs the tested bit into an accumulator; one
/// testz pair early-exits the probe loop once all 8 lanes have failed.
/// Block selection is the same multiply-shift as the scalar path, done
/// with scalar 128-bit multiplies (AVX2 has no 64x64 high-half multiply;
/// the gathers dominate regardless). Returns how many queries were
/// resolved — always a multiple of 8; the caller finishes the tail.
__attribute__((target("avx2"))) size_t MultiContainBlockedAvx2(
    const uint64_t* words, uint64_t n_blocks, uint32_t n_hashes,
    const uint64_t* h1, const uint64_t* h2, size_t n, uint8_t* out) {
  const long long* base = reinterpret_cast<const long long*>(words);
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i block_mask = _mm256_set1_epi64x(BloomFilter::kBlockBits - 1);
  const __m256i shift_mask = _mm256_set1_epi64x(63);
  const auto block_word = [&](size_t q) {
    return static_cast<long long>(
        static_cast<uint64_t>(
            (static_cast<unsigned __int128>(h1[q]) * n_blocks) >> 64) *
        8);
  };
  // Split each chunk into a prefetch phase and a probe phase: every
  // block a chunk will touch is exactly one cache line, so issuing all
  // the prefetches first puts up to kChunk lines in flight before the
  // first gather needs one — far more latency overlap than the scalar
  // loop's one-query lookahead, and the chunk is small enough that the
  // early lines are still resident when their group probes.
  constexpr size_t kChunk = 256;
  alignas(32) long long bases[kChunk];
  size_t i = 0;
  while (i + 8 <= n) {
    const size_t m = std::min(n - i, kChunk) & ~size_t{7};
    for (size_t q = 0; q < m; ++q) {
      bases[q] = block_word(i + q);
      __builtin_prefetch(words + bases[q]);
    }
    for (size_t g = 0; g + 8 <= m; g += 8, i += 8) {
    const __m256i base_a =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(bases + g));
    const __m256i base_b =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(bases + g + 4));
    const __m256i h1_a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h1 + i));
    const __m256i h1_b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h1 + i + 4));
    const __m256i step_a = _mm256_or_si256(h1_a, one);
    const __m256i step_b = _mm256_or_si256(h1_b, one);
    __m256i pos_a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h2 + i));
    __m256i pos_b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h2 + i + 4));
    __m256i acc_a = one;
    __m256i acc_b = one;
    for (uint32_t p = 0; p < n_hashes; ++p) {
      const __m256i bit_a = _mm256_and_si256(pos_a, block_mask);
      const __m256i bit_b = _mm256_and_si256(pos_b, block_mask);
      const __m256i idx_a =
          _mm256_add_epi64(base_a, _mm256_srli_epi64(bit_a, 6));
      const __m256i idx_b =
          _mm256_add_epi64(base_b, _mm256_srli_epi64(bit_b, 6));
      const __m256i word_a = _mm256_i64gather_epi64(base, idx_a, 8);
      const __m256i word_b = _mm256_i64gather_epi64(base, idx_b, 8);
      acc_a = _mm256_and_si256(
          acc_a, _mm256_srlv_epi64(word_a, _mm256_and_si256(bit_a,
                                                            shift_mask)));
      acc_b = _mm256_and_si256(
          acc_b, _mm256_srlv_epi64(word_b, _mm256_and_si256(bit_b,
                                                            shift_mask)));
      pos_a = _mm256_add_epi64(pos_a, step_a);
      pos_b = _mm256_add_epi64(pos_b, step_b);
      // Only bit 0 of each accumulator lane carries the verdict; stop
      // probing once it is clear in all 8 lanes.
      if (_mm256_testz_si256(acc_a, one) && _mm256_testz_si256(acc_b, one)) {
        break;
      }
    }
    alignas(32) uint64_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes),
                       _mm256_and_si256(acc_a, one));
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes + 4),
                       _mm256_and_si256(acc_b, one));
    for (int j = 0; j < 8; ++j) out[i + j] = static_cast<uint8_t>(lanes[j]);
    }
  }
  return i;
}

}  // namespace
#endif  // PROTEUS_HAVE_AVX2_KERNELS

void BloomFilter::MultiContainHash(const uint64_t* h1, const uint64_t* h2,
                                   size_t n, uint8_t* out) const {
  if (n == 0) return;
  if (words_.empty()) {
    std::memset(out, 1, n);  // conservative, matching MayContainHash
    return;
  }
  size_t i = 0;
#if PROTEUS_HAVE_AVX2_KERNELS
  // The standard layout reduces each probe mod n_bits_ — an arbitrary
  // 64-bit modulo with no efficient AVX2 form — so only the blocked
  // layout (one multiply-shift block pick, then power-of-two masks)
  // has a vector kernel.
  if (blocked_ && SimdAvx2Enabled()) {
    i = MultiContainBlockedAvx2(words_.data(), words_.size() / 8, n_hashes_,
                                h1, h2, n, out);
  }
#endif
  // Scalar fallback and tail: the whole batch's hashes are in hand, so
  // prefetch one query ahead while the current probe's loads resolve.
  for (; i < n; ++i) {
    if (i + 1 < n) PrefetchHash(h1[i + 1]);
    out[i] = MayContainHash(h1[i], h2[i]) ? 1 : 0;
  }
}

void BloomFilter::AppendTo(std::string* out) const {
  // Unblocked filters write the original format: blobs from before the
  // blocked layout existed remain bit-identical and keep parsing.
  const uint64_t format = blocked_ ? uint64_t{kBlockedFormat} << 32 : 0;
  uint64_t header[2] = {n_bits_, format | n_hashes_};
  out->append(reinterpret_cast<const char*>(header), sizeof(header));
  out->append(reinterpret_cast<const char*>(words_.data()),
              words_.size() * sizeof(uint64_t));
}

bool BloomFilter::ParseFrom(std::string_view* in, BloomFilter* out) {
  if (in->size() < 16) return false;
  uint64_t header[2];
  std::memcpy(header, in->data(), sizeof(header));
  const uint64_t n_bits = header[0];
  const uint32_t format = static_cast<uint32_t>(header[1] >> 32);
  const uint32_t n_hashes = static_cast<uint32_t>(header[1]);
  if (format > kBlockedFormat) return false;  // from a future version
  const bool blocked = format == kBlockedFormat;
  // The constructor only produces n_bits == 0 (default-constructed, never
  // probed), >= 64 unblocked, or a whole number of blocks; anything else
  // is corruption.
  if (blocked && (n_bits < kBlockBits || n_bits % kBlockBits != 0)) {
    return false;
  }
  if (!blocked && n_bits != 0 && n_bits < 64) return false;
  uint64_t n_words = (n_bits + 63) / 64;
  if (in->size() < 16 + n_words * 8) return false;
  out->n_bits_ = n_bits;
  out->n_hashes_ = n_hashes;
  out->blocked_ = blocked;
  out->words_.resize(n_words);
  if (n_words > 0) {
    std::memcpy(out->words_.data(), in->data() + 16, n_words * 8);
  }
  in->remove_prefix(16 + n_words * 8);
  return true;
}

}  // namespace proteus
