#include "bloom/bloom_filter.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace proteus {

BloomFilter::BloomFilter(uint64_t n_bits, uint32_t n_hashes)
    : n_bits_(std::max<uint64_t>(n_bits, 64)),
      n_hashes_(std::clamp<uint32_t>(n_hashes, 1, kMaxHashes)),
      words_((n_bits_ + 63) / 64, 0) {}

uint32_t BloomFilter::OptimalHashes(uint64_t m_bits, uint64_t n_items) {
  if (n_items == 0) return 1;
  double ratio = static_cast<double>(m_bits) / static_cast<double>(n_items);
  uint32_t k = static_cast<uint32_t>(std::ceil(ratio * std::log(2.0)));
  return std::clamp<uint32_t>(k, 1, kMaxHashes);
}

double BloomFilter::TheoreticalFpr(uint64_t m_bits, uint64_t n_items) {
  if (n_items == 0) return 0.0;
  if (m_bits == 0) return 1.0;
  uint32_t k = OptimalHashes(m_bits, n_items);
  // Eq. 6 of the paper: p = (1 - e^{-ln 2})^k == 0.5^k when k is the
  // unclamped optimum; with the clamp we evaluate the general formula.
  double m = static_cast<double>(m_bits);
  double n = static_cast<double>(n_items);
  return std::pow(1.0 - std::exp(-static_cast<double>(k) * n / m),
                  static_cast<double>(k));
}

void BloomFilter::InsertHash(uint64_t h1, uint64_t h2) {
  for (uint32_t i = 0; i < n_hashes_; ++i) {
    uint64_t bit = BitIndex(h1, h2, i);
    words_[bit >> 6] |= uint64_t{1} << (bit & 63);
  }
}

bool BloomFilter::MayContainHash(uint64_t h1, uint64_t h2) const {
  for (uint32_t i = 0; i < n_hashes_; ++i) {
    uint64_t bit = BitIndex(h1, h2, i);
    if (((words_[bit >> 6] >> (bit & 63)) & 1) == 0) return false;
  }
  return true;
}

void BloomFilter::AppendTo(std::string* out) const {
  uint64_t header[2] = {n_bits_, n_hashes_};
  out->append(reinterpret_cast<const char*>(header), sizeof(header));
  out->append(reinterpret_cast<const char*>(words_.data()),
              words_.size() * sizeof(uint64_t));
}

bool BloomFilter::ParseFrom(std::string_view* in, BloomFilter* out) {
  if (in->size() < 16) return false;
  uint64_t header[2];
  std::memcpy(header, in->data(), sizeof(header));
  uint64_t n_bits = header[0];
  uint64_t n_words = (n_bits + 63) / 64;
  if (in->size() < 16 + n_words * 8) return false;
  out->n_bits_ = n_bits;
  out->n_hashes_ = static_cast<uint32_t>(header[1]);
  out->words_.resize(n_words);
  std::memcpy(out->words_.data(), in->data() + 16, n_words * 8);
  in->remove_prefix(16 + n_words * 8);
  return true;
}

}  // namespace proteus
