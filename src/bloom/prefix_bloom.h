// Prefix Bloom filters (Section 2.1): a Bloom filter populated with the
// l-bit prefixes of the key set. A range [lo, hi] is answered by probing
// every l-bit prefix region overlapping the range; the filter returns
// negative only if all probes are negative.
//
// Multi-prefix walks go through ProbeRange, which hashes one prefix ahead
// and prefetches its cache line so the memory access of probe i+1 overlaps
// the compute of probe i. (Deriving the (h1, h2) pair of prefix p+1 from
// p's pair was measured instead and rejected: Murmur3/CLHASH mix all input
// bits, so consecutive prefixes share no hash state to reuse — pipelining
// is what actually pays.)
//
// PrefixBloom handles 64-bit integer keys; StrPrefixBloom handles byte
// strings under the trailing-NUL padding convention of Section 7.1.

#ifndef PROTEUS_BLOOM_PREFIX_BLOOM_H_
#define PROTEUS_BLOOM_PREFIX_BLOOM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bloom/bloom_filter.h"
#include "util/bits.h"
#include "util/bitstring.h"

namespace proteus {

class PrefixBloom {
 public:
  PrefixBloom() = default;

  /// Builds a filter of `n_bits` bits over the `prefix_len`-bit prefixes of
  /// `sorted_keys` (duplicated prefixes are inserted once). `blocked`
  /// selects the cache-line-blocked probe layout.
  PrefixBloom(const std::vector<uint64_t>& sorted_keys, uint64_t n_bits,
              uint32_t prefix_len, bool blocked = false);

  /// Probes the single l-bit prefix that `prefix_value` denotes
  /// (right-aligned, as produced by PrefixBits64).
  bool ProbePrefix(uint64_t prefix_value) const;

  /// Hashes `prefix_value` and pulls in the cache line its probe will
  /// touch first — the cross-query analogue of ProbeRange's hash-ahead,
  /// called by batch executors one query before they probe it.
  void PrefetchPrefix(uint64_t prefix_value) const;

  /// Probes every prefix value in [first, last] (inclusive), hashing and
  /// prefetching one prefix ahead; true on the first positive.
  bool ProbeRange(uint64_t first, uint64_t last) const;

  /// Split-phase probing for callers that interleave OTHER work between
  /// consecutive prefixes (the 2PBF coarse walk doubts each positive at
  /// the fine filter): HashPrefix computes the salted (h1, h2) pair,
  /// PrefetchHash pulls in the cache line probe h1 touches first, and
  /// ProbeHash resolves the probe — so the caller can hash and prefetch
  /// prefix p+1 before resolving p, same arrangement as ProbeRange.
  void HashPrefix(uint64_t prefix_value, uint64_t* h1, uint64_t* h2) const;
  void PrefetchHash(uint64_t h1) const { bf_.PrefetchHash(h1); }
  bool ProbeHash(uint64_t h1, uint64_t h2) const {
    return bf_.MayContainHash(h1, h2);
  }

  /// Batch form of ProbeHash over parallel (h1, h2) arrays; dispatches to
  /// the AVX2 multi-query kernel when available (util/simd.h). This is the
  /// entry the 1PBF/2PBF coarse walks and Rosetta's per-level probes use
  /// once a batch is dense enough to beat the one-ahead scalar pipeline.
  void MultiProbeHash(const uint64_t* h1, const uint64_t* h2, size_t n,
                      uint8_t* out) const {
    bf_.MultiContainHash(h1, h2, n, out);
  }

  /// Hashes `n` right-aligned l-bit prefix values in stack-sized chunks
  /// and batch-probes them: out[i] = ProbePrefix(prefix_values[i]).
  void MultiProbePrefix(const uint64_t* prefix_values, size_t n,
                        uint8_t* out) const;

  /// True if any l-bit prefix overlapping [lo, hi] probes positive.
  /// Probing short-circuits on the first positive. If the number of
  /// overlapping prefixes exceeds `probe_limit`, conservatively returns
  /// true (never a false negative).
  bool MayContain(uint64_t lo, uint64_t hi,
                  uint64_t probe_limit = kDefaultProbeLimit) const;

  /// Batch MayContain: narrow queries' prefixes (usually one or two per
  /// query) are flattened into one value array with an owner index per
  /// entry and resolved through the multi-query kernel; queries spanning
  /// kFlattenLimit or more prefixes keep the scalar short-circuiting
  /// walk (and its probe-limit guard). Used by 1PBF directly and by 2PBF
  /// for its degenerate no-coarse-filter configuration.
  void MultiMayContain(const uint64_t* lo, const uint64_t* hi, size_t n,
                       uint8_t* out) const;

  /// Queries at least this wide bypass batch flattening.
  static constexpr uint64_t kFlattenLimit = 16;

  uint32_t prefix_len() const { return prefix_len_; }
  uint64_t n_items() const { return n_items_; }
  uint64_t SizeBits() const { return bf_.SizeBits(); }
  const BloomFilter& bloom() const { return bf_; }

  static constexpr uint64_t kDefaultProbeLimit = uint64_t{1} << 26;

  /// Serialization: prefix length + item count + the Bloom filter.
  void AppendTo(std::string* out) const;
  static bool ParseFrom(std::string_view* in, PrefixBloom* out);

 private:
  BloomFilter bf_;
  uint32_t prefix_len_ = 0;
  uint64_t n_items_ = 0;
};

class StrPrefixBloom {
 public:
  StrPrefixBloom() = default;

  StrPrefixBloom(const std::vector<std::string>& sorted_keys, uint64_t n_bits,
                 uint32_t prefix_len, bool blocked = false);

  /// Probes one prefix given as a padded ceil(l/8)-byte buffer (the output
  /// format of StrPrefix / StrPrefixBytes).
  bool ProbePrefix(std::string_view padded_prefix) const;

  /// See PrefixBloom::PrefetchPrefix.
  void PrefetchPrefix(std::string_view padded_prefix) const;

  /// Probes every prefix from `first` through `last` (both padded
  /// ceil(l/8)-byte values, first <= last) in successor order, hashing and
  /// prefetching one prefix ahead; true on the first positive.
  bool ProbeRange(std::string_view first, std::string_view last) const;

  bool MayContain(std::string_view lo, std::string_view hi,
                  uint64_t probe_limit = kDefaultProbeLimit) const;

  uint32_t prefix_len() const { return prefix_len_; }
  uint64_t n_items() const { return n_items_; }
  uint64_t SizeBits() const { return bf_.SizeBits(); }
  const BloomFilter& bloom() const { return bf_; }

  static constexpr uint64_t kDefaultProbeLimit = uint64_t{1} << 22;

  void AppendTo(std::string* out) const;
  static bool ParseFrom(std::string_view* in, StrPrefixBloom* out);

 private:
  BloomFilter bf_;
  uint32_t prefix_len_ = 0;
  uint64_t n_items_ = 0;
};

/// Number of unique `l`-bit prefixes among sorted integer keys — |K_l| in
/// the paper's notation. O(n) via successive LCPs.
uint64_t CountUniquePrefixes(const std::vector<uint64_t>& sorted_keys,
                             uint32_t l);

/// |K_l| for every l in [0, 64] at once (index l of the result).
std::vector<uint64_t> CountUniquePrefixesAll(
    const std::vector<uint64_t>& sorted_keys);

/// |K_l| for every l in [0, max_bits] over sorted string keys.
std::vector<uint64_t> StrCountUniquePrefixesAll(
    const std::vector<std::string>& sorted_keys, uint32_t max_bits);

}  // namespace proteus

#endif  // PROTEUS_BLOOM_PREFIX_BLOOM_H_
