#include "bloom/prefix_bloom.h"

#include <algorithm>

#include "util/serial.h"

namespace proteus {

namespace {
// Salts so that prefixes of different lengths never collide when multiple
// prefix Bloom filters share hashing code.
constexpr uint64_t kSeed1 = 0x71AFD7ED558CCD5Dull;
constexpr uint64_t kSeed2 = 0xEB382D699DDFEA08ull;

inline uint64_t SaltedLen(uint64_t seed, uint32_t l) {
  return seed ^ (uint64_t{l} * 0x9E3779B97F4A7C15ull);
}
}  // namespace

PrefixBloom::PrefixBloom(const std::vector<uint64_t>& sorted_keys,
                         uint64_t n_bits, uint32_t prefix_len, bool blocked)
    : prefix_len_(prefix_len) {
  n_items_ = CountUniquePrefixes(sorted_keys, prefix_len);
  bf_ = BloomFilter(n_bits, BloomFilter::OptimalHashes(n_bits, n_items_),
                    blocked);
  uint64_t prev = 0;
  bool first = true;
  for (uint64_t key : sorted_keys) {
    uint64_t p = PrefixBits64(key, prefix_len);
    if (first || p != prev) {
      bf_.InsertHash(Murmur3Int64(p, SaltedLen(kSeed1, prefix_len_)),
                     Murmur3Int64(p, SaltedLen(kSeed2, prefix_len_)));
      prev = p;
      first = false;
    }
  }
}

bool PrefixBloom::ProbePrefix(uint64_t prefix_value) const {
  return bf_.MayContainHash(
      Murmur3Int64(prefix_value, SaltedLen(kSeed1, prefix_len_)),
      Murmur3Int64(prefix_value, SaltedLen(kSeed2, prefix_len_)));
}

void PrefixBloom::PrefetchPrefix(uint64_t prefix_value) const {
  bf_.PrefetchHash(Murmur3Int64(prefix_value, SaltedLen(kSeed1, prefix_len_)));
}

void PrefixBloom::HashPrefix(uint64_t prefix_value, uint64_t* h1,
                             uint64_t* h2) const {
  *h1 = Murmur3Int64(prefix_value, SaltedLen(kSeed1, prefix_len_));
  *h2 = Murmur3Int64(prefix_value, SaltedLen(kSeed2, prefix_len_));
}

void PrefixBloom::MultiProbePrefix(const uint64_t* prefix_values, size_t n,
                                   uint8_t* out) const {
  const uint64_t s1 = SaltedLen(kSeed1, prefix_len_);
  const uint64_t s2 = SaltedLen(kSeed2, prefix_len_);
  constexpr size_t kChunk = 64;
  uint64_t h1[kChunk], h2[kChunk];
  for (size_t i = 0; i < n; i += kChunk) {
    const size_t m = std::min(n - i, kChunk);
    for (size_t j = 0; j < m; ++j) {
      h1[j] = Murmur3Int64(prefix_values[i + j], s1);
      h2[j] = Murmur3Int64(prefix_values[i + j], s2);
    }
    bf_.MultiContainHash(h1, h2, m, out + i);
  }
}

bool PrefixBloom::ProbeRange(uint64_t first, uint64_t last) const {
  const uint64_t s1 = SaltedLen(kSeed1, prefix_len_);
  const uint64_t s2 = SaltedLen(kSeed2, prefix_len_);
  // Dense walks batch consecutive prefixes through the multi-query
  // kernel, short-circuiting at chunk granularity; `last - first` (not
  // the +1 count) so a full-domain range cannot wrap the comparison.
  if (last - first >= 15) {
    constexpr size_t kChunk = 64;
    uint64_t h1[kChunk], h2[kChunk];
    uint8_t res[kChunk];
    for (uint64_t p = first;;) {
      const uint64_t remaining = last - p;  // prefixes after p
      const size_t m =
          remaining >= kChunk - 1 ? kChunk : static_cast<size_t>(remaining) + 1;
      for (size_t j = 0; j < m; ++j) {
        h1[j] = Murmur3Int64(p + j, s1);
        h2[j] = Murmur3Int64(p + j, s2);
      }
      bf_.MultiContainHash(h1, h2, m, res);
      for (size_t j = 0; j < m; ++j) {
        if (res[j] != 0) return true;
      }
      if (remaining < kChunk) return false;
      p += kChunk;
    }
  }
  // Short walks keep the software pipeline: while probe p resolves, hash
  // p + 1 and pull its cache line in.
  uint64_t h1 = Murmur3Int64(first, s1);
  uint64_t h2 = Murmur3Int64(first, s2);
  bf_.PrefetchHash(h1);
  for (uint64_t p = first;; ++p) {
    uint64_t nh1 = 0, nh2 = 0;
    if (p != last) {
      nh1 = Murmur3Int64(p + 1, s1);
      nh2 = Murmur3Int64(p + 1, s2);
      bf_.PrefetchHash(nh1);
    }
    if (bf_.MayContainHash(h1, h2)) return true;
    if (p == last) return false;
    h1 = nh1;
    h2 = nh2;
  }
}

bool PrefixBloom::MayContain(uint64_t lo, uint64_t hi,
                             uint64_t probe_limit) const {
  uint64_t first = PrefixBits64(lo, prefix_len_);
  uint64_t last = PrefixBits64(hi, prefix_len_);
  // Phrased without the +1 so a full-domain range (count 2^64, which
  // wraps to 0) still trips the limit instead of walking forever.
  if (last - first >= probe_limit) return true;
  return ProbeRange(first, last);
}

void PrefixBloom::MultiMayContain(const uint64_t* lo, const uint64_t* hi,
                                  size_t n, uint8_t* out) const {
  constexpr size_t kChunk = 256;
  uint64_t vals[kChunk];
  uint32_t owner[kChunk];
  uint8_t res[kChunk];
  size_t m = 0;
  auto flush = [&] {
    MultiProbePrefix(vals, m, res);
    for (size_t j = 0; j < m; ++j) out[owner[j]] |= res[j];
    m = 0;
  };
  for (size_t i = 0; i < n; ++i) {
    const uint64_t first = PrefixBits64(lo[i], prefix_len_);
    const uint64_t last = PrefixBits64(hi[i], prefix_len_);
    if (last - first >= kFlattenLimit) {
      out[i] = MayContain(lo[i], hi[i]) ? 1 : 0;
      continue;
    }
    out[i] = 0;
    for (uint64_t p = first;; ++p) {
      vals[m] = p;
      owner[m] = static_cast<uint32_t>(i);
      if (++m == kChunk) flush();
      if (p == last) break;
    }
  }
  if (m > 0) flush();
}

StrPrefixBloom::StrPrefixBloom(const std::vector<std::string>& sorted_keys,
                               uint64_t n_bits, uint32_t prefix_len,
                               bool blocked)
    : prefix_len_(prefix_len) {
  // Count unique prefixes first (keys are sorted, so equal prefixes are
  // adjacent), then insert.
  std::string prev;
  bool first = true;
  n_items_ = 0;
  for (const std::string& key : sorted_keys) {
    std::string p = StrPrefix(key, prefix_len);
    if (first || p != prev) {
      ++n_items_;
      prev = std::move(p);
      first = false;
    }
  }
  bf_ = BloomFilter(n_bits, BloomFilter::OptimalHashes(n_bits, n_items_),
                    blocked);
  first = true;
  prev.clear();
  for (const std::string& key : sorted_keys) {
    std::string p = StrPrefix(key, prefix_len);
    if (first || p != prev) {
      bf_.InsertHash(ClHash64(p, SaltedLen(kSeed1, prefix_len_)),
                     ClHash64(p, SaltedLen(kSeed2, prefix_len_)));
      prev = std::move(p);
      first = false;
    }
  }
}

bool StrPrefixBloom::ProbePrefix(std::string_view padded_prefix) const {
  return bf_.MayContainHash(
      ClHash64(padded_prefix, SaltedLen(kSeed1, prefix_len_)),
      ClHash64(padded_prefix, SaltedLen(kSeed2, prefix_len_)));
}

void StrPrefixBloom::PrefetchPrefix(std::string_view padded_prefix) const {
  bf_.PrefetchHash(ClHash64(padded_prefix, SaltedLen(kSeed1, prefix_len_)));
}

bool StrPrefixBloom::ProbeRange(std::string_view first,
                                std::string_view last) const {
  const uint64_t s1 = SaltedLen(kSeed1, prefix_len_);
  const uint64_t s2 = SaltedLen(kSeed2, prefix_len_);
  std::string cur(first);
  std::string next;
  uint64_t h1 = ClHash64(cur, s1);
  uint64_t h2 = ClHash64(cur, s2);
  bf_.PrefetchHash(h1);
  // Most walks resolve within a handful of prefixes; pipeline those one
  // ahead as before, and only a walk that survives kScalarProbes falls
  // through to chunked multi-query probes below.
  constexpr int kScalarProbes = 8;
  for (int probes = 0; probes < kScalarProbes; ++probes) {
    const bool at_last = cur == last;
    uint64_t nh1 = 0, nh2 = 0;
    bool have_next = false;
    if (!at_last) {
      next = cur;
      have_next = StrPrefixIncrement(&next, prefix_len_);
      if (have_next) {
        nh1 = ClHash64(next, s1);
        nh2 = ClHash64(next, s2);
        bf_.PrefetchHash(nh1);
      }
    }
    if (bf_.MayContainHash(h1, h2)) return true;
    if (at_last || !have_next) return false;
    cur.swap(next);
    h1 = nh1;
    h2 = nh2;
  }
  // Long walk: hash successors in chunks and resolve each chunk through
  // the multi-query kernel, short-circuiting at chunk granularity.
  constexpr size_t kChunk = 32;
  uint64_t h1v[kChunk], h2v[kChunk];
  uint8_t res[kChunk];
  for (;;) {
    size_t m = 0;
    bool at_end = false;
    while (m < kChunk) {
      h1v[m] = ClHash64(cur, s1);
      h2v[m] = ClHash64(cur, s2);
      ++m;
      if (cur == last || !StrPrefixIncrement(&cur, prefix_len_)) {
        at_end = true;
        break;
      }
    }
    bf_.MultiContainHash(h1v, h2v, m, res);
    for (size_t j = 0; j < m; ++j) {
      if (res[j] != 0) return true;
    }
    if (at_end) return false;
  }
}

bool StrPrefixBloom::MayContain(std::string_view lo, std::string_view hi,
                                uint64_t probe_limit) const {
  uint64_t count = StrPrefixCountInRange(lo, hi, prefix_len_);
  if (count > probe_limit) return true;
  std::string p = StrPrefix(lo, prefix_len_);
  std::string last = StrPrefix(hi, prefix_len_);
  return ProbeRange(p, last);
}

uint64_t CountUniquePrefixes(const std::vector<uint64_t>& sorted_keys,
                             uint32_t l) {
  if (sorted_keys.empty() || l == 0) return sorted_keys.empty() ? 0 : 1;
  uint64_t count = 1;
  for (size_t i = 1; i < sorted_keys.size(); ++i) {
    if (PrefixBits64(sorted_keys[i], l) !=
        PrefixBits64(sorted_keys[i - 1], l)) {
      ++count;
    }
  }
  return count;
}

std::vector<uint64_t> CountUniquePrefixesAll(
    const std::vector<uint64_t>& sorted_keys) {
  std::vector<uint64_t> counts(65, 0);
  if (sorted_keys.empty()) return counts;
  // A key contributes a new l-prefix exactly when l > lcp(prev, key); so
  // |K_l| = 1 + #{i : lcp(k_{i-1}, k_i) < l}. Histogram the LCPs and prefix-
  // sum (Section 4.3, "Count Key Prefixes").
  std::vector<uint64_t> lcp_hist(65, 0);
  for (size_t i = 1; i < sorted_keys.size(); ++i) {
    lcp_hist[LcpBits64(sorted_keys[i - 1], sorted_keys[i])]++;
  }
  uint64_t below = 0;  // #{i : lcp < l}
  for (uint32_t l = 0; l <= 64; ++l) {
    counts[l] = 1 + below;
    if (l < 64) below += lcp_hist[l];
  }
  counts[0] = 1;
  return counts;
}

std::vector<uint64_t> StrCountUniquePrefixesAll(
    const std::vector<std::string>& sorted_keys, uint32_t max_bits) {
  std::vector<uint64_t> counts(max_bits + 1, 0);
  if (sorted_keys.empty()) return counts;
  std::vector<uint64_t> lcp_hist(max_bits + 1, 0);
  for (size_t i = 1; i < sorted_keys.size(); ++i) {
    uint64_t lcp = StrLcpBits(sorted_keys[i - 1], sorted_keys[i], max_bits);
    lcp_hist[lcp]++;
  }
  uint64_t below = 0;
  for (uint32_t l = 0; l <= max_bits; ++l) {
    counts[l] = 1 + below;
    if (l < max_bits) below += lcp_hist[l];
  }
  counts[0] = 1;
  return counts;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

void PrefixBloom::AppendTo(std::string* out) const {
  PutFixed32(out, prefix_len_);
  PutFixed64(out, n_items_);
  bf_.AppendTo(out);
}

bool PrefixBloom::ParseFrom(std::string_view* in, PrefixBloom* out) {
  return GetFixed32(in, &out->prefix_len_) && GetFixed64(in, &out->n_items_) &&
         BloomFilter::ParseFrom(in, &out->bf_);
}

void StrPrefixBloom::AppendTo(std::string* out) const {
  PutFixed32(out, prefix_len_);
  PutFixed64(out, n_items_);
  bf_.AppendTo(out);
}

bool StrPrefixBloom::ParseFrom(std::string_view* in, StrPrefixBloom* out) {
  return GetFixed32(in, &out->prefix_len_) && GetFixed64(in, &out->n_items_) &&
         BloomFilter::ParseFrom(in, &out->bf_);
}

}  // namespace proteus
