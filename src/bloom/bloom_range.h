// Full-key Bloom filters lifted into the range-filter interface: the
// paper's point-filtering baseline (a plain Bloom filter cannot rule out
// any range wider than a point, so MayContain(lo, hi) with lo != hi is
// always positive). Previously this existed only as an ad-hoc SstFilter
// inside the LSM filter policies; as first-class RangeFilter /
// StrRangeFilter implementations it participates in the registry, spec
// strings, and serialization like every other family.

#ifndef PROTEUS_BLOOM_BLOOM_RANGE_H_
#define PROTEUS_BLOOM_BLOOM_RANGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bloom/bloom_filter.h"
#include "core/filter_spec.h"
#include "core/range_filter.h"

namespace proteus {

class FilterBuilder;
class StrFilterBuilder;

/// Point-only Bloom filter over 64-bit integer keys.
class BloomIntFilter : public RangeFilter {
 public:
  static constexpr uint32_t kFamilyId = 8;

  static std::unique_ptr<BloomIntFilter> Build(
      const std::vector<uint64_t>& keys, double bits_per_key,
      bool blocked = true);
  static std::unique_ptr<BloomIntFilter> BuildFromSpec(const FilterSpec& spec,
                                                       FilterBuilder& builder,
                                                       std::string* error);

  bool MayContain(uint64_t lo, uint64_t hi) const override {
    if (lo != hi) return true;  // point filter: cannot rule out ranges
    return bf_.MayContainInt(lo);
  }
  /// Batched point probes: point queries' hashes are compacted into
  /// stack chunks and resolved through BloomFilter::MultiContainHash
  /// (AVX2 multi-query gathers on blocked filters).
  void MultiMayContain(const uint64_t* lo, const uint64_t* hi, size_t n,
                       uint8_t* out) const override;
  uint64_t SizeBits() const override { return bf_.SizeBits(); }
  std::string Name() const override { return "Bloom"; }

  uint32_t FamilyId() const override { return kFamilyId; }
  void SerializePayload(std::string* out) const override;
  static std::unique_ptr<BloomIntFilter> DeserializePayload(
      std::string_view* in);

 private:
  BloomFilter bf_;
};

/// Point-only Bloom filter over raw byte-string keys.
class BloomStrFilter : public StrRangeFilter {
 public:
  static constexpr uint32_t kFamilyId = 9;

  static std::unique_ptr<BloomStrFilter> Build(
      const std::vector<std::string>& keys, double bits_per_key,
      bool blocked = true);
  static std::unique_ptr<BloomStrFilter> BuildFromSpec(
      const FilterSpec& spec, StrFilterBuilder& builder, std::string* error);

  bool MayContain(std::string_view lo, std::string_view hi) const override {
    if (lo != hi) return true;
    return bf_.MayContainBytes(lo);
  }
  /// See BloomIntFilter::MultiMayContain.
  void MultiMayContain(const std::string_view* lo, const std::string_view* hi,
                       size_t n, uint8_t* out) const override;
  uint64_t SizeBits() const override { return bf_.SizeBits(); }
  std::string Name() const override { return "Bloom-str"; }

  uint32_t FamilyId() const override { return kFamilyId; }
  void SerializePayload(std::string* out) const override;
  static std::unique_ptr<BloomStrFilter> DeserializePayload(
      std::string_view* in);

 private:
  BloomFilter bf_;
};

}  // namespace proteus

#endif  // PROTEUS_BLOOM_BLOOM_RANGE_H_
