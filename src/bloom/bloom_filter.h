// A standard Bloom filter (Bloom 1970), the probabilistic building block
// of 1PBF, 2PBF, Proteus, and Rosetta.
//
// Hashing follows the paper's setup (Section 4.3): MurmurHash3 for integer
// keys, CLHASH-style hashing for strings, with k = ceil(m/n * ln 2) hash
// functions capped at 32 (footnote 2). Probes use Kirsch–Mitzenmacher
// double hashing, which preserves the asymptotic FPR of Eq. 6.
//
// Two probe layouts share the class:
//  * standard — each of the k probes addresses the whole bit array: the
//    textbook FPR, but k random cache lines per query.
//  * blocked (Putze et al., register-blocked at cache-line granularity) —
//    h1 picks one 512-bit block and all k probes stay inside it: one
//    memory access per query, paid for with a slightly higher FPR because
//    block loads are uneven (TheoreticalFprBlocked quantifies it).
// The layout is chosen at construction and serialized: unblocked filters
// keep the original wire format bit-for-bit, blocked filters stamp a
// format version into the header's high bits so legacy blobs still parse.

#ifndef PROTEUS_BLOOM_BLOOM_FILTER_H_
#define PROTEUS_BLOOM_BLOOM_FILTER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hash/clhash.h"
#include "hash/murmur3.h"

namespace proteus {

/// Which Bloom probe layout a filter (or an FPR model) assumes.
enum class BloomProbeMode : uint32_t {
  kStandard = 0,  // k probes spread over the whole array
  kBlocked = 1,   // k probes confined to one 512-bit block
};

class BloomFilter {
 public:
  /// Maximum number of hash functions (paper footnote 2).
  static constexpr uint32_t kMaxHashes = 32;
  /// Cache-line block width for the blocked layout.
  static constexpr uint64_t kBlockBits = 512;

  BloomFilter() = default;

  /// A filter of `n_bits` bits using `n_hashes` hash functions. Blocked
  /// filters round n_bits up to a whole number of 512-bit blocks.
  BloomFilter(uint64_t n_bits, uint32_t n_hashes, bool blocked = false);

  /// k = ceil(m/n * ln 2), clamped to [1, kMaxHashes].
  static uint32_t OptimalHashes(uint64_t m_bits, uint64_t n_items);

  /// Theoretical FPR of Eq. 6: (1 - e^{-ln 2})^k with k as above.
  static double TheoreticalFpr(uint64_t m_bits, uint64_t n_items);

  /// Theoretical FPR of the blocked layout: the Eq. 6 form evaluated per
  /// block and averaged over the Poisson-distributed block load
  /// (Putze, Sanders & Singler 2007).
  static double TheoreticalFprBlocked(uint64_t m_bits, uint64_t n_items);

  /// Eq. 6 under the given probe layout.
  static double TheoreticalFpr(uint64_t m_bits, uint64_t n_items,
                               BloomProbeMode mode) {
    return mode == BloomProbeMode::kBlocked
               ? TheoreticalFprBlocked(m_bits, n_items)
               : TheoreticalFpr(m_bits, n_items);
  }

  // --- Generic probe API over a pre-hashed (h1, h2) pair. ---
  void InsertHash(uint64_t h1, uint64_t h2);
  bool MayContainHash(uint64_t h1, uint64_t h2) const;

  /// Batch probe: out[i] = MayContainHash(h1[i], h2[i]) != 0 for i < n.
  /// Blocked filters dispatch to an AVX2 gather kernel that resolves 8
  /// queries per instruction stream (see util/simd.h for the switchery);
  /// the standard layout and non-AVX2 machines take a pipelined scalar
  /// loop that prefetches one query ahead. Both paths return identical
  /// bits for identical inputs.
  void MultiContainHash(const uint64_t* h1, const uint64_t* h2, size_t n,
                        uint8_t* out) const;

  /// Issues a prefetch for the cache line the probe for h1 will touch
  /// first. Cheap enough to call speculatively one probe ahead.
  void PrefetchHash(uint64_t h1) const {
    if (words_.empty()) return;
    if (blocked_) {
      __builtin_prefetch(words_.data() + BlockIndex(h1) * 8);
    } else {
      // First probe's line only; later probes are data-dependent anyway.
      __builtin_prefetch(words_.data() + ((h1 % n_bits_) >> 6));
    }
  }

  // --- Integer items (hashed with MurmurHash3). ---
  /// The (h1, h2) pair InsertInt/MayContainInt probe with — exposed so
  /// batch paths can hash one item ahead and PrefetchHash it.
  static void HashInt(uint64_t item, uint64_t* h1, uint64_t* h2) {
    *h1 = Murmur3Int64(item, 0x5D336E36A3C9BF71ull);
    *h2 = Murmur3Int64(item, 0xA5A9FFDE6D3D34C1ull);
  }
  void InsertInt(uint64_t item) {
    uint64_t h1, h2;
    HashInt(item, &h1, &h2);
    InsertHash(h1, h2);
  }
  bool MayContainInt(uint64_t item) const {
    uint64_t h1, h2;
    HashInt(item, &h1, &h2);
    return MayContainHash(h1, h2);
  }

  // --- Byte-string items (hashed with the CLHASH-style hash). ---
  static void HashBytes(std::string_view s, uint64_t* h1, uint64_t* h2) {
    *h1 = ClHash64(s, 0x5D336E36A3C9BF71ull);
    *h2 = ClHash64(s, 0xA5A9FFDE6D3D34C1ull);
  }
  void InsertBytes(std::string_view s) {
    uint64_t h1, h2;
    HashBytes(s, &h1, &h2);
    InsertHash(h1, h2);
  }
  bool MayContainBytes(std::string_view s) const {
    uint64_t h1, h2;
    HashBytes(s, &h1, &h2);
    return MayContainHash(h1, h2);
  }

  uint64_t n_bits() const { return n_bits_; }
  uint32_t n_hashes() const { return n_hashes_; }
  bool blocked() const { return blocked_; }
  bool empty() const { return n_bits_ == 0; }

  /// Total memory in bits (bit array; metadata is O(1)).
  uint64_t SizeBits() const { return words_.size() * 64; }

  /// Serialization for SST filter blocks. Unblocked filters emit the
  /// legacy format unchanged; blocked filters stamp kBlockedFormat into
  /// the unused high half of the hash-count header word.
  void AppendTo(std::string* out) const;
  static bool ParseFrom(std::string_view* in, BloomFilter* out);

 private:
  /// Wire-format tag in the high 32 bits of header word 1. Legacy blobs
  /// (n_hashes <= 32 stored as a u64) always read 0 there.
  static constexpr uint32_t kBlockedFormat = 1;

  uint64_t BitIndex(uint64_t h1, uint64_t h2, uint32_t i) const {
    return (h1 + i * h2) % n_bits_;
  }
  /// Multiply-shift range reduction of h1 onto [0, n_blocks).
  uint64_t BlockIndex(uint64_t h1) const {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(h1) * (words_.size() / 8)) >> 64);
  }

  uint64_t n_bits_ = 0;
  uint32_t n_hashes_ = 0;
  bool blocked_ = false;
  std::vector<uint64_t> words_;
};

}  // namespace proteus

#endif  // PROTEUS_BLOOM_BLOOM_FILTER_H_
