// A standard Bloom filter (Bloom 1970), the probabilistic building block
// of 1PBF, 2PBF, Proteus, and Rosetta.
//
// Hashing follows the paper's setup (Section 4.3): MurmurHash3 for integer
// keys, CLHASH-style hashing for strings, with k = ceil(m/n * ln 2) hash
// functions capped at 32 (footnote 2). Probes use Kirsch–Mitzenmacher
// double hashing, which preserves the asymptotic FPR of Eq. 6.

#ifndef PROTEUS_BLOOM_BLOOM_FILTER_H_
#define PROTEUS_BLOOM_BLOOM_FILTER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hash/clhash.h"
#include "hash/murmur3.h"

namespace proteus {

class BloomFilter {
 public:
  /// Maximum number of hash functions (paper footnote 2).
  static constexpr uint32_t kMaxHashes = 32;

  BloomFilter() = default;

  /// A filter of `n_bits` bits using `n_hashes` hash functions.
  BloomFilter(uint64_t n_bits, uint32_t n_hashes);

  /// k = ceil(m/n * ln 2), clamped to [1, kMaxHashes].
  static uint32_t OptimalHashes(uint64_t m_bits, uint64_t n_items);

  /// Theoretical FPR of Eq. 6: (1 - e^{-ln 2})^k with k as above.
  static double TheoreticalFpr(uint64_t m_bits, uint64_t n_items);

  // --- Generic probe API over a pre-hashed (h1, h2) pair. ---
  void InsertHash(uint64_t h1, uint64_t h2);
  bool MayContainHash(uint64_t h1, uint64_t h2) const;

  // --- Integer items (hashed with MurmurHash3). ---
  void InsertInt(uint64_t item) {
    InsertHash(Murmur3Int64(item, 0x5D336E36A3C9BF71ull),
               Murmur3Int64(item, 0xA5A9FFDE6D3D34C1ull));
  }
  bool MayContainInt(uint64_t item) const {
    return MayContainHash(Murmur3Int64(item, 0x5D336E36A3C9BF71ull),
                          Murmur3Int64(item, 0xA5A9FFDE6D3D34C1ull));
  }

  // --- Byte-string items (hashed with the CLHASH-style hash). ---
  void InsertBytes(std::string_view s) {
    InsertHash(ClHash64(s, 0x5D336E36A3C9BF71ull),
               ClHash64(s, 0xA5A9FFDE6D3D34C1ull));
  }
  bool MayContainBytes(std::string_view s) const {
    return MayContainHash(ClHash64(s, 0x5D336E36A3C9BF71ull),
                          ClHash64(s, 0xA5A9FFDE6D3D34C1ull));
  }

  uint64_t n_bits() const { return n_bits_; }
  uint32_t n_hashes() const { return n_hashes_; }
  bool empty() const { return n_bits_ == 0; }

  /// Total memory in bits (bit array; metadata is O(1)).
  uint64_t SizeBits() const { return words_.size() * 64; }

  /// Serialization for SST filter blocks.
  void AppendTo(std::string* out) const;
  static bool ParseFrom(std::string_view* in, BloomFilter* out);

 private:
  uint64_t BitIndex(uint64_t h1, uint64_t h2, uint32_t i) const {
    return (h1 + i * h2) % n_bits_;
  }

  uint64_t n_bits_ = 0;
  uint32_t n_hashes_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace proteus

#endif  // PROTEUS_BLOOM_BLOOM_FILTER_H_
