#include "bloom/bloom_range.h"

#include "core/filter_builder.h"

namespace proteus {
namespace {

/// Shared "bpk" parameter handling for both key kinds.
bool ParseBpk(const FilterSpec& spec, double* bpk, std::string* error) {
  if (!spec.ExpectKeys({"bpk"}, error)) return false;
  if (!spec.GetDouble("bpk", 12.0, bpk, error)) return false;
  if (*bpk <= 0.0) {
    if (error != nullptr) *error = "bloom bpk must be positive";
    return false;
  }
  return true;
}

BloomFilter MakeBloom(uint64_t n_keys, double bits_per_key) {
  uint64_t bits = static_cast<uint64_t>(bits_per_key *
                                        static_cast<double>(n_keys));
  return BloomFilter(bits, BloomFilter::OptimalHashes(bits, n_keys));
}

}  // namespace

std::unique_ptr<BloomIntFilter> BloomIntFilter::Build(
    const std::vector<uint64_t>& keys, double bits_per_key) {
  auto filter = std::make_unique<BloomIntFilter>();
  filter->bf_ = MakeBloom(keys.size(), bits_per_key);
  for (uint64_t k : keys) filter->bf_.InsertInt(k);
  return filter;
}

std::unique_ptr<BloomIntFilter> BloomIntFilter::BuildFromSpec(
    const FilterSpec& spec, FilterBuilder& builder, std::string* error) {
  double bpk;
  if (!ParseBpk(spec, &bpk, error)) return nullptr;
  return Build(builder.keys(), bpk);
}

void BloomIntFilter::SerializePayload(std::string* out) const {
  bf_.AppendTo(out);
}

std::unique_ptr<BloomIntFilter> BloomIntFilter::DeserializePayload(
    std::string_view* in) {
  auto filter = std::make_unique<BloomIntFilter>();
  if (!BloomFilter::ParseFrom(in, &filter->bf_)) return nullptr;
  return filter;
}

std::unique_ptr<BloomStrFilter> BloomStrFilter::Build(
    const std::vector<std::string>& keys, double bits_per_key) {
  auto filter = std::make_unique<BloomStrFilter>();
  filter->bf_ = MakeBloom(keys.size(), bits_per_key);
  for (const std::string& k : keys) filter->bf_.InsertBytes(k);
  return filter;
}

std::unique_ptr<BloomStrFilter> BloomStrFilter::BuildFromSpec(
    const FilterSpec& spec, StrFilterBuilder& builder, std::string* error) {
  double bpk;
  if (!ParseBpk(spec, &bpk, error)) return nullptr;
  return Build(builder.keys(), bpk);
}

void BloomStrFilter::SerializePayload(std::string* out) const {
  bf_.AppendTo(out);
}

std::unique_ptr<BloomStrFilter> BloomStrFilter::DeserializePayload(
    std::string_view* in) {
  auto filter = std::make_unique<BloomStrFilter>();
  if (!BloomFilter::ParseFrom(in, &filter->bf_)) return nullptr;
  return filter;
}

}  // namespace proteus
