#include "bloom/bloom_range.h"

#include "core/filter_builder.h"

namespace proteus {
namespace {

/// Shared "bpk" parameter handling for both key kinds.
bool ParseBpk(const FilterSpec& spec, double* bpk, std::string* error) {
  if (!spec.ExpectKeys({"bpk"}, error)) return false;
  if (!spec.GetDouble("bpk", 12.0, bpk, error)) return false;
  if (*bpk <= 0.0) {
    if (error != nullptr) *error = "bloom bpk must be positive";
    return false;
  }
  return true;
}

BloomFilter MakeBloom(uint64_t n_keys, double bits_per_key) {
  uint64_t bits = static_cast<uint64_t>(bits_per_key *
                                        static_cast<double>(n_keys));
  return BloomFilter(bits, BloomFilter::OptimalHashes(bits, n_keys));
}

}  // namespace

std::unique_ptr<BloomIntFilter> BloomIntFilter::Build(
    const std::vector<uint64_t>& keys, double bits_per_key) {
  auto filter = std::make_unique<BloomIntFilter>();
  filter->bf_ = MakeBloom(keys.size(), bits_per_key);
  for (uint64_t k : keys) filter->bf_.InsertInt(k);
  return filter;
}

std::unique_ptr<BloomIntFilter> BloomIntFilter::BuildFromSpec(
    const FilterSpec& spec, FilterBuilder& builder, std::string* error) {
  double bpk;
  if (!ParseBpk(spec, &bpk, error)) return nullptr;
  return Build(builder.keys(), bpk);
}

void BloomIntFilter::MultiMayContain(const uint64_t* lo, const uint64_t* hi,
                                     size_t n, uint8_t* out) const {
  // Depth-1 software pipeline over the point queries: while probe i
  // resolves, the next point query's (h1, h2) is computed and its cache
  // line pulled in. Non-point queries answer true without touching the
  // filter (and without disturbing the pipeline).
  auto hash_next = [&](size_t from, uint64_t* h1, uint64_t* h2) -> size_t {
    for (size_t j = from; j < n; ++j) {
      if (lo[j] != hi[j]) {
        out[j] = 1;
        continue;
      }
      BloomFilter::HashInt(lo[j], h1, h2);
      bf_.PrefetchHash(*h1);
      return j;
    }
    return n;
  };
  uint64_t h1 = 0, h2 = 0;
  size_t i = hash_next(0, &h1, &h2);
  while (i < n) {
    const uint64_t cur1 = h1, cur2 = h2;
    const size_t cur = i;
    i = hash_next(i + 1, &h1, &h2);
    out[cur] = bf_.MayContainHash(cur1, cur2) ? 1 : 0;
  }
}

void BloomIntFilter::SerializePayload(std::string* out) const {
  bf_.AppendTo(out);
}

std::unique_ptr<BloomIntFilter> BloomIntFilter::DeserializePayload(
    std::string_view* in) {
  auto filter = std::make_unique<BloomIntFilter>();
  if (!BloomFilter::ParseFrom(in, &filter->bf_)) return nullptr;
  return filter;
}

std::unique_ptr<BloomStrFilter> BloomStrFilter::Build(
    const std::vector<std::string>& keys, double bits_per_key) {
  auto filter = std::make_unique<BloomStrFilter>();
  filter->bf_ = MakeBloom(keys.size(), bits_per_key);
  for (const std::string& k : keys) filter->bf_.InsertBytes(k);
  return filter;
}

std::unique_ptr<BloomStrFilter> BloomStrFilter::BuildFromSpec(
    const FilterSpec& spec, StrFilterBuilder& builder, std::string* error) {
  double bpk;
  if (!ParseBpk(spec, &bpk, error)) return nullptr;
  return Build(builder.keys(), bpk);
}

void BloomStrFilter::MultiMayContain(const std::string_view* lo,
                                     const std::string_view* hi, size_t n,
                                     uint8_t* out) const {
  // Same pipeline as BloomIntFilter::MultiMayContain, over byte strings.
  auto hash_next = [&](size_t from, uint64_t* h1, uint64_t* h2) -> size_t {
    for (size_t j = from; j < n; ++j) {
      if (lo[j] != hi[j]) {
        out[j] = 1;
        continue;
      }
      BloomFilter::HashBytes(lo[j], h1, h2);
      bf_.PrefetchHash(*h1);
      return j;
    }
    return n;
  };
  uint64_t h1 = 0, h2 = 0;
  size_t i = hash_next(0, &h1, &h2);
  while (i < n) {
    const uint64_t cur1 = h1, cur2 = h2;
    const size_t cur = i;
    i = hash_next(i + 1, &h1, &h2);
    out[cur] = bf_.MayContainHash(cur1, cur2) ? 1 : 0;
  }
}

void BloomStrFilter::SerializePayload(std::string* out) const {
  bf_.AppendTo(out);
}

std::unique_ptr<BloomStrFilter> BloomStrFilter::DeserializePayload(
    std::string_view* in) {
  auto filter = std::make_unique<BloomStrFilter>();
  if (!BloomFilter::ParseFrom(in, &filter->bf_)) return nullptr;
  return filter;
}

}  // namespace proteus
