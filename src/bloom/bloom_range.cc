#include "bloom/bloom_range.h"

#include "core/filter_builder.h"

namespace proteus {
namespace {

/// Shared "bpk"/"blocked" parameter handling for both key kinds.
bool ParseBpk(const FilterSpec& spec, double* bpk, bool* blocked,
              std::string* error) {
  if (!spec.ExpectKeys({"bpk", "blocked"}, error)) return false;
  if (!spec.GetDouble("bpk", 12.0, bpk, error)) return false;
  if (*bpk <= 0.0) {
    if (error != nullptr) *error = "bloom bpk must be positive";
    return false;
  }
  uint32_t blocked_u32;
  if (!spec.GetUint32("blocked", 1, &blocked_u32, error)) return false;
  if (blocked_u32 > 1) {
    if (error != nullptr) *error = "bloom blocked must be 0 or 1";
    return false;
  }
  *blocked = blocked_u32 != 0;
  return true;
}

BloomFilter MakeBloom(uint64_t n_keys, double bits_per_key, bool blocked) {
  uint64_t bits = static_cast<uint64_t>(bits_per_key *
                                        static_cast<double>(n_keys));
  return BloomFilter(bits, BloomFilter::OptimalHashes(bits, n_keys), blocked);
}

}  // namespace

std::unique_ptr<BloomIntFilter> BloomIntFilter::Build(
    const std::vector<uint64_t>& keys, double bits_per_key, bool blocked) {
  auto filter = std::make_unique<BloomIntFilter>();
  filter->bf_ = MakeBloom(keys.size(), bits_per_key, blocked);
  for (uint64_t k : keys) filter->bf_.InsertInt(k);
  return filter;
}

std::unique_ptr<BloomIntFilter> BloomIntFilter::BuildFromSpec(
    const FilterSpec& spec, FilterBuilder& builder, std::string* error) {
  double bpk;
  bool blocked;
  if (!ParseBpk(spec, &bpk, &blocked, error)) return nullptr;
  return Build(builder.keys(), bpk, blocked);
}

void BloomIntFilter::MultiMayContain(const uint64_t* lo, const uint64_t* hi,
                                     size_t n, uint8_t* out) const {
  // Compact the point queries' hashes into stack chunks and resolve each
  // chunk through the multi-query kernel (AVX2 gathers on blocked
  // filters, the pipelined scalar loop otherwise — see
  // BloomFilter::MultiContainHash). Non-point queries answer true without
  // touching the filter and without occupying a chunk slot.
  constexpr size_t kChunk = 64;
  uint64_t h1[kChunk], h2[kChunk];
  size_t query[kChunk];
  uint8_t res[kChunk];
  size_t m = 0;
  auto flush = [&] {
    bf_.MultiContainHash(h1, h2, m, res);
    for (size_t j = 0; j < m; ++j) out[query[j]] = res[j];
    m = 0;
  };
  for (size_t j = 0; j < n; ++j) {
    if (lo[j] != hi[j]) {
      out[j] = 1;  // point filter: cannot rule out ranges
      continue;
    }
    BloomFilter::HashInt(lo[j], &h1[m], &h2[m]);
    query[m] = j;
    if (++m == kChunk) flush();
  }
  if (m > 0) flush();
}

void BloomIntFilter::SerializePayload(std::string* out) const {
  bf_.AppendTo(out);
}

std::unique_ptr<BloomIntFilter> BloomIntFilter::DeserializePayload(
    std::string_view* in) {
  auto filter = std::make_unique<BloomIntFilter>();
  if (!BloomFilter::ParseFrom(in, &filter->bf_)) return nullptr;
  return filter;
}

std::unique_ptr<BloomStrFilter> BloomStrFilter::Build(
    const std::vector<std::string>& keys, double bits_per_key, bool blocked) {
  auto filter = std::make_unique<BloomStrFilter>();
  filter->bf_ = MakeBloom(keys.size(), bits_per_key, blocked);
  for (const std::string& k : keys) filter->bf_.InsertBytes(k);
  return filter;
}

std::unique_ptr<BloomStrFilter> BloomStrFilter::BuildFromSpec(
    const FilterSpec& spec, StrFilterBuilder& builder, std::string* error) {
  double bpk;
  bool blocked;
  if (!ParseBpk(spec, &bpk, &blocked, error)) return nullptr;
  return Build(builder.keys(), bpk, blocked);
}

void BloomStrFilter::MultiMayContain(const std::string_view* lo,
                                     const std::string_view* hi, size_t n,
                                     uint8_t* out) const {
  // Same chunked batching as BloomIntFilter::MultiMayContain, over byte
  // strings.
  constexpr size_t kChunk = 64;
  uint64_t h1[kChunk], h2[kChunk];
  size_t query[kChunk];
  uint8_t res[kChunk];
  size_t m = 0;
  auto flush = [&] {
    bf_.MultiContainHash(h1, h2, m, res);
    for (size_t j = 0; j < m; ++j) out[query[j]] = res[j];
    m = 0;
  };
  for (size_t j = 0; j < n; ++j) {
    if (lo[j] != hi[j]) {
      out[j] = 1;
      continue;
    }
    BloomFilter::HashBytes(lo[j], &h1[m], &h2[m]);
    query[m] = j;
    if (++m == kChunk) flush();
  }
  if (m > 0) flush();
}

void BloomStrFilter::SerializePayload(std::string* out) const {
  bf_.AppendTo(out);
}

std::unique_ptr<BloomStrFilter> BloomStrFilter::DeserializePayload(
    std::string_view* in) {
  auto filter = std::make_unique<BloomStrFilter>();
  if (!BloomFilter::ParseFrom(in, &filter->bf_)) return nullptr;
  return filter;
}

}  // namespace proteus
