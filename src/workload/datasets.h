// Key-set generators reproducing Section 5's datasets.
//
// Uniform and Normal follow the paper exactly. Books and Facebook are
// synthetic stand-ins for the SOSD datasets (DESIGN.md §1, substitutions):
//   BooksLike    — heavy low-skew (log-normal body): "many more low
//                  popularity scores than high".
//   FacebookLike — dense IDs covering a narrow range with uniformly
//                  distributed gaps.
// All generators are deterministic in (n, seed) and return sorted,
// deduplicated keys.

#ifndef PROTEUS_WORKLOAD_DATASETS_H_
#define PROTEUS_WORKLOAD_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace proteus {

enum class Dataset {
  kUniform,
  kNormal,
  kBooks,
  kFacebook,
};

/// Parses "uniform" / "normal" / "books" / "facebook".
bool ParseDataset(const std::string& name, Dataset* out);
const char* DatasetName(Dataset d);

/// Generates `n` sorted distinct keys from the given distribution.
std::vector<uint64_t> GenerateKeys(Dataset dataset, size_t n, uint64_t seed);

/// Generates `n` sorted distinct keys plus `n_extra` extra values drawn
/// from the same distribution (disjoint from the keys), used as the "Real"
/// workload's query left bounds (Section 5, Workloads).
void GenerateKeysAndQueryPoints(Dataset dataset, size_t n, size_t n_extra,
                                uint64_t seed, std::vector<uint64_t>* keys,
                                std::vector<uint64_t>* query_points);

/// A value payload in the paper's Section 6.2 style: `size` bytes, first
/// half zero, second half pseudo-random (compression ratio ~0.5).
std::string MakeValuePayload(uint64_t key, size_t size);

}  // namespace proteus

#endif  // PROTEUS_WORKLOAD_DATASETS_H_
