// Range-query generators reproducing Section 5's YCSB-E style workloads.
//
// Queries are [left, left + offset] with offset ~ U[2, RMAX] (0 for point
// queries). Left bounds come from one of:
//   Uniform     — uniform over the key space,
//   Correlated  — key + U[1, CORRDEGREE] for a random key,
//   Split       — 50/50 mix of small Correlated and large Uniform queries,
//   Real        — values sampled from the same distribution as the keys.
//
// FPR experiments require *empty* queries (no key inside the range); the
// generators enforce emptiness by rejection sampling with a bounded number
// of attempts, then clamp the right bound below the next key as a last
// resort (kept deterministic; clamp counts are reported for transparency).

#ifndef PROTEUS_WORKLOAD_QUERIES_H_
#define PROTEUS_WORKLOAD_QUERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/query.h"

namespace proteus {

enum class QueryDist {
  kUniform,
  kCorrelated,
  kSplit,
  kReal,
};

bool ParseQueryDist(const std::string& name, QueryDist* out);
const char* QueryDistName(QueryDist d);

struct QuerySpec {
  QueryDist dist = QueryDist::kUniform;
  /// Maximum range size; offsets are drawn from U[2, range_max]. 0 makes
  /// every query a point query (offset 0).
  uint64_t range_max = uint64_t{1} << 10;
  /// Correlation degree: left in [key+1, key+corr_degree] (Correlated /
  /// Split).
  uint64_t corr_degree = uint64_t{1} << 10;
  /// For Split: maximum range of the correlated half (the "small" mode);
  /// the uniform half uses range_max. 0 = point queries for that half.
  uint64_t split_corr_range_max = uint64_t{1} << 5;
  /// Fraction of point queries mixed in (Figure 5's "mixed" column uses
  /// 0.5); the rest are ranges.
  double point_fraction = 0.0;
  /// Require empty queries (for FPR measurement and model samples).
  bool require_empty = true;
};

struct QueryGenStats {
  uint64_t clamped = 0;  // emptiness enforced by clamping the right bound
};

/// Generates `n` queries against the sorted key set. `real_points` supplies
/// left bounds for QueryDist::kReal (ignored otherwise).
std::vector<RangeQuery> GenerateQueries(
    const std::vector<uint64_t>& sorted_keys, const QuerySpec& spec, size_t n,
    uint64_t seed, const std::vector<uint64_t>& real_points = {},
    QueryGenStats* stats = nullptr);

/// True if [lo, hi] contains no key (binary search).
bool RangeIsEmpty(const std::vector<uint64_t>& sorted_keys, uint64_t lo,
                  uint64_t hi);

}  // namespace proteus

#endif  // PROTEUS_WORKLOAD_QUERIES_H_
