#include "workload/queries.h"

#include <algorithm>

#include "util/random.h"

namespace proteus {

bool ParseQueryDist(const std::string& name, QueryDist* out) {
  if (name == "uniform") {
    *out = QueryDist::kUniform;
  } else if (name == "correlated") {
    *out = QueryDist::kCorrelated;
  } else if (name == "split") {
    *out = QueryDist::kSplit;
  } else if (name == "real") {
    *out = QueryDist::kReal;
  } else {
    return false;
  }
  return true;
}

const char* QueryDistName(QueryDist d) {
  switch (d) {
    case QueryDist::kUniform: return "uniform";
    case QueryDist::kCorrelated: return "correlated";
    case QueryDist::kSplit: return "split";
    case QueryDist::kReal: return "real";
  }
  return "?";
}

bool RangeIsEmpty(const std::vector<uint64_t>& sorted_keys, uint64_t lo,
                  uint64_t hi) {
  auto it = std::lower_bound(sorted_keys.begin(), sorted_keys.end(), lo);
  return it == sorted_keys.end() || *it > hi;
}

namespace {

uint64_t DrawOffset(Rng& rng, uint64_t range_max) {
  if (range_max < 2) return 0;  // point query
  return rng.NextInRange(2, range_max);
}

// Draws one candidate query; returns false if the draw is structurally
// impossible (e.g. key at the top of the key space for Correlated).
bool DrawCandidate(const std::vector<uint64_t>& keys, const QuerySpec& spec,
                   const std::vector<uint64_t>& real_points, Rng& rng,
                   RangeQuery* out) {
  QueryDist dist = spec.dist;
  uint64_t range_max = spec.range_max;
  if (dist == QueryDist::kSplit) {
    if (rng.NextBelow(2) == 0) {
      dist = QueryDist::kCorrelated;
      range_max = spec.split_corr_range_max;
    } else {
      dist = QueryDist::kUniform;
    }
  }
  uint64_t offset =
      (spec.point_fraction > 0 && rng.NextDouble() < spec.point_fraction)
          ? 0
          : DrawOffset(rng, range_max);
  uint64_t left = 0;
  switch (dist) {
    case QueryDist::kUniform: {
      uint64_t top = ~uint64_t{0} - (offset + 1);
      left = rng.NextBelow(top);
      break;
    }
    case QueryDist::kCorrelated: {
      uint64_t key = keys[rng.NextBelow(keys.size())];
      uint64_t delta = rng.NextInRange(1, spec.corr_degree);
      if (key > ~uint64_t{0} - delta - offset) return false;
      left = key + delta;
      break;
    }
    case QueryDist::kReal: {
      if (real_points.empty()) return false;
      left = real_points[rng.NextBelow(real_points.size())];
      if (left > ~uint64_t{0} - offset) return false;
      break;
    }
    case QueryDist::kSplit:
      return false;  // unreachable
  }
  out->lo = left;
  out->hi = left + offset;
  return true;
}

}  // namespace

std::vector<RangeQuery> GenerateQueries(
    const std::vector<uint64_t>& sorted_keys, const QuerySpec& spec, size_t n,
    uint64_t seed, const std::vector<uint64_t>& real_points,
    QueryGenStats* stats) {
  Rng rng(seed ^ 0x9E37E7B9u);
  std::vector<RangeQuery> out;
  out.reserve(n);
  constexpr int kMaxAttempts = 64;
  while (out.size() < n) {
    RangeQuery q;
    bool ok = false;
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      if (!DrawCandidate(sorted_keys, spec, real_points, rng, &q)) continue;
      if (!spec.require_empty || RangeIsEmpty(sorted_keys, q.lo, q.hi)) {
        ok = true;
        break;
      }
    }
    if (!ok && spec.require_empty) {
      // Clamp: shrink the range to end just below the next key. Falls back
      // to a fresh uniform empty point if even that fails.
      if (DrawCandidate(sorted_keys, spec, real_points, rng, &q)) {
        auto it =
            std::lower_bound(sorted_keys.begin(), sorted_keys.end(), q.lo);
        if (it != sorted_keys.end() && *it == q.lo) {
          // Left bound is itself a key: nudge just past it.
          if (q.lo == ~uint64_t{0}) continue;
          q.lo += 1;
          it = std::lower_bound(sorted_keys.begin(), sorted_keys.end(), q.lo);
        }
        if (it != sorted_keys.end() && *it <= q.hi) {
          if (*it == q.lo) continue;  // no room: adjacent keys
          q.hi = *it - 1;
        }
        if (q.hi < q.lo) continue;
        if (!RangeIsEmpty(sorted_keys, q.lo, q.hi)) continue;
        if (stats != nullptr) stats->clamped++;
        ok = true;
      }
    }
    if (ok) out.push_back(q);
  }
  return out;
}

}  // namespace proteus
