#include "workload/string_gen.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/random.h"

namespace proteus {
namespace {

std::string DrawFixedKey(StrDataset dataset, size_t key_bytes, Rng& rng) {
  std::string s(key_bytes, '\0');
  size_t start = 0;
  if (dataset == StrDataset::kNormal) {
    // First 8 bytes: Normal(2^63, 0.01 * 2^64), big-endian.
    double v =
        9.223372036854776e18 + rng.NextGaussian() * 1.8446744073709552e17;
    if (v < 0) v = 0;
    if (v >= 1.8446744073709552e19) v = 1.8446744073709552e19 - 1;
    uint64_t top = static_cast<uint64_t>(v);
    for (size_t i = 0; i < 8 && i < key_bytes; ++i) {
      s[i] = static_cast<char>(top >> (56 - 8 * i));
    }
    start = std::min<size_t>(8, key_bytes);
  }
  for (size_t i = start; i < key_bytes; ++i) {
    s[i] = static_cast<char>(rng.NextBelow(256));
  }
  return s;
}

std::string DrawDomain(Rng& rng) {
  static const char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789-";
  constexpr size_t kAlphabetSize = sizeof(kAlphabet) - 1;
  // Log-normal total length, median ~21 bytes including the ".org" suffix,
  // clamped to [5, 253] (the crawl's observed bounds).
  double len_d = rng.NextLogNormal(std::log(17.0), 0.45);
  size_t label_len = static_cast<size_t>(
      std::clamp(len_d, 1.0, 253.0 - 4.0));
  std::string s;
  s.reserve(label_len + 4);
  for (size_t i = 0; i < label_len; ++i) {
    s.push_back(kAlphabet[rng.NextBelow(kAlphabetSize)]);
  }
  // Occasional subdomain structure.
  if (label_len > 8 && rng.NextBelow(4) == 0) {
    s[rng.NextInRange(2, label_len - 3)] = '.';
  }
  s += ".org";
  if (s.size() < 5) s.append(5 - s.size(), 'a');
  return s;
}

}  // namespace

std::vector<std::string> GenerateStrKeys(StrDataset dataset, size_t n,
                                         size_t key_bytes, uint64_t seed) {
  Rng rng(seed ^ 0x57A1A6E5u);
  std::set<std::string> keys;
  while (keys.size() < n) {
    keys.insert(dataset == StrDataset::kDomains
                    ? DrawDomain(rng)
                    : DrawFixedKey(dataset, key_bytes, rng));
  }
  return {keys.begin(), keys.end()};
}

bool StrAddDelta(std::string_view key, size_t max_bytes, uint64_t delta,
                 std::string* out) {
  out->assign(max_bytes, '\0');
  size_t copy = std::min(key.size(), max_bytes);
  std::copy_n(key.data(), copy, out->data());
  // Add delta into the last 8 bytes with carry propagation.
  uint64_t carry = delta;
  for (size_t i = max_bytes; i-- > 0 && carry != 0;) {
    uint64_t sum = static_cast<uint8_t>((*out)[i]) + (carry & 0xFF);
    (*out)[i] = static_cast<char>(sum & 0xFF);
    carry = (carry >> 8) + (sum >> 8);
  }
  return carry == 0;
}

bool StrRangeIsEmpty(const std::vector<std::string>& sorted_keys,
                     std::string_view lo, std::string_view hi) {
  // Padded comparison: a stored key k matches [lo, hi] iff lo <= pad(k)
  // <= hi; since lo/hi are full padded length and keys are NUL-padded
  // implicitly, plain lexicographic comparison with the unpadded key is
  // equivalent (trailing NULs do not change order against a longer string
  // unless equal-prefix, which padding handles as equality).
  auto it = std::lower_bound(
      sorted_keys.begin(), sorted_keys.end(), lo,
      [](const std::string& key, std::string_view bound) {
        // Compare pad(key) < bound.
        std::string_view k(key);
        size_t n = std::min(k.size(), bound.size());
        int c = k.compare(0, n, bound.substr(0, n));
        if (c != 0) return c < 0;
        // key is a prefix of bound: padded key extends with NULs.
        for (size_t i = n; i < bound.size(); ++i) {
          if (bound[i] != '\0') return true;  // pad(key) < bound
        }
        return false;  // equal under padding
      });
  if (it == sorted_keys.end()) return true;
  // pad(*it) > hi ?
  std::string_view k(*it);
  size_t n = std::min(k.size(), hi.size());
  int c = k.compare(0, n, hi.substr(0, n));
  if (c != 0) return c > 0;
  return false;  // prefix-equal: pad(key) <= hi
}

std::vector<StrRangeQuery> GenerateStrQueries(
    const std::vector<std::string>& sorted_keys, const StrQuerySpec& spec,
    size_t n, uint64_t seed, const std::vector<std::string>& real_points) {
  Rng rng(seed ^ 0x57A1A6E5u);
  size_t max_bytes = spec.max_bytes;
  if (max_bytes == 0) {
    for (const auto& k : sorted_keys) max_bytes = std::max(max_bytes, k.size());
  }
  std::vector<StrRangeQuery> out;
  out.reserve(n);
  constexpr int kMaxAttempts = 64;
  while (out.size() < n) {
    bool ok = false;
    StrRangeQuery q;
    for (int attempt = 0; attempt < kMaxAttempts && !ok; ++attempt) {
      StrQueryDist dist = spec.dist;
      uint64_t range_max = spec.range_max;
      if (dist == StrQueryDist::kSplit) {
        if (rng.NextBelow(2) == 0) {
          dist = StrQueryDist::kCorrelated;
          range_max = spec.split_corr_range_max;
        } else {
          dist = StrQueryDist::kUniform;
        }
      }
      uint64_t offset = range_max < 2 ? 0 : rng.NextInRange(2, range_max);
      std::string left;
      switch (dist) {
        case StrQueryDist::kUniform: {
          left.assign(max_bytes, '\0');
          for (size_t i = 0; i < max_bytes; ++i) {
            left[i] = static_cast<char>(rng.NextBelow(256));
          }
          break;
        }
        case StrQueryDist::kCorrelated: {
          const std::string& key =
              sorted_keys[rng.NextBelow(sorted_keys.size())];
          uint64_t delta = rng.NextInRange(1, spec.corr_degree);
          if (!StrAddDelta(key, max_bytes, delta, &left)) continue;
          break;
        }
        case StrQueryDist::kReal: {
          if (real_points.empty()) continue;
          const std::string& p =
              real_points[rng.NextBelow(real_points.size())];
          left.assign(max_bytes, '\0');
          std::copy_n(p.data(), std::min(p.size(), max_bytes), left.data());
          break;
        }
        case StrQueryDist::kSplit:
          continue;  // unreachable
      }
      std::string right;
      if (!StrAddDelta(left, max_bytes, offset, &right)) continue;
      if (!spec.require_empty || StrRangeIsEmpty(sorted_keys, left, right)) {
        q.lo = std::move(left);
        q.hi = std::move(right);
        ok = true;
      }
    }
    if (ok) out.push_back(std::move(q));
  }
  return out;
}

}  // namespace proteus
