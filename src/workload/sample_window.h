// A scalar signature of the live query-range distribution, maintained as
// an exponentially-decayed average so the sample queue can tell "the
// workload's range shape moved" apart from noise.
//
// The per-query signature is the bit length of the common prefix of the
// query's encoded lo and hi bounds. It is order-encoding agnostic: for
// 8-byte big-endian integer keys a range of width ~2^w shares ~64 - w
// leading bits, and for raw string keys a correlated lookup shares a long
// byte prefix. Narrow/correlated workloads score high, wide uniform scans
// score low, so a shift between the two moves the EWMA by many bits —
// the drift detector (src/lsm/drift.h) compares the value at filter
// design time against the live value.

#ifndef PROTEUS_WORKLOAD_SAMPLE_WINDOW_H_
#define PROTEUS_WORKLOAD_SAMPLE_WINDOW_H_

#include <cstdint>
#include <string_view>

namespace proteus {

/// Bit length of the common prefix of two byte strings. A shared prefix
/// of the shorter operand counts its full bits (the strings diverge at
/// the length difference, contributing no further shared bits).
inline uint32_t CommonPrefixBits(std::string_view a, std::string_view b) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  uint32_t bits = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint8_t x = static_cast<uint8_t>(a[i]) ^ static_cast<uint8_t>(b[i]);
    if (x == 0) {
      bits += 8;
      continue;
    }
    for (int bit = 7; bit >= 0; --bit) {
      if ((x >> bit) & 1) break;
      ++bits;
    }
    break;
  }
  return bits;
}

/// EWMA over per-query signatures. `decay` is the weight kept on history
/// per observation (0.99 ~ a sliding window of ~100 queries).
class QuerySignature {
 public:
  explicit QuerySignature(double decay = 0.99) : decay_(decay) {}

  void Observe(std::string_view lo, std::string_view hi) {
    const double s = static_cast<double>(CommonPrefixBits(lo, hi));
    value_ = count_ == 0 ? s : decay_ * value_ + (1.0 - decay_) * s;
    ++count_;
  }

  /// The decayed mean signature in bits; negative before any observation.
  double value() const { return count_ == 0 ? -1.0 : value_; }
  uint64_t count() const { return count_; }

  void Reset() {
    value_ = 0.0;
    count_ = 0;
  }

 private:
  double decay_;
  double value_ = 0.0;
  uint64_t count_ = 0;
};

}  // namespace proteus

#endif  // PROTEUS_WORKLOAD_SAMPLE_WINDOW_H_
