#include "workload/datasets.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "hash/murmur3.h"
#include "util/random.h"

namespace proteus {

bool ParseDataset(const std::string& name, Dataset* out) {
  if (name == "uniform") {
    *out = Dataset::kUniform;
  } else if (name == "normal") {
    *out = Dataset::kNormal;
  } else if (name == "books") {
    *out = Dataset::kBooks;
  } else if (name == "facebook") {
    *out = Dataset::kFacebook;
  } else {
    return false;
  }
  return true;
}

const char* DatasetName(Dataset d) {
  switch (d) {
    case Dataset::kUniform: return "uniform";
    case Dataset::kNormal: return "normal";
    case Dataset::kBooks: return "books";
    case Dataset::kFacebook: return "facebook";
  }
  return "?";
}

namespace {

uint64_t DrawKey(Dataset dataset, Rng& rng) {
  switch (dataset) {
    case Dataset::kUniform:
      return rng.Next();
    case Dataset::kNormal: {
      // Mean 2^63, sd 0.01 * 2^64 (Section 5, Datasets).
      double v = 9.223372036854776e18 + rng.NextGaussian() * 1.8446744073709552e17;
      if (v < 0) v = 0;
      if (v >= 1.8446744073709552e19) v = 1.8446744073709552e19 - 1;
      return static_cast<uint64_t>(v);
    }
    case Dataset::kBooks: {
      // Log-normal popularity scores: most keys small, a long right tail
      // reaching high into the key space.
      double v = rng.NextLogNormal(/*mu=*/std::log(1e12), /*sigma=*/2.5);
      if (v >= 1.8446744073709552e19) v = 1.8446744073709552e19 - 1;
      return static_cast<uint64_t>(v);
    }
    case Dataset::kFacebook:
      // Handled separately (sequential gaps).
      return 0;
  }
  return 0;
}

}  // namespace

std::vector<uint64_t> GenerateKeys(Dataset dataset, size_t n, uint64_t seed) {
  Rng rng(seed ^ 0xDA7A5E7Bu);
  if (dataset == Dataset::kFacebook) {
    // Dense IDs: a narrow band starting at an arbitrary base with uniform
    // gaps in [1, 16].
    std::vector<uint64_t> keys;
    keys.reserve(n);
    uint64_t v = uint64_t{1} << 40;
    for (size_t i = 0; i < n; ++i) {
      v += 1 + rng.NextBelow(16);
      keys.push_back(v);
    }
    return keys;  // strictly increasing by construction
  }
  std::set<uint64_t> keys;
  while (keys.size() < n) keys.insert(DrawKey(dataset, rng));
  return {keys.begin(), keys.end()};
}

void GenerateKeysAndQueryPoints(Dataset dataset, size_t n, size_t n_extra,
                                uint64_t seed, std::vector<uint64_t>* keys,
                                std::vector<uint64_t>* query_points) {
  Rng rng(seed ^ 0xDA7A5E7Bu);
  if (dataset == Dataset::kFacebook) {
    // Draw a dense run, then split it between keys and query points the way
    // the paper samples disjoint subsets of one dataset.
    std::vector<uint64_t> all;
    all.reserve(n + n_extra);
    uint64_t v = uint64_t{1} << 40;
    for (size_t i = 0; i < n + n_extra; ++i) {
      v += 1 + rng.NextBelow(16);
      all.push_back(v);
    }
    keys->clear();
    query_points->clear();
    for (size_t i = 0; i < all.size(); ++i) {
      // Interleaved assignment keeps both samples covering the full band.
      if (query_points->size() * n < keys->size() * n_extra ||
          keys->size() >= n) {
        query_points->push_back(all[i]);
      } else {
        keys->push_back(all[i]);
      }
    }
    return;
  }
  std::set<uint64_t> key_set;
  while (key_set.size() < n) key_set.insert(DrawKey(dataset, rng));
  std::set<uint64_t> extra;
  while (extra.size() < n_extra) {
    uint64_t v = DrawKey(dataset, rng);
    if (!key_set.count(v)) extra.insert(v);
  }
  keys->assign(key_set.begin(), key_set.end());
  query_points->assign(extra.begin(), extra.end());
}

std::string MakeValuePayload(uint64_t key, size_t size) {
  std::string value(size, '\0');
  // Second half pseudo-random, derived from the key so payloads are
  // reproducible without storing them.
  uint64_t state = Murmur3Int64(key, 0xC0FFEE);
  for (size_t i = size / 2; i < size; ++i) {
    value[i] = static_cast<char>(SplitMix64(state) & 0xFF);
  }
  return value;
}

}  // namespace proteus
