// String-key workload generators for Section 7.
//
// Fixed-length synthetic keys (80 / 200 / 1440 bits):
//   Uniform — uniformly random bytes.
//   Normal  — first 8 bytes follow the Normal(2^63, 0.01*2^64) integer
//             distribution (big-endian), remaining bytes uniform; the mean
//             key is 0x80 followed by NULs, as the paper specifies.
//
// Variable-length keys: a synthetic `.org` domain generator standing in
// for the Domains Project crawl (DESIGN.md substitutions): log-normal
// length distribution with median ~21 bytes, clamped to [5, 253].
//
// String range queries are [left, left + offset] where the offset is added
// to the *padded* key interpreted as a big integer (Section 7.2's padding
// construction), with offset ~ U[2, RMAX].

#ifndef PROTEUS_WORKLOAD_STRING_GEN_H_
#define PROTEUS_WORKLOAD_STRING_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/query.h"

namespace proteus {

enum class StrDataset {
  kUniform,
  kNormal,
  kDomains,
};

/// Generates `n` sorted distinct fixed-length keys of `key_bytes` bytes
/// (ignored for kDomains, which draws variable lengths).
std::vector<std::string> GenerateStrKeys(StrDataset dataset, size_t n,
                                         size_t key_bytes, uint64_t seed);

/// Adds `delta` to the `max_bytes`-padded value of `key` (big-endian
/// arithmetic from the last byte). Returns false on overflow.
bool StrAddDelta(std::string_view key, size_t max_bytes, uint64_t delta,
                 std::string* out);

enum class StrQueryDist {
  kUniform,     // left uniform over the padded key space
  kCorrelated,  // left = key + U[1, corr_degree]
  kSplit,       // 50/50 correlated-small / uniform-large
  kReal,        // left drawn from a disjoint sample of the key distribution
};

struct StrQuerySpec {
  StrQueryDist dist = StrQueryDist::kUniform;
  uint64_t range_max = uint64_t{1} << 30;   // RMAX (Section 7.2)
  uint64_t corr_degree = uint64_t{1} << 29; // CORRDEGREE
  uint64_t split_corr_range_max = uint64_t{1} << 10;
  size_t max_bytes = 0;  // padded key length; 0 = derive from keys
  bool require_empty = true;
};

/// Generates `n` queries over the sorted padded key set. `real_points`
/// supplies left bounds for kReal.
std::vector<StrRangeQuery> GenerateStrQueries(
    const std::vector<std::string>& sorted_keys, const StrQuerySpec& spec,
    size_t n, uint64_t seed,
    const std::vector<std::string>& real_points = {});

/// True if no key lies within [lo, hi] (lexicographic, padded semantics).
bool StrRangeIsEmpty(const std::vector<std::string>& sorted_keys,
                     std::string_view lo, std::string_view hi);

}  // namespace proteus

#endif  // PROTEUS_WORKLOAD_STRING_GEN_H_
