// SuRF — the Succinct Range Filter baseline (Zhang et al., SIGMOD 2018),
// reimplemented from scratch for the paper's comparisons (Sections 2.2,
// 5.2, 6, 7).
//
// Structure. Keys are pruned to their minimum unique byte-prefix and the
// pruned set is stored as a Fast Succinct Trie: the top levels use
// LOUDS-Dense (256-bit label and has-child bitmaps per node), the rest
// LOUDS-Sparse (byte labels with has-child and louds bitvectors). A key
// that is a strict prefix of another key terminates at an interior node;
// unlike the original (which reserves the 0xFF label), we record
// terminations in a per-node prefix-key bitvector in both encodings, so
// arbitrary byte values — including 0xFF in fixed-length integer keys —
// are supported. Costs are within one bit per terminated key of the
// original layout.
//
// Suffix modes (Section 2.2): kNone (SuRF-Base), kReal (the next n key
// bits after the pruned prefix — helps point and range queries), kHash
// (n hash bits of the full key — helps point queries only).
//
// Pruned leaves denote a *range* of possible keys, so all order
// comparisons against query bounds are conservative: ambiguity resolves
// toward "may contain" (never a false negative).

#ifndef PROTEUS_SURF_SURF_H_
#define PROTEUS_SURF_SURF_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/filter_spec.h"
#include "core/range_filter.h"
#include "util/bit_vector.h"
#include "util/rank_select.h"

namespace proteus {

class FilterBuilder;
class StrFilterBuilder;

enum class SurfSuffixMode {
  kNone,  // SuRF-Base
  kReal,  // SuRF-Real
  kHash,  // SuRF-Hash
};

class Surf {
 public:
  struct Options {
    SurfSuffixMode suffix_mode = SurfSuffixMode::kNone;
    uint32_t suffix_bits = 0;
    /// A level is LOUDS-Dense while its dense encoding costs at most
    /// `dense_ratio` times its sparse encoding (the FST space-efficiency
    /// knob; SuRF fixes the ratio, Proteus tunes its trie's split —
    /// Section 4.3).
    uint32_t dense_ratio = 16;
  };

  Surf() = default;

  /// Builds over sorted, distinct, non-empty byte-string keys.
  void Build(const std::vector<std::string>& sorted_keys, Options options);

  /// Exact-key membership (approximate: may false-positive).
  bool Lookup(std::string_view key) const;

  /// True if a stored key may lie in [lo, hi] (inclusive, byte order).
  bool MayContain(std::string_view lo, std::string_view hi) const;

  uint64_t SizeBits() const;
  const Options& options() const { return options_; }
  uint64_t n_keys() const { return n_keys_; }
  uint64_t n_dense_nodes() const { return n_dense_nodes_; }

  /// Serialization of the whole FST; rank indexes are rebuilt on parse.
  void AppendTo(std::string* out) const;
  static bool ParseFrom(std::string_view* in, Surf* out);

 private:
  struct Leaf {
    std::string path;     // pruned key bytes
    uint64_t suffix = 0;  // real-suffix bits (numeric, MSB-aligned low word)
    uint32_t n_suffix = 0;
    bool exact = false;   // terminator: the stored key is exactly `path`
  };

  bool IsDenseNode(uint64_t node) const { return node < n_dense_nodes_; }
  uint64_t DenseChild(uint64_t node, uint32_t label) const {
    return d_has_child_rank_.Rank1(node * 256 + label + 1);
  }
  void SparseEdgeRange(uint64_t node, uint64_t* begin, uint64_t* end) const;
  uint64_t SparseChild(uint64_t edge) const {
    return n_dense_children_ + s_has_child_rank_.Rank1(edge + 1);
  }
  bool HasTerminator(uint64_t node) const;

  uint64_t DenseLeafValueIndex(uint64_t pos) const {
    return d_labels_rank_.Rank1(pos + 1) - d_has_child_rank_.Rank1(pos + 1) - 1;
  }
  uint64_t SparseLeafValueIndex(uint64_t edge) const {
    return edge - s_has_child_rank_.Rank1(edge);
  }

  uint64_t ReadSuffixStore(const BitVector& store, uint64_t index) const;
  uint64_t QueryRealSuffix(std::string_view key, uint64_t bit_from) const;
  uint64_t QueryHashSuffix(std::string_view key) const;

  /// Conservative three-way comparison of a stored leaf against query
  /// bytes: -1 = certainly smaller, +1 certainly greater, 0 = ambiguous
  /// (or possibly equal).
  static int CompareConservative(const Leaf& leaf, std::string_view query);

  /// Smallest stored leaf whose conservative comparison with `lo` is >= 0.
  bool SeekGeq(std::string_view lo, Leaf* out) const;

  /// Descends to the smallest leaf under `node`; `path` holds the bytes
  /// spelled so far.
  void LeftmostLeaf(uint64_t node, std::string path, Leaf* out) const;

  /// Fills a Leaf for a matched leaf edge.
  void FillLeafEdge(bool dense, uint64_t node, uint32_t label, uint64_t pos,
                    std::string path, Leaf* out) const;

  Options options_;
  uint64_t n_keys_ = 0;
  uint64_t n_dense_nodes_ = 0;
  uint64_t n_dense_children_ = 0;
  uint64_t n_sparse_edges_ = 0;
  uint64_t n_dense_terms_ = 0;

  // Dense levels.
  BitVector d_labels_;
  RankSelect d_labels_rank_;
  BitVector d_has_child_;
  RankSelect d_has_child_rank_;
  BitVector d_prefix_key_;   // 1 bit per dense node
  RankSelect d_prefix_key_rank_;
  BitVector d_suffixes_;     // dense leaf-edge suffixes

  // Sparse levels.
  std::vector<uint8_t> s_labels_;
  BitVector s_has_child_;
  RankSelect s_has_child_rank_;
  BitVector s_louds_;
  RankSelect s_louds_rank_;
  BitVector s_prefix_key_;   // 1 bit per sparse node
  RankSelect s_prefix_key_rank_;
  BitVector s_suffixes_;     // sparse leaf-edge suffixes

  // Terminator (prefix-key) suffixes: dense nodes first, then sparse.
  BitVector t_suffixes_;

  friend class SurfBuilder;
};

/// Parses spec parameters shared by both SuRF adapters:
///   mode   — base | real | hash (or 0 | 1 | 2); default base
///   suffix — suffix bits per key (default 8 when mode != base, else 0)
///   dense  — LOUDS-Dense/Sparse cost ratio (default 16)
bool ParseSurfSpec(const FilterSpec& spec, Surf::Options* out,
                   std::string* error);

/// RangeFilter adapter over 64-bit integer keys (8-byte big-endian).
class SurfIntFilter : public RangeFilter {
 public:
  static constexpr uint32_t kFamilyId = 5;

  static std::unique_ptr<SurfIntFilter> Build(
      const std::vector<uint64_t>& sorted_keys, Surf::Options options);
  static std::unique_ptr<SurfIntFilter> BuildFromSpec(const FilterSpec& spec,
                                                      FilterBuilder& builder,
                                                      std::string* error);

  bool MayContain(uint64_t lo, uint64_t hi) const override;
  uint64_t SizeBits() const override { return surf_.SizeBits(); }
  std::string Name() const override;

  uint32_t FamilyId() const override { return kFamilyId; }
  void SerializePayload(std::string* out) const override {
    surf_.AppendTo(out);
  }
  static std::unique_ptr<SurfIntFilter> DeserializePayload(
      std::string_view* in);

  const Surf& surf() const { return surf_; }

 private:
  Surf surf_;
};

/// StrRangeFilter adapter over byte-string keys.
class SurfStrFilter : public StrRangeFilter {
 public:
  static constexpr uint32_t kFamilyId = 6;

  static std::unique_ptr<SurfStrFilter> Build(
      const std::vector<std::string>& sorted_keys, Surf::Options options);
  static std::unique_ptr<SurfStrFilter> BuildFromSpec(
      const FilterSpec& spec, StrFilterBuilder& builder, std::string* error);

  bool MayContain(std::string_view lo, std::string_view hi) const override;
  uint64_t SizeBits() const override { return surf_.SizeBits(); }
  std::string Name() const override;

  uint32_t FamilyId() const override { return kFamilyId; }
  void SerializePayload(std::string* out) const override {
    surf_.AppendTo(out);
  }
  static std::unique_ptr<SurfStrFilter> DeserializePayload(
      std::string_view* in);

  const Surf& surf() const { return surf_; }

 private:
  Surf surf_;
};

/// Encodes a 64-bit key as an 8-byte big-endian string (order-preserving).
std::string EncodeKeyBE(uint64_t key);
uint64_t DecodeKeyBE(std::string_view s);

}  // namespace proteus

#endif  // PROTEUS_SURF_SURF_H_
