#include "surf/surf.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "core/filter_builder.h"
#include "hash/clhash.h"
#include "util/bitstring.h"
#include "util/serial.h"

namespace proteus {
namespace {

constexpr uint64_t kSurfHashSeed = 0x5F3A0C9B1D2E4A77ull;

size_t ByteLcp(std::string_view a, std::string_view b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

}  // namespace

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

class SurfBuilder {
 public:
  SurfBuilder(const std::vector<std::string>& keys, Surf* out)
      : keys_(keys), surf_(out) {}

  void Build() {
    const size_t n = keys_.size();
    prune_len_.resize(n);
    is_prefix_.resize(n);
    std::vector<size_t> lcp(n + 1, 0);  // lcp[i] = byte LCP of keys i-1, i
    for (size_t i = 1; i < n; ++i) lcp[i] = ByteLcp(keys_[i - 1], keys_[i]);
    for (size_t i = 0; i < n; ++i) {
      size_t maxlcp = std::max(lcp[i], i + 1 < n ? lcp[i + 1] : 0);
      is_prefix_[i] = i + 1 < n && lcp[i + 1] == keys_[i].size();
      prune_len_[i] = is_prefix_[i]
                          ? static_cast<uint32_t>(keys_[i].size())
                          : static_cast<uint32_t>(std::min(
                                maxlcp + 1, keys_[i].size()));
    }

    // Prepass: per-level node/edge/terminator counts, for the dense/sparse
    // cutoff decision.
    std::vector<uint64_t> nodes_per_level, edges_per_level, terms_per_level;
    WalkLevels(/*emit=*/false, /*cutoff=*/0, &nodes_per_level,
               &edges_per_level, &terms_per_level);

    uint32_t cutoff = 0;
    for (size_t l = 0; l < nodes_per_level.size(); ++l) {
      double dense_cost = static_cast<double>(nodes_per_level[l]) * 513.0;
      double sparse_cost = static_cast<double>(edges_per_level[l]) * 10.0 +
                           static_cast<double>(nodes_per_level[l]);
      if (dense_cost <=
          static_cast<double>(surf_->options_.dense_ratio) * sparse_cost) {
        cutoff = static_cast<uint32_t>(l + 1);
      } else {
        break;
      }
    }

    WalkLevels(/*emit=*/true, cutoff, nullptr, nullptr, nullptr);

    surf_->n_keys_ = n;
    surf_->n_sparse_edges_ = surf_->s_labels_.size();
    surf_->d_labels_rank_.Build(&surf_->d_labels_);
    surf_->d_has_child_rank_.Build(&surf_->d_has_child_);
    surf_->d_prefix_key_rank_.Build(&surf_->d_prefix_key_);
    surf_->s_has_child_rank_.Build(&surf_->s_has_child_);
    surf_->s_louds_rank_.Build(&surf_->s_louds_);
    surf_->s_prefix_key_rank_.Build(&surf_->s_prefix_key_);
    surf_->n_dense_children_ = surf_->d_has_child_rank_.ones();
    surf_->n_dense_terms_ = surf_->d_prefix_key_rank_.ones();
  }

 private:
  struct Range {
    uint32_t begin, end;
  };

  uint32_t SuffixBits() const {
    return surf_->options_.suffix_mode == SurfSuffixMode::kNone
               ? 0
               : surf_->options_.suffix_bits;
  }

  void AppendSuffix(BitVector* store, size_t key_index, uint64_t from_bit) {
    const uint32_t sb = SuffixBits();
    if (sb == 0) return;
    uint64_t v = 0;
    if (surf_->options_.suffix_mode == SurfSuffixMode::kReal) {
      for (uint32_t j = 0; j < sb; ++j) {
        v = (v << 1) | (StrGetBit(keys_[key_index], from_bit + j) ? 1 : 0);
      }
    } else {  // kHash
      v = ClHash64(keys_[key_index], kSurfHashSeed) &
          ((sb == 64) ? ~uint64_t{0} : ((uint64_t{1} << sb) - 1));
    }
    for (uint32_t j = 0; j < sb; ++j) {
      store->PushBack((v >> (sb - 1 - j)) & 1);
    }
  }

  void WalkLevels(bool emit, uint32_t cutoff,
                  std::vector<uint64_t>* nodes_per_level,
                  std::vector<uint64_t>* edges_per_level,
                  std::vector<uint64_t>* terms_per_level) {
    if (keys_.empty()) return;
    std::vector<Range> current = {{0, static_cast<uint32_t>(keys_.size())}};
    uint64_t dense_nodes = 0;
    for (uint32_t level = 0; !current.empty(); ++level) {
      const bool dense = level < cutoff;
      if (!emit) {
        nodes_per_level->push_back(current.size());
        edges_per_level->push_back(0);
        terms_per_level->push_back(0);
      }
      std::vector<Range> next;
      next.reserve(current.size());
      for (Range r : current) {
        bool term = keys_[r.begin].size() == level;
        if (term) r.begin += 1;  // the exhausted key terminates at this node
        if (!emit) {
          if (term) (*terms_per_level)[level]++;
        }
        std::array<uint64_t, 4> labels{};
        std::array<uint64_t, 4> children{};
        bool first_edge = true;
        uint32_t g = r.begin;
        while (g < r.end) {
          uint8_t c = static_cast<uint8_t>(keys_[g][level]);
          uint32_t h = g;
          while (h < r.end &&
                 static_cast<uint8_t>(keys_[h][level]) == c) {
            ++h;
          }
          const bool leaf = (h - g == 1) && !is_prefix_[g] &&
                            prune_len_[g] == level + 1;
          if (!emit) {
            (*edges_per_level)[level]++;
          } else if (dense) {
            labels[c >> 6] |= uint64_t{1} << (c & 63);
            if (!leaf) children[c >> 6] |= uint64_t{1} << (c & 63);
            if (leaf) {
              AppendSuffix(&surf_->d_suffixes_, g,
                           static_cast<uint64_t>(level + 1) * 8);
            }
          } else {
            surf_->s_labels_.push_back(c);
            surf_->s_has_child_.PushBack(!leaf);
            surf_->s_louds_.PushBack(first_edge);
            first_edge = false;
            if (leaf) {
              AppendSuffix(&surf_->s_suffixes_, g,
                           static_cast<uint64_t>(level + 1) * 8);
            }
          }
          if (!leaf) next.push_back({g, h});
          g = h;
        }
        if (emit) {
          if (dense) {
            for (uint64_t w : labels) surf_->d_labels_.PushBits(w, 64);
            for (uint64_t w : children) surf_->d_has_child_.PushBits(w, 64);
            surf_->d_prefix_key_.PushBack(term);
            ++dense_nodes;
          } else {
            surf_->s_prefix_key_.PushBack(term);
          }
          if (term) {
            AppendSuffix(&surf_->t_suffixes_, r.begin - 1,
                         static_cast<uint64_t>(level) * 8);
          }
        }
      }
      current = std::move(next);
    }
    if (emit) surf_->n_dense_nodes_ = dense_nodes;
  }

  const std::vector<std::string>& keys_;
  std::vector<uint32_t> prune_len_;
  std::vector<bool> is_prefix_;
  Surf* surf_;
};

void Surf::Build(const std::vector<std::string>& sorted_keys,
                 Options options) {
  *this = Surf();
  options_ = options;
  SurfBuilder builder(sorted_keys, this);
  builder.Build();
}

// ---------------------------------------------------------------------------
// Navigation
// ---------------------------------------------------------------------------

void Surf::SparseEdgeRange(uint64_t node, uint64_t* begin,
                           uint64_t* end) const {
  uint64_t snode = node - n_dense_nodes_;
  *begin = s_louds_rank_.Select1(snode + 1);
  *end = snode + 2 <= s_louds_rank_.ones() ? s_louds_rank_.Select1(snode + 2)
                                           : n_sparse_edges_;
}

bool Surf::HasTerminator(uint64_t node) const {
  if (IsDenseNode(node)) return d_prefix_key_.Get(node);
  return s_prefix_key_.Get(node - n_dense_nodes_);
}

uint64_t Surf::ReadSuffixStore(const BitVector& store, uint64_t index) const {
  const uint32_t sb = options_.suffix_bits;
  if (sb == 0 || options_.suffix_mode == SurfSuffixMode::kNone) return 0;
  uint64_t v = 0;
  uint64_t base = index * sb;
  for (uint32_t j = 0; j < sb; ++j) {
    v = (v << 1) | (store.Get(base + j) ? 1 : 0);
  }
  return v;
}

uint64_t Surf::QueryRealSuffix(std::string_view key, uint64_t bit_from) const {
  const uint32_t sb = options_.suffix_bits;
  uint64_t v = 0;
  for (uint32_t j = 0; j < sb; ++j) {
    v = (v << 1) | (StrGetBit(key, bit_from + j) ? 1 : 0);
  }
  return v;
}

uint64_t Surf::QueryHashSuffix(std::string_view key) const {
  const uint32_t sb = options_.suffix_bits;
  return ClHash64(key, kSurfHashSeed) &
         ((sb >= 64) ? ~uint64_t{0} : ((uint64_t{1} << sb) - 1));
}

bool Surf::Lookup(std::string_view key) const {
  if (n_keys_ == 0) return false;
  uint64_t node = 0;
  size_t level = 0;
  for (;;) {
    if (level == key.size()) {
      if (!HasTerminator(node)) return false;
      if (options_.suffix_mode == SurfSuffixMode::kHash) {
        uint64_t idx = IsDenseNode(node)
                           ? d_prefix_key_rank_.Rank1(node)
                           : n_dense_terms_ +
                                 s_prefix_key_rank_.Rank1(node -
                                                          n_dense_nodes_);
        return ReadSuffixStore(t_suffixes_, idx) == QueryHashSuffix(key);
      }
      return true;  // kReal suffixes of terminators are all padding zeros
    }
    uint8_t c = static_cast<uint8_t>(key[level]);
    if (IsDenseNode(node)) {
      uint64_t pos = node * 256 + c;
      if (!d_labels_.Get(pos)) return false;
      if (!d_has_child_.Get(pos)) {
        uint64_t idx = DenseLeafValueIndex(pos);
        switch (options_.suffix_mode) {
          case SurfSuffixMode::kNone:
            return true;
          case SurfSuffixMode::kReal:
            return ReadSuffixStore(d_suffixes_, idx) ==
                   QueryRealSuffix(key, (level + 1) * 8);
          case SurfSuffixMode::kHash:
            return ReadSuffixStore(d_suffixes_, idx) == QueryHashSuffix(key);
        }
      }
      node = DenseChild(node, c);
      ++level;
      continue;
    }
    uint64_t begin, end;
    SparseEdgeRange(node, &begin, &end);
    uint64_t edge = end;
    for (uint64_t e = begin; e < end; ++e) {
      if (s_labels_[e] == c) {
        edge = e;
        break;
      }
      if (s_labels_[e] > c) break;
    }
    if (edge == end) return false;
    if (!s_has_child_.Get(edge)) {
      uint64_t idx = SparseLeafValueIndex(edge);
      switch (options_.suffix_mode) {
        case SurfSuffixMode::kNone:
          return true;
        case SurfSuffixMode::kReal:
          return ReadSuffixStore(s_suffixes_, idx) ==
                 QueryRealSuffix(key, (level + 1) * 8);
        case SurfSuffixMode::kHash:
          return ReadSuffixStore(s_suffixes_, idx) == QueryHashSuffix(key);
      }
    }
    node = SparseChild(edge);
    ++level;
  }
}

int Surf::CompareConservative(const Leaf& leaf, std::string_view query) {
  const std::string& path = leaf.path;
  size_t nb = std::min(path.size(), query.size());
  int c = std::memcmp(path.data(), query.data(), nb);
  if (c != 0) return c < 0 ? -1 : 1;
  if (path.size() > query.size()) return 1;  // stored extends the query
  // Path consumed; compare real-suffix bits against the query's bits.
  for (uint32_t j = 0; j < leaf.n_suffix; ++j) {
    uint64_t qbit_index = path.size() * 8 + j;
    bool sbit = (leaf.suffix >> (leaf.n_suffix - 1 - j)) & 1;
    if (qbit_index >= query.size() * 8) {
      // Query exhausted. A known 1-bit proves the stored key extends past
      // the query; a 0-bit may be suffix padding.
      if (sbit) return 1;
      continue;
    }
    bool qbit = StrGetBit(query, qbit_index);
    if (sbit != qbit) return sbit ? 1 : -1;
  }
  if (leaf.exact) {
    return path.size() == query.size() ? 0 : -1;  // exact prefix is smaller
  }
  return 0;  // truncated: ambiguous
}

void Surf::FillLeafEdge(bool dense, uint64_t /*node*/, uint32_t label,
                        uint64_t pos, std::string path, Leaf* out) const {
  path.push_back(static_cast<char>(label));
  out->path = std::move(path);
  out->exact = false;
  if (options_.suffix_mode == SurfSuffixMode::kReal &&
      options_.suffix_bits > 0) {
    uint64_t idx = dense ? DenseLeafValueIndex(pos) : SparseLeafValueIndex(pos);
    out->suffix = ReadSuffixStore(dense ? d_suffixes_ : s_suffixes_, idx);
    out->n_suffix = options_.suffix_bits;
  } else {
    out->suffix = 0;
    out->n_suffix = 0;
  }
}

void Surf::LeftmostLeaf(uint64_t node, std::string path, Leaf* out) const {
  for (;;) {
    if (HasTerminator(node)) {
      out->path = std::move(path);
      out->suffix = 0;
      out->n_suffix = 0;
      out->exact = true;
      return;
    }
    if (IsDenseNode(node)) {
      uint64_t pos = d_labels_.NextSetBit(node * 256, (node + 1) * 256);
      uint32_t label = static_cast<uint32_t>(pos - node * 256);
      if (!d_has_child_.Get(pos)) {
        FillLeafEdge(true, node, label, pos, std::move(path), out);
        return;
      }
      path.push_back(static_cast<char>(label));
      node = DenseChild(node, label);
    } else {
      uint64_t begin, end;
      SparseEdgeRange(node, &begin, &end);
      uint32_t label = s_labels_[begin];
      if (!s_has_child_.Get(begin)) {
        FillLeafEdge(false, node, label, begin, std::move(path), out);
        return;
      }
      path.push_back(static_cast<char>(label));
      node = SparseChild(begin);
    }
  }
}

bool Surf::SeekGeq(std::string_view lo, Leaf* out) const {
  if (n_keys_ == 0) return false;
  uint64_t node = 0;
  size_t level = 0;
  std::string path;
  std::vector<uint64_t> stack;  // node at each level of the exact descent

  // Finds the first edge with label >= c; returns true and fills
  // (label, pos). pos is a dense bitmap position or a sparse edge index.
  auto find_geq = [&](uint64_t nd, uint32_t c, uint32_t* label,
                      uint64_t* pos) {
    if (IsDenseNode(nd)) {
      uint64_t p = d_labels_.NextSetBit(nd * 256 + c, (nd + 1) * 256);
      if (p == (nd + 1) * 256) return false;
      *label = static_cast<uint32_t>(p - nd * 256);
      *pos = p;
      return true;
    }
    uint64_t begin, end;
    SparseEdgeRange(nd, &begin, &end);
    for (uint64_t e = begin; e < end; ++e) {
      if (s_labels_[e] >= c) {
        *label = s_labels_[e];
        *pos = e;
        return true;
      }
    }
    return false;
  };

  auto is_leaf_edge = [&](uint64_t nd, uint64_t pos) {
    return IsDenseNode(nd) ? !d_has_child_.Get(pos) : !s_has_child_.Get(pos);
  };
  auto child_of = [&](uint64_t nd, uint32_t label, uint64_t pos) {
    return IsDenseNode(nd) ? DenseChild(nd, label) : SparseChild(pos);
  };

  for (;;) {
    if (level == lo.size()) {
      // Every descendant extends path == lo: the leftmost is the bound.
      LeftmostLeaf(node, std::move(path), out);
      return true;
    }
    // A terminator here spells a key that is a strict prefix of lo: skip.
    uint32_t c = static_cast<uint8_t>(lo[level]);
    uint32_t label;
    uint64_t pos;
    if (find_geq(node, c, &label, &pos)) {
      if (label > c) {
        if (is_leaf_edge(node, pos)) {
          FillLeafEdge(IsDenseNode(node), node, label, pos, std::move(path),
                       out);
        } else {
          std::string child_path = std::move(path);
          child_path.push_back(static_cast<char>(label));
          LeftmostLeaf(child_of(node, label, pos), std::move(child_path), out);
        }
        return true;
      }
      // label == c: exact descent.
      if (is_leaf_edge(node, pos)) {
        Leaf candidate;
        FillLeafEdge(IsDenseNode(node), node, label, pos, path, &candidate);
        if (CompareConservative(candidate, lo) >= 0) {
          *out = std::move(candidate);
          return true;
        }
        // Certainly smaller than lo: try the next edge in this node.
        if (c < 255 && find_geq(node, c + 1, &label, &pos)) {
          if (is_leaf_edge(node, pos)) {
            FillLeafEdge(IsDenseNode(node), node, label, pos, std::move(path),
                         out);
          } else {
            std::string child_path = std::move(path);
            child_path.push_back(static_cast<char>(label));
            LeftmostLeaf(child_of(node, label, pos), std::move(child_path),
                         out);
          }
          return true;
        }
        // Fall through to backtracking.
      } else {
        stack.push_back(node);
        path.push_back(static_cast<char>(label));
        node = child_of(node, label, pos);
        ++level;
        continue;
      }
    }
    // Backtrack: find an elder sibling branch greater than lo's byte.
    for (;;) {
      if (stack.empty()) return false;
      node = stack.back();
      stack.pop_back();
      --level;
      path.resize(level);
      uint32_t bc = static_cast<uint8_t>(lo[level]);
      if (bc < 255 && find_geq(node, bc + 1, &label, &pos)) {
        if (is_leaf_edge(node, pos)) {
          FillLeafEdge(IsDenseNode(node), node, label, pos, std::move(path),
                       out);
        } else {
          std::string child_path = std::move(path);
          child_path.push_back(static_cast<char>(label));
          LeftmostLeaf(child_of(node, label, pos), std::move(child_path), out);
        }
        return true;
      }
    }
  }
}

bool Surf::MayContain(std::string_view lo, std::string_view hi) const {
  if (n_keys_ == 0) return false;
  if (lo == hi && options_.suffix_mode == SurfSuffixMode::kHash) {
    return Lookup(lo);
  }
  Leaf leaf;
  if (!SeekGeq(lo, &leaf)) return false;
  return CompareConservative(leaf, hi) <= 0;
}

uint64_t Surf::SizeBits() const {
  return d_labels_.SizeBits() + d_labels_rank_.SizeBits() +
         d_has_child_.SizeBits() + d_has_child_rank_.SizeBits() +
         d_prefix_key_.SizeBits() + d_prefix_key_rank_.SizeBits() +
         d_suffixes_.SizeBits() + s_labels_.size() * 8 +
         s_has_child_.SizeBits() + s_has_child_rank_.SizeBits() +
         s_louds_.SizeBits() + s_louds_rank_.SizeBits() +
         s_prefix_key_.SizeBits() + s_prefix_key_rank_.SizeBits() +
         s_suffixes_.SizeBits() + t_suffixes_.SizeBits();
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

std::string EncodeKeyBE(uint64_t key) {
  std::string s(8, '\0');
  for (int i = 0; i < 8; ++i) {
    s[i] = static_cast<char>((key >> (56 - 8 * i)) & 0xFF);
  }
  return s;
}

uint64_t DecodeKeyBE(std::string_view s) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8 && i < s.size(); ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(s[i])) << (56 - 8 * i);
  }
  return v;
}

std::unique_ptr<SurfIntFilter> SurfIntFilter::Build(
    const std::vector<uint64_t>& sorted_keys, Surf::Options options) {
  auto filter = std::make_unique<SurfIntFilter>();
  std::vector<std::string> encoded;
  encoded.reserve(sorted_keys.size());
  for (uint64_t k : sorted_keys) encoded.push_back(EncodeKeyBE(k));
  filter->surf_.Build(encoded, options);
  return filter;
}

bool SurfIntFilter::MayContain(uint64_t lo, uint64_t hi) const {
  return surf_.MayContain(EncodeKeyBE(lo), EncodeKeyBE(hi));
}

namespace {
std::string SurfName(const Surf::Options& options) {
  switch (options.suffix_mode) {
    case SurfSuffixMode::kNone:
      return "SuRF";
    case SurfSuffixMode::kReal:
      return "SuRF-Real" + std::to_string(options.suffix_bits);
    case SurfSuffixMode::kHash:
      return "SuRF-Hash" + std::to_string(options.suffix_bits);
  }
  return "SuRF";
}
}  // namespace

std::string SurfIntFilter::Name() const { return SurfName(surf_.options()); }

std::unique_ptr<SurfStrFilter> SurfStrFilter::Build(
    const std::vector<std::string>& sorted_keys, Surf::Options options) {
  auto filter = std::make_unique<SurfStrFilter>();
  filter->surf_.Build(sorted_keys, options);
  return filter;
}

bool SurfStrFilter::MayContain(std::string_view lo,
                               std::string_view hi) const {
  return surf_.MayContain(lo, hi);
}

std::string SurfStrFilter::Name() const {
  return SurfName(surf_.options()) + "-str";
}

// ---------------------------------------------------------------------------
// Spec parsing and serialization
// ---------------------------------------------------------------------------

bool ParseSurfSpec(const FilterSpec& spec, Surf::Options* out,
                   std::string* error) {
  if (!spec.ExpectKeys({"mode", "suffix", "dense"}, error)) return false;
  std::string mode = spec.GetString("mode", "base");
  if (mode == "base" || mode == "none" || mode == "0") {
    out->suffix_mode = SurfSuffixMode::kNone;
  } else if (mode == "real" || mode == "1") {
    out->suffix_mode = SurfSuffixMode::kReal;
  } else if (mode == "hash" || mode == "2") {
    out->suffix_mode = SurfSuffixMode::kHash;
  } else {
    if (error != nullptr) {
      *error = "surf mode must be base|real|hash, got \"" + mode + "\"";
    }
    return false;
  }
  uint32_t default_suffix =
      out->suffix_mode == SurfSuffixMode::kNone ? 0 : 8;
  if (!spec.GetUint32("suffix", default_suffix, &out->suffix_bits, error) ||
      !spec.GetUint32("dense", 16, &out->dense_ratio, error)) {
    return false;
  }
  if (out->suffix_bits > 64) {
    if (error != nullptr) *error = "surf suffix bits must be <= 64";
    return false;
  }
  return true;
}

std::unique_ptr<SurfIntFilter> SurfIntFilter::BuildFromSpec(
    const FilterSpec& spec, FilterBuilder& builder, std::string* error) {
  Surf::Options options;
  if (!ParseSurfSpec(spec, &options, error)) return nullptr;
  return Build(builder.keys(), options);
}

std::unique_ptr<SurfIntFilter> SurfIntFilter::DeserializePayload(
    std::string_view* in) {
  auto filter = std::make_unique<SurfIntFilter>();
  if (!Surf::ParseFrom(in, &filter->surf_)) return nullptr;
  return filter;
}

std::unique_ptr<SurfStrFilter> SurfStrFilter::BuildFromSpec(
    const FilterSpec& spec, StrFilterBuilder& builder, std::string* error) {
  Surf::Options options;
  if (!ParseSurfSpec(spec, &options, error)) return nullptr;
  return Build(builder.keys(), options);
}

std::unique_ptr<SurfStrFilter> SurfStrFilter::DeserializePayload(
    std::string_view* in) {
  auto filter = std::make_unique<SurfStrFilter>();
  if (!Surf::ParseFrom(in, &filter->surf_)) return nullptr;
  return filter;
}

void Surf::AppendTo(std::string* out) const {
  PutFixed32(out, static_cast<uint32_t>(options_.suffix_mode));
  PutFixed32(out, options_.suffix_bits);
  PutFixed32(out, options_.dense_ratio);
  PutFixed64(out, n_keys_);
  PutFixed64(out, n_dense_nodes_);
  PutFixed64(out, n_dense_children_);
  PutFixed64(out, n_sparse_edges_);
  PutFixed64(out, n_dense_terms_);
  d_labels_.AppendTo(out);
  d_has_child_.AppendTo(out);
  d_prefix_key_.AppendTo(out);
  d_suffixes_.AppendTo(out);
  PutLengthPrefixed(out, std::string_view(
                             reinterpret_cast<const char*>(s_labels_.data()),
                             s_labels_.size()));
  s_has_child_.AppendTo(out);
  s_louds_.AppendTo(out);
  s_prefix_key_.AppendTo(out);
  s_suffixes_.AppendTo(out);
  t_suffixes_.AppendTo(out);
}

bool Surf::ParseFrom(std::string_view* in, Surf* out) {
  *out = Surf();
  uint32_t suffix_mode;
  if (!GetFixed32(in, &suffix_mode) ||
      !GetFixed32(in, &out->options_.suffix_bits) ||
      !GetFixed32(in, &out->options_.dense_ratio)) {
    return false;
  }
  if (suffix_mode > static_cast<uint32_t>(SurfSuffixMode::kHash)) return false;
  out->options_.suffix_mode = static_cast<SurfSuffixMode>(suffix_mode);
  if (!GetFixed64(in, &out->n_keys_) || !GetFixed64(in, &out->n_dense_nodes_) ||
      !GetFixed64(in, &out->n_dense_children_) ||
      !GetFixed64(in, &out->n_sparse_edges_) ||
      !GetFixed64(in, &out->n_dense_terms_)) {
    return false;
  }
  std::string labels;
  if (!BitVector::ParseFrom(in, &out->d_labels_) ||
      !BitVector::ParseFrom(in, &out->d_has_child_) ||
      !BitVector::ParseFrom(in, &out->d_prefix_key_) ||
      !BitVector::ParseFrom(in, &out->d_suffixes_) ||
      !GetLengthPrefixed(in, &labels) ||
      !BitVector::ParseFrom(in, &out->s_has_child_) ||
      !BitVector::ParseFrom(in, &out->s_louds_) ||
      !BitVector::ParseFrom(in, &out->s_prefix_key_) ||
      !BitVector::ParseFrom(in, &out->s_suffixes_) ||
      !BitVector::ParseFrom(in, &out->t_suffixes_)) {
    return false;
  }
  // Cross-validate the counts against the parsed structures so a blob
  // whose individually well-formed pieces disagree is rejected instead of
  // reading out of bounds at query time.
  if (out->n_sparse_edges_ != labels.size() ||
      out->s_has_child_.size() != out->n_sparse_edges_ ||
      out->s_louds_.size() != out->n_sparse_edges_ ||
      out->n_dense_nodes_ != out->d_prefix_key_.size() ||
      out->d_labels_.size() != out->d_prefix_key_.size() * 256 ||
      out->d_has_child_.size() != out->d_prefix_key_.size() * 256) {
    return false;
  }
  out->s_labels_.assign(labels.begin(), labels.end());
  out->d_labels_rank_.Build(&out->d_labels_);
  out->d_has_child_rank_.Build(&out->d_has_child_);
  out->d_prefix_key_rank_.Build(&out->d_prefix_key_);
  out->s_has_child_rank_.Build(&out->s_has_child_);
  out->s_louds_rank_.Build(&out->s_louds_);
  out->s_prefix_key_rank_.Build(&out->s_prefix_key_);
  if (out->n_dense_children_ != out->d_has_child_rank_.ones() ||
      out->n_dense_terms_ != out->d_prefix_key_rank_.ones()) {
    return false;
  }
  return true;
}

}  // namespace proteus
