// The Proteus self-designing range filter (Section 4): a uniform-depth
// bit trie over l1-bit prefixes combined with a prefix Bloom filter over
// l2-bit prefixes, l1 < l2. Either component may be absent; the CPFPR
// model picks (l1, l2) from sampled queries to minimize expected FPR
// within a memory budget.
//
// Query algorithm (Section 4.2): walk the trie for members of Q_l1 in
// order; for every trie hit, probe the Bloom filter for the l2-prefixes of
// Q below that hit; positive on the first Bloom hit (or trie hit when no
// Bloom filter is configured); negative when the trie walk is exhausted.
//
// Construction goes through the shared FilterBuilder flow
// (Sample() -> Design() -> Build()); BuildWithConfig remains for forced
// configurations (Figure 4c sweeps, tests). Spec parameters:
//   bpk     — memory budget in bits per key (default 12)
//   trie    — forced trie depth l1 (skips the model)
//   bloom   — forced Bloom prefix length l2 (skips the model)
//   blocked — 0|1: cache-line-blocked Bloom probes (default 1; the CPFPR
//             model prices the blocked layout's FPR into its selection)

#ifndef PROTEUS_CORE_PROTEUS_H_
#define PROTEUS_CORE_PROTEUS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bloom/prefix_bloom.h"
#include "core/filter_spec.h"
#include "core/query.h"
#include "core/range_filter.h"
#include "trie/bit_trie.h"

namespace proteus {

class CpfprModel;
class FilterBuilder;

class ProteusFilter : public RangeFilter {
 public:
  static constexpr uint32_t kFamilyId = 1;

  struct Config {
    uint32_t trie_depth = 0;     // l1; 0 = no trie
    uint32_t bf_prefix_len = 0;  // l2; 0 = no Bloom filter
  };

  /// Registry/FilterBuilder hook: self-designs from the builder's sampled
  /// queries (the paper's headline construction path), or forces the
  /// configuration given by the spec's trie=/bloom= parameters.
  static std::unique_ptr<ProteusFilter> BuildFromSpec(const FilterSpec& spec,
                                                      FilterBuilder& builder,
                                                      std::string* error);

  /// Forced-configuration build, used for the Figure 4c design-space sweep
  /// and for tests. The Bloom filter receives whatever remains of the
  /// budget after the (measured) trie.
  static std::unique_ptr<ProteusFilter> BuildWithConfig(
      const std::vector<uint64_t>& sorted_keys, Config config,
      double bits_per_key, bool blocked_bloom = false);

  bool MayContain(uint64_t lo, uint64_t hi) const override;
  /// Batch form: the queries' trie descents run in lockstep through
  /// BitTrie::MultiSeekGeq (dense-level popcount ranks + batched rank9
  /// lookups via RankSelect::MultiRank1), then each positioned cursor
  /// finishes its leaf walk and Bloom doubting exactly as MayContain
  /// would. Trie-less configurations delegate to the prefix Bloom batch
  /// path. Same answers as per-query MayContain in every configuration.
  void MultiMayContain(const uint64_t* lo, const uint64_t* hi, size_t n,
                       uint8_t* out) const override;
  uint64_t SizeBits() const override;
  std::string Name() const override;

  uint32_t FamilyId() const override { return kFamilyId; }
  void SerializePayload(std::string* out) const override;
  static std::unique_ptr<ProteusFilter> DeserializePayload(
      std::string_view* in);

  const Config& config() const { return config_; }
  /// The model's expected FPR; empty when built with a forced config.
  std::optional<double> modeled_fpr() const { return modeled_fpr_; }
  std::optional<double> ModeledFpr() const override { return modeled_fpr_; }

 private:
  ProteusFilter() = default;

  /// The leaf walk of MayContain, starting from a cursor already
  /// positioned by SeekGeq/MultiSeekGeq on the first candidate l1-prefix.
  bool WalkFrom(BitTrie::Cursor* cur, uint64_t lo, uint64_t hi) const;

  Config config_;
  BitTrie trie_;
  PrefixBloom bf_;
  std::optional<double> modeled_fpr_;
};

}  // namespace proteus

#endif  // PROTEUS_CORE_PROTEUS_H_
