// The Proteus self-designing range filter (Section 4): a uniform-depth
// bit trie over l1-bit prefixes combined with a prefix Bloom filter over
// l2-bit prefixes, l1 < l2. Either component may be absent; the CPFPR
// model picks (l1, l2) from sampled queries to minimize expected FPR
// within a memory budget.
//
// Query algorithm (Section 4.2): walk the trie for members of Q_l1 in
// order; for every trie hit, probe the Bloom filter for the l2-prefixes of
// Q below that hit; positive on the first Bloom hit (or trie hit when no
// Bloom filter is configured); negative when the trie walk is exhausted.

#ifndef PROTEUS_CORE_PROTEUS_H_
#define PROTEUS_CORE_PROTEUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bloom/prefix_bloom.h"
#include "core/query.h"
#include "core/range_filter.h"
#include "model/cpfpr.h"
#include "trie/bit_trie.h"

namespace proteus {

class ProteusFilter : public RangeFilter {
 public:
  struct Config {
    uint32_t trie_depth = 0;     // l1; 0 = no trie
    uint32_t bf_prefix_len = 0;  // l2; 0 = no Bloom filter
  };

  /// Self-designing build: models the design space on `sample_queries`
  /// (which must be empty ranges) and instantiates the best configuration
  /// within `bits_per_key * keys` bits. This is the paper's headline
  /// construction path.
  static std::unique_ptr<ProteusFilter> BuildSelfDesigned(
      const std::vector<uint64_t>& sorted_keys,
      const std::vector<RangeQuery>& sample_queries, double bits_per_key);

  /// As above but reusing an already-gathered model (e.g. when sweeping
  /// memory budgets over one workload).
  static std::unique_ptr<ProteusFilter> BuildFromModel(
      const std::vector<uint64_t>& sorted_keys, const CpfprModel& model,
      double bits_per_key);

  /// Forced-configuration build, used for the Figure 4c design-space sweep
  /// and for tests. The Bloom filter receives whatever remains of the
  /// budget after the (measured) trie.
  static std::unique_ptr<ProteusFilter> BuildWithConfig(
      const std::vector<uint64_t>& sorted_keys, Config config,
      double bits_per_key);

  bool MayContain(uint64_t lo, uint64_t hi) const override;
  uint64_t SizeBits() const override;
  std::string Name() const override;

  const Config& config() const { return config_; }
  double modeled_fpr() const { return modeled_fpr_; }

 private:
  ProteusFilter() = default;

  Config config_;
  BitTrie trie_;
  PrefixBloom bf_;
  double modeled_fpr_ = -1.0;  // < 0 when built with a forced config
};

}  // namespace proteus

#endif  // PROTEUS_CORE_PROTEUS_H_
