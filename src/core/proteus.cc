#include "core/proteus.h"

#include <algorithm>

#include "core/filter_builder.h"
#include "model/cpfpr.h"
#include "util/bits.h"
#include "util/serial.h"

namespace proteus {
namespace {

bool ParseBudget(const FilterSpec& spec, const FilterBuilder& builder,
                 double* bpk, uint64_t* budget, std::string* error) {
  if (!spec.GetDouble("bpk", 12.0, bpk, error)) return false;
  if (*bpk <= 0.0) {
    if (error != nullptr) *error = "proteus bpk must be positive";
    return false;
  }
  *budget = static_cast<uint64_t>(
      *bpk * static_cast<double>(builder.keys().size()));
  return true;
}

}  // namespace

std::unique_ptr<ProteusFilter> ProteusFilter::BuildFromSpec(
    const FilterSpec& spec, FilterBuilder& builder, std::string* error) {
  if (!spec.ExpectKeys({"bpk", "trie", "bloom"}, error)) return nullptr;
  double bpk;
  uint64_t budget;
  if (!ParseBudget(spec, builder, &bpk, &budget, error)) return nullptr;

  if (spec.Has("trie") || spec.Has("bloom")) {
    Config config;
    if (!spec.GetUint32("trie", 0, &config.trie_depth, error) ||
        !spec.GetUint32("bloom", 0, &config.bf_prefix_len, error)) {
      return nullptr;
    }
    if (config.trie_depth > 64 || config.bf_prefix_len > 64) {
      if (error != nullptr) *error = "proteus trie/bloom lengths must be <= 64";
      return nullptr;
    }
    return BuildWithConfig(builder.keys(), config, bpk);
  }

  const CpfprModel* model = builder.DesignOrNull();
  if (model == nullptr) {
    // No workload signal: default to a full-key prefix Bloom filter.
    return BuildWithConfig(builder.keys(), Config{0, 64}, bpk);
  }
  ProteusDesign design = model->SelectProteus(budget);
  auto filter = BuildWithConfig(
      builder.keys(), Config{design.trie_depth, design.bf_prefix_len}, bpk);
  filter->modeled_fpr_ = design.expected_fpr;
  return filter;
}

std::unique_ptr<ProteusFilter> ProteusFilter::BuildWithConfig(
    const std::vector<uint64_t>& sorted_keys, Config config,
    double bits_per_key) {
  auto filter = std::unique_ptr<ProteusFilter>(new ProteusFilter());
  filter->config_ = config;
  uint64_t budget = static_cast<uint64_t>(
      bits_per_key * static_cast<double>(sorted_keys.size()));
  if (config.trie_depth > 0) {
    filter->trie_.Build(UniquePrefixes(sorted_keys, config.trie_depth),
                        config.trie_depth);
  }
  if (config.bf_prefix_len > 0) {
    uint64_t trie_bits = filter->trie_.SizeBits();
    uint64_t bf_bits = budget > trie_bits ? budget - trie_bits : 64;
    filter->bf_ =
        PrefixBloom(sorted_keys, bf_bits, config.bf_prefix_len);
  }
  return filter;
}

bool ProteusFilter::MayContain(uint64_t lo, uint64_t hi) const {
  const uint32_t l1 = config_.trie_depth;
  const uint32_t l2 = config_.bf_prefix_len;
  if (l1 == 0) {
    if (l2 == 0) return true;  // no structure: always positive
    return bf_.MayContain(lo, hi);
  }
  const uint64_t from = PrefixBits64(lo, l1);
  const uint64_t to = PrefixBits64(hi, l1);
  uint64_t v;
  if (!trie_.SeekGeq(from, &v)) return false;
  while (v <= to) {
    if (l2 == 0) return true;  // trie hit and nothing to refine with
    // Probe the l2-prefixes of Q that fall under the matched l1-prefix.
    uint64_t region_lo = PrefixRangeLo64(v, l1);
    uint64_t region_hi = PrefixRangeHi64(v, l1);
    uint64_t probe_lo = std::max(lo, region_lo);
    uint64_t probe_hi = std::min(hi, region_hi);
    uint64_t first = PrefixBits64(probe_lo, l2);
    uint64_t last = PrefixBits64(probe_hi, l2);
    if (last - first + 1 > PrefixBloom::kDefaultProbeLimit) return true;
    for (uint64_t p = first;; ++p) {
      if (bf_.ProbePrefix(p)) return true;
      if (p == last) break;
    }
    // Advance to the next trie leaf.
    if (v == to) break;
    uint64_t max_prefix =
        l1 == 64 ? ~uint64_t{0} : ((uint64_t{1} << l1) - 1);
    if (v == max_prefix) break;
    if (!trie_.SeekGeq(v + 1, &v)) break;
  }
  return false;
}

uint64_t ProteusFilter::SizeBits() const {
  return trie_.SizeBits() + bf_.SizeBits();
}

std::string ProteusFilter::Name() const {
  return "Proteus(t" + std::to_string(config_.trie_depth) + ",b" +
         std::to_string(config_.bf_prefix_len) + ")";
}

void ProteusFilter::SerializePayload(std::string* out) const {
  PutFixed32(out, config_.trie_depth);
  PutFixed32(out, config_.bf_prefix_len);
  PutFixed32(out, modeled_fpr_.has_value() ? 1 : 0);
  PutDouble(out, modeled_fpr_.value_or(0.0));
  trie_.AppendTo(out);
  bf_.AppendTo(out);
}

std::unique_ptr<ProteusFilter> ProteusFilter::DeserializePayload(
    std::string_view* in) {
  auto filter = std::unique_ptr<ProteusFilter>(new ProteusFilter());
  uint32_t has_fpr;
  double fpr;
  if (!GetFixed32(in, &filter->config_.trie_depth) ||
      !GetFixed32(in, &filter->config_.bf_prefix_len) ||
      !GetFixed32(in, &has_fpr) || !GetDouble(in, &fpr) ||
      !BitTrie::ParseFrom(in, &filter->trie_) ||
      !PrefixBloom::ParseFrom(in, &filter->bf_)) {
    return nullptr;
  }
  if (has_fpr != 0) filter->modeled_fpr_ = fpr;
  return filter;
}

}  // namespace proteus
