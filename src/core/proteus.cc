#include "core/proteus.h"

#include <algorithm>

#include "core/filter_builder.h"
#include "model/cpfpr.h"
#include "util/bits.h"
#include "util/serial.h"

namespace proteus {
namespace {

bool ParseBudget(const FilterSpec& spec, const FilterBuilder& builder,
                 double* bpk, uint64_t* budget, std::string* error) {
  if (!spec.GetDouble("bpk", 12.0, bpk, error)) return false;
  if (*bpk <= 0.0) {
    if (error != nullptr) *error = "proteus bpk must be positive";
    return false;
  }
  *budget = static_cast<uint64_t>(
      *bpk * static_cast<double>(builder.keys().size()));
  return true;
}

}  // namespace

std::unique_ptr<ProteusFilter> ProteusFilter::BuildFromSpec(
    const FilterSpec& spec, FilterBuilder& builder, std::string* error) {
  if (!spec.ExpectKeys({"bpk", "trie", "bloom", "blocked"}, error)) {
    return nullptr;
  }
  double bpk;
  uint64_t budget;
  if (!ParseBudget(spec, builder, &bpk, &budget, error)) return nullptr;
  uint32_t blocked;
  if (!spec.GetUint32("blocked", 1, &blocked, error)) return nullptr;
  if (blocked > 1) {
    if (error != nullptr) *error = "proteus blocked must be 0 or 1";
    return nullptr;
  }
  const BloomProbeMode mode =
      blocked != 0 ? BloomProbeMode::kBlocked : BloomProbeMode::kStandard;

  if (spec.Has("trie") || spec.Has("bloom")) {
    Config config;
    if (!spec.GetUint32("trie", 0, &config.trie_depth, error) ||
        !spec.GetUint32("bloom", 0, &config.bf_prefix_len, error)) {
      return nullptr;
    }
    if (config.trie_depth > 64 || config.bf_prefix_len > 64) {
      if (error != nullptr) *error = "proteus trie/bloom lengths must be <= 64";
      return nullptr;
    }
    return BuildWithConfig(builder.keys(), config, bpk, blocked != 0);
  }

  const CpfprModel* model = builder.DesignOrNull();
  if (model == nullptr) {
    // No workload signal: default to a full-key prefix Bloom filter.
    return BuildWithConfig(builder.keys(), Config{0, 64}, bpk, blocked != 0);
  }
  ProteusDesign design = model->SelectProteus(budget, mode);
  auto filter =
      BuildWithConfig(builder.keys(),
                      Config{design.trie_depth, design.bf_prefix_len}, bpk,
                      blocked != 0);
  filter->modeled_fpr_ = design.expected_fpr;
  return filter;
}

std::unique_ptr<ProteusFilter> ProteusFilter::BuildWithConfig(
    const std::vector<uint64_t>& sorted_keys, Config config,
    double bits_per_key, bool blocked_bloom) {
  auto filter = std::unique_ptr<ProteusFilter>(new ProteusFilter());
  filter->config_ = config;
  uint64_t budget = static_cast<uint64_t>(
      bits_per_key * static_cast<double>(sorted_keys.size()));
  if (config.trie_depth > 0) {
    filter->trie_.Build(UniquePrefixes(sorted_keys, config.trie_depth),
                        config.trie_depth);
  }
  if (config.bf_prefix_len > 0) {
    uint64_t trie_bits = filter->trie_.SizeBits();
    uint64_t bf_bits = budget > trie_bits ? budget - trie_bits : 64;
    filter->bf_ = PrefixBloom(sorted_keys, bf_bits, config.bf_prefix_len,
                              blocked_bloom);
  }
  return filter;
}

bool ProteusFilter::MayContain(uint64_t lo, uint64_t hi) const {
  const uint32_t l1 = config_.trie_depth;
  const uint32_t l2 = config_.bf_prefix_len;
  if (l1 == 0) {
    if (l2 == 0) return true;  // no structure: always positive
    return bf_.MayContain(lo, hi);
  }
  // One cursor serves the whole leaf walk: Next() resumes from the current
  // leaf instead of re-descending from the root per visited leaf. Stack-
  // allocated and allocation-free for integer tries.
  BitTrie::Cursor cur(&trie_);
  if (!cur.SeekGeq(PrefixBits64(lo, l1))) return false;
  return WalkFrom(&cur, lo, hi);
}

bool ProteusFilter::WalkFrom(BitTrie::Cursor* cur, uint64_t lo,
                             uint64_t hi) const {
  const uint32_t l1 = config_.trie_depth;
  const uint32_t l2 = config_.bf_prefix_len;
  const uint64_t to = PrefixBits64(hi, l1);
  while (cur->value() <= to) {
    if (l2 == 0) return true;  // trie hit and nothing to refine with
    // Probe the l2-prefixes of Q that fall under the matched l1-prefix.
    const uint64_t v = cur->value();
    uint64_t region_lo = PrefixRangeLo64(v, l1);
    uint64_t region_hi = PrefixRangeHi64(v, l1);
    uint64_t probe_lo = std::max(lo, region_lo);
    uint64_t probe_hi = std::min(hi, region_hi);
    uint64_t first = PrefixBits64(probe_lo, l2);
    uint64_t last = PrefixBits64(probe_hi, l2);
    // No +1: a full-domain count wraps to 0 and must still trip the limit.
    if (last - first >= PrefixBloom::kDefaultProbeLimit) return true;
    if (bf_.ProbeRange(first, last)) return true;
    // Advance to the next trie leaf.
    if (v == to || !cur->Next()) break;
  }
  return false;
}

void ProteusFilter::MultiMayContain(const uint64_t* lo, const uint64_t* hi,
                                    size_t n, uint8_t* out) const {
  const uint32_t l1 = config_.trie_depth;
  if (l1 == 0) {
    if (config_.bf_prefix_len == 0) {
      for (size_t i = 0; i < n; ++i) out[i] = 1;
      return;
    }
    bf_.MultiMayContain(lo, hi, n, out);
    return;
  }
  // Batch the trie descents kChunk queries at a time; each positioned
  // cursor then finishes its (usually single-leaf) walk independently.
  constexpr size_t kChunk = 64;
  uint64_t targets[kChunk];
  std::vector<BitTrie::Cursor> cursors;
  cursors.reserve(std::min(n, kChunk));
  for (size_t q = 0; q < std::min(n, kChunk); ++q) {
    cursors.emplace_back(&trie_);
  }
  for (size_t base = 0; base < n; base += kChunk) {
    const size_t m = std::min(kChunk, n - base);
    for (size_t q = 0; q < m; ++q) {
      targets[q] = PrefixBits64(lo[base + q], l1);
    }
    trie_.MultiSeekGeq(targets, m, cursors.data());
    for (size_t q = 0; q < m; ++q) {
      out[base + q] =
          cursors[q].valid() &&
                  WalkFrom(&cursors[q], lo[base + q], hi[base + q])
              ? 1
              : 0;
    }
  }
}

uint64_t ProteusFilter::SizeBits() const {
  return trie_.SizeBits() + bf_.SizeBits();
}

std::string ProteusFilter::Name() const {
  return "Proteus(t" + std::to_string(config_.trie_depth) + ",b" +
         std::to_string(config_.bf_prefix_len) + ")";
}

void ProteusFilter::SerializePayload(std::string* out) const {
  PutFixed32(out, config_.trie_depth);
  PutFixed32(out, config_.bf_prefix_len);
  PutFixed32(out, modeled_fpr_.has_value() ? 1 : 0);
  PutDouble(out, modeled_fpr_.value_or(0.0));
  trie_.AppendTo(out);
  bf_.AppendTo(out);
}

std::unique_ptr<ProteusFilter> ProteusFilter::DeserializePayload(
    std::string_view* in) {
  auto filter = std::unique_ptr<ProteusFilter>(new ProteusFilter());
  uint32_t has_fpr;
  double fpr;
  if (!GetFixed32(in, &filter->config_.trie_depth) ||
      !GetFixed32(in, &filter->config_.bf_prefix_len) ||
      !GetFixed32(in, &has_fpr) || !GetDouble(in, &fpr) ||
      !BitTrie::ParseFrom(in, &filter->trie_) ||
      !PrefixBloom::ParseFrom(in, &filter->bf_)) {
    return nullptr;
  }
  if (has_fpr != 0) filter->modeled_fpr_ = fpr;
  return filter;
}

}  // namespace proteus
