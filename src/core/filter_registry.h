// FilterRegistry: the single catalogue of filter families.
//
// Each family registers once — a spec name, a stable serialization id, and
// build/deserialize hooks — and every consumer (the LSM filter policies,
// the benchmark harnesses, the examples, Filter::Deserialize) selects
// filters through spec strings, so adding a filter family needs zero
// bench/LSM plumbing:
//
//   auto f = FilterRegistry::Global().Create("proteus:bpk=12", keys, samples);
//   auto g = FilterRegistry::Global().CreateStr("surf-str:mode=real,suffix=8",
//                                               str_keys);
//
// Built-in families (see filter_registry.cc for parameters):
//   proteus, onepbf (1pbf), twopbf (2pbf), rosetta, surf, bloom   — integer
//   proteus-str, surf-str, bloom-str                              — string

#ifndef PROTEUS_CORE_FILTER_REGISTRY_H_
#define PROTEUS_CORE_FILTER_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/filter_spec.h"
#include "core/query.h"
#include "core/range_filter.h"

namespace proteus {

class FilterBuilder;
class StrFilterBuilder;

/// One registered filter family. Build hooks receive the parsed spec and a
/// FilterBuilder holding the keys, the sampled queries, and the (lazily
/// computed, shared) CPFPR model; they return null and fill `error` on bad
/// parameters.
struct FilterFamily {
  using IntBuildFn = std::unique_ptr<RangeFilter> (*)(const FilterSpec& spec,
                                                      FilterBuilder& builder,
                                                      std::string* error);
  using StrBuildFn = std::unique_ptr<StrRangeFilter> (*)(
      const FilterSpec& spec, StrFilterBuilder& builder, std::string* error);
  /// Parses a Serialize() payload (header already consumed); null on
  /// corruption.
  using DeserializeFn = std::unique_ptr<Filter> (*)(std::string_view* in);

  std::string name;                  // canonical spec name
  std::vector<std::string> aliases;  // extra spec names
  uint32_t family_id = 0;            // stable wire id; 0 = not serializable
  std::string help;                  // one-line parameter summary
  IntBuildFn build_int = nullptr;
  StrBuildFn build_str = nullptr;
  DeserializeFn deserialize = nullptr;
};

class FilterRegistry {
 public:
  /// The process-wide registry, with all built-in families registered.
  static FilterRegistry& Global();

  /// Registers a family. Returns false (family not added) if its name, an
  /// alias, or a nonzero family id is already taken. Not thread-safe;
  /// register custom families during startup.
  bool Register(FilterFamily family);

  const FilterFamily* Find(std::string_view name) const;
  const FilterFamily* FindById(uint32_t family_id) const;

  /// Canonical names of all registered families.
  std::vector<std::string> FamilyNames() const;

  /// Builds an integer-key filter from a spec string. `samples` are the
  /// sampled empty queries self-designing families model; forced
  /// configurations and model-free families ignore them.
  std::unique_ptr<RangeFilter> Create(
      std::string_view spec, const std::vector<uint64_t>& sorted_keys,
      const std::vector<RangeQuery>& samples = {},
      std::string* error = nullptr) const;

  /// Builds a string-key filter from a spec string.
  std::unique_ptr<StrRangeFilter> CreateStr(
      std::string_view spec, const std::vector<std::string>& sorted_keys,
      const std::vector<StrRangeQuery>& samples = {},
      std::string* error = nullptr) const;

 private:
  FilterRegistry();  // registers the built-in families

  std::vector<FilterFamily> families_;
};

}  // namespace proteus

#endif  // PROTEUS_CORE_FILTER_REGISTRY_H_
