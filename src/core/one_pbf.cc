#include "core/one_pbf.h"

namespace proteus {

std::unique_ptr<OnePbfFilter> OnePbfFilter::BuildSelfDesigned(
    const std::vector<uint64_t>& sorted_keys,
    const std::vector<RangeQuery>& sample_queries, double bits_per_key) {
  CpfprModel model(sorted_keys, sample_queries);
  return BuildFromModel(sorted_keys, model, bits_per_key);
}

std::unique_ptr<OnePbfFilter> OnePbfFilter::BuildFromModel(
    const std::vector<uint64_t>& sorted_keys, const CpfprModel& model,
    double bits_per_key) {
  uint64_t budget = static_cast<uint64_t>(
      bits_per_key * static_cast<double>(sorted_keys.size()));
  OnePbfDesign design = model.SelectOnePbf(budget);
  auto filter = BuildWithConfig(sorted_keys, design.prefix_len, bits_per_key);
  filter->modeled_fpr_ = design.expected_fpr;
  return filter;
}

std::unique_ptr<OnePbfFilter> OnePbfFilter::BuildWithConfig(
    const std::vector<uint64_t>& sorted_keys, uint32_t prefix_len,
    double bits_per_key) {
  auto filter = std::unique_ptr<OnePbfFilter>(new OnePbfFilter());
  uint64_t budget = static_cast<uint64_t>(
      bits_per_key * static_cast<double>(sorted_keys.size()));
  filter->bf_ = PrefixBloom(sorted_keys, budget, prefix_len);
  return filter;
}

bool OnePbfFilter::MayContain(uint64_t lo, uint64_t hi) const {
  return bf_.MayContain(lo, hi);
}

}  // namespace proteus
