#include "core/one_pbf.h"

#include "core/filter_builder.h"
#include "model/cpfpr.h"
#include "util/serial.h"

namespace proteus {

std::unique_ptr<OnePbfFilter> OnePbfFilter::BuildFromSpec(
    const FilterSpec& spec, FilterBuilder& builder, std::string* error) {
  if (!spec.ExpectKeys({"bpk", "prefix", "blocked"}, error)) return nullptr;
  double bpk;
  if (!spec.GetDouble("bpk", 12.0, &bpk, error)) return nullptr;
  if (bpk <= 0.0) {
    if (error != nullptr) *error = "onepbf bpk must be positive";
    return nullptr;
  }
  uint32_t blocked;
  if (!spec.GetUint32("blocked", 1, &blocked, error)) return nullptr;
  if (blocked > 1) {
    if (error != nullptr) *error = "onepbf blocked must be 0 or 1";
    return nullptr;
  }

  if (spec.Has("prefix")) {
    uint32_t prefix_len;
    if (!spec.GetUint32("prefix", 64, &prefix_len, error)) return nullptr;
    if (prefix_len == 0 || prefix_len > 64) {
      if (error != nullptr) *error = "onepbf prefix must be in [1, 64]";
      return nullptr;
    }
    return BuildWithConfig(builder.keys(), prefix_len, bpk, blocked != 0);
  }

  const CpfprModel* model = builder.DesignOrNull();
  if (model == nullptr) {
    // Full-key Bloom fallback.
    return BuildWithConfig(builder.keys(), 64, bpk, blocked != 0);
  }
  uint64_t budget = static_cast<uint64_t>(
      bpk * static_cast<double>(builder.keys().size()));
  OnePbfDesign design = model->SelectOnePbf(
      budget, blocked != 0 ? BloomProbeMode::kBlocked
                           : BloomProbeMode::kStandard);
  auto filter =
      BuildWithConfig(builder.keys(), design.prefix_len, bpk, blocked != 0);
  filter->modeled_fpr_ = design.expected_fpr;
  return filter;
}

std::unique_ptr<OnePbfFilter> OnePbfFilter::BuildWithConfig(
    const std::vector<uint64_t>& sorted_keys, uint32_t prefix_len,
    double bits_per_key, bool blocked_bloom) {
  auto filter = std::unique_ptr<OnePbfFilter>(new OnePbfFilter());
  uint64_t budget = static_cast<uint64_t>(
      bits_per_key * static_cast<double>(sorted_keys.size()));
  filter->bf_ = PrefixBloom(sorted_keys, budget, prefix_len, blocked_bloom);
  return filter;
}

bool OnePbfFilter::MayContain(uint64_t lo, uint64_t hi) const {
  return bf_.MayContain(lo, hi);
}

void OnePbfFilter::MultiMayContain(const uint64_t* lo, const uint64_t* hi,
                                   size_t n, uint8_t* out) const {
  // Narrow queries' prefixes are flattened across query boundaries and
  // resolved through the multi-query kernel; see
  // PrefixBloom::MultiMayContain.
  bf_.MultiMayContain(lo, hi, n, out);
}

void OnePbfFilter::SerializePayload(std::string* out) const {
  PutFixed32(out, modeled_fpr_.has_value() ? 1 : 0);
  PutDouble(out, modeled_fpr_.value_or(0.0));
  bf_.AppendTo(out);
}

std::unique_ptr<OnePbfFilter> OnePbfFilter::DeserializePayload(
    std::string_view* in) {
  auto filter = std::unique_ptr<OnePbfFilter>(new OnePbfFilter());
  uint32_t has_fpr;
  double fpr;
  if (!GetFixed32(in, &has_fpr) || !GetDouble(in, &fpr) ||
      !PrefixBloom::ParseFrom(in, &filter->bf_)) {
    return nullptr;
  }
  if (has_fpr != 0) filter->modeled_fpr_ = fpr;
  return filter;
}

}  // namespace proteus
