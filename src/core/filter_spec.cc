#include "core/filter_spec.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace proteus {

std::string FormatSpecDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

namespace {

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

bool FilterSpec::Parse(std::string_view spec, FilterSpec* out,
                       std::string* error) {
  *out = FilterSpec();
  if (spec.empty()) {
    SetError(error, "empty filter spec");
    return false;
  }
  size_t colon = spec.find(':');
  std::string_view family = spec.substr(0, colon);
  if (family.empty()) {
    SetError(error, "filter spec has an empty family name");
    return false;
  }
  if (family.find_first_of(",=") != std::string_view::npos) {
    SetError(error, "filter family name may not contain ',' or '=': \"" +
                        std::string(family) + "\"");
    return false;
  }
  out->family_.assign(family);
  if (colon == std::string_view::npos) return true;

  std::string_view rest = spec.substr(colon + 1);
  if (rest.empty()) {
    SetError(error, "filter spec ends with ':' but has no parameters");
    return false;
  }
  while (!rest.empty()) {
    size_t comma = rest.find(',');
    std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view()
                                           : rest.substr(comma + 1);
    size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      SetError(error, "filter spec parameter \"" + std::string(item) +
                          "\" is missing '='");
      return false;
    }
    std::string_view key = item.substr(0, eq);
    std::string_view value = item.substr(eq + 1);
    if (key.empty()) {
      SetError(error, "filter spec has a parameter with an empty key");
      return false;
    }
    if (out->Has(key)) {
      SetError(error,
               "duplicate filter spec parameter \"" + std::string(key) + "\"");
      return false;
    }
    out->params_.emplace_back(std::string(key), std::string(value));
  }
  return true;
}

const std::string* FilterSpec::FindValue(std::string_view key) const {
  for (const auto& [k, v] : params_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool FilterSpec::Has(std::string_view key) const {
  return FindValue(key) != nullptr;
}

void FilterSpec::Set(std::string_view key, std::string_view value) {
  for (auto& [k, v] : params_) {
    if (k == key) {
      v.assign(value);
      return;
    }
  }
  params_.emplace_back(std::string(key), std::string(value));
}

std::string FilterSpec::GetString(std::string_view key,
                                  std::string_view def) const {
  const std::string* v = FindValue(key);
  return v != nullptr ? *v : std::string(def);
}

bool FilterSpec::GetDouble(std::string_view key, double def, double* out,
                           std::string* error) const {
  const std::string* v = FindValue(key);
  if (v == nullptr) {
    *out = def;
    return true;
  }
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(v->c_str(), &end);
  if (v->empty() || end != v->c_str() + v->size() || errno == ERANGE) {
    SetError(error, "filter spec parameter \"" + std::string(key) + "=" + *v +
                        "\" is not a number");
    return false;
  }
  *out = parsed;
  return true;
}

bool FilterSpec::GetUint32(std::string_view key, uint32_t def, uint32_t* out,
                           std::string* error) const {
  const std::string* v = FindValue(key);
  if (v == nullptr) {
    *out = def;
    return true;
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v->c_str(), &end, 10);
  if (v->empty() || v->front() == '-' || end != v->c_str() + v->size() ||
      errno == ERANGE || parsed > UINT32_MAX) {
    SetError(error, "filter spec parameter \"" + std::string(key) + "=" + *v +
                        "\" is not an unsigned integer");
    return false;
  }
  *out = static_cast<uint32_t>(parsed);
  return true;
}

bool FilterSpec::ExpectKeys(std::initializer_list<std::string_view> allowed,
                            std::string* error) const {
  for (const auto& [k, v] : params_) {
    (void)v;
    bool known = false;
    for (std::string_view a : allowed) {
      if (k == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::string message = "unknown parameter \"" + k + "\" for filter \"" +
                            family_ + "\" (expected one of:";
      for (std::string_view a : allowed) {
        message += ' ';
        message += a;
      }
      message += ')';
      SetError(error, std::move(message));
      return false;
    }
  }
  return true;
}

std::string FilterSpec::ToString() const {
  std::string out = family_;
  for (size_t i = 0; i < params_.size(); ++i) {
    out += i == 0 ? ':' : ',';
    out += params_[i].first;
    out += '=';
    out += params_[i].second;
  }
  return out;
}

}  // namespace proteus
