// The common base class of every filter in the library.
//
// Filter carries what is shared by the integer and string interfaces
// (previously duplicated between RangeFilter and StrRangeFilter in
// range_filter.h): size accounting, naming, and serialization. The query
// interfaces themselves live in the two kind-specific subclasses declared
// in core/range_filter.h.
//
// Serialization wire format (versioned):
//   u32 magic "PFLT" | u32 version | u32 family id | family payload
// Each filter family registers a payload deserializer with the
// FilterRegistry under its family id; Filter::Deserialize reads the header
// and dispatches through the registry, so persisting an SST's filter block
// and reloading it never rebuilds from keys.

#ifndef PROTEUS_CORE_FILTER_H_
#define PROTEUS_CORE_FILTER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "util/serial.h"

namespace proteus {

class Filter {
 public:
  /// Which key domain the filter answers queries over.
  enum class KeyKind { kInt, kStr };

  static constexpr uint32_t kMagic = 0x544C4650;  // "PFLT", little-endian
  static constexpr uint32_t kVersion = 1;

  virtual ~Filter() = default;

  virtual KeyKind kind() const = 0;

  /// Memory footprint of the filter in bits (all components included).
  virtual uint64_t SizeBits() const = 0;

  /// Human-readable filter name, e.g. "Proteus(t16,b48)" or "SuRF-Real8".
  virtual std::string Name() const = 0;

  /// Bits per key, given the number of keys the filter was built on.
  double Bpk(uint64_t n_keys) const {
    return n_keys == 0 ? 0.0 : static_cast<double>(SizeBits()) / n_keys;
  }

  /// The FPR the design model predicted for this filter under the sample
  /// it was built from, when the family self-designs (Proteus, 1PBF,
  /// 2PBF). Families without a model (Bloom, SuRF, Rosetta) return
  /// nullopt. The LSM compares this against the observed per-SST FPR to
  /// detect workload drift.
  virtual std::optional<double> ModeledFpr() const { return std::nullopt; }

  /// Stable identifier of the filter family on the wire (see
  /// FilterRegistry for the id <-> family mapping).
  virtual uint32_t FamilyId() const = 0;

  /// Appends the family payload (everything after the header).
  virtual void SerializePayload(std::string* out) const = 0;

  /// Appends the versioned header plus the family payload.
  void Serialize(std::string* out) const {
    PutFixed32(out, kMagic);
    PutFixed32(out, kVersion);
    PutFixed32(out, FamilyId());
    SerializePayload(out);
  }

  /// Reconstructs a filter from Serialize() output. Returns null (and
  /// fills `error` when given) on a bad header, unknown family, or corrupt
  /// payload. Implemented in filter_registry.cc.
  static std::unique_ptr<Filter> Deserialize(std::string_view in,
                                             std::string* error = nullptr);
};

}  // namespace proteus

#endif  // PROTEUS_CORE_FILTER_H_
