// Range query value types shared by the model, filters, workloads, and
// benchmarks. Ranges are inclusive on both ends: [lo, hi].

#ifndef PROTEUS_CORE_QUERY_H_
#define PROTEUS_CORE_QUERY_H_

#include <cstdint>
#include <string>

namespace proteus {

struct RangeQuery {
  uint64_t lo = 0;
  uint64_t hi = 0;
};

struct StrRangeQuery {
  std::string lo;
  std::string hi;
};

}  // namespace proteus

#endif  // PROTEUS_CORE_QUERY_H_
