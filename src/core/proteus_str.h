// Proteus over variable-length string keys (Section 7): the same hybrid
// trie + prefix Bloom filter, with bit-level prefixes of the padded key
// space and lexicographic order.
//
// Spec parameters: bpk (default 12); max_key_bits (default: longest key,
// rounded up to whole bytes); stride (coarsens the Bloom-prefix search
// grid: grid = 128 / stride); trie/bloom force the configuration;
// blocked=0|1 selects cache-line-blocked Bloom probes (default 1).

#ifndef PROTEUS_CORE_PROTEUS_STR_H_
#define PROTEUS_CORE_PROTEUS_STR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bloom/prefix_bloom.h"
#include "core/filter_spec.h"
#include "core/query.h"
#include "core/range_filter.h"
#include "model/cpfpr_str.h"
#include "trie/bit_trie.h"

namespace proteus {

class StrFilterBuilder;

class ProteusStrFilter : public StrRangeFilter {
 public:
  static constexpr uint32_t kFamilyId = 7;

  struct Config {
    uint32_t trie_depth = 0;     // bits; 0 = no trie
    uint32_t bf_prefix_len = 0;  // bits; 0 = no Bloom filter
    uint32_t max_key_bits = 0;
  };

  /// Registry/StrFilterBuilder hook.
  static std::unique_ptr<ProteusStrFilter> BuildFromSpec(
      const FilterSpec& spec, StrFilterBuilder& builder, std::string* error);

  /// Self-designing build over sorted string keys and empty sample
  /// queries. `max_key_bits` bounds the padded key space; `model_options`
  /// controls the coarse design grid (Section 7.2).
  static std::unique_ptr<ProteusStrFilter> BuildSelfDesigned(
      const std::vector<std::string>& sorted_keys,
      const std::vector<StrRangeQuery>& sample_queries, double bits_per_key,
      uint32_t max_key_bits, StrCpfprOptions model_options = StrCpfprOptions(),
      bool blocked_bloom = false);

  /// Self-designing build over an already-derived model (the
  /// StrFilterBuilder cache hands the same model to every build with the
  /// same geometry instead of re-deriving it per build).
  static std::unique_ptr<ProteusStrFilter> BuildFromModel(
      const std::vector<std::string>& sorted_keys, const StrCpfprModel& model,
      double bits_per_key, bool blocked_bloom = false);

  static std::unique_ptr<ProteusStrFilter> BuildWithConfig(
      const std::vector<std::string>& sorted_keys, Config config,
      double bits_per_key, bool blocked_bloom = false);

  bool MayContain(std::string_view lo, std::string_view hi) const override;
  uint64_t SizeBits() const override;
  std::string Name() const override;

  uint32_t FamilyId() const override { return kFamilyId; }
  void SerializePayload(std::string* out) const override;
  static std::unique_ptr<ProteusStrFilter> DeserializePayload(
      std::string_view* in);

  const Config& config() const { return config_; }
  std::optional<double> modeled_fpr() const { return modeled_fpr_; }
  std::optional<double> ModeledFpr() const override { return modeled_fpr_; }

 private:
  ProteusStrFilter() = default;

  Config config_;
  StrBitTrie trie_;
  StrPrefixBloom bf_;
  std::optional<double> modeled_fpr_;
};

}  // namespace proteus

#endif  // PROTEUS_CORE_PROTEUS_STR_H_
