#include "core/filter_builder.h"

#include "core/filter_registry.h"
#include "model/cpfpr.h"
#include "model/cpfpr_str.h"

namespace proteus {
namespace {

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

const FilterFamily* Resolve(const FilterSpec& spec, std::string* error) {
  const FilterFamily* family = FilterRegistry::Global().Find(spec.family());
  if (family == nullptr) {
    std::string known;
    for (const std::string& name : FilterRegistry::Global().FamilyNames()) {
      known += known.empty() ? "" : ", ";
      known += name;
    }
    SetError(error, "unknown filter family \"" + spec.family() +
                        "\" (registered: " + known + ")");
  }
  return family;
}

}  // namespace

FilterBuilder::FilterBuilder(const std::vector<uint64_t>& sorted_keys)
    : keys_(sorted_keys) {}

FilterBuilder::~FilterBuilder() = default;

FilterBuilder& FilterBuilder::Sample(const std::vector<RangeQuery>& queries) {
  samples_.insert(samples_.end(), queries.begin(), queries.end());
  model_.reset();
  return *this;
}

const CpfprModel& FilterBuilder::Design() {
  if (model_ == nullptr) {
    model_ = std::make_unique<CpfprModel>(keys_, samples_);
  }
  return *model_;
}

const CpfprModel* FilterBuilder::DesignOrNull() {
  if (samples_.empty()) return nullptr;
  return &Design();
}

std::unique_ptr<RangeFilter> FilterBuilder::Build(std::string_view spec,
                                                  std::string* error) {
  FilterSpec parsed;
  if (!FilterSpec::Parse(spec, &parsed, error)) return nullptr;
  return Build(parsed, error);
}

std::unique_ptr<RangeFilter> FilterBuilder::Build(const FilterSpec& spec,
                                                  std::string* error) {
  const FilterFamily* family = Resolve(spec, error);
  if (family == nullptr) return nullptr;
  if (family->build_int == nullptr) {
    SetError(error, "filter family \"" + spec.family() +
                        "\" has no integer-key builder");
    return nullptr;
  }
  return family->build_int(spec, *this, error);
}

StrFilterBuilder::StrFilterBuilder(const std::vector<std::string>& sorted_keys)
    : keys_(sorted_keys) {}

StrFilterBuilder::~StrFilterBuilder() = default;

StrFilterBuilder& StrFilterBuilder::Sample(
    const std::vector<StrRangeQuery>& queries) {
  samples_.insert(samples_.end(), queries.begin(), queries.end());
  model_.reset();
  return *this;
}

const StrCpfprModel& StrFilterBuilder::Design(uint32_t max_bits,
                                              const StrCpfprOptions& options) {
  if (model_ == nullptr || model_max_bits_ != max_bits ||
      model_bloom_grid_ != options.bloom_grid ||
      model_trie_grid_ != options.trie_grid) {
    model_ = std::make_unique<StrCpfprModel>(keys_, samples_, max_bits,
                                             options);
    model_max_bits_ = max_bits;
    model_bloom_grid_ = options.bloom_grid;
    model_trie_grid_ = options.trie_grid;
  }
  return *model_;
}

std::unique_ptr<StrRangeFilter> StrFilterBuilder::Build(std::string_view spec,
                                                        std::string* error) {
  FilterSpec parsed;
  if (!FilterSpec::Parse(spec, &parsed, error)) return nullptr;
  return Build(parsed, error);
}

std::unique_ptr<StrRangeFilter> StrFilterBuilder::Build(const FilterSpec& spec,
                                                        std::string* error) {
  const FilterFamily* family = Resolve(spec, error);
  if (family == nullptr) return nullptr;
  if (family->build_str == nullptr) {
    SetError(error, "filter family \"" + spec.family() +
                        "\" has no string-key builder");
    return nullptr;
  }
  return family->build_str(spec, *this, error);
}

}  // namespace proteus
