// Spec strings: the uniform way to name a filter family plus its
// parameters, RocksDB-option-string style.
//
//   "proteus:bpk=12"
//   "surf:mode=real,suffix=8"
//   "rosetta:bpk=22"
//   "proteus:trie=20,bloom=48,bpk=14"   (forced configuration)
//
// Grammar: <family>[:<key>=<value>{,<key>=<value>}]. Family and key names
// are non-empty and may not contain ':', ',', or '='; duplicate keys are
// rejected at parse time. Values are typed lazily: the typed getters
// report malformed values through their error out-param so a bad
// "bpk=fast" fails the build with a message instead of a silent default.

#ifndef PROTEUS_CORE_FILTER_SPEC_H_
#define PROTEUS_CORE_FILTER_SPEC_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace proteus {

/// Formats a double for use as a spec parameter value ("%g": no trailing
/// zeros, round-trips typical bpk values).
std::string FormatSpecDouble(double v);

class FilterSpec {
 public:
  FilterSpec() = default;
  explicit FilterSpec(std::string family) : family_(std::move(family)) {}

  /// Parses a spec string. Returns false (and fills `error` when given)
  /// on an empty spec, empty family/key, a parameter without '=', or a
  /// duplicate key.
  static bool Parse(std::string_view spec, FilterSpec* out,
                    std::string* error = nullptr);

  const std::string& family() const { return family_; }
  const std::vector<std::pair<std::string, std::string>>& params() const {
    return params_;
  }

  bool Has(std::string_view key) const;
  void Set(std::string_view key, std::string_view value);

  /// Raw value lookup; returns `def` when the key is absent.
  std::string GetString(std::string_view key, std::string_view def) const;

  // Typed getters: *out receives the parsed value (or `def` when the key
  // is absent). Returns false and fills `error` when the value is present
  // but malformed.
  bool GetDouble(std::string_view key, double def, double* out,
                 std::string* error = nullptr) const;
  bool GetUint32(std::string_view key, uint32_t def, uint32_t* out,
                 std::string* error = nullptr) const;

  /// Rejects unknown parameter keys (typo guard). Returns false and fills
  /// `error` if a parameter is not in `allowed`.
  bool ExpectKeys(std::initializer_list<std::string_view> allowed,
                  std::string* error = nullptr) const;

  /// Canonical "family:k=v,..." form.
  std::string ToString() const;

 private:
  const std::string* FindValue(std::string_view key) const;

  std::string family_;
  std::vector<std::pair<std::string, std::string>> params_;
};

}  // namespace proteus

#endif  // PROTEUS_CORE_FILTER_SPEC_H_
