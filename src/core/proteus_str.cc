#include "core/proteus_str.h"

#include <algorithm>

#include "core/filter_builder.h"
#include "util/bitstring.h"
#include "util/serial.h"

namespace proteus {

std::unique_ptr<ProteusStrFilter> ProteusStrFilter::BuildFromSpec(
    const FilterSpec& spec, StrFilterBuilder& builder, std::string* error) {
  if (!spec.ExpectKeys({"bpk", "max_key_bits", "stride", "trie_grid", "trie",
                        "bloom", "blocked"},
                       error)) {
    return nullptr;
  }
  double bpk;
  if (!spec.GetDouble("bpk", 12.0, &bpk, error)) return nullptr;
  if (bpk <= 0.0) {
    if (error != nullptr) *error = "proteus-str bpk must be positive";
    return nullptr;
  }
  uint32_t max_key_bits, stride, trie_grid, blocked;
  if (!spec.GetUint32("max_key_bits", 0, &max_key_bits, error) ||
      !spec.GetUint32("stride", 1, &stride, error) ||
      !spec.GetUint32("trie_grid", 0, &trie_grid, error) ||
      !spec.GetUint32("blocked", 1, &blocked, error)) {
    return nullptr;
  }
  if (blocked > 1) {
    if (error != nullptr) *error = "proteus-str blocked must be 0 or 1";
    return nullptr;
  }
  if (max_key_bits == 0) {
    // Default: the longest key bounds the padded key space.
    size_t longest = 0;
    for (const std::string& k : builder.keys()) {
      longest = std::max(longest, k.size());
    }
    max_key_bits = static_cast<uint32_t>(longest * 8);
  }

  if (spec.Has("trie") || spec.Has("bloom")) {
    Config config;
    config.max_key_bits = max_key_bits;
    if (!spec.GetUint32("trie", 0, &config.trie_depth, error) ||
        !spec.GetUint32("bloom", 0, &config.bf_prefix_len, error)) {
      return nullptr;
    }
    return BuildWithConfig(builder.keys(), config, bpk, blocked != 0);
  }

  if (builder.samples().empty()) {
    // No workload signal: default to a full-padded-key prefix Bloom filter.
    return BuildWithConfig(builder.keys(),
                           Config{0, max_key_bits, max_key_bits}, bpk,
                           blocked != 0);
  }
  StrCpfprOptions options;
  options.bloom_grid = std::max<uint32_t>(1, 128 / std::max<uint32_t>(1, stride));
  if (trie_grid > 0) options.trie_grid = trie_grid;  // 0 = model default
  return BuildFromModel(builder.keys(),
                        builder.Design(max_key_bits, options), bpk,
                        blocked != 0);
}

std::unique_ptr<ProteusStrFilter> ProteusStrFilter::BuildSelfDesigned(
    const std::vector<std::string>& sorted_keys,
    const std::vector<StrRangeQuery>& sample_queries, double bits_per_key,
    uint32_t max_key_bits, StrCpfprOptions model_options, bool blocked_bloom) {
  StrCpfprModel model(sorted_keys, sample_queries, max_key_bits,
                      model_options);
  return BuildFromModel(sorted_keys, model, bits_per_key, blocked_bloom);
}

std::unique_ptr<ProteusStrFilter> ProteusStrFilter::BuildFromModel(
    const std::vector<std::string>& sorted_keys, const StrCpfprModel& model,
    double bits_per_key, bool blocked_bloom) {
  uint64_t budget = static_cast<uint64_t>(
      bits_per_key * static_cast<double>(sorted_keys.size()));
  ProteusDesign design = model.SelectProteus(
      budget, blocked_bloom ? BloomProbeMode::kBlocked
                            : BloomProbeMode::kStandard);
  auto filter = BuildWithConfig(
      sorted_keys,
      Config{design.trie_depth, design.bf_prefix_len, model.max_bits()},
      bits_per_key, blocked_bloom);
  filter->modeled_fpr_ = design.expected_fpr;
  return filter;
}

std::unique_ptr<ProteusStrFilter> ProteusStrFilter::BuildWithConfig(
    const std::vector<std::string>& sorted_keys, Config config,
    double bits_per_key, bool blocked_bloom) {
  auto filter = std::unique_ptr<ProteusStrFilter>(new ProteusStrFilter());
  filter->config_ = config;
  uint64_t budget = static_cast<uint64_t>(
      bits_per_key * static_cast<double>(sorted_keys.size()));
  if (config.trie_depth > 0) {
    filter->trie_.Build(StrUniquePrefixes(sorted_keys, config.trie_depth),
                        config.trie_depth);
  }
  if (config.bf_prefix_len > 0) {
    uint64_t trie_bits = filter->trie_.SizeBits();
    uint64_t bf_bits = budget > trie_bits ? budget - trie_bits : 64;
    filter->bf_ = StrPrefixBloom(sorted_keys, bf_bits, config.bf_prefix_len,
                                 blocked_bloom);
  }
  return filter;
}

bool ProteusStrFilter::MayContain(std::string_view lo,
                                  std::string_view hi) const {
  const uint32_t l1 = config_.trie_depth;
  const uint32_t l2 = config_.bf_prefix_len;
  if (l1 == 0) {
    if (l2 == 0) return true;
    return bf_.MayContain(lo, hi);
  }
  std::string from = StrPrefix(lo, l1);
  std::string to = StrPrefix(hi, l1);
  // A cursor walk: each subsequent leaf is one Next() from the current
  // leaf instead of a fresh root descent on the successor prefix.
  StrBitTrie::Cursor cur(&trie_);
  if (!cur.SeekGeq(from)) return false;
  while (cur.value() <= to) {
    const std::string& v = cur.value();
    if (l2 == 0) return true;
    // Probe the l2-prefixes of Q under this trie leaf.
    // Region bounds: v zero-padded (== v under padding semantics) through
    // v followed by all-one bits.
    std::string probe_lo;
    if (StrComparePrefix(lo, v, l1) == 0) {
      probe_lo = StrPrefix(lo, l2);
    } else {
      probe_lo = StrPrefix(v, l2);  // region start: v + zero padding
    }
    std::string probe_hi;
    if (StrComparePrefix(hi, v, l1) == 0) {
      probe_hi = StrPrefix(hi, l2);
    } else {
      // Region end: v's bits then ones up to l2.
      std::string region_end((l2 + 7) / 8, '\xFF');
      for (uint32_t b = 0; b < l1; ++b) {
        if (!StrGetBit(v, b)) {
          region_end[b >> 3] = static_cast<char>(
              static_cast<uint8_t>(region_end[b >> 3]) & ~(1u << (7 - (b & 7))));
        }
      }
      probe_hi = StrPrefix(region_end, l2);
    }
    uint64_t n_probes = StrPrefixCountInRange(probe_lo, probe_hi, l2);
    if (n_probes > StrPrefixBloom::kDefaultProbeLimit) return true;
    if (bf_.ProbeRange(probe_lo, probe_hi)) return true;
    // Next trie leaf.
    if (v == to || !cur.Next()) break;
  }
  return false;
}

uint64_t ProteusStrFilter::SizeBits() const {
  return trie_.SizeBits() + bf_.SizeBits();
}

std::string ProteusStrFilter::Name() const {
  return "Proteus-str(t" + std::to_string(config_.trie_depth) + ",b" +
         std::to_string(config_.bf_prefix_len) + ")";
}

void ProteusStrFilter::SerializePayload(std::string* out) const {
  PutFixed32(out, config_.trie_depth);
  PutFixed32(out, config_.bf_prefix_len);
  PutFixed32(out, config_.max_key_bits);
  PutFixed32(out, modeled_fpr_.has_value() ? 1 : 0);
  PutDouble(out, modeled_fpr_.value_or(0.0));
  trie_.AppendTo(out);
  bf_.AppendTo(out);
}

std::unique_ptr<ProteusStrFilter> ProteusStrFilter::DeserializePayload(
    std::string_view* in) {
  auto filter = std::unique_ptr<ProteusStrFilter>(new ProteusStrFilter());
  uint32_t has_fpr;
  double fpr;
  if (!GetFixed32(in, &filter->config_.trie_depth) ||
      !GetFixed32(in, &filter->config_.bf_prefix_len) ||
      !GetFixed32(in, &filter->config_.max_key_bits) ||
      !GetFixed32(in, &has_fpr) || !GetDouble(in, &fpr) ||
      !StrBitTrie::ParseFrom(in, &filter->trie_) ||
      !StrPrefixBloom::ParseFrom(in, &filter->bf_)) {
    return nullptr;
  }
  if (has_fpr != 0) filter->modeled_fpr_ = fpr;
  return filter;
}

}  // namespace proteus
