// The kind-specific query interfaces all range filters implement.
//
// A range filter answers approximate range-emptiness queries over a static
// key set K: MayContain(lo, hi) returns false only if K ∩ [lo, hi] is
// certainly empty (never a false negative), and true otherwise (possibly a
// false positive). Point queries are ranges with lo == hi.
//
// Integer keys (Sections 5–6 of the paper) and string keys (Section 7) get
// separate interfaces; most filters implement both via sibling classes.
// Everything key-kind-independent (size, name, serialization) lives in the
// shared Filter base (core/filter.h).

#ifndef PROTEUS_CORE_RANGE_FILTER_H_
#define PROTEUS_CORE_RANGE_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "core/filter.h"

namespace proteus {

/// Range filter over 64-bit unsigned integer keys.
class RangeFilter : public Filter {
 public:
  KeyKind kind() const final { return KeyKind::kInt; }

  /// True if the key set may intersect the inclusive range [lo, hi].
  virtual bool MayContain(uint64_t lo, uint64_t hi) const = 0;

  /// Batch form: out[i] = MayContain(lo[i], hi[i]) for i in [0, n). The
  /// default loops; Bloom-backed families override it to hash one query
  /// ahead and prefetch its cache line, the cross-query analogue of
  /// PrefixBloom::ProbeRange's within-query pipeline. Callers get the
  /// best locality when queries arrive sorted by lo.
  virtual void MultiMayContain(const uint64_t* lo, const uint64_t* hi,
                               size_t n, uint8_t* out) const {
    for (size_t i = 0; i < n; ++i) out[i] = MayContain(lo[i], hi[i]) ? 1 : 0;
  }
};

/// Range filter over variable-length byte-string keys (lexicographic order,
/// trailing-NUL padding semantics per Section 7.1).
class StrRangeFilter : public Filter {
 public:
  KeyKind kind() const final { return KeyKind::kStr; }

  virtual bool MayContain(std::string_view lo, std::string_view hi) const = 0;

  /// Batch form; see RangeFilter::MultiMayContain.
  virtual void MultiMayContain(const std::string_view* lo,
                               const std::string_view* hi, size_t n,
                               uint8_t* out) const {
    for (size_t i = 0; i < n; ++i) out[i] = MayContain(lo[i], hi[i]) ? 1 : 0;
  }
};

}  // namespace proteus

#endif  // PROTEUS_CORE_RANGE_FILTER_H_
