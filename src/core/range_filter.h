// The common interface all range filters in this library implement.
//
// A range filter answers approximate range-emptiness queries over a static
// key set K: MayContain(lo, hi) returns false only if K ∩ [lo, hi] is
// certainly empty (never a false negative), and true otherwise (possibly a
// false positive). Point queries are ranges with lo == hi.
//
// Integer keys (Sections 5–6 of the paper) and string keys (Section 7) get
// separate interfaces; most filters implement both via sibling classes.

#ifndef PROTEUS_CORE_RANGE_FILTER_H_
#define PROTEUS_CORE_RANGE_FILTER_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace proteus {

/// Range filter over 64-bit unsigned integer keys.
class RangeFilter {
 public:
  virtual ~RangeFilter() = default;

  /// True if the key set may intersect the inclusive range [lo, hi].
  virtual bool MayContain(uint64_t lo, uint64_t hi) const = 0;

  /// Memory footprint of the filter in bits (all components included).
  virtual uint64_t SizeBits() const = 0;

  /// Human-readable filter name, e.g. "Proteus" or "SuRF-Real8".
  virtual std::string Name() const = 0;

  /// Bits per key, given the number of keys the filter was built on.
  double Bpk(uint64_t n_keys) const {
    return n_keys == 0 ? 0.0 : static_cast<double>(SizeBits()) / n_keys;
  }
};

/// Range filter over variable-length byte-string keys (lexicographic order,
/// trailing-NUL padding semantics per Section 7.1).
class StrRangeFilter {
 public:
  virtual ~StrRangeFilter() = default;

  virtual bool MayContain(std::string_view lo, std::string_view hi) const = 0;
  virtual uint64_t SizeBits() const = 0;
  virtual std::string Name() const = 0;

  double Bpk(uint64_t n_keys) const {
    return n_keys == 0 ? 0.0 : static_cast<double>(SizeBits()) / n_keys;
  }
};

}  // namespace proteus

#endif  // PROTEUS_CORE_RANGE_FILTER_H_
