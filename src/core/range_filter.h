// The kind-specific query interfaces all range filters implement.
//
// A range filter answers approximate range-emptiness queries over a static
// key set K: MayContain(lo, hi) returns false only if K ∩ [lo, hi] is
// certainly empty (never a false negative), and true otherwise (possibly a
// false positive). Point queries are ranges with lo == hi.
//
// Integer keys (Sections 5–6 of the paper) and string keys (Section 7) get
// separate interfaces; most filters implement both via sibling classes.
// Everything key-kind-independent (size, name, serialization) lives in the
// shared Filter base (core/filter.h).

#ifndef PROTEUS_CORE_RANGE_FILTER_H_
#define PROTEUS_CORE_RANGE_FILTER_H_

#include <cstdint>
#include <string_view>

#include "core/filter.h"

namespace proteus {

/// Range filter over 64-bit unsigned integer keys.
class RangeFilter : public Filter {
 public:
  KeyKind kind() const final { return KeyKind::kInt; }

  /// True if the key set may intersect the inclusive range [lo, hi].
  virtual bool MayContain(uint64_t lo, uint64_t hi) const = 0;
};

/// Range filter over variable-length byte-string keys (lexicographic order,
/// trailing-NUL padding semantics per Section 7.1).
class StrRangeFilter : public Filter {
 public:
  KeyKind kind() const final { return KeyKind::kStr; }

  virtual bool MayContain(std::string_view lo, std::string_view hi) const = 0;
};

}  // namespace proteus

#endif  // PROTEUS_CORE_RANGE_FILTER_H_
