#include "core/two_pbf.h"

#include <algorithm>

#include "core/filter_builder.h"
#include "model/cpfpr.h"
#include "util/bits.h"
#include "util/serial.h"

namespace proteus {

std::unique_ptr<TwoPbfFilter> TwoPbfFilter::BuildFromSpec(
    const FilterSpec& spec, FilterBuilder& builder, std::string* error) {
  if (!spec.ExpectKeys({"bpk", "l1", "l2", "frac1", "blocked"}, error)) {
    return nullptr;
  }
  double bpk;
  if (!spec.GetDouble("bpk", 12.0, &bpk, error)) return nullptr;
  if (bpk <= 0.0) {
    if (error != nullptr) *error = "twopbf bpk must be positive";
    return nullptr;
  }
  uint32_t blocked;
  if (!spec.GetUint32("blocked", 1, &blocked, error)) return nullptr;
  if (blocked > 1) {
    if (error != nullptr) *error = "twopbf blocked must be 0 or 1";
    return nullptr;
  }

  if (spec.Has("l1") || spec.Has("l2") || spec.Has("frac1")) {
    Config config;
    if (!spec.GetUint32("l1", 0, &config.l1, error) ||
        !spec.GetUint32("l2", 64, &config.l2, error) ||
        !spec.GetDouble("frac1", 0.5, &config.frac1, error)) {
      return nullptr;
    }
    if (config.frac1 < 0.0 || config.frac1 >= 1.0) {
      if (error != nullptr) *error = "twopbf frac1 must be in [0, 1)";
      return nullptr;
    }
    if (config.l1 > 64 || config.l2 == 0 || config.l2 > 64) {
      if (error != nullptr) *error = "twopbf l1/l2 must be in [0, 64] / [1, 64]";
      return nullptr;
    }
    return BuildWithConfig(builder.keys(), config, bpk, blocked != 0);
  }

  const CpfprModel* model = builder.DesignOrNull();
  if (model == nullptr) {
    return BuildWithConfig(builder.keys(), Config{0, 64, 0.5}, bpk,
                           blocked != 0);
  }
  uint64_t budget = static_cast<uint64_t>(
      bpk * static_cast<double>(builder.keys().size()));
  TwoPbfDesign design = model->SelectTwoPbf(
      budget, blocked != 0 ? BloomProbeMode::kBlocked
                           : BloomProbeMode::kStandard);
  auto filter = BuildWithConfig(
      builder.keys(), Config{design.l1, design.l2, design.frac1}, bpk,
      blocked != 0);
  filter->modeled_fpr_ = design.expected_fpr;
  return filter;
}

std::unique_ptr<TwoPbfFilter> TwoPbfFilter::BuildWithConfig(
    const std::vector<uint64_t>& sorted_keys, Config config,
    double bits_per_key, bool blocked_bloom) {
  auto filter = std::unique_ptr<TwoPbfFilter>(new TwoPbfFilter());
  filter->config_ = config;
  uint64_t budget = static_cast<uint64_t>(
      bits_per_key * static_cast<double>(sorted_keys.size()));
  if (config.l1 == 0) {
    filter->bf2_ = PrefixBloom(sorted_keys, budget, config.l2, blocked_bloom);
    return filter;
  }
  uint64_t m1 = static_cast<uint64_t>(static_cast<double>(budget) *
                                      config.frac1);
  filter->bf1_ = PrefixBloom(sorted_keys, m1, config.l1, blocked_bloom);
  filter->bf2_ = PrefixBloom(sorted_keys, budget - m1, config.l2,
                             blocked_bloom);
  return filter;
}

bool TwoPbfFilter::MayContain(uint64_t lo, uint64_t hi) const {
  const uint32_t l1 = config_.l1;
  if (l1 == 0) return bf2_.MayContain(lo, hi);
  uint64_t first = PrefixBits64(lo, l1);
  uint64_t last = PrefixBits64(hi, l1);
  if (last - first + 1 > PrefixBloom::kDefaultProbeLimit) return true;
  // Pipelined coarse walk (the ProbeRange arrangement, open-coded because
  // each positive detours into the fine filter): hash prefix v+1 and pull
  // its cache line in while probe v resolves, so the memory access of the
  // next coarse probe overlaps this one's compute — and survives the
  // fine-filter detour already in flight.
  uint64_t h1, h2;
  bf1_.HashPrefix(first, &h1, &h2);
  bf1_.PrefetchHash(h1);
  for (uint64_t v = first;; ++v) {
    uint64_t nh1 = 0, nh2 = 0;
    if (v != last) {
      bf1_.HashPrefix(v + 1, &nh1, &nh2);
      bf1_.PrefetchHash(nh1);
    }
    if (bf1_.ProbeHash(h1, h2)) {
      // Doubt the coarse positive at the fine filter.
      uint64_t region_lo = PrefixRangeLo64(v, l1);
      uint64_t region_hi = PrefixRangeHi64(v, l1);
      uint64_t probe_lo = std::max(lo, region_lo);
      uint64_t probe_hi = std::min(hi, region_hi);
      if (bf2_.MayContain(probe_lo, probe_hi)) return true;
    }
    if (v == last) break;
    h1 = nh1;
    h2 = nh2;
  }
  return false;
}

void TwoPbfFilter::MultiMayContain(const uint64_t* lo, const uint64_t* hi,
                                   size_t n, uint8_t* out) const {
  const uint32_t l1 = config_.l1;
  if (l1 == 0) {
    // Degenerate 1PBF: flatten fine-filter prefixes across queries.
    bf2_.MultiMayContain(lo, hi, n, out);
    return;
  }
  // Flatten narrow queries' coarse prefixes across query boundaries and
  // resolve them through the multi-query kernel; each coarse positive is
  // then doubted at the fine filter exactly as the scalar walk would,
  // clipped to the intersection of its region and its owner query. Fine
  // detours only run for lanes whose owner is still negative, so a query
  // never probes the fine filter more than the scalar short-circuit walk
  // plus at most one extra region per chunk.
  constexpr size_t kChunk = 256;
  uint64_t vals[kChunk];
  uint32_t owner[kChunk];
  uint8_t res[kChunk];
  size_t m = 0;
  auto flush = [&] {
    bf1_.MultiProbePrefix(vals, m, res);
    for (size_t j = 0; j < m; ++j) {
      const size_t i = owner[j];
      if (res[j] == 0 || out[i] != 0) continue;
      const uint64_t region_lo = PrefixRangeLo64(vals[j], l1);
      const uint64_t region_hi = PrefixRangeHi64(vals[j], l1);
      if (bf2_.MayContain(std::max(lo[i], region_lo),
                          std::min(hi[i], region_hi))) {
        out[i] = 1;
      }
    }
    m = 0;
  };
  for (size_t i = 0; i < n; ++i) {
    const uint64_t first = PrefixBits64(lo[i], l1);
    const uint64_t last = PrefixBits64(hi[i], l1);
    if (last - first >= PrefixBloom::kFlattenLimit) {
      out[i] = MayContain(lo[i], hi[i]) ? 1 : 0;
      continue;
    }
    out[i] = 0;
    for (uint64_t p = first;; ++p) {
      vals[m] = p;
      owner[m] = static_cast<uint32_t>(i);
      if (++m == kChunk) flush();
      if (p == last) break;
    }
  }
  if (m > 0) flush();
}

void TwoPbfFilter::SerializePayload(std::string* out) const {
  PutFixed32(out, config_.l1);
  PutFixed32(out, config_.l2);
  PutDouble(out, config_.frac1);
  PutFixed32(out, modeled_fpr_.has_value() ? 1 : 0);
  PutDouble(out, modeled_fpr_.value_or(0.0));
  bf1_.AppendTo(out);
  bf2_.AppendTo(out);
}

std::unique_ptr<TwoPbfFilter> TwoPbfFilter::DeserializePayload(
    std::string_view* in) {
  auto filter = std::unique_ptr<TwoPbfFilter>(new TwoPbfFilter());
  uint32_t has_fpr;
  double fpr;
  if (!GetFixed32(in, &filter->config_.l1) ||
      !GetFixed32(in, &filter->config_.l2) ||
      !GetDouble(in, &filter->config_.frac1) || !GetFixed32(in, &has_fpr) ||
      !GetDouble(in, &fpr) || !PrefixBloom::ParseFrom(in, &filter->bf1_) ||
      !PrefixBloom::ParseFrom(in, &filter->bf2_)) {
    return nullptr;
  }
  if (has_fpr != 0) filter->modeled_fpr_ = fpr;
  return filter;
}

}  // namespace proteus
