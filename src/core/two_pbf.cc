#include "core/two_pbf.h"

#include <algorithm>

#include "util/bits.h"

namespace proteus {

std::unique_ptr<TwoPbfFilter> TwoPbfFilter::BuildSelfDesigned(
    const std::vector<uint64_t>& sorted_keys,
    const std::vector<RangeQuery>& sample_queries, double bits_per_key) {
  CpfprModel model(sorted_keys, sample_queries);
  return BuildFromModel(sorted_keys, model, bits_per_key);
}

std::unique_ptr<TwoPbfFilter> TwoPbfFilter::BuildFromModel(
    const std::vector<uint64_t>& sorted_keys, const CpfprModel& model,
    double bits_per_key) {
  uint64_t budget = static_cast<uint64_t>(
      bits_per_key * static_cast<double>(sorted_keys.size()));
  TwoPbfDesign design = model.SelectTwoPbf(budget);
  auto filter = BuildWithConfig(
      sorted_keys, Config{design.l1, design.l2, design.frac1}, bits_per_key);
  filter->modeled_fpr_ = design.expected_fpr;
  return filter;
}

std::unique_ptr<TwoPbfFilter> TwoPbfFilter::BuildWithConfig(
    const std::vector<uint64_t>& sorted_keys, Config config,
    double bits_per_key) {
  auto filter = std::unique_ptr<TwoPbfFilter>(new TwoPbfFilter());
  filter->config_ = config;
  uint64_t budget = static_cast<uint64_t>(
      bits_per_key * static_cast<double>(sorted_keys.size()));
  if (config.l1 == 0) {
    filter->bf2_ = PrefixBloom(sorted_keys, budget, config.l2);
    return filter;
  }
  uint64_t m1 = static_cast<uint64_t>(static_cast<double>(budget) *
                                      config.frac1);
  filter->bf1_ = PrefixBloom(sorted_keys, m1, config.l1);
  filter->bf2_ = PrefixBloom(sorted_keys, budget - m1, config.l2);
  return filter;
}

bool TwoPbfFilter::MayContain(uint64_t lo, uint64_t hi) const {
  const uint32_t l1 = config_.l1;
  const uint32_t l2 = config_.l2;
  if (l1 == 0) return bf2_.MayContain(lo, hi);
  uint64_t first = PrefixBits64(lo, l1);
  uint64_t last = PrefixBits64(hi, l1);
  if (last - first + 1 > PrefixBloom::kDefaultProbeLimit) return true;
  for (uint64_t v = first;; ++v) {
    if (bf1_.ProbePrefix(v)) {
      // Doubt the coarse positive at the fine filter.
      uint64_t region_lo = PrefixRangeLo64(v, l1);
      uint64_t region_hi = PrefixRangeHi64(v, l1);
      uint64_t probe_lo = std::max(lo, region_lo);
      uint64_t probe_hi = std::min(hi, region_hi);
      if (bf2_.MayContain(probe_lo, probe_hi)) return true;
    }
    if (v == last) break;
  }
  return false;
}

}  // namespace proteus
