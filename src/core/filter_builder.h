// FilterBuilder: the one copy of the Sample() -> Design() -> Build()
// control flow that every self-designing filter family used to duplicate
// as a BuildSelfDesigned / BuildFromModel / BuildWithConfig static trio.
//
//   FilterBuilder builder(sorted_keys);
//   builder.Sample(query_log);               // observe the workload
//   auto proteus = builder.Build("proteus:bpk=12");
//   auto two_pbf = builder.Build("twopbf:bpk=12");   // model reused
//   for (double bpk : {8.0, 12.0, 16.0})             // budget sweep,
//     sweep.push_back(builder.Build("proteus:bpk=" + Fmt(bpk)));  // one model
//
// Design() runs the CPFPR model over the keys and samples exactly once and
// caches it; families that model (proteus, onepbf, twopbf) pull it through
// DesignOrNull(), families that don't (surf, bloom) ignore it. Build()
// resolves the spec through the FilterRegistry, so the same call works for
// every registered family.
//
// The builder borrows `sorted_keys`; the caller keeps the vector alive and
// unchanged until the last Build() call.

#ifndef PROTEUS_CORE_FILTER_BUILDER_H_
#define PROTEUS_CORE_FILTER_BUILDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/filter_spec.h"
#include "core/query.h"
#include "core/range_filter.h"

namespace proteus {

class CpfprModel;

class FilterBuilder {
 public:
  explicit FilterBuilder(const std::vector<uint64_t>& sorted_keys);
  ~FilterBuilder();
  FilterBuilder(const FilterBuilder&) = delete;
  FilterBuilder& operator=(const FilterBuilder&) = delete;

  /// Appends sampled (empty) range queries; invalidates the cached model.
  FilterBuilder& Sample(const std::vector<RangeQuery>& queries);

  /// Runs the CPFPR model over keys and samples; cached across Build()
  /// calls until Sample() adds more queries.
  const CpfprModel& Design();

  /// The cached model, or null when no queries were sampled (families then
  /// fall back to their no-workload default design).
  const CpfprModel* DesignOrNull();

  /// Materializes a filter for the spec via the FilterRegistry. Returns
  /// null and fills `error` on an unknown family or bad parameters.
  std::unique_ptr<RangeFilter> Build(std::string_view spec,
                                     std::string* error = nullptr);
  std::unique_ptr<RangeFilter> Build(const FilterSpec& spec,
                                     std::string* error = nullptr);

  const std::vector<uint64_t>& keys() const { return keys_; }
  const std::vector<RangeQuery>& samples() const { return samples_; }

 private:
  const std::vector<uint64_t>& keys_;
  std::vector<RangeQuery> samples_;
  std::unique_ptr<CpfprModel> model_;
};

class StrCpfprModel;
struct StrCpfprOptions;

/// String-key counterpart. Unlike the int model, the string CPFPR model
/// is parameterized (max key bits, search grid), so the cache is keyed
/// on those parameters: repeated Build() calls with the same geometry —
/// a bpk sweep, or per-SST rebuilds over a stable key shape — reuse one
/// model instead of re-deriving it per build.
class StrFilterBuilder {
 public:
  explicit StrFilterBuilder(const std::vector<std::string>& sorted_keys);
  ~StrFilterBuilder();
  StrFilterBuilder(const StrFilterBuilder&) = delete;
  StrFilterBuilder& operator=(const StrFilterBuilder&) = delete;

  /// Appends sampled (empty) range queries; invalidates the cached model.
  StrFilterBuilder& Sample(const std::vector<StrRangeQuery>& queries);

  /// Runs the string CPFPR model over keys and samples for this
  /// geometry; cached across Build() calls until Sample() adds more
  /// queries or the parameters change.
  const StrCpfprModel& Design(uint32_t max_bits,
                              const StrCpfprOptions& options);

  std::unique_ptr<StrRangeFilter> Build(std::string_view spec,
                                        std::string* error = nullptr);
  std::unique_ptr<StrRangeFilter> Build(const FilterSpec& spec,
                                        std::string* error = nullptr);

  const std::vector<std::string>& keys() const { return keys_; }
  const std::vector<StrRangeQuery>& samples() const { return samples_; }

 private:
  const std::vector<std::string>& keys_;
  std::vector<StrRangeQuery> samples_;
  std::unique_ptr<StrCpfprModel> model_;
  uint32_t model_max_bits_ = 0;
  uint32_t model_bloom_grid_ = 0;
  uint32_t model_trie_grid_ = 0;
};

}  // namespace proteus

#endif  // PROTEUS_CORE_FILTER_BUILDER_H_
