#include "core/filter_registry.h"

#include <utility>

#include "bloom/bloom_range.h"
#include "core/filter_builder.h"
#include "core/one_pbf.h"
#include "core/proteus.h"
#include "core/proteus_str.h"
#include "core/two_pbf.h"
#include "rosetta/rosetta.h"
#include "surf/surf.h"

namespace proteus {
namespace {

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

// Captureless lambdas convert to the plain function pointers FilterFamily
// stores; each just narrows unique_ptr<Family> to the interface type.
template <typename T>
std::unique_ptr<RangeFilter> AsInt(std::unique_ptr<T> f) {
  return f;
}
template <typename T>
std::unique_ptr<StrRangeFilter> AsStr(std::unique_ptr<T> f) {
  return f;
}

}  // namespace

FilterRegistry& FilterRegistry::Global() {
  static FilterRegistry* registry = new FilterRegistry();
  return *registry;
}

FilterRegistry::FilterRegistry() {
  FilterFamily proteus;
  proteus.name = "proteus";
  proteus.family_id = ProteusFilter::kFamilyId;
  proteus.help = "bpk=12,blocked=0|1 | trie=L1,bloom=L2 (forced)";
  proteus.build_int = [](const FilterSpec& spec, FilterBuilder& builder,
                         std::string* error) {
    return AsInt(ProteusFilter::BuildFromSpec(spec, builder, error));
  };
  proteus.deserialize = [](std::string_view* in) {
    return std::unique_ptr<Filter>(ProteusFilter::DeserializePayload(in));
  };
  Register(std::move(proteus));

  FilterFamily one_pbf;
  one_pbf.name = "onepbf";
  one_pbf.aliases = {"1pbf"};
  one_pbf.family_id = OnePbfFilter::kFamilyId;
  one_pbf.help = "bpk=12,blocked=0|1 | prefix=L (forced)";
  one_pbf.build_int = [](const FilterSpec& spec, FilterBuilder& builder,
                         std::string* error) {
    return AsInt(OnePbfFilter::BuildFromSpec(spec, builder, error));
  };
  one_pbf.deserialize = [](std::string_view* in) {
    return std::unique_ptr<Filter>(OnePbfFilter::DeserializePayload(in));
  };
  Register(std::move(one_pbf));

  FilterFamily two_pbf;
  two_pbf.name = "twopbf";
  two_pbf.aliases = {"2pbf"};
  two_pbf.family_id = TwoPbfFilter::kFamilyId;
  two_pbf.help = "bpk=12,blocked=0|1 | l1=L1,l2=L2,frac1=F (forced)";
  two_pbf.build_int = [](const FilterSpec& spec, FilterBuilder& builder,
                         std::string* error) {
    return AsInt(TwoPbfFilter::BuildFromSpec(spec, builder, error));
  };
  two_pbf.deserialize = [](std::string_view* in) {
    return std::unique_ptr<Filter>(TwoPbfFilter::DeserializePayload(in));
  };
  Register(std::move(two_pbf));

  FilterFamily rosetta;
  rosetta.name = "rosetta";
  rosetta.family_id = RosettaFilter::kFamilyId;
  rosetta.help = "bpk=12";
  rosetta.build_int = [](const FilterSpec& spec, FilterBuilder& builder,
                         std::string* error) {
    return AsInt(RosettaFilter::BuildFromSpec(spec, builder, error));
  };
  rosetta.deserialize = [](std::string_view* in) {
    return std::unique_ptr<Filter>(RosettaFilter::DeserializePayload(in));
  };
  Register(std::move(rosetta));

  FilterFamily surf;
  surf.name = "surf";
  surf.family_id = SurfIntFilter::kFamilyId;
  surf.help = "mode=base|real|hash,suffix=N,dense=R";
  surf.build_int = [](const FilterSpec& spec, FilterBuilder& builder,
                      std::string* error) {
    return AsInt(SurfIntFilter::BuildFromSpec(spec, builder, error));
  };
  surf.deserialize = [](std::string_view* in) {
    return std::unique_ptr<Filter>(SurfIntFilter::DeserializePayload(in));
  };
  Register(std::move(surf));

  FilterFamily surf_str;
  surf_str.name = "surf-str";
  surf_str.family_id = SurfStrFilter::kFamilyId;
  surf_str.help = "mode=base|real|hash,suffix=N,dense=R";
  surf_str.build_str = [](const FilterSpec& spec, StrFilterBuilder& builder,
                          std::string* error) {
    return AsStr(SurfStrFilter::BuildFromSpec(spec, builder, error));
  };
  surf_str.deserialize = [](std::string_view* in) {
    return std::unique_ptr<Filter>(SurfStrFilter::DeserializePayload(in));
  };
  Register(std::move(surf_str));

  FilterFamily proteus_str;
  proteus_str.name = "proteus-str";
  proteus_str.family_id = ProteusStrFilter::kFamilyId;
  proteus_str.help =
      "bpk=12,max_key_bits=B,stride=S,trie_grid=G,blocked=0|1 | "
      "trie=L1,bloom=L2";
  proteus_str.build_str = [](const FilterSpec& spec, StrFilterBuilder& builder,
                             std::string* error) {
    return AsStr(ProteusStrFilter::BuildFromSpec(spec, builder, error));
  };
  proteus_str.deserialize = [](std::string_view* in) {
    return std::unique_ptr<Filter>(ProteusStrFilter::DeserializePayload(in));
  };
  Register(std::move(proteus_str));

  FilterFamily bloom;
  bloom.name = "bloom";
  bloom.family_id = BloomIntFilter::kFamilyId;
  bloom.help = "bpk=12 (point filtering only)";
  bloom.build_int = [](const FilterSpec& spec, FilterBuilder& builder,
                       std::string* error) {
    return AsInt(BloomIntFilter::BuildFromSpec(spec, builder, error));
  };
  bloom.deserialize = [](std::string_view* in) {
    return std::unique_ptr<Filter>(BloomIntFilter::DeserializePayload(in));
  };
  Register(std::move(bloom));

  FilterFamily bloom_str;
  bloom_str.name = "bloom-str";
  bloom_str.family_id = BloomStrFilter::kFamilyId;
  bloom_str.help = "bpk=12 (point filtering only)";
  bloom_str.build_str = [](const FilterSpec& spec, StrFilterBuilder& builder,
                           std::string* error) {
    return AsStr(BloomStrFilter::BuildFromSpec(spec, builder, error));
  };
  bloom_str.deserialize = [](std::string_view* in) {
    return std::unique_ptr<Filter>(BloomStrFilter::DeserializePayload(in));
  };
  Register(std::move(bloom_str));
}

bool FilterRegistry::Register(FilterFamily family) {
  if (family.name.empty()) return false;
  if (Find(family.name) != nullptr) return false;
  for (const std::string& alias : family.aliases) {
    if (Find(alias) != nullptr) return false;
  }
  if (family.family_id != 0 && FindById(family.family_id) != nullptr) {
    return false;
  }
  families_.push_back(std::move(family));
  return true;
}

const FilterFamily* FilterRegistry::Find(std::string_view name) const {
  for (const FilterFamily& f : families_) {
    if (f.name == name) return &f;
    for (const std::string& alias : f.aliases) {
      if (alias == name) return &f;
    }
  }
  return nullptr;
}

const FilterFamily* FilterRegistry::FindById(uint32_t family_id) const {
  if (family_id == 0) return nullptr;
  for (const FilterFamily& f : families_) {
    if (f.family_id == family_id) return &f;
  }
  return nullptr;
}

std::vector<std::string> FilterRegistry::FamilyNames() const {
  std::vector<std::string> names;
  names.reserve(families_.size());
  for (const FilterFamily& f : families_) names.push_back(f.name);
  return names;
}

std::unique_ptr<RangeFilter> FilterRegistry::Create(
    std::string_view spec, const std::vector<uint64_t>& sorted_keys,
    const std::vector<RangeQuery>& samples, std::string* error) const {
  FilterBuilder builder(sorted_keys);
  builder.Sample(samples);
  return builder.Build(spec, error);
}

std::unique_ptr<StrRangeFilter> FilterRegistry::CreateStr(
    std::string_view spec, const std::vector<std::string>& sorted_keys,
    const std::vector<StrRangeQuery>& samples, std::string* error) const {
  StrFilterBuilder builder(sorted_keys);
  builder.Sample(samples);
  return builder.Build(spec, error);
}

std::unique_ptr<Filter> Filter::Deserialize(std::string_view in,
                                            std::string* error) {
  uint32_t magic, version, family_id;
  if (!GetFixed32(&in, &magic) || !GetFixed32(&in, &version) ||
      !GetFixed32(&in, &family_id)) {
    SetError(error, "filter blob too short for header");
    return nullptr;
  }
  if (magic != kMagic) {
    SetError(error, "bad filter blob magic");
    return nullptr;
  }
  if (version != kVersion) {
    SetError(error, "unsupported filter blob version " +
                        std::to_string(version));
    return nullptr;
  }
  const FilterFamily* family = FilterRegistry::Global().FindById(family_id);
  if (family == nullptr || family->deserialize == nullptr) {
    SetError(error, "unknown filter family id " + std::to_string(family_id));
    return nullptr;
  }
  auto filter = family->deserialize(&in);
  if (filter == nullptr) {
    SetError(error, "corrupt \"" + family->name + "\" filter payload");
    return nullptr;
  }
  return filter;
}

}  // namespace proteus
