// 2PBF — a self-designing pair of prefix Bloom filters (Section 4),
// equivalent to a two-level Rosetta. A range query first probes the
// coarse (l1) filter per region; every coarse positive is "doubted" by
// probing the fine (l2) filter over the region's l2-prefixes. The CPFPR
// model (Eq. 4) selects (l1, l2) and the memory split.
//
// Spec parameters: bpk (default 12); l1, l2, frac1 force the
// configuration and skip the model.

#ifndef PROTEUS_CORE_TWO_PBF_H_
#define PROTEUS_CORE_TWO_PBF_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bloom/prefix_bloom.h"
#include "core/filter_spec.h"
#include "core/query.h"
#include "core/range_filter.h"

namespace proteus {

class FilterBuilder;

class TwoPbfFilter : public RangeFilter {
 public:
  static constexpr uint32_t kFamilyId = 3;

  struct Config {
    uint32_t l1 = 0;  // 0 = no coarse filter (degenerates to 1PBF)
    uint32_t l2 = 64;
    double frac1 = 0.5;
  };

  static std::unique_ptr<TwoPbfFilter> BuildFromSpec(const FilterSpec& spec,
                                                     FilterBuilder& builder,
                                                     std::string* error);

  static std::unique_ptr<TwoPbfFilter> BuildWithConfig(
      const std::vector<uint64_t>& sorted_keys, Config config,
      double bits_per_key, bool blocked_bloom = false);

  bool MayContain(uint64_t lo, uint64_t hi) const override;
  /// Batched coarse walk: narrow queries' l1-prefixes are flattened into
  /// one array and resolved through the AVX2 multi-query kernel; only the
  /// (rare) coarse positives detour into the fine filter, scalar, exactly
  /// as MayContain would. Wide queries keep the scalar pipelined walk.
  void MultiMayContain(const uint64_t* lo, const uint64_t* hi, size_t n,
                       uint8_t* out) const override;
  uint64_t SizeBits() const override {
    return bf1_.SizeBits() + bf2_.SizeBits();
  }
  std::string Name() const override {
    return "2PBF(l" + std::to_string(config_.l1) + ",l" +
           std::to_string(config_.l2) + ")";
  }

  uint32_t FamilyId() const override { return kFamilyId; }
  void SerializePayload(std::string* out) const override;
  static std::unique_ptr<TwoPbfFilter> DeserializePayload(
      std::string_view* in);

  const Config& config() const { return config_; }
  std::optional<double> modeled_fpr() const { return modeled_fpr_; }
  std::optional<double> ModeledFpr() const override { return modeled_fpr_; }

 private:
  TwoPbfFilter() = default;

  Config config_;
  PrefixBloom bf1_;  // coarse; unused when l1 == 0
  PrefixBloom bf2_;  // fine
  std::optional<double> modeled_fpr_;
};

}  // namespace proteus

#endif  // PROTEUS_CORE_TWO_PBF_H_
