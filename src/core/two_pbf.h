// 2PBF — a self-designing pair of prefix Bloom filters (Section 4),
// equivalent to a two-level Rosetta. A range query first probes the
// coarse (l1) filter per region; every coarse positive is "doubted" by
// probing the fine (l2) filter over the region's l2-prefixes. The CPFPR
// model (Eq. 4) selects (l1, l2) and the memory split.

#ifndef PROTEUS_CORE_TWO_PBF_H_
#define PROTEUS_CORE_TWO_PBF_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bloom/prefix_bloom.h"
#include "core/query.h"
#include "core/range_filter.h"
#include "model/cpfpr.h"

namespace proteus {

class TwoPbfFilter : public RangeFilter {
 public:
  struct Config {
    uint32_t l1 = 0;  // 0 = no coarse filter (degenerates to 1PBF)
    uint32_t l2 = 64;
    double frac1 = 0.5;
  };

  static std::unique_ptr<TwoPbfFilter> BuildSelfDesigned(
      const std::vector<uint64_t>& sorted_keys,
      const std::vector<RangeQuery>& sample_queries, double bits_per_key);

  static std::unique_ptr<TwoPbfFilter> BuildFromModel(
      const std::vector<uint64_t>& sorted_keys, const CpfprModel& model,
      double bits_per_key);

  static std::unique_ptr<TwoPbfFilter> BuildWithConfig(
      const std::vector<uint64_t>& sorted_keys, Config config,
      double bits_per_key);

  bool MayContain(uint64_t lo, uint64_t hi) const override;
  uint64_t SizeBits() const override {
    return bf1_.SizeBits() + bf2_.SizeBits();
  }
  std::string Name() const override {
    return "2PBF(l" + std::to_string(config_.l1) + ",l" +
           std::to_string(config_.l2) + ")";
  }

  const Config& config() const { return config_; }
  double modeled_fpr() const { return modeled_fpr_; }

 private:
  TwoPbfFilter() = default;

  Config config_;
  PrefixBloom bf1_;  // coarse; unused when l1 == 0
  PrefixBloom bf2_;  // fine
  double modeled_fpr_ = -1.0;
};

}  // namespace proteus

#endif  // PROTEUS_CORE_TWO_PBF_H_
