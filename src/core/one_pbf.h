// 1PBF — a self-designing single prefix Bloom filter (Section 4): the
// simplest Protean Range Filter. The CPFPR model (Eq. 1) selects the one
// prefix length that minimizes expected FPR on the sampled queries.
//
// Spec parameters: bpk (default 12), prefix (forced prefix length, skips
// the model — Figure 4a sweeps).

#ifndef PROTEUS_CORE_ONE_PBF_H_
#define PROTEUS_CORE_ONE_PBF_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bloom/prefix_bloom.h"
#include "core/filter_spec.h"
#include "core/query.h"
#include "core/range_filter.h"

namespace proteus {

class FilterBuilder;

class OnePbfFilter : public RangeFilter {
 public:
  static constexpr uint32_t kFamilyId = 2;

  static std::unique_ptr<OnePbfFilter> BuildFromSpec(const FilterSpec& spec,
                                                     FilterBuilder& builder,
                                                     std::string* error);

  /// Forced prefix length (Figure 4a sweeps).
  static std::unique_ptr<OnePbfFilter> BuildWithConfig(
      const std::vector<uint64_t>& sorted_keys, uint32_t prefix_len,
      double bits_per_key, bool blocked_bloom = false);

  bool MayContain(uint64_t lo, uint64_t hi) const override;
  /// Batched across queries: narrow queries' prefixes are flattened into
  /// one array and resolved through the AVX2 multi-query kernel
  /// (PrefixBloom::MultiMayContain); wide queries keep the scalar walk.
  void MultiMayContain(const uint64_t* lo, const uint64_t* hi, size_t n,
                       uint8_t* out) const override;
  uint64_t SizeBits() const override { return bf_.SizeBits(); }
  std::string Name() const override {
    return "1PBF(l" + std::to_string(bf_.prefix_len()) + ")";
  }

  uint32_t FamilyId() const override { return kFamilyId; }
  void SerializePayload(std::string* out) const override;
  static std::unique_ptr<OnePbfFilter> DeserializePayload(
      std::string_view* in);

  uint32_t prefix_len() const { return bf_.prefix_len(); }
  std::optional<double> modeled_fpr() const { return modeled_fpr_; }
  std::optional<double> ModeledFpr() const override { return modeled_fpr_; }

 private:
  OnePbfFilter() = default;

  PrefixBloom bf_;
  std::optional<double> modeled_fpr_;
};

}  // namespace proteus

#endif  // PROTEUS_CORE_ONE_PBF_H_
