// 1PBF — a self-designing single prefix Bloom filter (Section 4): the
// simplest Protean Range Filter. The CPFPR model (Eq. 1) selects the one
// prefix length that minimizes expected FPR on the sampled queries.

#ifndef PROTEUS_CORE_ONE_PBF_H_
#define PROTEUS_CORE_ONE_PBF_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bloom/prefix_bloom.h"
#include "core/query.h"
#include "core/range_filter.h"
#include "model/cpfpr.h"

namespace proteus {

class OnePbfFilter : public RangeFilter {
 public:
  static std::unique_ptr<OnePbfFilter> BuildSelfDesigned(
      const std::vector<uint64_t>& sorted_keys,
      const std::vector<RangeQuery>& sample_queries, double bits_per_key);

  static std::unique_ptr<OnePbfFilter> BuildFromModel(
      const std::vector<uint64_t>& sorted_keys, const CpfprModel& model,
      double bits_per_key);

  /// Forced prefix length (Figure 4a sweeps).
  static std::unique_ptr<OnePbfFilter> BuildWithConfig(
      const std::vector<uint64_t>& sorted_keys, uint32_t prefix_len,
      double bits_per_key);

  bool MayContain(uint64_t lo, uint64_t hi) const override;
  uint64_t SizeBits() const override { return bf_.SizeBits(); }
  std::string Name() const override {
    return "1PBF(l" + std::to_string(bf_.prefix_len()) + ")";
  }

  uint32_t prefix_len() const { return bf_.prefix_len(); }
  double modeled_fpr() const { return modeled_fpr_; }

 private:
  OnePbfFilter() = default;

  PrefixBloom bf_;
  double modeled_fpr_ = -1.0;
};

}  // namespace proteus

#endif  // PROTEUS_CORE_ONE_PBF_H_
