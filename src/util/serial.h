// Little-endian fixed-width encode/decode helpers shared by every
// serializable structure in the library (Filter payloads, BitVector,
// PrefixBloom, SuRF). Readers take a string_view cursor and consume what
// they parse, returning false on truncation so corrupt blobs fail cleanly
// instead of crashing.

#ifndef PROTEUS_UTIL_SERIAL_H_
#define PROTEUS_UTIL_SERIAL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace proteus {

inline void PutFixed32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

inline void PutFixed64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

inline void PutDouble(std::string* out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

inline bool GetFixed32(std::string_view* in, uint32_t* v) {
  if (in->size() < 4) return false;
  std::memcpy(v, in->data(), 4);
  in->remove_prefix(4);
  return true;
}

inline bool GetFixed64(std::string_view* in, uint64_t* v) {
  if (in->size() < 8) return false;
  std::memcpy(v, in->data(), 8);
  in->remove_prefix(8);
  return true;
}

inline bool GetDouble(std::string_view* in, double* v) {
  if (in->size() < 8) return false;
  std::memcpy(v, in->data(), 8);
  in->remove_prefix(8);
  return true;
}

// Positional loads for fixed-offset parsing (footers, record frames) —
// the Get* variants above consume a cursor, which reads poorly when the
// offsets are constants.

inline uint32_t LoadFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t LoadFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

/// Length-prefixed byte string (u64 length + raw bytes).
inline void PutLengthPrefixed(std::string* out, std::string_view s) {
  PutFixed64(out, s.size());
  out->append(s.data(), s.size());
}

inline bool GetLengthPrefixed(std::string_view* in, std::string* out) {
  uint64_t n;
  if (!GetFixed64(in, &n)) return false;
  if (in->size() < n) return false;
  out->assign(in->data(), n);
  in->remove_prefix(n);
  return true;
}

}  // namespace proteus

#endif  // PROTEUS_UTIL_SERIAL_H_
