#include "util/crc32c.h"

#include <bit>
#include <cstring>

// The slicing-by-8 loop memcpy's 8 input bytes into a word and indexes
// the tables low-byte-first, which is only CRC32C on a little-endian
// host. Every target this library supports is little-endian; refuse to
// build a big-endian binary that would write non-standard checksums.
static_assert(std::endian::native == std::endian::little,
              "Crc32c's table path assumes a little-endian host");

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PROTEUS_CRC32C_X86 1
#include <immintrin.h>
#endif

namespace proteus {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // Castagnoli, reflected

// Slicing-by-8 tables, built once at first use. table_[0] is the classic
// byte-at-a-time table; table_[k] advances a CRC over k additional zero
// bytes, letting the hot loop fold 8 input bytes per iteration.
struct Tables {
  uint32_t t[8][256];
  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (int k = 1; k < 8; ++k) {
      for (uint32_t i = 0; i < 256; ++i) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
      }
    }
  }
};

const Tables& tables() {
  static const Tables tables;
  return tables;
}

// Raw state transition (no init/final xor): callers pass ~crc in, ~out.
uint32_t ExtendPortableRaw(uint32_t state, const uint8_t* p, size_t n) {
  const Tables& tb = tables();
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= state;  // little-endian: low 4 bytes absorb the running CRC
    state = tb.t[7][word & 0xFF] ^ tb.t[6][(word >> 8) & 0xFF] ^
            tb.t[5][(word >> 16) & 0xFF] ^ tb.t[4][(word >> 24) & 0xFF] ^
            tb.t[3][(word >> 32) & 0xFF] ^ tb.t[2][(word >> 40) & 0xFF] ^
            tb.t[1][(word >> 48) & 0xFF] ^ tb.t[0][word >> 56];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    state = (state >> 8) ^ tb.t[0][(state ^ *p++) & 0xFF];
  }
  return state;
}

#if PROTEUS_CRC32C_X86

__attribute__((target("sse4.2"))) uint32_t ExtendHardwareRaw(
    uint32_t state, const uint8_t* p, size_t n) {
  uint64_t s = state;
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    s = _mm_crc32_u64(s, word);
    p += 8;
    n -= 8;
  }
  uint32_t s32 = static_cast<uint32_t>(s);
  while (n-- > 0) {
    s32 = _mm_crc32_u8(s32, *p++);
  }
  return s32;
}

bool HaveSse42() {
  static const bool have = __builtin_cpu_supports("sse4.2");
  return have;
}

#endif  // PROTEUS_CRC32C_X86

uint32_t ExtendRaw(uint32_t state, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
#if PROTEUS_CRC32C_X86
  if (HaveSse42()) return ExtendHardwareRaw(state, p, n);
#endif
  return ExtendPortableRaw(state, p, n);
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n) {
  return ~ExtendRaw(~uint32_t{0}, data, n);
}

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  return ~ExtendRaw(~crc, data, n);
}

bool Crc32cUsesHardware() {
#if PROTEUS_CRC32C_X86
  return HaveSse42();
#else
  return false;
#endif
}

uint32_t Crc32cPortable(const void* data, size_t n) {
  return ~ExtendPortableRaw(~uint32_t{0},
                            static_cast<const uint8_t*>(data), n);
}

}  // namespace proteus
