// Bit-level operations over variable-length (string) keys.
//
// Section 7 of the paper maps variable-length keys onto a fixed-length key
// space by padding with trailing NUL bytes. We adopt the same convention:
// every std::string key is treated as an infinite bit string whose bits
// beyond the stored bytes are zero. Bit 0 is the MSB of byte 0.

#ifndef PROTEUS_UTIL_BITSTRING_H_
#define PROTEUS_UTIL_BITSTRING_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>

namespace proteus {

/// Bit i of `s` under the trailing-NUL-padding convention.
inline bool StrGetBit(std::string_view s, uint64_t i) {
  uint64_t byte = i >> 3;
  if (byte >= s.size()) return false;
  return (static_cast<uint8_t>(s[byte]) >> (7 - (i & 7))) & 1;
}

/// Longest common prefix, in bits, of two padded keys; capped at max_bits.
inline uint64_t StrLcpBits(std::string_view a, std::string_view b,
                           uint64_t max_bits) {
  uint64_t max_bytes = (max_bits + 7) / 8;
  uint64_t n = std::min<uint64_t>({a.size(), b.size(), max_bytes});
  uint64_t byte = 0;
  while (byte < n && a[byte] == b[byte]) ++byte;
  uint64_t lcp;
  if (byte == n) {
    // One string is a (byte-)prefix of the other within the compared window;
    // the shorter is implicitly NUL-padded, so compare against zero bytes.
    std::string_view longer = a.size() >= b.size() ? a : b;
    uint64_t limit = std::min<uint64_t>(longer.size(), max_bytes);
    uint64_t k = byte;
    while (k < limit && longer[k] == '\0') ++k;
    if (k == limit) {
      lcp = max_bits;  // identical under padding up to the cap
    } else {
      uint8_t diff = static_cast<uint8_t>(longer[k]);
      lcp = k * 8 + static_cast<uint64_t>(__builtin_clz(diff) - 24);
    }
  } else {
    uint8_t diff = static_cast<uint8_t>(a[byte]) ^ static_cast<uint8_t>(b[byte]);
    lcp = byte * 8 + static_cast<uint64_t>(__builtin_clz(diff) - 24);
  }
  return std::min(lcp, max_bits);
}

/// Writes the l-bit prefix of `s` into `out` as ceil(l/8) bytes, with the
/// final partial byte masked to zero beyond the prefix. Returns the number
/// of bytes written. `out` must have room for (l + 7) / 8 bytes.
inline size_t StrPrefixBytes(std::string_view s, uint64_t l, char* out) {
  size_t n_bytes = static_cast<size_t>((l + 7) / 8);
  size_t copy = std::min(n_bytes, s.size());
  std::copy_n(s.data(), copy, out);
  std::fill(out + copy, out + n_bytes, '\0');
  uint32_t rem = static_cast<uint32_t>(l & 7);
  if (rem != 0) {
    out[n_bytes - 1] = static_cast<char>(static_cast<uint8_t>(out[n_bytes - 1]) &
                                         (0xFF << (8 - rem)));
  }
  return n_bytes;
}

/// The l-bit prefix of `s` as a padded string of exactly ceil(l/8) bytes.
inline std::string StrPrefix(std::string_view s, uint64_t l) {
  std::string out((l + 7) / 8, '\0');
  StrPrefixBytes(s, l, out.data());
  return out;
}

/// Compares the l-bit prefixes of a and b: negative/zero/positive like
/// memcmp, under the padding convention.
inline int StrComparePrefix(std::string_view a, std::string_view b,
                            uint64_t l) {
  uint64_t lcp = StrLcpBits(a, b, l);
  if (lcp >= l) return 0;
  return StrGetBit(a, lcp) ? 1 : -1;
}

/// Number of distinct l-bit prefixes covering [lo, hi] (inclusive), i.e.
/// |Q_l| for string queries. Saturates at 2^62 — the CPFPR model only needs
/// exponential bins, so exact counts above the cap are irrelevant.
inline uint64_t StrPrefixCountInRange(std::string_view lo, std::string_view hi,
                                      uint64_t l) {
  static constexpr uint64_t kCap = uint64_t{1} << 62;
  if (l == 0) return 1;
  if (l <= 64) {
    // Fast path: prefixes fit in a word.
    uint64_t plo = 0, phi = 0;
    for (uint64_t i = 0; i < l; ++i) {
      plo = (plo << 1) | (StrGetBit(lo, i) ? 1 : 0);
      phi = (phi << 1) | (StrGetBit(hi, i) ? 1 : 0);
    }
    return phi - plo + 1;
  }
  // Wide path: big-endian multiprecision subtraction over ceil(l/8) bytes,
  // saturating once the difference exceeds the cap.
  uint64_t lcp = StrLcpBits(lo, hi, l);
  if (lcp >= l) return 1;
  if (l - lcp > 62) return kCap;
  uint64_t plo = 0, phi = 0;
  for (uint64_t i = lcp; i < l; ++i) {
    plo = (plo << 1) | (StrGetBit(lo, i) ? 1 : 0);
    phi = (phi << 1) | (StrGetBit(hi, i) ? 1 : 0);
  }
  return phi - plo + 1;
}

/// Increments an l-bit padded prefix (a ceil(l/8)-byte buffer) in place —
/// the successor within the l-bit prefix space. Returns false on overflow
/// (the prefix was the all-ones maximum).
inline bool StrPrefixIncrement(std::string* prefix, uint64_t l) {
  uint32_t rem = static_cast<uint32_t>(l & 7);
  uint32_t carry = rem == 0 ? 1u : (1u << (8 - rem));
  for (size_t i = prefix->size(); i-- > 0 && carry != 0;) {
    uint32_t sum = static_cast<uint8_t>((*prefix)[i]) + carry;
    (*prefix)[i] = static_cast<char>(sum & 0xFF);
    carry = sum >> 8;
  }
  return carry == 0;
}

/// Successor of the l-bit prefix of `s`, returned as a fresh padded
/// ceil(l/8)-byte string. Returns false on overflow.
inline bool StrPrefixSuccessor(std::string_view s, uint64_t l,
                               std::string* out) {
  *out = StrPrefix(s, l);
  return StrPrefixIncrement(out, l);
}

}  // namespace proteus

#endif  // PROTEUS_UTIL_BITSTRING_H_
