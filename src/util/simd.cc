#include "util/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace proteus {
namespace {

bool EnvForceScalar() {
  const char* e = std::getenv("PROTEUS_FORCE_SCALAR");
  return e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0;
}

// Relaxed is enough: the switch only selects between two kernels that
// compute identical results.
std::atomic<bool>& ForceScalarFlag() {
  static std::atomic<bool> flag{EnvForceScalar()};
  return flag;
}

}  // namespace

bool CpuHasAvx2() {
#if PROTEUS_HAVE_AVX2_KERNELS
  static const bool have = __builtin_cpu_supports("avx2");
  return have;
#else
  return false;
#endif
}

bool ForceScalar() {
  return ForceScalarFlag().load(std::memory_order_relaxed);
}

bool SetForceScalar(bool force) {
  return ForceScalarFlag().exchange(force, std::memory_order_relaxed);
}

}  // namespace proteus
