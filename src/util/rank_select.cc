#include "util/rank_select.h"

#include <bit>

#include "util/bits.h"

namespace proteus {

void RankSelect::Build(const BitVector* bv) {
  bv_ = bv;
  n_ones_ = 0;
  const uint64_t n_words = bv->num_words();
  const uint64_t words_per_blk = kBlockBits / 64;
  n_blocks_ = (n_words + words_per_blk - 1) / words_per_blk;
  index_.assign(2 * (n_blocks_ + 1), 0);

  uint64_t ones = 0;
  for (uint64_t b = 0; b < n_blocks_; ++b) {
    index_[2 * b] = ones;
    uint64_t packed = 0;
    uint64_t in_blk = 0;
    for (uint64_t j = 0; j < words_per_blk; ++j) {
      // Cumulative count c_j of words [block start, block start + j); c_0
      // is implicit. A block holds at most 7 * 64 = 448 ones below its
      // last word, so every count fits 9 bits.
      if (j > 0) packed |= in_blk << (9 * (j - 1));
      const uint64_t w = b * words_per_blk + j;
      if (w < n_words) {
        in_blk += static_cast<uint64_t>(std::popcount(bv->word(w)));
      }
    }
    index_[2 * b + 1] = packed;
    ones += in_blk;
  }
  // Sentinel: Rank1(size()) at an exact block boundary and the select
  // binary searches read one entry past the last block.
  index_[2 * n_blocks_] = ones;
  n_ones_ = ones;
}

template <typename AbsFn>
uint64_t RankSelect::FindBlock(uint64_t r, AbsFn abs_of) const {
  // Invariant: abs_of(lo) < r <= abs_of(hi). abs_of(0) == 0 < r by the
  // select precondition r >= 1; the sentinel guarantees abs_of(n_blocks_)
  // covers the whole vector.
  uint64_t lo = 0;
  uint64_t hi = n_blocks_;
  while (hi - lo > 1) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (abs_of(mid) < r) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint64_t RankSelect::Select1(uint64_t r) const {
  assert(r >= 1 && r <= n_ones_ && "Select1 rank out of range");
  const uint64_t blk =
      FindBlock(r, [this](uint64_t b) { return index_[2 * b]; });
  uint64_t need = r - index_[2 * blk];
  const uint64_t packed = index_[2 * blk + 1];
  // Packed cumulative counts find the word without touching data words.
  uint64_t j = 0;
  for (uint64_t k = 1; k < 8; ++k) {
    const uint64_t c_k = (packed >> (9 * (k - 1))) & 0x1FF;
    if (c_k < need) j = k;
  }
  const uint64_t c_j = j == 0 ? 0 : (packed >> (9 * (j - 1))) & 0x1FF;
  const uint64_t w = blk * 8 + j;
  return w * 64 + static_cast<uint64_t>(
                      Select64(bv_->word(w), static_cast<int>(need - c_j)));
}

uint64_t RankSelect::Select0(uint64_t r) const {
  assert(r >= 1 && r <= zeros() && "Select0 rank out of range");
  // Zeros before block b: every bit before a (non-sentinel) block start is
  // a real data bit, so the complement of the ones directory is itself a
  // valid zeros directory.
  const uint64_t blk = FindBlock(
      r, [this](uint64_t b) { return b * kBlockBits - index_[2 * b]; });
  uint64_t count = blk * kBlockBits - index_[2 * blk];
  // Bounded scan of at most 8 words (one cache line of data); the final
  // word masks padding bits past size() so they never count as zeros.
  const uint64_t n_words = bv_->num_words();
  const uint64_t size = bv_->size();
  for (uint64_t w = blk * 8;; ++w) {
    const uint64_t valid =
        (w == n_words - 1 && (size & 63)) ? (size & 63) : 64;
    const uint64_t mask =
        valid == 64 ? ~uint64_t{0} : ((uint64_t{1} << valid) - 1);
    const uint64_t inv = (~bv_->word(w)) & mask;
    const uint64_t pop = static_cast<uint64_t>(std::popcount(inv));
    if (count + pop >= r) {
      return w * 64 +
             static_cast<uint64_t>(Select64(inv, static_cast<int>(r - count)));
    }
    count += pop;
  }
}

}  // namespace proteus
