#include "util/rank_select.h"

#include <bit>

#include "util/bits.h"
#include "util/simd.h"

#if PROTEUS_HAVE_AVX2_KERNELS
#include <immintrin.h>
#endif

namespace proteus {

void RankSelect::Build(const BitVector* bv) {
  bv_ = bv;
  n_ones_ = 0;
  const uint64_t n_words = bv->num_words();
  const uint64_t words_per_blk = kBlockBits / 64;
  n_blocks_ = (n_words + words_per_blk - 1) / words_per_blk;
  index_.assign(2 * (n_blocks_ + 1), 0);

  uint64_t ones = 0;
  for (uint64_t b = 0; b < n_blocks_; ++b) {
    index_[2 * b] = ones;
    uint64_t packed = 0;
    uint64_t in_blk = 0;
    for (uint64_t j = 0; j < words_per_blk; ++j) {
      // Cumulative count c_j of words [block start, block start + j); c_0
      // is implicit. A block holds at most 7 * 64 = 448 ones below its
      // last word, so every count fits 9 bits.
      if (j > 0) packed |= in_blk << (9 * (j - 1));
      const uint64_t w = b * words_per_blk + j;
      if (w < n_words) {
        in_blk += static_cast<uint64_t>(std::popcount(bv->word(w)));
      }
    }
    index_[2 * b + 1] = packed;
    ones += in_blk;
  }
  // Sentinel: Rank1(size()) at an exact block boundary and the select
  // binary searches read one entry past the last block.
  index_[2 * n_blocks_] = ones;
  n_ones_ = ones;
}

#if PROTEUS_HAVE_AVX2_KERNELS
namespace {

/// Per-lane popcount of four 64-bit words: nibble-LUT shuffle, then a
/// SAD against zero folds the 8 byte counts of each lane into its low
/// 16 bits. The classic in-register popcount — no cross-lane traffic.
__attribute__((target("avx2"))) inline __m256i PopcountEpi64(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i nib = _mm256_set1_epi8(0x0F);
  const __m256i lo = _mm256_shuffle_epi8(lut, _mm256_and_si256(v, nib));
  const __m256i hi = _mm256_shuffle_epi8(
      lut, _mm256_and_si256(_mm256_srli_epi16(v, 4), nib));
  return _mm256_sad_epu8(_mm256_add_epi8(lo, hi), _mm256_setzero_si256());
}

/// Four Rank1 queries per vector, mirroring the scalar path exactly:
/// gather the interleaved (abs, packed) directory pair, unpack the 9-bit
/// relative count (masked to zero for word 0 of a block, like the scalar
/// `-(w != 0)` trick), gather the target data word, and add its masked
/// popcount. Lanes with i % 64 == 0 contribute a zero mask — their data
/// word index is blended to 0 so the gather never reads past the last
/// word when i == size() lands on a word boundary.
__attribute__((target("avx2"))) size_t MultiRank1Avx2(
    const uint64_t* index, const uint64_t* words, const uint64_t* pos,
    size_t n, uint64_t* out) {
  const long long* idx_base = reinterpret_cast<const long long*>(index);
  const long long* word_base = reinterpret_cast<const long long*>(words);
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i rel_mask = _mm256_set1_epi64x(0x1FF);
  const __m256i low6 = _mm256_set1_epi64x(63);
  const __m256i seven = _mm256_set1_epi64x(7);
  const __m256i nine = _mm256_set1_epi64x(9);
  const __m256i zero = _mm256_setzero_si256();
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m256i i =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pos + j));
    const __m256i widx = _mm256_srli_epi64(i, 6);
    const __m256i pair = _mm256_slli_epi64(_mm256_srli_epi64(i, 9), 1);
    const __m256i abs = _mm256_i64gather_epi64(idx_base, pair, 8);
    const __m256i packed =
        _mm256_i64gather_epi64(idx_base, _mm256_add_epi64(pair, one), 8);
    const __m256i w = _mm256_and_si256(widx, seven);
    // shift = (9w - 9) & 63, exactly the scalar expression (w == 0 gives
    // a garbage shift that the cmpeq mask below squashes).
    const __m256i shift = _mm256_and_si256(
        _mm256_sub_epi64(_mm256_mul_epu32(w, nine), nine), low6);
    __m256i rel =
        _mm256_and_si256(_mm256_srlv_epi64(packed, shift), rel_mask);
    rel = _mm256_andnot_si256(_mm256_cmpeq_epi64(w, zero), rel);
    __m256i rank = _mm256_add_epi64(abs, rel);
    const __m256i rem = _mm256_and_si256(i, low6);
    const __m256i rem_zero = _mm256_cmpeq_epi64(rem, zero);
    // (1 << rem) - 1; rem == 0 correctly yields an all-zero mask, but its
    // lane's word index must not be dereferenced (i == size() may sit one
    // word past the end), so blend those indexes to word 0.
    const __m256i bit_mask =
        _mm256_sub_epi64(_mm256_sllv_epi64(one, rem), one);
    const __m256i safe_widx = _mm256_andnot_si256(rem_zero, widx);
    const __m256i data = _mm256_i64gather_epi64(word_base, safe_widx, 8);
    rank = _mm256_add_epi64(
        rank, PopcountEpi64(_mm256_and_si256(data, bit_mask)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j), rank);
  }
  return j;
}

}  // namespace
#endif  // PROTEUS_HAVE_AVX2_KERNELS

void RankSelect::MultiRank1(const uint64_t* pos, size_t n,
                            uint64_t* out) const {
  size_t j = 0;
#if PROTEUS_HAVE_AVX2_KERNELS
  // The kernel unconditionally gathers one data word per lane, so it
  // needs the vector to be non-empty (Rank1(0) on an empty vector is the
  // only legal query then, and the scalar loop handles it).
  if (SimdAvx2Enabled() && bv_ != nullptr && bv_->num_words() > 0) {
    j = MultiRank1Avx2(index_.data(), bv_->words(), pos, n, out);
  }
#endif
  for (; j < n; ++j) out[j] = Rank1(pos[j]);
}

template <typename AbsFn>
uint64_t RankSelect::FindBlock(uint64_t r, AbsFn abs_of) const {
  // Invariant: abs_of(lo) < r <= abs_of(hi). abs_of(0) == 0 < r by the
  // select precondition r >= 1; the sentinel guarantees abs_of(n_blocks_)
  // covers the whole vector.
  uint64_t lo = 0;
  uint64_t hi = n_blocks_;
  while (hi - lo > 1) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (abs_of(mid) < r) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint64_t RankSelect::Select1(uint64_t r) const {
  assert(r >= 1 && r <= n_ones_ && "Select1 rank out of range");
  const uint64_t blk =
      FindBlock(r, [this](uint64_t b) { return index_[2 * b]; });
  uint64_t need = r - index_[2 * blk];
  const uint64_t packed = index_[2 * blk + 1];
  // Packed cumulative counts find the word without touching data words.
  uint64_t j = 0;
  for (uint64_t k = 1; k < 8; ++k) {
    const uint64_t c_k = (packed >> (9 * (k - 1))) & 0x1FF;
    if (c_k < need) j = k;
  }
  const uint64_t c_j = j == 0 ? 0 : (packed >> (9 * (j - 1))) & 0x1FF;
  const uint64_t w = blk * 8 + j;
  return w * 64 + static_cast<uint64_t>(
                      Select64(bv_->word(w), static_cast<int>(need - c_j)));
}

uint64_t RankSelect::Select0(uint64_t r) const {
  assert(r >= 1 && r <= zeros() && "Select0 rank out of range");
  // Zeros before block b: every bit before a (non-sentinel) block start is
  // a real data bit, so the complement of the ones directory is itself a
  // valid zeros directory.
  const uint64_t blk = FindBlock(
      r, [this](uint64_t b) { return b * kBlockBits - index_[2 * b]; });
  uint64_t count = blk * kBlockBits - index_[2 * blk];
  // Bounded scan of at most 8 words (one cache line of data); the final
  // word masks padding bits past size() so they never count as zeros.
  const uint64_t n_words = bv_->num_words();
  const uint64_t size = bv_->size();
  for (uint64_t w = blk * 8;; ++w) {
    const uint64_t valid =
        (w == n_words - 1 && (size & 63)) ? (size & 63) : 64;
    const uint64_t mask =
        valid == 64 ? ~uint64_t{0} : ((uint64_t{1} << valid) - 1);
    const uint64_t inv = (~bv_->word(w)) & mask;
    const uint64_t pop = static_cast<uint64_t>(std::popcount(inv));
    if (count + pop >= r) {
      return w * 64 +
             static_cast<uint64_t>(Select64(inv, static_cast<int>(r - count)));
    }
    count += pop;
  }
}

}  // namespace proteus
