#include "util/rank_select.h"

#include <bit>

#include "util/bits.h"

namespace proteus {

void RankSelect::Build(const BitVector* bv) {
  bv_ = bv;
  n_ones_ = 0;
  superblock_ranks_.clear();
  select1_samples_.clear();
  select0_samples_.clear();

  const uint64_t n_words = bv->num_words();
  const uint64_t words_per_sb = kSuperblockBits / 64;
  superblock_ranks_.reserve(n_words / words_per_sb + 2);

  uint64_t ones = 0;
  uint64_t zeros = 0;
  for (uint64_t w = 0; w < n_words; ++w) {
    if (w % words_per_sb == 0) superblock_ranks_.push_back(ones);
    const uint64_t valid =
        (w == n_words - 1 && (bv->size() & 63)) ? (bv->size() & 63) : 64;
    const uint64_t mask =
        valid == 64 ? ~uint64_t{0} : ((uint64_t{1} << valid) - 1);
    const uint64_t word = bv->word(w) & mask;
    const uint64_t pop = static_cast<uint64_t>(std::popcount(word));
    const uint64_t zpop = valid - pop;
    // Record the word containing the (k*kSelectSample + 1)-th one/zero.
    while (select1_samples_.size() * kSelectSample + 1 <= ones + pop &&
           select1_samples_.size() * kSelectSample + 1 > ones) {
      select1_samples_.push_back(w);
    }
    while (select0_samples_.size() * kSelectSample + 1 <= zeros + zpop &&
           select0_samples_.size() * kSelectSample + 1 > zeros) {
      select0_samples_.push_back(w);
    }
    ones += pop;
    zeros += zpop;
  }
  n_ones_ = ones;
  // Sentinel so Rank1(size()) at an exact superblock boundary stays in
  // bounds.
  superblock_ranks_.push_back(ones);
  if (superblock_ranks_.empty()) superblock_ranks_.push_back(0);
  if (select1_samples_.empty()) select1_samples_.push_back(0);
  if (select0_samples_.empty()) select0_samples_.push_back(0);
}

uint64_t RankSelect::Rank1(uint64_t i) const {
  const uint64_t words_per_sb = kSuperblockBits / 64;
  uint64_t word = i >> 6;
  uint64_t sb = word / words_per_sb;
  uint64_t rank = superblock_ranks_[sb];
  for (uint64_t w = sb * words_per_sb; w < word; ++w) {
    rank += static_cast<uint64_t>(std::popcount(bv_->word(w)));
  }
  uint64_t rem = i & 63;
  if (rem != 0 && word < bv_->num_words()) {
    rank += static_cast<uint64_t>(
        std::popcount(bv_->word(word) & ((uint64_t{1} << rem) - 1)));
  }
  return rank;
}

uint64_t RankSelect::Select1(uint64_t r) const {
  uint64_t w = select1_samples_[(r - 1) / kSelectSample];
  // Ones strictly before word w.
  uint64_t count = Rank1(w * 64);
  for (uint64_t i = w;; ++i) {
    uint64_t pop = static_cast<uint64_t>(std::popcount(bv_->word(i)));
    if (count + pop >= r) {
      return i * 64 +
             static_cast<uint64_t>(
                 Select64(bv_->word(i), static_cast<int>(r - count)));
    }
    count += pop;
  }
}

uint64_t RankSelect::Select0(uint64_t r) const {
  uint64_t w = select0_samples_[(r - 1) / kSelectSample];
  uint64_t count = w * 64 - Rank1(w * 64);  // zeros before word w
  for (uint64_t i = w;; ++i) {
    const uint64_t valid = (i == bv_->num_words() - 1 && (bv_->size() & 63))
                               ? (bv_->size() & 63)
                               : 64;
    const uint64_t mask =
        valid == 64 ? ~uint64_t{0} : ((uint64_t{1} << valid) - 1);
    const uint64_t inv = (~bv_->word(i)) & mask;
    const uint64_t pop = static_cast<uint64_t>(std::popcount(inv));
    if (count + pop >= r) {
      return i * 64 +
             static_cast<uint64_t>(Select64(inv, static_cast<int>(r - count)));
    }
    count += pop;
  }
}

}  // namespace proteus
