// CRC32C (Castagnoli, polynomial 0x1EDC6F41 reflected to 0x82F63B78) —
// the per-block checksum used by the WAL, the MANIFEST delta log, and the
// v3 SST index handles.
//
// Chosen over the Murmur3/ClHash checksums used elsewhere because the
// Castagnoli polynomial has a hardware instruction on x86 (SSE4.2
// crc32q): Crc32c() dispatches at runtime to the hardware path when the
// CPU has it and falls back to a slicing-by-8 table implementation
// otherwise, so the on-disk format is identical on every machine.

#ifndef PROTEUS_UTIL_CRC32C_H_
#define PROTEUS_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace proteus {

/// CRC32C of `n` bytes at `data` (standard init/final xor with ~0).
uint32_t Crc32c(const void* data, size_t n);

inline uint32_t Crc32c(std::string_view data) {
  return Crc32c(data.data(), data.size());
}

/// Extends a previous Crc32c result as if the two buffers had been
/// checksummed in one call: Crc32cExtend(Crc32c(a), b) == Crc32c(a+b).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// True when the runtime dispatch selected the SSE4.2 hardware path
/// (diagnostics / tests; both paths produce identical checksums).
bool Crc32cUsesHardware();

/// The table-driven portable implementation, exposed so tests can verify
/// the hardware path against it on machines that have both.
uint32_t Crc32cPortable(const void* data, size_t n);

/// Appends the length-prefixed CRC frame shared by the WAL and the
/// MANIFEST delta log (docs/FORMAT.md "Record framing"):
///   u32 length | u32 crc32c(payload) | payload
/// One definition so the two logs can never drift apart.
inline void AppendCrcFrame(std::string* out, std::string_view payload) {
  char header[8];
  const uint32_t length = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32c(payload);
  std::memcpy(header, &length, 4);
  std::memcpy(header + 4, &crc, 4);
  out->append(header, 8);
  out->append(payload);
}

}  // namespace proteus

#endif  // PROTEUS_UTIL_CRC32C_H_
