// Shared POSIX I/O helpers for the storage layer (WAL, MANIFEST, SST
// writers) — one EINTR-correct write-all loop, one whole-file reader,
// and one errno-to-message formatter, instead of a copy per file.

#ifndef PROTEUS_UTIL_POSIX_IO_H_
#define PROTEUS_UTIL_POSIX_IO_H_

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <string_view>

#include "util/status.h"

namespace proteus {

/// "<what>: <strerror(errno)>" — format an errno right where it happened.
inline std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

/// Writes all of `data` to `fd`, retrying on EINTR and short writes.
/// `what` names the destination in the error message ("WAL write", ...).
inline Status WriteAllFd(int fd, std::string_view data, const char* what) {
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno(std::string(what) + " failed"));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads the whole file into `*out`. A missing file is not an error:
/// `*found` reports whether the file existed (out stays empty if not).
inline Status ReadFileToString(const std::string& path, std::string* out,
                               bool* found) {
  out->clear();
  *found = false;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::OK();
    return Status::IOError(Errno("cannot open " + path));
  }
  *found = true;
  char buf[1 << 16];
  for (;;) {
    ssize_t got = ::read(fd, buf, sizeof(buf));
    if (got > 0) {
      out->append(buf, static_cast<size_t>(got));
    } else if (got == 0) {
      break;
    } else if (errno != EINTR) {
      ::close(fd);
      return Status::IOError(Errno("cannot read " + path));
    }
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace proteus

#endif  // PROTEUS_UTIL_POSIX_IO_H_
