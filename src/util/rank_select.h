// Rank and select support over a BitVector.
//
// RankSelect is an immutable index built once over a finished BitVector.
// Rank uses 512-bit superblocks holding absolute counts; a query pops at
// most 7 words past the superblock boundary. Select keeps position samples
// every kSelectSample-th one (and zero) and scans forward from the sample,
// which is O(kSelectSample/64) words worst case — plenty for the LOUDS
// navigation patterns in this library, which are rank-heavy.

#ifndef PROTEUS_UTIL_RANK_SELECT_H_
#define PROTEUS_UTIL_RANK_SELECT_H_

#include <cstdint>
#include <vector>

#include "util/bit_vector.h"

namespace proteus {

class RankSelect {
 public:
  static constexpr uint64_t kSuperblockBits = 512;
  static constexpr uint64_t kSelectSample = 512;

  RankSelect() = default;

  /// Builds the index over `bv`. The caller must keep `bv` alive and
  /// unchanged for the lifetime of this index.
  explicit RankSelect(const BitVector* bv) { Build(bv); }

  void Build(const BitVector* bv);

  /// Number of ones in bv[0, i)  (i may equal size()).
  uint64_t Rank1(uint64_t i) const;

  /// Number of zeros in bv[0, i).
  uint64_t Rank0(uint64_t i) const { return i - Rank1(i); }

  /// Position of the r-th (1-based) one. Precondition: 1 <= r <= ones().
  uint64_t Select1(uint64_t r) const;

  /// Position of the r-th (1-based) zero. Precondition: 1 <= r <= zeros().
  uint64_t Select0(uint64_t r) const;

  uint64_t ones() const { return n_ones_; }
  uint64_t zeros() const { return bv_ ? bv_->size() - n_ones_ : 0; }

  /// Index memory footprint in bits (excludes the BitVector itself).
  uint64_t SizeBits() const {
    return 64 * (superblock_ranks_.size() + select1_samples_.size() +
                 select0_samples_.size());
  }

 private:
  const BitVector* bv_ = nullptr;
  uint64_t n_ones_ = 0;
  std::vector<uint64_t> superblock_ranks_;   // absolute rank at block start
  std::vector<uint64_t> select1_samples_;    // position of (k*sample+1)-th one
  std::vector<uint64_t> select0_samples_;
};

}  // namespace proteus

#endif  // PROTEUS_UTIL_RANK_SELECT_H_
