// Rank and select support over a BitVector.
//
// RankSelect is an immutable index built once over a finished BitVector,
// laid out rank9/poppy-style for O(1), loop-free queries: the bit vector is
// cut into 512-bit basic blocks, and each block owns two interleaved index
// words — a 64-bit absolute rank at the block start, and seven 9-bit
// relative (within-block, cumulative) counts packed into the second word.
// Rank1 is therefore two adjacent index reads plus one masked popcount of
// the target data word; it never loops over data words. Select1/Select0
// binary-search the absolute-rank directory down to one block, use the
// packed relative counts (Select1) or a bounded eight-word scan (Select0)
// to find the word, and finish with an in-word select.
//
// Index overhead is 128 bits per 512 data bits (25%), plus one sentinel
// block entry so Rank1(size()) at an exact block boundary stays in bounds.

#ifndef PROTEUS_UTIL_RANK_SELECT_H_
#define PROTEUS_UTIL_RANK_SELECT_H_

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "util/bit_vector.h"

namespace proteus {

class RankSelect {
 public:
  /// Basic block width; one interleaved (absolute, packed-relative) index
  /// pair covers this many data bits.
  static constexpr uint64_t kBlockBits = 512;

  RankSelect() = default;

  /// Builds the index over `bv`. The caller must keep `bv` alive and
  /// unchanged for the lifetime of this index.
  explicit RankSelect(const BitVector* bv) { Build(bv); }

  void Build(const BitVector* bv);

  /// Number of ones in bv[0, i)  (i may equal size()). O(1): two index
  /// reads plus one masked popcount, no loop over data words.
  uint64_t Rank1(uint64_t i) const {
    // Overlap the (likely cold) data-word fetch with the index reads.
    __builtin_prefetch(bv_->words() + (i >> 6));
    const uint64_t blk = i >> 9;
    const uint64_t word_in_blk = (i >> 6) & 7;
    const uint64_t abs = index_[2 * blk];
    const uint64_t packed = index_[2 * blk + 1];
    // Relative count of words [block start, word_in_blk); c_0 == 0 is
    // implicit, so mask the (garbage) shift result to zero for word 0.
    uint64_t rel = (packed >> ((9 * word_in_blk - 9) & 63)) & 0x1FF;
    rel &= -static_cast<uint64_t>(word_in_blk != 0);
    uint64_t rank = abs + rel;
    const uint64_t rem = i & 63;
    if (rem != 0) {
      rank += static_cast<uint64_t>(std::popcount(
          bv_->word(i >> 6) & ((uint64_t{1} << rem) - 1)));
    }
    return rank;
  }

  /// Batch rank: out[j] = Rank1(pos[j]) for j < n. Dispatches to an AVX2
  /// kernel that gathers the rank9 directory pairs and data words for
  /// four positions per vector (two vectors in flight) and popcounts the
  /// masked words with an in-register nibble LUT; falls back to the
  /// scalar Rank1 loop on non-AVX2 machines or under PROTEUS_FORCE_SCALAR
  /// (util/simd.h). Identical results on both paths.
  void MultiRank1(const uint64_t* pos, size_t n, uint64_t* out) const;

  /// Number of zeros in bv[0, i).
  uint64_t Rank0(uint64_t i) const { return i - Rank1(i); }

  /// Position of the r-th (1-based) one. Precondition: 1 <= r <= ones().
  uint64_t Select1(uint64_t r) const;

  /// Position of the r-th (1-based) zero. Precondition: 1 <= r <= zeros().
  uint64_t Select0(uint64_t r) const;

  uint64_t ones() const { return n_ones_; }
  uint64_t zeros() const { return bv_ ? bv_->size() - n_ones_ : 0; }

  /// Index memory footprint in bits (excludes the BitVector itself).
  uint64_t SizeBits() const { return 64 * index_.size(); }

 private:
  /// Largest block whose absolute count (per `abs_of`) is < r; the search
  /// runs over [0, n_blocks_] including the sentinel entry.
  template <typename AbsFn>
  uint64_t FindBlock(uint64_t r, AbsFn abs_of) const;

  const BitVector* bv_ = nullptr;
  uint64_t n_ones_ = 0;
  uint64_t n_blocks_ = 0;
  // Interleaved pairs: index_[2b] = ones before block b (absolute),
  // index_[2b+1] = seven packed 9-bit cumulative in-block word counts.
  // One sentinel pair at index n_blocks_.
  std::vector<uint64_t> index_;
};

}  // namespace proteus

#endif  // PROTEUS_UTIL_RANK_SELECT_H_
