// A growable, packed bit vector with LSB-first addressing inside words.
//
// This is the raw storage backing the rank/select structures and the LOUDS
// encodings. Unlike bits.h (which uses MSB-first key semantics), BitVector
// uses the conventional LSB-first layout: bit i lives in word i/64 at
// position i%64. Rank/select results are unaffected by the choice as long
// as it is consistent, and LSB-first keeps the hot paths branch-free.

#ifndef PROTEUS_UTIL_BIT_VECTOR_H_
#define PROTEUS_UTIL_BIT_VECTOR_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace proteus {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(uint64_t n_bits, bool value = false)
      : n_bits_(n_bits),
        words_((n_bits + 63) / 64, value ? ~uint64_t{0} : uint64_t{0}) {
    TrimLastWord();
  }

  uint64_t size() const { return n_bits_; }
  bool empty() const { return n_bits_ == 0; }

  bool Get(uint64_t i) const { return (words_[i >> 6] >> (i & 63)) & 1; }

  void Set(uint64_t i, bool v = true) {
    uint64_t mask = uint64_t{1} << (i & 63);
    if (v) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  /// Appends one bit at the end.
  void PushBack(bool v) {
    if ((n_bits_ & 63) == 0) words_.push_back(0);
    if (v) words_.back() |= uint64_t{1} << (n_bits_ & 63);
    ++n_bits_;
  }

  /// Appends the low `len` bits of `bits`, lowest bit first.
  void PushBits(uint64_t bits, int len) {
    for (int i = 0; i < len; ++i) PushBack((bits >> i) & 1);
  }

  /// Total set bits; O(words).
  uint64_t CountOnes() const {
    uint64_t c = 0;
    for (uint64_t w : words_) c += static_cast<uint64_t>(__builtin_popcountll(w));
    return c;
  }

  /// First set bit in [from, limit), or `limit` if none. O(words scanned).
  uint64_t NextSetBit(uint64_t from, uint64_t limit) const {
    if (from >= limit) return limit;
    uint64_t w = from >> 6;
    uint64_t word = words_[w] & (~uint64_t{0} << (from & 63));
    for (;;) {
      if (word != 0) {
        uint64_t pos = w * 64 +
                       static_cast<uint64_t>(__builtin_ctzll(word));
        return pos < limit ? pos : limit;
      }
      if (++w >= words_.size() || w * 64 >= limit) return limit;
      word = words_[w];
    }
  }

  /// Bits [pos, pos + len) as one word, LSB-first (bit `pos` at bit 0).
  /// len <= 64 and pos + len <= size(). At most two word reads.
  uint64_t GetBits(uint64_t pos, uint32_t len) const {
    const uint64_t w = pos >> 6;
    const uint32_t off = static_cast<uint32_t>(pos & 63);
    uint64_t out = words_[w] >> off;
    if (off + len > 64) out |= words_[w + 1] << (64 - off);
    if (len < 64) out &= (uint64_t{1} << len) - 1;
    return out;
  }

  const uint64_t* words() const { return words_.data(); }
  uint64_t num_words() const { return words_.size(); }

  /// Word i, with bits past size() guaranteed zero.
  uint64_t word(uint64_t i) const { return words_[i]; }

  /// Memory footprint of the raw bits, in bits (excludes rank/select).
  uint64_t SizeBits() const { return words_.size() * 64; }

  void Clear() {
    n_bits_ = 0;
    words_.clear();
  }

  bool operator==(const BitVector& o) const {
    return n_bits_ == o.n_bits_ && words_ == o.words_;
  }

  /// Serialization: u64 bit count followed by the raw words.
  void AppendTo(std::string* out) const {
    char buf[8];
    std::memcpy(buf, &n_bits_, 8);
    out->append(buf, 8);
    out->append(reinterpret_cast<const char*>(words_.data()),
                words_.size() * sizeof(uint64_t));
  }

  static bool ParseFrom(std::string_view* in, BitVector* out) {
    if (in->size() < 8) return false;
    uint64_t n_bits;
    std::memcpy(&n_bits, in->data(), 8);
    // Guard against corrupt bit counts before sizing anything: the words
    // must fit in the remaining input (this also prevents the
    // (n_bits + 63) overflow wrapping n_words to 0).
    if (n_bits > (in->size() - 8) * 8) return false;
    uint64_t n_words = (n_bits + 63) / 64;
    if (in->size() < 8 + n_words * 8) return false;
    out->n_bits_ = n_bits;
    out->words_.resize(n_words);
    if (n_words > 0) {
      std::memcpy(out->words_.data(), in->data() + 8, n_words * 8);
    }
    // Re-establish the word() invariant (bits past size() are zero) even
    // for corrupt input — the rank index popcounts raw words and would
    // otherwise absorb phantom ones into its directory.
    out->TrimLastWord();
    in->remove_prefix(8 + n_words * 8);
    return true;
  }

 private:
  void TrimLastWord() {
    if (n_bits_ & 63) {
      words_.back() &= (uint64_t{1} << (n_bits_ & 63)) - 1;
    }
  }

  uint64_t n_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace proteus

#endif  // PROTEUS_UTIL_BIT_VECTOR_H_
