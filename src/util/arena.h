// Append-only arena allocator for memtable nodes.
//
// A memtable's skiplist nodes share one lifetime: they are born as writes
// arrive and die together when the flushed memtable is retired. The arena
// exploits that — allocation is a bump of an atomic offset (no per-node
// malloc on the write hot path, no free list), and the whole memtable's
// memory is returned in one sweep when the arena is destroyed.
//
// Concurrency: Allocate() is safe from any number of threads (the Db's
// batch followers apply their writes to memtable shards in parallel).
// The fast path is a single fetch_add into the current block; only
// minting a fresh block takes a mutex. A thread that overshoots a block's
// capacity leaves the overshot gap unused — bounded waste (< one
// allocation per racing thread per block), never a correctness issue.
//
// Deallocation of individual objects is deliberately unsupported; nodes
// must be trivially destructible or have their destructors skipped (the
// skiplist stores raw bytes, so nothing needs destruction).

#ifndef PROTEUS_UTIL_ARENA_H_
#define PROTEUS_UTIL_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>

namespace proteus {

class Arena {
 public:
  static constexpr size_t kBlockBytes = 256u << 10;

  Arena() { current_.store(NewBlock(kBlockBytes, nullptr), std::memory_order_release); }
  ~Arena() {
    Block* b = current_.load(std::memory_order_relaxed);
    while (b != nullptr) {
      Block* prev = b->prev;
      ::operator delete(static_cast<void*>(b));
      b = prev;
    }
  }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of 8-aligned storage that lives until the arena is
  /// destroyed. Thread-safe; lock-free except when a new block is minted.
  char* Allocate(size_t bytes) {
    bytes = (bytes + 7) & ~size_t{7};
    Block* b = current_.load(std::memory_order_acquire);
    const size_t off = b->offset.fetch_add(bytes, std::memory_order_relaxed);
    if (off + bytes <= b->capacity) return b->data() + off;
    return AllocateSlow(bytes);
  }

  /// Total bytes reserved from the system (block capacities, not the
  /// bump offsets) — the memtable memory-accounting figure.
  size_t MemoryUsage() const {
    return reserved_.load(std::memory_order_relaxed);
  }

 private:
  struct Block {
    size_t capacity;
    std::atomic<size_t> offset;
    Block* prev;
    char* data() { return reinterpret_cast<char*>(this + 1); }
  };

  Block* NewBlock(size_t capacity, Block* prev) {
    void* mem = ::operator new(sizeof(Block) + capacity);
    Block* b = static_cast<Block*>(mem);
    b->capacity = capacity;
    b->offset.store(0, std::memory_order_relaxed);
    b->prev = prev;
    reserved_.fetch_add(sizeof(Block) + capacity, std::memory_order_relaxed);
    return b;
  }

  char* AllocateSlow(size_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    // Another loser of the fetch_add race may have minted a block already.
    Block* b = current_.load(std::memory_order_relaxed);
    size_t off = b->offset.fetch_add(bytes, std::memory_order_relaxed);
    if (off + bytes <= b->capacity) return b->data() + off;
    const size_t cap = bytes > kBlockBytes ? bytes : kBlockBytes;
    Block* fresh = NewBlock(cap, b);
    fresh->offset.store(bytes, std::memory_order_relaxed);
    current_.store(fresh, std::memory_order_release);
    return fresh->data();
  }

  std::atomic<Block*> current_{nullptr};
  std::atomic<size_t> reserved_{0};
  std::mutex mu_;
};

}  // namespace proteus

#endif  // PROTEUS_UTIL_ARENA_H_
