// Runtime SIMD dispatch for the batch probe kernels.
//
// The AVX2 kernels (BloomFilter::MultiContainHash, RankSelect::MultiRank1)
// follow the same one-binary-runs-everywhere idiom as the BMI2 Select64
// fast path in bits.h and the SSE4.2 CRC32C in crc32c.cc: the vector body
// is compiled behind a target attribute, a cached __builtin_cpu_supports
// probe picks it at runtime, and the scalar path remains the
// always-correct fallback on every machine.
//
// Two switches keep the scalar path reachable forever, even on AVX2
// hardware:
//  * the PROTEUS_FORCE_SCALAR environment variable (set and not "0"),
//    read once at startup — this is what the CI forced-scalar matrix leg
//    sets so both code paths stay gated by the full test suite;
//  * SetForceScalar(), a runtime override the differential tests and
//    benchmarks toggle to compare both kernels inside one process.

#ifndef PROTEUS_UTIL_SIMD_H_
#define PROTEUS_UTIL_SIMD_H_

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PROTEUS_HAVE_AVX2_KERNELS 1
#endif

namespace proteus {

/// True if this CPU executes AVX2 (cached cpuid probe).
bool CpuHasAvx2();

/// The scalar override: true if PROTEUS_FORCE_SCALAR was set in the
/// environment (to anything but "0") or SetForceScalar(true) was called.
bool ForceScalar();

/// Runtime override of the force-scalar switch; returns the previous
/// value. Used by differential tests and scalar-vs-SIMD benchmarks.
bool SetForceScalar(bool force);

/// The single dispatch predicate every batch kernel consults: AVX2 is
/// available and the scalar override is off.
inline bool SimdAvx2Enabled() { return CpuHasAvx2() && !ForceScalar(); }

}  // namespace proteus

#endif  // PROTEUS_UTIL_SIMD_H_
