// proteus::Status — the error type threaded through every durable-path
// operation (Put/Delete/Flush/Open, SST and MANIFEST writers, the WAL).
//
// Replaces the bool + stderr convention the write path grew up with:
// a failed write now returns a code and a message the caller can act on
// instead of a line in a log nobody reads. The OK path stores nothing
// (empty message, code 0), so returning Status::OK() costs a move of an
// empty string.
//
// Codes mirror the failure classes the storage layer distinguishes:
//   kIOError         the OS said no (open/write/fsync/rename failed)
//   kCorruption      bytes on disk fail a checksum / magic / bounds check
//   kNotFound        a referenced file or record is absent
//   kInvalidArgument the caller passed something unusable (bad spec, ...)
//   kNotSupported    a format version this build does not understand

#ifndef PROTEUS_UTIL_STATUS_H_
#define PROTEUS_UTIL_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace proteus {

class Status {
 public:
  enum class Code : uint8_t {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kIOError = 3,
    kInvalidArgument = 4,
    kNotSupported = 5,
  };

  Status() = default;  // OK

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = CodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

 private:
  Status(Code code, std::string_view msg)
      : code_(code), message_(msg) {}

  static const char* CodeName(Code code) {
    switch (code) {
      case Code::kOk:
        return "OK";
      case Code::kNotFound:
        return "NotFound";
      case Code::kCorruption:
        return "Corruption";
      case Code::kIOError:
        return "IOError";
      case Code::kInvalidArgument:
        return "InvalidArgument";
      case Code::kNotSupported:
        return "NotSupported";
    }
    return "Unknown";
  }

  Code code_ = Code::kOk;
  std::string message_;
};

}  // namespace proteus

#endif  // PROTEUS_UTIL_STATUS_H_
