// Wall-clock stopwatch used by the benchmark harnesses and the Table 2
// construction-cost breakdown.

#ifndef PROTEUS_UTIL_TIMER_H_
#define PROTEUS_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace proteus {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in nanoseconds.
  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace proteus

#endif  // PROTEUS_UTIL_TIMER_H_
