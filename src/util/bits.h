// Low-level bit-manipulation helpers shared by the succinct structures,
// Bloom filters, and the CPFPR model.
//
// Bit-order convention used throughout the library: keys are bit strings
// read most-significant bit first. "Prefix of length l" always means the
// first l bits in that order (for a uint64_t key, its top l bits).

#ifndef PROTEUS_UTIL_BITS_H_
#define PROTEUS_UTIL_BITS_H_

#include <bit>
#include <cstdint>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
// BMI2 PDEP fast path for Select64: compiled behind a target attribute
// and selected at runtime, so one binary runs everywhere.
#define PROTEUS_SELECT64_HAVE_PDEP 1
#include <immintrin.h>
#endif

namespace proteus {

/// Number of set bits in a 64-bit word.
inline int PopCount64(uint64_t x) { return std::popcount(x); }

/// Portable Select64 (see Select64 below for the contract). Exposed so
/// the PDEP fast path can be validated against it on any machine.
inline int Select64Portable(uint64_t x, int r) {
  // Byte-skipping implementation: cheap and portable (no PDEP dependency).
  for (int byte = 0; byte < 8; ++byte) {
    int c = std::popcount(static_cast<unsigned>((x >> (byte * 8)) & 0xFF));
    if (r <= c) {
      uint8_t b = static_cast<uint8_t>(x >> (byte * 8));
      for (int bit = 0; bit < 8; ++bit) {
        if (b & (1u << bit)) {
          if (--r == 0) return byte * 8 + bit;
        }
      }
    }
    r -= c;
  }
  return -1;  // Unreachable when the precondition holds.
}

#if PROTEUS_SELECT64_HAVE_PDEP

/// PDEP deposits the single bit 1<<(r-1) into the positions of x's set
/// bits, landing it exactly on the r-th set bit; countr_zero reads the
/// answer. Two data-independent instructions vs the portable byte scan.
__attribute__((target("bmi2"))) inline int Select64Pdep(uint64_t x, int r) {
  uint64_t deposited = _pdep_u64(uint64_t{1} << (r - 1), x);
  return deposited == 0 ? -1 : std::countr_zero(deposited);
}

inline bool CpuHasBmi2() {
  static const bool have = __builtin_cpu_supports("bmi2");
  return have;
}

/// Index (0-based, from the LSB) of the r-th (1-based) set bit of x.
/// Precondition: PopCount64(x) >= r >= 1.
inline int Select64(uint64_t x, int r) {
  return CpuHasBmi2() ? Select64Pdep(x, r) : Select64Portable(x, r);
}

#else

inline int Select64(uint64_t x, int r) { return Select64Portable(x, r); }

#endif  // PROTEUS_SELECT64_HAVE_PDEP

/// Reverses the bit order of a 64-bit word (bit 0 <-> bit 63).
inline uint64_t ReverseBits64(uint64_t x) {
  x = ((x >> 1) & 0x5555555555555555ull) | ((x & 0x5555555555555555ull) << 1);
  x = ((x >> 2) & 0x3333333333333333ull) | ((x & 0x3333333333333333ull) << 2);
  x = ((x >> 4) & 0x0F0F0F0F0F0F0F0Full) | ((x & 0x0F0F0F0F0F0F0F0Full) << 4);
  return __builtin_bswap64(x);
}

/// Reverses the bit order inside each byte, keeping byte order. Turns an
/// LSB-first bit stream into the big-endian MSB-first byte layout used by
/// string keys: stream bit t lands in byte t/8 at in-byte MSB offset t%8.
inline uint64_t ReverseBitsInBytes64(uint64_t x) {
  x = ((x >> 1) & 0x5555555555555555ull) | ((x & 0x5555555555555555ull) << 1);
  x = ((x >> 2) & 0x3333333333333333ull) | ((x & 0x3333333333333333ull) << 2);
  x = ((x >> 4) & 0x0F0F0F0F0F0F0F0Full) | ((x & 0x0F0F0F0F0F0F0F0Full) << 4);
  return x;
}

/// Length of the longest common prefix (in bits) of two 64-bit keys, viewing
/// each as a 64-bit big-endian bit string. Returns 64 when a == b.
inline uint32_t LcpBits64(uint64_t a, uint64_t b) {
  uint64_t x = a ^ b;
  return x == 0 ? 64u : static_cast<uint32_t>(std::countl_zero(x));
}

/// The l-bit prefix of `key` (its top l bits), right-aligned.
/// PrefixBits64(k, 0) == 0 and PrefixBits64(k, 64) == k.
inline uint64_t PrefixBits64(uint64_t key, uint32_t l) {
  return l == 0 ? 0 : key >> (64 - l);
}

/// Number of distinct l-bit prefixes covering the inclusive range [lo, hi].
/// This is |Q_l| from the CPFPR model (Section 3.1 of the paper).
inline uint64_t PrefixCountInRange64(uint64_t lo, uint64_t hi, uint32_t l) {
  return PrefixBits64(hi, l) - PrefixBits64(lo, l) + 1;
}

/// Smallest key having the given l-bit prefix.
inline uint64_t PrefixRangeLo64(uint64_t prefix, uint32_t l) {
  return l == 0 ? 0 : prefix << (64 - l);
}

/// Largest key having the given l-bit prefix.
inline uint64_t PrefixRangeHi64(uint64_t prefix, uint32_t l) {
  if (l == 0) return ~uint64_t{0};
  return (prefix << (64 - l)) | (l == 64 ? 0 : (~uint64_t{0} >> l));
}

/// Ceiling division for positive integers.
inline uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// Reads bit i (0 = MSB of word 0) from a packed word array.
inline bool GetBitMsb(const uint64_t* words, uint64_t i) {
  return (words[i >> 6] >> (63 - (i & 63))) & 1;
}

/// Sets bit i (0 = MSB of word 0) in a packed word array.
inline void SetBitMsb(uint64_t* words, uint64_t i) {
  words[i >> 6] |= uint64_t{1} << (63 - (i & 63));
}

}  // namespace proteus

#endif  // PROTEUS_UTIL_BITS_H_
