// Deterministic pseudo-random number generation.
//
// All experiments in this repository are seeded, and we avoid the standard
// <random> distributions (whose outputs are implementation-defined) so that
// workloads are reproducible bit-for-bit across standard libraries.

#ifndef PROTEUS_UTIL_RANDOM_H_
#define PROTEUS_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace proteus {

/// SplitMix64: fast, well-distributed 64-bit mixer. Used both as a stream
/// generator and as a seeding function for Xoshiro256**.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Xoshiro256** by Blackman & Vigna — the workhorse generator.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    uint64_t sm = seed;
    for (auto& s : s_) s = SplitMix64(sm);
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) with Lemire's multiply-shift rejection.
  uint64_t NextBelow(uint64_t bound) {
    if (bound == 0) return 0;
    uint64_t threshold = -bound % bound;
    for (;;) {
      uint64_t x = Next();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      if (static_cast<uint64_t>(m) >= threshold) {
        return static_cast<uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform in the inclusive range [lo, hi].
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    uint64_t span = hi - lo;
    if (span == ~uint64_t{0}) return Next();
    return lo + NextBelow(span + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Standard normal via Box–Muller (deterministic given the stream).
  double NextGaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1, u2;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-300);
    u2 = NextDouble();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    have_spare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
  }

  /// Log-normal sample with the given parameters of the underlying normal.
  double NextLogNormal(double mu, double sigma) {
    return std::exp(mu + sigma * NextGaussian());
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace proteus

#endif  // PROTEUS_UTIL_RANDOM_H_
