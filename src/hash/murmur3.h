// MurmurHash3 (Austin Appleby, public domain) — the integer-key hash used
// by the paper's Bloom filters (Section 4.3, footnote 2).
//
// We provide the x64 128-bit variant for byte buffers plus the 64-bit
// finalizer (fmix64) as a fast path for word-sized keys.

#ifndef PROTEUS_HASH_MURMUR3_H_
#define PROTEUS_HASH_MURMUR3_H_

#include <cstddef>
#include <cstdint>
#include <utility>

namespace proteus {

/// MurmurHash3's 64-bit finalizer: a high-quality bijective mixer.
inline uint64_t Fmix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDull;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ull;
  k ^= k >> 33;
  return k;
}

/// Hashes a word-sized key with a seed; used for integer prefix hashing.
inline uint64_t Murmur3Int64(uint64_t key, uint64_t seed) {
  return Fmix64(key ^ (seed * 0xC6A4A7935BD1E995ull));
}

/// MurmurHash3_x64_128 over an arbitrary byte buffer.
std::pair<uint64_t, uint64_t> Murmur3X64_128(const void* data, size_t len,
                                             uint64_t seed);

/// Convenience 64-bit digest of the 128-bit variant.
inline uint64_t Murmur3Bytes64(const void* data, size_t len, uint64_t seed) {
  return Murmur3X64_128(data, len, seed).first;
}

}  // namespace proteus

#endif  // PROTEUS_HASH_MURMUR3_H_
