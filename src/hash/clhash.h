// Portable stand-in for CLHASH (Lemire & Kaser 2016), the string-key hash
// the paper switches to in Section 7.1.
//
// Substitution note (see DESIGN.md): real CLHASH relies on the CLMUL
// instruction set. The filters only need a fast, uniform 64-bit hash over
// variable-length byte strings, so we implement a keyed polynomial hash
// over 64-bit lanes with multiply-xorshift finalization. The interface
// matches what the Bloom filters need; tests verify uniformity.

#ifndef PROTEUS_HASH_CLHASH_H_
#define PROTEUS_HASH_CLHASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace proteus {

/// 64-bit keyed hash of an arbitrary byte buffer.
uint64_t ClHash64(const void* data, size_t len, uint64_t seed);

inline uint64_t ClHash64(std::string_view s, uint64_t seed) {
  return ClHash64(s.data(), s.size(), seed);
}

}  // namespace proteus

#endif  // PROTEUS_HASH_CLHASH_H_
