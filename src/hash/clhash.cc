#include "hash/clhash.h"

#include <cstring>

#include "hash/murmur3.h"

namespace proteus {

uint64_t ClHash64(const void* data, size_t len, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  // Two accumulators processed over 128-bit stripes, emulating CLHASH's
  // lane structure with integer multiply-add in place of carry-less
  // multiplication.
  uint64_t h1 = seed ^ 0x9AE16A3B2F90404Full;
  uint64_t h2 = ~seed * 0xC3A5C85C97CB3127ull;
  const uint64_t k1 = 0xB492B66FBE98F273ull;
  const uint64_t k2 = 0x9DDFEA08EB382D69ull;
  size_t i = 0;
  while (i + 16 <= len) {
    uint64_t a, b;
    std::memcpy(&a, p + i, 8);
    std::memcpy(&b, p + i + 8, 8);
    h1 = (h1 ^ (a * k1)) * k2;
    h1 ^= h1 >> 29;
    h2 = (h2 ^ (b * k2)) * k1;
    h2 ^= h2 >> 31;
    i += 16;
  }
  uint64_t tail1 = 0;
  uint64_t tail2 = 0;
  size_t rem = len - i;
  if (rem > 8) {
    std::memcpy(&tail1, p + i, 8);
    std::memcpy(&tail2, p + i + 8, rem - 8);
  } else if (rem > 0) {
    std::memcpy(&tail1, p + i, rem);
  }
  h1 = (h1 ^ (tail1 * k1)) * k2;
  h2 = (h2 ^ ((tail2 + rem) * k2)) * k1;
  return Fmix64(h1 ^ (h2 * 0x9E3779B97F4A7C15ull) ^ len);
}

}  // namespace proteus
