#include "lsm/db.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "util/timer.h"

namespace proteus {
namespace {

constexpr size_t kMaxLevels = 8;

/// K-way merge over SST iterators with newest-wins deduplication.
class MergingIterator {
 public:
  void Add(const SstReader* reader, int age) {
    items_.push_back({SstReader::Iterator(reader), age});
  }
  void Init() { FindBest(); }
  bool Valid() const { return best_ >= 0; }
  std::string_view key() const { return items_[best_].it.key(); }
  std::string_view value() const { return items_[best_].it.value(); }
  void Next() {
    std::string current(items_[best_].it.key());
    for (auto& item : items_) {
      if (item.it.Valid() && item.it.key() == current) item.it.Next();
    }
    FindBest();
  }

 private:
  struct Item {
    SstReader::Iterator it;
    int age;  // smaller = newer
  };

  void FindBest() {
    best_ = -1;
    for (size_t i = 0; i < items_.size(); ++i) {
      if (!items_[i].it.Valid()) continue;
      if (best_ < 0 || items_[i].it.key() < items_[best_].it.key() ||
          (items_[i].it.key() == items_[best_].it.key() &&
           items_[i].age < items_[best_].age)) {
        best_ = static_cast<int>(i);
      }
    }
  }

  std::vector<Item> items_;
  int best_ = -1;
};

/// Entry source over the MemTable (flush path).
class MemTableSource {
 public:
  explicit MemTableSource(const SkipList& mem) {
    mem.ForEach([this](std::string_view k, std::string_view v) {
      entries_.emplace_back(k, v);
    });
  }
  bool Valid() const { return index_ < entries_.size(); }
  std::string_view key() const { return entries_[index_].first; }
  std::string_view value() const { return entries_[index_].second; }
  void Next() { ++index_; }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
  size_t index_ = 0;
};

void WipeSstFiles(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.size() > 4 && name.substr(name.size() - 4) == ".sst") {
      ::unlink((dir + "/" + name).c_str());
    }
  }
  ::closedir(d);
}

}  // namespace

Db::Db(DbOptions options)
    : options_(std::move(options)),
      cache_(options_.block_cache_bytes),
      query_queue_(options_.queue_options) {
  ::mkdir(options_.dir.c_str(), 0755);
  WipeSstFiles(options_.dir);
  levels_.resize(kMaxLevels);
  compact_cursor_.resize(kMaxLevels, 0);
}

Db::~Db() = default;

void Db::Put(std::string_view key, std::string_view value) {
  ++stats_.puts;
  int64_t delta = mem_.Put(key, value);
  mem_bytes_ = static_cast<size_t>(static_cast<int64_t>(mem_bytes_) + delta);
  if (mem_bytes_ >= options_.memtable_bytes) Flush();
}

Db::FilePtr Db::FinishFile(SstWriter* writer, std::vector<std::string>* keys,
                           const std::string& path) {
  writer->Finish();
  auto meta = std::make_shared<FileMeta>();
  meta->id = next_file_id_++;
  meta->path = path;
  meta->smallest = writer->smallest();
  meta->largest = writer->largest();
  meta->n_entries = writer->n_entries();
  meta->file_size = writer->file_size();
  if (options_.filter_policy != nullptr) {
    Stopwatch timer;
    meta->filter =
        options_.filter_policy->Build(*keys, query_queue_.Snapshot());
    stats_.filter_build_ns += timer.ElapsedNanos();
    if (meta->filter != nullptr) {
      stats_.filter_bits_built += meta->filter->SizeBits();
      stats_.keys_filtered += keys->size();
    }
  }
  meta->reader = std::make_unique<SstReader>();
  meta->reader->Open(path, meta->id, &cache_);
  return meta;
}

template <typename Iter>
std::vector<Db::FilePtr> Db::WriteSstFiles(Iter&& entries, int target_level,
                                           size_t max_data_bytes) {
  std::vector<FilePtr> out;
  SstWriter::Options wopts;
  wopts.block_size = options_.block_size;
  wopts.compress = target_level >= options_.compress_min_level;
  while (entries.Valid()) {
    std::string path =
        options_.dir + "/" + std::to_string(next_file_id_) + ".sst";
    SstWriter writer(path, wopts);
    std::vector<std::string> keys;
    size_t data_bytes = 0;
    while (entries.Valid() && data_bytes < max_data_bytes) {
      writer.Add(entries.key(), entries.value());
      keys.emplace_back(entries.key());
      data_bytes += entries.key().size() + entries.value().size();
      entries.Next();
    }
    out.push_back(FinishFile(&writer, &keys, path));
  }
  return out;
}

void Db::Flush() {
  if (mem_.size() == 0) return;
  MemTableSource source(mem_);
  auto files =
      WriteSstFiles(source, /*target_level=*/0, ~size_t{0});
  for (auto& f : files) {
    levels_[0].insert(levels_[0].begin(), std::move(f));  // newest first
  }
  ++stats_.flushes;
  mem_.Clear();
  mem_bytes_ = 0;
  MaybeCompact();
}

uint64_t Db::LevelLimitBytes(size_t level) const {
  double limit = static_cast<double>(options_.l1_size_bytes);
  for (size_t i = 1; i < level; ++i) limit *= options_.level_size_multiplier;
  return static_cast<uint64_t>(limit);
}

uint64_t Db::LevelBytes(size_t level) const {
  uint64_t total = 0;
  for (const auto& f : levels_[level]) total += f->file_size;
  return total;
}

void Db::RemoveFile(const FilePtr& f) {
  cache_.EraseFile(f->id);
  ::unlink(f->path.c_str());
}

void Db::CompactL0() {
  if (levels_[0].empty()) return;
  ++stats_.compactions;
  std::string smallest = levels_[0][0]->smallest;
  std::string largest = levels_[0][0]->largest;
  for (const auto& f : levels_[0]) {
    smallest = std::min(smallest, f->smallest);
    largest = std::max(largest, f->largest);
  }
  MergingIterator merge;
  int age = 0;
  for (const auto& f : levels_[0]) merge.Add(f->reader.get(), age++);
  std::vector<FilePtr> l1_keep;
  for (const auto& f : levels_[1]) {
    if (f->largest < smallest || f->smallest > largest) {
      l1_keep.push_back(f);
    } else {
      merge.Add(f->reader.get(), age++);
    }
  }
  merge.Init();
  auto outputs = WriteSstFiles(merge, /*target_level=*/1,
                               options_.sst_target_bytes);
  for (const auto& f : levels_[0]) RemoveFile(f);
  for (const auto& f : levels_[1]) {
    bool kept = false;
    for (const auto& k : l1_keep) {
      if (k->id == f->id) {
        kept = true;
        break;
      }
    }
    if (!kept) RemoveFile(f);
  }
  levels_[0].clear();
  for (auto& f : outputs) l1_keep.push_back(std::move(f));
  std::sort(l1_keep.begin(), l1_keep.end(),
            [](const FilePtr& a, const FilePtr& b) {
              return a->smallest < b->smallest;
            });
  levels_[1] = std::move(l1_keep);
}

void Db::CompactLevel(size_t level) {
  if (levels_[level].empty() || level + 1 >= kMaxLevels) return;
  ++stats_.compactions;
  size_t pick = compact_cursor_[level] % levels_[level].size();
  compact_cursor_[level] = pick + 1;
  FilePtr input = levels_[level][pick];

  MergingIterator merge;
  merge.Add(input->reader.get(), 0);
  std::vector<FilePtr> next_keep;
  for (const auto& f : levels_[level + 1]) {
    if (f->largest < input->smallest || f->smallest > input->largest) {
      next_keep.push_back(f);
    } else {
      merge.Add(f->reader.get(), 1);
    }
  }
  merge.Init();
  auto outputs = WriteSstFiles(merge, static_cast<int>(level + 1),
                               options_.sst_target_bytes);
  for (const auto& f : levels_[level + 1]) {
    bool kept = false;
    for (const auto& k : next_keep) {
      if (k->id == f->id) {
        kept = true;
        break;
      }
    }
    if (!kept) RemoveFile(f);
  }
  RemoveFile(input);
  levels_[level].erase(levels_[level].begin() + pick);
  for (auto& f : outputs) next_keep.push_back(std::move(f));
  std::sort(next_keep.begin(), next_keep.end(),
            [](const FilePtr& a, const FilePtr& b) {
              return a->smallest < b->smallest;
            });
  levels_[level + 1] = std::move(next_keep);
}

void Db::MaybeCompact() {
  if (static_cast<int>(levels_[0].size()) >=
      options_.l0_compaction_trigger) {
    CompactL0();
  }
  for (size_t level = 1; level + 1 < kMaxLevels; ++level) {
    while (LevelBytes(level) > LevelLimitBytes(level)) CompactLevel(level);
  }
}

void Db::CompactAll() {
  Flush();
  if (!levels_[0].empty()) CompactL0();
  for (size_t level = 1; level + 1 < kMaxLevels; ++level) {
    while (LevelBytes(level) > LevelLimitBytes(level)) CompactLevel(level);
  }
}

bool Db::Seek(std::string_view lo, std::string_view hi, std::string* key,
              std::string* value) {
  ++stats_.seeks;
  bool found = false;
  std::string best_key, best_value;
  int best_age = 1 << 30;
  auto consider = [&](std::string_view k, std::string_view v, int age) {
    if (k > hi) return;
    if (!found || k < best_key || (k == best_key && age < best_age)) {
      found = true;
      best_key.assign(k);
      best_value.assign(v);
      best_age = age;
    }
  };

  SkipList::Entry entry;
  if (mem_.SeekGeq(lo, &entry)) consider(entry.key, entry.value, 0);

  int age = 1;
  std::string fk, fv;
  for (const auto& f : levels_[0]) {
    int file_age = age++;
    if (f->largest < lo || f->smallest > hi) continue;
    std::string_view clip_lo = lo > f->smallest ? lo : f->smallest;
    std::string_view clip_hi = hi < f->largest ? hi : f->largest;
    ++stats_.filter_checks;
    if (f->filter != nullptr && !f->filter->MayContain(clip_lo, clip_hi)) {
      ++stats_.filter_negatives;
      continue;
    }
    ++stats_.sst_seeks;
    int rc = f->reader->SeekInRange(lo, hi, &fk, &fv);
    if (rc == 0) {
      consider(fk, fv, file_age);
    } else if (rc == 1 && f->filter != nullptr) {
      ++stats_.false_positive_files;
    }
  }

  for (size_t level = 1; level < kMaxLevels; ++level) {
    int level_age = 1000 + static_cast<int>(level);
    for (const auto& f : levels_[level]) {
      if (f->largest < lo) continue;
      if (f->smallest > hi) break;
      std::string_view clip_lo = lo > f->smallest ? lo : f->smallest;
      std::string_view clip_hi = hi < f->largest ? hi : f->largest;
      ++stats_.filter_checks;
      if (f->filter != nullptr && !f->filter->MayContain(clip_lo, clip_hi)) {
        ++stats_.filter_negatives;
        continue;
      }
      ++stats_.sst_seeks;
      int rc = f->reader->SeekInRange(lo, hi, &fk, &fv);
      if (rc == 0) {
        consider(fk, fv, level_age);
        break;  // smallest in-range key of this level found
      }
      if (rc == 1 && f->filter != nullptr) ++stats_.false_positive_files;
    }
  }

  if (!found) {
    ++stats_.empty_seeks;
    query_queue_.OnEmptyQuery(lo, hi);
    return false;
  }
  if (key != nullptr) key->assign(best_key);
  if (value != nullptr) value->assign(best_value);
  return true;
}

std::vector<size_t> Db::LevelFileCounts() const {
  std::vector<size_t> out;
  for (const auto& level : levels_) out.push_back(level.size());
  return out;
}

uint64_t Db::TotalSstBytes() const {
  uint64_t total = 0;
  for (const auto& level : levels_) {
    for (const auto& f : level) total += f->file_size;
  }
  return total;
}

uint64_t Db::TotalFilterBits() const {
  uint64_t total = 0;
  for (const auto& level : levels_) {
    for (const auto& f : level) {
      if (f->filter != nullptr) total += f->filter->SizeBits();
    }
  }
  return total;
}

uint64_t Db::TotalKeys() const {
  uint64_t total = mem_.size();
  for (const auto& level : levels_) {
    for (const auto& f : level) total += f->n_entries;
  }
  return total;
}

}  // namespace proteus
