#include "lsm/db.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/filter.h"
#include "util/crc32c.h"
#include "util/posix_io.h"
#include "util/serial.h"
#include "util/timer.h"

namespace proteus {
namespace {

constexpr size_t kMaxLevels = 8;

// Internal value encoding (memtable and v3 SSTs): a 1-byte tag before
// the user value distinguishes live values from tombstones. v2 SSTs
// predate the tag; their values are untagged and implicitly live
// (FileMeta::tagged_values).
constexpr char kTagValue = 0;
constexpr char kTagTombstone = 1;

bool IsTombstone(std::string_view internal) {
  return !internal.empty() && internal.front() == kTagTombstone;
}

std::string_view UserValue(std::string_view internal, bool tagged) {
  if (!tagged) return internal;
  internal.remove_prefix(1);
  return internal;
}

/// The one place the WAL-op -> internal-value mapping is written down:
/// both the live write path and WAL replay must agree on it.
std::string MakeInternalValue(uint8_t op, std::string_view value) {
  std::string internal;
  internal.reserve(1 + value.size());
  internal.push_back(op == kWalOpPut ? kTagValue : kTagTombstone);
  internal.append(value);
  return internal;
}

// MANIFEST delta log (byte-accurate spec in docs/FORMAT.md): a sequence
// of CRC32C-framed records. The first record is always a full snapshot
// of the tree; each flush/compaction appends a delta (files added with
// their level, file ids retired); every manifest_compact_threshold
// deltas the log is atomically rewritten as one fresh snapshot.
//
//   record  := length u32 | crc32c(payload) u32 | payload[length]
//   snapshot payload := kind u8 (1) | magic u64 | version u64 |
//                       next_file_id u64 | n_levels u64 |
//                       per level: n_files u64, file*
//   delta payload    := kind u8 (2) | next_file_id u64 |
//                       n_added u64,  (level u64, file)* |
//                       n_deleted u64, (file_id u64)*
//   file := id u64 | smallest lp | largest lp | n_entries u64 |
//           file_size u64        (lp = u64 length + raw bytes)
constexpr uint64_t kManifestMagic = 0x494E414D544F5250ull;  // "PROTMANI"
constexpr uint64_t kManifestVersion = 2;  // 1 = whole-rewrite (pre-WAL)
constexpr uint8_t kManifestRecordSnapshot = 1;
constexpr uint8_t kManifestRecordDelta = 2;

/// Frames a manifest record: length + CRC32C + payload.
std::string FrameRecord(std::string_view payload) {
  std::string out;
  out.reserve(8 + payload.size());
  AppendCrcFrame(&out, payload);
  return out;
}

void SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

/// K-way merge over SST iterators with newest-wins deduplication.
/// Yields internal (tombstone-tagged) values: untagged v2 sources are
/// normalized through a scratch buffer.
class MergingIterator {
 public:
  void Add(const SstReader* reader, int age, bool tagged) {
    items_.push_back({SstReader::Iterator(reader), age, tagged});
  }
  void Init() { FindBest(); }
  bool Valid() const { return best_ >= 0; }
  std::string_view key() const { return items_[best_].it.key(); }
  std::string_view value() {
    const Item& item = items_[best_];
    if (item.tagged) return item.it.value();
    scratch_.assign(1, kTagValue);
    scratch_.append(item.it.value());
    return scratch_;
  }
  void Next() {
    std::string current(items_[best_].it.key());
    for (auto& item : items_) {
      if (item.it.Valid() && item.it.key() == current) item.it.Next();
    }
    FindBest();
  }

  /// First read failure across the inputs. A merge that ends with a
  /// non-OK status stopped early and MUST NOT be committed: the
  /// missing entries would otherwise be dropped and their file unlinked.
  Status status() const {
    for (const auto& item : items_) {
      if (!item.it.status().ok()) return item.it.status();
    }
    return Status::OK();
  }

 private:
  struct Item {
    SstReader::Iterator it;
    int age;  // smaller = newer
    bool tagged;
  };

  void FindBest() {
    best_ = -1;
    for (size_t i = 0; i < items_.size(); ++i) {
      if (!items_[i].it.Valid()) continue;
      if (best_ < 0 || items_[i].it.key() < items_[best_].it.key() ||
          (items_[i].it.key() == items_[best_].it.key() &&
           items_[i].age < items_[best_].age)) {
        best_ = static_cast<int>(i);
      }
    }
  }

  std::vector<Item> items_;
  std::string scratch_;
  int best_ = -1;
};

/// Entry source over the MemTable (flush path; values already tagged).
class MemTableSource {
 public:
  explicit MemTableSource(const SkipList& mem) {
    mem.ForEach([this](std::string_view k, std::string_view v) {
      entries_.emplace_back(k, v);
    });
  }
  bool Valid() const { return index_ < entries_.size(); }
  Status status() const { return Status::OK(); }  // memory cannot fail
  std::string_view key() const { return entries_[index_].first; }
  std::string_view value() const { return entries_[index_].second; }
  void Next() { ++index_; }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
  size_t index_ = 0;
};

void WipeDbFiles(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.size() > 4 && name.substr(name.size() - 4) == ".sst") {
      ::unlink((dir + "/" + name).c_str());
    }
  }
  ::closedir(d);
  ::unlink((dir + "/MANIFEST").c_str());
  ::unlink((dir + "/MANIFEST.tmp").c_str());
  ::unlink((dir + "/WAL").c_str());
}

}  // namespace

Db::Db(DbOptions options) : Db(std::move(options), /*wipe_existing=*/true) {}

Db::Db(DbOptions options, bool wipe_existing)
    : options_(std::move(options)),
      cache_(options_.block_cache_bytes),
      query_queue_(options_.queue_options) {
  ::mkdir(options_.dir.c_str(), 0755);
  levels_.resize(kMaxLevels);
  compact_cursor_.resize(kMaxLevels, 0);
  if (wipe_existing) {
    WipeDbFiles(options_.dir);
    if (options_.use_wal) {
      wal_ = std::make_unique<WalWriter>();
      Status s = wal_->Open(WalPath());
      if (!s.ok()) {
        wal_.reset();
        wal_error_ = std::move(s);
      }
    }
  }
  // Open() (wipe_existing=false) builds the WAL writer in ReplayWal,
  // after the existing log has been replayed and its torn tail cut.
}

std::unique_ptr<Db> Db::Open(DbOptions options, Status* status) {
  std::unique_ptr<Db> db(new Db(std::move(options), /*wipe_existing=*/false));
  Status s = db->RecoverAll();
  if (status != nullptr) *status = s;
  if (!s.ok()) return nullptr;
  return db;
}

Db::~Db() {
  if (!crashed_) {
    // Lossless close: persist the memtable and the manifest. A failure
    // here cannot be returned; it is still recoverable from the WAL.
    Status s = Flush();
    if (!s.ok()) {
      std::fprintf(stderr, "proteus: flush on close failed: %s\n",
                   s.ToString().c_str());
    }
  }
  if (manifest_fd_ >= 0) ::close(manifest_fd_);
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

Status Db::Put(std::string_view key, std::string_view value) {
  return WriteInternal(kWalOpPut, key, value);
}

Status Db::Delete(std::string_view key) {
  return WriteInternal(kWalOpDelete, key, {});
}

Status Db::WriteInternal(uint8_t op, std::string_view key,
                         std::string_view value) {
  bool need_flush = false;
  {
    // Shared: many writers commit concurrently; an exclusive holder
    // (Flush) can never truncate the WAL between a commit and its
    // memtable apply.
    std::shared_lock<std::shared_mutex> flush_lock(flush_mu_);
    if (crashed_) return Status::IOError("database is closed");
    if (!bg_error_.ok()) return bg_error_;  // rejected: NOT visible
    if (options_.use_wal) {
      if (wal_ == nullptr) return wal_error_;
      Status s =
          wal_->Commit(EncodeWalRecord(op, key, value), options_.wal_sync);
      if (!s.ok()) return s;  // not applied: a rejected write stays invisible
    }
    std::string internal = MakeInternalValue(op, value);
    {
      std::lock_guard<std::mutex> mem_lock(mem_mu_);
      if (op == kWalOpPut) {
        ++stats_.puts;
      } else {
        ++stats_.deletes;
      }
      int64_t delta = mem_.Put(key, internal);
      mem_bytes_ =
          static_cast<size_t>(static_cast<int64_t>(mem_bytes_) + delta);
      need_flush = mem_bytes_ >= options_.memtable_bytes;
    }
  }
  if (need_flush) {
    // This write is already durable (WAL) and visible (memtable), so a
    // failing flush must not be reported as a rejection of it. The
    // failure is remembered in bg_error_ instead, which rejects every
    // subsequent write until an explicit Flush() succeeds.
    Flush();
  }
  return Status::OK();
}

Status Db::FinishFile(SstWriter* writer, std::vector<std::string>* keys,
                      const std::string& path, FilePtr* out) {
  auto meta = std::make_shared<FileMeta>();
  meta->id = next_file_id_++;
  meta->path = path;
  meta->smallest = writer->smallest();
  meta->largest = writer->largest();
  meta->n_entries = writer->n_entries();
  if (options_.filter_policy != nullptr) {
    Stopwatch timer;
    meta->filter =
        options_.filter_policy->Build(*keys, query_queue_.Snapshot());
    stats_.filter_build_ns += timer.ElapsedNanos();
    if (meta->filter != nullptr) {
      stats_.filter_bits_built += meta->filter->SizeBits();
      stats_.keys_filtered += keys->size();
      // Persist the filter in the SST itself so reopening the database
      // deserializes it instead of rebuilding from keys.
      std::string blob;
      if (meta->filter->Serialize(&blob)) {
        writer->SetFilterBlock(std::move(blob), Filter::kVersion);
      }
    }
  }
  Status s = writer->Finish();
  if (!s.ok()) return s;
  meta->file_size = writer->file_size();
  meta->reader = std::make_unique<SstReader>();
  s = meta->reader->Open(path, meta->id, &cache_);
  if (!s.ok()) return s;
  meta->tagged_values = true;  // just written as v3
  meta->reader->ReleaseFilterBlock();  // meta->filter is the live copy
  if (meta->filter != nullptr) ChargeFilter(*meta);
  *out = std::move(meta);
  return Status::OK();
}

void Db::ChargeFilter(const FileMeta& meta) {
  cache_.AddPinnedBytes(meta.id, meta.filter->SizeBits() / 8);
}

template <typename Iter>
Status Db::WriteSstFiles(Iter&& entries, int target_level,
                         size_t max_data_bytes, bool drop_tombstones,
                         std::vector<FilePtr>* out) {
  SstWriter::Options wopts;
  wopts.block_size = options_.block_size;
  wopts.compress = target_level >= options_.compress_min_level;
  while (entries.Valid()) {
    std::string path =
        options_.dir + "/" + std::to_string(next_file_id_) + ".sst";
    SstWriter writer(path, wopts);
    std::vector<std::string> keys;
    size_t data_bytes = 0;
    while (entries.Valid() && data_bytes < max_data_bytes) {
      std::string_view value = entries.value();
      if (drop_tombstones && IsTombstone(value)) {
        // Bottom-level compaction: nothing below can hold an older
        // version, so the tombstone has finished its work.
        entries.Next();
        continue;
      }
      writer.Add(entries.key(), value);
      keys.emplace_back(entries.key());
      data_bytes += entries.key().size() + value.size();
      entries.Next();
    }
    // An input that stopped on a read error invalidates the merge: fail
    // before this (incomplete) file can be finished and committed.
    Status in = entries.status();
    if (!in.ok()) return in;
    if (writer.n_entries() == 0) continue;  // everything was a tombstone
    FilePtr meta;
    Status s = FinishFile(&writer, &keys, path, &meta);
    if (!s.ok()) return s;
    out->push_back(std::move(meta));
  }
  return entries.status();
}

Status Db::Flush() {
  std::unique_lock<std::shared_mutex> flush_lock(flush_mu_);
  Status s = FlushLocked();
  bg_error_ = s;  // failure rejects later writes; success clears
  return s;
}

Status Db::FlushLocked() {
  if (mem_.size() == 0) return Status::OK();
  MemTableSource source(mem_);
  std::vector<FilePtr> files;
  Status s = WriteSstFiles(source, /*target_level=*/0, ~size_t{0},
                           /*drop_tombstones=*/false, &files);
  if (!s.ok()) return s;
  ManifestEdit edit;
  for (auto& f : files) {
    edit.added.emplace_back(0, f);
    levels_[0].insert(levels_[0].begin(), std::move(f));  // newest first
  }
  ++stats_.flushes;
  mem_.Clear();
  mem_bytes_ = 0;
  s = AppendManifestDelta(edit);
  if (!s.ok()) return s;
  // Only now is the WAL redundant: its contents live in fsync'd SSTs
  // referenced by a durable manifest record.
  if (wal_ != nullptr) {
    s = wal_->Reset();
    if (!s.ok()) return s;
  }
  return MaybeCompact();
}

uint64_t Db::LevelLimitBytes(size_t level) const {
  double limit = static_cast<double>(options_.l1_size_bytes);
  for (size_t i = 1; i < level; ++i) limit *= options_.level_size_multiplier;
  return static_cast<uint64_t>(limit);
}

uint64_t Db::LevelBytes(size_t level) const {
  uint64_t total = 0;
  for (const auto& f : levels_[level]) total += f->file_size;
  return total;
}

bool Db::LevelsBelowEmpty(size_t first_level) const {
  for (size_t level = first_level; level < kMaxLevels; ++level) {
    if (!levels_[level].empty()) return false;
  }
  return true;
}

void Db::DropFile(const FilePtr& f) {
  cache_.EraseFile(f->id);
  ::unlink(f->path.c_str());
}

Status Db::CompactL0() {
  if (levels_[0].empty()) return Status::OK();
  ++stats_.compactions;
  std::string smallest = levels_[0][0]->smallest;
  std::string largest = levels_[0][0]->largest;
  for (const auto& f : levels_[0]) {
    smallest = std::min(smallest, f->smallest);
    largest = std::max(largest, f->largest);
  }
  MergingIterator merge;
  int age = 0;
  for (const auto& f : levels_[0]) {
    merge.Add(f->reader.get(), age++, f->tagged_values);
  }
  std::vector<FilePtr> l1_keep;
  std::vector<FilePtr> removed;
  for (const auto& f : levels_[1]) {
    if (f->largest < smallest || f->smallest > largest) {
      l1_keep.push_back(f);
    } else {
      merge.Add(f->reader.get(), age++, f->tagged_values);
    }
  }
  merge.Init();
  std::vector<FilePtr> outputs;
  Status s = WriteSstFiles(merge, /*target_level=*/1,
                           options_.sst_target_bytes,
                           /*drop_tombstones=*/LevelsBelowEmpty(2), &outputs);
  if (!s.ok()) return s;

  ManifestEdit edit;
  for (const auto& f : levels_[0]) {
    edit.deleted.push_back(f->id);
    removed.push_back(f);
  }
  for (const auto& f : levels_[1]) {
    bool kept = false;
    for (const auto& k : l1_keep) {
      if (k->id == f->id) {
        kept = true;
        break;
      }
    }
    if (!kept) {
      edit.deleted.push_back(f->id);
      removed.push_back(f);
    }
  }
  levels_[0].clear();
  for (auto& f : outputs) {
    edit.added.emplace_back(1, f);
    l1_keep.push_back(std::move(f));
  }
  std::sort(l1_keep.begin(), l1_keep.end(),
            [](const FilePtr& a, const FilePtr& b) {
              return a->smallest < b->smallest;
            });
  levels_[1] = std::move(l1_keep);

  s = AppendManifestDelta(edit);
  if (!s.ok()) return s;
  // Obsolete files go away only after the delta retiring them is
  // durable — a crash in between must find a consistent (older) tree.
  for (const auto& f : removed) DropFile(f);
  return Status::OK();
}

Status Db::CompactLevel(size_t level) {
  if (levels_[level].empty() || level + 1 >= kMaxLevels) return Status::OK();
  ++stats_.compactions;
  size_t pick = compact_cursor_[level] % levels_[level].size();
  compact_cursor_[level] = pick + 1;
  FilePtr input = levels_[level][pick];

  MergingIterator merge;
  merge.Add(input->reader.get(), 0, input->tagged_values);
  std::vector<FilePtr> next_keep;
  std::vector<FilePtr> removed;
  for (const auto& f : levels_[level + 1]) {
    if (f->largest < input->smallest || f->smallest > input->largest) {
      next_keep.push_back(f);
    } else {
      merge.Add(f->reader.get(), 1, f->tagged_values);
    }
  }
  merge.Init();
  std::vector<FilePtr> outputs;
  Status s = WriteSstFiles(merge, static_cast<int>(level + 1),
                           options_.sst_target_bytes,
                           /*drop_tombstones=*/LevelsBelowEmpty(level + 2),
                           &outputs);
  if (!s.ok()) return s;

  ManifestEdit edit;
  for (const auto& f : levels_[level + 1]) {
    bool kept = false;
    for (const auto& k : next_keep) {
      if (k->id == f->id) {
        kept = true;
        break;
      }
    }
    if (!kept) {
      edit.deleted.push_back(f->id);
      removed.push_back(f);
    }
  }
  edit.deleted.push_back(input->id);
  removed.push_back(input);
  levels_[level].erase(levels_[level].begin() + pick);
  for (auto& f : outputs) {
    edit.added.emplace_back(level + 1, f);
    next_keep.push_back(std::move(f));
  }
  std::sort(next_keep.begin(), next_keep.end(),
            [](const FilePtr& a, const FilePtr& b) {
              return a->smallest < b->smallest;
            });
  levels_[level + 1] = std::move(next_keep);

  s = AppendManifestDelta(edit);
  if (!s.ok()) return s;
  for (const auto& f : removed) DropFile(f);
  return Status::OK();
}

Status Db::MaybeCompact() {
  if (static_cast<int>(levels_[0].size()) >=
      options_.l0_compaction_trigger) {
    Status s = CompactL0();
    if (!s.ok()) return s;
  }
  for (size_t level = 1; level + 1 < kMaxLevels; ++level) {
    while (LevelBytes(level) > LevelLimitBytes(level)) {
      Status s = CompactLevel(level);
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

Status Db::CompactAll() {
  std::unique_lock<std::shared_mutex> flush_lock(flush_mu_);
  Status s = FlushLocked();
  if (s.ok() && !levels_[0].empty()) s = CompactL0();
  for (size_t level = 1; s.ok() && level + 1 < kMaxLevels; ++level) {
    while (s.ok() && LevelBytes(level) > LevelLimitBytes(level)) {
      s = CompactLevel(level);
    }
  }
  bg_error_ = s;
  return s;
}

// ---------------------------------------------------------------------------
// MANIFEST delta log
// ---------------------------------------------------------------------------

namespace {

void EncodeFileMeta(std::string* out, uint64_t id,
                    const std::string& smallest, const std::string& largest,
                    uint64_t n_entries, uint64_t file_size) {
  PutFixed64(out, id);
  PutLengthPrefixed(out, smallest);
  PutLengthPrefixed(out, largest);
  PutFixed64(out, n_entries);
  PutFixed64(out, file_size);
}

bool DecodeFileMeta(std::string_view* cursor, uint64_t* id,
                    std::string* smallest, std::string* largest,
                    uint64_t* n_entries, uint64_t* file_size) {
  return GetFixed64(cursor, id) && GetLengthPrefixed(cursor, smallest) &&
         GetLengthPrefixed(cursor, largest) &&
         GetFixed64(cursor, n_entries) && GetFixed64(cursor, file_size);
}

}  // namespace

Status Db::WriteManifestSnapshot() {
  std::string payload;
  payload.push_back(static_cast<char>(kManifestRecordSnapshot));
  PutFixed64(&payload, kManifestMagic);
  PutFixed64(&payload, kManifestVersion);
  PutFixed64(&payload, next_file_id_);
  PutFixed64(&payload, levels_.size());
  for (const auto& level : levels_) {
    PutFixed64(&payload, level.size());
    for (const auto& f : level) {
      EncodeFileMeta(&payload, f->id, f->smallest, f->largest, f->n_entries,
                     f->file_size);
    }
  }
  const std::string framed = FrameRecord(payload);

  const std::string tmp = ManifestPath() + ".tmp";
  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return Status::IOError(Errno("cannot create " + tmp));
  Status s = WriteAllFd(fd, framed, "manifest write");
  if (s.ok() && ::fsync(fd) != 0) {
    s = Status::IOError(Errno("manifest fsync failed"));
  }
  ::close(fd);
  if (!s.ok()) {
    ::unlink(tmp.c_str());
    return s;
  }
  if (::rename(tmp.c_str(), ManifestPath().c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError(Errno("cannot rename manifest into place"));
  }
  SyncDir(options_.dir);
  if (manifest_fd_ >= 0) ::close(manifest_fd_);
  manifest_fd_ = ::open(ManifestPath().c_str(), O_WRONLY | O_APPEND);
  if (manifest_fd_ < 0) {
    return Status::IOError(Errno("cannot reopen manifest for append"));
  }
  manifest_deltas_since_snapshot_ = 0;
  ++stats_.manifest_snapshots;
  return Status::OK();
}

Status Db::AppendManifestDelta(const ManifestEdit& edit) {
  // New SSTs named by this edit are fsync'd; make their directory
  // entries durable before the manifest starts referring to them.
  if (!edit.added.empty()) SyncDir(options_.dir);
  if (manifest_fd_ < 0 ||
      manifest_deltas_since_snapshot_ + 1 > options_.manifest_compact_threshold) {
    // First write, or time to fold the delta history into one record.
    return WriteManifestSnapshot();
  }
  std::string payload;
  payload.push_back(static_cast<char>(kManifestRecordDelta));
  PutFixed64(&payload, next_file_id_);
  PutFixed64(&payload, edit.added.size());
  for (const auto& [level, f] : edit.added) {
    PutFixed64(&payload, level);
    EncodeFileMeta(&payload, f->id, f->smallest, f->largest, f->n_entries,
                   f->file_size);
  }
  PutFixed64(&payload, edit.deleted.size());
  for (uint64_t id : edit.deleted) PutFixed64(&payload, id);

  Status s = WriteAllFd(manifest_fd_, FrameRecord(payload), "manifest write");
  if (s.ok() && ::fdatasync(manifest_fd_) != 0) {
    s = Status::IOError(Errno("manifest fdatasync failed"));
  }
  if (!s.ok()) {
    // The append may have left a torn frame at the tail. Appending more
    // deltas after it would put good records beyond the point where
    // recovery stops reading — so drop the append fd: the NEXT manifest
    // write takes the manifest_fd_ < 0 branch above and rewrites a full
    // snapshot (atomic rename), which both discards the debris and
    // re-records every file this failed edit added to levels_.
    ::close(manifest_fd_);
    manifest_fd_ = -1;
    return s;
  }
  ++manifest_deltas_since_snapshot_;
  ++stats_.manifest_deltas;
  return Status::OK();
}

Status Db::RecoverManifest(bool* torn_tail) {
  *torn_tail = false;
  std::string content;
  bool found = false;
  Status read = ReadFileToString(ManifestPath(), &content, &found);
  if (!read.ok()) return read;
  if (!found || content.empty()) return Status::OK();  // empty db

  uint64_t recovered_next_id = 1;
  size_t records = 0;
  size_t deltas_since_snapshot = 0;
  size_t offset = 0;
  while (offset < content.size()) {
    if (offset + 8 > content.size()) {
      *torn_tail = true;  // header cut short: crash mid-append
      break;
    }
    const uint32_t length = LoadFixed32(content.data() + offset);
    const uint32_t crc = LoadFixed32(content.data() + offset + 4);
    if (offset + 8 + length > content.size()) {
      *torn_tail = true;  // payload cut short: crash mid-append
      break;
    }
    std::string_view payload(content.data() + offset + 8, length);
    if (Crc32c(payload) != crc) {
      // A complete frame whose bytes changed is damage, not a torn
      // write — torn appends truncate, they do not rewrite history.
      return Status::Corruption("manifest record CRC mismatch at offset " +
                                std::to_string(offset));
    }
    std::string_view cursor = payload;
    if (cursor.empty()) {
      return Status::Corruption("empty manifest record");
    }
    const uint8_t kind = static_cast<uint8_t>(cursor.front());
    cursor.remove_prefix(1);

    if (kind == kManifestRecordSnapshot) {
      uint64_t magic, version, n_levels;
      if (!GetFixed64(&cursor, &magic) || magic != kManifestMagic) {
        return Status::Corruption("bad manifest magic");
      }
      if (!GetFixed64(&cursor, &version) || version != kManifestVersion) {
        return Status::NotSupported("unsupported manifest version");
      }
      if (!GetFixed64(&cursor, &recovered_next_id) ||
          !GetFixed64(&cursor, &n_levels) || n_levels > kMaxLevels) {
        return Status::Corruption("corrupt manifest snapshot header");
      }
      for (auto& level : levels_) level.clear();  // snapshot replaces state
      for (uint64_t level = 0; level < n_levels; ++level) {
        uint64_t n_files;
        if (!GetFixed64(&cursor, &n_files)) {
          return Status::Corruption("corrupt manifest level header");
        }
        for (uint64_t i = 0; i < n_files; ++i) {
          auto meta = std::make_shared<FileMeta>();
          if (!DecodeFileMeta(&cursor, &meta->id, &meta->smallest,
                              &meta->largest, &meta->n_entries,
                              &meta->file_size)) {
            return Status::Corruption("corrupt manifest file entry");
          }
          meta->path =
              options_.dir + "/" + std::to_string(meta->id) + ".sst";
          levels_[level].push_back(std::move(meta));
        }
      }
      deltas_since_snapshot = 0;
    } else if (kind == kManifestRecordDelta) {
      if (records == 0) {
        return Status::Corruption("manifest does not start with a snapshot");
      }
      uint64_t n_added, n_deleted;
      if (!GetFixed64(&cursor, &recovered_next_id) ||
          !GetFixed64(&cursor, &n_added)) {
        return Status::Corruption("corrupt manifest delta header");
      }
      for (uint64_t i = 0; i < n_added; ++i) {
        uint64_t level;
        auto meta = std::make_shared<FileMeta>();
        if (!GetFixed64(&cursor, &level) || level >= kMaxLevels ||
            !DecodeFileMeta(&cursor, &meta->id, &meta->smallest,
                            &meta->largest, &meta->n_entries,
                            &meta->file_size)) {
          return Status::Corruption("corrupt manifest delta add");
        }
        meta->path = options_.dir + "/" + std::to_string(meta->id) + ".sst";
        if (level == 0) {
          // L0 deltas list newest first, matching the in-memory order.
          levels_[0].insert(levels_[0].begin(), std::move(meta));
        } else {
          levels_[level].push_back(std::move(meta));
        }
      }
      if (!GetFixed64(&cursor, &n_deleted)) {
        return Status::Corruption("corrupt manifest delta header");
      }
      for (uint64_t i = 0; i < n_deleted; ++i) {
        uint64_t id;
        if (!GetFixed64(&cursor, &id)) {
          return Status::Corruption("corrupt manifest delta delete");
        }
        bool erased = false;
        for (auto& level : levels_) {
          for (size_t j = 0; j < level.size(); ++j) {
            if (level[j]->id == id) {
              level.erase(level.begin() + j);
              erased = true;
              break;
            }
          }
          if (erased) break;
        }
        if (!erased) {
          return Status::Corruption("manifest delta retires unknown file " +
                                    std::to_string(id));
        }
      }
      ++deltas_since_snapshot;
    } else {
      return Status::Corruption("unknown manifest record kind");
    }
    if (!cursor.empty()) {
      return Status::Corruption("trailing bytes in manifest record");
    }
    ++records;
    offset += 8 + length;
  }

  if (records == 0) {
    // Non-empty file with no intact record: this is not crash debris
    // (appends preserve the snapshot prefix), it is damage.
    return Status::Corruption("manifest has no intact snapshot record");
  }

  // Levels >= 1 must be sorted by smallest key (deltas append).
  for (size_t level = 1; level < kMaxLevels; ++level) {
    std::sort(levels_[level].begin(), levels_[level].end(),
              [](const FilePtr& a, const FilePtr& b) {
                return a->smallest < b->smallest;
              });
  }

  uint64_t max_id = 0;
  for (const auto& level : levels_) {
    for (const auto& f : level) {
      Status s = LoadFile(f);
      if (!s.ok()) return s;
      max_id = std::max(max_id, f->id);
    }
  }
  next_file_id_ = std::max(recovered_next_id, max_id + 1);
  manifest_deltas_since_snapshot_ = deltas_since_snapshot;

  if (!*torn_tail) {
    manifest_fd_ = ::open(ManifestPath().c_str(), O_WRONLY | O_APPEND);
    if (manifest_fd_ < 0) {
      return Status::IOError(Errno("cannot reopen manifest for append"));
    }
  }
  // Torn tail: RecoverAll rewrites a fresh snapshot (which opens the
  // append fd), discarding the debris instead of appending after it.
  return Status::OK();
}

Status Db::LoadFile(const FilePtr& meta) {
  meta->reader = std::make_unique<SstReader>();
  Status s = meta->reader->Open(meta->path, meta->id, &cache_);
  if (!s.ok()) return s;
  meta->tagged_values = meta->reader->footer_version() >= 3;
  const bool wants_filters = options_.filter_policy != nullptr &&
                             options_.filter_policy->Name() != "none";
  if (wants_filters) {
    meta->filter = meta->reader->LoadFilter();
    if (meta->filter != nullptr) {
      ++stats_.filter_loads;
    } else {
      // Missing, truncated, bit-flipped, or format-incompatible filter
      // block: rebuild from the file's keys instead of failing the open.
      // If a data block is unreadable the key list is incomplete and a
      // filter built on it would return false negatives — leave the
      // file unfiltered instead (seeks probe it directly and surface
      // the block damage as read errors).
      std::vector<std::string> keys;
      keys.reserve(meta->n_entries);
      const bool all_keys = meta->reader->ForEach(
          [&keys](std::string_view k, std::string_view) {
            keys.emplace_back(k);
          });
      if (all_keys) {
        Stopwatch timer;
        meta->filter =
            options_.filter_policy->Build(keys, query_queue_.Snapshot());
        stats_.filter_build_ns += timer.ElapsedNanos();
        if (meta->filter != nullptr) {
          ++stats_.filter_rebuilds;
          stats_.filter_bits_built += meta->filter->SizeBits();
          stats_.keys_filtered += keys.size();
        }
      }
    }
  }
  meta->reader->ReleaseFilterBlock();  // live filter holds the memory now
  if (meta->filter != nullptr) ChargeFilter(*meta);
  return Status::OK();
}

Status Db::ReplayWal() {
  uint64_t valid_bytes = 0;
  bool torn = false;
  Status s = WalReplay(
      WalPath(),
      [this](uint8_t op, std::string_view key, std::string_view value) {
        int64_t delta = mem_.Put(key, MakeInternalValue(op, value));
        mem_bytes_ =
            static_cast<size_t>(static_cast<int64_t>(mem_bytes_) + delta);
        ++stats_.wal_replayed;
      },
      &valid_bytes, &torn);
  if (!s.ok()) return s;
  if (!options_.use_wal) {
    // A log left by a previous use_wal run was just replayed into the
    // memtable (honoring its acknowledged writes); this session keeps
    // no log, so the file must go — otherwise a later use_wal=true open
    // would replay the stale history on top of newer state. Flush the
    // replayed records FIRST: they were durably acknowledged, and
    // unlinking their only copy before SSTs hold them would let a
    // crash during this session revoke that acknowledgement.
    if (stats_.wal_replayed > 0) {
      Status fs = FlushLocked();  // Open runs single-threaded: safe
      if (!fs.ok()) return fs;
    }
    ::unlink(WalPath().c_str());
    return Status::OK();
  }
  if (torn) {
    // The torn record was never acknowledged; cut it so the log ends at
    // a record boundary before we append to it again.
    if (::truncate(WalPath().c_str(), static_cast<off_t>(valid_bytes)) != 0) {
      return Status::IOError(Errno("cannot truncate torn WAL tail"));
    }
  }
  wal_ = std::make_unique<WalWriter>();
  return wal_->Open(WalPath());
}

Status Db::RecoverAll() {
  bool manifest_torn = false;
  Status s = RecoverManifest(&manifest_torn);
  if (!s.ok()) return s;
  s = ReplayWal();
  if (!s.ok()) return s;
  if (manifest_torn) {
    // Replace snapshot+deltas+debris with one clean snapshot record.
    s = WriteManifestSnapshot();
    if (!s.ok()) return s;
  }
  RemoveOrphanSsts();
  return Status::OK();
}

void Db::RemoveOrphanSsts() {
  DIR* d = ::opendir(options_.dir.c_str());
  if (d == nullptr) return;
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.size() <= 4 || name.substr(name.size() - 4) != ".sst") continue;
    const std::string stem = name.substr(0, name.size() - 4);
    char* end = nullptr;
    const uint64_t id = std::strtoull(stem.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') continue;  // not one of ours
    bool referenced = false;
    for (const auto& level : levels_) {
      for (const auto& f : level) {
        if (f->id == id) {
          referenced = true;
          break;
        }
      }
      if (referenced) break;
    }
    if (!referenced) ::unlink((options_.dir + "/" + name).c_str());
  }
  ::closedir(d);
  ::unlink((options_.dir + "/MANIFEST.tmp").c_str());  // staging debris
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

bool Db::Seek(std::string_view lo, std::string_view hi, std::string* key,
              std::string* value, Status* status) {
  ++stats_.seeks;
  Status first_error;
  bool found = SeekLoop(std::string(lo), hi, key, value, &first_error);
  if (!found) RecordEmptySeek(lo, hi);
  if (status != nullptr) *status = std::move(first_error);
  return found;
}

void Db::RecordEmptySeek(std::string_view lo, std::string_view hi) {
  ++stats_.empty_seeks;
  if (query_queue_.OnEmptyQuery(lo, hi)) ++stats_.queue_sampled;
}

bool Db::SeekLoop(std::string cursor, std::string_view hi, std::string* key,
                  std::string* value, Status* first_error) {
  auto note_error = [&](Status s) {
    ++stats_.read_errors;
    if (first_error->ok()) *first_error = std::move(s);
  };
  std::string best_key, best_value;
  while (true) {
    bool found = false;
    bool best_tombstone = false;
    int best_age = 1 << 30;
    auto consider = [&](std::string_view k, std::string_view internal,
                        int age, bool tagged) {
      if (k > hi) return;
      if (!found || k < best_key || (k == best_key && age < best_age)) {
        found = true;
        best_key.assign(k);
        best_tombstone = tagged && IsTombstone(internal);
        best_value.assign(UserValue(internal, tagged));
        best_age = age;
      }
    };

    SkipList::Entry entry;
    if (mem_.SeekGeq(cursor, &entry)) {
      consider(entry.key, entry.value, 0, /*tagged=*/true);
    }

    int age = 1;
    std::string fk, fv;
    for (const auto& f : levels_[0]) {
      int file_age = age++;
      if (f->largest < cursor || f->smallest > hi) continue;
      std::string_view clip_lo = cursor > f->smallest ? cursor : f->smallest;
      std::string_view clip_hi = hi < f->largest ? hi : f->largest;
      ++stats_.filter_checks;
      if (f->filter != nullptr && !f->filter->MayContain(clip_lo, clip_hi)) {
        ++stats_.filter_negatives;
        continue;
      }
      ++stats_.sst_seeks;
      Status read_status;
      int rc = f->reader->SeekInRange(cursor, hi, &fk, &fv, &read_status);
      if (rc == 0) {
        consider(fk, fv, file_age, f->tagged_values);
      } else if (rc == 1 && f->filter != nullptr) {
        ++stats_.false_positive_files;
      } else if (rc == -1) {
        note_error(std::move(read_status));
      }
    }

    for (size_t level = 1; level < kMaxLevels; ++level) {
      int level_age = 1000 + static_cast<int>(level);
      for (const auto& f : levels_[level]) {
        if (f->largest < cursor) continue;
        if (f->smallest > hi) break;
        std::string_view clip_lo =
            cursor > f->smallest ? cursor : f->smallest;
        std::string_view clip_hi = hi < f->largest ? hi : f->largest;
        ++stats_.filter_checks;
        if (f->filter != nullptr &&
            !f->filter->MayContain(clip_lo, clip_hi)) {
          ++stats_.filter_negatives;
          continue;
        }
        ++stats_.sst_seeks;
        Status read_status;
        int rc = f->reader->SeekInRange(cursor, hi, &fk, &fv, &read_status);
        if (rc == 0) {
          consider(fk, fv, level_age, f->tagged_values);
          break;  // smallest in-range key of this level found
        }
        if (rc == 1 && f->filter != nullptr) ++stats_.false_positive_files;
        if (rc == -1) note_error(std::move(read_status));
      }
    }

    if (!found) return false;
    if (!best_tombstone) {
      if (key != nullptr) key->assign(best_key);
      if (value != nullptr) value->assign(best_value);
      return true;
    }
    // The newest version in range is a tombstone: resume the scan just
    // past the deleted key (its successor in byte order).
    cursor.assign(best_key);
    cursor.push_back('\0');
  }
}

void Db::MultiSeek(const QueryBatch& batch, const Scheduler& scheduler,
                   std::vector<MultiSeekResult>* results) {
  const size_t n = batch.size();
  results->assign(n, MultiSeekResult{});
  if (n == 0) return;
  stats_.seeks += n;

  // Layout hints for layout-aware schedulers: the boundaries of the
  // largest sorted level (the one most batches fan out over).
  ScheduleContext context;
  size_t widest = 0;  // 0 = no sorted level yet (L0 has no boundaries)
  for (size_t level = 1; level < kMaxLevels; ++level) {
    if (levels_[level].size() >
        (widest == 0 ? size_t{0} : levels_[widest].size())) {
      widest = level;
    }
  }
  if (widest != 0) {
    context.file_boundaries.reserve(levels_[widest].size());
    for (const auto& f : levels_[widest]) {
      context.file_boundaries.push_back(f->smallest);
    }
  }
  std::vector<uint32_t> order;
  scheduler.Plan(batch, context, &order);
  // A scheduler must emit a permutation; a broken one must not lose or
  // duplicate queries, so fall back to arrival order if it didn't.
  {
    std::vector<uint8_t> seen(n, 0);
    bool valid = order.size() == n;
    for (size_t i = 0; valid && i < n; ++i) {
      valid = order[i] < n && !seen[order[i]];
      if (valid) seen[order[i]] = 1;
    }
    if (!valid) {
      order.resize(n);
      for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
    }
  }

  // Round one: the first Seek-loop iteration of every query, batched so
  // each SST is visited once. Per-query winners accumulate here exactly
  // like Seek's `consider`.
  struct Cand {
    bool found = false;
    bool tombstone = false;
    int age = 1 << 30;
    std::string key, value;
    Status first_error;
  };
  std::vector<Cand> cands(n);
  auto consider = [&](uint32_t qi, std::string_view k,
                      std::string_view internal, int age, bool tagged) {
    if (k > batch[qi].hi) return;
    Cand& c = cands[qi];
    if (!c.found || k < c.key || (k == c.key && age < c.age)) {
      c.found = true;
      c.key.assign(k);
      c.tombstone = tagged && IsTombstone(internal);
      c.value.assign(UserValue(internal, tagged));
      c.age = age;
    }
  };

  SkipList::Entry entry;
  for (uint32_t qi : order) {
    if (mem_.SeekGeq(batch[qi].lo, &entry)) {
      consider(qi, entry.key, entry.value, 0, /*tagged=*/true);
    }
  }

  // Per-SST grouping: a file's group is the (scheduled-order) queries
  // that still need it; all their filter verdicts come from one batched
  // call, then only the passing ones probe the SST. A query that finds
  // an in-range entry (rc == 0) is done with the level — Seek's
  // per-level early exit — while one that doesn't carries over to the
  // next file only if its range spans past this one.
  std::string fk, fv;
  std::vector<std::string_view> clip_lo, clip_hi;
  std::vector<uint8_t> verdicts;
  auto probe_group = [&](const FileMeta& f, int file_age,
                         const std::vector<uint32_t>& group,
                         std::vector<uint32_t>* carry) {
    if (group.empty()) return;
    clip_lo.clear();
    clip_hi.clear();
    for (uint32_t qi : group) {
      const StrRangeQuery& q = batch[qi];
      clip_lo.push_back(q.lo > f.smallest ? std::string_view(q.lo)
                                          : std::string_view(f.smallest));
      clip_hi.push_back(q.hi < f.largest ? std::string_view(q.hi)
                                         : std::string_view(f.largest));
    }
    stats_.filter_checks += group.size();
    verdicts.assign(group.size(), 1);
    if (f.filter != nullptr) {
      f.filter->MultiMayContain(clip_lo.data(), clip_hi.data(), group.size(),
                                verdicts.data());
      for (uint8_t v : verdicts) {
        if (v == 0) ++stats_.filter_negatives;
      }
    }
    for (size_t g = 0; g < group.size(); ++g) {
      const uint32_t qi = group[g];
      const StrRangeQuery& q = batch[qi];
      bool done = false;
      if (verdicts[g] != 0) {
        ++stats_.sst_seeks;
        Status read_status;
        int rc = f.reader->SeekInRange(q.lo, q.hi, &fk, &fv, &read_status);
        if (rc == 0) {
          consider(qi, fk, fv, file_age, f.tagged_values);
          done = true;
        } else if (rc == 1 && f.filter != nullptr) {
          ++stats_.false_positive_files;
        } else if (rc == -1) {
          ++stats_.read_errors;
          if (cands[qi].first_error.ok()) {
            cands[qi].first_error = std::move(read_status);
          }
        }
      }
      if (!done && carry != nullptr && q.hi > f.largest) carry->push_back(qi);
    }
  };

  // L0 files overlap arbitrarily, so every file sees every overlapping
  // query (no early exit to exploit — same as Seek).
  std::vector<uint32_t> group;
  int age = 1;
  for (const auto& f : levels_[0]) {
    group.clear();
    for (uint32_t qi : order) {
      const StrRangeQuery& q = batch[qi];
      if (!(f->largest < q.lo || f->smallest > q.hi)) group.push_back(qi);
    }
    probe_group(*f, age++, group, nullptr);
  }

  // Sorted levels: files are ascending and non-overlapping, so each
  // query binary-searches its first overlapping file instead of every
  // file scanning every query; a query whose range spans a file
  // boundary carries into the next file's group (Seek's scan order
  // exactly). One flat (file, query) list per level keeps this
  // allocation-free across files.
  std::vector<std::pair<uint32_t, uint32_t>> assigned;
  std::vector<uint32_t> carry;
  for (size_t level = 1; level < kMaxLevels; ++level) {
    const auto& files = levels_[level];
    if (files.empty()) continue;
    const int level_age = 1000 + static_cast<int>(level);
    assigned.clear();
    for (uint32_t qi : order) {
      const StrRangeQuery& q = batch[qi];
      auto it = std::lower_bound(
          files.begin(), files.end(), q.lo,
          [](const auto& f, std::string_view lo) { return f->largest < lo; });
      if (it == files.end() || (*it)->smallest > q.hi) continue;
      assigned.emplace_back(static_cast<uint32_t>(it - files.begin()), qi);
    }
    // Queries with the same entry file become adjacent, scheduled order
    // preserved within each file.
    std::stable_sort(assigned.begin(), assigned.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    size_t pos = 0;
    carry.clear();
    for (size_t i = 0; i < files.size(); ++i) {
      if (carry.empty()) {
        if (pos == assigned.size()) break;
        i = assigned[pos].first;  // skip files nobody needs
      }
      group.clear();
      for (uint32_t qi : carry) {
        // A carried range can end before this file starts (Seek would
        // break the level scan there): drop it.
        if (batch[qi].hi >= files[i]->smallest) group.push_back(qi);
      }
      carry.clear();
      while (pos < assigned.size() && assigned[pos].first == i) {
        group.push_back(assigned[pos++].second);
      }
      probe_group(*files[i], level_age, group,
                  i + 1 < files.size() ? &carry : nullptr);
    }
  }

  // Resolve. Tombstone winners resume through the single-query loop past
  // the deleted key (rare: a batch amortizes nothing over a resume whose
  // cursor is unique to one query). Empty results feed the sample queue
  // with their original bounds, exactly like Seek.
  for (size_t qi = 0; qi < n; ++qi) {
    MultiSeekResult& r = (*results)[qi];
    Cand& c = cands[qi];
    r.status = std::move(c.first_error);
    if (c.found && !c.tombstone) {
      r.found = true;
      r.key = std::move(c.key);
      r.value = std::move(c.value);
      continue;
    }
    if (c.found) {
      std::string cursor = std::move(c.key);
      cursor.push_back('\0');
      r.found = SeekLoop(std::move(cursor), batch[qi].hi, &r.key, &r.value,
                         &r.status);
    }
    if (!r.found) RecordEmptySeek(batch[qi].lo, batch[qi].hi);
  }
}

Status Db::VerifyChecksums() const {
  for (const auto& level : levels_) {
    for (const auto& f : level) {
      Status s = f->reader->VerifyChecksums();
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

WalWriter::Stats Db::wal_stats() const {
  return wal_ != nullptr ? wal_->stats() : WalWriter::Stats{};
}

Status Db::background_error() const { return bg_error_; }

std::vector<size_t> Db::LevelFileCounts() const {
  std::vector<size_t> out;
  for (const auto& level : levels_) out.push_back(level.size());
  return out;
}

uint64_t Db::TotalSstBytes() const {
  uint64_t total = 0;
  for (const auto& level : levels_) {
    for (const auto& f : level) total += f->file_size;
  }
  return total;
}

uint64_t Db::TotalFilterBits() const {
  uint64_t total = 0;
  for (const auto& level : levels_) {
    for (const auto& f : level) {
      if (f->filter != nullptr) total += f->filter->SizeBits();
    }
  }
  return total;
}

uint64_t Db::TotalKeys() const {
  uint64_t total = mem_.size();
  for (const auto& level : levels_) {
    for (const auto& f : level) total += f->n_entries;
  }
  return total;
}

void Db::TEST_CrashClose() {
  std::unique_lock<std::shared_mutex> flush_lock(flush_mu_);
  crashed_ = true;
  wal_.reset();        // closes the fd; the file stays as-is on disk
  mem_.Clear();        // kill -9 takes the memtable with it
  mem_bytes_ = 0;
  if (manifest_fd_ >= 0) {
    ::close(manifest_fd_);
    manifest_fd_ = -1;
  }
}

}  // namespace proteus
