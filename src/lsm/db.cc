#include "lsm/db.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "core/filter.h"
#include "hash/murmur3.h"
#include "util/serial.h"
#include "util/timer.h"

namespace proteus {
namespace {

constexpr size_t kMaxLevels = 8;

// MANIFEST wire format: magic, version, next_file_id, n_levels, then per
// level a file count and per file (id, smallest, largest, n_entries,
// file_size); a trailing Murmur3 checksum over everything before it makes
// truncation and bit flips detectable at Open.
constexpr uint64_t kManifestMagic = 0x494E414D544F5250ull;  // "PROTMANI"
constexpr uint64_t kManifestVersion = 1;
constexpr uint64_t kManifestChecksumSeed = 0xC0FFEE;

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

/// K-way merge over SST iterators with newest-wins deduplication.
class MergingIterator {
 public:
  void Add(const SstReader* reader, int age) {
    items_.push_back({SstReader::Iterator(reader), age});
  }
  void Init() { FindBest(); }
  bool Valid() const { return best_ >= 0; }
  std::string_view key() const { return items_[best_].it.key(); }
  std::string_view value() const { return items_[best_].it.value(); }
  void Next() {
    std::string current(items_[best_].it.key());
    for (auto& item : items_) {
      if (item.it.Valid() && item.it.key() == current) item.it.Next();
    }
    FindBest();
  }

 private:
  struct Item {
    SstReader::Iterator it;
    int age;  // smaller = newer
  };

  void FindBest() {
    best_ = -1;
    for (size_t i = 0; i < items_.size(); ++i) {
      if (!items_[i].it.Valid()) continue;
      if (best_ < 0 || items_[i].it.key() < items_[best_].it.key() ||
          (items_[i].it.key() == items_[best_].it.key() &&
           items_[i].age < items_[best_].age)) {
        best_ = static_cast<int>(i);
      }
    }
  }

  std::vector<Item> items_;
  int best_ = -1;
};

/// Entry source over the MemTable (flush path).
class MemTableSource {
 public:
  explicit MemTableSource(const SkipList& mem) {
    mem.ForEach([this](std::string_view k, std::string_view v) {
      entries_.emplace_back(k, v);
    });
  }
  bool Valid() const { return index_ < entries_.size(); }
  std::string_view key() const { return entries_[index_].first; }
  std::string_view value() const { return entries_[index_].second; }
  void Next() { ++index_; }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
  size_t index_ = 0;
};

void WipeSstFiles(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.size() > 4 && name.substr(name.size() - 4) == ".sst") {
      ::unlink((dir + "/" + name).c_str());
    }
  }
  ::closedir(d);
  ::unlink((dir + "/MANIFEST").c_str());
  ::unlink((dir + "/MANIFEST.tmp").c_str());
}

bool WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  bool ok = written == content.size() && std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) {
    ::unlink(tmp.c_str());
    return false;
  }
  return ::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

Db::Db(DbOptions options) : Db(std::move(options), /*wipe_existing=*/true) {}

Db::Db(DbOptions options, bool wipe_existing)
    : options_(std::move(options)),
      cache_(options_.block_cache_bytes),
      query_queue_(options_.queue_options) {
  ::mkdir(options_.dir.c_str(), 0755);
  if (wipe_existing) WipeSstFiles(options_.dir);
  levels_.resize(kMaxLevels);
  compact_cursor_.resize(kMaxLevels, 0);
}

std::unique_ptr<Db> Db::Open(DbOptions options, std::string* error) {
  std::unique_ptr<Db> db(new Db(std::move(options), /*wipe_existing=*/false));
  if (!db->Recover(error)) return nullptr;
  return db;
}

Db::~Db() {
  Flush();  // lossless close: persist the memtable and the manifest
}

void Db::Put(std::string_view key, std::string_view value) {
  ++stats_.puts;
  int64_t delta = mem_.Put(key, value);
  mem_bytes_ = static_cast<size_t>(static_cast<int64_t>(mem_bytes_) + delta);
  if (mem_bytes_ >= options_.memtable_bytes) Flush();
}

Db::FilePtr Db::FinishFile(SstWriter* writer, std::vector<std::string>* keys,
                           const std::string& path) {
  auto meta = std::make_shared<FileMeta>();
  meta->id = next_file_id_++;
  meta->path = path;
  meta->smallest = writer->smallest();
  meta->largest = writer->largest();
  meta->n_entries = writer->n_entries();
  if (options_.filter_policy != nullptr) {
    Stopwatch timer;
    meta->filter =
        options_.filter_policy->Build(*keys, query_queue_.Snapshot());
    stats_.filter_build_ns += timer.ElapsedNanos();
    if (meta->filter != nullptr) {
      stats_.filter_bits_built += meta->filter->SizeBits();
      stats_.keys_filtered += keys->size();
      // Persist the filter in the SST itself so reopening the database
      // deserializes it instead of rebuilding from keys.
      std::string blob;
      if (meta->filter->Serialize(&blob)) {
        writer->SetFilterBlock(std::move(blob), Filter::kVersion);
      }
    }
  }
  // Loud (if non-fatal) failure: a truncated SST here means the next
  // reopen fails its manifest entry rather than silently losing keys.
  if (!writer->Finish()) {
    std::fprintf(stderr, "proteus: I/O error writing SST %s\n",
                 path.c_str());
  }
  meta->file_size = writer->file_size();
  meta->reader = std::make_unique<SstReader>();
  if (!meta->reader->Open(path, meta->id, &cache_)) {
    std::fprintf(stderr, "proteus: cannot reopen just-written SST %s\n",
                 path.c_str());
  }
  meta->reader->ReleaseFilterBlock();  // meta->filter is the live copy
  if (meta->filter != nullptr) ChargeFilter(*meta);
  return meta;
}

void Db::ChargeFilter(const FileMeta& meta) {
  cache_.AddPinnedBytes(meta.id, meta.filter->SizeBits() / 8);
}

void Db::WriteManifest() const {
  std::string out;
  PutFixed64(&out, kManifestMagic);
  PutFixed64(&out, kManifestVersion);
  PutFixed64(&out, next_file_id_);
  PutFixed64(&out, levels_.size());
  for (const auto& level : levels_) {
    PutFixed64(&out, level.size());
    for (const auto& f : level) {
      PutFixed64(&out, f->id);
      PutLengthPrefixed(&out, f->smallest);
      PutLengthPrefixed(&out, f->largest);
      PutFixed64(&out, f->n_entries);
      PutFixed64(&out, f->file_size);
    }
  }
  PutFixed64(&out,
             Murmur3Bytes64(out.data(), out.size(), kManifestChecksumSeed));
  if (!WriteFileAtomic(options_.dir + "/MANIFEST", out)) {
    // A stale manifest strands files removed by this compaction; say so
    // rather than letting the next Open discover it.
    std::fprintf(stderr, "proteus: cannot write %s/MANIFEST\n",
                 options_.dir.c_str());
  }
}

bool Db::Recover(std::string* error) {
  const std::string path = options_.dir + "/MANIFEST";
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return true;  // no manifest: empty database
  std::string content;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, got);
  }
  std::fclose(f);

  if (content.size() < 40) {
    SetError(error, "manifest truncated");
    return false;
  }
  std::string_view cursor(content.data(), content.size() - 8);
  uint64_t checksum;
  {
    std::string_view tail(content.data() + content.size() - 8, 8);
    GetFixed64(&tail, &checksum);
  }
  if (checksum != Murmur3Bytes64(cursor.data(), cursor.size(),
                                 kManifestChecksumSeed)) {
    SetError(error, "manifest checksum mismatch");
    return false;
  }
  uint64_t magic, version, next_file_id, n_levels;
  if (!GetFixed64(&cursor, &magic) || magic != kManifestMagic) {
    SetError(error, "bad manifest magic");
    return false;
  }
  if (!GetFixed64(&cursor, &version) || version != kManifestVersion) {
    SetError(error, "unsupported manifest version");
    return false;
  }
  if (!GetFixed64(&cursor, &next_file_id) ||
      !GetFixed64(&cursor, &n_levels) || n_levels > kMaxLevels) {
    SetError(error, "corrupt manifest header");
    return false;
  }
  uint64_t max_id = 0;
  for (uint64_t level = 0; level < n_levels; ++level) {
    uint64_t n_files;
    if (!GetFixed64(&cursor, &n_files)) {
      SetError(error, "corrupt manifest level header");
      return false;
    }
    for (uint64_t i = 0; i < n_files; ++i) {
      auto meta = std::make_shared<FileMeta>();
      if (!GetFixed64(&cursor, &meta->id) ||
          !GetLengthPrefixed(&cursor, &meta->smallest) ||
          !GetLengthPrefixed(&cursor, &meta->largest) ||
          !GetFixed64(&cursor, &meta->n_entries) ||
          !GetFixed64(&cursor, &meta->file_size)) {
        SetError(error, "corrupt manifest file entry");
        return false;
      }
      meta->path = options_.dir + "/" + std::to_string(meta->id) + ".sst";
      if (!LoadFile(meta, error)) return false;
      max_id = std::max(max_id, meta->id);
      levels_[level].push_back(std::move(meta));
    }
  }
  if (!cursor.empty()) {
    SetError(error, "trailing bytes in manifest");
    return false;
  }
  next_file_id_ = std::max(next_file_id, max_id + 1);
  return true;
}

bool Db::LoadFile(const FilePtr& meta, std::string* error) {
  meta->reader = std::make_unique<SstReader>();
  if (!meta->reader->Open(meta->path, meta->id, &cache_)) {
    SetError(error, "cannot open SST file " + meta->path);
    return false;
  }
  const bool wants_filters = options_.filter_policy != nullptr &&
                             options_.filter_policy->Name() != "none";
  if (wants_filters) {
    meta->filter = meta->reader->LoadFilter();
    if (meta->filter != nullptr) {
      ++stats_.filter_loads;
    } else {
      // Missing, truncated, bit-flipped, or format-incompatible filter
      // block: rebuild from the file's keys instead of failing the open.
      std::vector<std::string> keys;
      keys.reserve(meta->n_entries);
      meta->reader->ForEach(
          [&keys](std::string_view k, std::string_view) {
            keys.emplace_back(k);
          });
      Stopwatch timer;
      meta->filter =
          options_.filter_policy->Build(keys, query_queue_.Snapshot());
      stats_.filter_build_ns += timer.ElapsedNanos();
      if (meta->filter != nullptr) {
        ++stats_.filter_rebuilds;
        stats_.filter_bits_built += meta->filter->SizeBits();
        stats_.keys_filtered += keys.size();
      }
    }
  }
  meta->reader->ReleaseFilterBlock();  // live filter holds the memory now
  if (meta->filter != nullptr) ChargeFilter(*meta);
  return true;
}

template <typename Iter>
std::vector<Db::FilePtr> Db::WriteSstFiles(Iter&& entries, int target_level,
                                           size_t max_data_bytes) {
  std::vector<FilePtr> out;
  SstWriter::Options wopts;
  wopts.block_size = options_.block_size;
  wopts.compress = target_level >= options_.compress_min_level;
  while (entries.Valid()) {
    std::string path =
        options_.dir + "/" + std::to_string(next_file_id_) + ".sst";
    SstWriter writer(path, wopts);
    std::vector<std::string> keys;
    size_t data_bytes = 0;
    while (entries.Valid() && data_bytes < max_data_bytes) {
      writer.Add(entries.key(), entries.value());
      keys.emplace_back(entries.key());
      data_bytes += entries.key().size() + entries.value().size();
      entries.Next();
    }
    out.push_back(FinishFile(&writer, &keys, path));
  }
  return out;
}

void Db::Flush() {
  if (mem_.size() == 0) return;
  MemTableSource source(mem_);
  auto files =
      WriteSstFiles(source, /*target_level=*/0, ~size_t{0});
  for (auto& f : files) {
    levels_[0].insert(levels_[0].begin(), std::move(f));  // newest first
  }
  ++stats_.flushes;
  mem_.Clear();
  mem_bytes_ = 0;
  MaybeCompact();
  WriteManifest();
}

uint64_t Db::LevelLimitBytes(size_t level) const {
  double limit = static_cast<double>(options_.l1_size_bytes);
  for (size_t i = 1; i < level; ++i) limit *= options_.level_size_multiplier;
  return static_cast<uint64_t>(limit);
}

uint64_t Db::LevelBytes(size_t level) const {
  uint64_t total = 0;
  for (const auto& f : levels_[level]) total += f->file_size;
  return total;
}

void Db::RemoveFile(const FilePtr& f) {
  cache_.EraseFile(f->id);
  ::unlink(f->path.c_str());
}

void Db::CompactL0() {
  if (levels_[0].empty()) return;
  ++stats_.compactions;
  std::string smallest = levels_[0][0]->smallest;
  std::string largest = levels_[0][0]->largest;
  for (const auto& f : levels_[0]) {
    smallest = std::min(smallest, f->smallest);
    largest = std::max(largest, f->largest);
  }
  MergingIterator merge;
  int age = 0;
  for (const auto& f : levels_[0]) merge.Add(f->reader.get(), age++);
  std::vector<FilePtr> l1_keep;
  for (const auto& f : levels_[1]) {
    if (f->largest < smallest || f->smallest > largest) {
      l1_keep.push_back(f);
    } else {
      merge.Add(f->reader.get(), age++);
    }
  }
  merge.Init();
  auto outputs = WriteSstFiles(merge, /*target_level=*/1,
                               options_.sst_target_bytes);
  for (const auto& f : levels_[0]) RemoveFile(f);
  for (const auto& f : levels_[1]) {
    bool kept = false;
    for (const auto& k : l1_keep) {
      if (k->id == f->id) {
        kept = true;
        break;
      }
    }
    if (!kept) RemoveFile(f);
  }
  levels_[0].clear();
  for (auto& f : outputs) l1_keep.push_back(std::move(f));
  std::sort(l1_keep.begin(), l1_keep.end(),
            [](const FilePtr& a, const FilePtr& b) {
              return a->smallest < b->smallest;
            });
  levels_[1] = std::move(l1_keep);
}

void Db::CompactLevel(size_t level) {
  if (levels_[level].empty() || level + 1 >= kMaxLevels) return;
  ++stats_.compactions;
  size_t pick = compact_cursor_[level] % levels_[level].size();
  compact_cursor_[level] = pick + 1;
  FilePtr input = levels_[level][pick];

  MergingIterator merge;
  merge.Add(input->reader.get(), 0);
  std::vector<FilePtr> next_keep;
  for (const auto& f : levels_[level + 1]) {
    if (f->largest < input->smallest || f->smallest > input->largest) {
      next_keep.push_back(f);
    } else {
      merge.Add(f->reader.get(), 1);
    }
  }
  merge.Init();
  auto outputs = WriteSstFiles(merge, static_cast<int>(level + 1),
                               options_.sst_target_bytes);
  for (const auto& f : levels_[level + 1]) {
    bool kept = false;
    for (const auto& k : next_keep) {
      if (k->id == f->id) {
        kept = true;
        break;
      }
    }
    if (!kept) RemoveFile(f);
  }
  RemoveFile(input);
  levels_[level].erase(levels_[level].begin() + pick);
  for (auto& f : outputs) next_keep.push_back(std::move(f));
  std::sort(next_keep.begin(), next_keep.end(),
            [](const FilePtr& a, const FilePtr& b) {
              return a->smallest < b->smallest;
            });
  levels_[level + 1] = std::move(next_keep);
}

void Db::MaybeCompact() {
  if (static_cast<int>(levels_[0].size()) >=
      options_.l0_compaction_trigger) {
    CompactL0();
  }
  for (size_t level = 1; level + 1 < kMaxLevels; ++level) {
    while (LevelBytes(level) > LevelLimitBytes(level)) CompactLevel(level);
  }
}

void Db::CompactAll() {
  Flush();
  if (!levels_[0].empty()) CompactL0();
  for (size_t level = 1; level + 1 < kMaxLevels; ++level) {
    while (LevelBytes(level) > LevelLimitBytes(level)) CompactLevel(level);
  }
  WriteManifest();
}

bool Db::Seek(std::string_view lo, std::string_view hi, std::string* key,
              std::string* value) {
  ++stats_.seeks;
  bool found = false;
  std::string best_key, best_value;
  int best_age = 1 << 30;
  auto consider = [&](std::string_view k, std::string_view v, int age) {
    if (k > hi) return;
    if (!found || k < best_key || (k == best_key && age < best_age)) {
      found = true;
      best_key.assign(k);
      best_value.assign(v);
      best_age = age;
    }
  };

  SkipList::Entry entry;
  if (mem_.SeekGeq(lo, &entry)) consider(entry.key, entry.value, 0);

  int age = 1;
  std::string fk, fv;
  for (const auto& f : levels_[0]) {
    int file_age = age++;
    if (f->largest < lo || f->smallest > hi) continue;
    std::string_view clip_lo = lo > f->smallest ? lo : f->smallest;
    std::string_view clip_hi = hi < f->largest ? hi : f->largest;
    ++stats_.filter_checks;
    if (f->filter != nullptr && !f->filter->MayContain(clip_lo, clip_hi)) {
      ++stats_.filter_negatives;
      continue;
    }
    ++stats_.sst_seeks;
    int rc = f->reader->SeekInRange(lo, hi, &fk, &fv);
    if (rc == 0) {
      consider(fk, fv, file_age);
    } else if (rc == 1 && f->filter != nullptr) {
      ++stats_.false_positive_files;
    }
  }

  for (size_t level = 1; level < kMaxLevels; ++level) {
    int level_age = 1000 + static_cast<int>(level);
    for (const auto& f : levels_[level]) {
      if (f->largest < lo) continue;
      if (f->smallest > hi) break;
      std::string_view clip_lo = lo > f->smallest ? lo : f->smallest;
      std::string_view clip_hi = hi < f->largest ? hi : f->largest;
      ++stats_.filter_checks;
      if (f->filter != nullptr && !f->filter->MayContain(clip_lo, clip_hi)) {
        ++stats_.filter_negatives;
        continue;
      }
      ++stats_.sst_seeks;
      int rc = f->reader->SeekInRange(lo, hi, &fk, &fv);
      if (rc == 0) {
        consider(fk, fv, level_age);
        break;  // smallest in-range key of this level found
      }
      if (rc == 1 && f->filter != nullptr) ++stats_.false_positive_files;
    }
  }

  if (!found) {
    ++stats_.empty_seeks;
    query_queue_.OnEmptyQuery(lo, hi);
    return false;
  }
  if (key != nullptr) key->assign(best_key);
  if (value != nullptr) value->assign(best_value);
  return true;
}

std::vector<size_t> Db::LevelFileCounts() const {
  std::vector<size_t> out;
  for (const auto& level : levels_) out.push_back(level.size());
  return out;
}

uint64_t Db::TotalSstBytes() const {
  uint64_t total = 0;
  for (const auto& level : levels_) {
    for (const auto& f : level) total += f->file_size;
  }
  return total;
}

uint64_t Db::TotalFilterBits() const {
  uint64_t total = 0;
  for (const auto& level : levels_) {
    for (const auto& f : level) {
      if (f->filter != nullptr) total += f->filter->SizeBits();
    }
  }
  return total;
}

uint64_t Db::TotalKeys() const {
  uint64_t total = mem_.size();
  for (const auto& level : levels_) {
    for (const auto& f : level) total += f->n_entries;
  }
  return total;
}

}  // namespace proteus
