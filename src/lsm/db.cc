#include "lsm/db.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "core/filter.h"
#include "model/bpk_alloc.h"
#include "util/crc32c.h"
#include "util/posix_io.h"
#include "util/serial.h"
#include "util/timer.h"

namespace proteus {

// Abstract sorted stream of entry versions (key asc, seqno desc) feeding
// WriteSstFiles. tag()/user_value() are the decoded form regardless of
// the source's on-disk encoding.
class EntrySource {
 public:
  virtual ~EntrySource() = default;
  virtual bool Valid() const = 0;
  virtual std::string_view key() const = 0;
  virtual uint64_t seqno() const = 0;
  virtual uint8_t tag() const = 0;
  virtual std::string_view user_value() const = 0;
  virtual void Next() = 0;
  virtual Status status() const = 0;
};

namespace {

constexpr size_t kMaxLevels = 8;

// MANIFEST delta log (byte-accurate spec in docs/FORMAT.md): a sequence
// of CRC32C-framed records. The first record is always a full snapshot
// of the tree; each flush/compaction appends a delta (files added with
// their level, file ids retired); every manifest_compact_threshold
// deltas the log is atomically rewritten as one fresh snapshot.
//
//   record  := length u32 | crc32c(payload) u32 | payload[length]
//   snapshot payload := kind u8 (1) | magic u64 | version u64 |
//                       next_file_id u64 | last_seqno u64 (v3+) |
//                       n_levels u64 | per level: n_files u64, file*
//   delta payload    := kind u8 (2) | next_file_id u64 |
//                       last_seqno u64 (v3+) |
//                       n_added u64,  (level u64, file)* |
//                       n_deleted u64, (file_id u64)*
//   file := id u64 | smallest lp | largest lp | n_entries u64 |
//           file_size u64 |      (lp = u64 length + raw bytes)
//           v4+: design_epoch u64 | modeled_fpr f64 |
//                design_signature f64 | design_samples u64 |
//                checks u64 | probes u64 | false_positives u64
//           (f64 = IEEE-754 bit pattern as fixed u64; -1.0 = none)
//
// v2 manifests (pre-MVCC) have no last_seqno fields; v3 has no per-file
// design provenance. Both are read and rewritten as v4 at open, so
// deltas never mix formats within one file.
constexpr uint64_t kManifestMagic = 0x494E414D544F5250ull;  // "PROTMANI"
constexpr uint64_t kManifestVersion = 4;  // 3 = no provenance, 2 = pre-MVCC
constexpr uint8_t kManifestRecordSnapshot = 1;
constexpr uint8_t kManifestRecordDelta = 2;

/// Frames a manifest record: length + CRC32C + payload.
std::string FrameRecord(std::string_view payload) {
  std::string out;
  out.reserve(8 + payload.size());
  AppendCrcFrame(&out, payload);
  return out;
}

void SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

uint64_t DoubleBits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

double BitsToDouble(uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

void WipeDbFiles(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    const bool sst =
        name.size() > 4 && name.substr(name.size() - 4) == ".sst";
    const bool wal = name == "WAL" || name.rfind("WAL-", 0) == 0;
    if (sst || wal) ::unlink((dir + "/" + name).c_str());
  }
  ::closedir(d);
  ::unlink((dir + "/MANIFEST").c_str());
  ::unlink((dir + "/MANIFEST.tmp").c_str());
}

/// Parses a WAL file name into its segment number: "WAL" (the legacy
/// un-numbered log) is segment 0, "WAL-<n>" is segment n. Returns false
/// for anything else.
bool ParseWalName(const std::string& name, uint64_t* number) {
  if (name == "WAL") {
    *number = 0;
    return true;
  }
  if (name.rfind("WAL-", 0) != 0) return false;
  const std::string digits = name.substr(4);
  if (digits.empty()) return false;
  char* end = nullptr;
  const uint64_t n = std::strtoull(digits.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || n == 0) return false;
  *number = n;
  return true;
}

/// K-way merge over memtable shards (the flush path): each shard's
/// skiplist streams its own (key asc, seqno desc) order, and the merge
/// interleaves them back into ONE globally sorted stream. (key, seqno)
/// pairs are globally unique — the leader assigns each seqno once — so
/// the merge is deterministic and the SSTs it feeds are byte-identical
/// regardless of how many shards the writes were routed across. The
/// iterators point into skiplist nodes the caller keeps alive.
class MemTableMergeSource : public EntrySource {
 public:
  /// Add every shard of every immutable memtable, then Init().
  void Add(const SkipList* list) {
    Item item{SkipList::Iterator(list), kTagValue, {}};
    DecodeItem(&item);
    items_.push_back(std::move(item));
  }
  void Init() { FindBest(); }

  bool Valid() const override { return best_ >= 0; }
  std::string_view key() const override { return items_[best_].it.key(); }
  uint64_t seqno() const override { return items_[best_].it.seqno(); }
  uint8_t tag() const override { return items_[best_].tag; }
  std::string_view user_value() const override {
    return items_[best_].user_value;
  }
  void Next() override {
    Item& item = items_[best_];
    item.it.Next();
    DecodeItem(&item);
    FindBest();
  }
  Status status() const override { return Status::OK(); }

 private:
  struct Item {
    SkipList::Iterator it;
    uint8_t tag;
    std::string_view user_value;
  };

  void DecodeItem(Item* item) {
    // A malformed internal value cannot round-trip out of the arena
    // (writes always store tag|user); skip defensively like the old
    // materializing path did.
    while (item->it.Valid() &&
           !ParseInternalValue(item->it.value(), &item->tag,
                               &item->user_value)) {
      item->it.Next();
    }
  }

  void FindBest() {
    best_ = -1;
    for (size_t i = 0; i < items_.size(); ++i) {
      if (!items_[i].it.Valid()) continue;
      if (best_ < 0) {
        best_ = static_cast<int>(i);
        continue;
      }
      const Item& a = items_[i];
      const Item& b = items_[static_cast<size_t>(best_)];
      const int c = a.it.key().compare(b.it.key());
      if (c < 0 || (c == 0 && a.it.seqno() > b.it.seqno())) {
        best_ = static_cast<int>(i);
      }
    }
  }

  std::vector<Item> items_;
  int best_ = -1;
};

/// K-way merge over SST iterators in (key asc, seqno desc, source age)
/// order. Equal (key, seqno) pairs across sources are ONE logical write
/// seen through several files (crash-replay overlap, or legacy seqno-0
/// entries colliding): only the newest source's copy is emitted.
class MergeSource : public EntrySource {
 public:
  void Add(const SstReader* reader, int age) {
    items_.push_back(
        Item{SstReader::Iterator(reader), reader->footer_version(), age, {}});
    DecodeItem(&items_.back());
  }
  void Init() { FindBest(); }

  bool Valid() const override { return best_ >= 0 && decode_error_.ok(); }
  std::string_view key() const override { return items_[best_].it.key(); }
  uint64_t seqno() const override { return items_[best_].parsed.seqno; }
  uint8_t tag() const override { return items_[best_].parsed.tag; }
  std::string_view user_value() const override {
    return items_[best_].parsed.user_value;
  }

  void Next() override {
    const std::string cur_key(items_[best_].it.key());
    const uint64_t cur_seq = items_[best_].parsed.seqno;
    for (auto& item : items_) {
      if (item.it.Valid() && item.it.key() == cur_key &&
          item.parsed.seqno == cur_seq) {
        item.it.Next();
        DecodeItem(&item);
      }
    }
    FindBest();
  }

  /// First failure across the inputs. A merge that ends with a non-OK
  /// status stopped early and MUST NOT be committed: the missing entries
  /// would otherwise be dropped and their file unlinked.
  Status status() const override {
    if (!decode_error_.ok()) return decode_error_;
    for (const auto& item : items_) {
      if (!item.it.status().ok()) return item.it.status();
    }
    return Status::OK();
  }

 private:
  struct Item {
    SstReader::Iterator it;
    uint32_t footer_version;
    int age;  // smaller = newer
    ParsedValue parsed;
  };

  void DecodeItem(Item* item) {
    if (!item->it.Valid()) return;
    if (!ParseSstValue(item->footer_version, item->it.value(),
                       &item->parsed)) {
      decode_error_ = Status::Corruption("SST value malformed during merge");
    }
  }

  void FindBest() {
    best_ = -1;
    for (size_t i = 0; i < items_.size(); ++i) {
      if (!items_[i].it.Valid()) continue;
      if (best_ < 0) {
        best_ = static_cast<int>(i);
        continue;
      }
      const Item& a = items_[i];
      const Item& b = items_[static_cast<size_t>(best_)];
      const int c = a.it.key().compare(b.it.key());
      if (c < 0 ||
          (c == 0 && (a.parsed.seqno > b.parsed.seqno ||
                      (a.parsed.seqno == b.parsed.seqno && a.age < b.age)))) {
        best_ = static_cast<int>(i);
      }
    }
  }

  std::vector<Item> items_;
  Status decode_error_;
  int best_ = -1;
};

/// The MVCC garbage-collection filter: of each key's version run
/// (newest first), keeps the newest version per live-snapshot stripe and
/// drops the rest. With `drop_tombstones` (bottom-level compaction), a
/// key whose newest surviving version is a tombstone no snapshot
/// predates is dropped entirely — every live horizon sees it deleted.
class CollapseSource : public EntrySource {
 public:
  CollapseSource(EntrySource& in, std::vector<uint64_t> snapshots,
                 bool drop_tombstones)
      : in_(in),
        snapshots_(std::move(snapshots)),
        drop_tombstones_(drop_tombstones) {
    Advance();
  }

  bool Valid() const override { return valid_ && in_.status().ok(); }
  std::string_view key() const override { return in_.key(); }
  uint64_t seqno() const override { return in_.seqno(); }
  uint8_t tag() const override { return in_.tag(); }
  std::string_view user_value() const override { return in_.user_value(); }
  void Next() override {
    in_.Next();
    Advance();
  }
  Status status() const override { return in_.status(); }

 private:
  // Index of the first live snapshot >= seqno. Two versions of a key in
  // the same stripe are indistinguishable to every live horizon, so only
  // the newer one survives; a smaller stripe means some snapshot pins
  // the older version.
  size_t Stripe(uint64_t seqno) const {
    return static_cast<size_t>(
        std::lower_bound(snapshots_.begin(), snapshots_.end(), seqno) -
        snapshots_.begin());
  }
  bool NoSnapshotBelow(uint64_t seqno) const {
    return snapshots_.empty() || snapshots_.front() >= seqno;
  }

  void Advance() {
    valid_ = false;
    while (in_.Valid()) {
      const uint64_t sq = in_.seqno();
      if (!have_prev_ || in_.key() != prev_key_) {
        // Newest version of a new key.
        prev_key_.assign(in_.key());
        have_prev_ = true;
        prev_seqno_ = sq;
        prev_stripe_ = Stripe(sq);
        if (drop_tombstones_ && in_.tag() == kTagTombstone &&
            NoSnapshotBelow(sq)) {
          // The deletion is final for every live horizon; the shadow
          // state above makes the stripe test drop the older versions.
          in_.Next();
          continue;
        }
        valid_ = true;
        return;
      }
      // An older version of the same key.
      if (sq == prev_seqno_) {  // duplicate logical slot: newest source won
        in_.Next();
        continue;
      }
      const size_t stripe = Stripe(sq);
      if (stripe == prev_stripe_) {  // no snapshot between the two versions
        in_.Next();
        continue;
      }
      prev_seqno_ = sq;
      prev_stripe_ = stripe;
      valid_ = true;
      return;
    }
  }

  EntrySource& in_;
  const std::vector<uint64_t> snapshots_;  // sorted ascending
  const bool drop_tombstones_;
  bool valid_ = false;
  bool have_prev_ = false;
  std::string prev_key_;
  uint64_t prev_seqno_ = 0;
  size_t prev_stripe_ = 0;
};

/// A counter incremented from many threads without ordering needs.
struct RelaxedCounter {
  std::atomic<uint64_t> v{0};
  void operator++() { v.fetch_add(1, std::memory_order_relaxed); }
  void operator+=(uint64_t n) { v.fetch_add(n, std::memory_order_relaxed); }
  uint64_t load() const { return v.load(std::memory_order_relaxed); }
  void reset() { v.store(0, std::memory_order_relaxed); }
};

#define PROTEUS_DB_STAT_FIELDS(X)                                      \
  X(puts)                                                              \
  X(deletes)                                                           \
  X(seeks)                                                             \
  X(empty_seeks)                                                       \
  X(filter_checks)                                                     \
  X(filter_negatives)                                                  \
  X(sst_seeks)                                                         \
  X(false_positive_files)                                              \
  X(read_errors)                                                       \
  X(flushes)                                                           \
  X(compactions)                                                       \
  X(filter_build_ns)                                                   \
  X(filter_bits_built)                                                 \
  X(keys_filtered)                                                     \
  X(filter_loads)                                                      \
  X(filter_rebuilds)                                                   \
  X(wal_replayed)                                                      \
  X(wal_rotations)                                                     \
  X(manifest_deltas)                                                   \
  X(manifest_snapshots)                                                \
  X(queue_sampled)                                                     \
  X(write_stalls)                                                      \
  X(stall_wait_us)                                                     \
  X(drift_detected)                                                    \
  X(redesigns)

}  // namespace

// Relaxed-atomic mirror of DbStats; stats() copies it out field by field.
struct Db::AtomicStats {
#define PROTEUS_DB_STAT_DEF(name) RelaxedCounter name;
  PROTEUS_DB_STAT_FIELDS(PROTEUS_DB_STAT_DEF)
#undef PROTEUS_DB_STAT_DEF

  // Per-level check / probe / false-positive breakdown (index = level).
  RelaxedCounter level_filter_checks[kMaxLevels];
  RelaxedCounter level_sst_seeks[kMaxLevels];
  RelaxedCounter level_fp_files[kMaxLevels];

  DbStats Snapshot() const {
    DbStats out;
#define PROTEUS_DB_STAT_COPY(name) out.name = name.load();
    PROTEUS_DB_STAT_FIELDS(PROTEUS_DB_STAT_COPY)
#undef PROTEUS_DB_STAT_COPY
    size_t deepest = 0;
    for (size_t i = 0; i < kMaxLevels; ++i) {
      if (level_filter_checks[i].load() != 0 ||
          level_sst_seeks[i].load() != 0) {
        deepest = i + 1;
      }
    }
    out.level_filter_checks.resize(deepest);
    out.level_sst_seeks.resize(deepest);
    out.level_fp_files.resize(deepest);
    for (size_t i = 0; i < deepest; ++i) {
      out.level_filter_checks[i] = level_filter_checks[i].load();
      out.level_sst_seeks[i] = level_sst_seeks[i].load();
      out.level_fp_files[i] = level_fp_files[i].load();
    }
    return out;
  }

  void Reset() {
#define PROTEUS_DB_STAT_RESET(name) name.reset();
    PROTEUS_DB_STAT_FIELDS(PROTEUS_DB_STAT_RESET)
#undef PROTEUS_DB_STAT_RESET
    for (size_t i = 0; i < kMaxLevels; ++i) {
      level_filter_checks[i].reset();
      level_sst_seeks[i].reset();
      level_fp_files[i].reset();
    }
  }
};

Db::FileMeta::~FileMeta() {
  reader.reset();  // close the fd before the path may be unlinked
  if (obsolete.load(std::memory_order_relaxed)) ::unlink(path.c_str());
}

Db::Db(DbOptions options, bool wipe_existing)
    : options_(std::move(options)),
      cache_(options_.block_cache_bytes),
      query_queue_(options_.queue_options),
      stats_(std::make_unique<AtomicStats>()) {
  ::mkdir(options_.dir.c_str(), 0755);
  auto v = std::make_shared<Version>();
  v->levels.resize(kMaxLevels);
  version_ = std::move(v);
  mem_ = std::make_shared<MemTableSet>(options_.memtable_shards);
  shard_applies_ =
      std::vector<std::atomic<uint64_t>>(mem_->shard_count());
  compact_cursor_.resize(kMaxLevels, 0);
  pool_ = std::make_unique<TaskPool>(
      std::max<size_t>(1, options_.background_threads));
  if (wipe_existing) {
    WipeDbFiles(options_.dir);
    if (options_.use_wal) {
      wal_ = std::make_unique<WalWriter>();
      wal_number_ = 1;
      mem_->wal_segment = 1;
      Status s = wal_->Open(WalSegmentPath(1));
      if (!s.ok()) {
        wal_.reset();
        wal_error_ = std::move(s);
      }
    }
  }
  // Open() (wipe_existing=false) builds the WAL writer in
  // ReplayWalSegments, after the existing segments have been replayed.
}

std::pair<std::unique_ptr<Db>, Status> Db::Create(DbOptions options) {
  std::unique_ptr<Db> db(new Db(std::move(options), /*wipe_existing=*/true));
  // Single-threaded here: wal_error_ needs no lock yet.
  if (!db->wal_error_.ok()) {
    Status s = db->wal_error_;
    db->crashed_.store(true, std::memory_order_relaxed);  // dtor: no flush
    return {nullptr, s};
  }
  return {std::move(db), Status::OK()};
}

std::pair<std::unique_ptr<Db>, Status> Db::Open(DbOptions options) {
  std::unique_ptr<Db> db(new Db(std::move(options), /*wipe_existing=*/false));
  Status s = db->RecoverAll();
  if (!s.ok()) {
    // Don't flush a half-recovered state on destruction.
    db->crashed_.store(true, std::memory_order_relaxed);
    return {nullptr, s};
  }
  return {std::move(db), Status::OK()};
}

Db::~Db() {
  closing_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> sl(stall_mu_);
  }
  stall_cv_.notify_all();
  if (pool_ != nullptr) pool_->Shutdown();
  if (!crashed_.load(std::memory_order_relaxed)) {
    // Lossless close: persist the memtables and the manifest. A failure
    // here cannot be returned; it is still recoverable from the WAL.
    Status s = Flush();
    if (!s.ok()) {
      std::fprintf(stderr, "proteus: flush on close failed: %s\n",
                   s.ToString().c_str());
    }
    // The observed-FPR counters advance on reads, which append no
    // manifest records; one final snapshot carries the drift evidence
    // across a clean reopen. Best-effort: losing it only resets the
    // counters.
    std::lock_guard<std::mutex> mlock(maint_mu_);
    if (manifest_fd_ >= 0) {
      Status ps = WriteManifestSnapshot();
      if (!ps.ok()) {
        std::fprintf(stderr, "proteus: manifest snapshot on close failed: %s\n",
                     ps.ToString().c_str());
      }
    }
  }
  if (manifest_fd_ >= 0) ::close(manifest_fd_);
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

Status Db::Put(std::string_view key, std::string_view value,
               const WriteOptions& options) {
  return WriteInternal(kTagValue, key, value, options);
}

Status Db::Delete(std::string_view key, const WriteOptions& options) {
  return WriteInternal(kTagTombstone, key, {}, options);
}

// Shared state of one batch's parallel memtable apply. Lives on the
// leader's stack for the duration of CommitBatch; the leader hands each
// follower a pointer (under write_mu_), every follower inserts its OWN
// entry into its memtable shard, and the last decrement of `pending`
// releases the leader to publish the commit point. The group must not be
// destroyed until pending hits zero — the leader's wait guarantees that,
// and followers notify while holding `mu` so the leader cannot observe
// pending == 0 and destroy the group mid-notify.
struct Db::ApplyGroup {
  MemTableSet* mem = nullptr;
  std::atomic<uint32_t> pending{0};
  std::mutex mu;
  std::condition_variable cv;
};

void Db::ApplyWriter(MemTableSet* mem, const Writer& w) {
  const size_t shard = mem->Add(w.key, w.seqno, w.tag, w.value);
  shard_applies_[shard].fetch_add(1, std::memory_order_relaxed);
  if (w.tag == kTagValue) {
    ++stats_->puts;
  } else {
    ++stats_->deletes;
  }
}

Status Db::WriteInternal(uint8_t tag, std::string_view key,
                         std::string_view value, const WriteOptions& wopts) {
  Writer w;
  w.tag = tag;
  w.key = key;
  w.value = value;
  w.sync = wopts.sync && options_.wal_sync;

  std::unique_lock<std::mutex> qlock(write_mu_);
  write_queue_.push_back(&w);
  // Wait until the leader enlists this write in its batch's parallel
  // memtable apply, a leader commits it outright, or we reach the front
  // and become the leader of everything queued behind us.
  write_cv_.wait(qlock, [&] {
    return w.done || w.apply != nullptr || write_queue_.front() == &w;
  });
  if (w.apply != nullptr && !w.done) {
    // Follower with work: the leader has WAL-appended the batch and is
    // waiting for the shard applies. Insert our own entry (outside the
    // queue lock — this is the parallel part), then report in.
    ApplyGroup* group = w.apply;
    qlock.unlock();
    ApplyWriter(group->mem, w);
    {
      // Decrement AND notify under the group mutex: the leader evaluates
      // its wait predicate holding it, so it cannot observe pending == 0
      // and destroy the group while any follower is still inside this
      // block — and a follower that has left it never touches the group
      // again.
      std::lock_guard<std::mutex> gl(group->mu);
      if (group->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        group->cv.notify_one();
      }
    }
    qlock.lock();
    write_cv_.wait(qlock, [&] { return w.done; });
  }
  if (w.done) return w.status;

  std::vector<Writer*> batch(write_queue_.begin(), write_queue_.end());
  qlock.unlock();

  bool need_maintenance = false;
  Status s = CommitBatch(batch, &need_maintenance);

  qlock.lock();
  for (size_t i = 0; i < batch.size(); ++i) write_queue_.pop_front();
  for (Writer* other : batch) {
    if (other == &w) continue;
    other->status = s;
    other->done = true;
  }
  qlock.unlock();
  // Wakes both the batch's followers and the next leader.
  write_cv_.notify_all();

  if (need_maintenance) MaybeScheduleMaintenance();
  return s;
}

Status Db::CommitBatch(const std::vector<Writer*>& batch,
                       bool* need_maintenance) {
  *need_maintenance = false;

  // Backpressure BEFORE entering the pipeline: while the flusher is
  // behind, stalling here keeps memory bounded without blocking readers
  // or the flusher itself.
  if (ImmCount() >= options_.max_immutable_memtables) {
    std::unique_lock<std::mutex> sl(stall_mu_);
    ++stats_->write_stalls;
    Stopwatch timer;
    stall_cv_.wait(sl, [&] {
      if (crashed_.load(std::memory_order_relaxed) ||
          closing_.load(std::memory_order_relaxed)) {
        return true;
      }
      {
        std::lock_guard<std::mutex> el(err_mu_);
        if (!bg_error_.ok()) return true;  // the flush will not come
      }
      return ImmCount() < options_.max_immutable_memtables;
    });
    stats_->stall_wait_us += timer.ElapsedNanos() / 1000;
  }

  {
    std::lock_guard<std::mutex> el(err_mu_);
    if (!bg_error_.ok()) return bg_error_;  // rejected: NOT visible
  }

  std::lock_guard<std::mutex> plock(pipeline_mu_);
  // Re-check under the pipeline lock: TEST_CrashClose resets wal_ (and
  // sets crashed_) while holding it.
  if (crashed_.load(std::memory_order_relaxed)) {
    return Status::IOError("database is closed");
  }
  if (options_.use_wal && wal_ == nullptr) return wal_error_;

  // Assign seqnos and build the one WAL append for the whole batch.
  const uint64_t first_seqno = next_seqno_;
  std::string buf;
  bool sync = false;
  for (Writer* w : batch) {
    w->seqno = next_seqno_++;
    sync = sync || w->sync;
    buf += EncodeWalRecord(
        w->tag == kTagValue ? kWalOpPutSeq : kWalOpDeleteSeq, w->seqno,
        w->key, w->value);
  }
  if (options_.use_wal) {
    Status s = wal_->Append(buf, batch.size(), sync);
    if (!s.ok()) {
      next_seqno_ = first_seqno;  // nothing consumed them: reuse
      return s;  // not applied: a rejected write stays invisible
    }
  }

  // Apply. The WAL already fixed the batch's order (seqnos); the
  // memtable inserts commute — each lands in its own key's position in
  // its own shard — so the followers apply their entries IN PARALLEL
  // while the leader applies its own. mem_ is stable here: it changes
  // only under pipeline_mu_ (held) plus view_mu_.
  MemPtr mem = mem_;
  Writer* const leader = batch.front();
  if (batch.size() > 1) {
    ApplyGroup group;
    group.mem = mem.get();
    group.pending.store(static_cast<uint32_t>(batch.size() - 1),
                        std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> ql(write_mu_);
      for (Writer* w : batch) {
        if (w != leader) w->apply = &group;
      }
    }
    write_cv_.notify_all();  // release the followers to their shards
    ApplyWriter(mem.get(), *leader);
    std::unique_lock<std::mutex> gl(group.mu);
    group.cv.wait(gl, [&] {
      return group.pending.load(std::memory_order_acquire) == 0;
    });
  } else {
    ApplyWriter(mem.get(), *leader);
  }
  // Publish: every apply of the batch happened before this store (the
  // followers' decrements synchronize with the leader's wait), so a
  // reader that acquires this seqno as its horizon can reach every entry
  // at or below it.
  last_seqno_.store(next_seqno_ - 1, std::memory_order_release);

  const bool mem_full =
      mem->bytes() >= static_cast<int64_t>(options_.memtable_bytes);
  const bool wal_full = options_.use_wal && wal_ != nullptr &&
                        wal_->file_bytes() >= options_.wal_segment_bytes;
  *need_maintenance = mem_full || wal_full;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Background maintenance
// ---------------------------------------------------------------------------

size_t Db::ImmCount() const {
  std::lock_guard<std::mutex> vl(view_mu_);
  return version_->imm.size();
}

Db::VersionPtr Db::CurrentVersion() const {
  std::lock_guard<std::mutex> vl(view_mu_);
  return version_;
}

std::vector<uint64_t> Db::LiveSnapshots() const {
  std::lock_guard<std::mutex> sl(snap_mu_);
  return std::vector<uint64_t>(live_snapshots_.begin(),
                               live_snapshots_.end());
}

std::shared_ptr<const Snapshot> Db::GetSnapshot() {
  const uint64_t seq = last_seqno_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> sl(snap_mu_);
    live_snapshots_.insert(seq);
  }
  return std::shared_ptr<const Snapshot>(
      new Snapshot(seq), [this](const Snapshot* s) {
        {
          std::lock_guard<std::mutex> sl(snap_mu_);
          auto it = live_snapshots_.find(s->sequence());
          if (it != live_snapshots_.end()) live_snapshots_.erase(it);
        }
        delete s;
      });
}

bool Db::WorkPending() const {
  {
    std::lock_guard<std::mutex> vl(view_mu_);
    if (!version_->imm.empty()) return true;
    if (mem_->bytes() >= static_cast<int64_t>(options_.memtable_bytes)) {
      return true;
    }
  }
  if (options_.use_wal && wal_ != nullptr &&
      wal_->file_bytes() >= options_.wal_segment_bytes) {
    return true;
  }
  VersionPtr v = CurrentVersion();
  if (static_cast<int>(v->levels[0].size()) >=
      options_.l0_compaction_trigger) {
    return true;
  }
  for (size_t level = 1; level + 1 < v->levels.size(); ++level) {
    if (LevelBytes(*v, level) > LevelLimitBytes(level)) return true;
  }
  if (options_.adaptive_redesign && AnyDriftFlagged(*v)) return true;
  return false;
}

void Db::MaybeScheduleMaintenance() {
  if (crashed_.load(std::memory_order_relaxed) ||
      closing_.load(std::memory_order_relaxed)) {
    return;
  }
  {
    // A failed background job must not retry in a loop; writes are
    // rejected until an explicit Flush()/CompactAll() clears the error.
    std::lock_guard<std::mutex> el(err_mu_);
    if (!bg_error_.ok()) return;
  }
  bool expected = false;
  if (!maint_scheduled_.compare_exchange_strong(expected, true)) return;
  if (!pool_->Submit([this] { BackgroundWork(); })) {
    maint_scheduled_.store(false);
  }
}

void Db::BackgroundWork() {
  std::lock_guard<std::mutex> mlock(maint_mu_);
  for (;;) {
    if (crashed_.load(std::memory_order_relaxed) ||
        closing_.load(std::memory_order_relaxed)) {
      break;
    }
    PrepareFlush(/*force=*/false);
    Status s = FlushImmLocked();
    if (s.ok()) s = MaybeCompactLocked();
    if (!s.ok()) {
      SetBackgroundError(s, /*clear_on_ok=*/false);
      break;
    }
    if (!WorkPending()) break;
  }
  maint_scheduled_.store(false);
  // Work can arrive between the WorkPending check and the flag clear;
  // re-check so it is not orphaned until the next write.
  if (WorkPending()) MaybeScheduleMaintenance();
}

void Db::WaitForBackground() {
  while (maint_scheduled_.load(std::memory_order_relaxed)) {
    pool_->Wait();
    std::this_thread::yield();
  }
  pool_->Wait();
}

bool Db::PrepareFlush(bool force) {
  std::lock_guard<std::mutex> plock(pipeline_mu_);
  MemPtr cur;
  {
    std::lock_guard<std::mutex> vl(view_mu_);
    cur = mem_;
  }
  if (cur->size() == 0) return false;
  if (!force) {
    bool trip =
        cur->bytes() >= static_cast<int64_t>(options_.memtable_bytes);
    if (!trip && options_.use_wal && wal_ != nullptr) {
      trip = wal_->file_bytes() >= options_.wal_segment_bytes;
    }
    if (!trip) return false;
  }
  // Rotate to a fresh WAL segment: the new memtable's writes start
  // there, so the old segments become deletable once the swapped-out
  // memtable reaches SSTs.
  if (options_.use_wal && wal_ != nullptr) {
    const uint64_t next = wal_number_ + 1;
    Status s = wal_->Open(WalSegmentPath(next));
    if (!s.ok()) {
      // The writer closed the old fd already; appends now fail. Surface
      // the environment failure instead of swapping anyway.
      SetBackgroundError(std::move(s), /*clear_on_ok=*/false);
      return false;
    }
    wal_number_ = next;
    ++stats_->wal_rotations;
  }
  auto fresh = std::make_shared<MemTableSet>(options_.memtable_shards);
  fresh->wal_segment = wal_number_;
  {
    std::lock_guard<std::mutex> vl(view_mu_);
    auto nv = std::make_shared<Version>(*version_);
    nv->imm.insert(nv->imm.begin(), cur);  // newest first
    version_ = std::move(nv);
    mem_ = std::move(fresh);
  }
  return true;
}

Status Db::FlushImmLocked() {
  std::vector<MemPtr> imm;
  {
    std::lock_guard<std::mutex> vl(view_mu_);
    imm = version_->imm;
  }
  if (imm.empty()) return Status::OK();

  // Merge every shard of every immutable memtable back into one sorted
  // (key asc, seqno desc) stream — no materialize-and-sort pass; the
  // iterators stream straight out of skiplist nodes `imm` keeps alive.
  MemTableMergeSource source;
  for (const MemPtr& m : imm) {
    for (size_t i = 0; i < m->shard_count(); ++i) {
      source.Add(&m->shard(i));
    }
  }
  source.Init();
  CollapseSource collapsed(source, LiveSnapshots(),
                           /*drop_tombstones=*/false);
  std::vector<FilePtr> files;
  Status s = WriteSstFiles(collapsed, /*target_level=*/0, ~size_t{0}, &files);
  if (!s.ok()) return s;

  ManifestEdit edit;
  for (const auto& f : files) edit.added.emplace_back(0, f);
  s = AppendManifestDelta(edit);
  if (!s.ok()) return s;

  // Install: the flushed memtables leave the version, their SSTs join
  // L0 (newer than everything already there).
  {
    std::lock_guard<std::mutex> vl(view_mu_);
    auto nv = std::make_shared<Version>(*version_);
    for (const MemPtr& m : imm) {
      nv->imm.erase(std::remove(nv->imm.begin(), nv->imm.end(), m),
                    nv->imm.end());
    }
    for (auto it = files.rbegin(); it != files.rend(); ++it) {
      nv->levels[0].insert(nv->levels[0].begin(), *it);
    }
    version_ = std::move(nv);
  }
  ++stats_->flushes;
  {
    std::lock_guard<std::mutex> sl(stall_mu_);
  }
  stall_cv_.notify_all();

  // Only now are the old WAL segments redundant: their records live in
  // fsync'd SSTs referenced by a durable manifest record.
  DeleteObsoleteWalSegments();
  return Status::OK();
}

void Db::DeleteObsoleteWalSegments() {
  if (!options_.use_wal) return;
  uint64_t floor;
  {
    std::lock_guard<std::mutex> vl(view_mu_);
    floor = mem_->wal_segment;
    for (const MemPtr& m : version_->imm) {
      floor = std::min(floor, m->wal_segment);
    }
  }
  DIR* d = ::opendir(options_.dir.c_str());
  if (d == nullptr) return;
  while (dirent* e = ::readdir(d)) {
    uint64_t number;
    if (!ParseWalName(e->d_name, &number)) continue;
    if (number < floor) {
      ::unlink((options_.dir + "/" + e->d_name).c_str());
    }
  }
  ::closedir(d);
}

void Db::SetBackgroundError(Status s, bool clear_on_ok) {
  const bool is_error = !s.ok();
  {
    std::lock_guard<std::mutex> el(err_mu_);
    if (s.ok()) {
      if (clear_on_ok) bg_error_ = Status::OK();
    } else {
      bg_error_ = std::move(s);
    }
  }
  if (is_error) {
    // Stalled writers must wake to observe the error.
    {
      std::lock_guard<std::mutex> sl(stall_mu_);
    }
    stall_cv_.notify_all();
  }
}

Status Db::Flush() {
  if (crashed_.load(std::memory_order_relaxed)) {
    return Status::IOError("database is closed");
  }
  PrepareFlush(/*force=*/true);
  std::lock_guard<std::mutex> mlock(maint_mu_);
  Status s = FlushImmLocked();
  if (s.ok()) s = MaybeCompactLocked();
  SetBackgroundError(s, /*clear_on_ok=*/true);
  return s;
}

Status Db::CompactAll() {
  if (crashed_.load(std::memory_order_relaxed)) {
    return Status::IOError("database is closed");
  }
  PrepareFlush(/*force=*/true);
  std::lock_guard<std::mutex> mlock(maint_mu_);
  Status s = FlushImmLocked();
  if (s.ok() && !CurrentVersion()->levels[0].empty()) s = CompactL0Locked();
  for (size_t level = 1; s.ok() && level + 1 < kMaxLevels; ++level) {
    while (s.ok() &&
           LevelBytes(*CurrentVersion(), level) > LevelLimitBytes(level)) {
      s = CompactLevelLocked(level);
    }
  }
  SetBackgroundError(s, /*clear_on_ok=*/true);
  return s;
}

// ---------------------------------------------------------------------------
// SST building (flush + compaction bodies; callers hold maint_mu_)
// ---------------------------------------------------------------------------

Status Db::FinishFile(SstWriter* writer, std::vector<std::string>* keys,
                      const std::string& path, int target_level,
                      FilePtr* out) {
  auto meta = std::make_shared<FileMeta>();
  meta->id = next_file_id_++;
  meta->path = path;
  meta->smallest = writer->smallest();
  meta->largest = writer->largest();
  meta->n_entries = writer->n_entries();
  meta->format_version = 4;
  meta->level = target_level;
  if (options_.filter_policy != nullptr) {
    FilterBuildContext ctx;
    ctx.level = target_level;
    ctx.bpk_override = MonkeyBpkForLevel(target_level, keys->size());
    // Capture the window state the design is about to consume — the
    // drift detector later compares the live window against it.
    const double design_signature = query_queue_.Signature();
    const uint64_t design_samples = query_queue_.sampled();
    Stopwatch timer;
    meta->filter =
        options_.filter_policy->Build(*keys, query_queue_.Snapshot(), ctx);
    stats_->filter_build_ns += timer.ElapsedNanos();
    if (meta->filter != nullptr) {
      meta->design_epoch = design_epoch_.load(std::memory_order_relaxed);
      meta->modeled_fpr = meta->filter->ModeledFpr().value_or(-1.0);
      meta->design_signature = design_signature;
      meta->design_samples = design_samples;
      stats_->filter_bits_built += meta->filter->SizeBits();
      stats_->keys_filtered += keys->size();
      // Persist the filter in the SST itself so reopening the database
      // deserializes it instead of rebuilding from keys.
      std::string blob;
      if (meta->filter->Serialize(&blob)) {
        writer->SetFilterBlock(std::move(blob), Filter::kVersion);
      }
    }
  }
  Status s = writer->Finish();
  if (!s.ok()) return s;
  meta->file_size = writer->file_size();
  meta->reader = std::make_unique<SstReader>();
  s = meta->reader->Open(path, meta->id, &cache_);
  if (!s.ok()) return s;
  meta->reader->ReleaseFilterBlock();  // meta->filter is the live copy
  if (meta->filter != nullptr) ChargeFilter(*meta);
  *out = std::move(meta);
  return Status::OK();
}

void Db::ChargeFilter(const FileMeta& meta) {
  cache_.AddPinnedBytes(meta.id, meta.filter->SizeBits() / 8);
}

Status Db::WriteSstFiles(EntrySource& entries, int target_level,
                         size_t max_data_bytes, std::vector<FilePtr>* out) {
  SstWriter::Options wopts;
  wopts.block_size = options_.block_size;
  wopts.compress = target_level >= options_.compress_min_level;
  while (entries.Valid()) {
    std::string path =
        options_.dir + "/" + std::to_string(next_file_id_) + ".sst";
    SstWriter writer(path, wopts);
    std::vector<std::string> keys;  // distinct user keys, for the filter
    size_t data_bytes = 0;
    std::string last_key;
    while (entries.Valid()) {
      // Cut files only at user-key boundaries: splitting a version run
      // would make two adjacent sorted-level files overlap at a point.
      if (data_bytes >= max_data_bytes && entries.key() != last_key) break;
      const std::string value =
          MakeSstValueV4(entries.tag(), entries.seqno(),
                         entries.user_value());
      writer.Add(entries.key(), value);
      if (keys.empty() || keys.back() != entries.key()) {
        keys.emplace_back(entries.key());
      }
      data_bytes += entries.key().size() + value.size();
      last_key.assign(entries.key());
      entries.Next();
    }
    // An input that stopped on a read error invalidates the merge: fail
    // before this (incomplete) file can be finished and committed.
    Status in = entries.status();
    if (!in.ok()) return in;
    if (writer.n_entries() == 0) continue;
    FilePtr meta;
    Status s = FinishFile(&writer, &keys, path, target_level, &meta);
    if (!s.ok()) return s;
    out->push_back(std::move(meta));
  }
  return entries.status();
}

uint64_t Db::LevelLimitBytes(size_t level) const {
  double limit = static_cast<double>(options_.l1_size_bytes);
  for (size_t i = 1; i < level; ++i) limit *= options_.level_size_multiplier;
  return static_cast<uint64_t>(limit);
}

uint64_t Db::LevelBytes(const Version& v, size_t level) {
  uint64_t total = 0;
  for (const auto& f : v.levels[level]) total += f->file_size;
  return total;
}

bool Db::LevelsBelowEmpty(const Version& v, size_t first_level) {
  for (size_t level = first_level; level < v.levels.size(); ++level) {
    if (!v.levels[level].empty()) return false;
  }
  return true;
}

void Db::RetireFile(const FilePtr& f) {
  // The file object may outlive this call (in-flight ReadViews hold the
  // Version that references it); the unlink happens in ~FileMeta once
  // the last reference drops.
  f->obsolete.store(true, std::memory_order_relaxed);
  cache_.EraseFile(f->id);
}

Status Db::CompactL0Locked() {
  VersionPtr base = CurrentVersion();
  const auto& l0 = base->levels[0];
  if (l0.empty()) return Status::OK();
  ++stats_->compactions;
  std::string smallest = l0[0]->smallest;
  std::string largest = l0[0]->largest;
  for (const auto& f : l0) {
    smallest = std::min(smallest, f->smallest);
    largest = std::max(largest, f->largest);
  }
  MergeSource merge;
  int age = 0;
  for (const auto& f : l0) merge.Add(f->reader.get(), age++);
  std::vector<FilePtr> l1_keep;
  std::vector<FilePtr> removed;
  for (const auto& f : base->levels[1]) {
    if (f->largest < smallest || f->smallest > largest) {
      l1_keep.push_back(f);
    } else {
      merge.Add(f->reader.get(), age++);
    }
  }
  merge.Init();
  CollapseSource entries(merge, LiveSnapshots(),
                         /*drop_tombstones=*/LevelsBelowEmpty(*base, 2));
  std::vector<FilePtr> outputs;
  Status s = WriteSstFiles(entries, /*target_level=*/1,
                           options_.sst_target_bytes, &outputs);
  if (!s.ok()) return s;

  ManifestEdit edit;
  for (const auto& f : l0) {
    edit.deleted.push_back(f->id);
    removed.push_back(f);
  }
  for (const auto& f : base->levels[1]) {
    bool kept = false;
    for (const auto& k : l1_keep) {
      if (k->id == f->id) {
        kept = true;
        break;
      }
    }
    if (!kept) {
      edit.deleted.push_back(f->id);
      removed.push_back(f);
    }
  }
  for (auto& f : outputs) {
    edit.added.emplace_back(1, f);
    l1_keep.push_back(std::move(f));
  }
  std::sort(l1_keep.begin(), l1_keep.end(),
            [](const FilePtr& a, const FilePtr& b) {
              return a->smallest < b->smallest;
            });

  s = AppendManifestDelta(edit);
  if (!s.ok()) return s;
  {
    std::lock_guard<std::mutex> vl(view_mu_);
    auto nv = std::make_shared<Version>(*version_);
    nv->levels[0].clear();
    nv->levels[1] = std::move(l1_keep);
    version_ = std::move(nv);
  }
  // Obsolete files go away only after the delta retiring them is
  // durable — a crash in between must find a consistent (older) tree.
  for (const auto& f : removed) RetireFile(f);
  return Status::OK();
}

Status Db::CompactLevelLocked(size_t level) {
  VersionPtr base = CurrentVersion();
  if (base->levels[level].empty() || level + 1 >= kMaxLevels) {
    return Status::OK();
  }
  ++stats_->compactions;
  const size_t pick = compact_cursor_[level] % base->levels[level].size();
  compact_cursor_[level] = pick + 1;
  FilePtr input = base->levels[level][pick];

  MergeSource merge;
  merge.Add(input->reader.get(), 0);
  std::vector<FilePtr> next_keep;
  std::vector<FilePtr> removed;
  for (const auto& f : base->levels[level + 1]) {
    if (f->largest < input->smallest || f->smallest > input->largest) {
      next_keep.push_back(f);
    } else {
      merge.Add(f->reader.get(), 1);
    }
  }
  merge.Init();
  CollapseSource entries(
      merge, LiveSnapshots(),
      /*drop_tombstones=*/LevelsBelowEmpty(*base, level + 2));
  std::vector<FilePtr> outputs;
  Status s = WriteSstFiles(entries, static_cast<int>(level + 1),
                           options_.sst_target_bytes, &outputs);
  if (!s.ok()) return s;

  ManifestEdit edit;
  for (const auto& f : base->levels[level + 1]) {
    bool kept = false;
    for (const auto& k : next_keep) {
      if (k->id == f->id) {
        kept = true;
        break;
      }
    }
    if (!kept) {
      edit.deleted.push_back(f->id);
      removed.push_back(f);
    }
  }
  edit.deleted.push_back(input->id);
  removed.push_back(input);
  for (auto& f : outputs) {
    edit.added.emplace_back(level + 1, f);
    next_keep.push_back(std::move(f));
  }
  std::sort(next_keep.begin(), next_keep.end(),
            [](const FilePtr& a, const FilePtr& b) {
              return a->smallest < b->smallest;
            });

  s = AppendManifestDelta(edit);
  if (!s.ok()) return s;
  {
    std::lock_guard<std::mutex> vl(view_mu_);
    auto nv = std::make_shared<Version>(*version_);
    auto& src = nv->levels[level];
    src.erase(std::remove_if(src.begin(), src.end(),
                             [&](const FilePtr& f) { return f == input; }),
              src.end());
    nv->levels[level + 1] = std::move(next_keep);
    version_ = std::move(nv);
  }
  for (const auto& f : removed) RetireFile(f);
  return Status::OK();
}

Status Db::MaybeCompactLocked() {
  if (static_cast<int>(CurrentVersion()->levels[0].size()) >=
      options_.l0_compaction_trigger) {
    Status s = CompactL0Locked();
    if (!s.ok()) return s;
  }
  for (size_t level = 1; level + 1 < kMaxLevels; ++level) {
    while (LevelBytes(*CurrentVersion(), level) > LevelLimitBytes(level)) {
      Status s = CompactLevelLocked(level);
      if (!s.ok()) return s;
    }
  }
  if (options_.adaptive_redesign) return MaybeRedesignLocked();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Adaptive redesign (drift-triggered single-file rewrites)
// ---------------------------------------------------------------------------

bool Db::AnyDriftFlagged(const Version& v) {
  for (const auto& level : v.levels) {
    for (const auto& f : level) {
      if (f->drift_flagged.load(std::memory_order_relaxed) &&
          !f->obsolete.load(std::memory_order_relaxed)) {
        return true;
      }
    }
  }
  return false;
}

Status Db::MaybeRedesignLocked() {
  // Each pass retires exactly one flagged file and installs replacements
  // with fresh (unflagged) designs, so the loop terminates.
  for (;;) {
    VersionPtr base = CurrentVersion();
    size_t level = 0;
    FilePtr victim;
    for (size_t l = 0; l < base->levels.size() && victim == nullptr; ++l) {
      for (const auto& f : base->levels[l]) {
        if (f->drift_flagged.load(std::memory_order_relaxed) &&
            !f->obsolete.load(std::memory_order_relaxed)) {
          level = l;
          victim = f;
          break;
        }
      }
    }
    if (victim == nullptr) return Status::OK();
    Status s = RedesignFileLocked(level, victim);
    if (!s.ok()) return s;
  }
}

Status Db::RedesignFileLocked(size_t level, const FilePtr& input) {
  // A redesign is a same-level, same-data rewrite: the point is the new
  // filter, built by re-running Sample() -> Design() -> Build() against
  // the live query window (and the current per-level budget). Bump the
  // epoch first so the replacement's provenance outranks the original.
  design_epoch_.fetch_add(1, std::memory_order_relaxed);

  MergeSource merge;
  merge.Add(input->reader.get(), 0);
  merge.Init();
  // Never drop tombstones here: unlike a real compaction this rewrite
  // sees only one file, and other L0 files or deeper levels may still
  // hold the older versions a tombstone shadows.
  CollapseSource entries(merge, LiveSnapshots(), /*drop_tombstones=*/false);
  std::vector<FilePtr> outputs;
  Status s = WriteSstFiles(entries, static_cast<int>(level),
                           /*max_data_bytes=*/~size_t{0}, &outputs);
  if (!s.ok()) return s;

  ManifestEdit edit;
  edit.deleted.push_back(input->id);
  for (const auto& f : outputs) edit.added.emplace_back(level, f);
  s = AppendManifestDelta(edit);
  if (!s.ok()) return s;

  {
    std::lock_guard<std::mutex> vl(view_mu_);
    auto nv = std::make_shared<Version>(*version_);
    auto& files = nv->levels[level];
    for (size_t i = 0; i < files.size(); ++i) {
      if (files[i] == input) {
        // Positional splice keeps L0's newest-first recency order; a
        // sorted level is re-sorted below anyway.
        files.erase(files.begin() + i);
        files.insert(files.begin() + i, outputs.begin(), outputs.end());
        break;
      }
    }
    if (level >= 1) {
      std::sort(files.begin(), files.end(),
                [](const FilePtr& a, const FilePtr& b) {
                  return a->smallest < b->smallest;
                });
    }
    version_ = std::move(nv);
  }
  RetireFile(input);
  ++stats_->redesigns;
  return Status::OK();
}

double Db::MonkeyBpkForLevel(int target_level, uint64_t incoming_keys) const {
  if (options_.bpk_policy != BpkPolicy::kMonkey ||
      options_.filter_policy == nullptr) {
    return 0.0;
  }
  const double global_bpk = options_.filter_policy->SpecBpk();
  if (global_bpk <= 0.0) return 0.0;  // no tunable budget to split

  VersionPtr v = CurrentVersion();
  std::vector<LevelLoad> loads(v->levels.size());
  for (size_t level = 0; level < v->levels.size(); ++level) {
    uint64_t level_keys = 0;
    for (const auto& f : v->levels[level]) level_keys += f->n_entries;
    loads[level].keys = level_keys;
    // Every L0 file is probed by every query that reaches L0; a sorted
    // level is probed at most once. Weight L0's false positives by its
    // file count so the allocator prices the fan-out.
    loads[level].probe_weight =
        level == 0 ? static_cast<double>(
                         std::max<size_t>(v->levels[0].size(), 1))
                   : 1.0;
  }
  auto& target = loads[static_cast<size_t>(target_level)];
  target.keys += incoming_keys;  // the file being built counts too
  if (target_level == 0) target.probe_weight += 1.0;

  std::vector<double> split = MonkeyBpkSplit(global_bpk, loads);
  return split[static_cast<size_t>(target_level)];
}

void Db::NoteFilterChecks(const FileMeta& f, uint64_t n) {
  f.checks.fetch_add(n, std::memory_order_relaxed);
  const auto level = static_cast<size_t>(f.level);
  if (level < kMaxLevels) stats_->level_filter_checks[level] += n;
}

void Db::NoteSstProbe(const FileMeta& f) {
  f.probes.fetch_add(1, std::memory_order_relaxed);
  const auto level = static_cast<size_t>(f.level);
  if (level < kMaxLevels) ++stats_->level_sst_seeks[level];
}

void Db::NoteFalsePositive(const FileMeta& f) {
  f.false_positives.fetch_add(1, std::memory_order_relaxed);
  const auto level = static_cast<size_t>(f.level);
  if (level < kMaxLevels) ++stats_->level_fp_files[level];

  if (!options_.adaptive_redesign || f.filter == nullptr) return;
  if (f.drift_flagged.load(std::memory_order_relaxed)) return;

  DriftSignal sig;
  sig.checks = f.checks.load(std::memory_order_relaxed);
  sig.probes = f.probes.load(std::memory_order_relaxed);
  sig.false_positives = f.false_positives.load(std::memory_order_relaxed);
  // Cheap pre-gate before touching the queue's mutex.
  if (sig.probes < options_.drift.min_probes) return;
  sig.modeled_fpr = f.modeled_fpr;
  sig.design_signature = f.design_signature;
  sig.live_signature = query_queue_.Signature();
  const uint64_t sampled = query_queue_.sampled();
  sig.window_samples =
      sampled > f.design_samples ? sampled - f.design_samples : 0;
  if (DetectDrift(sig, options_.drift) == DriftReason::kNone) return;

  bool expected = false;
  if (f.drift_flagged.compare_exchange_strong(expected, true,
                                              std::memory_order_relaxed)) {
    ++stats_->drift_detected;
    MaybeScheduleMaintenance();
  }
}

std::vector<Db::SstDesignInfo> Db::DesignInfo() const {
  VersionPtr v = CurrentVersion();
  std::vector<SstDesignInfo> out;
  for (const auto& level : v->levels) {
    for (const auto& f : level) {
      SstDesignInfo info;
      info.file_id = f->id;
      info.level = f->level;
      info.design_epoch = f->design_epoch;
      info.modeled_fpr = f->modeled_fpr;
      info.design_signature = f->design_signature;
      info.design_samples = f->design_samples;
      info.checks = f->checks.load(std::memory_order_relaxed);
      info.probes = f->probes.load(std::memory_order_relaxed);
      info.false_positives =
          f->false_positives.load(std::memory_order_relaxed);
      info.filter_bits = f->filter != nullptr ? f->filter->SizeBits() : 0;
      info.drift_flagged = f->drift_flagged.load(std::memory_order_relaxed);
      out.push_back(std::move(info));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// MANIFEST delta log
// ---------------------------------------------------------------------------

void Db::EncodeFileMeta(std::string* out, const FileMeta& f) {
  PutFixed64(out, f.id);
  PutLengthPrefixed(out, f.smallest);
  PutLengthPrefixed(out, f.largest);
  PutFixed64(out, f.n_entries);
  PutFixed64(out, f.file_size);
  // v4 design provenance + observed-FPR counters. Persisting the probe
  // counters keeps drift evidence accumulating across clean reopens.
  PutFixed64(out, f.design_epoch);
  PutFixed64(out, DoubleBits(f.modeled_fpr));
  PutFixed64(out, DoubleBits(f.design_signature));
  PutFixed64(out, f.design_samples);
  PutFixed64(out, f.checks.load(std::memory_order_relaxed));
  PutFixed64(out, f.probes.load(std::memory_order_relaxed));
  PutFixed64(out, f.false_positives.load(std::memory_order_relaxed));
}

bool Db::DecodeFileMeta(std::string_view* cursor, uint64_t version,
                        FileMeta* f) {
  if (!GetFixed64(cursor, &f->id) ||
      !GetLengthPrefixed(cursor, &f->smallest) ||
      !GetLengthPrefixed(cursor, &f->largest) ||
      !GetFixed64(cursor, &f->n_entries) ||
      !GetFixed64(cursor, &f->file_size)) {
    return false;
  }
  if (version < 4) {
    // Legacy entry: no provenance. design_epoch 0 marks the design as
    // predating the provenance format; modeled_fpr/design_signature
    // keep their "not available" defaults.
    return true;
  }
  uint64_t modeled_bits, signature_bits, checks, probes, fps;
  if (!GetFixed64(cursor, &f->design_epoch) ||
      !GetFixed64(cursor, &modeled_bits) ||
      !GetFixed64(cursor, &signature_bits) ||
      !GetFixed64(cursor, &f->design_samples) ||
      !GetFixed64(cursor, &checks) || !GetFixed64(cursor, &probes) ||
      !GetFixed64(cursor, &fps)) {
    return false;
  }
  f->modeled_fpr = BitsToDouble(modeled_bits);
  f->design_signature = BitsToDouble(signature_bits);
  f->checks.store(checks, std::memory_order_relaxed);
  f->probes.store(probes, std::memory_order_relaxed);
  f->false_positives.store(fps, std::memory_order_relaxed);
  return true;
}

Status Db::WriteManifestSnapshot(const ManifestEdit* pending) {
  VersionPtr v = CurrentVersion();
  // Fold in a not-yet-installed edit: manifest writes precede the
  // in-memory install, so the current version lags by one edit here.
  std::vector<std::vector<FilePtr>> levels = v->levels;
  if (pending != nullptr) {
    for (auto& level : levels) {
      level.erase(std::remove_if(level.begin(), level.end(),
                                 [&](const FilePtr& f) {
                                   return std::find(pending->deleted.begin(),
                                                    pending->deleted.end(),
                                                    f->id) !=
                                          pending->deleted.end();
                                 }),
                  level.end());
    }
    for (const auto& [lvl, f] : pending->added) {
      // L0 is newest-first; a flushed file is newer than everything
      // already there. L1+ get re-sorted by key at recovery.
      if (lvl == 0) {
        levels[lvl].insert(levels[lvl].begin(), f);
      } else {
        levels[lvl].push_back(f);
      }
    }
  }
  std::string payload;
  payload.push_back(static_cast<char>(kManifestRecordSnapshot));
  PutFixed64(&payload, kManifestMagic);
  PutFixed64(&payload, kManifestVersion);
  PutFixed64(&payload, next_file_id_);
  PutFixed64(&payload, last_seqno_.load(std::memory_order_acquire));
  PutFixed64(&payload, levels.size());
  for (const auto& level : levels) {
    PutFixed64(&payload, level.size());
    for (const auto& f : level) EncodeFileMeta(&payload, *f);
  }
  const std::string framed = FrameRecord(payload);

  const std::string tmp = ManifestPath() + ".tmp";
  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return Status::IOError(Errno("cannot create " + tmp));
  Status s = WriteAllFd(fd, framed, "manifest write");
  if (s.ok() && ::fsync(fd) != 0) {
    s = Status::IOError(Errno("manifest fsync failed"));
  }
  ::close(fd);
  if (!s.ok()) {
    ::unlink(tmp.c_str());
    return s;
  }
  if (::rename(tmp.c_str(), ManifestPath().c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError(Errno("cannot rename manifest into place"));
  }
  SyncDir(options_.dir);
  if (manifest_fd_ >= 0) ::close(manifest_fd_);
  manifest_fd_ = ::open(ManifestPath().c_str(), O_WRONLY | O_APPEND);
  if (manifest_fd_ < 0) {
    return Status::IOError(Errno("cannot reopen manifest for append"));
  }
  manifest_deltas_since_snapshot_ = 0;
  ++stats_->manifest_snapshots;
  return Status::OK();
}

Status Db::AppendManifestDelta(const ManifestEdit& edit) {
  // New SSTs named by this edit are fsync'd; make their directory
  // entries durable before the manifest starts referring to them.
  if (!edit.added.empty()) SyncDir(options_.dir);
  if (manifest_fd_ < 0 ||
      manifest_deltas_since_snapshot_ + 1 >
          options_.manifest_compact_threshold) {
    // First write, or time to fold the delta history into one record.
    // The snapshot must carry this edit too — it is not yet installed.
    return WriteManifestSnapshot(&edit);
  }
  std::string payload;
  payload.push_back(static_cast<char>(kManifestRecordDelta));
  PutFixed64(&payload, next_file_id_);
  PutFixed64(&payload, last_seqno_.load(std::memory_order_acquire));
  PutFixed64(&payload, edit.added.size());
  for (const auto& [level, f] : edit.added) {
    PutFixed64(&payload, level);
    EncodeFileMeta(&payload, *f);
  }
  PutFixed64(&payload, edit.deleted.size());
  for (uint64_t id : edit.deleted) PutFixed64(&payload, id);

  Status s = WriteAllFd(manifest_fd_, FrameRecord(payload), "manifest write");
  if (s.ok() && ::fdatasync(manifest_fd_) != 0) {
    s = Status::IOError(Errno("manifest fdatasync failed"));
  }
  if (!s.ok()) {
    // The append may have left a torn frame at the tail. Appending more
    // deltas after it would put good records beyond the point where
    // recovery stops reading — so drop the append fd: the NEXT manifest
    // write takes the manifest_fd_ < 0 branch above and rewrites a full
    // snapshot (atomic rename), which both discards the debris and
    // re-records every file this failed edit added.
    ::close(manifest_fd_);
    manifest_fd_ = -1;
    return s;
  }
  ++manifest_deltas_since_snapshot_;
  ++stats_->manifest_deltas;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Recovery (single-threaded: runs before the Db is shared)
// ---------------------------------------------------------------------------

Status Db::RecoverManifest(bool* needs_rewrite) {
  *needs_rewrite = false;
  std::string content;
  bool found = false;
  Status read = ReadFileToString(ManifestPath(), &content, &found);
  if (!read.ok()) return read;
  if (!found || content.empty()) return Status::OK();  // empty db

  std::vector<std::vector<FilePtr>> levels(kMaxLevels);
  uint64_t recovered_next_id = 1;
  uint64_t recovered_last_seqno = 0;
  uint64_t current_version = 0;  // format of the records being read
  bool torn_tail = false;
  size_t records = 0;
  size_t deltas_since_snapshot = 0;
  size_t offset = 0;
  while (offset < content.size()) {
    if (offset + 8 > content.size()) {
      torn_tail = true;  // header cut short: crash mid-append
      break;
    }
    const uint32_t length = LoadFixed32(content.data() + offset);
    const uint32_t crc = LoadFixed32(content.data() + offset + 4);
    if (offset + 8 + length > content.size()) {
      torn_tail = true;  // payload cut short: crash mid-append
      break;
    }
    std::string_view payload(content.data() + offset + 8, length);
    if (Crc32c(payload) != crc) {
      // A complete frame whose bytes changed is damage, not a torn
      // write — torn appends truncate, they do not rewrite history.
      return Status::Corruption("manifest record CRC mismatch at offset " +
                                std::to_string(offset));
    }
    std::string_view cursor = payload;
    if (cursor.empty()) {
      return Status::Corruption("empty manifest record");
    }
    const uint8_t kind = static_cast<uint8_t>(cursor.front());
    cursor.remove_prefix(1);

    if (kind == kManifestRecordSnapshot) {
      uint64_t magic, version, n_levels;
      if (!GetFixed64(&cursor, &magic) || magic != kManifestMagic) {
        return Status::Corruption("bad manifest magic");
      }
      if (!GetFixed64(&cursor, &version) || version < 2 ||
          version > kManifestVersion) {
        return Status::NotSupported("unsupported manifest version");
      }
      current_version = version;
      if (!GetFixed64(&cursor, &recovered_next_id)) {
        return Status::Corruption("corrupt manifest snapshot header");
      }
      if (version >= 3 && !GetFixed64(&cursor, &recovered_last_seqno)) {
        return Status::Corruption("corrupt manifest snapshot header");
      }
      if (!GetFixed64(&cursor, &n_levels) || n_levels > kMaxLevels) {
        return Status::Corruption("corrupt manifest snapshot header");
      }
      for (auto& level : levels) level.clear();  // snapshot replaces state
      for (uint64_t level = 0; level < n_levels; ++level) {
        uint64_t n_files;
        if (!GetFixed64(&cursor, &n_files)) {
          return Status::Corruption("corrupt manifest level header");
        }
        for (uint64_t i = 0; i < n_files; ++i) {
          auto meta = std::make_shared<FileMeta>();
          if (!DecodeFileMeta(&cursor, version, meta.get())) {
            return Status::Corruption("corrupt manifest file entry");
          }
          meta->path =
              options_.dir + "/" + std::to_string(meta->id) + ".sst";
          meta->level = static_cast<int>(level);
          levels[level].push_back(std::move(meta));
        }
      }
      deltas_since_snapshot = 0;
    } else if (kind == kManifestRecordDelta) {
      if (records == 0) {
        return Status::Corruption("manifest does not start with a snapshot");
      }
      uint64_t n_added, n_deleted;
      if (!GetFixed64(&cursor, &recovered_next_id)) {
        return Status::Corruption("corrupt manifest delta header");
      }
      if (current_version >= 3 &&
          !GetFixed64(&cursor, &recovered_last_seqno)) {
        return Status::Corruption("corrupt manifest delta header");
      }
      if (!GetFixed64(&cursor, &n_added)) {
        return Status::Corruption("corrupt manifest delta header");
      }
      for (uint64_t i = 0; i < n_added; ++i) {
        uint64_t level;
        auto meta = std::make_shared<FileMeta>();
        if (!GetFixed64(&cursor, &level) || level >= kMaxLevels ||
            !DecodeFileMeta(&cursor, current_version, meta.get())) {
          return Status::Corruption("corrupt manifest delta add");
        }
        meta->path = options_.dir + "/" + std::to_string(meta->id) + ".sst";
        meta->level = static_cast<int>(level);
        if (level == 0) {
          // L0 deltas list newest first, matching the in-memory order.
          levels[0].insert(levels[0].begin(), std::move(meta));
        } else {
          levels[level].push_back(std::move(meta));
        }
      }
      if (!GetFixed64(&cursor, &n_deleted)) {
        return Status::Corruption("corrupt manifest delta header");
      }
      for (uint64_t i = 0; i < n_deleted; ++i) {
        uint64_t id;
        if (!GetFixed64(&cursor, &id)) {
          return Status::Corruption("corrupt manifest delta delete");
        }
        bool erased = false;
        for (auto& level : levels) {
          for (size_t j = 0; j < level.size(); ++j) {
            if (level[j]->id == id) {
              level.erase(level.begin() + j);
              erased = true;
              break;
            }
          }
          if (erased) break;
        }
        if (!erased) {
          return Status::Corruption("manifest delta retires unknown file " +
                                    std::to_string(id));
        }
      }
      ++deltas_since_snapshot;
    } else {
      return Status::Corruption("unknown manifest record kind");
    }
    if (!cursor.empty()) {
      return Status::Corruption("trailing bytes in manifest record");
    }
    ++records;
    offset += 8 + length;
  }

  if (records == 0) {
    // Non-empty file with no intact record: this is not crash debris
    // (appends preserve the snapshot prefix), it is damage.
    return Status::Corruption("manifest has no intact snapshot record");
  }

  // Levels >= 1 must be sorted by smallest key (deltas append).
  for (size_t level = 1; level < kMaxLevels; ++level) {
    std::sort(levels[level].begin(), levels[level].end(),
              [](const FilePtr& a, const FilePtr& b) {
                return a->smallest < b->smallest;
              });
  }

  uint64_t max_id = 0;
  uint64_t max_epoch = 0;
  for (const auto& level : levels) {
    for (const auto& f : level) {
      Status s = LoadFile(f);
      if (!s.ok()) return s;
      max_id = std::max(max_id, f->id);
      max_epoch = std::max(max_epoch, f->design_epoch);
    }
  }
  next_file_id_ = std::max(recovered_next_id, max_id + 1);
  // New designs must outrank every recovered one (legacy files are 0).
  design_epoch_.store(max_epoch + 1, std::memory_order_relaxed);
  manifest_deltas_since_snapshot_ = deltas_since_snapshot;
  last_seqno_.store(recovered_last_seqno, std::memory_order_relaxed);
  next_seqno_ = recovered_last_seqno + 1;

  {
    std::lock_guard<std::mutex> vl(view_mu_);
    auto nv = std::make_shared<Version>(*version_);
    nv->levels = std::move(levels);
    version_ = std::move(nv);
  }

  // A torn tail or an older-format file must be rewritten as one clean
  // current-version snapshot before any delta is appended; leaving the
  // append fd
  // closed routes the next manifest write through WriteManifestSnapshot.
  *needs_rewrite = torn_tail || current_version < kManifestVersion;
  if (!*needs_rewrite) {
    manifest_fd_ = ::open(ManifestPath().c_str(), O_WRONLY | O_APPEND);
    if (manifest_fd_ < 0) {
      return Status::IOError(Errno("cannot reopen manifest for append"));
    }
  }
  return Status::OK();
}

Status Db::LoadFile(const FilePtr& meta) {
  meta->reader = std::make_unique<SstReader>();
  Status s = meta->reader->Open(meta->path, meta->id, &cache_);
  if (!s.ok()) return s;
  meta->format_version = meta->reader->footer_version();
  const bool wants_filters = options_.filter_policy != nullptr &&
                             options_.filter_policy->Name() != "none";
  if (wants_filters) {
    meta->filter = meta->reader->LoadFilter();
    if (meta->filter != nullptr) {
      ++stats_->filter_loads;
    } else {
      // Missing, truncated, bit-flipped, or format-incompatible filter
      // block: rebuild from the file's keys instead of failing the open.
      // If a data block is unreadable the key list is incomplete and a
      // filter built on it would return false negatives — leave the
      // file unfiltered instead (seeks probe it directly and surface
      // the block damage as read errors).
      std::vector<std::string> keys;
      keys.reserve(meta->n_entries);
      const bool all_keys = meta->reader->ForEach(
          [&keys](std::string_view k, std::string_view) {
            if (keys.empty() || keys.back() != k) keys.emplace_back(k);
          });
      if (all_keys) {
        // The recovery-time tree is still being assembled, so no
        // per-level budget override here — the spec's own bpk applies.
        FilterBuildContext ctx;
        ctx.level = meta->level;
        Stopwatch timer;
        meta->filter =
            options_.filter_policy->Build(keys, query_queue_.Snapshot(), ctx);
        stats_->filter_build_ns += timer.ElapsedNanos();
        if (meta->filter != nullptr) {
          ++stats_->filter_rebuilds;
          stats_->filter_bits_built += meta->filter->SizeBits();
          stats_->keys_filtered += keys.size();
          // The rebuilt filter replaces the persisted design; its manifest
          // provenance (modeled FPR in particular) no longer applies.
          meta->modeled_fpr = meta->filter->ModeledFpr().value_or(-1.0);
        }
      }
    }
  }
  meta->reader->ReleaseFilterBlock();  // live filter holds the memory now
  if (meta->filter != nullptr) ChargeFilter(*meta);
  return Status::OK();
}

Status Db::ReplayWalSegments() {
  // Enumerate segments: the legacy un-numbered "WAL" replays first.
  std::vector<std::pair<uint64_t, std::string>> segments;
  DIR* d = ::opendir(options_.dir.c_str());
  if (d != nullptr) {
    while (dirent* e = ::readdir(d)) {
      uint64_t number;
      if (ParseWalName(e->d_name, &number)) {
        segments.emplace_back(number, options_.dir + "/" + e->d_name);
      }
    }
    ::closedir(d);
  }
  std::sort(segments.begin(), segments.end());

  uint64_t max_seq = last_seqno_.load(std::memory_order_relaxed);
  uint64_t replayed = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    uint64_t valid_bytes = 0;
    bool torn = false;
    Status s = WalReplay(
        segments[i].second,
        [&](uint8_t op, uint64_t seqno, std::string_view key,
            std::string_view value) {
          const uint8_t tag = (op == kWalOpPut || op == kWalOpPutSeq)
                                  ? kTagValue
                                  : kTagTombstone;
          if (op == kWalOpPut || op == kWalOpDelete) {
            seqno = ++max_seq;  // legacy records: file order is seqno order
          } else {
            max_seq = std::max(max_seq, seqno);
          }
          // Replay routes through the same key hash as the live write
          // path: shard placement need not survive a restart, only the
          // (key, seqno) versions themselves.
          const size_t shard = mem_->Add(key, seqno, tag, value);
          shard_applies_[shard].fetch_add(1, std::memory_order_relaxed);
          ++stats_->wal_replayed;
          ++replayed;
        },
        &valid_bytes, &torn);
    if (!s.ok()) return s;
    if (torn) {
      if (i + 1 < segments.size()) {
        // Rotation only ever follows clean appends, so a torn frame in
        // the middle of the log is damage, not crash debris.
        return Status::Corruption("torn record in non-final WAL segment " +
                                  segments[i].second);
      }
      // The torn record was never acknowledged; cut it so the log ends
      // at a record boundary before we append to it again.
      if (::truncate(segments[i].second.c_str(),
                     static_cast<off_t>(valid_bytes)) != 0) {
        return Status::IOError(Errno("cannot truncate torn WAL tail"));
      }
    }
  }

  last_seqno_.store(max_seq, std::memory_order_relaxed);
  next_seqno_ = max_seq + 1;

  if (!options_.use_wal) {
    // A log left by a previous use_wal run was just replayed into the
    // memtable (honoring its acknowledged writes); this session keeps
    // no log, so the files must go — otherwise a later use_wal=true
    // open would replay the stale history on top of newer state. Flush
    // the replayed records FIRST: they were durably acknowledged, and
    // unlinking their only copy before SSTs hold them would let a
    // crash during this session revoke that acknowledgement.
    if (replayed > 0) {
      PrepareFlush(/*force=*/true);
      std::lock_guard<std::mutex> mlock(maint_mu_);
      Status fs = FlushImmLocked();
      if (!fs.ok()) return fs;
    }
    for (const auto& [number, path] : segments) ::unlink(path.c_str());
    return Status::OK();
  }

  // Reuse the highest existing segment for appends (a crash loop must
  // not mint a new file per reopen); the replayed records keep every
  // existing segment pinned until the memtable flushes. A lone legacy
  // "WAL" file keeps its name (segment 0) until the next rotation.
  uint64_t active = 1;
  std::string active_path = WalSegmentPath(1);
  if (!segments.empty()) {
    active = segments.back().first;
    active_path = segments.back().second;
  }
  wal_ = std::make_unique<WalWriter>();
  Status s = wal_->Open(active_path);
  if (!s.ok()) return s;
  wal_number_ = active;
  mem_->wal_segment = segments.empty() ? active : segments.front().first;
  return Status::OK();
}

Status Db::RecoverAll() {
  bool needs_rewrite = false;
  Status s = RecoverManifest(&needs_rewrite);
  if (!s.ok()) return s;
  s = ReplayWalSegments();
  if (!s.ok()) return s;
  if (needs_rewrite && manifest_fd_ < 0) {
    // Replace snapshot+deltas+debris (or a v2-format file) with one
    // clean v3 snapshot record.
    s = WriteManifestSnapshot();
    if (!s.ok()) return s;
  }
  RemoveOrphanSsts();
  return Status::OK();
}

void Db::RemoveOrphanSsts() {
  VersionPtr v = CurrentVersion();
  DIR* d = ::opendir(options_.dir.c_str());
  if (d == nullptr) return;
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.size() <= 4 || name.substr(name.size() - 4) != ".sst") continue;
    const std::string stem = name.substr(0, name.size() - 4);
    char* end = nullptr;
    const uint64_t id = std::strtoull(stem.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') continue;  // not one of ours
    bool referenced = false;
    for (const auto& level : v->levels) {
      for (const auto& f : level) {
        if (f->id == id) {
          referenced = true;
          break;
        }
      }
      if (referenced) break;
    }
    if (!referenced) ::unlink((options_.dir + "/" + name).c_str());
  }
  ::closedir(d);
  ::unlink((options_.dir + "/MANIFEST.tmp").c_str());  // staging debris
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

Db::ReadView Db::AcquireReadView(const ReadOptions& ro) const {
  ReadView view;
  {
    std::lock_guard<std::mutex> vl(view_mu_);
    view.mem = mem_;
    view.version = version_;
  }
  // Pin the structures BEFORE reading the horizon: the leader publishes
  // last_seqno_ with release after the memtable apply, so every seqno at
  // or below the acquired horizon is reachable through this view.
  view.snapshot = ro.snapshot != nullptr
                      ? ro.snapshot->sequence()
                      : last_seqno_.load(std::memory_order_acquire);
  return view;
}

SeekResult Db::Seek(std::string_view lo, std::string_view hi,
                    const ReadOptions& options) {
  ++stats_->seeks;
  const ReadView view = AcquireReadView(options);
  SeekResult r;
  r.found =
      SeekLoop(view, options, std::string(lo), hi, &r.key, &r.value,
               &r.status);
  if (!r.found) RecordEmptySeek(lo, hi);
  return r;
}

void Db::RecordEmptySeek(std::string_view lo, std::string_view hi) {
  ++stats_->empty_seeks;
  if (query_queue_.OnEmptyQuery(lo, hi)) ++stats_->queue_sampled;
}

bool Db::SeekLoop(const ReadView& view, const ReadOptions& ro,
                  std::string cursor, std::string_view hi, std::string* key,
                  std::string* value, Status* first_error) {
  const BlockReadOptions bro{ro.verify_checksums, ro.fill_cache,
                             /*use_cache=*/true};
  auto note_error = [&](Status s) {
    ++stats_->read_errors;
    if (first_error->ok()) *first_error = std::move(s);
  };

  // Every source keeps a POSITIONED candidate across tombstone winners:
  // when the newest visible version at the front is a tombstone, only
  // the sources standing ON the deleted key advance (from where they
  // are — no fresh index descent), so a run of N consecutive tombstones
  // costs O(files + N) instead of N full multi-level restarts. The
  // winner rule is unchanged: smallest key; among versions of that key
  // the highest seqno; rank (source recency) breaks the remaining
  // legacy seqno-0 ties exactly as the pre-MVCC age rule did.
  struct Cand {
    bool valid = false;
    std::string key, value;
    uint64_t seqno = 0;
    bool tombstone = false;
  };

  // Memtable sources: skiplist descents are cheap, so repositioning is
  // just a fresh SeekGeq at the advanced cursor.
  struct MemSrc {
    const MemTableSet* mem;
    int rank;
    Cand cand;
  };
  std::vector<MemSrc> mems;
  mems.reserve(1 + view.version->imm.size());
  mems.push_back({view.mem.get(), 0, {}});
  {
    int rank = 0;
    for (const MemPtr& m : view.version->imm) {
      mems.push_back({m.get(), ++rank, {}});
    }
  }
  auto position_mem = [&](MemSrc& src, std::string_view lo) {
    src.cand.valid = false;
    SkipList::Entry entry;
    uint8_t tag;
    std::string_view user;
    if (src.mem->SeekGeq(lo, view.snapshot, &entry) && entry.key <= hi &&
        ParseInternalValue(entry.value, &tag, &user)) {
      src.cand.valid = true;
      src.cand.key.assign(entry.key);
      src.cand.value.assign(user);
      src.cand.seqno = entry.seqno;
      src.cand.tombstone = tag == kTagTombstone;
    }
  };

  // One SST file as a positioned source. The filter is consulted ONCE
  // per file per query (sound permanently: a negative for [lo, hi]
  // covers every subrange the advancing cursor can ask about); the
  // first probe is an index-descent Seek, every later one a forward
  // SkipTo from the standing position.
  struct FileSrc {
    const FileMeta* f = nullptr;
    bool checked = false;    // filter consulted
    bool seeked = false;     // cursor holds a position
    bool found_any = false;  // at least one probe landed in range
    bool dead = false;       // filter negative, range exhausted, or error
    SstReader::RangeCursor cur;
    Cand cand;
  };
  auto position_file = [&](FileSrc& src, std::string_view lo) {
    src.cand.valid = false;
    if (src.dead) return;
    const FileMeta& f = *src.f;
    if (f.largest < lo || f.smallest > hi) {
      src.dead = true;  // lo only grows: a bypassed file stays bypassed
      return;
    }
    if (!src.checked) {
      src.checked = true;
      std::string_view clip_lo = lo > f.smallest
                                     ? lo
                                     : std::string_view(f.smallest);
      std::string_view clip_hi =
          hi < f.largest ? hi : std::string_view(f.largest);
      ++stats_->filter_checks;
      if (f.filter != nullptr) {
        NoteFilterChecks(f, 1);
        if (!f.filter->MayContain(clip_lo, clip_hi)) {
          ++stats_->filter_negatives;
          src.dead = true;
          return;
        }
      }
      src.cur.Init(f.reader.get(), bro, view.snapshot);
    }
    Status read_status;
    int rc;
    if (!src.seeked) {
      ++stats_->sst_seeks;
      NoteSstProbe(f);
      rc = src.cur.Seek(lo, hi, &read_status);
      src.seeked = true;
    } else {
      rc = src.cur.SkipTo(lo, hi, &read_status);
    }
    if (rc == 0) {
      src.found_any = true;
      const SstReader::SeekEntry& se = src.cur.entry();
      src.cand.valid = true;
      src.cand.key = se.key;
      src.cand.value = se.value;
      src.cand.seqno = se.seqno;
      src.cand.tombstone = se.tombstone;
    } else if (rc == 1) {
      src.dead = true;
      if (!src.found_any && f.filter != nullptr) {
        ++stats_->false_positive_files;  // filter passed, file had nothing
        NoteFalsePositive(f);
      }
    } else {
      note_error(std::move(read_status));
      src.dead = true;
    }
  };

  // L0: every overlapping file is its own source (they overlap freely).
  struct RankedFile {
    FileSrc src;
    int rank;
  };
  std::vector<RankedFile> l0s;
  {
    int rank = 1000;
    for (const auto& f : view.version->levels[0]) {
      RankedFile rf;
      rf.src.f = f.get();
      rf.rank = rank++;
      l0s.push_back(std::move(rf));
    }
  }

  // Sorted levels: one source per level that walks its files in key
  // order, binary-searching the entry file once and advancing file by
  // file as the cursor outruns each one.
  struct LevelSrc {
    const std::vector<FilePtr>* files;
    int rank;
    size_t idx = 0;
    bool started = false;
    FileSrc file;
    Cand cand;
  };
  std::vector<LevelSrc> lvls;
  for (size_t level = 1; level < view.version->levels.size(); ++level) {
    if (view.version->levels[level].empty()) continue;
    LevelSrc src;
    src.files = &view.version->levels[level];
    src.rank = 1000000 + static_cast<int>(level);
    lvls.push_back(std::move(src));
  }
  auto position_level = [&](LevelSrc& src, std::string_view lo) {
    src.cand.valid = false;
    const auto& files = *src.files;
    if (!src.started) {
      src.started = true;
      src.idx = static_cast<size_t>(
          std::lower_bound(files.begin(), files.end(), lo,
                           [](const FilePtr& f, std::string_view key) {
                             return f->largest < key;
                           }) -
          files.begin());
      src.file = FileSrc{};
      if (src.idx < files.size()) src.file.f = files[src.idx].get();
    }
    while (src.idx < files.size()) {
      if (files[src.idx]->smallest > hi) return;  // rest of level is past hi
      position_file(src.file, lo);
      if (src.file.cand.valid) {
        src.cand = src.file.cand;
        return;
      }
      // Exhausted (or filter-rejected, or error-noted): next file.
      ++src.idx;
      src.file = FileSrc{};
      if (src.idx < files.size()) src.file.f = files[src.idx].get();
    }
  };

  // Prime every source at the original cursor, then loop: pick the best
  // candidate; a tombstone winner advances the cursor and repositions
  // ONLY the sources standing on the deleted key.
  for (auto& src : mems) position_mem(src, cursor);
  for (auto& rf : l0s) position_file(rf.src, cursor);
  for (auto& src : lvls) position_level(src, cursor);

  for (;;) {
    const Cand* best = nullptr;
    int best_rank = 1 << 30;
    auto consider = [&](const Cand& c, int rank) {
      if (!c.valid) return;
      const bool better =
          best == nullptr || c.key < best->key ||
          (c.key == best->key &&
           (c.seqno > best->seqno ||
            (c.seqno == best->seqno && rank < best_rank)));
      if (better) {
        best = &c;
        best_rank = rank;
      }
    };
    for (const auto& src : mems) consider(src.cand, src.rank);
    for (const auto& rf : l0s) consider(rf.src.cand, rf.rank);
    for (const auto& src : lvls) consider(src.cand, src.rank);

    if (best == nullptr) return false;
    if (!best->tombstone) {
      if (key != nullptr) key->assign(best->key);
      if (value != nullptr) value->assign(best->value);
      return true;
    }
    // The newest visible version in range is a tombstone: advance past
    // the deleted key. Only sources whose candidate IS that key are
    // stale (every other candidate already sits beyond the new cursor).
    cursor.assign(best->key);
    cursor.push_back('\0');
    for (auto& src : mems) {
      if (src.cand.valid && src.cand.key < cursor) position_mem(src, cursor);
    }
    for (auto& rf : l0s) {
      if (rf.src.cand.valid && rf.src.cand.key < cursor) {
        position_file(rf.src, cursor);
      }
    }
    for (auto& src : lvls) {
      if (src.cand.valid && src.cand.key < cursor) {
        position_level(src, cursor);
      }
    }
  }
}

void Db::MultiSeek(const QueryBatch& batch, const Scheduler& scheduler,
                   std::vector<MultiSeekResult>* results,
                   const ReadOptions& options) {
  const size_t n = batch.size();
  results->assign(n, MultiSeekResult{});
  if (n == 0) return;
  stats_->seeks += n;

  // ONE view and horizon for the whole batch: its answers are mutually
  // consistent even while writers commit concurrently.
  const ReadView view = AcquireReadView(options);
  const BlockReadOptions bro{options.verify_checksums, options.fill_cache,
                             /*use_cache=*/true};

  // Layout hints for layout-aware schedulers: the boundaries of the
  // largest sorted level (the one most batches fan out over).
  ScheduleContext context;
  size_t widest = 0;  // 0 = no sorted level yet (L0 has no boundaries)
  for (size_t level = 1; level < view.version->levels.size(); ++level) {
    if (view.version->levels[level].size() >
        (widest == 0 ? size_t{0} : view.version->levels[widest].size())) {
      widest = level;
    }
  }
  if (widest != 0) {
    context.file_boundaries.reserve(view.version->levels[widest].size());
    for (const auto& f : view.version->levels[widest]) {
      context.file_boundaries.push_back(f->smallest);
    }
  }
  std::vector<uint32_t> order;
  scheduler.Plan(batch, context, &order);
  // A scheduler must emit a permutation; a broken one must not lose or
  // duplicate queries, so fall back to arrival order if it didn't.
  {
    std::vector<uint8_t> seen(n, 0);
    bool valid = order.size() == n;
    for (size_t i = 0; valid && i < n; ++i) {
      valid = order[i] < n && !seen[order[i]];
      if (valid) seen[order[i]] = 1;
    }
    if (!valid) {
      order.resize(n);
      for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
    }
  }

  // Round one: the first Seek-loop iteration of every query, batched so
  // each SST is visited once. Per-query winners accumulate here exactly
  // like Seek's `consider`.
  struct Cand {
    bool found = false;
    bool tombstone = false;
    uint64_t seqno = 0;
    int rank = 1 << 30;
    std::string key, value;
    Status first_error;
  };
  std::vector<Cand> cands(n);
  auto consider = [&](uint32_t qi, std::string_view k, uint64_t seqno,
                      bool tombstone, std::string_view user, int rank) {
    if (k > batch[qi].hi) return;
    Cand& c = cands[qi];
    const bool better =
        !c.found || k < c.key ||
        (k == c.key &&
         (seqno > c.seqno || (seqno == c.seqno && rank < c.rank)));
    if (better) {
      c.found = true;
      c.key.assign(k);
      c.seqno = seqno;
      c.tombstone = tombstone;
      c.value.assign(user);
      c.rank = rank;
    }
  };

  SkipList::Entry entry;
  uint8_t tag;
  std::string_view user;
  for (uint32_t qi : order) {
    if (view.mem->SeekGeq(batch[qi].lo, view.snapshot, &entry) &&
        ParseInternalValue(entry.value, &tag, &user)) {
      consider(qi, entry.key, entry.seqno, tag == kTagTombstone, user, 0);
    }
    int rank = 0;
    for (const MemPtr& m : view.version->imm) {
      ++rank;
      if (m->SeekGeq(batch[qi].lo, view.snapshot, &entry) &&
          ParseInternalValue(entry.value, &tag, &user)) {
        consider(qi, entry.key, entry.seqno, tag == kTagTombstone, user,
                 rank);
      }
    }
  }

  // Per-SST grouping: a file's group is the (scheduled-order) queries
  // that still need it; all their filter verdicts come from one batched
  // call, then only the passing ones probe the SST. A query that finds
  // an in-range entry (rc == 0) is done with the level — Seek's
  // per-level early exit — while one that doesn't carries over to the
  // next file only if its range spans past this one.
  SstReader::SeekEntry se;
  std::vector<std::string_view> clip_lo, clip_hi;
  std::vector<uint8_t> verdicts;
  auto probe_group = [&](const FileMeta& f, int file_rank,
                         const std::vector<uint32_t>& group,
                         std::vector<uint32_t>* carry) {
    if (group.empty()) return;
    clip_lo.clear();
    clip_hi.clear();
    for (uint32_t qi : group) {
      const StrRangeQuery& q = batch[qi];
      clip_lo.push_back(q.lo > f.smallest ? std::string_view(q.lo)
                                          : std::string_view(f.smallest));
      clip_hi.push_back(q.hi < f.largest ? std::string_view(q.hi)
                                         : std::string_view(f.largest));
    }
    stats_->filter_checks += group.size();
    verdicts.assign(group.size(), 1);
    if (f.filter != nullptr) {
      NoteFilterChecks(f, group.size());
      f.filter->MultiMayContain(clip_lo.data(), clip_hi.data(), group.size(),
                                verdicts.data());
      for (uint8_t v : verdicts) {
        if (v == 0) ++stats_->filter_negatives;
      }
    }
    for (size_t g = 0; g < group.size(); ++g) {
      const uint32_t qi = group[g];
      const StrRangeQuery& q = batch[qi];
      bool done = false;
      if (verdicts[g] != 0) {
        ++stats_->sst_seeks;
        NoteSstProbe(f);
        Status read_status;
        int rc = f.reader->SeekInRange(q.lo, q.hi, view.snapshot, bro, &se,
                                       &read_status);
        if (rc == 0) {
          consider(qi, se.key, se.seqno, se.tombstone, se.value, file_rank);
          done = true;
        } else if (rc == 1 && f.filter != nullptr) {
          ++stats_->false_positive_files;
          NoteFalsePositive(f);
        } else if (rc == -1) {
          ++stats_->read_errors;
          if (cands[qi].first_error.ok()) {
            cands[qi].first_error = std::move(read_status);
          }
        }
      }
      if (!done && carry != nullptr && q.hi > f.largest) carry->push_back(qi);
    }
  };

  // L0 files overlap arbitrarily, so every file sees every overlapping
  // query (no early exit to exploit — same as Seek).
  std::vector<uint32_t> group;
  int rank = 1000;
  for (const auto& f : view.version->levels[0]) {
    group.clear();
    for (uint32_t qi : order) {
      const StrRangeQuery& q = batch[qi];
      if (!(f->largest < q.lo || f->smallest > q.hi)) group.push_back(qi);
    }
    probe_group(*f, rank++, group, nullptr);
  }

  // Sorted levels: files are ascending and non-overlapping, so each
  // query binary-searches its first overlapping file instead of every
  // file scanning every query; a query whose range spans a file
  // boundary carries into the next file's group (Seek's scan order
  // exactly). One flat (file, query) list per level keeps this
  // allocation-free across files.
  std::vector<std::pair<uint32_t, uint32_t>> assigned;
  std::vector<uint32_t> carry;
  for (size_t level = 1; level < view.version->levels.size(); ++level) {
    const auto& files = view.version->levels[level];
    if (files.empty()) continue;
    const int level_rank = 1000000 + static_cast<int>(level);
    assigned.clear();
    for (uint32_t qi : order) {
      const StrRangeQuery& q = batch[qi];
      auto it = std::lower_bound(
          files.begin(), files.end(), q.lo,
          [](const auto& f, std::string_view lo) { return f->largest < lo; });
      if (it == files.end() || (*it)->smallest > q.hi) continue;
      assigned.emplace_back(static_cast<uint32_t>(it - files.begin()), qi);
    }
    // Queries with the same entry file become adjacent, scheduled order
    // preserved within each file.
    std::stable_sort(assigned.begin(), assigned.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    size_t pos = 0;
    carry.clear();
    for (size_t i = 0; i < files.size(); ++i) {
      if (carry.empty()) {
        if (pos == assigned.size()) break;
        i = assigned[pos].first;  // skip files nobody needs
      }
      group.clear();
      for (uint32_t qi : carry) {
        // A carried range can end before this file starts (Seek would
        // break the level scan there): drop it.
        if (batch[qi].hi >= files[i]->smallest) group.push_back(qi);
      }
      carry.clear();
      while (pos < assigned.size() && assigned[pos].first == i) {
        group.push_back(assigned[pos++].second);
      }
      probe_group(*files[i], level_rank, group,
                  i + 1 < files.size() ? &carry : nullptr);
    }
  }

  // Resolve. Tombstone winners resume through the single-query loop past
  // the deleted key (rare: a batch amortizes nothing over a resume whose
  // cursor is unique to one query). Empty results feed the sample queue
  // with their original bounds, exactly like Seek.
  for (size_t qi = 0; qi < n; ++qi) {
    MultiSeekResult& r = (*results)[qi];
    Cand& c = cands[qi];
    r.status = std::move(c.first_error);
    if (c.found && !c.tombstone) {
      r.found = true;
      r.key = std::move(c.key);
      r.value = std::move(c.value);
      continue;
    }
    if (c.found) {
      std::string cursor = std::move(c.key);
      cursor.push_back('\0');
      r.found = SeekLoop(view, options, std::move(cursor), batch[qi].hi,
                         &r.key, &r.value, &r.status);
    }
    if (!r.found) RecordEmptySeek(batch[qi].lo, batch[qi].hi);
  }
}

Status Db::VerifyChecksums() const {
  VersionPtr v = CurrentVersion();
  for (const auto& level : v->levels) {
    for (const auto& f : level) {
      Status s = f->reader->VerifyChecksums();
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

DbStats Db::stats() const {
  DbStats out = stats_->Snapshot();
  out.shard_applies.reserve(shard_applies_.size());
  for (const auto& c : shard_applies_) {
    out.shard_applies.push_back(c.load(std::memory_order_relaxed));
  }
  {
    std::lock_guard<std::mutex> vl(view_mu_);
    out.memtable_arena_bytes = mem_->ArenaBytes();
    for (const MemPtr& m : version_->imm) {
      out.memtable_arena_bytes += m->ArenaBytes();
    }
  }
  return out;
}

void Db::ResetStats() {
  stats_->Reset();
  for (auto& c : shard_applies_) c.store(0, std::memory_order_relaxed);
}

WalWriter::Stats Db::wal_stats() const {
  return wal_ != nullptr ? wal_->stats() : WalWriter::Stats{};
}

Status Db::background_error() const {
  std::lock_guard<std::mutex> el(err_mu_);
  return bg_error_;
}

std::vector<size_t> Db::LevelFileCounts() const {
  VersionPtr v = CurrentVersion();
  std::vector<size_t> out;
  for (const auto& level : v->levels) out.push_back(level.size());
  return out;
}

uint64_t Db::TotalSstBytes() const {
  VersionPtr v = CurrentVersion();
  uint64_t total = 0;
  for (const auto& level : v->levels) {
    for (const auto& f : level) total += f->file_size;
  }
  return total;
}

uint64_t Db::TotalFilterBits() const {
  VersionPtr v = CurrentVersion();
  uint64_t total = 0;
  for (const auto& level : v->levels) {
    for (const auto& f : level) {
      if (f->filter != nullptr) total += f->filter->SizeBits();
    }
  }
  return total;
}

uint64_t Db::TotalKeys() const {
  ReadView view;
  {
    std::lock_guard<std::mutex> vl(view_mu_);
    view.mem = mem_;
    view.version = version_;
  }
  uint64_t total = view.mem->size();
  for (const MemPtr& m : view.version->imm) total += m->size();
  for (const auto& level : view.version->levels) {
    for (const auto& f : level) total += f->n_entries;
  }
  return total;
}

void Db::TEST_CrashClose() {
  crashed_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> sl(stall_mu_);
  }
  stall_cv_.notify_all();
  pool_->Shutdown();  // join any in-flight maintenance first
  std::lock_guard<std::mutex> plock(pipeline_mu_);
  std::lock_guard<std::mutex> vl(view_mu_);
  wal_.reset();  // closes the fd; the file stays as-is on disk
  // kill -9 takes the memtables
  mem_ = std::make_shared<MemTableSet>(options_.memtable_shards);
  auto nv = std::make_shared<Version>(*version_);
  nv->imm.clear();
  version_ = std::move(nv);
  if (manifest_fd_ >= 0) {
    ::close(manifest_fd_);
    manifest_fd_ = -1;
  }
}

}  // namespace proteus
