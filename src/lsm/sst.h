// SST (Static Sorted Table) files: writer, reader, and file metadata.
//
// Layout (format v3 — the byte-accurate spec lives in docs/FORMAT.md):
//   [compressed data block]*  [compressed index block]  [filter block]
//   [footer]
// The index block maps each data block's last key to a 20-byte handle
// (offset u64, size u64, crc32c u32). The CRC covers the block's on-disk
// bytes — compression tag included, raw and RLE blocks alike — so a
// damaged block is rejected before decompression ever looks at it. The
// filter block is the SstFilter::Serialize wire form of the file's range
// filter (absent when the file was written without one).
//
// Footer v3 (fixed width, 72 bytes): index_offset, index_size, n_entries,
// filter_offset, filter_size, filter_format, filter_checksum,
// footer_version, magic — the same field layout as v2; only the
// footer_version sentinel differs, and it is what tells the reader
// whether index handles are 16 bytes (v2, no block CRC) or 20 (v3).
// Legacy files remain readable: v2 footers (72 bytes, "PROTFTV2"
// sentinel, filter block, no block CRCs) and v1 footers (32 bytes:
// index_offset, index_size, n_entries, magic; no filter block). The
// trailing magic sits in the same place in all three, so corruption
// detection at open is uniform.
//
// As in the paper's tuned RocksDB (Section 6.1), index and filter stay
// pinned in memory: SstReader keeps the parsed index block and the raw
// filter block. Data blocks are read from disk on demand through the LRU
// block cache; pinned filter bytes are charged against the same cache
// budget (BlockCache::AddPinnedBytes).

#ifndef PROTEUS_LSM_SST_H_
#define PROTEUS_LSM_SST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lsm/block.h"
#include "lsm/block_cache.h"
#include "lsm/filter_policy.h"
#include "util/status.h"

namespace proteus {

struct SstStats {
  uint64_t blocks_written = 0;
  uint64_t bytes_written = 0;
};

class SstWriter {
 public:
  struct Options {
    size_t block_size = 4096;   // uncompressed target
    bool compress = true;       // RLE data blocks
    /// Footer generation to emit. 3 (current) writes per-block CRCs in
    /// 20-byte index handles; 2 writes 16-byte handles and the v2
    /// sentinel; 1 writes the legacy 32-byte footer and drops any filter
    /// block. 1 and 2 exist so compatibility tests can produce genuine
    /// old-format files — production writers always use 3.
    uint32_t format_version = 3;
  };

  SstWriter(std::string path, Options options);

  /// Keys must arrive in strictly increasing order.
  void Add(std::string_view key, std::string_view value);

  /// Attaches the serialized filter (SstFilter::Serialize output) to be
  /// persisted as the file's filter block. Must precede Finish().
  /// `format` is the filter wire-format version recorded in the footer so
  /// readers can reject blobs they do not understand without parsing them.
  void SetFilterBlock(std::string blob, uint64_t format);

  /// Writes index + filter block + footer, fsyncs, and closes the file.
  Status Finish();

  uint64_t n_entries() const { return n_entries_; }
  uint64_t file_size() const { return offset_; }
  const std::string& smallest() const { return smallest_; }
  const std::string& largest() const { return largest_; }
  const SstStats& stats() const { return stats_; }

 private:
  void FlushBlock();

  std::string path_;
  Options options_;
  std::string file_buffer_;
  BlockBuilder data_block_;
  BlockBuilder index_block_;
  std::string filter_block_;
  uint64_t filter_format_ = 0;
  uint64_t offset_ = 0;
  uint64_t n_entries_ = 0;
  std::string smallest_, largest_, last_key_in_block_;
  SstStats stats_;
};

class SstReader {
 public:
  /// Opens the file and pins the index block (and any filter block) in
  /// memory. Returns Corruption for a damaged footer/index and IOError
  /// when the OS fails the read. A damaged or out-of-bounds filter block
  /// does NOT fail Open — the data remains readable and the caller falls
  /// back to rebuilding the filter (has_filter_block() reports false).
  Status Open(const std::string& path, uint64_t file_id, BlockCache* cache);

  uint64_t n_entries() const { return n_entries_; }
  uint64_t n_blocks() const { return index_.n_entries(); }

  /// Footer generation this file was written with (1, 2, or 3). Callers
  /// use it to interpret the value encoding (v3 values are tagged with a
  /// tombstone byte by the Db layer) and handle width.
  uint32_t footer_version() const { return footer_version_; }

  /// True when the file carried a filter block with a bounds-sane handle
  /// and a wire-format version this build understands.
  bool has_filter_block() const { return !filter_block_.empty(); }
  const std::string& filter_block() const { return filter_block_; }
  uint64_t filter_format() const { return filter_format_; }

  /// Deserializes the pinned filter block into a live SstFilter without
  /// rebuilding from keys. Returns null (fills `status`) when the file
  /// has no filter block or the blob is corrupt — callers treat that as
  /// a rebuild-from-keys fallback, never a crash.
  std::unique_ptr<SstFilter> LoadFilter(Status* status = nullptr) const;

  /// Frees the raw blob once the live filter has been materialized (or a
  /// rebuild decided on), so filter memory is not held twice.
  void ReleaseFilterBlock() {
    filter_block_.clear();
    filter_block_.shrink_to_fit();
  }

  /// Finds the smallest entry with key in [lo, hi]. Touches at most one
  /// data block (keys in [lo, hi] beyond the first block are larger).
  /// Returns 0 = found, 1 = none in range, -1 = corruption/IO error
  /// (the block failed its CRC or checksum; details in `status`).
  int SeekInRange(std::string_view lo, std::string_view hi, std::string* key,
                  std::string* value, Status* status = nullptr) const;

  /// Reads every data block (bypassing the cache), verifying the v3
  /// per-block CRC32C and the in-block checksum. Returns the first
  /// failure as a Corruption/IOError status.
  Status VerifyChecksums() const;

  /// Streams all entries in order (compaction path; bypasses the cache).
  template <typename Fn>
  bool ForEach(Fn&& fn) const {
    for (size_t b = 0; b < index_.n_entries(); ++b) {
      BlockReader block;
      if (!ReadDataBlock(b, &block, /*use_cache=*/false).ok()) return false;
      for (size_t i = 0; i < block.n_entries(); ++i) {
        fn(block.KeyAt(i), block.ValueAt(i));
      }
    }
    return true;
  }

  const std::string& path() const { return path_; }

  /// Streaming cursor over all entries in key order (compaction merge).
  /// A data block that fails its CRC/checksum STOPS the iterator
  /// (Valid() goes false) and is reported through status() — silently
  /// skipping a block here would let compaction drop keys and then
  /// unlink the only copy. Callers must check status() once Valid()
  /// turns false.
  class Iterator {
   public:
    explicit Iterator(const SstReader* reader) : reader_(reader) {
      LoadBlock();
    }
    bool Valid() const { return valid_; }
    const Status& status() const { return status_; }
    std::string_view key() const { return block_.KeyAt(entry_); }
    std::string_view value() const { return block_.ValueAt(entry_); }
    void Next() {
      if (++entry_ >= block_.n_entries()) {
        ++block_index_;
        LoadBlock();
      }
    }

   private:
    void LoadBlock() {
      entry_ = 0;
      valid_ = false;
      while (block_index_ < reader_->n_blocks()) {
        Status s = reader_->ReadDataBlock(block_index_, &block_,
                                          /*use_cache=*/false);
        if (!s.ok()) {
          status_ = std::move(s);
          return;  // stop: do NOT skip past unreadable entries
        }
        if (block_.n_entries() > 0) {
          valid_ = true;
          return;
        }
        ++block_index_;
      }
    }

    const SstReader* reader_;
    size_t block_index_ = 0;
    size_t entry_ = 0;
    bool valid_ = false;
    Status status_;
    BlockReader block_;
  };

 private:
  friend class Iterator;
  struct BlockHandle {
    uint64_t offset = 0;
    uint64_t size = 0;
    uint32_t crc = 0;       // v3 only
    bool has_crc = false;
  };
  bool ParseHandle(size_t block_index, BlockHandle* out) const;
  Status ReadDataBlock(size_t block_index, BlockReader* out,
                       bool use_cache) const;
  bool ReadRaw(uint64_t offset, uint64_t size, std::string* out) const;

  std::string path_;
  int fd_ = -1;
  uint64_t file_id_ = 0;
  uint64_t n_entries_ = 0;
  uint32_t footer_version_ = 0;
  BlockCache* cache_ = nullptr;
  BlockReader index_;  // entries: last_key -> block handle (16 or 20 bytes)
  std::string filter_block_;
  uint64_t filter_format_ = 0;

 public:
  ~SstReader();
  SstReader() = default;
  SstReader(const SstReader&) = delete;
  SstReader& operator=(const SstReader&) = delete;
};

}  // namespace proteus

#endif  // PROTEUS_LSM_SST_H_
