// SST (Static Sorted Table) files: writer, reader, and file metadata.
//
// Layout (format v4 — the byte-accurate spec lives in docs/FORMAT.md):
//   [compressed data block]*  [compressed index block]  [filter block]
//   [footer]
// The index block maps each data block's last key to a 20-byte handle
// (offset u64, size u64, crc32c u32). The CRC covers the block's on-disk
// bytes — compression tag included, raw and RLE blocks alike — so a
// damaged block is rejected before decompression ever looks at it. The
// filter block is the SstFilter::Serialize wire form of the file's range
// filter (absent when the file was written without one).
//
// v4 files are multi-version: a user key may appear in several
// consecutive entries, newest (highest seqno) first, and every value is
// encoded as `tag u8 | seqno u64 | user bytes` (ikey.h). The reader's
// SeekInRange resolves visibility against a snapshot sequence horizon.
//
// Footer v4 (fixed width, 72 bytes): index_offset, index_size, n_entries,
// filter_offset, filter_size, filter_format, filter_checksum,
// footer_version, magic — the same field layout as v2/v3; only the
// footer_version sentinel differs, and it is what tells the reader the
// handle width (16 bytes in v2, 20 in v3+) and the value encoding
// (raw in v1/v2, tag-prefixed in v3, tag+seqno in v4). Legacy files
// remain readable down to v1 footers (32 bytes: index_offset,
// index_size, n_entries, magic; no filter block). The trailing magic
// sits in the same place in all generations, so corruption detection at
// open is uniform.
//
// As in the paper's tuned RocksDB (Section 6.1), index and filter stay
// pinned in memory: SstReader keeps the parsed index block and the raw
// filter block. Data blocks are read from disk on demand through the LRU
// block cache; pinned filter bytes are charged against the same cache
// budget (BlockCache::AddPinnedBytes).

#ifndef PROTEUS_LSM_SST_H_
#define PROTEUS_LSM_SST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lsm/block.h"
#include "lsm/block_cache.h"
#include "lsm/filter_policy.h"
#include "util/status.h"

namespace proteus {

struct SstStats {
  uint64_t blocks_written = 0;
  uint64_t bytes_written = 0;
};

/// Per-read knobs threaded down from ReadOptions at the Db layer.
struct BlockReadOptions {
  bool verify_checksums = true;  // check the v3+ handle CRC on a cache miss
  bool fill_cache = true;        // insert read blocks into the block cache
  // Look the block up in the cache at all. Compaction and
  // VerifyChecksums set this false: they must observe the on-disk bytes,
  // not a previously verified copy.
  bool use_cache = true;
};

class SstWriter {
 public:
  struct Options {
    size_t block_size = 4096;   // uncompressed target
    bool compress = true;       // RLE data blocks
    /// Footer generation to emit. 4 (current) stores tag+seqno values;
    /// 3 writes per-block CRCs in 20-byte index handles with tag-only
    /// values; 2 writes 16-byte handles and the v2 sentinel; 1 writes
    /// the legacy 32-byte footer and drops any filter block. 1–3 exist
    /// so compatibility tests can produce genuine old-format files —
    /// production writers always use 4.
    uint32_t format_version = 4;
  };

  SstWriter(std::string path, Options options);

  /// Keys must arrive in non-decreasing order; equal keys are a version
  /// run (newest seqno first — the caller's merge order).
  void Add(std::string_view key, std::string_view value);

  /// Attaches the serialized filter (SstFilter::Serialize output) to be
  /// persisted as the file's filter block. Must precede Finish().
  /// `format` is the filter wire-format version recorded in the footer so
  /// readers can reject blobs they do not understand without parsing them.
  void SetFilterBlock(std::string blob, uint64_t format);

  /// Writes index + filter block + footer, fsyncs, and closes the file.
  Status Finish();

  uint64_t n_entries() const { return n_entries_; }
  uint64_t file_size() const { return offset_; }
  const std::string& smallest() const { return smallest_; }
  const std::string& largest() const { return largest_; }
  const SstStats& stats() const { return stats_; }

 private:
  void FlushBlock();

  std::string path_;
  Options options_;
  std::string file_buffer_;
  BlockBuilder data_block_;
  BlockBuilder index_block_;
  std::string filter_block_;
  uint64_t filter_format_ = 0;
  uint64_t offset_ = 0;
  uint64_t n_entries_ = 0;
  std::string smallest_, largest_, last_key_in_block_;
  SstStats stats_;
};

class SstReader {
 public:
  /// Opens the file and pins the index block (and any filter block) in
  /// memory. Returns Corruption for a damaged footer/index and IOError
  /// when the OS fails the read. A damaged or out-of-bounds filter block
  /// does NOT fail Open — the data remains readable and the caller falls
  /// back to rebuilding the filter (has_filter_block() reports false).
  Status Open(const std::string& path, uint64_t file_id, BlockCache* cache);

  uint64_t n_entries() const { return n_entries_; }
  uint64_t n_blocks() const { return index_.n_entries(); }

  /// Footer generation this file was written with (1–4). Callers use it
  /// to interpret the value encoding (ikey.h: v3 values carry a tombstone
  /// tag, v4 values a tag and a seqno) and the handle width.
  uint32_t footer_version() const { return footer_version_; }

  /// True when the file carried a filter block with a bounds-sane handle
  /// and a wire-format version this build understands.
  bool has_filter_block() const { return !filter_block_.empty(); }
  const std::string& filter_block() const { return filter_block_; }
  uint64_t filter_format() const { return filter_format_; }

  /// Deserializes the pinned filter block into a live SstFilter without
  /// rebuilding from keys. Returns null (fills `status`) when the file
  /// has no filter block or the blob is corrupt — callers treat that as
  /// a rebuild-from-keys fallback, never a crash.
  std::unique_ptr<SstFilter> LoadFilter(Status* status = nullptr) const;

  /// Frees the raw blob once the live filter has been materialized (or a
  /// rebuild decided on), so filter memory is not held twice.
  void ReleaseFilterBlock() {
    filter_block_.clear();
    filter_block_.shrink_to_fit();
  }

  /// One resolved entry out of SeekInRange: the user key, the newest
  /// visible version's user bytes, and that version's tag/seqno.
  struct SeekEntry {
    std::string key;
    std::string value;  // user bytes (tag and seqno already stripped)
    uint64_t seqno = 0;
    bool tombstone = false;
  };

  /// Finds the newest version visible at `snapshot` (seqno <= snapshot)
  /// of the smallest key in [lo, hi]. Versions newer than the snapshot
  /// are skipped; a key whose every version is invisible is skipped
  /// entirely. Usually touches one data block; skipping invisible
  /// entries can carry the scan into the next block(s). Legacy files
  /// (v1–v3) decode as seqno 0, visible to every snapshot.
  /// Returns 0 = found, 1 = none in range, -1 = corruption/IO error
  /// (the block failed its CRC or checksum; details in `status`).
  int SeekInRange(std::string_view lo, std::string_view hi, uint64_t snapshot,
                  const BlockReadOptions& opts, SeekEntry* out,
                  Status* status = nullptr) const;

  /// A positioned SeekInRange: one Seek() descends the index, then
  /// SkipTo() re-positions FORWARD from where the cursor stands instead
  /// of descending again. The Db's Seek loop keeps one RangeCursor per
  /// SST source, so walking a run of consecutive tombstones costs one
  /// index descent per file total — not one per tombstone.
  class RangeCursor {
   public:
    RangeCursor() = default;

    void Init(const SstReader* reader, const BlockReadOptions& opts,
              uint64_t snapshot) {
      reader_ = reader;
      opts_ = opts;
      snapshot_ = snapshot;
    }

    /// Positions at the newest visible version of the smallest key in
    /// [lo, hi]. Returns 0 = found (entry() is valid), 1 = nothing in
    /// range, -1 = read error (details in `status`).
    int Seek(std::string_view lo, std::string_view hi, Status* status);

    /// Same contract as Seek(), but resumes from the current position —
    /// valid only after a Seek() on this cursor, with `lo` at or past
    /// the previous result's key (the Db's tombstone cursor only grows).
    int SkipTo(std::string_view lo, std::string_view hi, Status* status);

    const SeekEntry& entry() const { return entry_; }

   private:
    int ScanForward(std::string_view lo, std::string_view hi,
                    Status* status);

    const SstReader* reader_ = nullptr;
    BlockReadOptions opts_;
    uint64_t snapshot_ = ~uint64_t{0};
    size_t block_ = 0;    // index of the block the cursor stands in
    size_t pos_ = 0;      // entry index within block_
    bool loaded_ = false; // blockr_ holds block_'s contents
    BlockReader blockr_;
    SeekEntry entry_;
  };

  /// Reads every data block (bypassing the cache), verifying the v3
  /// per-block CRC32C and the in-block checksum. Returns the first
  /// failure as a Corruption/IOError status.
  Status VerifyChecksums() const;

  /// Streams all entries in order (compaction path; bypasses the cache).
  template <typename Fn>
  bool ForEach(Fn&& fn) const {
    for (size_t b = 0; b < index_.n_entries(); ++b) {
      BlockReader block;
      if (!ReadDataBlock(b, &block, kNoCacheRead).ok()) return false;
      for (size_t i = 0; i < block.n_entries(); ++i) {
        fn(block.KeyAt(i), block.ValueAt(i));
      }
    }
    return true;
  }

  const std::string& path() const { return path_; }

  /// Streaming cursor over all entries in key order (compaction merge).
  /// A data block that fails its CRC/checksum STOPS the iterator
  /// (Valid() goes false) and is reported through status() — silently
  /// skipping a block here would let compaction drop keys and then
  /// unlink the only copy. Callers must check status() once Valid()
  /// turns false.
  class Iterator {
   public:
    explicit Iterator(const SstReader* reader) : reader_(reader) {
      LoadBlock();
    }
    bool Valid() const { return valid_; }
    const Status& status() const { return status_; }
    std::string_view key() const { return block_.KeyAt(entry_); }
    std::string_view value() const { return block_.ValueAt(entry_); }
    void Next() {
      if (++entry_ >= block_.n_entries()) {
        ++block_index_;
        LoadBlock();
      }
    }

   private:
    void LoadBlock() {
      entry_ = 0;
      valid_ = false;
      while (block_index_ < reader_->n_blocks()) {
        Status s = reader_->ReadDataBlock(block_index_, &block_,
                                          kNoCacheRead);
        if (!s.ok()) {
          status_ = std::move(s);
          return;  // stop: do NOT skip past unreadable entries
        }
        if (block_.n_entries() > 0) {
          valid_ = true;
          return;
        }
        ++block_index_;
      }
    }

    const SstReader* reader_;
    size_t block_index_ = 0;
    size_t entry_ = 0;
    bool valid_ = false;
    Status status_;
    BlockReader block_;
  };

 private:
  friend class Iterator;
  // Compaction/verification reads: always verified, never cached.
  static constexpr BlockReadOptions kNoCacheRead{
      /*verify_checksums=*/true, /*fill_cache=*/false, /*use_cache=*/false};
  struct BlockHandle {
    uint64_t offset = 0;
    uint64_t size = 0;
    uint32_t crc = 0;       // v3+ only
    bool has_crc = false;
  };
  bool ParseHandle(size_t block_index, BlockHandle* out) const;
  Status ReadDataBlock(size_t block_index, BlockReader* out,
                       const BlockReadOptions& opts) const;
  bool ReadRaw(uint64_t offset, uint64_t size, std::string* out) const;

  std::string path_;
  int fd_ = -1;
  uint64_t file_id_ = 0;
  uint64_t n_entries_ = 0;
  uint32_t footer_version_ = 0;
  BlockCache* cache_ = nullptr;
  BlockReader index_;  // entries: last_key -> block handle (16 or 20 bytes)
  std::string filter_block_;
  uint64_t filter_format_ = 0;

 public:
  ~SstReader();
  SstReader() = default;
  SstReader(const SstReader&) = delete;
  SstReader& operator=(const SstReader&) = delete;
};

}  // namespace proteus

#endif  // PROTEUS_LSM_SST_H_
