#include "lsm/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "util/crc32c.h"
#include "util/posix_io.h"
#include "util/serial.h"

namespace proteus {

std::string EncodeWalRecord(uint8_t op, uint64_t seqno, std::string_view key,
                            std::string_view value) {
  const bool with_seqno = op == kWalOpPutSeq || op == kWalOpDeleteSeq;
  std::string payload;
  payload.reserve(1 + (with_seqno ? 8 : 0) + 4 + key.size() + 4 +
                  value.size());
  payload.push_back(static_cast<char>(op));
  if (with_seqno) PutFixed64(&payload, seqno);
  PutFixed32(&payload, static_cast<uint32_t>(key.size()));
  payload.append(key);
  PutFixed32(&payload, static_cast<uint32_t>(value.size()));
  payload.append(value);

  std::string record;
  record.reserve(8 + payload.size());
  AppendCrcFrame(&record, payload);
  return record;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Open(const std::string& path) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) {
    return Status::IOError(Errno("cannot open WAL " + path));
  }
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IOError(Errno("cannot stat WAL " + path));
  }
  // The caller (recovery) has already cut any torn tail, so the whole
  // existing file is durable record bytes.
  committed_bytes_.store(static_cast<uint64_t>(st.st_size),
                         std::memory_order_relaxed);
  poisoned_ = Status::OK();
  return Status::OK();
}

Status WalWriter::WriteAndSync(std::string_view buf, bool sync) {
  Status s = WriteAllFd(fd_, buf, "WAL write");
  if (!s.ok()) return s;
  if (sync) {
    if (sync_delay_micros_ > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(sync_delay_micros_));
    }
    if (::fdatasync(fd_) != 0) {
      return Status::IOError(Errno("WAL fdatasync failed"));
    }
  }
  return Status::OK();
}

Status WalWriter::Append(std::string_view batch, uint64_t n_records,
                         bool sync) {
  if (fd_ < 0) return Status::IOError("WAL is not open");
  if (!poisoned_.ok()) return poisoned_;

  Status s = WriteAndSync(batch, sync);
  if (s.ok()) {
    committed_bytes_.fetch_add(batch.size(), std::memory_order_relaxed);
  } else {
    // Roll the log back to its last durable record boundary so (a) the
    // rejected batch can never replay after "a rejected write stays
    // invisible" was promised, and (b) a half-written frame cannot sit
    // in the middle of the log ending replay early for later appends.
    if (::ftruncate(fd_, static_cast<off_t>(committed_bytes_.load(
                             std::memory_order_relaxed))) != 0) {
      poisoned_ = Status::IOError(
          Errno("WAL rollback failed after: " + s.ToString()));
      return poisoned_;
    }
    return s;
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    // Failed batches were rolled back: they never count as appended.
    stats_.records += n_records;
    ++stats_.batches;
    if (sync) ++stats_.syncs;
  }
  return Status::OK();
}

Status WalReplay(
    const std::string& path,
    const std::function<void(uint8_t op, uint64_t seqno, std::string_view key,
                             std::string_view value)>& apply,
    uint64_t* valid_bytes, bool* torn_tail) {
  if (valid_bytes != nullptr) *valid_bytes = 0;
  if (torn_tail != nullptr) *torn_tail = false;

  std::string content;
  bool found = false;
  Status read = ReadFileToString(path, &content, &found);
  if (!read.ok()) return read;
  if (!found) return Status::OK();  // no log: nothing to replay

  size_t offset = 0;
  auto torn = [&](void) {
    if (valid_bytes != nullptr) *valid_bytes = offset;
    if (torn_tail != nullptr) *torn_tail = offset < content.size();
    return Status::OK();
  };

  while (offset + 8 <= content.size()) {
    const uint32_t length = LoadFixed32(content.data() + offset);
    const uint32_t crc = LoadFixed32(content.data() + offset + 4);
    if (offset + 8 + length > content.size()) return torn();
    std::string_view payload(content.data() + offset + 8, length);
    if (Crc32c(payload) != crc) return torn();

    // Parse the payload; a framing CRC that matched but an op that does
    // not parse means an incompatible writer, which replay also treats
    // as the end of the intelligible prefix.
    std::string_view cursor = payload;
    uint32_t klen, vlen;
    uint64_t seqno = 0;
    if (cursor.empty()) return torn();
    const uint8_t op = static_cast<uint8_t>(cursor.front());
    cursor.remove_prefix(1);
    const bool is_put = op == kWalOpPut || op == kWalOpPutSeq;
    const bool is_delete = op == kWalOpDelete || op == kWalOpDeleteSeq;
    if (!is_put && !is_delete) return torn();
    if (op == kWalOpPutSeq || op == kWalOpDeleteSeq) {
      if (!GetFixed64(&cursor, &seqno)) return torn();
    }
    if (!GetFixed32(&cursor, &klen) || cursor.size() < klen) return torn();
    std::string_view key = cursor.substr(0, klen);
    cursor.remove_prefix(klen);
    if (!GetFixed32(&cursor, &vlen) || cursor.size() != vlen) return torn();
    std::string_view value = cursor.substr(0, vlen);
    if (is_delete && vlen != 0) return torn();

    apply(op, seqno, key, value);
    offset += 8 + length;
  }
  return torn();
}

}  // namespace proteus
