#include "lsm/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <vector>

#include "util/crc32c.h"
#include "util/posix_io.h"
#include "util/serial.h"

namespace proteus {

std::string EncodeWalRecord(uint8_t op, std::string_view key,
                            std::string_view value) {
  std::string payload;
  payload.reserve(1 + 4 + key.size() + 4 + value.size());
  payload.push_back(static_cast<char>(op));
  PutFixed32(&payload, static_cast<uint32_t>(key.size()));
  payload.append(key);
  PutFixed32(&payload, static_cast<uint32_t>(value.size()));
  payload.append(value);

  std::string record;
  record.reserve(8 + payload.size());
  AppendCrcFrame(&record, payload);
  return record;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Open(const std::string& path) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) {
    return Status::IOError(Errno("cannot open WAL " + path));
  }
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IOError(Errno("cannot stat WAL " + path));
  }
  // The caller (ReplayWal) has already cut any torn tail, so the whole
  // existing file is durable record bytes.
  committed_bytes_ = static_cast<uint64_t>(st.st_size);
  poisoned_ = Status::OK();
  return Status::OK();
}

Status WalWriter::WriteAndSync(std::string_view buf, bool sync) {
  Status s = WriteAllFd(fd_, buf, "WAL write");
  if (!s.ok()) return s;
  if (sync) {
    if (sync_delay_micros_ > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(sync_delay_micros_));
    }
    if (::fdatasync(fd_) != 0) {
      return Status::IOError(Errno("WAL fdatasync failed"));
    }
  }
  return Status::OK();
}

Status WalWriter::Commit(std::string_view record, bool sync) {
  if (fd_ < 0) return Status::IOError("WAL is not open");
  Waiter self{record, Status::OK(), sync, false};

  std::unique_lock<std::mutex> lock(mu_);
  if (!poisoned_.ok()) return poisoned_;
  queue_.push_back(&self);
  while (!self.done && queue_.front() != &self) {
    cv_.wait(lock);
  }
  if (self.done) return self.status;  // a leader already committed us
  if (!poisoned_.ok()) {
    // The leader ahead of us poisoned the log while we waited: step
    // down instead of appending after garbage, and wake the next
    // waiter so it can do the same.
    queue_.pop_front();
    cv_.notify_all();
    return poisoned_;
  }

  // We are the leader: drain everything queued so far into one append.
  // Any waiter that asked for a sync makes the whole batch sync — a
  // sync=true Commit must never be acknowledged from the page cache
  // just because a sync=false leader drained it.
  std::vector<Waiter*> batch(queue_.begin(), queue_.end());
  std::string buf;
  size_t total = 0;
  bool batch_sync = false;
  for (Waiter* w : batch) {
    total += w->record.size();
    batch_sync |= w->sync;
  }
  buf.reserve(total);
  for (Waiter* w : batch) buf.append(w->record);

  lock.unlock();
  Status s = WriteAndSync(buf, batch_sync);
  Status poison;
  if (s.ok()) {
    committed_bytes_ += buf.size();
  } else {
    // Roll the log back to its last durable record boundary so (a) the
    // rejected batch can never replay after "a rejected write stays
    // invisible" was promised, and (b) a half-written frame cannot sit
    // in the middle of the log ending replay early for later commits.
    if (::ftruncate(fd_, static_cast<off_t>(committed_bytes_)) != 0) {
      poison = Status::IOError(
          Errno("WAL rollback failed after: " + s.ToString()));
    }
  }
  lock.lock();
  if (!poison.ok()) {
    poisoned_ = poison;
    s = poison;
  }

  if (s.ok()) {
    // Failed batches were rolled back: they never count as appended.
    stats_.records += batch.size();
    ++stats_.batches;
    if (batch_sync) ++stats_.syncs;
  }
  queue_.erase(queue_.begin(), queue_.begin() + batch.size());
  for (Waiter* w : batch) {
    if (w != &self) {
      w->status = s;
      w->done = true;
    }
  }
  cv_.notify_all();
  return s;
}

Status WalWriter::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::IOError("WAL is not open");
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IOError(Errno("WAL ftruncate failed"));
  }
  if (::fdatasync(fd_) != 0) {
    return Status::IOError(Errno("WAL fdatasync failed"));
  }
  committed_bytes_ = 0;
  return Status::OK();
}

Status WalReplay(
    const std::string& path,
    const std::function<void(uint8_t op, std::string_view key,
                             std::string_view value)>& apply,
    uint64_t* valid_bytes, bool* torn_tail) {
  if (valid_bytes != nullptr) *valid_bytes = 0;
  if (torn_tail != nullptr) *torn_tail = false;

  std::string content;
  bool found = false;
  Status read = ReadFileToString(path, &content, &found);
  if (!read.ok()) return read;
  if (!found) return Status::OK();  // no log: nothing to replay

  size_t offset = 0;
  auto torn = [&](void) {
    if (valid_bytes != nullptr) *valid_bytes = offset;
    if (torn_tail != nullptr) *torn_tail = offset < content.size();
    return Status::OK();
  };

  while (offset + 8 <= content.size()) {
    const uint32_t length = LoadFixed32(content.data() + offset);
    const uint32_t crc = LoadFixed32(content.data() + offset + 4);
    if (offset + 8 + length > content.size()) return torn();
    std::string_view payload(content.data() + offset + 8, length);
    if (Crc32c(payload) != crc) return torn();

    // Parse the payload; a framing CRC that matched but an op that does
    // not parse means an incompatible writer, which replay also treats
    // as the end of the intelligible prefix.
    std::string_view cursor = payload;
    uint32_t klen, vlen;
    if (cursor.empty()) return torn();
    const uint8_t op = static_cast<uint8_t>(cursor.front());
    cursor.remove_prefix(1);
    if (op != kWalOpPut && op != kWalOpDelete) return torn();
    if (!GetFixed32(&cursor, &klen) || cursor.size() < klen) return torn();
    std::string_view key = cursor.substr(0, klen);
    cursor.remove_prefix(klen);
    if (!GetFixed32(&cursor, &vlen) || cursor.size() != vlen) return torn();
    std::string_view value = cursor.substr(0, vlen);
    if (op == kWalOpDelete && vlen != 0) return torn();

    apply(op, key, value);
    offset += 8 + length;
  }
  return torn();
}

}  // namespace proteus
