// A small fixed-size thread pool for background LSM maintenance (flush,
// compaction). Deliberately minimal: FIFO queue, no priorities, no
// futures — the Db layer tracks job completion through its own state
// (version installs, condition variables), the pool only supplies the
// threads.

#ifndef PROTEUS_LSM_TASK_POOL_H_
#define PROTEUS_LSM_TASK_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace proteus {

class TaskPool {
 public:
  explicit TaskPool(size_t n_threads);

  /// Runs every task already queued, then joins the workers. Tasks
  /// submitted after Shutdown()/destruction are rejected (dropped).
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Enqueues a task. Returns false if the pool is shutting down (the
  /// task is not run).
  bool Submit(std::function<void()> task);

  /// Blocks until the queue is empty AND no task is executing. New
  /// submissions during the wait extend it.
  void Wait();

  /// Stops accepting work, drains what is queued, joins the threads.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  size_t n_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks
  std::condition_variable idle_cv_;   // Wait()ers wait for drain
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace proteus

#endif  // PROTEUS_LSM_TASK_POOL_H_
