#include "lsm/block_cache.h"

namespace proteus {

std::shared_ptr<const std::string> BlockCache::Get(uint64_t file_id,
                                                   uint64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find({file_id, offset});
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  return it->second->payload;
}

void BlockCache::Insert(uint64_t file_id, uint64_t offset,
                        std::shared_ptr<const std::string> payload) {
  std::lock_guard<std::mutex> lock(mu_);
  Key key{file_id, offset};
  auto it = map_.find(key);
  if (it != map_.end()) {
    used_ -= it->second->payload->size();
    used_ += payload->size();
    it->second->payload = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
    EvictIfNeeded();
    return;
  }
  ++stats_.inserts;
  used_ += payload->size();
  lru_.push_front(Entry{key, std::move(payload)});
  map_[key] = lru_.begin();
  EvictIfNeeded();
}

void BlockCache::EraseFile(uint64_t file_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.first == file_id) {
      used_ -= it->payload->size();
      map_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
  ReleasePinnedLocked(file_id);
}

void BlockCache::AddPinnedBytes(uint64_t file_id, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  pinned_[file_id] += bytes;
  pinned_total_ += bytes;
  used_ += bytes;
  EvictIfNeeded();
}

void BlockCache::ReleasePinnedBytes(uint64_t file_id) {
  std::lock_guard<std::mutex> lock(mu_);
  ReleasePinnedLocked(file_id);
}

void BlockCache::ReleasePinnedLocked(uint64_t file_id) {
  auto it = pinned_.find(file_id);
  if (it == pinned_.end()) return;
  pinned_total_ -= it->second;
  used_ -= it->second;
  pinned_.erase(it);
}

void BlockCache::EvictIfNeeded() {
  while (used_ > capacity_ && !lru_.empty()) {
    Entry& victim = lru_.back();
    used_ -= victim.payload->size();
    map_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

}  // namespace proteus
