#include "lsm/rle.h"

#include <cstdint>

namespace proteus {
namespace {

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(std::string_view* in, uint64_t* v) {
  *v = 0;
  int shift = 0;
  while (!in->empty() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>((*in)[0]);
    in->remove_prefix(1);
    *v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
  }
  return false;
}

}  // namespace

std::string RleCompress(std::string_view input) {
  std::string out;
  out.reserve(input.size() / 2 + 16);
  out.push_back(1);  // RLE tag
  PutVarint(&out, input.size());
  size_t i = 0;
  while (i < input.size()) {
    if (input[i] == '\0') {
      size_t j = i;
      while (j < input.size() && input[j] == '\0') ++j;
      out.push_back(0);  // zero-run token
      PutVarint(&out, j - i);
      i = j;
    } else {
      size_t j = i;
      // Literal run: stop at a zero run of length >= 4 (shorter runs are
      // cheaper inline).
      size_t zeros = 0;
      while (j < input.size()) {
        if (input[j] == '\0') {
          if (++zeros >= 4) {
            j -= zeros - 1;
            break;
          }
        } else {
          zeros = 0;
        }
        ++j;
      }
      if (j > input.size()) j = input.size();
      out.push_back(1);  // literal token
      PutVarint(&out, j - i);
      out.append(input.substr(i, j - i));
      i = j;
    }
  }
  if (out.size() >= input.size() + 1) {
    std::string raw;
    raw.reserve(input.size() + 1);
    raw.push_back(0);  // raw tag
    raw.append(input);
    return raw;
  }
  return out;
}

bool RleDecompress(std::string_view input, std::string* output) {
  output->clear();
  if (input.empty()) return false;
  uint8_t tag = static_cast<uint8_t>(input[0]);
  input.remove_prefix(1);
  if (tag == 0) {
    output->assign(input.data(), input.size());
    return true;
  }
  if (tag != 1) return false;
  uint64_t total;
  if (!GetVarint(&input, &total)) return false;
  output->reserve(total);
  while (!input.empty()) {
    uint8_t token = static_cast<uint8_t>(input[0]);
    input.remove_prefix(1);
    uint64_t len;
    if (!GetVarint(&input, &len)) return false;
    if (token == 0) {
      output->append(len, '\0');
    } else if (token == 1) {
      if (input.size() < len) return false;
      output->append(input.substr(0, len));
      input.remove_prefix(len);
    } else {
      return false;
    }
    if (output->size() > total) return false;
  }
  return output->size() == total;
}

}  // namespace proteus
