// miniLSM — the storage engine standing in for RocksDB in Sections 6–7
// (see DESIGN.md substitutions).
//
// Architecture (mirroring the paper's description of RocksDB):
//  * a skiplist MemTable buffering writes,
//  * a write-ahead log (src/lsm/wal.h): every Put/Delete is CRC-framed
//    and group-committed to dir/WAL before it is acknowledged, so a
//    process kill between flushes loses nothing,
//  * L0 SST files flushed directly from the MemTable (overlapping ranges,
//    newest first),
//  * levels L1..Lmax of range-partitioned, non-overlapping SST files with
//    leveled compaction (size ratio between levels),
//  * a per-SST filter built at flush/compaction time by the configured
//    FilterPolicy from the SST's keys and the sample query queue,
//  * an LRU block cache for data blocks; index blocks and filters stay
//    pinned in memory (Section 6.2's tuning),
//  * closed Seek(lo, hi): consult every overlapping SST's filter first,
//    then fetch the smallest key >= lo only from files whose filter
//    passes (Section 6.1, "Range Query Implementation").
//
// Durability contract (docs/FORMAT.md has the byte-level formats):
//  * Put/Delete return only after their WAL record is fsync'd (group
//    commit batches concurrent writers into one fsync); Db::Open replays
//    the WAL into the memtable, dropping at most a torn (never
//    acknowledged) tail record.
//  * Every flush/compaction appends a CRC-framed delta record to the
//    append-only MANIFEST (compacted back to a single snapshot record
//    every manifest_compact_threshold deltas); obsolete SSTs are
//    unlinked only after the delta that retires them is durable.
//  * v3 SSTs carry a CRC32C per data block in the index handle; a
//    flipped byte surfaces as a Corruption status (Seek's status
//    out-param, VerifyChecksums), never as silently wrong bytes.
//
// Write failures surface as proteus::Status from Put/Delete/Flush/Open
// instead of stderr prints. Compactions run synchronously on the writing
// thread (deterministic and sufficient for reproducing the paper's
// read-path effects). Put/Delete are safe to call from multiple threads
// (that is what group commit is for); Seek and the maintenance calls
// (Flush/CompactAll/stats) assume no concurrent writers, as before.
// Caveat: two threads racing Puts to the SAME key commit to the WAL and
// apply to the memtable in independently-chosen orders, so replay after
// a crash may resolve that race differently than the pre-crash memtable
// did (last-writer-wins either way; see ROADMAP "sequence numbers").

#ifndef PROTEUS_LSM_DB_H_
#define PROTEUS_LSM_DB_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "engine/scheduler.h"
#include "lsm/block_cache.h"
#include "lsm/filter_policy.h"
#include "lsm/query_queue.h"
#include "lsm/skiplist.h"
#include "lsm/sst.h"
#include "lsm/wal.h"
#include "util/status.h"

namespace proteus {

struct DbOptions {
  std::string dir = "/tmp/proteus_db";
  size_t memtable_bytes = 8u << 20;
  size_t sst_target_bytes = 16u << 20;  // per compaction-output file
  size_t block_size = 4096;
  uint64_t block_cache_bytes = 64u << 20;
  int l0_compaction_trigger = 4;
  uint64_t l1_size_bytes = 64u << 20;
  double level_size_multiplier = 10.0;
  /// Levels >= this are compressed (the paper leaves L0/L1 raw and
  /// compresses deeper levels; Section 6.1).
  int compress_min_level = 2;
  /// Write-ahead logging. With use_wal off, durability regresses to the
  /// pre-WAL contract (clean close is lossless, kill -9 loses the
  /// memtable). wal_sync=false acknowledges after the OS write but
  /// before fdatasync (group commit still batches the writes).
  bool use_wal = true;
  bool wal_sync = true;
  /// MANIFEST delta records appended since the last full snapshot before
  /// the log is compacted back into one snapshot record.
  size_t manifest_compact_threshold = 16;
  std::shared_ptr<FilterPolicy> filter_policy;  // null = no filters
  SampleQueryQueue::Options queue_options;
};

struct DbStats {
  uint64_t puts = 0;
  uint64_t deletes = 0;
  uint64_t seeks = 0;
  uint64_t empty_seeks = 0;
  uint64_t filter_checks = 0;
  uint64_t filter_negatives = 0;
  uint64_t sst_seeks = 0;             // files actually probed on disk
  uint64_t false_positive_files = 0;  // filter passed, file had nothing
  uint64_t read_errors = 0;   // data-block CRC/checksum failures in Seek
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t filter_build_ns = 0;
  uint64_t filter_bits_built = 0;
  uint64_t keys_filtered = 0;   // keys covered by built filters
  uint64_t filter_loads = 0;    // filters deserialized from SST blocks
  uint64_t filter_rebuilds = 0;  // recovery fallbacks: block missing/corrupt
  uint64_t wal_replayed = 0;     // records re-applied by Db::Open
  uint64_t manifest_deltas = 0;     // delta records appended
  uint64_t manifest_snapshots = 0;  // snapshot rewrites (incl. compaction)
  uint64_t queue_sampled = 0;    // empty queries recorded in the sample queue

  /// Observed per-file FPR: of the filter passes that led to an SST
  /// probe, the fraction that found nothing in range — the live
  /// counterpart of the CPFPR model's predicted FPR.
  double ObservedFileFpr() const {
    return sst_seeks == 0 ? 0.0
                          : static_cast<double>(false_positive_files) /
                                static_cast<double>(sst_seeks);
  }
};

/// One query's outcome in a MultiSeek batch: the Seek(lo, hi) contract
/// (smallest live key in range, first read error in `status`), amortized
/// across the batch.
struct MultiSeekResult {
  bool found = false;
  std::string key;
  std::string value;
  Status status;
};

class Db {
 public:
  /// Creates a FRESH database: wipes any SST files, manifest, and WAL
  /// left in `options.dir`. Use Open() to resume an existing database.
  explicit Db(DbOptions options);

  /// Reopens a database previously closed (or killed) in `options.dir`:
  /// replays the MANIFEST delta log, reattaches every SST, reloads
  /// persisted filter blocks (stats().filter_loads; rebuilt from keys
  /// only when a block is missing or corrupt), and replays the WAL into
  /// the memtable (stats().wal_replayed). A missing manifest yields an
  /// empty database; a corrupt manifest record or unreadable SST fails
  /// Open with a non-OK status rather than silently dropping data. A
  /// torn WAL or MANIFEST tail — crash debris from an unacknowledged
  /// write — is truncated away, not an error.
  static std::unique_ptr<Db> Open(DbOptions options,
                                  Status* status = nullptr);

  /// Flushes the memtable and persists the manifest, so a subsequent
  /// Open() sees every key without WAL replay.
  ~Db();
  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  /// Inserts or overwrites. Returns once the write is durable in the
  /// WAL (see DbOptions::wal_sync) and applied to the memtable; a
  /// non-OK status means the write was rejected and is NOT visible.
  /// If the flush this write triggers (memtable full) fails, the write
  /// itself is still durable and Put returns OK; the flush failure is
  /// remembered and rejects every SUBSEQUENT write until an explicit
  /// Flush()/CompactAll() succeeds (see background_error()).
  Status Put(std::string_view key, std::string_view value);

  /// Removes a key (writes a tombstone that shadows older versions and
  /// is dropped by bottom-level compaction). Same durability as Put.
  Status Delete(std::string_view key);

  /// Closed Seek: finds the smallest live key in [lo, hi]. Returns true
  /// and fills key/value (if non-null) when found; false for an empty
  /// range. Empty results feed the sample query queue. Data-block
  /// corruption makes the affected file contribute nothing: the first
  /// failure is reported through `status` (Corruption/IOError) and
  /// counted in stats().read_errors, so a caller that passes `status`
  /// can tell "key absent" from "file unreadable" (the result may then
  /// be stale if the damaged file held a newer version).
  bool Seek(std::string_view lo, std::string_view hi,
            std::string* key = nullptr, std::string* value = nullptr,
            Status* status = nullptr);

  /// Batched Seek: answers every query in `batch` with exactly the
  /// Seek() results, but amortizes the tree walk across the batch. The
  /// scheduler fixes the execution order (see engine/scheduler.h); the
  /// engine then visits each overlapping SST once, takes all of the
  /// batch's filter verdicts for that file in one MultiMayContain call,
  /// and probes only the passing queries — so with a key-sorted order
  /// one file's filter and data blocks stay hot for the whole batch
  /// instead of being re-fetched per query. Queries whose newest match
  /// is a tombstone fall back to the single-query resume path. Like
  /// Seek, empty results feed the sample query queue with their
  /// original bounds. Assumes no concurrent writers.
  void MultiSeek(const QueryBatch& batch, const Scheduler& scheduler,
                 std::vector<MultiSeekResult>* results);

  /// Forces a MemTable flush (and any triggered compactions). Success
  /// clears a pending background error (the stuck memtable is durable
  /// now); failure sets it.
  Status Flush();

  /// The sticky failure from a flush/compaction triggered inside a
  /// write. While non-OK, Put/Delete are rejected (nothing new becomes
  /// visible); a successful explicit Flush()/CompactAll() clears it.
  Status background_error() const;

  /// Compacts until every level is within its size limit and L0 is empty
  /// (the paper's "wait for all background compactions" setup step).
  Status CompactAll();

  /// Reads every data block of every SST, verifying per-block CRCs and
  /// in-block checksums. First damage found is returned as Corruption.
  Status VerifyChecksums() const;

  SampleQueryQueue& query_queue() { return query_queue_; }
  const SampleQueryQueue& query_queue() const { return query_queue_; }

  /// The live workload sample the next flush's filters will be built
  /// from (the queue's current snapshot).
  std::vector<std::pair<std::string, std::string>> SampledQueries() const {
    return query_queue_.Snapshot();
  }

  const DbStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DbStats{}; }
  BlockCache& cache() { return cache_; }

  /// WAL group-commit counters (zeros when use_wal is off).
  WalWriter::Stats wal_stats() const;

  /// Files per level (diagnostics / tests).
  std::vector<size_t> LevelFileCounts() const;
  uint64_t TotalSstBytes() const;
  uint64_t TotalFilterBits() const;
  uint64_t TotalKeys() const;

  /// Test hook: simulate kill -9. Drops the memtable and closes the WAL
  /// without flushing; the destructor then does nothing. Acknowledged
  /// writes must come back through WAL replay on the next Open().
  void TEST_CrashClose();

  /// Test hook: the live WAL writer (null when use_wal is off).
  WalWriter* TEST_wal() { return wal_.get(); }

 private:
  struct FileMeta {
    uint64_t id = 0;
    std::string path;
    std::string smallest, largest;
    uint64_t n_entries = 0;
    uint64_t file_size = 0;
    bool tagged_values = true;  // v3 SSTs store tombstone-tagged values
    std::unique_ptr<SstReader> reader;
    std::unique_ptr<SstFilter> filter;
  };
  using FilePtr = std::shared_ptr<FileMeta>;

  /// One atomic change to the LSM tree, as recorded in the MANIFEST
  /// delta log: files added (with their level) and file ids retired.
  struct ManifestEdit {
    std::vector<std::pair<uint64_t, FilePtr>> added;
    std::vector<uint64_t> deleted;
  };

  Db(DbOptions options, bool wipe_existing);

  Status WriteInternal(uint8_t op, std::string_view key,
                       std::string_view value);

  /// The Seek cursor loop starting at `cursor` (tombstones advance the
  /// cursor and retry). No empty-query accounting: callers own that,
  /// because the sample queue must see the ORIGINAL query bounds, not a
  /// tombstone-advanced cursor. Read errors accumulate into
  /// `first_error` (first one wins) and stats_.read_errors.
  bool SeekLoop(std::string cursor, std::string_view hi, std::string* key,
                std::string* value, Status* first_error);

  /// Empty-result bookkeeping shared by Seek and MultiSeek: counts the
  /// empty seek and offers the query to the sample queue.
  void RecordEmptySeek(std::string_view lo, std::string_view hi);

  /// Writes SSTs from a sorted entry stream of internal (tagged) values;
  /// builds their filters. Tombstones are skipped entirely when
  /// `drop_tombstones` (bottom-level compaction).
  template <typename Iter>
  Status WriteSstFiles(Iter&& entries, int target_level,
                       size_t max_data_bytes, bool drop_tombstones,
                       std::vector<FilePtr>* out);

  Status FinishFile(SstWriter* writer, std::vector<std::string>* keys,
                    const std::string& path, FilePtr* out);

  /// Charges the filter's pinned bytes to the block cache.
  void ChargeFilter(const FileMeta& meta);

  // --- MANIFEST delta log ---
  std::string ManifestPath() const { return options_.dir + "/MANIFEST"; }
  std::string WalPath() const { return options_.dir + "/WAL"; }
  /// Appends one CRC-framed delta record (fsync'd); rewrites the log as
  /// a single snapshot every manifest_compact_threshold deltas.
  Status AppendManifestDelta(const ManifestEdit& edit);
  /// Atomically replaces the MANIFEST with one snapshot of levels_.
  Status WriteManifestSnapshot();
  /// Rebuilds levels_ (and filters) from the MANIFEST delta log, then
  /// replays the WAL into the memtable.
  Status RecoverAll();
  Status RecoverManifest(bool* torn_tail);
  Status ReplayWal();
  /// Unlinks *.sst files the recovered manifest does not reference —
  /// debris of a crash between a manifest append and the matching
  /// unlink (or SST write); without this each crash leaks disk forever.
  void RemoveOrphanSsts();

  /// Reattaches one recovered SST: opens the reader, loads the persisted
  /// filter block, or rebuilds the filter from keys as a fallback.
  Status LoadFile(const FilePtr& meta);

  Status FlushLocked();
  Status MaybeCompact();
  Status CompactL0();
  Status CompactLevel(size_t level);
  uint64_t LevelLimitBytes(size_t level) const;
  uint64_t LevelBytes(size_t level) const;
  bool LevelsBelowEmpty(size_t first_level) const;
  void DropFile(const FilePtr& f);  // cache eviction + unlink

  DbOptions options_;
  BlockCache cache_;
  SampleQueryQueue query_queue_;
  SkipList mem_;
  size_t mem_bytes_ = 0;
  uint64_t next_file_id_ = 1;
  // levels_[0]: newest-first overlapping files; levels_[n>=1]: sorted by
  // smallest key, non-overlapping.
  std::vector<std::vector<FilePtr>> levels_;
  std::vector<size_t> compact_cursor_;  // round-robin pick per level
  DbStats stats_;

  // Writers hold flush_mu_ shared around {WAL commit, memtable apply};
  // Flush (which resets the WAL) holds it exclusively, so a reset can
  // never race a commit and drop an acknowledged-but-unflushed record.
  std::shared_mutex flush_mu_;
  std::mutex mem_mu_;  // memtable + write counters under shared flush_mu_
  std::unique_ptr<WalWriter> wal_;
  Status wal_error_;  // non-OK when the WAL could not be opened at create
  // Sticky failure from flush/compaction (written under exclusive
  // flush_mu_, read under shared): rejects writes until a flush succeeds.
  Status bg_error_;
  int manifest_fd_ = -1;
  size_t manifest_deltas_since_snapshot_ = 0;
  bool crashed_ = false;  // TEST_CrashClose: destructor skips the flush
};

}  // namespace proteus

#endif  // PROTEUS_LSM_DB_H_
