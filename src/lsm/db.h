// miniLSM — the storage engine standing in for RocksDB in Sections 6–7
// (see DESIGN.md substitutions).
//
// Architecture (mirroring the paper's description of RocksDB):
//  * a multi-version skiplist MemTable buffering writes (every version
//    carries the sequence number its write committed at),
//  * a write-ahead log (src/lsm/wal.h): every Put/Delete is CRC-framed,
//    stamped with its seqno, and group-committed to a WAL segment before
//    it is acknowledged, so a process kill between flushes loses nothing,
//  * L0 SST files flushed from immutable memtables on a background
//    thread (overlapping ranges, newest first),
//  * levels L1..Lmax of range-partitioned, non-overlapping SST files
//    with leveled compaction (size ratio between levels), also run in
//    the background,
//  * a per-SST filter built at flush/compaction time by the configured
//    FilterPolicy from the SST's keys and the sample query queue,
//  * an LRU block cache for data blocks; index blocks and filters stay
//    pinned in memory (Section 6.2's tuning),
//  * closed Seek(lo, hi): consult every overlapping SST's filter first,
//    then fetch the smallest key >= lo only from files whose filter
//    passes (Section 6.1, "Range Query Implementation").
//
// Concurrency & MVCC (docs/ARCHITECTURE.md "Threading & MVCC"):
//  * Writers queue behind a group-commit leader that assigns monotonic
//    sequence numbers and appends the whole batch to the WAL in one
//    critical section — WAL order, seqno order, and crash-replay order
//    are identical. The memtable APPLY is parallel: the active memtable
//    is a MemTableSet of concurrent skiplist shards (key-hash routed,
//    DbOptions::memtable_shards), and after the WAL append each batch
//    follower inserts its own entry into its shard concurrently; the
//    leader publishes last_seqno_ only after every apply lands, so
//    readers never see a committed horizon with holes.
//  * Readers never take the writer path's locks: Seek/MultiSeek pin an
//    immutable view (active memtable + a copy-on-write Version of the
//    immutable memtables and SST levels) under one brief mutex, then run
//    lock-free. Retired SSTs stay readable until the last view drops.
//  * GetSnapshot() pins a sequence horizon: a reader carrying it sees
//    exactly the versions committed at or before that point, regardless
//    of concurrent writes, flushes, or compactions. Compaction keeps the
//    newest version per live-snapshot stripe and drops the rest.
//  * Flush and compaction run on a background TaskPool; writers stall
//    (bounded immutable-memtable count) instead of doing maintenance
//    inline. stats().write_stalls / stall_wait_us account for it.
//
// Durability contract (docs/FORMAT.md has the byte-level formats):
//  * Put/Delete return only after their WAL record is fsync'd (group
//    commit batches concurrent writers into one fsync); Db::Open replays
//    the WAL segments into the memtable, dropping at most a torn (never
//    acknowledged) tail record.
//  * Every flush/compaction appends a CRC-framed delta record to the
//    append-only MANIFEST (compacted back to a single snapshot record
//    every manifest_compact_threshold deltas); obsolete SSTs are
//    unlinked only after the delta that retires them is durable and no
//    in-flight read still holds them.
//  * v3+ SSTs carry a CRC32C per data block in the index handle; a
//    flipped byte surfaces as a Corruption status (SeekResult::status,
//    VerifyChecksums), never as silently wrong bytes.
//
// All public methods are thread-safe unless noted. Write failures
// surface as proteus::Status from Put/Delete/Flush/Open.

#ifndef PROTEUS_LSM_DB_H_
#define PROTEUS_LSM_DB_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "engine/scheduler.h"
#include "lsm/block_cache.h"
#include "lsm/drift.h"
#include "lsm/filter_policy.h"
#include "lsm/ikey.h"
#include "lsm/memtable.h"
#include "lsm/query_queue.h"
#include "lsm/skiplist.h"
#include "lsm/sst.h"
#include "lsm/task_pool.h"
#include "lsm/wal.h"
#include "util/status.h"

namespace proteus {

class Db;

/// Abstract sorted stream of entry versions (key asc, seqno desc) — the
/// input of SST building. Implementations live in db.cc (memtable dumps,
/// k-way SST merges, the snapshot-aware collapse filter).
class EntrySource;

/// A pinned sequence horizon from Db::GetSnapshot(). Reads carrying one
/// (ReadOptions::snapshot) see exactly the state as of this sequence —
/// later commits are invisible, and compaction keeps the versions the
/// snapshot needs until the handle is released. The Db must outlive
/// every snapshot taken from it.
class Snapshot {
 public:
  uint64_t sequence() const { return seqno_; }

 private:
  friend class Db;
  explicit Snapshot(uint64_t seqno) : seqno_(seqno) {}
  const uint64_t seqno_;
};

/// Per-read knobs for Seek/MultiSeek.
struct ReadOptions {
  /// Read as of this pinned horizon; null reads the latest committed
  /// state (the default).
  const Snapshot* snapshot = nullptr;
  /// Verify the per-block CRC32C on data-block reads that miss the
  /// cache. The in-block checksum is always verified.
  bool verify_checksums = true;
  /// Insert data blocks read on behalf of this query into the block
  /// cache. Turn off for scans that should not evict the hot set.
  bool fill_cache = true;
};

/// Per-write knobs for Put/Delete.
struct WriteOptions {
  /// fdatasync the WAL batch before acknowledging. The effective sync is
  /// `sync && DbOptions::wal_sync`, so a database opened with
  /// wal_sync=false never syncs regardless of this flag.
  bool sync = true;
};

/// How the filter budget is spread across levels (DbOptions::bpk_policy).
enum class BpkPolicy {
  /// Every SST gets the filter spec's own bits-per-key.
  kFixed,
  /// Monkey-style: the same global budget, split across levels by
  /// marginal false-positive reduction per bit (model/bpk_alloc.h).
  /// Needs a filter spec with an explicit bpk parameter; other specs
  /// silently behave like kFixed.
  kMonkey,
};

struct DbOptions {
  std::string dir = "/tmp/proteus_db";
  size_t memtable_bytes = 8u << 20;
  size_t sst_target_bytes = 16u << 20;  // per compaction-output file
  size_t block_size = 4096;
  uint64_t block_cache_bytes = 64u << 20;
  int l0_compaction_trigger = 4;
  uint64_t l1_size_bytes = 64u << 20;
  double level_size_multiplier = 10.0;
  /// Levels >= this are compressed (the paper leaves L0/L1 raw and
  /// compresses deeper levels; Section 6.1).
  int compress_min_level = 2;
  /// Write-ahead logging. With use_wal off, durability regresses to the
  /// pre-WAL contract (clean close is lossless, kill -9 loses the
  /// memtable). wal_sync=false acknowledges after the OS write but
  /// before fdatasync (group commit still batches the writes).
  bool use_wal = true;
  bool wal_sync = true;
  /// A WAL segment reaching this size triggers a memtable flush (and a
  /// rotation to a fresh segment), bounding crash-replay time even when
  /// the memtable itself is under memtable_bytes.
  size_t wal_segment_bytes = 8u << 20;
  /// Writers stall once this many immutable memtables await flushing —
  /// the backpressure that keeps an outrun flusher from buffering
  /// unbounded memory. stats().write_stalls counts the stalls.
  size_t max_immutable_memtables = 2;
  /// Threads in the background maintenance pool (flush + compaction).
  size_t background_threads = 2;
  /// Concurrent skiplist shards per memtable (rounded up to a power of
  /// two, max 256). Writes route by user-key hash; batch followers apply
  /// to their shards in parallel. 1 = the single-skiplist layout.
  size_t memtable_shards = 4;
  /// MANIFEST delta records appended since the last full snapshot before
  /// the log is compacted back into one snapshot record.
  size_t manifest_compact_threshold = 16;
  std::shared_ptr<FilterPolicy> filter_policy;  // null = no filters
  SampleQueryQueue::Options queue_options;
  /// Per-level filter budget allocation (see BpkPolicy).
  BpkPolicy bpk_policy = BpkPolicy::kFixed;
  /// Continuous self-design: background maintenance rewrites an SST in
  /// place — re-running Sample() -> Design() -> Build() with the live
  /// query window — once the drift detector flags its filter as designed
  /// for a workload that no longer exists (stats().redesigns counts the
  /// rewrites). Off = every design is frozen at first build.
  bool adaptive_redesign = true;
  /// Thresholds for the drift detector (src/lsm/drift.h).
  DriftOptions drift;
};

/// A point-in-time copy of the Db's counters (stats() snapshots the
/// internal relaxed atomics — the counters are mutated concurrently by
/// readers, the write leader, and background maintenance).
struct DbStats {
  uint64_t puts = 0;
  uint64_t deletes = 0;
  uint64_t seeks = 0;
  uint64_t empty_seeks = 0;
  uint64_t filter_checks = 0;
  uint64_t filter_negatives = 0;
  uint64_t sst_seeks = 0;             // files actually probed on disk
  uint64_t false_positive_files = 0;  // filter passed, file had nothing
  uint64_t read_errors = 0;   // data-block CRC/checksum failures in Seek
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t filter_build_ns = 0;
  uint64_t filter_bits_built = 0;
  uint64_t keys_filtered = 0;   // keys covered by built filters
  uint64_t filter_loads = 0;    // filters deserialized from SST blocks
  uint64_t filter_rebuilds = 0;  // recovery fallbacks: block missing/corrupt
  uint64_t wal_replayed = 0;     // records re-applied by Db::Open
  uint64_t wal_rotations = 0;    // segment files rotated in
  uint64_t manifest_deltas = 0;     // delta records appended
  uint64_t manifest_snapshots = 0;  // snapshot rewrites (incl. compaction)
  uint64_t queue_sampled = 0;    // empty queries recorded in the sample queue
  uint64_t write_stalls = 0;     // writer batches that hit the imm limit
  uint64_t stall_wait_us = 0;    // total time writers spent stalled
  uint64_t drift_detected = 0;   // SSTs flagged by the drift detector
  uint64_t redesigns = 0;        // drift-triggered single-file rewrites

  /// Entries applied per memtable shard (index = shard id, cumulative
  /// across memtable rotations, including WAL replay). A flat histogram
  /// means the key-hash routing is spreading the write load.
  std::vector<uint64_t> shard_applies;
  /// Bytes reserved by the live memtables' arenas (active + immutable).
  uint64_t memtable_arena_bytes = 0;

  /// Per-level breakdown of filter checks / sst_seeks /
  /// false_positive_files (index = level; sized to the deepest level
  /// that saw filter traffic). Checks count only files that have a
  /// filter.
  std::vector<uint64_t> level_filter_checks;
  std::vector<uint64_t> level_sst_seeks;
  std::vector<uint64_t> level_fp_files;

  /// Observed per-file FPR: of the filter passes that led to an SST
  /// probe, the fraction that found nothing in range — the live
  /// counterpart of the CPFPR model's predicted FPR.
  double ObservedFileFpr() const {
    return sst_seeks == 0 ? 0.0
                          : static_cast<double>(false_positive_files) /
                                static_cast<double>(sst_seeks);
  }

  /// One level's live FPR: false positives over the filter checks whose
  /// range was empty at that level (checks minus true-positive probes) —
  /// directly comparable to the designs' modeled FPR.
  double LevelObservedFpr(size_t level) const {
    if (level >= level_filter_checks.size()) return 0.0;
    const uint64_t tp = level_sst_seeks[level] - level_fp_files[level];
    if (level_filter_checks[level] <= tp) return 0.0;
    return static_cast<double>(level_fp_files[level]) /
           static_cast<double>(level_filter_checks[level] - tp);
  }
};

/// One range query's outcome: the smallest live key in [lo, hi] visible
/// at the read's snapshot horizon, or found=false. The first data-block
/// read error encountered (Corruption/IOError) lands in `status`, so a
/// caller can tell "key absent" from "file unreadable" (the result may
/// then be stale if the damaged file held a newer version).
struct SeekResult {
  bool found = false;
  std::string key;
  std::string value;
  Status status;
};

/// MultiSeek answers each query with exactly the Seek() result.
using MultiSeekResult = SeekResult;

class Db {
 public:
  /// Creates a FRESH database in `options.dir`, wiping any SST files,
  /// manifest, and WAL segments left there. Use Open() to resume an
  /// existing database. Returns {nullptr, error} when the directory or
  /// WAL cannot be set up.
  static std::pair<std::unique_ptr<Db>, Status> Create(DbOptions options);

  /// Reopens a database previously closed (or killed) in `options.dir`:
  /// replays the MANIFEST delta log, reattaches every SST, reloads
  /// persisted filter blocks (stats().filter_loads; rebuilt from keys
  /// only when a block is missing or corrupt), and replays the WAL
  /// segments into the memtable at their recorded seqnos
  /// (stats().wal_replayed) — so recovery reproduces the exact pre-crash
  /// write order. A missing manifest yields an empty database; a corrupt
  /// manifest record or unreadable SST fails Open with a non-OK status
  /// rather than silently dropping data. A torn WAL or MANIFEST tail —
  /// crash debris from an unacknowledged write — is truncated away, not
  /// an error.
  static std::pair<std::unique_ptr<Db>, Status> Open(DbOptions options);

  /// Flushes the memtable and persists the manifest, so a subsequent
  /// Open() sees every key without WAL replay. Joins the background
  /// maintenance pool first.
  ~Db();
  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  /// Inserts a new version of `key`. Returns once the write is durable
  /// in the WAL (see WriteOptions::sync) and applied to the memtable; a
  /// non-OK status means the write was rejected and is NOT visible.
  /// Concurrent callers are batched by a group-commit leader that also
  /// assigns the write's sequence number. If background maintenance has
  /// failed, the sticky background_error() rejects writes until an
  /// explicit Flush()/CompactAll() succeeds.
  Status Put(std::string_view key, std::string_view value,
             const WriteOptions& options = {});

  /// Removes a key (writes a tombstone version that shadows older ones
  /// and is dropped by bottom-level compaction once no snapshot needs
  /// it). Same durability as Put.
  Status Delete(std::string_view key, const WriteOptions& options = {});

  /// Pins the current sequence horizon. Reads passing the returned
  /// snapshot in ReadOptions see the database exactly as of this call;
  /// flushes and compactions preserve the pinned versions until the
  /// handle is released (dropped). The Db must outlive the handle.
  std::shared_ptr<const Snapshot> GetSnapshot();

  /// Closed Seek: finds the smallest live key in [lo, hi] visible at the
  /// read's snapshot horizon (options.snapshot, or the latest committed
  /// state). Empty results feed the sample query queue. Safe to call
  /// concurrently with writes and background maintenance.
  SeekResult Seek(std::string_view lo, std::string_view hi,
                  const ReadOptions& options = {});

  /// Batched Seek: answers every query in `batch` with exactly the
  /// Seek() results, but amortizes the tree walk across the batch. The
  /// scheduler fixes the execution order (see engine/scheduler.h); the
  /// engine then visits each overlapping SST once, takes all of the
  /// batch's filter verdicts for that file in one MultiMayContain call,
  /// and probes only the passing queries — so with a key-sorted order
  /// one file's filter and data blocks stay hot for the whole batch
  /// instead of being re-fetched per query. The whole batch resolves
  /// against ONE pinned view and one snapshot horizon, so its answers
  /// are mutually consistent even while writers commit concurrently.
  void MultiSeek(const QueryBatch& batch, const Scheduler& scheduler,
                 std::vector<MultiSeekResult>* results,
                 const ReadOptions& options = {});

  /// Forces a flush of the memtable (and any triggered compactions),
  /// synchronously. Success clears a pending background error (the
  /// stuck data is durable now); failure sets it.
  Status Flush();

  /// The sticky failure from background flush/compaction. While non-OK,
  /// Put/Delete are rejected (nothing new becomes visible); a successful
  /// explicit Flush()/CompactAll() clears it.
  Status background_error() const;

  /// Compacts until every level is within its size limit and L0 is empty
  /// (the paper's "wait for all background compactions" setup step).
  Status CompactAll();

  /// Blocks until no background maintenance is queued or running.
  void WaitForBackground();

  /// Reads every data block of every SST, verifying per-block CRCs and
  /// in-block checksums. First damage found is returned as Corruption.
  Status VerifyChecksums() const;

  /// Highest committed sequence number (what a new snapshot would pin).
  uint64_t LastSequence() const {
    return last_seqno_.load(std::memory_order_acquire);
  }

  SampleQueryQueue& query_queue() { return query_queue_; }
  const SampleQueryQueue& query_queue() const { return query_queue_; }

  /// The live workload sample the next flush's filters will be built
  /// from (the queue's current snapshot).
  std::vector<std::pair<std::string, std::string>> SampledQueries() const {
    return query_queue_.Snapshot();
  }

  DbStats stats() const;
  void ResetStats();
  BlockCache& cache() { return cache_; }

  /// WAL group-commit counters (zeros when use_wal is off). Cumulative
  /// across segment rotations.
  WalWriter::Stats wal_stats() const;

  /// Files per level (diagnostics / tests).
  std::vector<size_t> LevelFileCounts() const;
  uint64_t TotalSstBytes() const;
  uint64_t TotalFilterBits() const;
  /// Live entry versions: memtable + immutable memtables + SST entries.
  uint64_t TotalKeys() const;

  /// Test hook: simulate kill -9. Joins background maintenance, drops
  /// the memtables, and closes the WAL without flushing; the destructor
  /// then does nothing. Acknowledged writes must come back through WAL
  /// replay on the next Open().
  void TEST_CrashClose();

  /// Test hook: the live WAL writer (null when use_wal is off).
  WalWriter* TEST_wal() { return wal_.get(); }

  /// Design provenance and live probe counters of one resident SST
  /// (diagnostics / tests; snapshot of concurrently updated counters).
  struct SstDesignInfo {
    uint64_t file_id = 0;
    int level = 0;
    uint64_t design_epoch = 0;       // 0 = legacy (pre-provenance) design
    double modeled_fpr = -1.0;       // model's promise (< 0: none)
    double design_signature = -1.0;  // query-window signature at design
    uint64_t design_samples = 0;     // queue.sampled() at design time
    uint64_t checks = 0;             // filter consultations
    uint64_t probes = 0;             // filter passes that probed the SST
    uint64_t false_positives = 0;    // of those, probes finding nothing
    uint64_t filter_bits = 0;
    bool drift_flagged = false;

    /// Live FPR: false positives over empty-range checks (see
    /// drift.h's ObservedFpr; same formula).
    double ObservedFpr() const {
      const uint64_t true_positives = probes - false_positives;
      if (checks <= true_positives) return 0.0;
      return static_cast<double>(false_positives) /
             static_cast<double>(checks - true_positives);
    }
  };

  /// One entry per live SST, L0 first.
  std::vector<SstDesignInfo> DesignInfo() const;

 private:
  struct FileMeta {
    uint64_t id = 0;
    std::string path;
    std::string smallest, largest;
    uint64_t n_entries = 0;
    uint64_t file_size = 0;
    uint32_t format_version = 4;  // footer generation (value encoding)
    std::unique_ptr<SstReader> reader;
    std::unique_ptr<SstFilter> filter;
    // The level the file lives at (set at install/recovery) — feeds the
    // per-level stats and lets a redesign rewrite in place.
    int level = 0;
    // Design provenance, persisted in MANIFEST v4 (negative doubles =
    // not available; design_epoch 0 = legacy pre-provenance design).
    uint64_t design_epoch = 0;
    double modeled_fpr = -1.0;
    double design_signature = -1.0;
    uint64_t design_samples = 0;
    // Live observed-FPR evidence, updated lock-free by readers and
    // persisted at manifest snapshots so drift detection survives
    // reopen. drift_flagged latches the detector's verdict until a
    // background redesign retires the file.
    mutable std::atomic<uint64_t> checks{0};
    mutable std::atomic<uint64_t> probes{0};
    mutable std::atomic<uint64_t> false_positives{0};
    mutable std::atomic<bool> drift_flagged{false};
    // Retired by a compaction: unlink on destruction. The last ReadView
    // holding the containing Version keeps the file readable until then.
    std::atomic<bool> obsolete{false};
    ~FileMeta();
  };
  using FilePtr = std::shared_ptr<FileMeta>;

  using MemPtr = std::shared_ptr<MemTableSet>;

  /// An immutable picture of everything except the active memtable.
  /// Swapped atomically (under view_mu_); never mutated in place.
  struct Version {
    std::vector<MemPtr> imm;  // newest first
    // levels[0]: newest-first overlapping files; levels[n>=1]: sorted by
    // smallest key, non-overlapping.
    std::vector<std::vector<FilePtr>> levels;
  };
  using VersionPtr = std::shared_ptr<const Version>;

  /// What one read operation pins: the structures it walks and the
  /// sequence horizon it resolves visibility against.
  struct ReadView {
    MemPtr mem;
    VersionPtr version;
    uint64_t snapshot = kMaxSequence;
  };

  /// Shared state of one batch's parallel memtable apply, owned by the
  /// leader's stack frame (defined in db.cc).
  struct ApplyGroup;

  /// One queued write, owned by the caller's stack frame.
  struct Writer {
    uint8_t tag;  // kTagValue | kTagTombstone
    std::string_view key, value;
    bool sync;
    uint64_t seqno = 0;
    Status status;
    bool done = false;
    /// Set (under write_mu_) by the leader after the WAL append: the
    /// follower applies its own entry to the memtable and decrements the
    /// group's pending count instead of idling until commit.
    ApplyGroup* apply = nullptr;
  };

  /// One atomic change to the LSM tree, as recorded in the MANIFEST
  /// delta log: files added (with their level) and file ids retired.
  struct ManifestEdit {
    std::vector<std::pair<uint64_t, FilePtr>> added;
    std::vector<uint64_t> deleted;
  };

  Db(DbOptions options, bool wipe_existing);

  Status WriteInternal(uint8_t tag, std::string_view key,
                       std::string_view value, const WriteOptions& wopts);
  /// Leader body: stall, assign seqnos, WAL append, parallel memtable
  /// apply (followers insert their own entries), commit-point publish.
  Status CommitBatch(const std::vector<Writer*>& batch, bool* need_maintenance);
  /// Inserts one writer's entry into `mem` and bumps its shard counter.
  void ApplyWriter(MemTableSet* mem, const Writer& w);

  ReadView AcquireReadView(const ReadOptions& ro) const;

  /// The Seek cursor loop starting at `cursor` (tombstones advance the
  /// cursor and retry). No empty-query accounting: callers own that,
  /// because the sample queue must see the ORIGINAL query bounds, not a
  /// tombstone-advanced cursor. Read errors accumulate into
  /// `first_error` (first one wins) and stats_.read_errors.
  bool SeekLoop(const ReadView& view, const ReadOptions& ro,
                std::string cursor, std::string_view hi, std::string* key,
                std::string* value, Status* first_error);

  /// Empty-result bookkeeping shared by Seek and MultiSeek: counts the
  /// empty seek and offers the query to the sample queue.
  void RecordEmptySeek(std::string_view lo, std::string_view hi);

  /// Writes SSTs from a sorted (key asc, seqno desc) entry stream;
  /// builds their filters. File boundaries never split a key's version
  /// run, so sorted levels stay point-disjoint. Tombstone dropping and
  /// snapshot-stripe collapse happen upstream (the CollapseSource the
  /// callers wrap around their merge).
  Status WriteSstFiles(EntrySource& entries, int target_level,
                       size_t max_data_bytes, std::vector<FilePtr>* out);

  Status FinishFile(SstWriter* writer, std::vector<std::string>* keys,
                    const std::string& path, int target_level, FilePtr* out);

  /// The Monkey per-level bits-per-key for a file of `incoming_keys`
  /// keys landing at `target_level`, or 0 (no override) under kFixed /
  /// no tunable budget. Prices the current tree shape plus the incoming
  /// file through model/bpk_alloc.h.
  double MonkeyBpkForLevel(int target_level, uint64_t incoming_keys) const;

  /// Read-path accounting: `f`'s filter answered `n` queries.
  void NoteFilterChecks(const FileMeta& f, uint64_t n);
  /// A filter pass probed `f` on disk.
  void NoteSstProbe(const FileMeta& f);
  /// ... and the probe found nothing in range (a false positive). Feeds
  /// the drift detector; a firing latches f.drift_flagged and wakes
  /// background maintenance.
  void NoteFalsePositive(const FileMeta& f);

  /// Charges the filter's pinned bytes to the block cache.
  void ChargeFilter(const FileMeta& meta);

  /// Live snapshot horizons, sorted ascending (compaction input).
  std::vector<uint64_t> LiveSnapshots() const;

  // --- write-stall / trigger plumbing ---
  size_t ImmCount() const;
  bool WorkPending() const;
  void MaybeScheduleMaintenance();
  void BackgroundWork();
  /// Swaps the active memtable into the immutable list and rotates the
  /// WAL segment, if the memtable is non-empty and (force or a size
  /// trigger fired). Returns true when a swap happened.
  bool PrepareFlush(bool force);
  void SetBackgroundError(Status s, bool clear_on_ok);

  // --- MANIFEST delta log ---
  std::string ManifestPath() const { return options_.dir + "/MANIFEST"; }
  std::string WalSegmentPath(uint64_t n) const {
    return options_.dir + "/WAL-" + std::to_string(n);
  }
  /// Appends one CRC-framed delta record (fsync'd); rewrites the log as
  /// a single snapshot every manifest_compact_threshold deltas.
  Status AppendManifestDelta(const ManifestEdit& edit);
  /// Atomically replaces the MANIFEST with one snapshot of the tree.
  /// `pending` (may be null) is an edit not yet installed in the
  /// current version — manifest writes happen before the in-memory
  /// install, so a snapshot taken mid-edit must fold it in or the
  /// edit's files vanish from the recovered state.
  Status WriteManifestSnapshot(const ManifestEdit* pending = nullptr);
  /// Rebuilds the tree (and filters) from the MANIFEST delta log, then
  /// replays the WAL segments into the memtable.
  Status RecoverAll();
  Status RecoverManifest(bool* needs_rewrite);
  Status ReplayWalSegments();
  /// Unlinks *.sst files the recovered manifest does not reference —
  /// debris of a crash between a manifest append and the matching
  /// unlink (or SST write); without this each crash leaks disk forever.
  void RemoveOrphanSsts();

  /// Reattaches one recovered SST: opens the reader, loads the persisted
  /// filter block, or rebuilds the filter from keys as a fallback.
  Status LoadFile(const FilePtr& meta);

  /// MANIFEST file-entry codec (v4 adds the design provenance and the
  /// observed-FPR counters; `version` < 4 decodes with legacy defaults).
  static void EncodeFileMeta(std::string* out, const FileMeta& f);
  static bool DecodeFileMeta(std::string_view* cursor, uint64_t version,
                             FileMeta* f);

  // Maintenance bodies; callers hold maint_mu_.
  Status FlushImmLocked();
  Status MaybeCompactLocked();
  Status CompactL0Locked();
  Status CompactLevelLocked(size_t level);
  /// Rewrites every drift-flagged SST in place (same level, same data),
  /// rebuilding its filter from the live query window.
  Status MaybeRedesignLocked();
  Status RedesignFileLocked(size_t level, const FilePtr& input);
  static bool AnyDriftFlagged(const Version& v);
  void DeleteObsoleteWalSegments();
  uint64_t LevelLimitBytes(size_t level) const;
  static uint64_t LevelBytes(const Version& v, size_t level);
  static bool LevelsBelowEmpty(const Version& v, size_t first_level);
  VersionPtr CurrentVersion() const;
  void RetireFile(const FilePtr& f);  // cache eviction + deferred unlink

  // Counter mirror of DbStats in relaxed atomics (hot-path increments
  // from reader, writer, and maintenance threads).
  struct AtomicStats;

  DbOptions options_;
  BlockCache cache_;
  SampleQueryQueue query_queue_;

  // ------------------------------------------------------------------
  // Lock hierarchy (acquire strictly downward; never upward):
  //   maint_mu_  >  pipeline_mu_  >  stall_mu_  >  view_mu_
  // Leaf locks (held only alone): write_mu_, snap_mu_, err_mu_ — except
  // that the stall predicate reads view_mu_ and err_mu_ while holding
  // stall_mu_, which the ordering above already permits.
  // ------------------------------------------------------------------

  // Serializes flush/compaction bodies and all MANIFEST I/O. Only
  // maintenance (and recovery, which is single-threaded) touches levels.
  std::mutex maint_mu_;

  // Excludes the write leader's {WAL append + memtable apply} against
  // the flusher's {WAL rotate + memtable swap}. Readers never take it.
  std::mutex pipeline_mu_;

  // Write queue: arrival order = commit order. The front writer is the
  // group-commit leader.
  std::mutex write_mu_;
  std::condition_variable write_cv_;
  std::deque<Writer*> write_queue_;

  // Writers wait here when the immutable-memtable limit is hit; flush
  // completion signals it.
  std::mutex stall_mu_;
  std::condition_variable stall_cv_;

  // Guards the pointers only (contents are immutable or internally
  // synchronized). Readers copy mem_/version_ under it and move on.
  mutable std::mutex view_mu_;
  MemPtr mem_;
  VersionPtr version_;

  // Seqno assignment: next_seqno_ belongs to the write leader (under
  // pipeline_mu_) and recovery; last_seqno_ publishes the newest
  // committed seqno to readers.
  uint64_t next_seqno_ = 1;
  std::atomic<uint64_t> last_seqno_{0};

  mutable std::mutex snap_mu_;
  std::multiset<uint64_t> live_snapshots_;

  mutable std::mutex err_mu_;
  Status bg_error_;   // sticky: rejects writes until an explicit Flush
  Status wal_error_;  // WAL could not be opened

  std::unique_ptr<WalWriter> wal_;  // one object across segment rotations
  uint64_t wal_number_ = 0;         // active segment (pipeline_mu_)

  std::unique_ptr<TaskPool> pool_;
  std::atomic<bool> maint_scheduled_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<bool> closing_{false};

  // Per-shard apply counters (sized to the rounded shard count at
  // construction; memtable rotations reuse the same shard count).
  std::vector<std::atomic<uint64_t>> shard_applies_;

  uint64_t next_file_id_ = 1;           // maint_mu_ / recovery
  // Stamped into every built filter's provenance; bumped by each
  // redesign wave, so tests can tell a rebuilt filter from its ancestor.
  // Starts at 1: epoch 0 is reserved for legacy (pre-v4) manifests.
  std::atomic<uint64_t> design_epoch_{1};
  std::vector<size_t> compact_cursor_;  // round-robin pick per level
  int manifest_fd_ = -1;
  size_t manifest_deltas_since_snapshot_ = 0;

  std::unique_ptr<AtomicStats> stats_;
};

}  // namespace proteus

#endif  // PROTEUS_LSM_DB_H_
