// miniLSM — the storage engine standing in for RocksDB in Sections 6–7
// (see DESIGN.md substitutions).
//
// Architecture (mirroring the paper's description of RocksDB):
//  * a skiplist MemTable buffering writes,
//  * L0 SST files flushed directly from the MemTable (overlapping ranges,
//    newest first),
//  * levels L1..Lmax of range-partitioned, non-overlapping SST files with
//    leveled compaction (size ratio between levels),
//  * a per-SST filter built at flush/compaction time by the configured
//    FilterPolicy from the SST's keys and the sample query queue,
//  * an LRU block cache for data blocks; index blocks and filters stay
//    pinned in memory (Section 6.2's tuning),
//  * closed Seek(lo, hi): consult every overlapping SST's filter first,
//    then fetch the smallest key >= lo only from files whose filter
//    passes (Section 6.1, "Range Query Implementation").
//
// Compactions run synchronously on the writing thread (deterministic and
// sufficient for reproducing the paper's read-path effects). No WAL: the
// memtable is flushed on clean close instead, and a checksummed MANIFEST
// (level -> SST file list, rewritten atomically at every flush and
// compaction) lets Db::Open reconstruct the tree — and reload every SST's
// persisted filter block — without rebuilding a single filter.

#ifndef PROTEUS_LSM_DB_H_
#define PROTEUS_LSM_DB_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lsm/block_cache.h"
#include "lsm/filter_policy.h"
#include "lsm/query_queue.h"
#include "lsm/skiplist.h"
#include "lsm/sst.h"

namespace proteus {

struct DbOptions {
  std::string dir = "/tmp/proteus_db";
  size_t memtable_bytes = 8u << 20;
  size_t sst_target_bytes = 16u << 20;  // per compaction-output file
  size_t block_size = 4096;
  uint64_t block_cache_bytes = 64u << 20;
  int l0_compaction_trigger = 4;
  uint64_t l1_size_bytes = 64u << 20;
  double level_size_multiplier = 10.0;
  /// Levels >= this are compressed (the paper leaves L0/L1 raw and
  /// compresses deeper levels; Section 6.1).
  int compress_min_level = 2;
  std::shared_ptr<FilterPolicy> filter_policy;  // null = no filters
  SampleQueryQueue::Options queue_options;
};

struct DbStats {
  uint64_t puts = 0;
  uint64_t seeks = 0;
  uint64_t empty_seeks = 0;
  uint64_t filter_checks = 0;
  uint64_t filter_negatives = 0;
  uint64_t sst_seeks = 0;             // files actually probed on disk
  uint64_t false_positive_files = 0;  // filter passed, file had nothing
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t filter_build_ns = 0;
  uint64_t filter_bits_built = 0;
  uint64_t keys_filtered = 0;   // keys covered by built filters
  uint64_t filter_loads = 0;    // filters deserialized from SST blocks
  uint64_t filter_rebuilds = 0;  // recovery fallbacks: block missing/corrupt
};

class Db {
 public:
  /// Creates a FRESH database: wipes any SST files and manifest left in
  /// `options.dir`. Use Open() to resume an existing database.
  explicit Db(DbOptions options);

  /// Reopens a database previously closed in `options.dir`: reads the
  /// manifest, reattaches every SST, and reloads persisted filter blocks
  /// through DeserializeSstFilter (stats().filter_loads) — filters are
  /// only rebuilt from keys when their block is missing or corrupt
  /// (stats().filter_rebuilds). A missing manifest yields an empty
  /// database; a corrupt manifest or unreadable SST fails Open (returns
  /// null and fills `error`) rather than silently dropping data.
  static std::unique_ptr<Db> Open(DbOptions options,
                                  std::string* error = nullptr);

  /// Flushes the memtable and persists the manifest, so a subsequent
  /// Open() sees every key.
  ~Db();
  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  void Put(std::string_view key, std::string_view value);

  /// Closed Seek: finds the smallest key in [lo, hi]. Returns true and
  /// fills key/value (if non-null) when found; false for an empty range.
  /// Empty results feed the sample query queue.
  bool Seek(std::string_view lo, std::string_view hi,
            std::string* key = nullptr, std::string* value = nullptr);

  /// Forces a MemTable flush (and any triggered compactions).
  void Flush();

  /// Compacts until every level is within its size limit and L0 is empty
  /// (the paper's "wait for all background compactions" setup step).
  void CompactAll();

  SampleQueryQueue& query_queue() { return query_queue_; }
  const DbStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DbStats{}; }
  BlockCache& cache() { return cache_; }

  /// Files per level (diagnostics / tests).
  std::vector<size_t> LevelFileCounts() const;
  uint64_t TotalSstBytes() const;
  uint64_t TotalFilterBits() const;
  uint64_t TotalKeys() const;

 private:
  struct FileMeta {
    uint64_t id = 0;
    std::string path;
    std::string smallest, largest;
    uint64_t n_entries = 0;
    uint64_t file_size = 0;
    std::unique_ptr<SstReader> reader;
    std::unique_ptr<SstFilter> filter;
  };
  using FilePtr = std::shared_ptr<FileMeta>;

  Db(DbOptions options, bool wipe_existing);

  /// Writes one SST from a sorted entry stream; builds its filter.
  template <typename Iter>
  std::vector<FilePtr> WriteSstFiles(Iter&& entries, int target_level,
                                     size_t max_data_bytes);

  FilePtr FinishFile(SstWriter* writer, std::vector<std::string>* keys,
                     const std::string& path);

  /// Charges the filter's pinned bytes to the block cache.
  void ChargeFilter(const FileMeta& meta);

  /// Atomically rewrites dir/MANIFEST from the current levels.
  void WriteManifest() const;

  /// Rebuilds levels_ (and filters) from dir/MANIFEST. Returns false and
  /// fills `error` on a corrupt manifest or unreadable SST file.
  bool Recover(std::string* error);

  /// Reattaches one recovered SST: opens the reader, loads the persisted
  /// filter block, or rebuilds the filter from keys as a fallback.
  bool LoadFile(const FilePtr& meta, std::string* error);

  void MaybeCompact();
  void CompactL0();
  void CompactLevel(size_t level);
  uint64_t LevelLimitBytes(size_t level) const;
  uint64_t LevelBytes(size_t level) const;
  void RemoveFile(const FilePtr& f);

  DbOptions options_;
  BlockCache cache_;
  SampleQueryQueue query_queue_;
  SkipList mem_;
  size_t mem_bytes_ = 0;
  uint64_t next_file_id_ = 1;
  // levels_[0]: newest-first overlapping files; levels_[n>=1]: sorted by
  // smallest key, non-overlapping.
  std::vector<std::vector<FilePtr>> levels_;
  std::vector<size_t> compact_cursor_;  // round-robin pick per level
  DbStats stats_;
};

}  // namespace proteus

#endif  // PROTEUS_LSM_DB_H_
