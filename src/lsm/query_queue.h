// The sample query queue (Section 6.1): a fixed-size FIFO of recently
// executed empty range queries. Seeded with an initial sample; updated
// with every `sample_rate`-th executed empty query. Filter construction at
// flush/compaction time snapshots the queue, which is how Proteus (and
// Rosetta) track workload shifts (Section 6.4).
//
// Thread-safe: readers on many threads record empty queries while a
// background flush snapshots the sample set; one mutex covers both.

#ifndef PROTEUS_LSM_QUERY_QUEUE_H_
#define PROTEUS_LSM_QUERY_QUEUE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace proteus {

struct SampleQueueOptions {
  size_t capacity = 20000;     // ~320 KB of queries (Section 6.1)
  uint32_t sample_rate = 100;  // record every 100th empty query
};

class SampleQueryQueue {
 public:
  using Options = SampleQueueOptions;

  explicit SampleQueryQueue(Options options = Options()) : options_(options) {}

  /// Seeds the queue with an initial sample (bypasses rate limiting).
  void Seed(const std::vector<std::pair<std::string, std::string>>& queries) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& q : queries) Push(q.first, q.second);
  }

  /// Records an executed *empty* query, subject to the sampling rate.
  /// Returns true when the query was actually recorded (for the DB's
  /// queue_sampled counter).
  bool OnEmptyQuery(std::string_view lo, std::string_view hi) {
    std::lock_guard<std::mutex> lock(mu_);
    if (++counter_ % options_.sample_rate != 0) return false;
    Push(lo, hi);
    return true;
  }

  /// Snapshot of the current sample set (filter construction input).
  std::vector<std::pair<std::string, std::string>> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return {queue_.begin(), queue_.end()};
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }
  uint64_t seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counter_;
  }

 private:
  void Push(std::string_view lo, std::string_view hi) {  // callers hold mu_
    queue_.emplace_back(std::string(lo), std::string(hi));
    if (queue_.size() > options_.capacity) queue_.pop_front();
  }

  const Options options_;
  mutable std::mutex mu_;
  std::deque<std::pair<std::string, std::string>> queue_;
  uint64_t counter_ = 0;
};

}  // namespace proteus

#endif  // PROTEUS_LSM_QUERY_QUEUE_H_
