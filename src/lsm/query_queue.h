// The sample query queue (Section 6.1): a bounded window of recently
// executed empty range queries. Seeded with an initial sample; updated
// with every `sample_rate`-th executed empty query. Filter construction at
// flush/compaction time snapshots the window, which is how Proteus (and
// Rosetta) track workload shifts (Section 6.4).
//
// Eviction is reservoir-style: once the window is full, each newly
// sampled query overwrites a uniformly random slot. Memory stays capped
// at `capacity` entries, and a resident query's survival probability
// decays geometrically with every later sample — so the window is a
// decaying sample dominated by recent traffic, without the cliff of a
// strict FIFO (where one burst evicts the entire history at once).
//
// The queue also maintains a decayed signature of the sampled ranges
// (workload/sample_window.h); the drift detector compares it against the
// value captured at each filter's design time.
//
// Thread-safe: readers on many threads record empty queries while a
// background flush snapshots the sample set; one mutex covers both.

#ifndef PROTEUS_LSM_QUERY_QUEUE_H_
#define PROTEUS_LSM_QUERY_QUEUE_H_

#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "workload/sample_window.h"

namespace proteus {

struct SampleQueueOptions {
  size_t capacity = 20000;     // ~320 KB of queries (Section 6.1)
  uint32_t sample_rate = 100;  // record every 100th empty query
  /// EWMA history weight per sampled query for the range-shape signature
  /// (0.99 ~ the last ~100 samples dominate).
  double signature_decay = 0.99;
};

class SampleQueryQueue {
 public:
  using Options = SampleQueueOptions;

  explicit SampleQueryQueue(Options options = Options())
      : options_(options), signature_(options.signature_decay) {}

  /// Seeds the queue with an initial sample (bypasses rate limiting).
  void Seed(const std::vector<std::pair<std::string, std::string>>& queries) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& q : queries) Record(q.first, q.second);
  }

  /// Records an executed *empty* query, subject to the sampling rate.
  /// Returns true when the query was actually recorded (for the DB's
  /// queue_sampled counter).
  bool OnEmptyQuery(std::string_view lo, std::string_view hi) {
    std::lock_guard<std::mutex> lock(mu_);
    if (++counter_ % options_.sample_rate != 0) return false;
    Record(lo, hi);
    return true;
  }

  /// Snapshot of the current sample set (filter construction input).
  std::vector<std::pair<std::string, std::string>> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return window_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return window_.size();
  }
  uint64_t seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counter_;
  }
  /// Queries recorded into the window over the queue's lifetime
  /// (monotonic; eviction does not decrease it).
  uint64_t sampled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sampled_;
  }

  /// The decayed range-shape signature of the sampled queries, in bits of
  /// shared lo/hi prefix; negative while no query has been sampled.
  double Signature() const {
    std::lock_guard<std::mutex> lock(mu_);
    return signature_.value();
  }

 private:
  void Record(std::string_view lo, std::string_view hi) {  // callers hold mu_
    signature_.Observe(lo, hi);
    ++sampled_;
    if (window_.size() < options_.capacity) {
      window_.emplace_back(std::string(lo), std::string(hi));
      return;
    }
    if (options_.capacity == 0) return;
    auto& slot = window_[rng_() % window_.size()];
    slot.first.assign(lo);
    slot.second.assign(hi);
  }

  const Options options_;
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::string>> window_;
  QuerySignature signature_;
  std::minstd_rand rng_{0x9e3779b9u};  // deterministic victim choice
  uint64_t counter_ = 0;
  uint64_t sampled_ = 0;
};

}  // namespace proteus

#endif  // PROTEUS_LSM_QUERY_QUEUE_H_
