#include "lsm/sst.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "core/filter.h"
#include "hash/murmur3.h"
#include "lsm/ikey.h"
#include "lsm/rle.h"
#include "util/crc32c.h"
#include "util/posix_io.h"
#include "util/serial.h"

namespace proteus {
namespace {

constexpr uint64_t kSstMagic = 0x50524F5445555353ull;  // "PROTEUSS"
// Footer-version sentinels stored immediately before the magic in v2+
// footers. A v1 footer has n_entries in that slot, which can never equal
// these values ("PROTFTV2"/"PROTFTV3"/"PROTFTV4" as bytes), so the
// widths are unambiguous. v3 differs from v2 only in the index handles,
// which carry a per-block CRC32C (20 bytes instead of 16); v4 differs
// from v3 only in the value encoding (tag + seqno + user bytes, ikey.h).
constexpr uint64_t kFooterVersion2 = 0x32565446544F5250ull;
constexpr uint64_t kFooterVersion3 = 0x33565446544F5250ull;
constexpr uint64_t kFooterVersion4 = 0x34565446544F5250ull;
constexpr size_t kFooterV1Size = 32;
constexpr uint64_t kFilterChecksumSeed = 0xF117E12;
constexpr size_t kFooterV2Size = 72;
constexpr size_t kFooterV3Size = 72;
constexpr size_t kFooterV4Size = 72;
static_assert(kFooterV2Size == kFooterV3Size && kFooterV3Size == kFooterV4Size,
              "v3/v4 reuse the v2 footer layout; only the sentinel differs");
constexpr size_t kHandleV2Size = 16;  // offset u64 | size u64
constexpr size_t kHandleV3Size = 20;  // offset u64 | size u64 | crc32c u32

}  // namespace

SstWriter::SstWriter(std::string path, Options options)
    : path_(std::move(path)), options_(options) {}

void SstWriter::Add(std::string_view key, std::string_view value) {
  if (n_entries_ == 0) smallest_.assign(key);
  largest_.assign(key);
  last_key_in_block_.assign(key);
  data_block_.Add(key, value);
  ++n_entries_;
  if (data_block_.SizeEstimate() >= options_.block_size) FlushBlock();
}

void SstWriter::SetFilterBlock(std::string blob, uint64_t format) {
  filter_block_ = std::move(blob);
  filter_format_ = format;
}

void SstWriter::FlushBlock() {
  if (data_block_.empty()) return;
  std::string payload = data_block_.Finish();
  std::string on_disk;
  if (options_.compress) {
    on_disk = RleCompress(payload);
  } else {
    on_disk.push_back(0);  // raw tag
    on_disk.append(payload);
  }
  std::string handle;
  PutFixed64(&handle, offset_);
  PutFixed64(&handle, on_disk.size());
  if (options_.format_version >= 3) {
    // The CRC covers the exact bytes written to disk (compression tag
    // included), so damage is caught before decompression runs.
    PutFixed32(&handle, Crc32c(on_disk));
  }
  index_block_.Add(last_key_in_block_, handle);
  file_buffer_.append(on_disk);
  offset_ += on_disk.size();
  ++stats_.blocks_written;
  stats_.bytes_written += on_disk.size();
}

Status SstWriter::Finish() {
  FlushBlock();
  std::string index_payload = index_block_.Finish();
  std::string index_disk;
  index_disk.push_back(0);  // index stored raw
  index_disk.append(index_payload);
  uint64_t index_offset = offset_;
  file_buffer_.append(index_disk);
  offset_ += index_disk.size();
  std::string footer;
  if (options_.format_version <= 1) {
    // Legacy 32-byte footer: no filter block slot at all.
    PutFixed64(&footer, index_offset);
    PutFixed64(&footer, index_disk.size());
    PutFixed64(&footer, n_entries_);
    PutFixed64(&footer, kSstMagic);
  } else {
    uint64_t filter_offset = offset_;
    file_buffer_.append(filter_block_);
    offset_ += filter_block_.size();
    PutFixed64(&footer, index_offset);
    PutFixed64(&footer, index_disk.size());
    PutFixed64(&footer, n_entries_);
    PutFixed64(&footer, filter_offset);
    PutFixed64(&footer, filter_block_.size());
    PutFixed64(&footer, filter_format_);
    PutFixed64(&footer, Murmur3Bytes64(filter_block_.data(),
                                       filter_block_.size(),
                                       kFilterChecksumSeed));
    PutFixed64(&footer, options_.format_version >= 4   ? kFooterVersion4
                        : options_.format_version >= 3 ? kFooterVersion3
                                                       : kFooterVersion2);
    PutFixed64(&footer, kSstMagic);
  }
  file_buffer_.append(footer);
  offset_ += footer.size();

  FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError(Errno("cannot create SST " + path_));
  }
  // Capture the message at the failing call — fclose/unlink below would
  // clobber errno before a deferred Errno() could read it.
  Status s;
  size_t written =
      std::fwrite(file_buffer_.data(), 1, file_buffer_.size(), f);
  if (written != file_buffer_.size() || std::fflush(f) != 0) {
    s = Status::IOError(Errno("short write finishing SST " + path_));
  } else if (::fsync(fileno(f)) != 0) {
    // The file must be durable before the MANIFEST may reference it — a
    // crash after the manifest append must not find a hollow SST.
    s = Status::IOError(Errno("cannot fsync SST " + path_));
  }
  std::fclose(f);
  if (!s.ok()) {
    ::unlink(path_.c_str());
    return s;
  }
  return Status::OK();
}

SstReader::~SstReader() {
  if (fd_ >= 0) ::close(fd_);
}

bool SstReader::ReadRaw(uint64_t offset, uint64_t size, std::string* out) const {
  out->resize(size);
  ssize_t got = ::pread(fd_, out->data(), size, static_cast<off_t>(offset));
  return got == static_cast<ssize_t>(size);
}

Status SstReader::Open(const std::string& path, uint64_t file_id,
                       BlockCache* cache) {
  path_ = path;
  file_id_ = file_id;
  cache_ = cache;
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) return Status::IOError(Errno("cannot open SST " + path));
  off_t fsize = ::lseek(fd_, 0, SEEK_END);
  if (fsize < static_cast<off_t>(kFooterV1Size)) {
    return Status::Corruption("SST too small for a footer: " + path);
  }
  const uint64_t file_size = static_cast<uint64_t>(fsize);
  std::string tail;
  if (!ReadRaw(file_size - kFooterV1Size, kFooterV1Size, &tail)) {
    return Status::IOError(Errno("cannot read SST footer: " + path));
  }
  if (LoadFixed64(tail.data() + 24) != kSstMagic) {
    return Status::Corruption("bad SST magic: " + path);
  }

  uint64_t index_offset, index_size;
  uint64_t filter_offset = 0, filter_size = 0, filter_format = 0;
  uint64_t filter_checksum = 0;
  const uint64_t sentinel = LoadFixed64(tail.data() + 16);
  if (file_size >= kFooterV3Size &&
      (sentinel == kFooterVersion2 || sentinel == kFooterVersion3 ||
       sentinel == kFooterVersion4)) {
    footer_version_ = sentinel == kFooterVersion4   ? 4
                      : sentinel == kFooterVersion3 ? 3
                                                    : 2;
    std::string footer;
    if (!ReadRaw(file_size - kFooterV3Size, kFooterV3Size, &footer)) {
      return Status::IOError(Errno("cannot read SST footer: " + path));
    }
    index_offset = LoadFixed64(footer.data());
    index_size = LoadFixed64(footer.data() + 8);
    n_entries_ = LoadFixed64(footer.data() + 16);
    filter_offset = LoadFixed64(footer.data() + 24);
    filter_size = LoadFixed64(footer.data() + 32);
    filter_format = LoadFixed64(footer.data() + 40);
    filter_checksum = LoadFixed64(footer.data() + 48);
  } else {
    // v1 footer: no filter block, 16-byte handles, no block CRCs.
    footer_version_ = 1;
    index_offset = LoadFixed64(tail.data());
    index_size = LoadFixed64(tail.data() + 8);
    n_entries_ = LoadFixed64(tail.data() + 16);
  }

  // Subtraction-form bounds checks: offset + size can wrap uint64 when a
  // torn footer write leaves garbage sizes.
  std::string index_disk;
  if (index_size > file_size || index_offset > file_size - index_size) {
    return Status::Corruption("SST index handle out of bounds: " + path);
  }
  if (!ReadRaw(index_offset, index_size, &index_disk)) {
    return Status::IOError(Errno("cannot read SST index: " + path));
  }
  std::string index_payload;
  if (!RleDecompress(index_disk, &index_payload)) {
    return Status::Corruption("SST index block undecodable: " + path);
  }
  if (!index_.Init(std::move(index_payload))) {
    return Status::Corruption("SST index block checksum mismatch: " + path);
  }
  // Every handle must have the width this footer version promises.
  const size_t handle_size =
      footer_version_ >= 3 ? kHandleV3Size : kHandleV2Size;
  for (size_t i = 0; i < index_.n_entries(); ++i) {
    if (index_.ValueAt(i).size() != handle_size) {
      return Status::Corruption("SST index handle malformed: " + path);
    }
  }

  // Filter-block damage (bad bounds, unknown wire format) degrades to
  // "no filter": the caller rebuilds from keys instead of crashing.
  if (filter_size > 0 && filter_format == Filter::kVersion &&
      filter_size <= file_size && filter_offset <= file_size - filter_size) {
    if (ReadRaw(filter_offset, filter_size, &filter_block_) &&
        Murmur3Bytes64(filter_block_.data(), filter_block_.size(),
                       kFilterChecksumSeed) == filter_checksum) {
      filter_format_ = filter_format;
    } else {
      filter_block_.clear();
    }
  }
  return Status::OK();
}

std::unique_ptr<SstFilter> SstReader::LoadFilter(Status* status) const {
  if (filter_block_.empty()) {
    if (status != nullptr) *status = Status::NotFound("no filter block");
    return nullptr;
  }
  return DeserializeSstFilter(filter_block_, status);
}

bool SstReader::ParseHandle(size_t block_index, BlockHandle* out) const {
  std::string_view handle = index_.ValueAt(block_index);
  const size_t expected =
      footer_version_ >= 3 ? kHandleV3Size : kHandleV2Size;
  if (handle.size() != expected) return false;
  out->offset = LoadFixed64(handle.data());
  out->size = LoadFixed64(handle.data() + 8);
  out->has_crc = footer_version_ >= 3;
  out->crc = out->has_crc ? LoadFixed32(handle.data() + 16) : 0;
  return true;
}

Status SstReader::ReadDataBlock(size_t block_index, BlockReader* out,
                                const BlockReadOptions& opts) const {
  BlockHandle handle;
  if (!ParseHandle(block_index, &handle)) {
    return Status::Corruption("SST index handle malformed: " + path_);
  }
  if (opts.use_cache && cache_ != nullptr) {
    auto cached = cache_->Get(file_id_, handle.offset);
    if (cached != nullptr) {
      // Cached payloads passed the in-block checksum on insertion.
      if (out->Init(*cached)) return Status::OK();
      return Status::Corruption("cached block unparsable: " + path_);
    }
  }
  std::string disk;
  if (!ReadRaw(handle.offset, handle.size, &disk)) {
    return Status::IOError(Errno("cannot read data block: " + path_));
  }
  // verify_checksums=false skips only this redundant handle CRC; the
  // in-block checksum below still runs (Init cannot parse without it),
  // so a cached block is never wholly unverified.
  if (opts.verify_checksums && handle.has_crc && Crc32c(disk) != handle.crc) {
    return Status::Corruption("data block CRC mismatch: " + path_);
  }
  auto payload = std::make_shared<std::string>();
  if (!RleDecompress(disk, payload.get())) {
    return Status::Corruption("data block undecodable: " + path_);
  }
  if (!out->Init(*payload)) {
    return Status::Corruption("data block checksum mismatch: " + path_);
  }
  if (opts.use_cache && opts.fill_cache && cache_ != nullptr) {
    cache_->Insert(file_id_, handle.offset, payload);
  }
  return Status::OK();
}

Status SstReader::VerifyChecksums() const {
  for (size_t b = 0; b < index_.n_entries(); ++b) {
    BlockReader block;
    Status s = ReadDataBlock(b, &block, kNoCacheRead);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

int SstReader::SeekInRange(std::string_view lo, std::string_view hi,
                           uint64_t snapshot, const BlockReadOptions& opts,
                           SeekEntry* out, Status* status) const {
  // First block whose last key >= lo holds the smallest candidate. The
  // scan continues into later blocks only while entries are invisible at
  // the snapshot (rare), so the common case still touches one block.
  size_t b = index_.LowerBound(lo);
  bool first_block = true;
  for (; b < index_.n_entries(); ++b, first_block = false) {
    BlockReader block;
    Status s = ReadDataBlock(b, &block, opts);
    if (!s.ok()) {
      if (status != nullptr) *status = std::move(s);
      return -1;
    }
    size_t i = first_block ? block.LowerBound(lo) : 0;
    for (; i < block.n_entries(); ++i) {
      std::string_view k = block.KeyAt(i);
      if (k > hi) return 1;
      ParsedValue parsed;
      if (!ParseSstValue(footer_version_, block.ValueAt(i), &parsed)) {
        if (status != nullptr) {
          *status = Status::Corruption("SST value malformed: " + path_);
        }
        return -1;
      }
      // Versions of one key are stored newest-first, so the first entry
      // at or under the horizon is the newest visible version of its key.
      if (parsed.seqno > snapshot) continue;
      out->key.assign(k);
      out->value.assign(parsed.user_value);
      out->seqno = parsed.seqno;
      out->tombstone = parsed.tombstone();
      return 0;
    }
  }
  return 1;
}

int SstReader::RangeCursor::Seek(std::string_view lo, std::string_view hi,
                                 Status* status) {
  block_ = reader_->index_.LowerBound(lo);
  loaded_ = false;
  pos_ = 0;
  return ScanForward(lo, hi, status);
}

int SstReader::RangeCursor::SkipTo(std::string_view lo, std::string_view hi,
                                   Status* status) {
  // Resume from where the cursor stands; entries before `lo` (the old
  // position's key and anything between) are skipped by the scan.
  return ScanForward(lo, hi, status);
}

int SstReader::RangeCursor::ScanForward(std::string_view lo,
                                        std::string_view hi, Status* status) {
  for (;;) {
    if (!loaded_) {
      if (block_ >= reader_->n_blocks()) return 1;
      Status s = reader_->ReadDataBlock(block_, &blockr_, opts_);
      if (!s.ok()) {
        if (status != nullptr) *status = std::move(s);
        return -1;
      }
      loaded_ = true;
      // Entries below the scan floor cannot win; binary-search past them
      // whenever a block is entered fresh.
      pos_ = blockr_.LowerBound(lo);
    }
    for (; pos_ < blockr_.n_entries(); ++pos_) {
      std::string_view k = blockr_.KeyAt(pos_);
      if (k < lo) continue;  // SkipTo resume: stale prefix of this block
      if (k > hi) return 1;
      ParsedValue parsed;
      if (!ParseSstValue(reader_->footer_version_, blockr_.ValueAt(pos_),
                         &parsed)) {
        if (status != nullptr) {
          *status = Status::Corruption("SST value malformed: " +
                                       reader_->path_);
        }
        return -1;
      }
      // Newest-first version runs: the first entry at or under the
      // horizon is the newest visible version of its key.
      if (parsed.seqno > snapshot_) continue;
      entry_.key.assign(k);
      entry_.value.assign(parsed.user_value);
      entry_.seqno = parsed.seqno;
      entry_.tombstone = parsed.tombstone();
      return 0;
    }
    ++block_;
    loaded_ = false;
  }
}

}  // namespace proteus
