#include "lsm/sst.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "core/filter.h"
#include "hash/murmur3.h"
#include "lsm/rle.h"

namespace proteus {
namespace {

constexpr uint64_t kSstMagic = 0x50524F5445555353ull;  // "PROTEUSS"
// Footer-version sentinel stored immediately before the magic in v2
// footers. A v1 footer has n_entries in that slot, which can never equal
// this value ("PROTFTV2" as bytes), so the two widths are unambiguous.
constexpr uint64_t kFooterVersion2 = 0x32565446544F5250ull;
constexpr size_t kFooterV1Size = 32;
constexpr uint64_t kFilterChecksumSeed = 0xF117E12;
constexpr size_t kFooterV2Size = 72;

// util/serial.h's GetFixed64 consumes a cursor; footers are parsed at
// fixed offsets, so a positional load reads better here.
uint64_t LoadFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

SstWriter::SstWriter(std::string path, Options options)
    : path_(std::move(path)), options_(options) {}

void SstWriter::Add(std::string_view key, std::string_view value) {
  if (n_entries_ == 0) smallest_.assign(key);
  largest_.assign(key);
  last_key_in_block_.assign(key);
  data_block_.Add(key, value);
  ++n_entries_;
  if (data_block_.SizeEstimate() >= options_.block_size) FlushBlock();
}

void SstWriter::SetFilterBlock(std::string blob, uint64_t format) {
  filter_block_ = std::move(blob);
  filter_format_ = format;
}

void SstWriter::FlushBlock() {
  if (data_block_.empty()) return;
  std::string payload = data_block_.Finish();
  std::string on_disk;
  if (options_.compress) {
    on_disk = RleCompress(payload);
  } else {
    on_disk.push_back(0);  // raw tag
    on_disk.append(payload);
  }
  std::string handle;
  PutFixed64(&handle, offset_);
  PutFixed64(&handle, on_disk.size());
  index_block_.Add(last_key_in_block_, handle);
  file_buffer_.append(on_disk);
  offset_ += on_disk.size();
  ++stats_.blocks_written;
  stats_.bytes_written += on_disk.size();
}

bool SstWriter::Finish() {
  FlushBlock();
  std::string index_payload = index_block_.Finish();
  std::string index_disk;
  index_disk.push_back(0);  // index stored raw
  index_disk.append(index_payload);
  uint64_t index_offset = offset_;
  file_buffer_.append(index_disk);
  offset_ += index_disk.size();
  uint64_t filter_offset = offset_;
  file_buffer_.append(filter_block_);
  offset_ += filter_block_.size();
  std::string footer;
  PutFixed64(&footer, index_offset);
  PutFixed64(&footer, index_disk.size());
  PutFixed64(&footer, n_entries_);
  PutFixed64(&footer, filter_offset);
  PutFixed64(&footer, filter_block_.size());
  PutFixed64(&footer, filter_format_);
  PutFixed64(&footer, Murmur3Bytes64(filter_block_.data(),
                                     filter_block_.size(), kFilterChecksumSeed));
  PutFixed64(&footer, kFooterVersion2);
  PutFixed64(&footer, kSstMagic);
  file_buffer_.append(footer);
  offset_ += footer.size();

  FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) return false;
  size_t written =
      std::fwrite(file_buffer_.data(), 1, file_buffer_.size(), f);
  bool ok = written == file_buffer_.size() && std::fflush(f) == 0;
  std::fclose(f);
  return ok;
}

SstReader::~SstReader() {
  if (fd_ >= 0) ::close(fd_);
}

bool SstReader::ReadRaw(uint64_t offset, uint64_t size, std::string* out) const {
  out->resize(size);
  ssize_t got = ::pread(fd_, out->data(), size, static_cast<off_t>(offset));
  return got == static_cast<ssize_t>(size);
}

bool SstReader::Open(const std::string& path, uint64_t file_id,
                     BlockCache* cache) {
  path_ = path;
  file_id_ = file_id;
  cache_ = cache;
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) return false;
  off_t fsize = ::lseek(fd_, 0, SEEK_END);
  if (fsize < static_cast<off_t>(kFooterV1Size)) return false;
  const uint64_t file_size = static_cast<uint64_t>(fsize);
  std::string tail;
  if (!ReadRaw(file_size - kFooterV1Size, kFooterV1Size, &tail)) return false;
  if (LoadFixed64(tail.data() + 24) != kSstMagic) return false;

  uint64_t index_offset, index_size;
  uint64_t filter_offset = 0, filter_size = 0, filter_format = 0;
  uint64_t filter_checksum = 0;
  if (file_size >= kFooterV2Size &&
      LoadFixed64(tail.data() + 16) == kFooterVersion2) {
    std::string footer;
    if (!ReadRaw(file_size - kFooterV2Size, kFooterV2Size, &footer)) {
      return false;
    }
    index_offset = LoadFixed64(footer.data());
    index_size = LoadFixed64(footer.data() + 8);
    n_entries_ = LoadFixed64(footer.data() + 16);
    filter_offset = LoadFixed64(footer.data() + 24);
    filter_size = LoadFixed64(footer.data() + 32);
    filter_format = LoadFixed64(footer.data() + 40);
    filter_checksum = LoadFixed64(footer.data() + 48);
  } else {
    // v1 footer: no filter block.
    index_offset = LoadFixed64(tail.data());
    index_size = LoadFixed64(tail.data() + 8);
    n_entries_ = LoadFixed64(tail.data() + 16);
  }

  // Subtraction-form bounds checks: offset + size can wrap uint64 when a
  // torn footer write leaves garbage sizes.
  std::string index_disk;
  if (index_size > file_size || index_offset > file_size - index_size) {
    return false;
  }
  if (!ReadRaw(index_offset, index_size, &index_disk)) return false;
  std::string index_payload;
  if (!RleDecompress(index_disk, &index_payload)) return false;
  if (!index_.Init(std::move(index_payload))) return false;

  // Filter-block damage (bad bounds, unknown wire format) degrades to
  // "no filter": the caller rebuilds from keys instead of crashing.
  if (filter_size > 0 && filter_format == Filter::kVersion &&
      filter_size <= file_size && filter_offset <= file_size - filter_size) {
    if (ReadRaw(filter_offset, filter_size, &filter_block_) &&
        Murmur3Bytes64(filter_block_.data(), filter_block_.size(),
                       kFilterChecksumSeed) == filter_checksum) {
      filter_format_ = filter_format;
    } else {
      filter_block_.clear();
    }
  }
  return true;
}

std::unique_ptr<SstFilter> SstReader::LoadFilter(std::string* error) const {
  if (filter_block_.empty()) {
    if (error != nullptr) *error = "no filter block";
    return nullptr;
  }
  return DeserializeSstFilter(filter_block_, error);
}

bool SstReader::ReadDataBlock(size_t block_index, BlockReader* out,
                              bool use_cache) const {
  std::string_view handle = index_.ValueAt(block_index);
  uint64_t offset = LoadFixed64(handle.data());
  uint64_t size = LoadFixed64(handle.data() + 8);
  if (use_cache && cache_ != nullptr) {
    auto cached = cache_->Get(file_id_, offset);
    if (cached != nullptr) return out->Init(*cached);
  }
  std::string disk;
  if (!ReadRaw(offset, size, &disk)) return false;
  auto payload = std::make_shared<std::string>();
  if (!RleDecompress(disk, payload.get())) return false;
  if (use_cache && cache_ != nullptr) {
    cache_->Insert(file_id_, offset, payload);
  }
  return out->Init(*payload);
}

int SstReader::SeekInRange(std::string_view lo, std::string_view hi,
                           std::string* key, std::string* value) const {
  // First block whose last key >= lo holds the smallest candidate.
  size_t b = index_.LowerBound(lo);
  if (b == index_.n_entries()) return 1;
  BlockReader block;
  if (!ReadDataBlock(b, &block, /*use_cache=*/true)) return -1;
  size_t i = block.LowerBound(lo);
  if (i == block.n_entries()) return 1;  // cannot happen if index is sound
  std::string_view k = block.KeyAt(i);
  if (k > hi) return 1;
  key->assign(k);
  value->assign(block.ValueAt(i));
  return 0;
}

}  // namespace proteus
