#include "lsm/sst.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "lsm/rle.h"

namespace proteus {
namespace {

constexpr uint64_t kSstMagic = 0x50524F5445555353ull;  // "PROTEUSS"

void PutFixed64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

uint64_t GetFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

SstWriter::SstWriter(std::string path, Options options)
    : path_(std::move(path)), options_(options) {}

void SstWriter::Add(std::string_view key, std::string_view value) {
  if (n_entries_ == 0) smallest_.assign(key);
  largest_.assign(key);
  last_key_in_block_.assign(key);
  data_block_.Add(key, value);
  ++n_entries_;
  if (data_block_.SizeEstimate() >= options_.block_size) FlushBlock();
}

void SstWriter::FlushBlock() {
  if (data_block_.empty()) return;
  std::string payload = data_block_.Finish();
  std::string on_disk;
  if (options_.compress) {
    on_disk = RleCompress(payload);
  } else {
    on_disk.push_back(0);  // raw tag
    on_disk.append(payload);
  }
  std::string handle;
  PutFixed64(&handle, offset_);
  PutFixed64(&handle, on_disk.size());
  index_block_.Add(last_key_in_block_, handle);
  file_buffer_.append(on_disk);
  offset_ += on_disk.size();
  ++stats_.blocks_written;
  stats_.bytes_written += on_disk.size();
}

bool SstWriter::Finish() {
  FlushBlock();
  std::string index_payload = index_block_.Finish();
  std::string index_disk;
  index_disk.push_back(0);  // index stored raw
  index_disk.append(index_payload);
  uint64_t index_offset = offset_;
  file_buffer_.append(index_disk);
  offset_ += index_disk.size();
  std::string footer;
  PutFixed64(&footer, index_offset);
  PutFixed64(&footer, index_disk.size());
  PutFixed64(&footer, n_entries_);
  PutFixed64(&footer, kSstMagic);
  file_buffer_.append(footer);
  offset_ += footer.size();

  FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) return false;
  size_t written =
      std::fwrite(file_buffer_.data(), 1, file_buffer_.size(), f);
  bool ok = written == file_buffer_.size() && std::fflush(f) == 0;
  std::fclose(f);
  return ok;
}

SstReader::~SstReader() {
  if (fd_ >= 0) ::close(fd_);
}

bool SstReader::ReadRaw(uint64_t offset, uint64_t size, std::string* out) const {
  out->resize(size);
  ssize_t got = ::pread(fd_, out->data(), size, static_cast<off_t>(offset));
  return got == static_cast<ssize_t>(size);
}

bool SstReader::Open(const std::string& path, uint64_t file_id,
                     BlockCache* cache) {
  path_ = path;
  file_id_ = file_id;
  cache_ = cache;
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) return false;
  off_t file_size = ::lseek(fd_, 0, SEEK_END);
  if (file_size < 32) return false;
  std::string footer;
  if (!ReadRaw(static_cast<uint64_t>(file_size) - 32, 32, &footer)) {
    return false;
  }
  if (GetFixed64(footer.data() + 24) != kSstMagic) return false;
  uint64_t index_offset = GetFixed64(footer.data());
  uint64_t index_size = GetFixed64(footer.data() + 8);
  n_entries_ = GetFixed64(footer.data() + 16);
  std::string index_disk;
  if (!ReadRaw(index_offset, index_size, &index_disk)) return false;
  std::string index_payload;
  if (!RleDecompress(index_disk, &index_payload)) return false;
  return index_.Init(std::move(index_payload));
}

bool SstReader::ReadDataBlock(size_t block_index, BlockReader* out,
                              bool use_cache) const {
  std::string_view handle = index_.ValueAt(block_index);
  uint64_t offset = GetFixed64(handle.data());
  uint64_t size = GetFixed64(handle.data() + 8);
  if (use_cache && cache_ != nullptr) {
    auto cached = cache_->Get(file_id_, offset);
    if (cached != nullptr) return out->Init(*cached);
  }
  std::string disk;
  if (!ReadRaw(offset, size, &disk)) return false;
  auto payload = std::make_shared<std::string>();
  if (!RleDecompress(disk, payload.get())) return false;
  if (use_cache && cache_ != nullptr) {
    cache_->Insert(file_id_, offset, payload);
  }
  return out->Init(*payload);
}

int SstReader::SeekInRange(std::string_view lo, std::string_view hi,
                           std::string* key, std::string* value) const {
  // First block whose last key >= lo holds the smallest candidate.
  size_t b = index_.LowerBound(lo);
  if (b == index_.n_entries()) return 1;
  BlockReader block;
  if (!ReadDataBlock(b, &block, /*use_cache=*/true)) return -1;
  size_t i = block.LowerBound(lo);
  if (i == block.n_entries()) return 1;  // cannot happen if index is sound
  std::string_view k = block.KeyAt(i);
  if (k > hi) return 1;
  key->assign(k);
  value->assign(block.ValueAt(i));
  return 0;
}

}  // namespace proteus
