// A multi-version concurrent skiplist over byte-string keys — the
// MemTable substrate (RocksDB's concurrent InlineSkipList memtable is
// the model; Section 6.1).
//
// Nodes are ordered by (user key ascending, seqno descending), and an
// insert NEVER overwrites: every write adds a new version, so a reader
// pinned at an older sequence horizon keeps seeing the version that was
// newest for it. Tombstones are versions like any other (the Db layer
// tags them in the value bytes).
//
// Memory: nodes are carved from an append-only Arena (util/arena.h) in
// ONE allocation each — the variable-height link array sits in front of
// the node header and the key/value bytes trail it, so the write hot
// path performs no per-node malloc and the whole memtable's memory is
// returned in a single sweep when the retired memtable's arena dies.
//
// Concurrency contract (the InlineSkipList arrangement):
//   - Add() is safe from MULTIPLE concurrent writers: each level is
//     linked bottom-up with a release CAS; a loser recomputes its splice
//     at that level and retries. Two writers never insert the same
//     (key, seqno) position (the Db's leader assigns unique seqnos).
//   - readers need NO synchronization against writers: inserts link
//     nodes bottom-up with release CASes, readers traverse with acquire
//     loads, and nodes are never deleted or mutated while the list is
//     alive. A reader concurrent with an insert sees either the old or
//     the new list — both are valid states.
//   - Clear()/destruction require that no readers remain (the Db retires
//     memtables by dropping the last shared_ptr instead).

#ifndef PROTEUS_LSM_SKIPLIST_H_
#define PROTEUS_LSM_SKIPLIST_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>

#include "lsm/ikey.h"
#include "util/arena.h"
#include "util/random.h"

namespace proteus {

class SkipList {
 private:
  struct Node;  // defined below; the public Iterator holds a pointer

 public:
  static constexpr int kMaxHeight = 12;

  /// `arena` is where nodes live; it must outlive the list. Passing null
  /// gives the list a private arena (tests and benches).
  explicit SkipList(Arena* arena = nullptr)
      : owned_arena_(arena == nullptr ? std::make_unique<Arena>() : nullptr),
        arena_(arena != nullptr ? arena : owned_arena_.get()),
        head_(NewNode("", 0, "", "", kMaxHeight)) {}

  /// Removes all entries. Callers must guarantee no concurrent readers
  /// or writers (tests only; the Db never clears a published memtable).
  /// Node memory stays in the arena until the arena itself dies.
  void Clear() {
    for (int i = 0; i < kMaxHeight; ++i) {
      head_->SetNext(i, nullptr);
    }
    size_.store(0, std::memory_order_relaxed);
  }
  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts a new version of `key`. The stored value bytes are the
  /// concatenation `v1 | v2` (the Db passes the tag byte and the user
  /// value separately so no intermediate string is built). Returns the
  /// byte cost added (memtable accounting). Safe against concurrent
  /// Add() callers and concurrent readers; (key, seqno) must be unique.
  int64_t Add(std::string_view key, uint64_t seqno, std::string_view v1,
              std::string_view v2 = {}) {
    const int height = RandomHeight();
    Node* fresh = NewNode(key, v1, v2, seqno, height);
    Node* prev[kMaxHeight];
    Node* next[kMaxHeight];
    FindSplice(key, seqno, prev, next);
    for (int level = 0; level < height; ++level) {
      for (;;) {
        // Point the new node at its successor BEFORE publishing: the
        // release CAS below makes key/value/seqno and the lower links
        // visible to any reader that acquires the pointer.
        fresh->SetNext(level, next[level]);
        if (prev[level]->CasNext(level, next[level], fresh)) break;
        // Lost the race at this level: another writer linked here.
        // Recompute the splice from the stale prev (it still precedes
        // the target position — nodes never move or die).
        FindSpliceForLevel(key, seqno, prev[level], level, &prev[level],
                           &next[level]);
      }
    }
    size_.fetch_add(1, std::memory_order_relaxed);
    return static_cast<int64_t>(key.size() + v1.size() + v2.size() + 8);
  }

  struct Entry {
    std::string_view key;
    std::string_view value;  // internal (tagged) bytes
    uint64_t seqno = 0;
  };

  /// Newest version with seqno <= `snapshot` of the smallest key >= `key`.
  /// Keys whose every version is newer than the snapshot are skipped.
  bool SeekGeq(std::string_view key, uint64_t snapshot, Entry* out) const {
    Node* node = FindGreaterOrEqual(key, kMaxSequence);
    while (node != nullptr) {
      if (node->seqno <= snapshot) {
        out->key = node->key();
        out->value = node->value();
        out->seqno = node->seqno;
        return true;
      }
      // This version is invisible; later versions of the SAME key are
      // older (seqno descends within a key) — the next node is either
      // the visible version we want or the start of the next key.
      node = node->Next(0);
    }
    return false;
  }

  /// Newest version of exactly `key` visible at `snapshot`.
  bool Get(std::string_view key, uint64_t snapshot, Entry* out) const {
    Node* node = FindGreaterOrEqual(key, snapshot);
    if (node == nullptr || node->key() != key) return false;
    out->key = node->key();
    out->value = node->value();
    out->seqno = node->seqno;
    return true;
  }

  /// Number of versions stored (not distinct keys).
  uint64_t size() const { return size_.load(std::memory_order_relaxed); }

  /// In-order visitation of every version: key ascending, seqno
  /// descending within a key (flush path). Safe against writers.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (Node* n = head_->Next(0); n != nullptr; n = n->Next(0)) {
      fn(n->key(), n->seqno, n->value());
    }
  }

  /// Streaming cursor in internal order (key asc, seqno desc) — the
  /// flush path's shard-merge input. Safe against concurrent writers.
  class Iterator {
   public:
    explicit Iterator(const SkipList* list)
        : node_(list->head_->Next(0)) {}
    bool Valid() const { return node_ != nullptr; }
    std::string_view key() const { return node_->key(); }
    uint64_t seqno() const { return node_->seqno; }
    std::string_view value() const { return node_->value(); }  // internal
    void Next() { node_ = node_->Next(0); }

   private:
    const Node* node_;
  };

 private:
  // Node memory layout, one arena allocation (InlineSkipList-style):
  //
  //   [ next level h-1 ] ... [ next level 1 ]   <- higher links GROW DOWN
  //   [ Node: next_[0] (level 0), seqno, key_len, value_len ]
  //   [ key bytes ][ value bytes ]
  //
  // next_ MUST be the first member: next_[-level] addresses level
  // `level`'s link in the prefix region before the struct, so the header
  // offset — and with it key()/value() — is independent of the node's
  // height, and a node is reached at level L only through level-L links,
  // so nobody ever reads a link above the node's height.
  struct Node {
    std::atomic<Node*> next_[1];
    uint64_t seqno;
    uint32_t key_len;
    uint32_t value_len;

    Node* Next(int level) const {
      return next_[-level].load(std::memory_order_acquire);
    }
    void SetNext(int level, Node* n) {
      next_[-level].store(n, std::memory_order_relaxed);
    }
    bool CasNext(int level, Node* expected, Node* n) {
      return next_[-level].compare_exchange_strong(
          expected, n, std::memory_order_release, std::memory_order_relaxed);
    }
    const char* data() const {
      return reinterpret_cast<const char*>(this + 1);
    }
    char* data() { return reinterpret_cast<char*>(this + 1); }
    std::string_view key() const { return {data(), key_len}; }
    std::string_view value() const { return {data() + key_len, value_len}; }
  };

  Node* NewNode(std::string_view key, std::string_view v1,
                std::string_view v2, uint64_t seqno, int height) {
    const size_t prefix = sizeof(std::atomic<Node*>) *
                          static_cast<size_t>(height - 1);
    char* mem = arena_->Allocate(prefix + sizeof(Node) + key.size() +
                                 v1.size() + v2.size());
    Node* node = reinterpret_cast<Node*>(mem + prefix);
    node->seqno = seqno;
    node->key_len = static_cast<uint32_t>(key.size());
    node->value_len = static_cast<uint32_t>(v1.size() + v2.size());
    for (int i = 0; i < height; ++i) node->SetNext(i, nullptr);
    char* out = node->data();
    std::memcpy(out, key.data(), key.size());
    out += key.size();
    std::memcpy(out, v1.data(), v1.size());
    out += v1.size();
    if (!v2.empty()) std::memcpy(out, v2.data(), v2.size());
    return node;
  }
  // Head-node flavor (empty key/value, fixed full height).
  Node* NewNode(std::string_view key, uint64_t seqno, std::string_view v1,
                std::string_view v2, int height) {
    return NewNode(key, v1, v2, seqno, height);
  }

  static int RandomHeight() {
    // Each inserting thread rolls its own stream; heights only shape the
    // probabilistic balance, so cross-thread determinism is not needed.
    static thread_local Rng rng(
        0xC0FFEEull ^ reinterpret_cast<uintptr_t>(&rng));
    int h = 1;
    while (h < kMaxHeight && (rng.Next() & 3) == 0) ++h;  // p = 1/4
    return h;
  }

  // Internal order: (key asc, seqno desc). A node precedes the target
  // position when its key is smaller, or the key matches and its seqno
  // is larger (newer versions first).
  static bool Precedes(const Node* n, std::string_view key, uint64_t seqno) {
    const int c = n->key().compare(key);
    if (c != 0) return c < 0;
    return n->seqno > seqno;
  }

  /// First node at or after position (key, seqno) in internal order.
  Node* FindGreaterOrEqual(std::string_view key, uint64_t seqno) const {
    Node* node = head_;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      Node* next = node->Next(level);
      while (next != nullptr && Precedes(next, key, seqno)) {
        node = next;
        next = node->Next(level);
      }
    }
    return node->Next(0);
  }

  /// prev/next at every level for an insert at position (key, seqno).
  void FindSplice(std::string_view key, uint64_t seqno,
                  Node** prev, Node** next) const {
    Node* node = head_;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      Node* nx = node->Next(level);
      while (nx != nullptr && Precedes(nx, key, seqno)) {
        node = nx;
        nx = node->Next(level);
      }
      prev[level] = node;
      next[level] = nx;
    }
  }

  /// Recomputes one level's splice starting from `start` (which must
  /// precede the target position at this level).
  static void FindSpliceForLevel(std::string_view key, uint64_t seqno,
                                 Node* start, int level, Node** prev,
                                 Node** next) {
    Node* node = start;
    Node* nx = node->Next(level);
    while (nx != nullptr && Precedes(nx, key, seqno)) {
      node = nx;
      nx = node->Next(level);
    }
    *prev = node;
    *next = nx;
  }

  std::unique_ptr<Arena> owned_arena_;  // only when no arena was passed
  Arena* arena_;
  Node* head_;
  std::atomic<uint64_t> size_{0};
};

}  // namespace proteus

#endif  // PROTEUS_LSM_SKIPLIST_H_
