// A probabilistic skiplist over byte-string keys — the MemTable substrate
// (RocksDB's default memtable is a skiplist; Section 6.1).
//
// Single-writer, in-process, no arena tricks: nodes are heap-allocated and
// owned by the list. Supports insert-or-assign and ordered iteration from
// a lower bound, which is all the LSM layer needs.

#ifndef PROTEUS_LSM_SKIPLIST_H_
#define PROTEUS_LSM_SKIPLIST_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/random.h"

namespace proteus {

class SkipList {
 public:
  static constexpr int kMaxHeight = 12;

  SkipList() : rng_(0xC0FFEE), head_(new Node("", "", kMaxHeight)) {}
  ~SkipList() {
    Clear();
    delete head_;
  }

  /// Removes all entries (memtable reset after a flush).
  void Clear() {
    Node* n = head_->next[0];
    while (n != nullptr) {
      Node* next = n->next[0];
      delete n;
      n = next;
    }
    for (int i = 0; i < kMaxHeight; ++i) head_->next[i] = nullptr;
    size_ = 0;
  }
  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts or overwrites. Returns the net byte delta (for memtable
  /// accounting).
  int64_t Put(std::string_view key, std::string_view value) {
    std::array<Node*, kMaxHeight> prev;
    Node* node = FindGreaterOrEqual(key, &prev);
    if (node != nullptr && node->key == key) {
      int64_t delta = static_cast<int64_t>(value.size()) -
                      static_cast<int64_t>(node->value.size());
      node->value.assign(value.data(), value.size());
      return delta;
    }
    int height = RandomHeight();
    Node* fresh = new Node(std::string(key), std::string(value), height);
    for (int i = 0; i < height; ++i) {
      fresh->next[i] = prev[i]->next[i];
      prev[i]->next[i] = fresh;
    }
    ++size_;
    return static_cast<int64_t>(key.size() + value.size());
  }

  /// Smallest entry with key >= `key`, or nullptr.
  struct Entry {
    std::string_view key;
    std::string_view value;
  };
  bool SeekGeq(std::string_view key, Entry* out) const {
    Node* node = FindGreaterOrEqual(key, nullptr);
    if (node == nullptr) return false;
    out->key = node->key;
    out->value = node->value;
    return true;
  }

  bool Get(std::string_view key, std::string* value) const {
    Node* node = FindGreaterOrEqual(key, nullptr);
    if (node == nullptr || node->key != key) return false;
    value->assign(node->value);
    return true;
  }

  uint64_t size() const { return size_; }

  /// In-order visitation (flush path).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (Node* n = head_->next[0]; n != nullptr; n = n->next[0]) {
      fn(std::string_view(n->key), std::string_view(n->value));
    }
  }

 private:
  struct Node {
    Node(std::string k, std::string v, int height)
        : key(std::move(k)), value(std::move(v)) {
      for (int i = 0; i < height; ++i) next[i] = nullptr;
    }
    std::string key;
    std::string value;
    std::array<Node*, kMaxHeight> next{};
  };

  int RandomHeight() {
    int h = 1;
    while (h < kMaxHeight && (rng_.Next() & 3) == 0) ++h;  // p = 1/4
    return h;
  }

  Node* FindGreaterOrEqual(std::string_view key,
                           std::array<Node*, kMaxHeight>* prev) const {
    Node* node = head_;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      while (node->next[level] != nullptr && node->next[level]->key < key) {
        node = node->next[level];
      }
      if (prev != nullptr) (*prev)[level] = node;
    }
    return node->next[0];
  }

  Rng rng_;
  Node* head_;
  uint64_t size_ = 0;
};

}  // namespace proteus

#endif  // PROTEUS_LSM_SKIPLIST_H_
