// A multi-version probabilistic skiplist over byte-string keys — the
// MemTable substrate (RocksDB's default memtable is a skiplist;
// Section 6.1).
//
// Nodes are ordered by (user key ascending, seqno descending), and an
// insert NEVER overwrites: every write adds a new version, so a reader
// pinned at an older sequence horizon keeps seeing the version that was
// newest for it. Tombstones are versions like any other (the Db layer
// tags them in the value bytes).
//
// Concurrency contract (the LevelDB arrangement):
//   - writers must be externally serialized (the Db's group-commit
//     leader is the only writer of the active memtable);
//   - readers need NO synchronization against that one writer: inserts
//     link nodes bottom-up with release stores, readers traverse with
//     acquire loads, and nodes are never deleted or mutated while the
//     list is alive. A reader concurrently with an insert sees either
//     the old or the new list — both are valid states.
//   - Clear()/destruction require that no readers remain (the Db retires
//     memtables by dropping the last shared_ptr instead).

#ifndef PROTEUS_LSM_SKIPLIST_H_
#define PROTEUS_LSM_SKIPLIST_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "lsm/ikey.h"
#include "util/random.h"

namespace proteus {

class SkipList {
 public:
  static constexpr int kMaxHeight = 12;

  SkipList() : rng_(0xC0FFEE), head_(new Node("", 0, "", kMaxHeight)) {}
  ~SkipList() {
    Clear();
    delete head_;
  }

  /// Removes all entries. Callers must guarantee no concurrent readers
  /// or writers (tests only; the Db never clears a published memtable).
  void Clear() {
    Node* n = head_->next[0].load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* next = n->next[0].load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
    for (int i = 0; i < kMaxHeight; ++i) {
      head_->next[i].store(nullptr, std::memory_order_relaxed);
    }
    size_.store(0, std::memory_order_relaxed);
  }
  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  /// Inserts a new version of `key`. `value` is the internal (tagged)
  /// value bytes. Returns the byte cost added (memtable accounting).
  /// Single writer at a time; safe against concurrent readers.
  int64_t Add(std::string_view key, uint64_t seqno, std::string_view value) {
    std::array<Node*, kMaxHeight> prev;
    FindGreaterOrEqual(key, seqno, &prev);
    int height = RandomHeight();
    Node* fresh =
        new Node(std::string(key), seqno, std::string(value), height);
    for (int i = 0; i < height; ++i) {
      fresh->next[i].store(prev[i]->next[i].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
      // The release store publishes the fully-built node: a reader that
      // acquires this pointer sees key/value/seqno and the lower links.
      prev[i]->next[i].store(fresh, std::memory_order_release);
    }
    size_.fetch_add(1, std::memory_order_relaxed);
    return static_cast<int64_t>(key.size() + value.size() + 8);
  }

  struct Entry {
    std::string_view key;
    std::string_view value;  // internal (tagged) bytes
    uint64_t seqno = 0;
  };

  /// Newest version with seqno <= `snapshot` of the smallest key >= `key`.
  /// Keys whose every version is newer than the snapshot are skipped.
  bool SeekGeq(std::string_view key, uint64_t snapshot, Entry* out) const {
    Node* node = FindGreaterOrEqual(key, kMaxSequence, nullptr);
    while (node != nullptr) {
      if (node->seqno <= snapshot) {
        out->key = node->key;
        out->value = node->value;
        out->seqno = node->seqno;
        return true;
      }
      // This version is invisible; later versions of the SAME key are
      // older (seqno descends within a key) — the next node is either
      // the visible version we want or the start of the next key.
      node = node->next[0].load(std::memory_order_acquire);
    }
    return false;
  }

  /// Newest version of exactly `key` visible at `snapshot`.
  bool Get(std::string_view key, uint64_t snapshot, Entry* out) const {
    Node* node = FindGreaterOrEqual(key, snapshot, nullptr);
    if (node == nullptr || node->key != key) return false;
    out->key = node->key;
    out->value = node->value;
    out->seqno = node->seqno;
    return true;
  }

  /// Number of versions stored (not distinct keys).
  uint64_t size() const { return size_.load(std::memory_order_relaxed); }

  /// In-order visitation of every version: key ascending, seqno
  /// descending within a key (flush path). Safe against the writer.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (Node* n = head_->next[0].load(std::memory_order_acquire);
         n != nullptr; n = n->next[0].load(std::memory_order_acquire)) {
      fn(std::string_view(n->key), n->seqno, std::string_view(n->value));
    }
  }

 private:
  struct Node {
    Node(std::string k, uint64_t s, std::string v, int height)
        : key(std::move(k)), seqno(s), value(std::move(v)) {
      for (int i = 0; i < height; ++i) next[i].store(nullptr);
    }
    const std::string key;
    const uint64_t seqno;
    const std::string value;
    std::array<std::atomic<Node*>, kMaxHeight> next{};
  };

  int RandomHeight() {
    int h = 1;
    while (h < kMaxHeight && (rng_.Next() & 3) == 0) ++h;  // p = 1/4
    return h;
  }

  // Internal order: (key asc, seqno desc). A node precedes the target
  // position when its key is smaller, or the key matches and its seqno
  // is larger (newer versions first).
  static bool Precedes(const Node* n, std::string_view key, uint64_t seqno) {
    int c = n->key.compare(key);
    if (c != 0) return c < 0;
    return n->seqno > seqno;
  }

  /// First node at or after position (key, seqno) in internal order.
  Node* FindGreaterOrEqual(std::string_view key, uint64_t seqno,
                           std::array<Node*, kMaxHeight>* prev) const {
    Node* node = head_;
    for (int level = kMaxHeight - 1; level >= 0; --level) {
      Node* next = node->next[level].load(std::memory_order_acquire);
      while (next != nullptr && Precedes(next, key, seqno)) {
        node = next;
        next = node->next[level].load(std::memory_order_acquire);
      }
      if (prev != nullptr) (*prev)[level] = node;
    }
    return node->next[0].load(std::memory_order_acquire);
  }

  Rng rng_;
  Node* head_;
  std::atomic<uint64_t> size_{0};
};

}  // namespace proteus

#endif  // PROTEUS_LSM_SKIPLIST_H_
