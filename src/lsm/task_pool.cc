#include "lsm/task_pool.h"

namespace proteus {

TaskPool::TaskPool(size_t n_threads) {
  if (n_threads == 0) n_threads = 1;
  workers_.reserve(n_threads);
  for (size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() { Shutdown(); }

bool TaskPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

void TaskPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void TaskPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void TaskPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace proteus
