#include "lsm/block.h"

#include <cstring>

#include "hash/clhash.h"

namespace proteus {
namespace {

void PutVarint32(std::string* out, uint32_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

const char* GetVarint32(const char* p, const char* limit, uint32_t* v) {
  *v = 0;
  int shift = 0;
  while (p < limit && shift <= 28) {
    uint8_t byte = static_cast<uint8_t>(*p++);
    *v |= static_cast<uint32_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return p;
    shift += 7;
  }
  return nullptr;
}

uint32_t Checksum(std::string_view data) {
  return static_cast<uint32_t>(ClHash64(data, 0xB10CC8EC) & 0xFFFFFFFF);
}

void PutFixed32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

uint32_t GetFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

}  // namespace

void BlockBuilder::Add(std::string_view key, std::string_view value) {
  offsets_.push_back(static_cast<uint32_t>(buffer_.size()));
  PutVarint32(&buffer_, static_cast<uint32_t>(key.size()));
  PutVarint32(&buffer_, static_cast<uint32_t>(value.size()));
  buffer_.append(key);
  buffer_.append(value);
}

std::string BlockBuilder::Finish() {
  std::string out = std::move(buffer_);
  size_t entries_size = out.size();
  for (uint32_t off : offsets_) PutFixed32(&out, off);
  PutFixed32(&out, static_cast<uint32_t>(offsets_.size()));
  PutFixed32(&out, Checksum(std::string_view(out.data(), entries_size)));
  buffer_.clear();
  offsets_.clear();
  return out;
}

bool BlockReader::Init(std::string payload) {
  payload_ = std::move(payload);
  if (payload_.size() < 8) return false;
  uint32_t stored_checksum = GetFixed32(payload_.data() + payload_.size() - 4);
  n_ = GetFixed32(payload_.data() + payload_.size() - 8);
  size_t trailer = 8 + n_ * 4;
  if (payload_.size() < trailer) return false;
  size_t entries_size = payload_.size() - trailer;
  if (Checksum(std::string_view(payload_.data(), entries_size)) !=
      stored_checksum) {
    return false;
  }
  offsets_base_ = payload_.data() + entries_size;
  // Validate offsets are in bounds and parseable.
  for (size_t i = 0; i < n_; ++i) {
    if (GetFixed32(offsets_base_ + i * 4) >= entries_size && n_ > 0) {
      return false;
    }
  }
  return true;
}

void BlockReader::Entry(size_t i, std::string_view* key,
                        std::string_view* value) const {
  uint32_t off = GetFixed32(offsets_base_ + i * 4);
  const char* p = payload_.data() + off;
  const char* limit = offsets_base_;
  uint32_t klen, vlen;
  p = GetVarint32(p, limit, &klen);
  p = GetVarint32(p, limit, &vlen);
  *key = std::string_view(p, klen);
  *value = std::string_view(p + klen, vlen);
}

std::string_view BlockReader::KeyAt(size_t i) const {
  std::string_view k, v;
  Entry(i, &k, &v);
  return k;
}

std::string_view BlockReader::ValueAt(size_t i) const {
  std::string_view k, v;
  Entry(i, &k, &v);
  return v;
}

size_t BlockReader::LowerBound(std::string_view key) const {
  size_t lo = 0, hi = n_;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (KeyAt(mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace proteus
