// Write-ahead log: the durability backbone of miniLSM's write path.
//
// Every Put/Delete is framed as a length-prefixed, CRC32C-stamped record
// and appended to a WAL segment *before* it touches the memtable, so a
// process kill between flushes loses nothing that was acknowledged.
//
// Record framing (byte-accurate spec in docs/FORMAT.md):
//
//   record  := length u32 | crc32c(payload) u32 | payload[length]
//   payload := op u8 (3 = Put, 4 = Delete) | seqno u64 |
//              klen u32 | key[klen] | vlen u32 | value[vlen]
//
// The seqno is the monotonic sequence number the Db's group-commit
// leader assigned to the write. Because the leader appends the batch and
// applies it to the memtable in the same critical section, WAL order,
// memtable order, and replay order are one and the same — replay
// re-applies each record at its original seqno, so recovery reproduces
// the exact pre-crash version history (including concurrent same-key
// writes, which used to be a documented race). Legacy seqno-less records
// (ops 1/2, written before format v2 of the log) still replay; they are
// assigned seqnos in file order.
//
// Segments: the log is a sequence of files `WAL-<n>` (n decimal,
// increasing). Every memtable swap rotates to a fresh segment; a segment
// is deleted once every memtable whose writes it holds has been flushed
// to SSTs. Recovery replays all segments in numeric order (a legacy
// un-numbered `WAL` file, if present, replays first). Replay is
// idempotent across segments: an entry applied twice lands at the same
// (key, seqno) slot.
//
// Group commit lives in the Db layer (the write-queue leader batches
// concurrent writers); WalWriter here is a single-appender file handle.
// Replay tolerates a torn tail — a record cut short by the crash that
// ended the previous process — by stopping at the first frame that does
// not parse and reporting the clean-prefix length, which the caller
// truncates to before appending again. A torn record was never
// acknowledged (writes are acknowledged only after the fdatasync), so
// dropping it loses nothing the client was promised.

#ifndef PROTEUS_LSM_WAL_H_
#define PROTEUS_LSM_WAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "util/status.h"

namespace proteus {

inline constexpr uint8_t kWalOpPut = 1;        // legacy: no seqno field
inline constexpr uint8_t kWalOpDelete = 2;     // legacy: no seqno field
inline constexpr uint8_t kWalOpPutSeq = 3;     // payload carries seqno u64
inline constexpr uint8_t kWalOpDeleteSeq = 4;  // payload carries seqno u64

/// Frames one operation as a WAL record (length + CRC + payload), ready
/// to append. Ops 3/4 embed `seqno`; the legacy ops 1/2 ignore it (they
/// exist so compatibility tests can produce genuine old-format logs).
/// `value` must be empty for deletes.
std::string EncodeWalRecord(uint8_t op, uint64_t seqno, std::string_view key,
                            std::string_view value);

/// Append handle for the active WAL segment. NOT internally synchronized
/// for appends: the Db's group-commit leader is the only appender (leaders
/// are serialized by the write queue), and rotation (Open on a new path)
/// is mutually excluded with appends by the Db's pipeline lock. stats()
/// is safe to call from any thread.
class WalWriter {
 public:
  struct Stats {
    uint64_t records = 0;  // records durably appended (failed batches
                           // are rolled back and not counted)
    uint64_t batches = 0;  // successful group-commit appends
    uint64_t syncs = 0;    // fdatasync() calls (<= batches; == when sync on)
  };

  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens (creating if absent) a segment for appending. Reopening on a
  /// new path rotates: the old fd is closed, byte accounting restarts at
  /// the new file's size, stats keep accumulating across segments.
  Status Open(const std::string& path);

  /// Appends a batch of framed records (concatenated EncodeWalRecord
  /// output) in one write() and, when `sync`, one fdatasync().
  ///
  /// A failed batch (short write, fsync error) is rolled back: the log
  /// is truncated to its last durable record boundary so the rejected
  /// records can never replay, and later appends land after clean
  /// bytes. If even the rollback fails, the writer is poisoned — every
  /// subsequent Append returns the error instead of appending after
  /// garbage that would silently end replay early.
  Status Append(std::string_view batch, uint64_t n_records, bool sync);

  /// Durable bytes in the active segment (the size-rotation trigger).
  /// Safe to read from any thread.
  uint64_t file_bytes() const {
    return committed_bytes_.load(std::memory_order_relaxed);
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }

  /// Test hook: sleep this long inside each sync, forcing concurrent
  /// committers to pile up behind the group-commit leader so batching is
  /// observable deterministically.
  void TEST_SetSyncDelayMicros(uint32_t micros) { sync_delay_micros_ = micros; }

 private:
  Status WriteAndSync(std::string_view buf, bool sync);

  int fd_ = -1;
  mutable std::mutex stats_mu_;
  Stats stats_;
  uint32_t sync_delay_micros_ = 0;
  // Log length after the last successful batch: the rollback target when
  // an append fails. Only the single appender writes it; the flush
  // trigger reads it from other threads, hence atomic.
  std::atomic<uint64_t> committed_bytes_{0};
  Status poisoned_;  // sticky failure once a rollback itself fails
};

/// Replays one segment in append order, invoking
/// `apply(op, seqno, key, value)` for every intact record (legacy ops 1/2
/// pass seqno 0 — the caller assigns replay-order seqnos). A torn tail
/// stops the replay: `*valid_bytes` is set to the clean-prefix length
/// (truncate to it before reusing the file) and `*torn_tail` reports
/// whether anything was cut. A missing file replays as empty. Returns
/// non-OK only for I/O errors reading the file — torn frames are expected
/// crash debris, not corruption.
Status WalReplay(
    const std::string& path,
    const std::function<void(uint8_t op, uint64_t seqno, std::string_view key,
                             std::string_view value)>& apply,
    uint64_t* valid_bytes, bool* torn_tail);

}  // namespace proteus

#endif  // PROTEUS_LSM_WAL_H_
