// Write-ahead log: the durability backbone of miniLSM's write path.
//
// Every Put/Delete is framed as a length-prefixed, CRC32C-stamped record
// and appended to dir/WAL *before* it touches the memtable, so a process
// kill between flushes loses nothing that was acknowledged. A flush makes
// the memtable contents durable in SSTs (and the MANIFEST delta log), at
// which point the WAL is reset to empty.
//
// Record framing (byte-accurate spec in docs/FORMAT.md):
//
//   record  := length u32 | crc32c(payload) u32 | payload[length]
//   payload := op u8 (1 = Put, 2 = Delete) |
//              klen u32 | key[klen] | vlen u32 | value[vlen]
//
// Group commit: concurrent writers enqueue framed records under a mutex;
// the writer at the head of the queue becomes the leader, drains the
// whole queue into one write() + one fdatasync(), and wakes the
// followers with the shared result. N threads hitting Commit() pay ~1
// fsync per batch instead of 1 per record (stats().syncs vs .records).
//
// Replay tolerates a torn tail — a record cut short by the crash that
// ended the previous process — by stopping at the first frame that does
// not parse and reporting the clean-prefix length, which the caller
// truncates to before appending again. A torn record was never
// acknowledged (Commit returns only after the fsync), so dropping it
// loses nothing the client was promised.

#ifndef PROTEUS_LSM_WAL_H_
#define PROTEUS_LSM_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

#include "util/status.h"

namespace proteus {

inline constexpr uint8_t kWalOpPut = 1;
inline constexpr uint8_t kWalOpDelete = 2;

/// Frames one operation as a WAL record (length + CRC + payload), ready
/// for WalWriter::Commit. `value` must be empty for kWalOpDelete.
std::string EncodeWalRecord(uint8_t op, std::string_view key,
                            std::string_view value);

class WalWriter {
 public:
  struct Stats {
    uint64_t records = 0;  // records durably appended (failed batches
                           // are rolled back and not counted)
    uint64_t batches = 0;  // successful group-commit appends
    uint64_t syncs = 0;    // fdatasync() calls (<= batches; == when sync on)
  };

  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens (creating if absent) the log for appending.
  Status Open(const std::string& path);

  /// Appends one framed record (EncodeWalRecord output) and, when `sync`,
  /// fdatasyncs before returning. Thread-safe; concurrent callers are
  /// batched into one write + one fsync by the group-commit leader.
  ///
  /// A failed batch (short write, fsync error) is rolled back: the log
  /// is truncated to its last durable record boundary so the rejected
  /// records can never replay, and later commits append after clean
  /// bytes. If even the rollback fails, the writer is poisoned — every
  /// subsequent Commit returns the error instead of appending after
  /// garbage that would silently end replay early.
  Status Commit(std::string_view record, bool sync);

  /// Truncates the log to empty — called once a flush has made the
  /// logged writes durable elsewhere. Callers must exclude concurrent
  /// Commit()s (the Db holds its flush lock exclusively here).
  Status Reset();

  const Stats& stats() const { return stats_; }

  /// Test hook: sleep this long inside each sync, forcing concurrent
  /// committers to pile up behind the leader so group commit is
  /// observable deterministically.
  void TEST_SetSyncDelayMicros(uint32_t micros) { sync_delay_micros_ = micros; }

 private:
  struct Waiter {
    std::string_view record;
    Status status;
    bool sync = false;
    bool done = false;
  };

  Status WriteAndSync(std::string_view buf, bool sync);

  int fd_ = -1;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Waiter*> queue_;
  Stats stats_;
  uint32_t sync_delay_micros_ = 0;
  // Log length after the last successful batch: the rollback target
  // when an append fails. Only the group-commit leader touches the fd,
  // so it is read/written without mu_ held.
  uint64_t committed_bytes_ = 0;
  Status poisoned_;  // sticky failure once a rollback itself fails
};

/// Replays dir/WAL in append order, invoking `apply(op, key, value)` for
/// every intact record. A torn tail stops the replay: `*valid_bytes` is
/// set to the clean-prefix length (truncate to it before reusing the
/// file) and `*torn_tail` reports whether anything was cut. A missing
/// file replays as empty. Returns non-OK only for I/O errors reading the
/// file — torn frames are expected crash debris, not corruption.
Status WalReplay(
    const std::string& path,
    const std::function<void(uint8_t op, std::string_view key,
                             std::string_view value)>& apply,
    uint64_t* valid_bytes, bool* torn_tail);

}  // namespace proteus

#endif  // PROTEUS_LSM_WAL_H_
