#include "lsm/filter_policy.h"

#include <algorithm>

#include "bloom/bloom_filter.h"
#include "core/proteus.h"
#include "core/proteus_str.h"
#include "core/query.h"
#include "rosetta/rosetta.h"
#include "surf/surf.h"

namespace proteus {
namespace {

// ---------------------------------------------------------------------------
// Helpers: decode integer-mode inputs.
// ---------------------------------------------------------------------------

std::vector<uint64_t> DecodeKeys(const std::vector<std::string>& keys) {
  std::vector<uint64_t> out;
  out.reserve(keys.size());
  for (const auto& k : keys) out.push_back(DecodeKeyBE(k));
  return out;
}

std::vector<RangeQuery> DecodeQueries(
    const std::vector<std::pair<std::string, std::string>>& qs) {
  std::vector<RangeQuery> out;
  out.reserve(qs.size());
  for (const auto& [lo, hi] : qs) {
    out.push_back({DecodeKeyBE(lo), DecodeKeyBE(hi)});
  }
  return out;
}

// Clips sample queries to [smallest, largest] of the SST and drops those
// falling entirely outside (per-SST filters only see their own range).
std::vector<RangeQuery> ClipQueries(std::vector<RangeQuery> qs, uint64_t lo,
                                    uint64_t hi) {
  std::vector<RangeQuery> out;
  out.reserve(qs.size());
  for (const auto& q : qs) {
    if (q.hi < lo || q.lo > hi) continue;
    out.push_back(q);
  }
  return out;
}

class IntFilterAdapter : public SstFilter {
 public:
  explicit IntFilterAdapter(std::unique_ptr<RangeFilter> filter)
      : filter_(std::move(filter)) {}
  bool MayContain(std::string_view lo, std::string_view hi) const override {
    return filter_->MayContain(DecodeKeyBE(lo), DecodeKeyBE(hi));
  }
  uint64_t SizeBits() const override { return filter_->SizeBits(); }

 private:
  std::unique_ptr<RangeFilter> filter_;
};

class StrFilterAdapter : public SstFilter {
 public:
  explicit StrFilterAdapter(std::unique_ptr<StrRangeFilter> filter)
      : filter_(std::move(filter)) {}
  bool MayContain(std::string_view lo, std::string_view hi) const override {
    return filter_->MayContain(lo, hi);
  }
  uint64_t SizeBits() const override { return filter_->SizeBits(); }

 private:
  std::unique_ptr<StrRangeFilter> filter_;
};

// ---------------------------------------------------------------------------
// Policies
// ---------------------------------------------------------------------------

class NullPolicy : public FilterPolicy {
 public:
  std::unique_ptr<SstFilter> Build(
      const std::vector<std::string>&,
      const std::vector<std::pair<std::string, std::string>>&) const override {
    return nullptr;
  }
  std::string Name() const override { return "none"; }
};

class BloomSstFilter : public SstFilter {
 public:
  BloomSstFilter(const std::vector<std::string>& keys, double bpk) {
    uint64_t bits = static_cast<uint64_t>(bpk * keys.size());
    bf_ = BloomFilter(bits, BloomFilter::OptimalHashes(bits, keys.size()));
    for (const auto& k : keys) bf_.InsertBytes(k);
  }
  bool MayContain(std::string_view lo, std::string_view hi) const override {
    if (lo != hi) return true;  // point filter: cannot rule out ranges
    return bf_.MayContainBytes(lo);
  }
  uint64_t SizeBits() const override { return bf_.SizeBits(); }

 private:
  BloomFilter bf_;
};

class BloomPolicy : public FilterPolicy {
 public:
  explicit BloomPolicy(double bpk) : bpk_(bpk) {}
  std::unique_ptr<SstFilter> Build(
      const std::vector<std::string>& keys,
      const std::vector<std::pair<std::string, std::string>>&) const override {
    if (keys.empty()) return nullptr;
    return std::make_unique<BloomSstFilter>(keys, bpk_);
  }
  std::string Name() const override { return "bloom"; }

 private:
  double bpk_;
};

class ProteusIntPolicy : public FilterPolicy {
 public:
  explicit ProteusIntPolicy(double bpk) : bpk_(bpk) {}
  std::unique_ptr<SstFilter> Build(
      const std::vector<std::string>& keys,
      const std::vector<std::pair<std::string, std::string>>& samples)
      const override {
    if (keys.empty()) return nullptr;
    auto int_keys = DecodeKeys(keys);
    auto queries = ClipQueries(DecodeQueries(samples), int_keys.front(),
                               int_keys.back());
    if (queries.empty()) {
      // No workload signal: default to a full-key prefix Bloom filter.
      return std::make_unique<IntFilterAdapter>(ProteusFilter::BuildWithConfig(
          int_keys, ProteusFilter::Config{0, 64}, bpk_));
    }
    return std::make_unique<IntFilterAdapter>(
        ProteusFilter::BuildSelfDesigned(int_keys, queries, bpk_));
  }
  std::string Name() const override { return "proteus"; }

 private:
  double bpk_;
};

class ProteusStrPolicy : public FilterPolicy {
 public:
  ProteusStrPolicy(double bpk, uint32_t max_key_bits, uint32_t stride)
      : bpk_(bpk), max_key_bits_(max_key_bits), stride_(stride) {}
  std::unique_ptr<SstFilter> Build(
      const std::vector<std::string>& keys,
      const std::vector<std::pair<std::string, std::string>>& samples)
      const override {
    if (keys.empty()) return nullptr;
    std::vector<StrRangeQuery> queries;
    for (const auto& [lo, hi] : samples) {
      if (hi < keys.front() || lo > keys.back()) continue;
      queries.push_back({lo, hi});
    }
    if (queries.empty()) {
      return std::make_unique<StrFilterAdapter>(
          ProteusStrFilter::BuildWithConfig(
              keys,
              ProteusStrFilter::Config{0, max_key_bits_, max_key_bits_},
              bpk_));
    }
    StrCpfprOptions options;
    options.bloom_grid = std::max<uint32_t>(1, 128 / stride_);
    return std::make_unique<StrFilterAdapter>(
        ProteusStrFilter::BuildSelfDesigned(keys, queries, bpk_,
                                            max_key_bits_, options));
  }
  std::string Name() const override { return "proteus-str"; }

 private:
  double bpk_;
  uint32_t max_key_bits_;
  uint32_t stride_;
};

class SurfIntPolicy : public FilterPolicy {
 public:
  SurfIntPolicy(int mode, uint32_t bits) : mode_(mode), bits_(bits) {}
  std::unique_ptr<SstFilter> Build(
      const std::vector<std::string>& keys,
      const std::vector<std::pair<std::string, std::string>>&) const override {
    if (keys.empty()) return nullptr;
    Surf::Options options;
    options.suffix_mode = static_cast<SurfSuffixMode>(mode_);
    options.suffix_bits = bits_;
    return std::make_unique<IntFilterAdapter>(
        SurfIntFilter::Build(DecodeKeys(keys), options));
  }
  std::string Name() const override {
    return "surf" + std::to_string(mode_) + "-" + std::to_string(bits_);
  }

 private:
  int mode_;
  uint32_t bits_;
};

class SurfStrPolicy : public FilterPolicy {
 public:
  SurfStrPolicy(int mode, uint32_t bits) : mode_(mode), bits_(bits) {}
  std::unique_ptr<SstFilter> Build(
      const std::vector<std::string>& keys,
      const std::vector<std::pair<std::string, std::string>>&) const override {
    if (keys.empty()) return nullptr;
    Surf::Options options;
    options.suffix_mode = static_cast<SurfSuffixMode>(mode_);
    options.suffix_bits = bits_;
    return std::make_unique<StrFilterAdapter>(SurfStrFilter::Build(keys, options));
  }
  std::string Name() const override { return "surf-str"; }

 private:
  int mode_;
  uint32_t bits_;
};

class RosettaIntPolicy : public FilterPolicy {
 public:
  explicit RosettaIntPolicy(double bpk) : bpk_(bpk) {}
  std::unique_ptr<SstFilter> Build(
      const std::vector<std::string>& keys,
      const std::vector<std::pair<std::string, std::string>>& samples)
      const override {
    if (keys.empty()) return nullptr;
    auto int_keys = DecodeKeys(keys);
    auto queries = ClipQueries(DecodeQueries(samples), int_keys.front(),
                               int_keys.back());
    if (queries.empty()) queries.push_back({int_keys.front(), int_keys.front()});
    return std::make_unique<IntFilterAdapter>(
        RosettaFilter::BuildSelfConfigured(int_keys, queries, bpk_));
  }
  std::string Name() const override { return "rosetta"; }

 private:
  double bpk_;
};

}  // namespace

std::unique_ptr<FilterPolicy> MakeNullFilterPolicy() {
  return std::make_unique<NullPolicy>();
}
std::unique_ptr<FilterPolicy> MakeBloomFilterPolicy(double bits_per_key) {
  return std::make_unique<BloomPolicy>(bits_per_key);
}
std::unique_ptr<FilterPolicy> MakeProteusIntPolicy(double bits_per_key) {
  return std::make_unique<ProteusIntPolicy>(bits_per_key);
}
std::unique_ptr<FilterPolicy> MakeProteusStrPolicy(double bits_per_key,
                                                   uint32_t max_key_bits,
                                                   uint32_t prefix_stride) {
  return std::make_unique<ProteusStrPolicy>(bits_per_key, max_key_bits,
                                            prefix_stride);
}
std::unique_ptr<FilterPolicy> MakeSurfIntPolicy(int suffix_mode,
                                                uint32_t suffix_bits) {
  return std::make_unique<SurfIntPolicy>(suffix_mode, suffix_bits);
}
std::unique_ptr<FilterPolicy> MakeSurfStrPolicy(int suffix_mode,
                                                uint32_t suffix_bits) {
  return std::make_unique<SurfStrPolicy>(suffix_mode, suffix_bits);
}
std::unique_ptr<FilterPolicy> MakeRosettaIntPolicy(double bits_per_key) {
  return std::make_unique<RosettaIntPolicy>(bits_per_key);
}

}  // namespace proteus
