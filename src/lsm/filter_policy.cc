#include "lsm/filter_policy.h"

#include <cstdio>

#include "core/filter_builder.h"
#include "core/filter_registry.h"
#include "core/query.h"
#include "surf/surf.h"  // EncodeKeyBE / DecodeKeyBE

namespace proteus {
namespace {

void SetStatus(Status* status, Status value) {
  if (status != nullptr) *status = std::move(value);
}

// ---------------------------------------------------------------------------
// Helpers: decode integer-mode inputs.
// ---------------------------------------------------------------------------

std::vector<uint64_t> DecodeKeys(const std::vector<std::string>& keys) {
  std::vector<uint64_t> out;
  out.reserve(keys.size());
  for (const auto& k : keys) out.push_back(DecodeKeyBE(k));
  return out;
}

// Clips sample queries to [smallest, largest] of the SST and drops those
// falling entirely outside (per-SST filters only see their own range).
std::vector<RangeQuery> DecodeAndClipQueries(
    const std::vector<std::pair<std::string, std::string>>& qs, uint64_t lo,
    uint64_t hi) {
  std::vector<RangeQuery> out;
  out.reserve(qs.size());
  for (const auto& [qlo, qhi] : qs) {
    RangeQuery q{DecodeKeyBE(qlo), DecodeKeyBE(qhi)};
    if (q.hi < lo || q.lo > hi) continue;
    out.push_back(q);
  }
  return out;
}

std::vector<StrRangeQuery> ClipStrQueries(
    const std::vector<std::pair<std::string, std::string>>& qs,
    const std::string& lo, const std::string& hi) {
  std::vector<StrRangeQuery> out;
  out.reserve(qs.size());
  for (const auto& [qlo, qhi] : qs) {
    if (qhi < lo || qlo > hi) continue;
    out.push_back({qlo, qhi});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Adapters: RangeFilter / StrRangeFilter -> SstFilter.
// ---------------------------------------------------------------------------

class IntFilterAdapter : public SstFilter {
 public:
  explicit IntFilterAdapter(std::unique_ptr<RangeFilter> filter)
      : filter_(std::move(filter)) {}
  bool MayContain(std::string_view lo, std::string_view hi) const override {
    return filter_->MayContain(DecodeKeyBE(lo), DecodeKeyBE(hi));
  }
  void MultiMayContain(const std::string_view* lo, const std::string_view* hi,
                       size_t n, uint8_t* out) const override {
    std::vector<uint64_t> los(n), his(n);
    for (size_t i = 0; i < n; ++i) {
      los[i] = DecodeKeyBE(lo[i]);
      his[i] = DecodeKeyBE(hi[i]);
    }
    filter_->MultiMayContain(los.data(), his.data(), n, out);
  }
  uint64_t SizeBits() const override { return filter_->SizeBits(); }
  std::optional<double> ModeledFpr() const override {
    return filter_->ModeledFpr();
  }
  bool Serialize(std::string* out) const override {
    filter_->Serialize(out);
    return true;
  }

 private:
  std::unique_ptr<RangeFilter> filter_;
};

class StrFilterAdapter : public SstFilter {
 public:
  explicit StrFilterAdapter(std::unique_ptr<StrRangeFilter> filter)
      : filter_(std::move(filter)) {}
  bool MayContain(std::string_view lo, std::string_view hi) const override {
    return filter_->MayContain(lo, hi);
  }
  void MultiMayContain(const std::string_view* lo, const std::string_view* hi,
                       size_t n, uint8_t* out) const override {
    filter_->MultiMayContain(lo, hi, n, out);
  }
  uint64_t SizeBits() const override { return filter_->SizeBits(); }
  std::optional<double> ModeledFpr() const override {
    return filter_->ModeledFpr();
  }
  bool Serialize(std::string* out) const override {
    filter_->Serialize(out);
    return true;
  }

 private:
  std::unique_ptr<StrRangeFilter> filter_;
};

// ---------------------------------------------------------------------------
// Policies
// ---------------------------------------------------------------------------

class NullPolicy : public FilterPolicy {
 public:
  std::unique_ptr<SstFilter> Build(
      const std::vector<std::string>&,
      const std::vector<std::pair<std::string, std::string>>&) const override {
    return nullptr;
  }
  std::string Name() const override { return "none"; }
};

/// The one policy implementation: resolves the spec through the
/// FilterRegistry at build time, so it works for every registered family
/// (integer families see 8-byte big-endian decoded keys, string families
/// see raw keys).
class RegistryPolicy : public FilterPolicy {
 public:
  RegistryPolicy(FilterSpec spec, bool str_mode, bool bpk_overridable)
      : spec_(std::move(spec)),
        str_mode_(str_mode),
        bpk_overridable_(bpk_overridable) {
    spec_.GetDouble("bpk", 0.0, &spec_bpk_);
  }

  std::unique_ptr<SstFilter> Build(
      const std::vector<std::string>& keys,
      const std::vector<std::pair<std::string, std::string>>& samples)
      const override {
    return BuildWithSpec(keys, samples, spec_);
  }

  std::unique_ptr<SstFilter> Build(
      const std::vector<std::string>& keys,
      const std::vector<std::pair<std::string, std::string>>& samples,
      const FilterBuildContext& context) const override {
    if (context.bpk_override <= 0.0 || !bpk_overridable_) {
      return BuildWithSpec(keys, samples, spec_);
    }
    FilterSpec spec = spec_;
    spec.Set("bpk", FormatSpecDouble(context.bpk_override));
    return BuildWithSpec(keys, samples, spec);
  }

  double SpecBpk() const override { return spec_bpk_; }

  std::string Name() const override { return spec_.ToString(); }

 private:
  std::unique_ptr<SstFilter> BuildWithSpec(
      const std::vector<std::string>& keys,
      const std::vector<std::pair<std::string, std::string>>& samples,
      const FilterSpec& spec) const {
    if (keys.empty()) return nullptr;
    if (str_mode_) {
      StrFilterBuilder builder(keys);
      builder.Sample(ClipStrQueries(samples, keys.front(), keys.back()));
      auto filter = builder.Build(spec);
      if (filter == nullptr) return nullptr;
      return std::make_unique<StrFilterAdapter>(std::move(filter));
    }
    std::vector<uint64_t> int_keys = DecodeKeys(keys);
    FilterBuilder builder(int_keys);
    builder.Sample(
        DecodeAndClipQueries(samples, int_keys.front(), int_keys.back()));
    auto filter = builder.Build(spec);
    if (filter == nullptr) return nullptr;
    return std::make_unique<IntFilterAdapter>(std::move(filter));
  }

  FilterSpec spec_;
  bool str_mode_;
  bool bpk_overridable_;
  double spec_bpk_ = 0.0;
};

}  // namespace

std::unique_ptr<FilterPolicy> MakeFilterPolicy(const std::string& spec,
                                               Status* status) {
  std::string error;
  FilterSpec parsed;
  if (!FilterSpec::Parse(spec, &parsed, &error)) {
    SetStatus(status, Status::InvalidArgument(error));
    return nullptr;
  }
  if (parsed.family() == "none") {
    if (!parsed.params().empty()) {
      SetStatus(status, Status::InvalidArgument(
                            "\"none\" filter policy takes no parameters"));
      return nullptr;
    }
    return std::make_unique<NullPolicy>();
  }
  const FilterFamily* family = FilterRegistry::Global().Find(parsed.family());
  if (family == nullptr) {
    SetStatus(status, Status::InvalidArgument("unknown filter family \"" +
                                              parsed.family() + "\""));
    return nullptr;
  }
  bool str_mode = family->build_str != nullptr && family->build_int == nullptr;

  // Dry-run against a tiny key set so malformed parameter values fail at
  // policy creation instead of silently disabling filters at flush time.
  // A second dry run with the bpk parameter set decides whether per-level
  // (Monkey) budget overrides apply to this family — families without a
  // bpk knob (SuRF) reject the key and keep their spec untouched.
  FilterSpec overridden = parsed;
  overridden.Set("bpk", "12");
  bool bpk_overridable;
  if (str_mode) {
    std::vector<std::string> dummy = {"a", "b"};
    StrFilterBuilder builder(dummy);
    if (builder.Build(parsed, &error) == nullptr) {
      SetStatus(status, Status::InvalidArgument(error));
      return nullptr;
    }
    bpk_overridable = builder.Build(overridden) != nullptr;
  } else {
    std::vector<uint64_t> dummy = {1, uint64_t{1} << 40};
    FilterBuilder builder(dummy);
    if (builder.Build(parsed, &error) == nullptr) {
      SetStatus(status, Status::InvalidArgument(error));
      return nullptr;
    }
    bpk_overridable = builder.Build(overridden) != nullptr;
  }
  return std::make_unique<RegistryPolicy>(std::move(parsed), str_mode,
                                          bpk_overridable);
}

std::unique_ptr<SstFilter> DeserializeSstFilter(std::string_view blob,
                                                Status* status) {
  std::string error;
  std::unique_ptr<Filter> filter = Filter::Deserialize(blob, &error);
  if (filter == nullptr) {
    SetStatus(status, Status::Corruption(error));
    return nullptr;
  }
  if (filter->kind() == Filter::KeyKind::kInt) {
    return std::make_unique<IntFilterAdapter>(std::unique_ptr<RangeFilter>(
        static_cast<RangeFilter*>(filter.release())));
  }
  return std::make_unique<StrFilterAdapter>(std::unique_ptr<StrRangeFilter>(
      static_cast<StrRangeFilter*>(filter.release())));
}

std::unique_ptr<FilterPolicy> MakeNullFilterPolicy() {
  return MakeFilterPolicy("none");
}
std::unique_ptr<FilterPolicy> MakeBloomFilterPolicy(double bits_per_key) {
  return MakeFilterPolicy("bloom-str:bpk=" + FormatSpecDouble(bits_per_key));
}
std::unique_ptr<FilterPolicy> MakeProteusIntPolicy(double bits_per_key) {
  return MakeFilterPolicy("proteus:bpk=" + FormatSpecDouble(bits_per_key));
}
std::unique_ptr<FilterPolicy> MakeProteusStrPolicy(double bits_per_key,
                                                   uint32_t max_key_bits,
                                                   uint32_t prefix_stride) {
  return MakeFilterPolicy("proteus-str:bpk=" + FormatSpecDouble(bits_per_key) +
                          ",max_key_bits=" + std::to_string(max_key_bits) +
                          ",stride=" + std::to_string(prefix_stride));
}

namespace {
const char* SurfModeName(int suffix_mode) {
  switch (suffix_mode) {
    case 1:
      return "real";
    case 2:
      return "hash";
    default:
      return "base";
  }
}
}  // namespace

std::unique_ptr<FilterPolicy> MakeSurfIntPolicy(int suffix_mode,
                                                uint32_t suffix_bits) {
  return MakeFilterPolicy(std::string("surf:mode=") + SurfModeName(suffix_mode) +
                          ",suffix=" + std::to_string(suffix_bits));
}
std::unique_ptr<FilterPolicy> MakeSurfStrPolicy(int suffix_mode,
                                                uint32_t suffix_bits) {
  return MakeFilterPolicy(std::string("surf-str:mode=") +
                          SurfModeName(suffix_mode) +
                          ",suffix=" + std::to_string(suffix_bits));
}
std::unique_ptr<FilterPolicy> MakeRosettaIntPolicy(double bits_per_key) {
  return MakeFilterPolicy("rosetta:bpk=" + FormatSpecDouble(bits_per_key));
}

}  // namespace proteus
