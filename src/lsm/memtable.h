// MemTableSet — the active write buffer, sharded by user-key hash.
//
// One MemTableSet is N concurrent skiplists (N a fixed power of two from
// DbOptions::memtable_shards) carved from ONE shared arena. A key's
// shard is a hash of the FULL user key, so every version of a key lands
// in the same shard — point reads and visibility walks stay single-shard
// — while the group-commit batch's entries spread across shards and can
// be applied by the batch's own writer threads in parallel (db.cc's
// ApplyGroup). Routing does not need to be stable across restarts: WAL
// replay re-routes every record through the same hash.
//
// Reads merge across shards: SeekGeq takes the minimum candidate over
// all shards (each shard is internally sorted, the set as a whole is
// not). Flush merges the shards back into one globally sorted stream
// through db.cc's merging EntrySource, producing byte-identical SSTs
// regardless of shard count.
//
// Thread safety: Add is safe from any number of threads (skiplist CAS
// inserts + arena bump allocation); readers are wait-free against
// writers. wal_segment is set once at rotation before the set is
// published.

#ifndef PROTEUS_LSM_MEMTABLE_H_
#define PROTEUS_LSM_MEMTABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "hash/murmur3.h"
#include "lsm/ikey.h"
#include "lsm/skiplist.h"
#include "util/arena.h"

namespace proteus {

class MemTableSet {
 public:
  static constexpr size_t kMaxShards = 256;

  /// `shards` is rounded up to a power of two and clamped to
  /// [1, kMaxShards]; 0 means 1.
  explicit MemTableSet(size_t shards) {
    size_t n = 1;
    while (n < shards && n < kMaxShards) n <<= 1;
    mask_ = n - 1;
    shards_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      shards_.push_back(std::make_unique<SkipList>(&arena_));
    }
  }

  size_t shard_count() const { return shards_.size(); }

  /// Which shard `key` routes to. All versions of one key share a shard.
  size_t ShardOf(std::string_view key) const {
    return static_cast<size_t>(
               Murmur3Bytes64(key.data(), key.size(), /*seed=*/0x9E3779B9u)) &
           mask_;
  }

  /// Inserts one version: the stored internal value is `tag | user value`
  /// (written straight into the arena node, no intermediate string).
  /// Thread-safe; returns the shard applied to (per-shard stats).
  size_t Add(std::string_view key, uint64_t seqno, uint8_t tag,
             std::string_view user_value) {
    const size_t shard = ShardOf(key);
    const char tag_byte = static_cast<char>(tag);
    const int64_t cost =
        shards_[shard]->Add(key, seqno, {&tag_byte, 1}, user_value);
    bytes_.fetch_add(cost, std::memory_order_relaxed);
    return shard;
  }

  /// Newest version of exactly `key` visible at `snapshot` — single-shard.
  bool Get(std::string_view key, uint64_t snapshot,
           SkipList::Entry* out) const {
    return shards_[ShardOf(key)]->Get(key, snapshot, out);
  }

  /// Smallest key >= `key` with a version visible at `snapshot`, across
  /// ALL shards (each shard contributes its own candidate; the minimum
  /// wins, ties broken toward the newer version — but ties cannot happen:
  /// one key lives in one shard).
  bool SeekGeq(std::string_view key, uint64_t snapshot,
               SkipList::Entry* out) const {
    bool found = false;
    SkipList::Entry best;
    for (const auto& shard : shards_) {
      SkipList::Entry e;
      if (!shard->SeekGeq(key, snapshot, &e)) continue;
      if (!found || e.key < best.key) {
        best = e;
        found = true;
      }
    }
    if (found) *out = best;
    return found;
  }

  /// Entry versions across all shards.
  uint64_t size() const {
    uint64_t n = 0;
    for (const auto& shard : shards_) n += shard->size();
    return n;
  }

  /// Logical byte cost of the stored entries (flush-trigger accounting).
  int64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }

  /// Bytes reserved by the backing arena (DbStats observability).
  size_t ArenaBytes() const { return arena_.MemoryUsage(); }

  /// Direct shard access — the flush path's merge source reads each
  /// shard's sorted stream through SkipList::Iterator.
  const SkipList& shard(size_t i) const { return *shards_[i]; }

  /// Oldest WAL segment holding this set's writes; segments below the
  /// minimum across live memtables are obsolete after a flush. Set once
  /// before the set is published (db.cc's rotation).
  uint64_t wal_segment = 0;

 private:
  Arena arena_;
  size_t mask_ = 0;
  std::vector<std::unique_ptr<SkipList>> shards_;
  std::atomic<int64_t> bytes_{0};
};

}  // namespace proteus

#endif  // PROTEUS_LSM_MEMTABLE_H_
