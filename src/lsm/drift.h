// The drift detector: decides, from one SST's observed probe counters and
// the live query window, whether the file's filter was designed for a
// workload that no longer exists and should be rebuilt from a fresh
// sample at the next maintenance pass.
//
// Two independent triggers, both gated on a minimum number of probes so
// a handful of unlucky false positives cannot thrash redesigns:
//
//  * Observed-FPR blowout: the filter's live false-positive rate —
//    false positives over the checks whose range was actually empty for
//    this file (checks - true-positive probes) — exceeds `fpr_factor`
//    times the FPR the design model promised (floored at `fpr_floor`,
//    so a 0.0001 model estimate does not make a 0.0005 observation look
//    like drift). The denominator matters: false positives over PROBES
//    is ~1.0 on any empty-heavy workload regardless of filter quality,
//    which would re-flag a freshly redesigned file forever.
//  * Signature shift: the decayed range-shape signature of the sampled
//    query window (SampleQueryQueue::Signature) moved at least
//    `signature_bits` away from its value when the filter was designed —
//    or the filter was designed before any query had ever been sampled
//    and a real window exists now. Requires `min_window_samples` fresh
//    samples since the design so one odd query cannot trigger it.
//
// Pure functions over a value struct: the LSM fills DriftSignal from its
// per-file atomics, and the unit tests drive synthetic counters through
// exactly the documented thresholds.

#ifndef PROTEUS_LSM_DRIFT_H_
#define PROTEUS_LSM_DRIFT_H_

#include <cmath>
#include <cstdint>

namespace proteus {

struct DriftOptions {
  /// Observed FPR must exceed this multiple of the modeled FPR.
  double fpr_factor = 4.0;
  /// Modeled-FPR floor for the blowout comparison.
  double fpr_floor = 0.01;
  /// Minimum filter passes (SST probes) before either trigger can fire.
  uint64_t min_probes = 256;
  /// Signature distance (bits of shared lo/hi prefix) that counts as a
  /// range-distribution shift.
  double signature_bits = 8.0;
  /// Queries sampled into the window since the design before the
  /// signature trigger may fire.
  uint64_t min_window_samples = 64;
};

/// One SST's drift evidence. Negative doubles mean "not available".
struct DriftSignal {
  uint64_t checks = 0;           // times the filter was consulted
  uint64_t probes = 0;           // filter passes that probed the SST
  uint64_t false_positives = 0;  // of those, probes that found nothing
  double modeled_fpr = -1.0;     // design model's promise (< 0: none)
  double design_signature = -1.0;  // window signature at design time
  double live_signature = -1.0;    // window signature now
  uint64_t window_samples = 0;     // queries sampled since the design
};

enum class DriftReason { kNone, kFprExceeded, kSignatureShift };

/// False positives over the checks whose range held no key in this file:
/// a probe that found something proves its range was non-empty, so
/// empty-range checks = checks - (probes - false_positives). This is the
/// live counterpart of the model's FPR (which is also conditioned on the
/// query being empty).
inline double ObservedFpr(const DriftSignal& s) {
  const uint64_t true_positives = s.probes - s.false_positives;
  if (s.checks <= true_positives) return 0.0;
  return static_cast<double>(s.false_positives) /
         static_cast<double>(s.checks - true_positives);
}

/// Applies the documented thresholds. The signature trigger is checked
/// first: a shifted window invalidates the design outright, while an FPR
/// blowout alone may just be a miscalibrated model worth one resample.
inline DriftReason DetectDrift(const DriftSignal& s, const DriftOptions& o) {
  if (s.probes < o.min_probes) return DriftReason::kNone;
  if (s.window_samples >= o.min_window_samples && s.live_signature >= 0.0) {
    if (s.design_signature < 0.0 ||
        std::fabs(s.live_signature - s.design_signature) >=
            o.signature_bits) {
      return DriftReason::kSignatureShift;
    }
  }
  if (s.modeled_fpr >= 0.0 &&
      ObservedFpr(s) >
          o.fpr_factor * std::max(s.modeled_fpr, o.fpr_floor)) {
    return DriftReason::kFprExceeded;
  }
  return DriftReason::kNone;
}

}  // namespace proteus

#endif  // PROTEUS_LSM_DRIFT_H_
