// SST block format.
//
// A data block holds sorted key/value entries followed by a fixed-width
// offset array (for in-block binary search) and a 32-bit checksum:
//
//   entry*  := varint(klen) varint(vlen) key value
//   trailer := uint32 offset[n] | uint32 n | uint32 checksum
//
// Blocks are compressed with the RLE codec before hitting disk; the
// checksum covers the uncompressed payload (corruption is detected after
// decompression).

#ifndef PROTEUS_LSM_BLOCK_H_
#define PROTEUS_LSM_BLOCK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace proteus {

class BlockBuilder {
 public:
  void Add(std::string_view key, std::string_view value);
  bool empty() const { return offsets_.empty(); }
  size_t SizeEstimate() const {
    return buffer_.size() + offsets_.size() * 4 + 8;
  }
  /// Seals the block and returns the uncompressed payload. Resets state.
  std::string Finish();

 private:
  std::string buffer_;
  std::vector<uint32_t> offsets_;
};

class BlockReader {
 public:
  /// Parses an uncompressed block; verifies the checksum. Keeps a copy of
  /// the payload.
  bool Init(std::string payload);

  size_t n_entries() const { return n_; }
  std::string_view KeyAt(size_t i) const;
  std::string_view ValueAt(size_t i) const;

  /// Index of the first entry with key >= `key` (== n_entries() if none).
  size_t LowerBound(std::string_view key) const;

 private:
  void Entry(size_t i, std::string_view* key, std::string_view* value) const;

  std::string payload_;
  size_t n_ = 0;
  const char* offsets_base_ = nullptr;
};

}  // namespace proteus

#endif  // PROTEUS_LSM_BLOCK_H_
