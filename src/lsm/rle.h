// Zero-run RLE block codec — the stand-in for LZ4/ZSTD in miniLSM
// (DESIGN.md substitutions). The paper's value payloads are half zero
// bytes (compression ratio 0.5, Section 6.2); this codec compresses zero
// runs and leaves other bytes literal, reproducing the same on-disk volume
// without external libraries.

#ifndef PROTEUS_LSM_RLE_H_
#define PROTEUS_LSM_RLE_H_

#include <string>
#include <string_view>

namespace proteus {

/// Compresses `input`. Output begins with a 1-byte tag: 0 = stored raw
/// (incompressible), 1 = RLE. Always succeeds.
std::string RleCompress(std::string_view input);

/// Decompresses a buffer produced by RleCompress. Returns false on a
/// malformed buffer (corruption detection).
bool RleDecompress(std::string_view input, std::string* output);

}  // namespace proteus

#endif  // PROTEUS_LSM_RLE_H_
