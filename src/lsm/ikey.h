// Internal value encoding shared by the memtable, WAL, and SSTs.
//
// The Db layer never stores a user value raw: every version of a key
// carries an operation tag (live value vs tombstone) and, since format
// v4, the sequence number the group-commit leader assigned to the write.
// Three encodings coexist on disk:
//
//   memtable / WAL payload ("mem value"):  tag u8 | user value
//       (the seqno travels beside it — a skiplist node field, a WAL
//        payload field — so it is not duplicated inside the bytes)
//   SST v3 value:                          tag u8 | user value
//   SST v4 value:                          tag u8 | seqno u64 LE | user value
//   SST v1/v2 value:                       user value (no tag, no seqno)
//
// Entries without a seqno (legacy files, replayed legacy WAL records)
// decode as seqno 0: visible to every snapshot, ordered among themselves
// by source age exactly as before MVCC existed.

#ifndef PROTEUS_LSM_IKEY_H_
#define PROTEUS_LSM_IKEY_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/serial.h"

namespace proteus {

inline constexpr uint8_t kTagValue = 0;
inline constexpr uint8_t kTagTombstone = 1;

/// Snapshot horizon meaning "latest": every committed seqno is visible.
inline constexpr uint64_t kMaxSequence = ~uint64_t{0};

/// One decoded version of a key, regardless of which encoding it came from.
struct ParsedValue {
  uint8_t tag = kTagValue;
  uint64_t seqno = 0;
  std::string_view user_value;
  bool tombstone() const { return tag == kTagTombstone; }
};

/// tag u8 | user value — the memtable/WAL form (and the SST v3 form).
inline std::string MakeInternalValue(uint8_t tag, std::string_view value) {
  std::string out;
  out.reserve(1 + value.size());
  out.push_back(static_cast<char>(tag));
  out.append(value);
  return out;
}

inline bool ParseInternalValue(std::string_view mem, uint8_t* tag,
                               std::string_view* user_value) {
  if (mem.empty()) return false;
  *tag = static_cast<uint8_t>(mem.front());
  *user_value = mem.substr(1);
  return true;
}

/// tag u8 | seqno u64 | user value — what a v4 SST stores.
inline std::string MakeSstValueV4(uint8_t tag, uint64_t seqno,
                                  std::string_view value) {
  std::string out;
  out.reserve(1 + 8 + value.size());
  out.push_back(static_cast<char>(tag));
  PutFixed64(&out, seqno);
  out.append(value);
  return out;
}

/// Decodes a raw SST value according to the file's footer version.
/// Unknown/legacy versions decode as always-visible live values (the
/// pre-tag format stored user bytes directly).
inline bool ParseSstValue(uint32_t footer_version, std::string_view raw,
                          ParsedValue* out) {
  if (footer_version >= 4) {
    if (raw.size() < 9) return false;
    out->tag = static_cast<uint8_t>(raw.front());
    out->seqno = LoadFixed64(raw.data() + 1);
    out->user_value = raw.substr(9);
    return true;
  }
  if (footer_version == 3) {
    if (raw.empty()) return false;
    out->tag = static_cast<uint8_t>(raw.front());
    out->seqno = 0;
    out->user_value = raw.substr(1);
    return true;
  }
  out->tag = kTagValue;
  out->seqno = 0;
  out->user_value = raw;
  return true;
}

}  // namespace proteus

#endif  // PROTEUS_LSM_IKEY_H_
