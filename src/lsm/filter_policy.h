// Pluggable per-SST filter construction — miniLSM's analogue of RocksDB's
// FilterPolicy, extended to range filters fed by the sample query queue.
//
// Policies are selected by registry spec strings (RocksDB option-string
// style), so every family in the FilterRegistry — and any family
// registered later — is available to the LSM with zero extra plumbing:
//
//   MakeFilterPolicy("none")
//   MakeFilterPolicy("bloom-str:bpk=12")
//   MakeFilterPolicy("proteus:bpk=14")
//   MakeFilterPolicy("surf:mode=real,suffix=4")
//   MakeFilterPolicy("proteus-str:bpk=14,max_key_bits=512,stride=4")
//
// Integer families decode LSM keys as 8-byte big-endian uint64
// (order-preserving); string families see raw keys. Built filters
// serialize through Filter::Serialize, so SST filter blocks can be
// persisted and reloaded with DeserializeSstFilter instead of rebuilt.

#ifndef PROTEUS_LSM_FILTER_POLICY_H_
#define PROTEUS_LSM_FILTER_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace proteus {

/// A built filter attached to one SST file.
class SstFilter {
 public:
  virtual ~SstFilter() = default;
  virtual bool MayContain(std::string_view lo, std::string_view hi) const = 0;

  /// Batch verdicts for MultiSeek: out[i] = MayContain(lo[i], hi[i]).
  /// The default loops; the adapters forward to the wrapped filter's
  /// MultiMayContain, which Bloom-backed families pipeline.
  virtual void MultiMayContain(const std::string_view* lo,
                               const std::string_view* hi, size_t n,
                               uint8_t* out) const {
    for (size_t i = 0; i < n; ++i) out[i] = MayContain(lo[i], hi[i]) ? 1 : 0;
  }

  virtual uint64_t SizeBits() const = 0;

  /// The design model's predicted FPR for this filter (nullopt for
  /// families without a model, or for filters deserialized from disk —
  /// the MANIFEST carries the value across reopen instead).
  virtual std::optional<double> ModeledFpr() const { return std::nullopt; }

  /// Appends the filter's persistent form (Filter::Serialize wire
  /// format). Returns false if this filter cannot be serialized.
  virtual bool Serialize(std::string* /*out*/) const { return false; }
};

/// Where in the tree a filter is being built, and under what budget.
/// Passed by the LSM so per-level (Monkey-style) allocations can override
/// the spec's global bits-per-key for one build.
struct FilterBuildContext {
  int level = 0;
  /// When > 0, build under this bits-per-key budget instead of the
  /// spec's own. Ignored by families without a bpk parameter.
  double bpk_override = 0.0;
};

class FilterPolicy {
 public:
  virtual ~FilterPolicy() = default;

  /// Builds a filter over the SST's sorted keys. `sample_queries` is the
  /// query-queue snapshot (encoded keys, same representation as `keys`).
  virtual std::unique_ptr<SstFilter> Build(
      const std::vector<std::string>& keys,
      const std::vector<std::pair<std::string, std::string>>& sample_queries)
      const = 0;

  /// Context-aware build: the LSM's flush/compaction path passes the
  /// target level and any per-level bpk override. The default ignores
  /// the context (policies without a tunable budget need nothing more).
  virtual std::unique_ptr<SstFilter> Build(
      const std::vector<std::string>& keys,
      const std::vector<std::pair<std::string, std::string>>& sample_queries,
      const FilterBuildContext& /*context*/) const {
    return Build(keys, sample_queries);
  }

  /// The spec's global bits-per-key budget, or 0 when the spec does not
  /// carry one (then per-level allocation has no budget to split).
  virtual double SpecBpk() const { return 0.0; }

  virtual std::string Name() const = 0;
};

/// Builds a policy from a registry spec string ("none" disables
/// filtering). Returns null and fills `status` (InvalidArgument) on an
/// unknown family or a malformed spec.
std::unique_ptr<FilterPolicy> MakeFilterPolicy(const std::string& spec,
                                               Status* status = nullptr);

/// Reconstructs a persisted SST filter block (SstFilter::Serialize
/// output) without rebuilding from keys. Returns null and fills
/// `status` (Corruption) when the blob does not parse.
std::unique_ptr<SstFilter> DeserializeSstFilter(std::string_view blob,
                                                Status* status = nullptr);

// Convenience wrappers over MakeFilterPolicy for the filters the paper
// evaluates (kept for the benches; new call sites should pass spec
// strings directly).

/// No filtering: every Seek touches the SSTs (the paper's no-filter floor).
std::unique_ptr<FilterPolicy> MakeNullFilterPolicy();

/// Full-key Bloom filter (point filtering only; ranges always positive).
std::unique_ptr<FilterPolicy> MakeBloomFilterPolicy(double bits_per_key);

/// Proteus over integer-encoded keys.
std::unique_ptr<FilterPolicy> MakeProteusIntPolicy(double bits_per_key);

/// Proteus over raw string keys, padded to `max_key_bits` (Section 7).
/// `prefix_stride` > 1 coarsens the Bloom-prefix search grid.
std::unique_ptr<FilterPolicy> MakeProteusStrPolicy(double bits_per_key,
                                                   uint32_t max_key_bits,
                                                   uint32_t prefix_stride = 1);

/// SuRF over integer-encoded keys.
std::unique_ptr<FilterPolicy> MakeSurfIntPolicy(int suffix_mode,
                                                uint32_t suffix_bits);

/// SuRF over raw string keys.
std::unique_ptr<FilterPolicy> MakeSurfStrPolicy(int suffix_mode,
                                                uint32_t suffix_bits);

/// Rosetta over integer-encoded keys.
std::unique_ptr<FilterPolicy> MakeRosettaIntPolicy(double bits_per_key);

}  // namespace proteus

#endif  // PROTEUS_LSM_FILTER_POLICY_H_
