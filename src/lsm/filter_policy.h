// Pluggable per-SST filter construction — miniLSM's analogue of RocksDB's
// FilterPolicy, extended to range filters fed by the sample query queue.
//
// Policies exist for every filter the paper evaluates: none, full-key
// Bloom, Proteus (self-designing), SuRF (Base/Real/Hash), and Rosetta.
// Integer mode treats LSM keys as 8-byte big-endian encodings of uint64
// (order-preserving); string mode passes raw keys through.

#ifndef PROTEUS_LSM_FILTER_POLICY_H_
#define PROTEUS_LSM_FILTER_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace proteus {

/// A built filter attached to one SST file.
class SstFilter {
 public:
  virtual ~SstFilter() = default;
  virtual bool MayContain(std::string_view lo, std::string_view hi) const = 0;
  virtual uint64_t SizeBits() const = 0;
};

class FilterPolicy {
 public:
  virtual ~FilterPolicy() = default;

  /// Builds a filter over the SST's sorted keys. `sample_queries` is the
  /// query-queue snapshot (encoded keys, same representation as `keys`).
  virtual std::unique_ptr<SstFilter> Build(
      const std::vector<std::string>& keys,
      const std::vector<std::pair<std::string, std::string>>& sample_queries)
      const = 0;

  virtual std::string Name() const = 0;
};

/// No filtering: every Seek touches the SSTs (the paper's no-filter floor).
std::unique_ptr<FilterPolicy> MakeNullFilterPolicy();

/// Full-key Bloom filter (point filtering only; ranges always positive).
std::unique_ptr<FilterPolicy> MakeBloomFilterPolicy(double bits_per_key);

/// Proteus over integer-encoded keys.
std::unique_ptr<FilterPolicy> MakeProteusIntPolicy(double bits_per_key);

/// Proteus over raw string keys, padded to `max_key_bits` (Section 7).
/// `prefix_stride` > 1 enables the coarse Bloom-prefix search grid.
std::unique_ptr<FilterPolicy> MakeProteusStrPolicy(double bits_per_key,
                                                   uint32_t max_key_bits,
                                                   uint32_t prefix_stride = 1);

/// SuRF over integer-encoded keys.
std::unique_ptr<FilterPolicy> MakeSurfIntPolicy(int suffix_mode,
                                                uint32_t suffix_bits);

/// SuRF over raw string keys.
std::unique_ptr<FilterPolicy> MakeSurfStrPolicy(int suffix_mode,
                                                uint32_t suffix_bits);

/// Rosetta over integer-encoded keys.
std::unique_ptr<FilterPolicy> MakeRosettaIntPolicy(double bits_per_key);

}  // namespace proteus

#endif  // PROTEUS_LSM_FILTER_POLICY_H_
