// A byte-capacity LRU cache for decompressed data blocks, keyed by
// (file id, block offset) — miniLSM's stand-in for the RocksDB block
// cache (Section 6.2 warms and sizes it explicitly).
//
// Thread-safe: one internal mutex serializes lookups, inserts, and
// eviction (readers on many threads share the cache once maintenance
// runs in the background). Payloads are shared_ptr<const string>, so a
// block handed out stays valid after eviction.

#ifndef PROTEUS_LSM_BLOCK_CACHE_H_
#define PROTEUS_LSM_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace proteus {

class BlockCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
  };

  explicit BlockCache(uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Returns the cached block payload or nullptr.
  std::shared_ptr<const std::string> Get(uint64_t file_id, uint64_t offset);

  void Insert(uint64_t file_id, uint64_t offset,
              std::shared_ptr<const std::string> payload);

  /// Drops all blocks of a deleted file (and releases its pinned charge).
  void EraseFile(uint64_t file_id);

  /// Charges `bytes` of memory pinned on behalf of `file_id` (index and
  /// filter blocks held for the file's lifetime) against the cache
  /// budget. Pinned bytes are never evicted themselves but squeeze the
  /// room left for LRU data blocks, mirroring RocksDB's
  /// cache_index_and_filter_blocks accounting. Cumulative per file.
  void AddPinnedBytes(uint64_t file_id, uint64_t bytes);

  /// Releases the pinned charge of a file (EraseFile also does this).
  void ReleasePinnedBytes(uint64_t file_id);

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = Stats{};
  }
  uint64_t used_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return used_;
  }
  uint64_t pinned_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pinned_total_;
  }
  uint64_t capacity() const { return capacity_; }

 private:
  using Key = std::pair<uint64_t, uint64_t>;
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return std::hash<uint64_t>()(k.first * 0x9E3779B97F4A7C15ull ^
                                   k.second);
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const std::string> payload;
  };

  void EvictIfNeeded();                        // callers hold mu_
  void ReleasePinnedLocked(uint64_t file_id);  // callers hold mu_

  mutable std::mutex mu_;
  const uint64_t capacity_;
  uint64_t used_ = 0;
  uint64_t pinned_total_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
  std::unordered_map<uint64_t, uint64_t> pinned_;  // file_id -> bytes
  Stats stats_;
};

}  // namespace proteus

#endif  // PROTEUS_LSM_BLOCK_CACHE_H_
