#include "model/cpfpr.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "bloom/bloom_filter.h"
#include "util/bits.h"

namespace proteus {

namespace {

/// (1 - p)^n for potentially astronomically large n, computed stably.
double PowOneMinus(double p, double n) {
  if (n <= 0) return 1.0;
  if (p <= 0) return 1.0;
  if (p >= 1) return 0.0;
  return std::exp(n * std::log1p(-p));
}

}  // namespace

double CpfprModel::BloomFpr(uint64_t m_bits, uint64_t n_items,
                            BloomProbeMode mode) {
  if (n_items == 0) return 0.0;
  if (m_bits == 0) return 1.0;
  return BloomFilter::TheoreticalFpr(m_bits, n_items, mode);
}

uint32_t CpfprModel::BinIndex(uint64_t regions) {
  if (regions == 0) return 0;
  return static_cast<uint32_t>(64 - std::countl_zero(regions));  // 1+floor(log2)
}

uint64_t CpfprModel::ProteusRegions(const QueryRecord& q, uint32_t l1,
                                    uint32_t l2) {
  if (PrefixCountInRange64(q.lo, q.hi, l1) == 1) {
    // Single l1 region covering the whole query: the paper's I2 = 1, I3 = 0
    // convention; all of Q_l2 is probed.
    return PrefixCountInRange64(q.lo, q.hi, l2);
  }
  uint64_t regions = 0;
  if (q.left_lcp >= l1) {
    uint64_t region_hi = PrefixRangeHi64(PrefixBits64(q.lo, l1), l1);
    regions += PrefixCountInRange64(q.lo, std::min(q.hi, region_hi), l2);
  }
  if (q.right_lcp >= l1) {
    uint64_t region_lo = PrefixRangeLo64(PrefixBits64(q.hi, l1), l1);
    regions += PrefixCountInRange64(std::max(q.lo, region_lo), q.hi, l2);
  }
  return regions;
}

CpfprModel::CpfprModel(const std::vector<uint64_t>& sorted_keys,
                       const std::vector<RangeQuery>& empty_samples) {
  key_stats_ = KeyStats::FromSortedInts(sorted_keys);
  trie_model_ = TrieMemoryModel(key_stats_);
  n_samples_ = empty_samples.size();

  one_bins_.assign(65 * kBins, Bin{});
  proteus_bins_.assign(static_cast<size_t>(65) * 65 * kBins, Bin{});
  two_bins_.assign(static_cast<size_t>(65) * 65 * kBins, TwoBin{});
  records_.reserve(empty_samples.size());
  std::vector<uint64_t> lcp_hist(65, 0);

  for (const RangeQuery& query : empty_samples) {
    // The query is empty, so the first key >= lo is also the first key > hi.
    auto succ = std::lower_bound(sorted_keys.begin(), sorted_keys.end(),
                                 query.lo);
    QueryRecord rec{query.lo, query.hi, 0, 0};
    if (succ != sorted_keys.begin()) {
      rec.left_lcp = LcpBits64(*(succ - 1), query.lo);
    }
    if (succ != sorted_keys.end()) {
      rec.right_lcp = LcpBits64(*succ, query.hi);
    }
    const uint32_t lcp = rec.lcp();
    lcp_hist[lcp]++;

    // 1PBF (Eq. 1): for prefix lengths that can distinguish Q from K, the
    // query issues |Q_l| probabilistic probes.
    for (uint32_t l = lcp + 1; l <= 64; ++l) {
      uint64_t regions = PrefixCountInRange64(query.lo, query.hi, l);
      Bin& bin = one_bins_[l * kBins + BinIndex(regions)];
      bin.count++;
      bin.sum += static_cast<double>(regions);
    }

    // Proteus (Eq. 5): probabilistic only when l1 <= lcp < l2.
    for (uint32_t l1 = 1; l1 <= lcp; ++l1) {
      for (uint32_t l2 = lcp + 1; l2 <= 64; ++l2) {
        uint64_t regions = ProteusRegions(rec, l1, l2);
        Bin& bin =
            proteus_bins_[(static_cast<size_t>(l1) * 65 + l2) * kBins +
                          BinIndex(regions)];
        bin.count++;
        bin.sum += static_cast<double>(regions);
      }
    }

    // 2PBF (Eq. 4): every l1 contributes; l2 <= lcp is a guaranteed FP and
    // is excluded (counted through lcp_ge_).
    for (uint32_t l1 = 1; l1 <= 63; ++l1) {
      uint64_t q_l1 = PrefixCountInRange64(query.lo, query.hi, l1);
      bool i0, i1;
      uint64_t n_mid;
      bool single = q_l1 == 1;
      if (single) {
        i0 = true;
        i1 = false;
        n_mid = 0;
      } else {
        uint64_t mask = l1 == 64 ? 0 : (~uint64_t{0} >> l1);
        i0 = (query.lo & mask) != 0;
        i1 = (query.hi & mask) != mask;
        n_mid = q_l1 - (i0 ? 1 : 0) - (i1 ? 1 : 0);
      }
      bool ink_l = rec.left_lcp >= l1 || (single && lcp >= l1);
      bool ink_r = rec.right_lcp >= l1;
      uint64_t region_hi =
          single ? query.hi
                 : std::min(query.hi,
                            PrefixRangeHi64(PrefixBits64(query.lo, l1), l1));
      uint64_t region_lo =
          std::max(query.lo, PrefixRangeLo64(PrefixBits64(query.hi, l1), l1));
      for (uint32_t l2 = std::max(l1 + 1, lcp + 1); l2 <= 64; ++l2) {
        TwoBin& bin = two_bins_[(static_cast<size_t>(l1) * 65 + l2) * kBins +
                                BinIndex(n_mid)];
        bin.count++;
        bin.sum_mid += static_cast<double>(n_mid);
        if (i0) {
          double l_regions = static_cast<double>(
              PrefixCountInRange64(query.lo, region_hi, l2));
          if (ink_l) {
            bin.cnt_l_ink++;
            bin.sum_l_ink += l_regions;
          } else {
            bin.cnt_l_noink++;
            bin.sum_l_noink += l_regions;
          }
        }
        if (i1) {
          double r_regions = static_cast<double>(
              PrefixCountInRange64(region_lo, query.hi, l2));
          if (ink_r) {
            bin.cnt_r_ink++;
            bin.sum_r_ink += r_regions;
          } else {
            bin.cnt_r_noink++;
            bin.sum_r_noink += r_regions;
          }
        }
      }
    }

    records_.push_back(rec);
  }

  lcp_ge_.assign(66, 0);
  uint64_t acc = 0;
  for (int l = 64; l >= 0; --l) {
    acc += lcp_hist[l];
    lcp_ge_[l] = acc;
  }
  lcp_ge_[65] = 0;
}

double CpfprModel::OnePbfFpr(uint32_t prefix_len, uint64_t mem_bits,
                             BloomProbeMode mode) const {
  if (n_samples_ == 0 || prefix_len == 0 || prefix_len > 64) return 1.0;
  double p = BloomFpr(mem_bits, key_stats_.k_counts[prefix_len], mode);
  double fp = static_cast<double>(lcp_ge_[prefix_len]);
  const Bin* bins = &one_bins_[prefix_len * kBins];
  for (uint32_t b = 0; b < kBins; ++b) {
    if (bins[b].count == 0) continue;
    double avg = bins[b].sum / static_cast<double>(bins[b].count);
    fp += static_cast<double>(bins[b].count) * (1.0 - PowOneMinus(p, avg));
  }
  return fp / static_cast<double>(n_samples_);
}

double CpfprModel::ProteusFpr(uint32_t trie_depth, uint32_t bf_len,
                              uint64_t mem_bits, BloomProbeMode mode) const {
  if (n_samples_ == 0) return 1.0;
  uint64_t trie_bits = 0;
  if (trie_depth > 0) {
    trie_bits = trie_model_.TrieSizeBits(trie_depth);
    if (trie_bits > mem_bits) return kInfeasible;
  }
  if (bf_len == 0) {
    // Pure trie: FPR is the fraction of queries the trie cannot resolve.
    if (trie_depth == 0) return 1.0;
    return static_cast<double>(lcp_ge_[trie_depth]) /
           static_cast<double>(n_samples_);
  }
  if (bf_len <= trie_depth || bf_len > 64) return kInfeasible;
  if (trie_depth == 0) return OnePbfFpr(bf_len, mem_bits, mode);

  uint64_t bf_mem = mem_bits - trie_bits;
  double p = BloomFpr(bf_mem, key_stats_.k_counts[bf_len], mode);
  double fp = static_cast<double>(lcp_ge_[bf_len]);  // lcp >= l2: always FP
  const Bin* bins =
      &proteus_bins_[(static_cast<size_t>(trie_depth) * 65 + bf_len) * kBins];
  for (uint32_t b = 0; b < kBins; ++b) {
    if (bins[b].count == 0) continue;
    double avg = bins[b].sum / static_cast<double>(bins[b].count);
    fp += static_cast<double>(bins[b].count) * (1.0 - PowOneMinus(p, avg));
  }
  return fp / static_cast<double>(n_samples_);
}

double CpfprModel::EndFactor(double p1, double p2, const TwoBin& bin) const {
  // Average multiplicative survival factor contributed by the left and
  // right end regions across the bin's queries.
  double n = static_cast<double>(bin.count);
  auto side = [&](uint32_t cnt_ink, double sum_ink, uint32_t cnt_noink,
                  double sum_noink) {
    double contained = n - cnt_ink - cnt_noink;  // I0/I1 == 0: no end region
    double f = contained;  // factor 1 each
    if (cnt_ink > 0) {
      double avg = sum_ink / cnt_ink;
      f += cnt_ink * PowOneMinus(p2, avg);
    }
    if (cnt_noink > 0) {
      double avg = sum_noink / cnt_noink;
      f += cnt_noink * ((1.0 - p1) + p1 * PowOneMinus(p2, avg));
    }
    return f / n;
  };
  return side(bin.cnt_l_ink, bin.sum_l_ink, bin.cnt_l_noink, bin.sum_l_noink) *
         side(bin.cnt_r_ink, bin.sum_r_ink, bin.cnt_r_noink, bin.sum_r_noink);
}

double CpfprModel::TwoPbfFpr(uint32_t l1, uint32_t l2, double frac1,
                             uint64_t mem_bits, BloomProbeMode mode) const {
  if (n_samples_ == 0 || l2 == 0 || l2 > 64) return 1.0;
  if (l1 == 0) {
    return OnePbfFpr(l2, mem_bits, mode);  // degenerate: single filter
  }
  if (l1 >= l2) return kInfeasible;
  uint64_t m1 = static_cast<uint64_t>(static_cast<double>(mem_bits) * frac1);
  uint64_t m2 = mem_bits - m1;
  double p1 = BloomFpr(m1, key_stats_.k_counts[l1], mode);
  double p2 = BloomFpr(m2, key_stats_.k_counts[l2], mode);
  // Middle regions: fully contained l1 regions, each triggering 2^{l2-l1}
  // second-filter probes when the first filter false-positives. Eq. 4's
  // binomial sum in closed form.
  double probes_per_mid = std::pow(2.0, static_cast<double>(l2 - l1));
  double mid = (1.0 - p1) + p1 * PowOneMinus(p2, probes_per_mid);
  double ln_mid = mid > 0 ? std::log(mid) : -1e300;

  double fp = static_cast<double>(lcp_ge_[l2]);
  const TwoBin* bins =
      &two_bins_[(static_cast<size_t>(l1) * 65 + l2) * kBins];
  for (uint32_t b = 0; b < kBins; ++b) {
    const TwoBin& bin = bins[b];
    if (bin.count == 0) continue;
    double avg_mid = bin.sum_mid / static_cast<double>(bin.count);
    double p_neg_mid = avg_mid > 0 ? std::exp(avg_mid * ln_mid) : 1.0;
    double p_neg = p_neg_mid * EndFactor(p1, p2, bin);
    fp += static_cast<double>(bin.count) * (1.0 - p_neg);
  }
  return fp / static_cast<double>(n_samples_);
}

double CpfprModel::OnePbfFprExact(uint32_t prefix_len, uint64_t mem_bits,
                                  BloomProbeMode mode) const {
  if (n_samples_ == 0 || prefix_len == 0 || prefix_len > 64) return 1.0;
  double p = BloomFpr(mem_bits, key_stats_.k_counts[prefix_len], mode);
  double fp = 0;
  for (const QueryRecord& rec : records_) {
    if (rec.lcp() >= prefix_len) {
      fp += 1.0;
    } else {
      double regions = static_cast<double>(
          PrefixCountInRange64(rec.lo, rec.hi, prefix_len));
      fp += 1.0 - PowOneMinus(p, regions);
    }
  }
  return fp / static_cast<double>(n_samples_);
}

double CpfprModel::ProteusFprExact(uint32_t trie_depth, uint32_t bf_len,
                                   uint64_t mem_bits,
                                   BloomProbeMode mode) const {
  if (n_samples_ == 0) return 1.0;
  uint64_t trie_bits = 0;
  if (trie_depth > 0) {
    trie_bits = trie_model_.TrieSizeBits(trie_depth);
    if (trie_bits > mem_bits) return kInfeasible;
  }
  if (bf_len == 0) {
    if (trie_depth == 0) return 1.0;
    return static_cast<double>(lcp_ge_[trie_depth]) /
           static_cast<double>(n_samples_);
  }
  if (bf_len <= trie_depth || bf_len > 64) return kInfeasible;
  if (trie_depth == 0) return OnePbfFprExact(bf_len, mem_bits, mode);
  double p = BloomFpr(mem_bits - trie_bits, key_stats_.k_counts[bf_len], mode);
  double fp = 0;
  for (const QueryRecord& rec : records_) {
    uint32_t lcp = rec.lcp();
    if (lcp < trie_depth) continue;  // resolved in the trie
    if (lcp >= bf_len) {
      fp += 1.0;
      continue;
    }
    double regions =
        static_cast<double>(ProteusRegions(rec, trie_depth, bf_len));
    fp += 1.0 - PowOneMinus(p, regions);
  }
  return fp / static_cast<double>(n_samples_);
}

ProteusDesign CpfprModel::SelectProteus(uint64_t mem_bits,
                                        BloomProbeMode mode) const {
  ProteusDesign best;
  best.expected_fpr = 1.0;
  best.trie_depth = 0;
  best.bf_prefix_len = 0;
  for (uint32_t l1 = 0; l1 <= 64; ++l1) {
    if (l1 > 0 && trie_model_.TrieSizeBits(l1) > mem_bits) break;
    double trie_only = ProteusFpr(l1, 0, mem_bits, mode);
    if (trie_only <= best.expected_fpr) {
      best = {l1, 0, trie_only,
              l1 > 0 ? trie_model_.TrieSizeBits(l1) : 0};
    }
    for (uint32_t l2 = l1 + 1; l2 <= 64; ++l2) {
      double fpr = ProteusFpr(l1, l2, mem_bits, mode);
      if (fpr <= best.expected_fpr) {
        best = {l1, l2, fpr, l1 > 0 ? trie_model_.TrieSizeBits(l1) : 0};
      }
    }
  }
  return best;
}

OnePbfDesign CpfprModel::SelectOnePbf(uint64_t mem_bits,
                                      BloomProbeMode mode) const {
  OnePbfDesign best;
  best.expected_fpr = 1.0;
  best.prefix_len = 64;
  for (uint32_t l = 1; l <= 64; ++l) {
    double fpr = OnePbfFpr(l, mem_bits, mode);
    if (fpr <= best.expected_fpr) best = {l, fpr};
  }
  return best;
}

TwoPbfDesign CpfprModel::SelectTwoPbf(uint64_t mem_bits,
                                      BloomProbeMode mode) const {
  TwoPbfDesign best;
  best.expected_fpr = 1.0;
  best.l1 = 0;
  best.l2 = 64;
  // Single-filter degenerate candidates first.
  for (uint32_t l2 = 1; l2 <= 64; ++l2) {
    double fpr = OnePbfFpr(l2, mem_bits, mode);
    if (fpr <= best.expected_fpr) best = {0, l2, 0.0, fpr};
  }
  for (double frac : {0.4, 0.5, 0.6}) {
    for (uint32_t l1 = 1; l1 <= 63; ++l1) {
      for (uint32_t l2 = l1 + 1; l2 <= 64; ++l2) {
        double fpr = TwoPbfFpr(l1, l2, frac, mem_bits, mode);
        if (fpr <= best.expected_fpr) best = {l1, l2, frac, fpr};
      }
    }
  }
  return best;
}

}  // namespace proteus
