#include "model/bpk_alloc.h"

#include <algorithm>
#include <cmath>

#include "model/cpfpr.h"

namespace proteus {
namespace {

constexpr double kMinBpk = 1.0;
constexpr double kStepBpk = 0.125;
// Span over which the marginal gain is measured. The Bloom FPR curve is
// only piecewise-decreasing in bpk: at each integer hash-count
// transition it jumps up a little, so a one-step (0.125 bpk) difference
// can come out negative and permanently wedge the greedy fill against
// the bump. One full bpk always spans past a transition, giving a
// smoothed — and strictly positive — derivative.
constexpr double kGainSpanBpk = 1.0;

double LevelFpr(const LevelLoad& level, double bpk, BloomProbeMode mode) {
  const auto m_bits = static_cast<uint64_t>(
      std::llround(bpk * static_cast<double>(level.keys)));
  return level.probe_weight * CpfprModel::BloomFpr(m_bits, level.keys, mode);
}

/// Expected false-positive probes removed per bit when raising this
/// level's allocation from `bpk`.
double MarginalGain(const LevelLoad& level, double bpk,
                    BloomProbeMode mode) {
  const double drop =
      LevelFpr(level, bpk, mode) - LevelFpr(level, bpk + kGainSpanBpk, mode);
  return drop / (static_cast<double>(level.keys) * kGainSpanBpk);
}

}  // namespace

std::vector<double> MonkeyBpkSplit(double global_bpk,
                                   const std::vector<LevelLoad>& levels,
                                   BloomProbeMode mode) {
  std::vector<double> out(levels.size(), global_bpk);
  if (global_bpk <= kMinBpk) return out;  // no room below the floor

  std::vector<size_t> live;  // indices of levels that hold keys
  double total_keys = 0.0;
  for (size_t i = 0; i < levels.size(); ++i) {
    if (levels[i].keys == 0) continue;
    live.push_back(i);
    total_keys += static_cast<double>(levels[i].keys);
  }
  if (live.size() < 2) return out;  // nothing to trade between

  const double max_bpk = std::max(2.0 * global_bpk, global_bpk + 8.0);
  double remaining = global_bpk * total_keys;  // budget in bits
  for (size_t i : live) {
    out[i] = kMinBpk;
    remaining -= kMinBpk * static_cast<double>(levels[i].keys);
  }

  // Greedy water-filling in kStepBpk increments: each step goes to the
  // level whose filter sheds the most expected false-positive probes per
  // bit. The Bloom FPR curve is convex in bpk, so the greedy fill tracks
  // the Lagrangian optimum to within one step.
  for (;;) {
    size_t best = levels.size();
    double best_gain = 0.0;
    for (size_t i : live) {
      if (out[i] + kStepBpk > max_bpk) continue;
      const double cost = static_cast<double>(levels[i].keys) * kStepBpk;
      if (cost > remaining) continue;
      const double gain = MarginalGain(levels[i], out[i], mode);
      if (best == levels.size() || gain > best_gain) {
        best = i;
        best_gain = gain;
      }
    }
    if (best == levels.size()) break;
    out[best] += kStepBpk;
    remaining -= static_cast<double>(levels[best].keys) * kStepBpk;
  }

  // Exact budget conservation: hand the sub-step leftover to the levels
  // with the best marginal gain as fractional bpk.
  while (remaining > 1e-9) {
    size_t best = levels.size();
    double best_gain = -1.0;
    for (size_t i : live) {
      if (out[i] >= max_bpk) continue;
      const double gain = MarginalGain(levels[i], out[i], mode);
      if (gain > best_gain) {
        best = i;
        best_gain = gain;
      }
    }
    if (best == levels.size()) break;  // everyone capped
    const double keys = static_cast<double>(levels[best].keys);
    const double delta = std::min(remaining / keys, max_bpk - out[best]);
    out[best] += delta;
    remaining -= delta * keys;
  }
  return out;
}

}  // namespace proteus
