#include "model/cpfpr_str.h"

#include <algorithm>
#include <cmath>

#include "bloom/prefix_bloom.h"
#include "util/bitstring.h"

namespace proteus {
namespace {

constexpr uint64_t kSaturated = uint64_t{1} << 62;

/// 64-bit window of `s` starting at bit `from` (MSB-first, zero padded).
uint64_t BitWindow(std::string_view s, uint64_t from) {
  uint64_t v = 0;
  for (uint32_t j = 0; j < 64; ++j) {
    v = (v << 1) | (StrGetBit(s, from + j) ? 1 : 0);
  }
  return v;
}

double PowOneMinus(double p, double n) {
  if (n <= 0 || p <= 0) return 1.0;
  if (p >= 1) return 0.0;
  return std::exp(n * std::log1p(-p));
}

}  // namespace

StrCpfprModel::StrCpfprModel(const std::vector<std::string>& sorted_keys,
                             const std::vector<StrRangeQuery>& samples,
                             uint32_t max_bits, StrCpfprOptions options)
    : max_bits_(max_bits), options_(options) {
  key_stats_ = KeyStats::FromSortedStrings(sorted_keys, max_bits);
  trie_model_ = TrieMemoryModel(key_stats_);

  // Trie-depth grid: spread over the full depth range (feasibility at a
  // given budget is checked at evaluation time). Always include 0.
  trie_grid_.push_back(0);
  uint32_t trie_stride =
      std::max<uint32_t>(1, max_bits / std::max<uint32_t>(1, options.trie_grid));
  for (uint32_t d = trie_stride; d <= max_bits; d += trie_stride) {
    trie_grid_.push_back(d);
  }
  if (trie_grid_.back() != max_bits) trie_grid_.push_back(max_bits);

  uint32_t bloom_stride =
      std::max<uint32_t>(1, max_bits / std::max<uint32_t>(1, options.bloom_grid));
  for (uint32_t l = bloom_stride; l <= max_bits; l += bloom_stride) {
    bloom_grid_.push_back(l);
  }
  if (bloom_grid_.back() != max_bits) bloom_grid_.push_back(max_bits);

  records_.reserve(samples.size());
  for (const StrRangeQuery& q : samples) {
    Record r;
    auto succ =
        std::lower_bound(sorted_keys.begin(), sorted_keys.end(), q.lo);
    r.left_lcp = 0;
    r.right_lcp = 0;
    if (succ != sorted_keys.begin()) {
      r.left_lcp =
          static_cast<uint32_t>(StrLcpBits(*(succ - 1), q.lo, max_bits));
    }
    if (succ != sorted_keys.end()) {
      r.right_lcp =
          static_cast<uint32_t>(StrLcpBits(*succ, q.hi, max_bits));
    }
    r.lcp = std::max(r.left_lcp, r.right_lcp);
    r.lcp_lr = static_cast<uint32_t>(StrLcpBits(q.lo, q.hi, max_bits));
    r.q_lo_win = BitWindow(q.lo, r.lcp_lr);
    r.q_hi_win = BitWindow(q.hi, r.lcp_lr);
    r.lo_win.reserve(trie_grid_.size());
    r.hi_win.reserve(trie_grid_.size());
    for (uint32_t d : trie_grid_) {
      r.lo_win.push_back(BitWindow(q.lo, d));
      r.hi_win.push_back(BitWindow(q.hi, d));
    }
    records_.push_back(std::move(r));
  }
}

size_t StrCpfprModel::GridIndex(uint32_t trie_depth) const {
  auto it = std::lower_bound(trie_grid_.begin(), trie_grid_.end(), trie_depth);
  if (it == trie_grid_.end()) return trie_grid_.size() - 1;
  return static_cast<size_t>(it - trie_grid_.begin());
}

uint64_t StrCpfprModel::QCount(const Record& r, uint32_t l2) const {
  if (l2 <= r.lcp_lr) return 1;
  uint32_t w = l2 - r.lcp_lr;
  if (w > 62) return kSaturated;
  return (r.q_hi_win >> (64 - w)) - (r.q_lo_win >> (64 - w)) + 1;
}

uint64_t StrCpfprModel::Regions(const Record& r, size_t g1, uint32_t l1,
                                uint32_t l2) const {
  if (l1 <= r.lcp_lr) {
    // Single l1 region covers the whole query (paper's |Q_l1| == 1 case).
    return QCount(r, l2);
  }
  uint64_t regions = 0;
  uint32_t w = l2 - l1;
  if (w > 62) return kSaturated;
  if (r.left_lcp >= l1) {
    // |L| = 2^{l2-l1} - value(bits l1..l2 of lo).
    regions += (uint64_t{1} << w) - (r.lo_win[g1] >> (64 - w));
  }
  if (r.right_lcp >= l1) {
    regions += (r.hi_win[g1] >> (64 - w)) + 1;
  }
  return regions;
}

double StrCpfprModel::ProteusFpr(uint32_t trie_depth, uint32_t bf_len,
                                 uint64_t mem_bits,
                                 BloomProbeMode mode) const {
  if (records_.empty()) return 1.0;
  uint64_t trie_bits = 0;
  if (trie_depth > 0) {
    trie_bits = trie_model_.TrieSizeBits(trie_depth);
    if (trie_bits > mem_bits) return CpfprModel::kInfeasible;
  }
  if (bf_len == 0) {
    if (trie_depth == 0) return 1.0;
    double fp = 0;
    for (const Record& r : records_) fp += r.lcp >= trie_depth ? 1.0 : 0.0;
    return fp / static_cast<double>(records_.size());
  }
  if (bf_len <= trie_depth || bf_len > max_bits_) {
    return CpfprModel::kInfeasible;
  }
  const size_t g1 = GridIndex(trie_depth);
  const uint32_t l1 = trie_depth == 0 ? 0 : trie_grid_[g1];
  double p = CpfprModel::BloomFpr(mem_bits - trie_bits,
                                  key_stats_.k_counts[bf_len], mode);
  double fp = 0;
  for (const Record& r : records_) {
    if (l1 > 0 && r.lcp < l1) continue;  // resolved in the trie
    if (r.lcp >= bf_len) {
      fp += 1.0;
      continue;
    }
    uint64_t regions = l1 == 0 ? QCount(r, bf_len)
                               : Regions(r, g1, l1, bf_len);
    fp += 1.0 - PowOneMinus(p, static_cast<double>(regions));
  }
  return fp / static_cast<double>(records_.size());
}

ProteusDesign StrCpfprModel::SelectProteus(uint64_t mem_bits,
                                           BloomProbeMode mode) const {
  ProteusDesign best;
  best.expected_fpr = 1.0;
  for (uint32_t l1 : trie_grid_) {
    if (l1 > 0 && trie_model_.TrieSizeBits(l1) > mem_bits) break;
    double trie_only = ProteusFpr(l1, 0, mem_bits, mode);
    if (trie_only <= best.expected_fpr) {
      best = {l1, 0, trie_only, l1 > 0 ? trie_model_.TrieSizeBits(l1) : 0};
    }
    for (uint32_t l2 : bloom_grid_) {
      if (l2 <= l1) continue;
      double fpr = ProteusFpr(l1, l2, mem_bits, mode);
      if (fpr <= best.expected_fpr) {
        best = {l1, l2, fpr, l1 > 0 ? trie_model_.TrieSizeBits(l1) : 0};
      }
    }
  }
  return best;
}

}  // namespace proteus
