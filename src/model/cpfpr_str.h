// CPFPR model for variable-length (string) keys — Section 7.1.
//
// The key space is mapped onto a fixed-length space by trailing-NUL
// padding, and the total order becomes lexicographic; the model itself is
// unchanged. What changes is scale: with keys of k bits there are O(k^2)
// designs, so — following Section 7.2 — the model evaluates a coarse grid:
// up to `trie_grid` trie depths across the feasible range and
// `bloom_grid` uniformly spaced Bloom prefix lengths (the paper uses 128).
//
// Per-sample statistics are reduced to 64-bit windows anchored at each
// grid trie depth, making each (l1, l2) configuration O(1) per sample.

#ifndef PROTEUS_MODEL_CPFPR_STR_H_
#define PROTEUS_MODEL_CPFPR_STR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/query.h"
#include "model/cpfpr.h"
#include "model/key_stats.h"
#include "model/trie_memory.h"

namespace proteus {

struct StrCpfprOptions {
  uint32_t bloom_grid = 128;  // Bloom prefix lengths evaluated
  uint32_t trie_grid = 64;    // trie depths evaluated
};

class StrCpfprModel {
 public:
  using Options = StrCpfprOptions;

  /// Keys sorted lexicographically; `samples` must be empty queries whose
  /// bounds are padded-key strings. `max_bits` is the maximum key length
  /// in bits.
  StrCpfprModel(const std::vector<std::string>& sorted_keys,
                const std::vector<StrRangeQuery>& samples, uint32_t max_bits,
                StrCpfprOptions options = StrCpfprOptions());

  /// Expected FPR of a (trie depth, Bloom prefix length) configuration.
  /// Both lengths are snapped to the evaluation grid. `mode` names the
  /// Bloom probe layout the built filter will use.
  double ProteusFpr(uint32_t trie_depth, uint32_t bf_len, uint64_t mem_bits,
                    BloomProbeMode mode = BloomProbeMode::kStandard) const;

  ProteusDesign SelectProteus(
      uint64_t mem_bits, BloomProbeMode mode = BloomProbeMode::kStandard) const;

  uint32_t max_bits() const { return max_bits_; }
  const KeyStats& key_stats() const { return key_stats_; }
  const TrieMemoryModel& trie_model() const { return trie_model_; }
  const std::vector<uint32_t>& trie_grid() const { return trie_grid_; }
  const std::vector<uint32_t>& bloom_grid() const { return bloom_grid_; }

 private:
  struct Record {
    uint32_t lcp;    // max LCP of the query bounds with the key set
    uint32_t lcp_lr; // LCP of lo and hi with each other
    uint32_t left_lcp, right_lcp;
    // 64-bit windows of lo/hi starting at bit lcp_lr (for |Q_l|) and at
    // each grid trie depth (for |L| / |R|).
    uint64_t q_lo_win, q_hi_win;
    std::vector<uint64_t> lo_win, hi_win;  // indexed by trie-grid position
  };

  /// Number of Bloom probes for this record at (grid index g1, length l2).
  uint64_t Regions(const Record& r, size_t g1, uint32_t l1,
                   uint32_t l2) const;

  uint64_t QCount(const Record& r, uint32_t l2) const;

  size_t GridIndex(uint32_t trie_depth) const;

  uint32_t max_bits_;
  Options options_;
  KeyStats key_stats_;
  TrieMemoryModel trie_model_;
  std::vector<uint32_t> trie_grid_;   // ascending candidate trie depths
  std::vector<uint32_t> bloom_grid_;  // ascending candidate Bloom lengths
  std::vector<Record> records_;
};

}  // namespace proteus

#endif  // PROTEUS_MODEL_CPFPR_STR_H_
