// Key-set statistics feeding the CPFPR model (Section 4.3, "Count Key
// Prefixes"): the number of unique l-bit prefixes |K_l| for every l, and
// the number of prefixes at each depth whose subtree holds a single key
// (which the trie memory model uses to account for suffix-extended
// branches). Both are derived in O(n) from successive LCPs of the sorted
// key set.

#ifndef PROTEUS_MODEL_KEY_STATS_H_
#define PROTEUS_MODEL_KEY_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace proteus {

struct KeyStats {
  /// Maximum key length in bits (64 for integer keys).
  uint32_t max_len = 64;

  /// Number of keys (distinct full keys).
  uint64_t n_keys = 0;

  /// k_counts[l] = |K_l|, the number of unique l-bit key prefixes.
  std::vector<uint64_t> k_counts;

  /// unique_counts[l] = number of l-bit prefixes containing exactly one
  /// key. Monotone non-decreasing in l.
  std::vector<uint64_t> unique_counts;

  /// Builds stats from a sorted, deduplicated integer key set.
  static KeyStats FromSortedInts(const std::vector<uint64_t>& sorted_keys);

  /// Builds stats from a sorted string key set (trailing-NUL padding
  /// semantics; keys identical under padding up to max_bits are treated as
  /// one key).
  static KeyStats FromSortedStrings(const std::vector<std::string>& sorted_keys,
                                    uint32_t max_bits);
};

}  // namespace proteus

#endif  // PROTEUS_MODEL_KEY_STATS_H_
