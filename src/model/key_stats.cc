#include "model/key_stats.h"

#include <algorithm>

#include "util/bits.h"
#include "util/bitstring.h"

namespace proteus {
namespace {

// Shared tail: turns per-key LCP data into |K_l| and unique-prefix counts.
//
// lcp_hist[c] counts adjacent sorted pairs with LCP exactly c; a key opens a
// new l-prefix exactly when its LCP with the previous key is < l, so
// |K_l| = 1 + #{pairs with lcp < l}.
//
// m_hist[c] counts keys whose max LCP with either sorted neighbor is c; a
// key is the only key under its l-prefix iff l > m, so
// unique_counts[l] = #{keys with m < l}.
KeyStats Finalize(uint32_t max_len, uint64_t n_keys,
                  std::vector<uint64_t> lcp_hist,
                  std::vector<uint64_t> m_hist) {
  KeyStats stats;
  stats.max_len = max_len;
  stats.n_keys = n_keys;
  stats.k_counts.assign(max_len + 1, 0);
  stats.unique_counts.assign(max_len + 1, 0);
  if (n_keys == 0) return stats;
  if (n_keys == 1) {
    for (uint32_t l = 0; l <= max_len; ++l) {
      stats.k_counts[l] = 1;
      stats.unique_counts[l] = 1;  // the root subtree already holds one key
    }
    return stats;
  }
  uint64_t pairs_below = 0;
  uint64_t keys_below = 0;
  for (uint32_t l = 0; l <= max_len; ++l) {
    stats.k_counts[l] = 1 + pairs_below;
    stats.unique_counts[l] = keys_below;
    if (l < max_len) {
      pairs_below += lcp_hist[l];
      keys_below += m_hist[l];
    }
  }
  stats.k_counts[0] = 1;
  stats.unique_counts[0] = 0;
  return stats;
}

}  // namespace

KeyStats KeyStats::FromSortedInts(const std::vector<uint64_t>& sorted_keys) {
  const uint32_t max_len = 64;
  const size_t n = sorted_keys.size();
  std::vector<uint64_t> lcp_hist(max_len + 1, 0);
  std::vector<uint64_t> m_hist(max_len + 1, 0);
  std::vector<uint32_t> lcp_prev(n, 0);  // LCP with previous key
  for (size_t i = 1; i < n; ++i) {
    uint32_t c = LcpBits64(sorted_keys[i - 1], sorted_keys[i]);
    lcp_prev[i] = c;
    lcp_hist[c]++;
  }
  for (size_t i = 0; i < n; ++i) {
    uint32_t m = 0;
    if (i > 0) m = std::max(m, lcp_prev[i]);
    if (i + 1 < n) m = std::max(m, lcp_prev[i + 1]);
    m_hist[m]++;
  }
  return Finalize(max_len, n, std::move(lcp_hist), std::move(m_hist));
}

KeyStats KeyStats::FromSortedStrings(
    const std::vector<std::string>& sorted_keys, uint32_t max_bits) {
  const size_t n = sorted_keys.size();
  std::vector<uint64_t> lcp_hist(max_bits + 1, 0);
  std::vector<uint64_t> m_hist(max_bits + 1, 0);
  // Keys equal under padding collapse into one logical key.
  std::vector<uint32_t> lcp_prev;
  lcp_prev.reserve(n);
  uint64_t n_distinct = 0;
  size_t prev_index = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i == 0) {
      n_distinct = 1;
      lcp_prev.push_back(0);
      prev_index = 0;
      continue;
    }
    uint64_t c = StrLcpBits(sorted_keys[prev_index], sorted_keys[i], max_bits);
    if (c >= max_bits) continue;  // duplicate under padding
    lcp_prev.push_back(static_cast<uint32_t>(c));
    lcp_hist[c]++;
    prev_index = i;
    ++n_distinct;
  }
  for (size_t i = 0; i < n_distinct; ++i) {
    uint32_t m = 0;
    if (i > 0) m = std::max(m, lcp_prev[i]);
    if (i + 1 < n_distinct) m = std::max(m, lcp_prev[i + 1]);
    m_hist[m]++;
  }
  return Finalize(max_bits, n_distinct, std::move(lcp_hist),
                  std::move(m_hist));
}

}  // namespace proteus
