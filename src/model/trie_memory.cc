#include "model/trie_memory.h"

#include <algorithm>

namespace proteus {
namespace {

// Mirrors RankSelect::SizeBits exactly: two interleaved 64-bit index words
// per 512-bit basic block (blocks counted over whole words), plus the
// sentinel pair.
uint64_t RankBits(uint64_t n_bits) {
  uint64_t words = (n_bits + 63) / 64;
  uint64_t blocks = (words + 7) / 8;
  return 128 * (blocks + 1);
}

uint64_t RoundUp64(uint64_t bits) { return (bits + 63) / 64 * 64; }

uint64_t LevelCost(uint64_t n_nodes) {
  uint64_t child_bits = 2 * n_nodes;
  uint64_t ext_bits = n_nodes;
  return RoundUp64(child_bits) + RankBits(child_bits) + RoundUp64(ext_bits) +
         RankBits(ext_bits);
}

}  // namespace

TrieMemoryModel::TrieMemoryModel(const KeyStats& stats) {
  const uint32_t max_len = stats.max_len;
  size_bits_.assign(max_len + 1, 0);
  if (stats.n_keys == 0) return;

  // For each depth d, estimate the number of single-subtree ("unique")
  // prefixes at each level under depth-d deduplication. unique_counts is
  // computed against full keys and only ever undercounts once prefixes
  // merge at depth d; the counting bound  u_i^(d) >= 2|K_i| - |K_d|
  // (every shared i-prefix holds >= 2 distinct d-prefixes) recovers the
  // collapse for clustered key sets. We take the max of both bounds.
  for (uint32_t d = 1; d <= max_len; ++d) {
    const uint64_t k_d = stats.k_counts[d];
    uint64_t total = 0;
    uint64_t u_prev = 0;
    uint64_t suffix_bits = 0;
    for (uint32_t i = 0; i < d; ++i) {
      const uint64_t k_i = stats.k_counts[i];
      uint64_t u_i = stats.unique_counts[i];
      if (2 * k_i > k_d) u_i = std::max(u_i, 2 * k_i - k_d);
      u_i = std::max(u_i, u_prev);  // uniqueness is monotone in depth
      u_i = std::min(u_i, k_i);
      if (i == 0 && stats.n_keys == 1) u_i = 1;
      const uint64_t n_i = i == 0 ? 1 : (k_i > u_prev ? k_i - u_prev : 0);
      total += LevelCost(n_i);
      suffix_bits += (u_i - u_prev) * (d - i);
      u_prev = u_i;
    }
    size_bits_[d] = total + RoundUp64(suffix_bits);
  }
}

uint32_t TrieMemoryModel::MaxFeasibleDepth(uint64_t budget_bits) const {
  uint32_t best = 0;
  for (uint32_t d = 0; d < size_bits_.size(); ++d) {
    if (size_bits_[d] <= budget_bits) best = d;
  }
  return best;
}

}  // namespace proteus
