// Monkey-style per-level bits-per-key allocation (Dayan et al., "Monkey:
// Optimal Navigable Key-Value Store"), priced through the CPFPR model's
// Bloom FPR curve (CpfprModel::BloomFpr).
//
// A closed Seek consults every level's filters once per overlapping file:
// each L0 file is probed individually (probe_weight = file count), sorted
// levels are probed once each. The expected number of false-positive file
// probes per empty query is therefore
//
//     sum_i  probe_weight_i * fpr(bpk_i)
//
// and a fixed global budget  B = global_bpk * sum_i keys_i  can be split
// unevenly: a bit spent on a small, frequently-probed level removes more
// expected false positives than the same bit spread across the huge last
// level. MonkeyBpkSplit water-fills the budget greedily by marginal FP
// reduction per bit, so smaller/hotter levels end up with richer filters
// and the largest level with leaner ones — the Monkey optimum under
// per-level probe costs. The split conserves the budget exactly:
// sum_i keys_i * bpk_i == global_bpk * sum_i keys_i (unless every level
// hits the per-level cap first).

#ifndef PROTEUS_MODEL_BPK_ALLOC_H_
#define PROTEUS_MODEL_BPK_ALLOC_H_

#include <cstdint>
#include <vector>

#include "bloom/bloom_filter.h"

namespace proteus {

/// One level's contribution to the allocation problem.
struct LevelLoad {
  uint64_t keys = 0;         // live entry versions stored at the level
  double probe_weight = 1.0; // expected filter probes per closed Seek
                             // (L0: one per file; sorted levels: 1)
};

/// Splits `global_bpk` bits/key across the levels. Returns one bpk per
/// input level; levels with keys == 0 get `global_bpk` back (they hold no
/// budget and no filter). Per-level results are clamped to
/// [1, max(2 * global_bpk, global_bpk + 8)]. A non-positive `global_bpk`
/// or an all-empty shape returns `global_bpk` everywhere.
std::vector<double> MonkeyBpkSplit(
    double global_bpk, const std::vector<LevelLoad>& levels,
    BloomProbeMode mode = BloomProbeMode::kStandard);

}  // namespace proteus

#endif  // PROTEUS_MODEL_BPK_ALLOC_H_
