// The Contextual Prefix FPR (CPFPR) model — Section 3 and Algorithm 1 of
// the paper. Given a sorted key set and a sample of empty range queries,
// the model predicts the expected FPR of every configuration of three
// Protean Range Filters:
//
//   1PBF    — one prefix Bloom filter with prefix length l       (Eq. 1)
//   2PBF    — two prefix Bloom filters with lengths l1 < l2      (Eq. 4)
//   Proteus — uniform-depth trie (l1) + prefix Bloom filter (l2) (Eq. 5)
//
// and selects the configuration minimizing expected FPR under a memory
// budget.
//
// Implementation notes (deviations documented in DESIGN.md §1):
//  * Probabilities use the exact complement form 1 - (1 - p)^n rather than
//    the pseudocode's linear approximation.
//  * Eq. 4's binomial sum telescopes to the closed form
//    [(1-p1) + p1 (1-p2)^{2^{l2-l1}}]^{n_mid}, which we use directly — no
//    overflow, so no need for the paper's 2^15 range-size cap.
//  * Query prefix counts are binned into exponentially sized bins
//    (Section 4.3, "Calculate Configuration FPRs"); exact unbinned
//    evaluation is also provided for the binning ablation.

#ifndef PROTEUS_MODEL_CPFPR_H_
#define PROTEUS_MODEL_CPFPR_H_

#include <cstdint>
#include <vector>

#include "bloom/bloom_filter.h"
#include "core/query.h"
#include "model/key_stats.h"
#include "model/trie_memory.h"

namespace proteus {

/// A chosen Proteus configuration. trie_depth == 0 means no trie (pure
/// prefix Bloom filter); bf_prefix_len == 0 means no Bloom filter (pure
/// trie). Both zero only if the model saw no viable design.
struct ProteusDesign {
  uint32_t trie_depth = 0;
  uint32_t bf_prefix_len = 0;
  double expected_fpr = 1.0;
  uint64_t trie_size_bits = 0;  // modeled size at trie_depth
};

struct OnePbfDesign {
  uint32_t prefix_len = 64;
  double expected_fpr = 1.0;
};

struct TwoPbfDesign {
  uint32_t l1 = 0;       // 0 means the second filter alone was best
  uint32_t l2 = 64;
  double frac1 = 0.5;    // fraction of memory given to the l1 filter
  double expected_fpr = 1.0;
};

class CpfprModel {
 public:
  /// FPR sentinel returned for configurations that exceed the memory
  /// budget (the grey region of Figure 4c).
  static constexpr double kInfeasible = 2.0;

  /// Gathers all statistics from the key set and empty sample queries
  /// (Section 4.3: Count Key Prefixes / Calculate Trie Memory / Count
  /// Query Prefixes). Keys must be sorted and unique; sample queries must
  /// be empty (no key inside [lo, hi]).
  CpfprModel(const std::vector<uint64_t>& sorted_keys,
             const std::vector<RangeQuery>& empty_samples);

  // --- Expected FPR of explicit configurations (Figure 4 matrices). ---
  //
  // Every evaluation takes the Bloom probe layout the built filter will
  // use; the blocked layout trades one cache miss per probe for a mildly
  // higher per-probe FPR, and the model must price that in for the
  // selected design to stay calibrated.

  /// Proteus (Eq. 5). trie_depth == 0 -> pure BF; bf_len == 0 -> pure trie.
  double ProteusFpr(uint32_t trie_depth, uint32_t bf_len, uint64_t mem_bits,
                    BloomProbeMode mode = BloomProbeMode::kStandard) const;

  /// 1PBF (Eq. 1).
  double OnePbfFpr(uint32_t prefix_len, uint64_t mem_bits,
                   BloomProbeMode mode = BloomProbeMode::kStandard) const;

  /// 2PBF (Eq. 4, closed form). frac1 = share of memory for the l1 filter.
  double TwoPbfFpr(uint32_t l1, uint32_t l2, double frac1, uint64_t mem_bits,
                   BloomProbeMode mode = BloomProbeMode::kStandard) const;

  // --- Unbinned (exact-expectation) variants, for the binning ablation. --

  double ProteusFprExact(uint32_t trie_depth, uint32_t bf_len,
                         uint64_t mem_bits,
                         BloomProbeMode mode = BloomProbeMode::kStandard) const;
  double OnePbfFprExact(uint32_t prefix_len, uint64_t mem_bits,
                        BloomProbeMode mode = BloomProbeMode::kStandard) const;

  // --- Algorithm 1: configuration selection. ---

  ProteusDesign SelectProteus(
      uint64_t mem_bits, BloomProbeMode mode = BloomProbeMode::kStandard) const;
  OnePbfDesign SelectOnePbf(
      uint64_t mem_bits, BloomProbeMode mode = BloomProbeMode::kStandard) const;
  /// Tests the paper's three memory allocations (40/60, 50/50, 60/40).
  TwoPbfDesign SelectTwoPbf(
      uint64_t mem_bits, BloomProbeMode mode = BloomProbeMode::kStandard) const;

  const KeyStats& key_stats() const { return key_stats_; }
  const TrieMemoryModel& trie_model() const { return trie_model_; }
  uint64_t n_samples() const { return n_samples_; }

  /// Bloom filter FPR for m bits holding n items (Eq. 6 with the k <= 32
  /// clamp evaluated through the general formula), under the given probe
  /// layout.
  static double BloomFpr(uint64_t m_bits, uint64_t n_items,
                         BloomProbeMode mode = BloomProbeMode::kStandard);

 private:
  struct Bin {
    uint64_t count = 0;
    double sum = 0;  // sum of region counts, for the in-bin average
  };
  // Per (l1, l2, bin) accumulator for 2PBF end regions. Middle regions use
  // (count, sum); ends are split by whether the end prefix is shared with
  // the key set (true positive at the first filter) or not.
  struct TwoBin {
    uint64_t count = 0;
    double sum_mid = 0;
    double sum_l_ink = 0, sum_l_noink = 0;
    double sum_r_ink = 0, sum_r_noink = 0;
    uint32_t cnt_l_ink = 0, cnt_l_noink = 0;
    uint32_t cnt_r_ink = 0, cnt_r_noink = 0;
  };
  struct QueryRecord {
    uint64_t lo, hi;
    uint32_t left_lcp, right_lcp;  // LCP with nearest key below/above
    uint32_t lcp() const { return left_lcp > right_lcp ? left_lcp : right_lcp; }
  };

  static uint32_t BinIndex(uint64_t regions);  // 0 for 0, else 1+floor(log2)

  // Number of Bloom probes Proteus issues for this query at (l1, l2):
  // I2|L| + I3|R| of Eq. 5 (with the |Q_l1| == 1 convention). Valid when
  // l1 <= lcp < l2.
  static uint64_t ProteusRegions(const QueryRecord& q, uint32_t l1,
                                 uint32_t l2);

  double EndFactor(double p1, double p2, const TwoBin& bin) const;

  KeyStats key_stats_;
  TrieMemoryModel trie_model_;
  uint64_t n_samples_ = 0;

  // lcp_ge_[l] = number of sample queries with lcp(Q, K) >= l.
  std::vector<uint64_t> lcp_ge_;

  // one_bins_[l * kBins + b]: |Q_l| bins for queries with lcp < l.
  std::vector<Bin> one_bins_;

  // proteus_bins_[(l1 * 65 + l2) * kBins + b]: Eq. 5 region-count bins for
  // queries with l1 <= lcp < l2.
  std::vector<Bin> proteus_bins_;

  // two_bins_[(l1 * 65 + l2) * kBins + b]: Eq. 4 accumulators for queries
  // with lcp < l2 (bin keyed by middle-region count).
  std::vector<TwoBin> two_bins_;

  std::vector<QueryRecord> records_;  // for the exact evaluation paths

  static constexpr uint32_t kBins = 66;
};

}  // namespace proteus

#endif  // PROTEUS_MODEL_CPFPR_H_
