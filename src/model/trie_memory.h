// The trie memory model (Section 4.3, "Calculate Trie Memory"): estimates
// the size in bits of the uniform-depth bit trie (src/trie/bit_trie.h) at
// every candidate depth, from key statistics alone.
//
// Derivation. With n_i structural nodes at depth i and e_i single-key
// subtrees truncated at depth i:
//   n_0 = 1,   n_i = |K_i| - unique_counts[i-1]   (i >= 1)
//   e_i = unique_counts[i] - unique_counts[i-1]
// Each level stores 2 child bits + 1 extension bit per node plus rank
// indexes; each truncated subtree at depth i stores (d - i) suffix bits.
//
// Like the paper, this slightly overestimates deep tries: uniqueness is
// computed against full keys, so prefixes that merge at depth d are still
// counted as separate structure. Leftover memory simply flows to the Bloom
// filter (Section 4.3).

#ifndef PROTEUS_MODEL_TRIE_MEMORY_H_
#define PROTEUS_MODEL_TRIE_MEMORY_H_

#include <cstdint>
#include <vector>

#include "model/key_stats.h"

namespace proteus {

class TrieMemoryModel {
 public:
  TrieMemoryModel() = default;
  explicit TrieMemoryModel(const KeyStats& stats);

  /// Estimated size in bits of a trie of the given depth (0 = no trie,
  /// costing 0 bits).
  uint64_t TrieSizeBits(uint32_t depth) const {
    return depth < size_bits_.size() ? size_bits_[depth] : ~uint64_t{0};
  }

  /// Largest depth whose estimated size fits the budget.
  uint32_t MaxFeasibleDepth(uint64_t budget_bits) const;

 private:
  std::vector<uint64_t> size_bits_;  // index = depth
};

}  // namespace proteus

#endif  // PROTEUS_MODEL_TRIE_MEMORY_H_
