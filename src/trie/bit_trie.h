// The Proteus FST: a uniform-depth binary trie over d-bit key prefixes
// (Section 4.1 of the paper).
//
// Structure. Level i (i in [0, d)) holds the trie nodes at depth i; each
// node owns two child bits (does an extension by 0 / by 1 exist?). A node
// whose subtree contains a single distinct d-bit prefix is truncated there:
// its child bits are both zero and the remaining (d - i) key bits are stored
// verbatim in a per-level suffix array — the paper's "explicitly stored key
// bits" extension. Nodes that reach depth d are leaves and store nothing.
//
// For a binary alphabet, the LOUDS-Dense child-bitmap encoding costs 2 bits
// per node, which is within one bit per edge of LOUDS-Sparse at any shape,
// so the bit trie uses the bitmap encoding at every level (the byte-level
// SuRF implementation in src/surf keeps the real Dense/Sparse split). Each
// level carries rank support for child navigation plus an extension bitmap
// with rank support for suffix indexing.
//
// Query hot path. All seeks run through BitTrieT::Cursor, which keeps the
// full root-to-leaf descent (node index per level) in a fixed-size frame
// stack: SeekGeq() positions at the smallest stored value >= target, and
// Next() resumes from the current leaf — an amortized O(1) in-order
// successor step instead of a fresh O(d) root descent per leaf. Integer
// cursors never touch the heap (depth <= 64 fits the inline frame array
// and the value is a word); string cursors reuse one value buffer plus a
// small-buffer frame stack that only spills for tries deeper than 64.
// Suffix reads and comparisons are word-at-a-time, not bit-by-bit.
//
// The same template serves 64-bit integer keys (IntBitOps; depth <= 64) and
// variable-length string keys (StrBitOps; arbitrary depth, trailing-NUL
// padding semantics).

#ifndef PROTEUS_TRIE_BIT_TRIE_H_
#define PROTEUS_TRIE_BIT_TRIE_H_

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/bit_vector.h"
#include "util/bits.h"
#include "util/bitstring.h"
#include "util/rank_select.h"
#include "util/serial.h"

namespace proteus {

/// Bit operations over right-aligned d-bit integer prefixes (d <= 64).
struct IntBitOps {
  using Key = uint64_t;

  /// Bit i (0 = most significant of the d-bit value).
  static bool GetBit(const Key& k, uint32_t i, uint32_t d) {
    return (k >> (d - 1 - i)) & 1;
  }
  static void SetBit(Key* k, uint32_t i, bool v, uint32_t d) {
    uint64_t mask = uint64_t{1} << (d - 1 - i);
    if (v) {
      *k |= mask;
    } else {
      *k &= ~mask;
    }
  }
  static Key Empty(uint32_t /*d*/) { return 0; }
  static void Assign(Key* dst, const Key& src, uint32_t /*d*/) { *dst = src; }
  /// Compares bits [from, d) of a and b.
  static int CompareFrom(const Key& a, const Key& b, uint32_t from,
                         uint32_t d) {
    if (from >= d) return 0;
    uint64_t mask = (d - from == 64) ? ~uint64_t{0}
                                     : ((uint64_t{1} << (d - from)) - 1);
    uint64_t av = a & mask;
    uint64_t bv = b & mask;
    return av < bv ? -1 : (av > bv ? 1 : 0);
  }
  /// Overwrites bits [i, d) of *value with `d - i` suffix bits starting at
  /// `base` in `suffixes`. One two-word bit fetch plus a bit reversal —
  /// never a per-bit loop.
  static void WriteSuffix(Key* value, uint32_t i, uint32_t d,
                          const BitVector& suffixes, uint64_t base) {
    const uint32_t stride = d - i;  // in [1, 64]
    const uint64_t chunk = suffixes.GetBits(base, stride);
    // Suffix bit t (LSB-first in chunk) is key bit i + t, which lives at
    // position d - 1 - i - t = stride - 1 - t from the value's LSB.
    const uint64_t rev = ReverseBits64(chunk) >> (64 - stride);
    const uint64_t mask =
        stride == 64 ? ~uint64_t{0} : ((uint64_t{1} << stride) - 1);
    *value = (*value & ~mask) | rev;
  }
};

/// Bit operations over padded byte-string prefixes of d bits.
struct StrBitOps {
  using Key = std::string;  // always exactly ceil(d/8) bytes

  static bool GetBit(const Key& k, uint32_t i, uint32_t /*d*/) {
    return StrGetBit(k, i);
  }
  static void SetBit(Key* k, uint32_t i, bool v, uint32_t /*d*/) {
    uint8_t byte = static_cast<uint8_t>((*k)[i >> 3]);
    uint8_t mask = static_cast<uint8_t>(1u << (7 - (i & 7)));
    (*k)[i >> 3] = static_cast<char>(v ? (byte | mask) : (byte & ~mask));
  }
  static Key Empty(uint32_t d) { return Key((d + 7) / 8, '\0'); }
  /// Copies src into a ceil(d/8)-byte padded buffer, reusing dst's
  /// capacity, with bits past d masked to zero.
  static void Assign(Key* dst, const Key& src, uint32_t d) {
    const size_t n = (d + 7) / 8;
    dst->assign(src.data(), std::min(src.size(), n));
    dst->resize(n, '\0');
    if ((d & 7) != 0 && n > 0) {
      (*dst)[n - 1] = static_cast<char>(
          static_cast<uint8_t>((*dst)[n - 1]) & (0xFFu << (8 - (d & 7))));
    }
  }
  /// Compares bits [from, d) byte/word-wise: masked head byte, memcmp over
  /// the aligned middle, masked tail byte. Strings shorter than ceil(d/8)
  /// bytes compare as if NUL-padded.
  static int CompareFrom(const Key& a, const Key& b, uint32_t from,
                         uint32_t d) {
    if (from >= d) return 0;
    const uint64_t n = (d + 7) / 8;
    auto byte_at = [](const Key& s, uint64_t idx) -> uint8_t {
      return idx < s.size() ? static_cast<uint8_t>(s[idx]) : 0;
    };
    uint64_t i = from >> 3;
    if (from & 7) {
      uint8_t mask = static_cast<uint8_t>(0xFFu >> (from & 7));
      if (i == n - 1 && (d & 7)) {
        mask &= static_cast<uint8_t>(0xFFu << (8 - (d & 7)));
      }
      const uint8_t av = byte_at(a, i) & mask;
      const uint8_t bv = byte_at(b, i) & mask;
      if (av != bv) return av < bv ? -1 : 1;
      ++i;
    }
    const uint64_t full_end = (d & 7) ? n - 1 : n;  // bytes wholly inside d
    if (i < full_end) {
      const uint64_t common = std::min({full_end, static_cast<uint64_t>(
                                                      a.size()),
                                        static_cast<uint64_t>(b.size())});
      if (common > i) {
        const int c = std::memcmp(a.data() + i, b.data() + i, common - i);
        if (c != 0) return c < 0 ? -1 : 1;
        i = common;
      }
      // One side ran out of real bytes: compare the remainder against the
      // implicit NUL padding.
      for (; i < full_end; ++i) {
        const uint8_t av = byte_at(a, i);
        const uint8_t bv = byte_at(b, i);
        if (av != bv) return av < bv ? -1 : 1;
      }
    }
    if ((d & 7) && i == n - 1) {
      const uint8_t mask = static_cast<uint8_t>(0xFFu << (8 - (d & 7)));
      const uint8_t av = byte_at(a, i) & mask;
      const uint8_t bv = byte_at(b, i) & mask;
      if (av != bv) return av < bv ? -1 : 1;
    }
    return 0;
  }
  /// Overwrites bits [i, d) of *value (a ceil(d/8)-byte buffer) with the
  /// suffix bits starting at `base`; streams 64 bits per iteration.
  static void WriteSuffix(Key* value, uint32_t i, uint32_t d,
                          const BitVector& suffixes, uint64_t base) {
    char* buf = value->data();
    const size_t n_bytes = (d + 7) / 8;
    // Zero everything from bit i on; the chunk stores below write onto
    // byte-aligned zeroed memory.
    size_t byte = i >> 3;
    if (i & 7) {
      buf[byte] = static_cast<char>(static_cast<uint8_t>(buf[byte]) &
                                    (0xFFu << (8 - (i & 7))));
      ++byte;
    }
    std::memset(buf + byte, 0, n_bytes - byte);
    uint32_t pos = i;     // output bit cursor
    uint64_t off = base;  // input bit cursor
    if ((pos & 7) && pos < d) {
      const uint32_t take = std::min<uint32_t>(8 - (pos & 7), d - pos);
      const uint64_t chunk = suffixes.GetBits(off, take);
      const uint64_t rev = ReverseBits64(chunk) >> (64 - take);
      buf[pos >> 3] = static_cast<char>(
          static_cast<uint8_t>(buf[pos >> 3]) |
          static_cast<uint8_t>(rev << (8 - (pos & 7) - take)));
      pos += take;
      off += take;
    }
    while (pos < d) {
      const uint32_t take =
          static_cast<uint32_t>(std::min<uint64_t>(64, d - pos));
      const uint64_t chunk = suffixes.GetBits(off, take);
      // LSB-first chunk -> MSB-first-per-byte, ready for a byte store.
      const uint64_t m = ReverseBitsInBytes64(chunk);
      std::memcpy(buf + (pos >> 3), &m, (take + 7) / 8);
      pos += take;
      off += take;
    }
  }
};

template <typename Ops>
class BitTrieT {
 public:
  using Key = typename Ops::Key;

  BitTrieT() = default;

  /// Builds the trie over the d-bit prefixes of `sorted_prefixes`, which
  /// must be sorted and deduplicated d-bit prefixes in the Ops
  /// representation (right-aligned uint64, or ceil(d/8)-byte strings).
  void Build(const std::vector<Key>& sorted_prefixes, uint32_t depth) {
    depth_ = depth;
    n_values_ = sorted_prefixes.size();
    levels_.assign(depth, Level{});
    if (depth == 0 || sorted_prefixes.empty()) {
      Finish();
      return;
    }
    // BFS over [begin, end) ranges of the sorted prefix array.
    struct Range {
      uint32_t begin, end;
    };
    std::vector<Range> current = {{0, static_cast<uint32_t>(
                                          sorted_prefixes.size())}};
    for (uint32_t i = 0; i < depth_ && !current.empty(); ++i) {
      Level& level = levels_[i];
      std::vector<Range> next;
      next.reserve(current.size() * 2);
      for (const Range& r : current) {
        if (r.end - r.begin == 1) {
          // Single-prefix subtree: truncate and store the suffix bits.
          level.child_bits.PushBack(false);
          level.child_bits.PushBack(false);
          level.ext.PushBack(true);
          const Key& k = sorted_prefixes[r.begin];
          for (uint32_t b = i; b < depth_; ++b) {
            level.suffixes.PushBack(Ops::GetBit(k, b, depth_));
          }
          continue;
        }
        level.ext.PushBack(false);
        // Split the range on bit i.
        uint32_t split = r.begin;
        while (split < r.end &&
               !Ops::GetBit(sorted_prefixes[split], i, depth_)) {
          ++split;
        }
        bool has0 = split > r.begin;
        bool has1 = split < r.end;
        level.child_bits.PushBack(has0);
        level.child_bits.PushBack(has1);
        if (i + 1 < depth_) {
          if (has0) next.push_back({r.begin, split});
          if (has1) next.push_back({split, r.end});
        }
      }
      current = std::move(next);
    }
    Finish();
  }

  uint32_t depth() const { return depth_; }
  uint64_t n_values() const { return n_values_; }
  bool empty() const { return n_values_ == 0; }

  /// A resumable in-order iterator over the stored d-bit values.
  ///
  ///   BitTrie::Cursor cur(&trie);
  ///   for (bool ok = cur.SeekGeq(lo); ok && cur.value() <= hi;
  ///        ok = cur.Next()) { ... }
  ///
  /// SeekGeq() costs one root-to-leaf descent; Next() advances to the
  /// in-order successor from the current leaf (amortized O(1), worst case
  /// one climb plus one descent). Neither allocates for integer tries; a
  /// string cursor reuses its value buffer and frame stack across calls.
  /// The cursor borrows the trie, which must stay alive and unchanged.
  class Cursor {
   public:
    explicit Cursor(const BitTrieT* trie)
        : trie_(trie), value_(Ops::Empty(trie->depth_)) {
      if (trie_->depth_ > kInlineDepth) overflow_.resize(trie_->depth_);
    }

    bool valid() const { return valid_; }
    const Key& value() const {
      assert(valid_);
      return value_;
    }

    /// Positions at the smallest stored value >= target. Returns valid().
    bool SeekGeq(const Key& target) {
      valid_ = false;
      const uint32_t d = trie_->depth_;
      if (d == 0 || trie_->n_values_ == 0) return false;
      Ops::Assign(&value_, target, d);
      valid_ = SeekFrom(0, 0, target);
      return valid_;
    }

    /// Advances to the in-order successor of the current value. Returns
    /// false (and invalidates the cursor) after the largest stored value.
    bool Next() {
      if (!valid_) return false;
      const uint32_t d = trie_->depth_;
      const uint32_t* fr = frames();
      // Branch levels along the current path are [0, leaf_level_): climb
      // to the deepest ancestor where we went left and a right sibling
      // exists, then take it and descend leftmost.
      for (uint32_t lvl = leaf_level_; lvl-- > 0;) {
        if (Ops::GetBit(value_, lvl, d)) continue;
        const Level& level = trie_->levels_[lvl];
        const uint32_t node = fr[lvl];
        if (!level.child_bits.Get(2 * node + 1)) continue;
        Ops::SetBit(&value_, lvl, true, d);
        const uint32_t child = ChildRank1(level, 2 * node + 1);
        if (lvl + 1 == d) {
          leaf_level_ = d;
        } else {
          DescendLeftmost(lvl + 1, child);
        }
        return true;
      }
      valid_ = false;
      return false;
    }

   private:
    friend BitTrieT;  // MultiSeekGeq drives cursors through SeekFrom

    static constexpr uint32_t kInlineDepth = 64;

    /// The Geq descent from (level i, node j). Preconditions: frames
    /// [0, i) follow the target bits exactly and value_[0, i) equals the
    /// target bits — true at the root after Ops::Assign, and true when
    /// the batched lockstep descent hands a diverged query over. Returns
    /// whether a value >= target was found (leaving the cursor on it).
    bool SeekFrom(uint32_t i, uint32_t j, const Key& target) {
      const uint32_t d = trie_->depth_;
      uint32_t* fr = frames();
      for (;;) {
        const Level& level = trie_->levels_[i];
        fr[i] = j;
        if (level.ext.Get(j)) {
          // Pseudo-leaf: candidate value is target[0, i) + stored suffix.
          trie_->ReadSuffix(i, j, &value_);
          if (Ops::CompareFrom(value_, target, i, d) >= 0) {
            leaf_level_ = i;
            return true;
          }
          return BacktrackGeq(i, target);
        }
        const bool b = Ops::GetBit(target, i, d);
        const uint32_t pos = 2 * j + (b ? 1 : 0);
        if (level.child_bits.Get(pos)) {
          const uint32_t child = ChildRank1(level, pos);
          if (i + 1 == d) {
            leaf_level_ = d;  // followed target exactly to full depth
            return true;
          }
          i += 1;
          j = child;
          continue;
        }
        if (!b && level.child_bits.Get(2 * j + 1)) {
          // Deviate upward: take the 1-branch, then go leftmost.
          Ops::SetBit(&value_, i, true, d);
          const uint32_t child = ChildRank1(level, 2 * j + 1);
          if (i + 1 == d) {
            leaf_level_ = d;
          } else {
            DescendLeftmost(i + 1, child);
          }
          return true;
        }
        return BacktrackGeq(i, target);
      }
    }

    uint32_t* frames() {
      return trie_->depth_ <= kInlineDepth ? inline_frames_
                                           : overflow_.data();
    }
    const uint32_t* frames() const {
      return trie_->depth_ <= kInlineDepth ? inline_frames_
                                           : overflow_.data();
    }

    /// Climbs from level `from` (exclusive) looking for a frame where the
    /// target's 0-branch was taken and a 1-sibling exists; takes it and
    /// descends leftmost. Every frame below `from` followed the target
    /// bit exactly, and value_[0, from) still equals the target bits.
    bool BacktrackGeq(uint32_t from, const Key& target) {
      const uint32_t d = trie_->depth_;
      const uint32_t* fr = frames();
      for (uint32_t lvl = from; lvl-- > 0;) {
        if (Ops::GetBit(target, lvl, d)) continue;
        const Level& level = trie_->levels_[lvl];
        const uint32_t node = fr[lvl];
        if (!level.child_bits.Get(2 * node + 1)) continue;
        Ops::SetBit(&value_, lvl, true, d);
        const uint32_t child = ChildRank1(level, 2 * node + 1);
        if (lvl + 1 == d) {
          leaf_level_ = d;
        } else {
          DescendLeftmost(lvl + 1, child);
        }
        valid_ = true;
        return true;
      }
      return false;
    }

    /// Descends to the smallest value under (level i, node j), recording
    /// frames and writing value_ bits [i, d).
    void DescendLeftmost(uint32_t i, uint32_t j) {
      const uint32_t d = trie_->depth_;
      uint32_t* fr = frames();
      for (;;) {
        const Level& level = trie_->levels_[i];
        fr[i] = j;
        if (level.ext.Get(j)) {
          trie_->ReadSuffix(i, j, &value_);
          leaf_level_ = i;
          return;
        }
        const bool go_right = !level.child_bits.Get(2 * j);
        Ops::SetBit(&value_, i, go_right, d);
        const uint32_t child =
            ChildRank1(level, 2 * j + (go_right ? 1 : 0));
        if (i + 1 == d) {
          leaf_level_ = d;
          return;
        }
        i += 1;
        j = child;
      }
    }

    const BitTrieT* trie_;
    Key value_;                  // current value; bits [0, depth) valid
    uint32_t leaf_level_ = 0;    // pseudo-leaf level, or depth for a leaf
    bool valid_ = false;
    uint32_t inline_frames_[kInlineDepth];  // node index per level
    std::vector<uint32_t> overflow_;        // only for depth > kInlineDepth
  };

  /// True if the exact d-bit prefix is stored.
  bool Contains(const Key& prefix) const {
    Cursor cur(this);
    if (!cur.SeekGeq(prefix)) return false;
    return Ops::CompareFrom(cur.value(), prefix, 0, depth_) == 0;
  }

  /// Finds the smallest stored d-bit value >= `target`. Returns false if no
  /// such value exists. Allocation-free for integer tries; for repeated
  /// forward scans prefer a Cursor, which also skips the per-leaf descent.
  bool SeekGeq(const Key& target, Key* out) const {
    Cursor cur(this);
    if (!cur.SeekGeq(target)) return false;
    *out = cur.value();
    return true;
  }

  /// Batched SeekGeq: positions cursors[q] at the smallest stored value
  /// >= targets[q] for q < n, identical to calling SeekGeq on each (each
  /// cursor must have been constructed over this trie).
  ///
  /// All queries descend in lockstep while they follow their target bits
  /// exactly — the common path of a Geq seek. Per level, the surviving
  /// queries' child ranks are resolved together: dense top levels
  /// (ChildRank1) are in-register popcounts, and deeper levels batch
  /// their rank9 lookups through RankSelect::MultiRank1, which gathers
  /// the directory with AVX2 when available. A query that diverges from
  /// its target (pseudo-leaf, missing child) leaves the batch and
  /// finishes through the scalar Cursor::SeekFrom machinery, which
  /// safely redoes the level it diverged at.
  void MultiSeekGeq(const Key* targets, size_t n, Cursor* cursors) const {
    if (depth_ == 0 || n_values_ == 0) {
      for (size_t q = 0; q < n; ++q) cursors[q].valid_ = false;
      return;
    }
    const uint32_t d = depth_;
    std::vector<uint32_t> active(n);   // query ids still in lockstep
    std::vector<uint32_t> node(n, 0);  // node[q]: current node of query q
    for (size_t q = 0; q < n; ++q) {
      active[q] = static_cast<uint32_t>(q);
      cursors[q].valid_ = false;
      Ops::Assign(&cursors[q].value_, targets[q], d);
    }
    std::vector<uint32_t> keep;
    std::vector<uint64_t> pos, rank;
    for (uint32_t i = 0; i < d && !active.empty(); ++i) {
      const Level& level = levels_[i];
      keep.clear();
      pos.clear();
      for (uint32_t q : active) {
        Cursor& c = cursors[q];
        const uint32_t j = node[q];
        c.frames()[i] = j;
        if (level.ext.Get(j)) {
          c.valid_ = c.SeekFrom(i, j, targets[q]);
          continue;
        }
        const bool b = Ops::GetBit(targets[q], i, d);
        const uint32_t p = 2 * j + (b ? 1 : 0);
        if (!level.child_bits.Get(p)) {
          c.valid_ = c.SeekFrom(i, j, targets[q]);
          continue;
        }
        if (i + 1 == d) {
          c.leaf_level_ = d;  // followed target exactly to full depth
          c.valid_ = true;
          continue;
        }
        keep.push_back(q);
        pos.push_back(p);
      }
      if (level.dense) {
        for (size_t k = 0; k < keep.size(); ++k) {
          node[keep[k]] =
              ChildRank1(level, static_cast<uint32_t>(pos[k]));
        }
      } else {
        rank.resize(pos.size());
        level.rank.MultiRank1(pos.data(), pos.size(), rank.data());
        for (size_t k = 0; k < keep.size(); ++k) {
          node[keep[k]] = static_cast<uint32_t>(rank[k]);
        }
      }
      active = keep;
    }
  }

  /// True if any stored value lies in [lo_prefix, hi_prefix] (inclusive,
  /// both given as d-bit values).
  bool RangeMayContain(const Key& lo_prefix, const Key& hi_prefix) const {
    Cursor cur(this);
    if (!cur.SeekGeq(lo_prefix)) return false;
    return Ops::CompareFrom(cur.value(), hi_prefix, 0, depth_) <= 0;
  }

  /// Total memory footprint in bits: child bitmaps, extension bitmaps,
  /// suffix arrays, and rank indexes.
  uint64_t SizeBits() const {
    uint64_t total = 0;
    for (const Level& level : levels_) {
      total += level.child_bits.SizeBits() + level.rank.SizeBits();
      total += level.ext.SizeBits() + level.ext_rank.SizeBits();
      total += level.suffixes.SizeBits();
    }
    return total;
  }

  /// Serialization: depth + value count + per-level bitmaps; rank indexes
  /// are rebuilt on parse.
  void AppendTo(std::string* out) const {
    PutFixed32(out, depth_);
    PutFixed64(out, n_values_);
    for (const Level& level : levels_) {
      level.child_bits.AppendTo(out);
      level.ext.AppendTo(out);
      level.suffixes.AppendTo(out);
    }
  }

  static bool ParseFrom(std::string_view* in, BitTrieT* out) {
    uint32_t depth;
    uint64_t n_values;
    if (!GetFixed32(in, &depth) || !GetFixed64(in, &n_values)) return false;
    // Every level costs at least three 8-byte BitVector headers, so a
    // depth beyond this bound cannot be backed by the remaining input —
    // reject it before allocating (a corrupt depth must not abort).
    if (depth > in->size() / 24) return false;
    out->depth_ = depth;
    out->n_values_ = n_values;
    out->levels_.assign(depth, Level{});
    for (Level& level : out->levels_) {
      if (!BitVector::ParseFrom(in, &level.child_bits) ||
          !BitVector::ParseFrom(in, &level.ext) ||
          !BitVector::ParseFrom(in, &level.suffixes)) {
        return false;
      }
    }
    out->Finish();
    return true;
  }

  /// Number of structural nodes at each level (diagnostics / model tests).
  std::vector<uint64_t> NodesPerLevel() const {
    std::vector<uint64_t> out;
    out.reserve(levels_.size());
    for (const Level& level : levels_) out.push_back(level.ext.size());
    return out;
  }

 private:
  struct Level {
    BitVector child_bits;  // 2 bits per node
    RankSelect rank;       // over child_bits
    BitVector ext;         // 1 bit per node: truncated single-prefix subtree
    RankSelect ext_rank;   // over ext
    BitVector suffixes;    // stride (depth - level) per pseudo-leaf
    // LOUDS-dense-style fast path for the top of the trie: a level with at
    // most 32 nodes keeps its whole child bitmap in one cached word, so a
    // child rank is a masked in-register popcount — no directory reads.
    bool dense = false;
    uint64_t dense_child_word = 0;
  };

  void Finish() {
    for (Level& level : levels_) {
      level.rank.Build(&level.child_bits);
      level.ext_rank.Build(&level.ext);
      level.dense = level.child_bits.size() <= 64;
      level.dense_child_word =
          level.child_bits.num_words() > 0 ? level.child_bits.word(0) : 0;
    }
  }

  /// Rank1 over a level's child bitmap: in-register popcount for dense
  /// (top) levels, the rank9 directory otherwise. `pos` is a valid bit
  /// index, so pos < 64 whenever the level is dense.
  static uint32_t ChildRank1(const Level& level, uint32_t pos) {
    if (level.dense) {
      return static_cast<uint32_t>(std::popcount(
          level.dense_child_word & ((uint64_t{1} << pos) - 1)));
    }
    return static_cast<uint32_t>(level.rank.Rank1(pos));
  }

  /// Copies the suffix of pseudo-leaf (level i, node j) into bits [i, d) of
  /// *value, word-at-a-time.
  void ReadSuffix(uint32_t i, uint32_t j, Key* value) const {
    const Level& level = levels_[i];
    const uint64_t ext_index = level.ext_rank.Rank1(j);  // leaves before j
    const uint64_t stride = depth_ - i;
    Ops::WriteSuffix(value, i, depth_, level.suffixes, ext_index * stride);
  }

  uint32_t depth_ = 0;
  uint64_t n_values_ = 0;
  std::vector<Level> levels_;
};

using BitTrie = BitTrieT<IntBitOps>;
using StrBitTrie = BitTrieT<StrBitOps>;

/// Builds the sorted, deduplicated d-bit prefix list for integer keys.
std::vector<uint64_t> UniquePrefixes(const std::vector<uint64_t>& sorted_keys,
                                     uint32_t depth);

/// Builds the sorted, deduplicated d-bit padded prefix list for string keys.
std::vector<std::string> StrUniquePrefixes(
    const std::vector<std::string>& sorted_keys, uint32_t depth);

}  // namespace proteus

#endif  // PROTEUS_TRIE_BIT_TRIE_H_
