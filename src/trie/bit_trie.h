// The Proteus FST: a uniform-depth binary trie over d-bit key prefixes
// (Section 4.1 of the paper).
//
// Structure. Level i (i in [0, d)) holds the trie nodes at depth i; each
// node owns two child bits (does an extension by 0 / by 1 exist?). A node
// whose subtree contains a single distinct d-bit prefix is truncated there:
// its child bits are both zero and the remaining (d - i) key bits are stored
// verbatim in a per-level suffix array — the paper's "explicitly stored key
// bits" extension. Nodes that reach depth d are leaves and store nothing.
//
// For a binary alphabet, the LOUDS-Dense child-bitmap encoding costs 2 bits
// per node, which is within one bit per edge of LOUDS-Sparse at any shape,
// so the bit trie uses the bitmap encoding at every level (the byte-level
// SuRF implementation in src/surf keeps the real Dense/Sparse split). Each
// level carries rank support for child navigation plus an extension bitmap
// with rank support for suffix indexing.
//
// The same template serves 64-bit integer keys (IntBitOps; depth <= 64) and
// variable-length string keys (StrBitOps; arbitrary depth, trailing-NUL
// padding semantics).

#ifndef PROTEUS_TRIE_BIT_TRIE_H_
#define PROTEUS_TRIE_BIT_TRIE_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "util/bit_vector.h"
#include "util/bits.h"
#include "util/bitstring.h"
#include "util/rank_select.h"
#include "util/serial.h"

namespace proteus {

/// Bit operations over right-aligned d-bit integer prefixes (d <= 64).
struct IntBitOps {
  using Key = uint64_t;

  /// Bit i (0 = most significant of the d-bit value).
  static bool GetBit(const Key& k, uint32_t i, uint32_t d) {
    return (k >> (d - 1 - i)) & 1;
  }
  static void SetBit(Key* k, uint32_t i, bool v, uint32_t d) {
    uint64_t mask = uint64_t{1} << (d - 1 - i);
    if (v) {
      *k |= mask;
    } else {
      *k &= ~mask;
    }
  }
  static Key Empty(uint32_t /*d*/) { return 0; }
  /// Compares bits [from, d) of a and b.
  static int CompareFrom(const Key& a, const Key& b, uint32_t from,
                         uint32_t d) {
    if (from >= d) return 0;
    uint64_t mask = (d - from == 64) ? ~uint64_t{0}
                                     : ((uint64_t{1} << (d - from)) - 1);
    uint64_t av = a & mask;
    uint64_t bv = b & mask;
    return av < bv ? -1 : (av > bv ? 1 : 0);
  }
};

/// Bit operations over padded byte-string prefixes of d bits.
struct StrBitOps {
  using Key = std::string;  // always exactly ceil(d/8) bytes

  static bool GetBit(const Key& k, uint32_t i, uint32_t /*d*/) {
    return StrGetBit(k, i);
  }
  static void SetBit(Key* k, uint32_t i, bool v, uint32_t /*d*/) {
    uint8_t byte = static_cast<uint8_t>((*k)[i >> 3]);
    uint8_t mask = static_cast<uint8_t>(1u << (7 - (i & 7)));
    (*k)[i >> 3] = static_cast<char>(v ? (byte | mask) : (byte & ~mask));
  }
  static Key Empty(uint32_t d) { return Key((d + 7) / 8, '\0'); }
  static int CompareFrom(const Key& a, const Key& b, uint32_t from,
                         uint32_t d) {
    for (uint32_t i = from; i < d; ++i) {
      bool ab = StrGetBit(a, i);
      bool bb = StrGetBit(b, i);
      if (ab != bb) return ab ? 1 : -1;
    }
    return 0;
  }
};

template <typename Ops>
class BitTrieT {
 public:
  using Key = typename Ops::Key;

  BitTrieT() = default;

  /// Builds the trie over the d-bit prefixes of `sorted_prefixes`, which
  /// must be sorted and deduplicated d-bit prefixes in the Ops
  /// representation (right-aligned uint64, or ceil(d/8)-byte strings).
  void Build(const std::vector<Key>& sorted_prefixes, uint32_t depth) {
    depth_ = depth;
    n_values_ = sorted_prefixes.size();
    levels_.assign(depth, Level{});
    if (depth == 0 || sorted_prefixes.empty()) {
      Finish();
      return;
    }
    // BFS over [begin, end) ranges of the sorted prefix array.
    struct Range {
      uint32_t begin, end;
    };
    std::vector<Range> current = {{0, static_cast<uint32_t>(
                                          sorted_prefixes.size())}};
    for (uint32_t i = 0; i < depth_ && !current.empty(); ++i) {
      Level& level = levels_[i];
      std::vector<Range> next;
      next.reserve(current.size() * 2);
      for (const Range& r : current) {
        if (r.end - r.begin == 1) {
          // Single-prefix subtree: truncate and store the suffix bits.
          level.child_bits.PushBack(false);
          level.child_bits.PushBack(false);
          level.ext.PushBack(true);
          const Key& k = sorted_prefixes[r.begin];
          for (uint32_t b = i; b < depth_; ++b) {
            level.suffixes.PushBack(Ops::GetBit(k, b, depth_));
          }
          continue;
        }
        level.ext.PushBack(false);
        // Split the range on bit i.
        uint32_t split = r.begin;
        while (split < r.end &&
               !Ops::GetBit(sorted_prefixes[split], i, depth_)) {
          ++split;
        }
        bool has0 = split > r.begin;
        bool has1 = split < r.end;
        level.child_bits.PushBack(has0);
        level.child_bits.PushBack(has1);
        if (i + 1 < depth_) {
          if (has0) next.push_back({r.begin, split});
          if (has1) next.push_back({split, r.end});
        }
      }
      current = std::move(next);
    }
    Finish();
  }

  uint32_t depth() const { return depth_; }
  uint64_t n_values() const { return n_values_; }
  bool empty() const { return n_values_ == 0; }

  /// True if the exact d-bit prefix is stored.
  bool Contains(const Key& prefix) const {
    Key found;
    if (!SeekGeq(prefix, &found)) return false;
    return Ops::CompareFrom(found, prefix, 0, depth_) == 0;
  }

  /// Finds the smallest stored d-bit value >= `target`. Returns false if no
  /// such value exists.
  bool SeekGeq(const Key& target, Key* out) const {
    if (depth_ == 0 || n_values_ == 0) return false;
    Key path = Ops::Empty(depth_);
    // Stack of (level, node, branch taken) along the exact-match descent.
    struct Frame {
      uint32_t level, node;
    };
    std::vector<Frame> stack;
    stack.reserve(depth_);
    uint32_t i = 0;
    uint32_t j = 0;
    for (;;) {
      const Level& level = levels_[i];
      if (level.ext.Get(j)) {
        // Pseudo-leaf: candidate value is path[0,i) + stored suffix.
        Key value = path;
        ReadSuffix(i, j, &value);
        if (Ops::CompareFrom(value, target, i, depth_) >= 0) {
          *out = value;
          return true;
        }
        return Backtrack(stack, target, out);
      }
      bool b = Ops::GetBit(target, i, depth_);
      uint32_t pos = 2 * j + (b ? 1 : 0);
      if (level.child_bits.Get(pos)) {
        stack.push_back({i, j});
        Ops::SetBit(&path, i, b, depth_);
        uint32_t child = static_cast<uint32_t>(level.rank.Rank1(pos));
        if (i + 1 == depth_) {
          *out = path;
          return true;  // followed target exactly to full depth
        }
        i += 1;
        j = child;
        continue;
      }
      if (!b && level.child_bits.Get(2 * j + 1)) {
        // Deviate upward: take the 1-branch, then go leftmost.
        Ops::SetBit(&path, i, true, depth_);
        uint32_t child = static_cast<uint32_t>(level.rank.Rank1(2 * j + 1));
        if (i + 1 == depth_) {
          *out = path;
          return true;
        }
        *out = LeftmostFrom(i + 1, child, path);
        return true;
      }
      return Backtrack(stack, target, out);
    }
  }

  /// True if any stored value lies in [lo_prefix, hi_prefix] (inclusive,
  /// both given as d-bit values).
  bool RangeMayContain(const Key& lo_prefix, const Key& hi_prefix) const {
    Key found;
    if (!SeekGeq(lo_prefix, &found)) return false;
    return Ops::CompareFrom(found, hi_prefix, 0, depth_) <= 0;
  }

  /// Total memory footprint in bits: child bitmaps, extension bitmaps,
  /// suffix arrays, and rank indexes.
  uint64_t SizeBits() const {
    uint64_t total = 0;
    for (const Level& level : levels_) {
      total += level.child_bits.SizeBits() + level.rank.SizeBits();
      total += level.ext.SizeBits() + level.ext_rank.SizeBits();
      total += level.suffixes.SizeBits();
    }
    return total;
  }

  /// Serialization: depth + value count + per-level bitmaps; rank indexes
  /// are rebuilt on parse.
  void AppendTo(std::string* out) const {
    PutFixed32(out, depth_);
    PutFixed64(out, n_values_);
    for (const Level& level : levels_) {
      level.child_bits.AppendTo(out);
      level.ext.AppendTo(out);
      level.suffixes.AppendTo(out);
    }
  }

  static bool ParseFrom(std::string_view* in, BitTrieT* out) {
    uint32_t depth;
    uint64_t n_values;
    if (!GetFixed32(in, &depth) || !GetFixed64(in, &n_values)) return false;
    // Every level costs at least three 8-byte BitVector headers, so a
    // depth beyond this bound cannot be backed by the remaining input —
    // reject it before allocating (a corrupt depth must not abort).
    if (depth > in->size() / 24) return false;
    out->depth_ = depth;
    out->n_values_ = n_values;
    out->levels_.assign(depth, Level{});
    for (Level& level : out->levels_) {
      if (!BitVector::ParseFrom(in, &level.child_bits) ||
          !BitVector::ParseFrom(in, &level.ext) ||
          !BitVector::ParseFrom(in, &level.suffixes)) {
        return false;
      }
    }
    out->Finish();
    return true;
  }

  /// Number of structural nodes at each level (diagnostics / model tests).
  std::vector<uint64_t> NodesPerLevel() const {
    std::vector<uint64_t> out;
    out.reserve(levels_.size());
    for (const Level& level : levels_) out.push_back(level.ext.size());
    return out;
  }

 private:
  struct Level {
    BitVector child_bits;  // 2 bits per node
    RankSelect rank;       // over child_bits
    BitVector ext;         // 1 bit per node: truncated single-prefix subtree
    RankSelect ext_rank;   // over ext
    BitVector suffixes;    // stride (depth - level) per pseudo-leaf
  };

  void Finish() {
    for (Level& level : levels_) {
      level.rank.Build(&level.child_bits);
      level.ext_rank.Build(&level.ext);
    }
  }

  /// Copies the suffix of pseudo-leaf (level i, node j) into bits [i, d) of
  /// *value.
  void ReadSuffix(uint32_t i, uint32_t j, Key* value) const {
    const Level& level = levels_[i];
    uint64_t ext_index = level.ext_rank.Rank1(j);  // pseudo-leaves before j
    uint64_t stride = depth_ - i;
    uint64_t base = ext_index * stride;
    for (uint32_t b = 0; b < stride; ++b) {
      Ops::SetBit(value, i + b, level.suffixes.Get(base + b), depth_);
    }
  }

  /// Smallest stored value in the subtree rooted at (level i, node j),
  /// where bits [0, i) of `path` spell the route to that node.
  Key LeftmostFrom(uint32_t i, uint32_t j, Key path) const {
    for (;;) {
      const Level& level = levels_[i];
      if (level.ext.Get(j)) {
        ReadSuffix(i, j, &path);
        return path;
      }
      bool go_right = !level.child_bits.Get(2 * j);
      uint32_t pos = 2 * j + (go_right ? 1 : 0);
      Ops::SetBit(&path, i, go_right, depth_);
      uint32_t child = static_cast<uint32_t>(level.rank.Rank1(pos));
      if (i + 1 == depth_) return path;
      i += 1;
      j = child;
    }
  }

  template <typename Stack>
  bool Backtrack(Stack& stack, const Key& target, Key* out) const {
    Key path = Ops::Empty(depth_);
    // Reconstruct the path bits lazily from the target: every stacked frame
    // followed the target bit exactly.
    while (!stack.empty()) {
      auto frame = stack.back();
      stack.pop_back();
      bool took = Ops::GetBit(target, frame.level, depth_);
      if (!took) {
        const Level& level = levels_[frame.level];
        if (level.child_bits.Get(2 * frame.node + 1)) {
          // Rebuild path prefix [0, frame.level) from target.
          for (uint32_t b = 0; b < frame.level; ++b) {
            Ops::SetBit(&path, b, Ops::GetBit(target, b, depth_), depth_);
          }
          Ops::SetBit(&path, frame.level, true, depth_);
          uint32_t child =
              static_cast<uint32_t>(level.rank.Rank1(2 * frame.node + 1));
          if (frame.level + 1 == depth_) {
            *out = path;
            return true;
          }
          *out = LeftmostFrom(frame.level + 1, child, path);
          return true;
        }
      }
    }
    return false;
  }

  uint32_t depth_ = 0;
  uint64_t n_values_ = 0;
  std::vector<Level> levels_;
};

using BitTrie = BitTrieT<IntBitOps>;
using StrBitTrie = BitTrieT<StrBitOps>;

/// Builds the sorted, deduplicated d-bit prefix list for integer keys.
std::vector<uint64_t> UniquePrefixes(const std::vector<uint64_t>& sorted_keys,
                                     uint32_t depth);

/// Builds the sorted, deduplicated d-bit padded prefix list for string keys.
std::vector<std::string> StrUniquePrefixes(
    const std::vector<std::string>& sorted_keys, uint32_t depth);

}  // namespace proteus

#endif  // PROTEUS_TRIE_BIT_TRIE_H_
