#include "trie/bit_trie.h"

namespace proteus {

std::vector<uint64_t> UniquePrefixes(const std::vector<uint64_t>& sorted_keys,
                                     uint32_t depth) {
  std::vector<uint64_t> out;
  out.reserve(sorted_keys.size());
  bool first = true;
  uint64_t prev = 0;
  for (uint64_t k : sorted_keys) {
    uint64_t p = PrefixBits64(k, depth);
    if (first || p != prev) {
      out.push_back(p);
      prev = p;
      first = false;
    }
  }
  return out;
}

std::vector<std::string> StrUniquePrefixes(
    const std::vector<std::string>& sorted_keys, uint32_t depth) {
  std::vector<std::string> out;
  out.reserve(sorted_keys.size());
  for (const std::string& k : sorted_keys) {
    std::string p = StrPrefix(k, depth);
    if (out.empty() || p != out.back()) out.push_back(std::move(p));
  }
  return out;
}

}  // namespace proteus
