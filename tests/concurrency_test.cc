// MVCC + threading: snapshot isolation (a reader pinned at S never sees
// later commits, even after flush/compaction retire the SSTs it started
// on), MultiSeek ≡ Seek against a fixed snapshot while a writer commits,
// N-writer/M-reader differential integrity, write-stall accounting, and
// the kill-9 contract that seqno-stamped WAL replay reproduces the exact
// pre-crash memtable order.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/scheduler.h"
#include "lsm/db.h"
#include "surf/surf.h"
#include "util/random.h"

namespace proteus {
namespace {

DbOptions MtDbOptions(const std::string& name) {
  DbOptions options;
  options.dir = "/tmp/proteus_mt_test_" + name;
  options.memtable_bytes = 64 << 10;
  options.sst_target_bytes = 128 << 10;
  options.block_size = 1024;
  options.block_cache_bytes = 1 << 20;
  options.l0_compaction_trigger = 3;
  options.l1_size_bytes = 256 << 10;
  options.level_size_multiplier = 4.0;
  options.wal_sync = false;  // group commit still batches; tests run fast
  return options;
}

TEST(Mvcc, SnapshotPinsStateAcrossFlushAndCompaction) {
  auto [db, st] = Db::Create(MtDbOptions("pin"));
  ASSERT_TRUE(st.ok()) << st.ToString();
  const int kKeys = 1000;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db->Put(EncodeKeyBE(i * 10), "v1-" + std::to_string(i)).ok());
  }
  auto snap = db->GetSnapshot();
  ReadOptions at_snap;
  at_snap.snapshot = snap.get();

  // Everything after the snapshot: overwrites, deletes, and enough churn
  // that flush + full compaction retire every SST the snapshot started
  // on. The pinned reader must not notice any of it.
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db->Put(EncodeKeyBE(i * 10), "v2-" + std::to_string(i)).ok());
  }
  for (int i = 0; i < kKeys; i += 7) {
    ASSERT_TRUE(db->Delete(EncodeKeyBE(i * 10)).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->CompactAll().ok());

  for (int i = 0; i < kKeys; ++i) {
    std::string key = EncodeKeyBE(i * 10);
    SeekResult pinned = db->Seek(key, key, at_snap);
    ASSERT_TRUE(pinned.status.ok()) << pinned.status.ToString();
    ASSERT_TRUE(pinned.found) << "snapshot lost key " << i;
    EXPECT_EQ(pinned.value, "v1-" + std::to_string(i)) << "key " << i;

    SeekResult latest = db->Seek(key, key);
    if (i % 7 == 0) {
      EXPECT_FALSE(latest.found) << "tombstone missing for key " << i;
    } else {
      ASSERT_TRUE(latest.found);
      EXPECT_EQ(latest.value, "v2-" + std::to_string(i));
    }
  }

  // Range seeks resolve per-key visibility too: a range whose smallest
  // live key was deleted after the snapshot answers differently at each
  // horizon.
  SeekResult pinned = db->Seek(EncodeKeyBE(0), EncodeKeyBE(5), at_snap);
  ASSERT_TRUE(pinned.found);
  EXPECT_EQ(pinned.value, "v1-0");
  SeekResult latest = db->Seek(EncodeKeyBE(0), EncodeKeyBE(5));
  EXPECT_FALSE(latest.found);  // key 0 deleted (0 % 7 == 0)
}

TEST(Mvcc, SnapshotIsolationUnderConcurrentWriter) {
  auto [db, st] = Db::Create(MtDbOptions("iso"));
  ASSERT_TRUE(st.ok()) << st.ToString();
  const int kKeys = 500;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(db->Put(EncodeKeyBE(i), "base-" + std::to_string(i)).ok());
  }
  auto snap = db->GetSnapshot();
  ReadOptions at_snap;
  at_snap.snapshot = snap.get();

  std::atomic<bool> stop{false};
  std::thread writer([&db = *db, &stop] {
    Rng rng(71);
    uint64_t round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      uint64_t k = rng.NextBelow(kKeys);
      ASSERT_TRUE(
          db.Put(EncodeKeyBE(k), "mut-" + std::to_string(round++)).ok());
    }
  });

  // Pinned reads while the writer commits, flushes trigger, and the
  // memtable the snapshot was taken on retires: every answer must be the
  // pre-snapshot value, every time.
  Rng rng(72);
  for (int round = 0; round < 5000; ++round) {
    uint64_t k = rng.NextBelow(kKeys);
    SeekResult r = db->Seek(EncodeKeyBE(k), EncodeKeyBE(k), at_snap);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    ASSERT_TRUE(r.found) << "round " << round;
    ASSERT_EQ(r.value, "base-" + std::to_string(k)) << "round " << round;
  }
  stop.store(true);
  writer.join();
  db->WaitForBackground();

  // After the writer stops, one more full pinned sweep — flushes and
  // compactions from the churn above have all landed by now.
  for (int i = 0; i < kKeys; ++i) {
    SeekResult r = db->Seek(EncodeKeyBE(i), EncodeKeyBE(i), at_snap);
    ASSERT_TRUE(r.found);
    ASSERT_EQ(r.value, "base-" + std::to_string(i));
  }
}

TEST(Mvcc, MultiSeekMatchesSeekAtFixedSnapshotUnderConcurrentWriter) {
  auto [db, st] = Db::Create(MtDbOptions("multiseek"));
  ASSERT_TRUE(st.ok()) << st.ToString();
  Rng fill(81);
  for (int i = 0; i < 4000; ++i) {
    uint64_t k = fill.NextBelow(5000) * 1000;
    ASSERT_TRUE(
        db->Put(EncodeKeyBE(k), "fill-" + std::to_string(i)).ok());
  }
  auto snap = db->GetSnapshot();
  ReadOptions at_snap;
  at_snap.snapshot = snap.get();

  std::atomic<bool> stop{false};
  std::thread writer([&db = *db, &stop] {
    Rng rng(82);
    uint64_t round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      uint64_t k = rng.NextBelow(5000) * 1000;
      ASSERT_TRUE(
          db.Put(EncodeKeyBE(k), "late-" + std::to_string(round++)).ok());
    }
  });

  Rng rng(83);
  for (const char* spec : {"fifo", "sorted", "grouped"}) {
    auto scheduler = SchedulerRegistry::Global().Create(spec);
    ASSERT_NE(scheduler, nullptr) << spec;
    QueryBatch batch;
    for (int i = 0; i < 300; ++i) {
      uint64_t k = rng.NextBelow(5000) * 1000;
      uint64_t span = rng.NextBelow(8000);
      batch.push_back({EncodeKeyBE(k > span ? k - span : 0),
                       EncodeKeyBE(k + span)});
    }
    std::vector<MultiSeekResult> results;
    db->MultiSeek(batch, *scheduler, &results, at_snap);
    ASSERT_EQ(results.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      SeekResult seq = db->Seek(batch[i].lo, batch[i].hi, at_snap);
      ASSERT_EQ(results[i].found, seq.found) << spec << " query " << i;
      if (seq.found) {
        ASSERT_EQ(results[i].key, seq.key) << spec << " query " << i;
        ASSERT_EQ(results[i].value, seq.value) << spec << " query " << i;
      }
    }
  }
  stop.store(true);
  writer.join();
}

TEST(Mvcc, WritersAndReadersKeepValuesConsistent) {
  auto [db, st] = Db::Create(MtDbOptions("nwmr"));
  ASSERT_TRUE(st.ok()) << st.ToString();
  const int kWriters = 2;
  const int kReaders = 4;
  const uint64_t kKeysPerWriter = 3000;
  const std::string pad(100, 'p');

  // Each writer owns keys k where k % kWriters == id and stamps every
  // value with its key, so a reader can validate any answer on sight —
  // a torn or misrouted read surfaces as a key/value mismatch.
  std::vector<std::thread> threads;
  std::map<std::string, std::string> last_written[kWriters];
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&db = *db, &ref = last_written[w], &pad, w] {
      Rng rng(90 + w);
      for (uint64_t i = 0; i < kKeysPerWriter; ++i) {
        uint64_t k = rng.NextBelow(2000) * uint64_t{kWriters} + w;
        std::string key = EncodeKeyBE(k);
        std::string value =
            "k" + std::to_string(k) + "#" + std::to_string(i) + pad;
        ASSERT_TRUE(db.Put(key, value).ok());
        ref[key] = value;
      }
    });
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&db = *db, &stop, &reads, r] {
      Rng rng(190 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        uint64_t k = rng.NextBelow(2000 * kWriters);
        SeekResult res = db.Seek(EncodeKeyBE(k), EncodeKeyBE(k));
        ASSERT_TRUE(res.status.ok()) << res.status.ToString();
        if (res.found) {
          // The value must carry its own key: prefix "k<k>#".
          std::string want = "k" + std::to_string(k) + "#";
          ASSERT_EQ(res.value.compare(0, want.size(), want), 0)
              << "reader " << r << " got foreign value for key " << k;
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  db->WaitForBackground();
  EXPECT_GT(reads.load(), 0u);

  // Quiesced differential: the union of the writers' last values is
  // exactly what the tree holds.
  std::map<std::string, std::string> ref;
  for (int w = 0; w < kWriters; ++w) {
    ref.insert(last_written[w].begin(), last_written[w].end());
  }
  for (const auto& [key, value] : ref) {
    SeekResult r = db->Seek(key, key);
    ASSERT_TRUE(r.found);
    ASSERT_EQ(r.value, value);
  }
}

TEST(Mvcc, WriteStallsAreAccountedWhenFlusherFallsBehind) {
  auto options = MtDbOptions("stall");
  options.memtable_bytes = 4 << 10;  // rotate every handful of writes
  options.max_immutable_memtables = 1;
  options.background_threads = 1;
  options.l0_compaction_trigger = 2;  // keep the lone thread busy
  auto [db, st] = Db::Create(options);
  ASSERT_TRUE(st.ok()) << st.ToString();
  const std::string value(1024, 'v');
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&db = *db, &value, w] {
      for (uint64_t i = 0; i < 1500; ++i) {
        ASSERT_TRUE(db.Put(EncodeKeyBE(i * 4 + w), value).ok());
      }
    });
  }
  for (auto& t : writers) t.join();
  db->WaitForBackground();
  const DbStats s = db->stats();
  EXPECT_GT(s.write_stalls, 0u) << "6MB through a 4KB memtable on one "
                                   "background thread never stalled";
  EXPECT_GT(s.stall_wait_us, 0u);
  // One flush drains every pending immutable memtable and rotation only
  // happens when the background loop comes around, so both counters stay
  // far below the number of memtable-sized chunks written — just require
  // that the machinery ran at all; the stall counters above are the test.
  EXPECT_GT(s.wal_rotations, 0u);
  EXPECT_GT(s.flushes, 0u);
  // The stalled writes all landed.
  SeekResult r = db->Seek(EncodeKeyBE(0), EncodeKeyBE(0));
  ASSERT_TRUE(r.found);
}

TEST(Mvcc, CrashReplayReproducesExactPreCrashOrder) {
  auto options = MtDbOptions("replay");
  options.memtable_bytes = 8 << 20;  // nothing flushes: all writes live
                                     // in WAL + memtable at crash time
  std::map<std::string, std::string> ref;
  uint64_t pre_crash_seqno = 0;
  uint64_t records = 0;
  {
    auto [db, st] = Db::Create(options);
    ASSERT_TRUE(st.ok()) << st.ToString();
    Rng rng(101);
    // Heavy overwrite pressure: the same key is written many times, so
    // replay in any order other than the WAL's (== seqno order) would
    // resurface a stale version.
    for (int op = 0; op < 5000; ++op) {
      uint64_t k = rng.NextBelow(200);
      std::string key = EncodeKeyBE(k);
      if (rng.NextBelow(10) < 8) {
        std::string value = "op" + std::to_string(op);
        ASSERT_TRUE(db->Put(key, value).ok());
        ref[key] = value;
      } else {
        ASSERT_TRUE(db->Delete(key).ok());
        ref.erase(key);
      }
      ++records;
    }
    pre_crash_seqno = db->LastSequence();
    EXPECT_EQ(pre_crash_seqno, records);  // single writer: dense 1..N
    db->TEST_CrashClose();
  }
  auto [db, status] = Db::Open(options);
  ASSERT_NE(db, nullptr) << status.ToString();
  EXPECT_EQ(db->stats().wal_replayed, records);
  // Replay re-stamps the recovered versions with their logged seqnos, so
  // the sequence clock resumes exactly where the crash cut it off.
  EXPECT_EQ(db->LastSequence(), pre_crash_seqno);
  for (uint64_t k = 0; k < 200; ++k) {
    std::string key = EncodeKeyBE(k);
    SeekResult r = db->Seek(key, key);
    auto it = ref.find(key);
    ASSERT_EQ(r.found, it != ref.end()) << "key " << k;
    if (r.found) {
      ASSERT_EQ(r.value, it->second) << "key " << k;
    }
  }
  // And the revived database keeps its MVCC behavior: new writes get
  // fresh seqnos above the replayed ones.
  auto snap = db->GetSnapshot();
  ASSERT_TRUE(db->Put(EncodeKeyBE(0), "post-crash").ok());
  EXPECT_EQ(db->LastSequence(), pre_crash_seqno + 1);
  ReadOptions at_snap;
  at_snap.snapshot = snap.get();
  SeekResult pinned = db->Seek(EncodeKeyBE(0), EncodeKeyBE(0), at_snap);
  auto it = ref.find(EncodeKeyBE(0));
  EXPECT_EQ(pinned.found, it != ref.end());
  if (pinned.found) EXPECT_EQ(pinned.value, it->second);
}

}  // namespace
}  // namespace proteus
