// Tests for the uniform-depth bit trie (the Proteus FST).
//
// The key property: the trie stores exactly the set of d-bit prefixes it
// was built on, and SeekGeq must agree with std::set::lower_bound on that
// set for arbitrary probes — across depths, key distributions, and both key
// representations (integer and string).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <set>
#include <string>
#include <vector>

#include "trie/bit_trie.h"
#include "util/bits.h"
#include "util/random.h"

// Global operator-new counter so the allocation-free guarantee of the
// integer-trie hot path is a tested invariant, not a comment. Works under
// ASan too (the replacement operators route through malloc as usual).
namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
// GCC's -Wmismatched-new-delete pairs the replacement operator new above
// with these frees at inlined call sites and misfires; replacement global
// operators backed by malloc/free are well-defined.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace proteus {
namespace {

std::vector<uint64_t> RandomSortedKeys(size_t n, uint64_t seed,
                                       uint64_t span = ~uint64_t{0}) {
  Rng rng(seed);
  std::set<uint64_t> s;
  while (s.size() < n) s.insert(rng.NextBelow(span));
  return {s.begin(), s.end()};
}

TEST(BitTrie, EmptyTrie) {
  BitTrie trie;
  trie.Build({}, 16);
  EXPECT_TRUE(trie.empty());
  uint64_t out;
  EXPECT_FALSE(trie.SeekGeq(0, &out));
  EXPECT_FALSE(trie.RangeMayContain(0, 1000));
}

TEST(BitTrie, DepthZeroIsDisabled) {
  BitTrie trie;
  trie.Build({1, 2, 3}, 0);
  uint64_t out;
  EXPECT_FALSE(trie.SeekGeq(0, &out));
}

TEST(BitTrie, SingleKeySuffixExtension) {
  // One key: the root is immediately unique, so the whole 16-bit prefix
  // lives in the suffix array.
  BitTrie trie;
  trie.Build({0xABCD}, 16);
  EXPECT_TRUE(trie.Contains(0xABCD));
  EXPECT_FALSE(trie.Contains(0xABCE));
  uint64_t out;
  ASSERT_TRUE(trie.SeekGeq(0, &out));
  EXPECT_EQ(out, 0xABCDu);
  ASSERT_TRUE(trie.SeekGeq(0xABCD, &out));
  EXPECT_EQ(out, 0xABCDu);
  EXPECT_FALSE(trie.SeekGeq(0xABCE, &out));
}

TEST(BitTrie, FigureThreeToyExample) {
  // Mirrors the paper's Figure 3 setup at small scale: 16-bit trie over a
  // 24-bit key space, probing Q_l1 ranges.
  std::vector<uint64_t> keys = {0x00F1AB, 0x0200C3, 0x02007F, 0xFF0001};
  std::sort(keys.begin(), keys.end());
  auto prefixes = UniquePrefixes(keys, 16 + 40);  // keep 24-bit keys at top
  // Work directly in the 24-bit key space instead: depth 16 over 24-bit keys
  // right-aligned to 64 bits means prefix length 56; simpler to test with
  // explicit 16-bit prefixes of the 24-bit keys.
  std::vector<uint64_t> p16;
  for (uint64_t k : keys) p16.push_back(k >> 8);
  std::sort(p16.begin(), p16.end());
  p16.erase(std::unique(p16.begin(), p16.end()), p16.end());
  BitTrie trie;
  trie.Build(p16, 16);
  // Q = [0x00F2, 0x0100] finds nothing (blue query in Figure 3).
  EXPECT_FALSE(trie.RangeMayContain(0x00F2, 0x0100));
  // Q touching prefix 0x0200 resolves to a match (red query).
  EXPECT_TRUE(trie.RangeMayContain(0x0200, 0x0200));
  EXPECT_TRUE(trie.Contains(0x00F1));
  EXPECT_FALSE(trie.Contains(0x00F2));
}

class BitTrieDepthTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BitTrieDepthTest, SeekGeqMatchesSet) {
  const uint32_t depth = GetParam();
  auto keys = RandomSortedKeys(500, depth * 977 + 5);
  auto prefixes = UniquePrefixes(keys, depth);
  std::set<uint64_t> ref(prefixes.begin(), prefixes.end());
  BitTrie trie;
  trie.Build(prefixes, depth);
  EXPECT_EQ(trie.n_values(), prefixes.size());

  Rng rng(depth + 1);
  uint64_t max_prefix =
      depth == 64 ? ~uint64_t{0} : ((uint64_t{1} << depth) - 1);
  for (int probe = 0; probe < 2000; ++probe) {
    uint64_t target = rng.Next() & max_prefix;
    uint64_t out;
    bool found = trie.SeekGeq(target, &out);
    auto it = ref.lower_bound(target);
    if (it == ref.end()) {
      EXPECT_FALSE(found) << "target=" << target << " out=" << out;
    } else {
      ASSERT_TRUE(found) << "target=" << target << " expected=" << *it;
      EXPECT_EQ(out, *it) << "target=" << target;
    }
  }
  // Every stored prefix seeks to itself.
  for (uint64_t p : prefixes) {
    uint64_t out;
    ASSERT_TRUE(trie.SeekGeq(p, &out));
    EXPECT_EQ(out, p);
    EXPECT_TRUE(trie.Contains(p));
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, BitTrieDepthTest,
                         ::testing::Values(1, 2, 3, 8, 9, 16, 24, 31, 32, 33,
                                           48, 63, 64),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

TEST(BitTrie, ClusteredKeysCompactTrie) {
  // 512 keys sharing a 40-bit prefix: the top 40 levels are unary.
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 512; ++i) {
    keys.push_back((uint64_t{0x123456789A} << 24) | (i * 7919));
  }
  std::sort(keys.begin(), keys.end());
  auto prefixes = UniquePrefixes(keys, 64);
  BitTrie trie;
  trie.Build(prefixes, 64);
  for (uint64_t k : keys) EXPECT_TRUE(trie.Contains(k));
  EXPECT_FALSE(trie.Contains(keys[0] + 1));
  // Unary top + suffix-extended bottom: size should be far below a naive
  // 3-bits-per-node-per-level structure with no truncation.
  EXPECT_LT(trie.SizeBits(), 64 * 3 * 512ull);
}

TEST(BitTrie, RangeMayContainMatchesReference) {
  auto keys = RandomSortedKeys(300, 77);
  for (uint32_t depth : {8u, 20u, 40u, 64u}) {
    auto prefixes = UniquePrefixes(keys, depth);
    std::set<uint64_t> ref(prefixes.begin(), prefixes.end());
    BitTrie trie;
    trie.Build(prefixes, depth);
    Rng rng(depth);
    uint64_t max_prefix =
        depth == 64 ? ~uint64_t{0} : ((uint64_t{1} << depth) - 1);
    for (int i = 0; i < 1000; ++i) {
      uint64_t a = rng.Next() & max_prefix;
      uint64_t b = rng.Next() & max_prefix;
      if (a > b) std::swap(a, b);
      auto it = ref.lower_bound(a);
      bool expected = it != ref.end() && *it <= b;
      EXPECT_EQ(trie.RangeMayContain(a, b), expected)
          << "d=" << depth << " [" << a << "," << b << "]";
    }
  }
}

TEST(BitTrie, NoFalsePositivesOrNegativesAtFullDepth) {
  // At depth 64 the trie is an exact set representation.
  auto keys = RandomSortedKeys(1000, 3);
  std::set<uint64_t> ref(keys.begin(), keys.end());
  BitTrie trie;
  trie.Build(keys, 64);
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    uint64_t q = rng.Next();
    EXPECT_EQ(trie.Contains(q), ref.count(q) > 0);
  }
}

TEST(BitTrie, SizeGrowsWithDepth) {
  auto keys = RandomSortedKeys(2000, 8);
  uint64_t prev_size = 0;
  for (uint32_t depth : {8u, 16u, 32u, 64u}) {
    BitTrie trie;
    trie.Build(UniquePrefixes(keys, depth), depth);
    EXPECT_GE(trie.SizeBits(), prev_size);
    prev_size = trie.SizeBits();
  }
}

// ---------------------------------------------------------------------------
// Cursor
// ---------------------------------------------------------------------------

TEST(BitTrieCursor, WalkMatchesRepeatedSeekGeq) {
  // Cursor SeekGeq + Next() must visit exactly the values the pre-cursor
  // SeekGeq(v + 1) advance pattern visits, across many random tries.
  Rng seed_rng(2100);
  for (int trial = 0; trial < 40; ++trial) {
    const uint32_t depth = 1 + seed_rng.NextBelow(64);
    const size_t n = 1 + seed_rng.NextBelow(250);
    auto keys = RandomSortedKeys(n, seed_rng.Next());
    auto prefixes = UniquePrefixes(keys, depth);
    BitTrie trie;
    trie.Build(prefixes, depth);
    const uint64_t max_prefix =
        depth == 64 ? ~uint64_t{0} : ((uint64_t{1} << depth) - 1);

    // Full in-order walk == the stored prefix list.
    BitTrie::Cursor cur(&trie);
    std::vector<uint64_t> walked;
    for (bool ok = cur.SeekGeq(0); ok; ok = cur.Next()) {
      walked.push_back(cur.value());
    }
    EXPECT_FALSE(cur.valid());
    ASSERT_EQ(walked, prefixes) << "depth=" << depth << " n=" << n;

    // From random starting points, cursor advance == SeekGeq(v + 1).
    Rng rng(trial * 7919 + 13);
    for (int probe = 0; probe < 50; ++probe) {
      uint64_t start = rng.Next() & max_prefix;
      BitTrie::Cursor c(&trie);
      bool c_ok = c.SeekGeq(start);
      uint64_t v;
      bool s_ok = trie.SeekGeq(start, &v);
      ASSERT_EQ(c_ok, s_ok);
      int steps = 0;
      while (s_ok && steps++ < 20) {
        ASSERT_EQ(c.value(), v);
        if (v == max_prefix) break;
        s_ok = trie.SeekGeq(v + 1, &v);
        ASSERT_EQ(c.Next(), s_ok);
      }
    }
  }
}

TEST(BitTrieCursor, IntSeeksAreAllocationFree) {
  auto keys = RandomSortedKeys(5000, 77);
  BitTrie trie;
  trie.Build(keys, 64);
  Rng rng(78);
  // Warm up so lazily-initialized state can't be charged to the hot path.
  uint64_t out;
  trie.SeekGeq(rng.Next(), &out);
  BitTrie::Cursor cur(&trie);
  cur.SeekGeq(0);

  const uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    trie.SeekGeq(rng.Next(), &out);
    trie.Contains(rng.Next());
  }
  BitTrie::Cursor walk(&trie);
  for (bool ok = walk.SeekGeq(0); ok; ok = walk.Next()) {
  }
  const uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before)
      << "integer SeekGeq/Cursor::Next must not touch the heap";
}

TEST(StrBitTrieCursor, WalkMatchesStoredPrefixes) {
  Rng rng(333);
  std::vector<std::string> keys;
  for (int i = 0; i < 300; ++i) {
    size_t len = 1 + rng.NextBelow(10);
    std::string s;
    for (size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>('a' + rng.NextBelow(5)));
    }
    keys.push_back(std::move(s));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (uint32_t depth : {13u, 24u, 56u, 96u, 200u}) {
    auto prefixes = StrUniquePrefixes(keys, depth);
    std::set<std::string> ref(prefixes.begin(), prefixes.end());
    StrBitTrie trie;
    trie.Build({ref.begin(), ref.end()}, depth);
    StrBitTrie::Cursor cur(&trie);
    std::vector<std::string> walked;
    for (bool ok = cur.SeekGeq(StrBitOps::Empty(depth)); ok; ok = cur.Next()) {
      walked.push_back(cur.value());
    }
    ASSERT_EQ(walked, std::vector<std::string>(ref.begin(), ref.end()))
        << "depth=" << depth;
    // Resume from the middle: cursor matches lower_bound successors.
    for (int probe = 0; probe < 200; ++probe) {
      std::string target((depth + 7) / 8, '\0');
      for (auto& ch : target) ch = static_cast<char>(rng.NextBelow(256));
      target = StrPrefix(target, depth);
      StrBitTrie::Cursor c(&trie);
      bool ok = c.SeekGeq(target);
      auto it = ref.lower_bound(target);
      for (int s = 0; s < 5; ++s) {
        if (it == ref.end()) {
          ASSERT_FALSE(ok);
          break;
        }
        ASSERT_TRUE(ok);
        ASSERT_EQ(c.value(), *it);
        ++it;
        ok = c.Next();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// String trie
// ---------------------------------------------------------------------------

std::vector<std::string> SortedStringKeys(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

TEST(StrBitTrie, BasicContains) {
  auto keys = SortedStringKeys(
      {"apple", "apricot", "banana", "band", "bandit", "zebra"});
  for (uint32_t depth : {16u, 24u, 40u, 64u}) {
    auto prefixes = StrUniquePrefixes(keys, depth);
    StrBitTrie trie;
    trie.Build(prefixes, depth);
    for (const auto& k : keys) {
      EXPECT_TRUE(trie.Contains(StrPrefix(k, depth))) << k << " d=" << depth;
    }
  }
}

TEST(StrBitTrie, SeekGeqMatchesSetOnRandomStrings) {
  Rng rng(99);
  std::vector<std::string> keys;
  for (int i = 0; i < 400; ++i) {
    size_t len = 1 + rng.NextBelow(12);
    std::string s;
    for (size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>('a' + rng.NextBelow(4)));
    }
    keys.push_back(std::move(s));
  }
  keys = SortedStringKeys(std::move(keys));
  for (uint32_t depth : {13u, 24u, 56u, 96u}) {
    auto prefixes = StrUniquePrefixes(keys, depth);
    // StrUniquePrefixes only dedups adjacent equal prefixes; masked partial
    // bytes keep lexicographic order, so result is sorted + unique.
    std::set<std::string> ref(prefixes.begin(), prefixes.end());
    StrBitTrie trie;
    trie.Build({ref.begin(), ref.end()}, depth);
    for (int probe = 0; probe < 1500; ++probe) {
      size_t len = (depth + 7) / 8;
      std::string target(len, '\0');
      for (size_t j = 0; j < len; ++j) {
        target[j] = static_cast<char>(rng.NextBelow(256));
      }
      target = StrPrefix(target, depth);  // mask to depth bits
      std::string out;
      bool found = trie.SeekGeq(target, &out);
      auto it = ref.lower_bound(target);
      if (it == ref.end()) {
        EXPECT_FALSE(found) << "depth=" << depth;
      } else {
        ASSERT_TRUE(found) << "depth=" << depth;
        EXPECT_EQ(out, *it) << "depth=" << depth;
      }
    }
  }
}

TEST(StrBitTrie, PaddingMakesShortKeysCanonical) {
  auto keys = SortedStringKeys({"ab", std::string("ab\0", 3)});
  // Under padding these are the same 32-bit prefix.
  auto prefixes = StrUniquePrefixes(keys, 32);
  EXPECT_EQ(prefixes.size(), 1u);
  StrBitTrie trie;
  trie.Build(prefixes, 32);
  EXPECT_TRUE(trie.Contains(StrPrefix("ab", 32)));
}

TEST(StrBitTrie, DeepTrie1440Bits) {
  // Section 7's 1440-bit keys: 180-byte strings.
  Rng rng(123);
  std::vector<std::string> keys;
  for (int i = 0; i < 50; ++i) {
    std::string s(180, '\0');
    for (auto& c : s) c = static_cast<char>(rng.NextBelow(256));
    keys.push_back(std::move(s));
  }
  keys = SortedStringKeys(std::move(keys));
  StrBitTrie trie;
  auto prefixes = StrUniquePrefixes(keys, 1440);
  trie.Build(prefixes, 1440);
  EXPECT_EQ(trie.depth(), 1440u);
  for (const auto& k : keys) EXPECT_TRUE(trie.Contains(StrPrefix(k, 1440)));
  std::string out;
  ASSERT_TRUE(trie.SeekGeq(StrPrefix(std::string(180, '\0'), 1440), &out));
}

}  // namespace
}  // namespace proteus
