// Persistence round-trips: SST filter blocks survive the disk, Db::Open
// reconstructs the tree and its filters from the manifest without
// rebuilding, and every damage mode (bit-flipped blob, foreign format
// version, legacy filter-less footer) degrades to a rebuild or a plain
// unfiltered read — never a crash or a wrong answer.

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cctype>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/filter.h"
#include "lsm/db.h"
#include "lsm/filter_policy.h"
#include "lsm/sst.h"
#include "surf/surf.h"
#include "util/random.h"

namespace proteus {
namespace {

// The nine registered families, each as an LSM policy spec.
const char* kFamilySpecs[] = {
    "proteus:bpk=14",
    "onepbf:bpk=12",
    "twopbf:bpk=12",
    "rosetta:bpk=14",
    "surf:mode=real,suffix=4",
    "surf-str:mode=real,suffix=4",
    "proteus-str:bpk=14,max_key_bits=64",
    "bloom:bpk=12",
    "bloom-str:bpk=12",
};

std::string SanitizeSpec(const std::string& spec) {
  std::string out;
  for (char c : spec) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  return out;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
}

uint64_t ReadU64At(const std::string& s, size_t pos) {
  uint64_t v;
  std::memcpy(&v, s.data() + pos, 8);
  return v;
}

std::vector<std::string> ListSstFiles(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.size() > 4 && name.substr(name.size() - 4) == ".sst") {
      out.push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  return out;
}

// ---------------------------------------------------------------------------
// SST-level: the filter block in the file format.
// ---------------------------------------------------------------------------

constexpr size_t kFooterV2Size = 72;

std::unique_ptr<SstFilter> BuildTestFilter(
    const std::vector<std::string>& keys) {
  auto policy = MakeFilterPolicy("proteus:bpk=14");
  return policy->Build(keys, {});
}

std::string WriteSstWithFilter(const std::string& path,
                               std::vector<std::string>* keys,
                               uint64_t filter_format = Filter::kVersion,
                               uint32_t format_version = 3) {
  SstWriter::Options wopts;
  wopts.block_size = 512;
  wopts.format_version = format_version;
  SstWriter writer(path, wopts);
  for (uint64_t i = 0; i < 3000; ++i) {
    std::string key = EncodeKeyBE(i * 7);
    std::string value = "value" + std::to_string(i);
    // Encode the value the way the writer's format version expects:
    // v4 = tag|seqno|user, v3 = tag|user, v1/v2 = raw user bytes.
    if (format_version >= 4) {
      writer.Add(key, MakeSstValueV4(kTagValue, i + 1, value));
    } else if (format_version == 3) {
      writer.Add(key, MakeInternalValue(kTagValue, value));
    } else {
      writer.Add(key, value);
    }
    keys->push_back(std::move(key));
  }
  auto filter = BuildTestFilter(*keys);
  EXPECT_NE(filter, nullptr);
  std::string blob;
  EXPECT_TRUE(filter->Serialize(&blob));
  writer.SetFilterBlock(std::move(blob), filter_format);
  EXPECT_TRUE(writer.Finish().ok());
  return path;
}

TEST(SstFilterBlock, RoundTripsThroughTheFile) {
  const std::string path = "/tmp/proteus_persist_rt.sst";
  std::vector<std::string> keys;
  WriteSstWithFilter(path, &keys);

  BlockCache cache(1 << 20);
  SstReader reader;
  ASSERT_TRUE(reader.Open(path, 1, &cache).ok());
  ASSERT_TRUE(reader.has_filter_block());
  EXPECT_EQ(reader.filter_format(), Filter::kVersion);

  Status status;
  auto loaded = reader.LoadFilter(&status);
  ASSERT_NE(loaded, nullptr) << status.ToString();

  // The reloaded filter answers exactly like a freshly built one.
  auto fresh = BuildTestFilter(keys);
  for (uint64_t lo = 0; lo < 21000; lo += 13) {
    std::string slo = EncodeKeyBE(lo), shi = EncodeKeyBE(lo + 5);
    EXPECT_EQ(loaded->MayContain(slo, shi), fresh->MayContain(slo, shi))
        << "lo=" << lo;
  }
  ::unlink(path.c_str());
}

TEST(SstFilterBlock, LegacyV1FooterStillReadable) {
  const std::string path = "/tmp/proteus_persist_legacy.sst";
  std::vector<std::string> keys;
  // A genuine v1 file: 32-byte footer, 16-byte handles, no filter block.
  WriteSstWithFilter(path, &keys, Filter::kVersion, /*format_version=*/1);

  BlockCache cache(1 << 20);
  SstReader reader;
  ASSERT_TRUE(reader.Open(path, 1, &cache).ok());
  EXPECT_EQ(reader.footer_version(), 1u);
  EXPECT_FALSE(reader.has_filter_block());
  EXPECT_EQ(reader.LoadFilter(), nullptr);
  EXPECT_EQ(reader.n_entries(), 3000u);
  SstReader::SeekEntry se;
  EXPECT_EQ(reader.SeekInRange(EncodeKeyBE(70), EncodeKeyBE(70), kMaxSequence,
                               BlockReadOptions{}, &se),
            0);
  EXPECT_EQ(se.value, "value10");
  ::unlink(path.c_str());
}

TEST(SstFilterBlock, LegacyV2FooterStillReadableWithFilter) {
  const std::string path = "/tmp/proteus_persist_legacy_v2.sst";
  std::vector<std::string> keys;
  // A genuine v2 file: 72-byte footer, filter block, 16-byte handles
  // (no per-block CRC — damage detection falls back to the in-block
  // checksum, as before PR 4).
  WriteSstWithFilter(path, &keys, Filter::kVersion, /*format_version=*/2);

  BlockCache cache(1 << 20);
  SstReader reader;
  ASSERT_TRUE(reader.Open(path, 1, &cache).ok());
  EXPECT_EQ(reader.footer_version(), 2u);
  ASSERT_TRUE(reader.has_filter_block());
  Status status;
  auto loaded = reader.LoadFilter(&status);
  ASSERT_NE(loaded, nullptr) << status.ToString();
  EXPECT_EQ(reader.n_entries(), 3000u);
  EXPECT_TRUE(reader.VerifyChecksums().ok());
  SstReader::SeekEntry se;
  EXPECT_EQ(reader.SeekInRange(EncodeKeyBE(70), EncodeKeyBE(70), kMaxSequence,
                               BlockReadOptions{}, &se),
            0);
  EXPECT_EQ(se.value, "value10");
  ::unlink(path.c_str());
}

TEST(SstFilterBlock, ForeignFormatVersionIsIgnoredNotFatal) {
  const std::string path = "/tmp/proteus_persist_foreign.sst";
  std::vector<std::string> keys;
  WriteSstWithFilter(path, &keys, /*filter_format=*/Filter::kVersion + 7);

  BlockCache cache(1 << 20);
  SstReader reader;
  ASSERT_TRUE(reader.Open(path, 1, &cache).ok());
  // A filter written by a future format version is skipped (rebuild
  // fallback), but the data stays readable.
  EXPECT_FALSE(reader.has_filter_block());
  SstReader::SeekEntry se;
  EXPECT_EQ(reader.SeekInRange(EncodeKeyBE(0), EncodeKeyBE(0), kMaxSequence,
                               BlockReadOptions{}, &se),
            0);
  ::unlink(path.c_str());
}

TEST(SstFilterBlock, EveryBitflipInTheBlockIsDetected) {
  const std::string path = "/tmp/proteus_persist_flip.sst";
  std::vector<std::string> keys;
  WriteSstWithFilter(path, &keys);
  std::string clean = ReadFile(path);
  const size_t footer = clean.size() - kFooterV2Size;
  const uint64_t filter_offset = ReadU64At(clean, footer + 24);
  const uint64_t filter_size = ReadU64At(clean, footer + 32);
  ASSERT_GT(filter_size, 0u);

  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    std::string corrupt = clean;
    size_t pos = filter_offset + rng.NextBelow(filter_size);
    corrupt[pos] ^= static_cast<char>(1 + rng.NextBelow(255));
    WriteFile(path, corrupt);
    BlockCache cache(1 << 20);
    SstReader reader;
    // The file still opens (data is intact) but the checksummed filter
    // block is dropped, never deserialized into a silently wrong filter.
    ASSERT_TRUE(reader.Open(path, 1, &cache).ok()) << "trial " << trial;
    EXPECT_FALSE(reader.has_filter_block()) << "trial " << trial;
  }
  ::unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// Db-level: manifest + reopen.
// ---------------------------------------------------------------------------

DbOptions PersistDbOptions(const std::string& name) {
  DbOptions options;
  options.dir = "/tmp/proteus_persist_db_" + name;
  options.memtable_bytes = 32 << 10;
  options.sst_target_bytes = 64 << 10;
  options.block_size = 1024;
  options.block_cache_bytes = 1 << 20;
  options.l0_compaction_trigger = 3;
  options.l1_size_bytes = 128 << 10;
  options.level_size_multiplier = 4.0;
  return options;
}

struct Probe {
  bool found;
  std::string key, value;
};

std::vector<Probe> RunProbes(Db* db) {
  std::vector<Probe> out;
  for (uint64_t i = 0; i < 400; ++i) {
    uint64_t lo = (i * 37) % 30000;
    uint64_t hi = lo + i % 60;
    SeekResult r = db->Seek(EncodeKeyBE(lo), EncodeKeyBE(hi));
    out.push_back(Probe{r.found, std::move(r.key), std::move(r.value)});
  }
  return out;
}

void FillDb(Db* db, Rng* rng) {
  for (uint64_t i = 0; i < 2500; ++i) {
    db->Put(EncodeKeyBE(i * 10),
            "v" + std::to_string(i) + std::string(40, 'x'));
    if (i % 8 == 0) {
      // Feed the sample query queue with (mostly empty) ranges so the
      // self-designing families see a workload.
      uint64_t lo = rng->NextBelow(25000) + 1;
      db->Seek(EncodeKeyBE(lo * 10 + 1), EncodeKeyBE(lo * 10 + 7));
    }
  }
  db->CompactAll();
}

TEST(DbReopen, AllNineFamiliesServeIdenticalAnswersWithoutRebuilding) {
  for (const char* spec : kFamilySpecs) {
    SCOPED_TRACE(spec);
    auto options = PersistDbOptions(SanitizeSpec(spec));
    Status status;
    options.filter_policy = MakeFilterPolicy(spec, &status);
    ASSERT_NE(options.filter_policy, nullptr) << status.ToString();

    std::vector<Probe> before;
    uint64_t total_keys = 0;
    uint64_t filter_bits = 0;
    {
      auto [db, create_status] = Db::Create(options);
      ASSERT_TRUE(create_status.ok()) << create_status.ToString();
      Rng rng(42);
      FillDb(db.get(), &rng);
      before = RunProbes(db.get());
      total_keys = db->TotalKeys();
      filter_bits = db->TotalFilterBits();
      ASSERT_GT(filter_bits, 0u) << "no filters built at flush time";
    }

    auto [db, open_status] = Db::Open(options);
    ASSERT_NE(db, nullptr) << open_status.ToString();
    EXPECT_EQ(db->TotalKeys(), total_keys);
    EXPECT_EQ(db->TotalFilterBits(), filter_bits);
    // Filters were deserialized from SST filter blocks; FilterBuilder
    // never ran (the build timer is the "rebuild counter" here: loading
    // takes the deserialize path, which does not touch it).
    EXPECT_GT(db->stats().filter_loads, 0u);
    EXPECT_EQ(db->stats().filter_rebuilds, 0u);
    EXPECT_EQ(db->stats().filter_build_ns, 0u);

    auto after = RunProbes(db.get());
    ASSERT_EQ(before.size(), after.size());
    for (size_t i = 0; i < before.size(); ++i) {
      EXPECT_EQ(before[i].found, after[i].found) << "probe " << i;
      EXPECT_EQ(before[i].key, after[i].key) << "probe " << i;
      EXPECT_EQ(before[i].value, after[i].value) << "probe " << i;
    }
  }
}

TEST(DbReopen, MemtableContentsSurviveCloseWithoutExplicitFlush) {
  auto options = PersistDbOptions("memtable");
  options.filter_policy = MakeFilterPolicy("proteus:bpk=12");
  {
    auto [db, st] = Db::Create(options);
    ASSERT_TRUE(st.ok());
    for (uint64_t i = 0; i < 50; ++i) {
      ASSERT_TRUE(db->Put(EncodeKeyBE(i * 3), "mem" + std::to_string(i)).ok());
    }
    // No Flush/CompactAll: the destructor must persist the memtable.
  }
  auto [db, status] = Db::Open(options);
  ASSERT_NE(db, nullptr) << status.ToString();
  EXPECT_EQ(db->TotalKeys(), 50u);
  SeekResult r = db->Seek(EncodeKeyBE(9), EncodeKeyBE(9));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.value, "mem3");
}

TEST(DbReopen, CorruptFilterBlocksTriggerRebuildFallback) {
  auto options = PersistDbOptions("corrupt_filter");
  options.filter_policy = MakeFilterPolicy("proteus:bpk=14");
  std::vector<Probe> before;
  {
    auto [db, st] = Db::Create(options);
    ASSERT_TRUE(st.ok());
    Rng rng(7);
    FillDb(db.get(), &rng);
    before = RunProbes(db.get());
  }

  // Flip one byte inside every SST's filter block.
  size_t corrupted = 0;
  for (const std::string& path : ListSstFiles(options.dir)) {
    std::string content = ReadFile(path);
    ASSERT_GE(content.size(), kFooterV2Size);
    const size_t footer = content.size() - kFooterV2Size;
    const uint64_t filter_offset = ReadU64At(content, footer + 24);
    const uint64_t filter_size = ReadU64At(content, footer + 32);
    if (filter_size == 0) continue;
    content[filter_offset + filter_size / 2] ^= 0x40;
    WriteFile(path, content);
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0u);

  auto [db, status] = Db::Open(options);
  ASSERT_NE(db, nullptr) << status.ToString();
  EXPECT_EQ(db->stats().filter_loads, 0u);
  EXPECT_EQ(db->stats().filter_rebuilds, corrupted);
  EXPECT_GT(db->TotalFilterBits(), 0u);

  auto after = RunProbes(db.get());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].found, after[i].found) << "probe " << i;
    EXPECT_EQ(before[i].key, after[i].key) << "probe " << i;
  }
}

TEST(DbReopen, FilterBytesAreChargedToTheBlockCache) {
  auto options = PersistDbOptions("pinned");
  options.filter_policy = MakeFilterPolicy("proteus:bpk=14");
  {
    auto [db, st] = Db::Create(options);
    ASSERT_TRUE(st.ok());
    Rng rng(3);
    FillDb(db.get(), &rng);
    size_t n_files = 0;
    for (size_t n : db->LevelFileCounts()) n_files += n;
    EXPECT_GT(db->cache().pinned_bytes(), 0u);
    EXPECT_GE(db->cache().used_bytes(), db->cache().pinned_bytes());
    // Each file charges floor(SizeBits/8): within one byte per file.
    EXPECT_LE(db->cache().pinned_bytes(), db->TotalFilterBits() / 8);
    EXPECT_GE(db->cache().pinned_bytes() + n_files,
              db->TotalFilterBits() / 8);
  }
  auto [db, status] = Db::Open(options);
  ASSERT_NE(db, nullptr) << status.ToString();
  EXPECT_GT(db->cache().pinned_bytes(), 0u);
  EXPECT_LE(db->cache().pinned_bytes(), db->TotalFilterBits() / 8);
}

TEST(DbReopen, MissingManifestOpensEmpty) {
  auto options = PersistDbOptions("fresh");
  ::mkdir(options.dir.c_str(), 0755);
  ::unlink((options.dir + "/MANIFEST").c_str());
  auto [db, status] = Db::Open(options);
  ASSERT_NE(db, nullptr) << status.ToString();
  EXPECT_EQ(db->TotalKeys(), 0u);
}

TEST(DbReopen, ReopenedDbKeepsCompactingAndReopening) {
  // Two full generations: open -> write -> close -> open -> write more ->
  // close -> open. Exercises manifest rewrite on a recovered tree.
  auto options = PersistDbOptions("generations");
  options.filter_policy = MakeFilterPolicy("rosetta:bpk=12");
  {
    auto [db, st] = Db::Create(options);
    ASSERT_TRUE(st.ok());
    for (uint64_t i = 0; i < 1000; ++i) {
      ASSERT_TRUE(
          db->Put(EncodeKeyBE(i * 4), "gen1-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(db->CompactAll().ok());
  }
  {
    auto [db, status] = Db::Open(options);
    ASSERT_NE(db, nullptr) << status.ToString();
    for (uint64_t i = 1000; i < 2000; ++i) {
      ASSERT_TRUE(
          db->Put(EncodeKeyBE(i * 4), "gen2-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(db->CompactAll().ok());
    EXPECT_EQ(db->TotalKeys(), 2000u);
  }
  auto [db, status] = Db::Open(options);
  ASSERT_NE(db, nullptr) << status.ToString();
  EXPECT_EQ(db->TotalKeys(), 2000u);
  SeekResult r = db->Seek(EncodeKeyBE(0), EncodeKeyBE(0));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.value, "gen1-0");
  r = db->Seek(EncodeKeyBE(1500 * 4), EncodeKeyBE(1500 * 4));
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.value, "gen2-1500");
}

}  // namespace
}  // namespace proteus
